//! Machine-level fault-injection behavior: a transient plan must leave
//! every collective's results exactly right on both byte-moving
//! backends, a lethal plan must come back as a typed transport error
//! well inside the io deadline, and the `KAMSTA_FAULTS` plan format
//! must round-trip through the builder API.

use kamsta_comm::{
    FaultPlan, LethalFault, LethalKind, Machine, MachineConfig, MachineError, TransportKind,
};
use std::time::{Duration, Instant};

fn with_plan(p: usize, transport: TransportKind, plan: FaultPlan) -> MachineConfig {
    MachineConfig::new(p)
        .with_transport(transport)
        .with_io_timeout(Duration::from_secs(10))
        .with_faults(plan)
}

/// A dense transient plan: everything recoverable, nothing lethal.
fn noisy(seed: u64) -> FaultPlan {
    FaultPlan::seeded(seed)
        .with_delays(0.2, 80)
        .with_short_writes(0.4)
        .with_short_reads(0.4)
        .with_duplicates(0.3)
        .with_retries(0.3)
}

#[test]
fn fault_plan_parse_round_trips_builder_equivalents() {
    let parsed = FaultPlan::parse(
        "seed=9, delay=0.25, delay_us=120, short_write=0.5, short_read=0.1, dup=0.05, retry=0.3",
    )
    .unwrap();
    let built = FaultPlan::seeded(9)
        .with_delays(0.25, 120)
        .with_short_writes(0.5)
        .with_short_reads(0.1)
        .with_duplicates(0.05)
        .with_retries(0.3);
    assert_eq!(parsed, built);

    let lethal = FaultPlan::parse("seed=3,lethal=bitflip@1:6").unwrap();
    assert_eq!(
        lethal,
        FaultPlan::seeded(3).with_lethal(LethalFault {
            rank: 1,
            kind: LethalKind::BitFlip,
            at_seq: 6,
        })
    );
    assert!(FaultPlan::parse("").unwrap().is_empty());
}

#[test]
fn fault_plan_parse_rejects_malformed_entries() {
    for bad in [
        "frobnicate=1",
        "delay",
        "delay=2.0",
        "dup=-0.1",
        "seed=banana",
        "lethal=bitflip",
        "lethal=explode@0:1",
        "lethal=truncate@0",
    ] {
        let err = FaultPlan::parse(bad).unwrap_err();
        assert!(!err.is_empty(), "{bad:?} must explain its rejection");
    }
    // The same rejection must reach the machine surface as the typed
    // config error when the plan arrives via the environment path.
    let err = FaultPlan::parse("frobnicate=1")
        .map_err(MachineError::InvalidFaultPlan)
        .unwrap_err();
    assert!(err.to_string().contains("fault plan"), "{err}");
}

#[test]
fn armed_empty_plan_leaves_results_identical() {
    // `FaultPlan::seeded` with no faults still arms the per-frame
    // checksums — results must match the unarmed run bit-for-bit.
    for transport in [TransportKind::Bytes, TransportKind::Sockets] {
        let program = |comm: &kamsta_comm::Comm| {
            let v = comm.allgatherv(vec![comm.rank() as u64; comm.rank() + 1]);
            (v, comm.allreduce_sum(comm.rank() as u64 + 1))
        };
        let plain =
            Machine::try_run(MachineConfig::new(4).with_transport(transport), program).unwrap();
        let armed =
            Machine::try_run(with_plan(4, transport, FaultPlan::seeded(7)), program).unwrap();
        assert_eq!(plain.results, armed.results);
    }
}

#[test]
fn transient_faults_leave_collectives_exact_on_both_backends() {
    // Delays, short reads/writes, duplicates, and transient retries all
    // at once: the framing layer must absorb every one of them, so the
    // collectives' results are *exactly* the fault-free values.
    for transport in [TransportKind::Bytes, TransportKind::Sockets] {
        for seed in [1u64, 23, 1009] {
            let out = Machine::try_run(with_plan(4, transport, noisy(seed)), |comm| {
                let mine: Vec<u64> = (0..64).map(|i| comm.rank() as u64 * 1000 + i).collect();
                let all = comm.allgatherv(mine);
                let total = comm.allreduce_sum(comm.rank() as u64 + 1);
                (all, total)
            })
            .unwrap_or_else(|e| panic!("{transport:?} seed {seed}: {e}"));
            let expected: Vec<u64> = (0..4u64)
                .flat_map(|r| (0..64).map(move |i| r * 1000 + i))
                .collect();
            for (all, total) in out.results {
                assert_eq!(all, expected);
                assert_eq!(total, 1 + 2 + 3 + 4);
            }
        }
    }
}

#[test]
fn lethal_faults_surface_as_typed_errors_within_the_deadline() {
    // Every unrecoverable fault kind, on both backends: the machine
    // must return `MachineError::Transport` — not hang, not panic with
    // a bare string — well under twice the io deadline.
    let deadline = Duration::from_secs(5);
    for transport in [TransportKind::Bytes, TransportKind::Sockets] {
        for kind in [
            LethalKind::Truncate,
            LethalKind::BitFlip,
            LethalKind::Disconnect,
        ] {
            let plan = FaultPlan::seeded(11).with_lethal(LethalFault {
                rank: 1,
                kind,
                at_seq: 1,
            });
            let cfg = MachineConfig::new(3)
                .with_transport(transport)
                .with_io_timeout(deadline)
                .with_faults(plan);
            let start = Instant::now();
            let err = Machine::try_run(cfg, |comm| {
                let mut acc = 0u64;
                for round in 0..8u64 {
                    acc = comm.allreduce_sum(acc + comm.rank() as u64 + round);
                }
                acc
            })
            .unwrap_err();
            let elapsed = start.elapsed();
            assert!(
                matches!(err, MachineError::Transport { .. }),
                "{transport:?}/{kind:?}: {err:?}"
            );
            assert!(
                elapsed < deadline * 2,
                "{transport:?}/{kind:?} took {elapsed:?}, deadline {deadline:?}"
            );
        }
    }
}

#[test]
fn corrupted_frames_are_reported_as_corruption_not_wrong_answers() {
    // A bit flip with checksums armed must be *named* as corruption in
    // the error chain — the one outcome that is never acceptable is a
    // silently wrong result (which would have returned Ok above).
    let plan = FaultPlan::seeded(5).with_lethal(LethalFault {
        rank: 0,
        kind: LethalKind::BitFlip,
        at_seq: 0,
    });
    let err = Machine::try_run(with_plan(2, TransportKind::Bytes, plan), |comm| {
        comm.allgatherv(vec![comm.rank() as u64; 32])
    })
    .unwrap_err();
    let msg = err.to_string();
    assert!(
        msg.contains("checksum") || msg.contains("corrupt"),
        "corruption must be named in: {msg}"
    );
}
