//! Semantics tests for every collective, across odd/even/power-of-two PE
//! counts and all all-to-all strategies.

use kamsta_comm::{route, AlltoallKind, FlatBuckets, Machine, MachineConfig};

const PE_COUNTS: &[usize] = &[1, 2, 3, 4, 5, 7, 8, 13, 16];

#[test]
fn barrier_syncs_modeled_clocks() {
    for &p in PE_COUNTS {
        let out = Machine::run(MachineConfig::new(p), |comm| {
            comm.charge_local(1_000 * (comm.rank() as u64 + 1));
            comm.barrier();
            comm.clock().now()
        });
        let max = out.results.iter().cloned().fold(0.0, f64::max);
        for (r, t) in out.results.iter().enumerate() {
            assert!(
                (t - max).abs() < 1e-12,
                "p={p}: rank {r} clock {t} != synced max {max}"
            );
        }
    }
}

#[test]
fn broadcast_from_every_root() {
    for &p in PE_COUNTS {
        for root in [0, p / 2, p - 1] {
            let out = Machine::run(MachineConfig::new(p), move |comm| {
                let v = if comm.rank() == root {
                    Some(vec![root as u64, 42, 7])
                } else {
                    None
                };
                comm.broadcast_vec(root, v)
            });
            for r in out.results {
                assert_eq!(r, vec![root as u64, 42, 7]);
            }
        }
    }
}

#[test]
fn broadcast_scalar() {
    let out = Machine::run(MachineConfig::new(6), |comm| {
        let v = if comm.rank() == 3 { Some(99u32) } else { None };
        comm.broadcast(3, v)
    });
    assert!(out.results.iter().all(|&v| v == 99));
}

#[test]
fn gather_collects_in_rank_order() {
    for &p in PE_COUNTS {
        let out = Machine::run(MachineConfig::new(p), |comm| {
            comm.gather(0, comm.rank() as u64 * 2)
        });
        let expected: Vec<u64> = (0..p as u64).map(|r| r * 2).collect();
        assert_eq!(out.results[0], Some(expected));
        for r in 1..p {
            assert_eq!(out.results[r], None);
        }
    }
}

#[test]
fn gatherv_concatenates_in_rank_order() {
    let out = Machine::run(MachineConfig::new(4), |comm| {
        let mine: Vec<u32> = (0..comm.rank() as u32).collect();
        comm.gatherv(2, mine)
    });
    assert_eq!(out.results[2], Some(vec![0, 0, 1, 0, 1, 2]));
    assert_eq!(out.results[0], None);
}

#[test]
fn allgather_and_allgatherv() {
    for &p in PE_COUNTS {
        let out = Machine::run(MachineConfig::new(p), |comm| {
            let flat = comm.allgather(comm.rank() as u32);
            let varying: Vec<u32> = vec![comm.rank() as u32; comm.rank() + 1];
            let concat = comm.allgatherv(varying);
            (flat, concat)
        });
        let expect_flat: Vec<u32> = (0..p as u32).collect();
        let mut expect_concat = Vec::new();
        for r in 0..p as u32 {
            expect_concat.extend(vec![r; r as usize + 1]);
        }
        for (flat, concat) in out.results {
            assert_eq!(flat, expect_flat);
            assert_eq!(concat, expect_concat);
        }
    }
}

#[test]
fn reductions_scalar() {
    for &p in PE_COUNTS {
        let out = Machine::run(MachineConfig::new(p), |comm| {
            let sum = comm.allreduce_sum(comm.rank() as u64 + 1);
            let max = comm.allreduce_max(comm.rank() as u64);
            let min = comm.allreduce_min(comm.rank() as u64 + 5);
            let red = comm.reduce(0, comm.rank() as u64, |a, b| a + b);
            (sum, max, min, red)
        });
        let n = p as u64;
        for (r, (sum, max, min, red)) in out.results.into_iter().enumerate() {
            assert_eq!(sum, n * (n + 1) / 2);
            assert_eq!(max, n - 1);
            assert_eq!(min, 5);
            if r == 0 {
                assert_eq!(red, Some(n * (n - 1) / 2));
            } else {
                assert_eq!(red, None);
            }
        }
    }
}

#[test]
fn allreduce_is_deterministic_for_noncommutative_op() {
    // Rank-order fold: (((v0 op v1) op v2) ...) — subtraction exposes any
    // ordering nondeterminism.
    for &p in PE_COUNTS {
        let out = Machine::run(MachineConfig::new(p), |comm| {
            comm.allreduce(comm.rank() as i64 + 10, |a, b| a - b)
        });
        let vals: Vec<i64> = (0..p as i64).map(|r| r + 10).collect();
        let expected = vals[1..].iter().fold(vals[0], |acc, x| acc - x);
        assert!(out.results.iter().all(|&v| v == expected));
    }
}

#[test]
fn allreduce_vec_elementwise_min_and_sum() {
    for &p in PE_COUNTS {
        let len = 100;
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let r = comm.rank() as u64;
            // vec[i] = (rank * 31 + i) % 97 — min over ranks is checkable
            let mine: Vec<u64> = (0..len).map(|i| (r * 31 + i) % 97).collect();
            let mins = comm.allreduce_vec(mine.clone(), |a, b| *a.min(b));
            let sums = comm.allreduce_vec(mine, |a, b| a + b);
            (mins, sums)
        });
        let mut expect_min = vec![u64::MAX; len as usize];
        let mut expect_sum = vec![0u64; len as usize];
        for r in 0..p as u64 {
            for i in 0..len {
                let v = (r * 31 + i) % 97;
                let idx = i as usize;
                expect_min[idx] = expect_min[idx].min(v);
                expect_sum[idx] += v;
            }
        }
        for (mins, sums) in out.results {
            assert_eq!(mins, expect_min, "p={p}");
            assert_eq!(sums, expect_sum, "p={p}");
        }
    }
}

#[test]
fn exscan_computes_exclusive_prefixes() {
    for &p in PE_COUNTS {
        let out = Machine::run(MachineConfig::new(p), |comm| {
            comm.exscan_sum(comm.rank() as u64 + 1)
        });
        for (r, v) in out.results.into_iter().enumerate() {
            let expected: u64 = (1..=r as u64).sum();
            assert_eq!(v, expected, "p={p} rank={r}");
        }
    }
}

fn alltoall_payload(_p: usize, src: usize, dst: usize) -> Vec<u64> {
    // Deterministic, size varies with (src, dst) to exercise imbalance.
    let n = (src * 7 + dst * 3) % 5;
    (0..n).map(|k| (src * 1000 + dst * 10 + k) as u64).collect()
}

fn check_alltoall(p: usize, kind: AlltoallKind) {
    let out = Machine::run(MachineConfig::new(p).with_alltoall(kind), move |comm| {
        let me = comm.rank();
        let bufs =
            FlatBuckets::from_nested((0..p).map(|dst| alltoall_payload(p, me, dst)).collect());
        let recv = match kind {
            AlltoallKind::Direct => comm.alltoallv_direct(bufs),
            AlltoallKind::Grid => comm.alltoallv_grid(bufs),
            AlltoallKind::Hypercube => comm.alltoallv_hypercube(bufs),
            AlltoallKind::Auto => comm.sparse_alltoallv(bufs),
        };
        recv.to_nested()
    });
    for (me, recv) in out.results.into_iter().enumerate() {
        assert_eq!(recv.len(), p);
        for (src, got) in recv.into_iter().enumerate() {
            assert_eq!(
                got,
                alltoall_payload(p, src, me),
                "p={p} kind={kind:?} src={src} dst={me}"
            );
        }
    }
}

#[test]
fn alltoall_direct_all_sizes() {
    for &p in PE_COUNTS {
        check_alltoall(p, AlltoallKind::Direct);
    }
}

#[test]
fn alltoall_grid_all_sizes() {
    // Include sizes with incomplete last rows (e.g. 5: c=2,r=3; 13: c=3,r=5).
    for &p in PE_COUNTS {
        check_alltoall(p, AlltoallKind::Grid);
    }
    for p in [6, 10, 11, 12, 15, 20, 23, 24, 25] {
        check_alltoall(p, AlltoallKind::Grid);
    }
}

#[test]
fn alltoall_hypercube_power_of_two_and_fallback() {
    for p in [1, 2, 4, 8, 16, 32] {
        check_alltoall(p, AlltoallKind::Hypercube);
    }
    // Non-power-of-two falls back to grid; must still be correct.
    for p in [3, 5, 6, 7, 12] {
        check_alltoall(p, AlltoallKind::Hypercube);
    }
}

#[test]
fn alltoall_auto_all_sizes() {
    for &p in PE_COUNTS {
        check_alltoall(p, AlltoallKind::Auto);
    }
}

#[test]
fn grid_uses_fewer_message_startups_than_direct_at_scale() {
    // The point of Fig. 2: α·p vs α·√p startups for tiny messages.
    let p = 64;
    let run = |kind: AlltoallKind| {
        Machine::run(MachineConfig::new(p).with_alltoall(kind), move |comm| {
            let bufs = FlatBuckets::from_nested((0..p).map(|d| vec![d as u64]).collect());
            match kind {
                AlltoallKind::Direct => comm.alltoallv_direct(bufs),
                _ => comm.alltoallv_grid(bufs),
            };
        })
    };
    let direct = run(AlltoallKind::Direct);
    let grid = run(AlltoallKind::Grid);
    assert!(
        grid.total_messages() < direct.total_messages() / 2,
        "grid {} vs direct {}",
        grid.total_messages(),
        direct.total_messages()
    );
    assert!(grid.modeled_time < direct.modeled_time);
    // ...at the cost of roughly doubled volume.
    assert!(grid.total_bytes() >= direct.total_bytes());
}

#[test]
fn route_delivers_keyed_items() {
    let p = 6;
    let out = Machine::run(MachineConfig::new(p), move |comm| {
        let me = comm.rank();
        // Everyone sends its rank to every even PE.
        let items: Vec<(usize, u64)> = (0..p)
            .filter(|d| d % 2 == 0)
            .map(|d| (d, me as u64))
            .collect();
        let mut got = route(comm, items);
        got.sort_unstable();
        got
    });
    for (r, got) in out.results.into_iter().enumerate() {
        if r % 2 == 0 {
            assert_eq!(got, (0..p as u64).collect::<Vec<_>>());
        } else {
            assert!(got.is_empty());
        }
    }
}

#[test]
fn split_forms_row_communicators() {
    let p = 12;
    let cols = 4;
    let out = Machine::run(MachineConfig::new(p), move |comm| {
        let row = comm.rank() / cols;
        let row_comm = comm.split(row, comm.rank());
        let members = row_comm.allgather(comm.rank());
        (row_comm.rank(), row_comm.size(), members)
    });
    for (r, (new_rank, size, members)) in out.results.into_iter().enumerate() {
        assert_eq!(size, cols);
        assert_eq!(new_rank, r % cols);
        let row = r / cols;
        let expected: Vec<usize> = (0..cols).map(|c| row * cols + c).collect();
        assert_eq!(members, expected);
    }
}

#[test]
fn split_then_collectives_in_group() {
    let p = 9;
    let out = Machine::run(MachineConfig::new(p), move |comm| {
        let color = comm.rank() % 3;
        let sub = comm.split(color, comm.rank());
        sub.allreduce_sum(comm.rank() as u64)
    });
    for (r, sum) in out.results.into_iter().enumerate() {
        let color = r % 3;
        let expected: u64 = (0..p as u64).filter(|x| x % 3 == color as u64).sum();
        assert_eq!(sum, expected);
    }
}

#[test]
fn exchange_pairs() {
    let out = Machine::run(MachineConfig::new(8), |comm| {
        let partner = comm.rank() ^ 1;
        comm.exchange(Some((partner, comm.rank() as u64)), Some(partner))
            .unwrap()
    });
    for (r, got) in out.results.into_iter().enumerate() {
        assert_eq!(got, (r ^ 1) as u64);
    }
}

#[test]
fn stats_track_messages_and_bytes() {
    let out = Machine::run(MachineConfig::new(4), |comm| {
        comm.allgather(comm.rank() as u64);
    });
    assert!(out.total_messages() > 0);
    assert!(out.total_bytes() > 0);
    assert!(out.modeled_time > 0.0);
}
