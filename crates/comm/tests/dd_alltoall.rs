//! Tests for the d-dimensional all-to-all generalisation (Sec. VI-A).

use kamsta_comm::{FlatBuckets, Machine, MachineConfig};

fn payload(_p: usize, src: usize, dst: usize) -> Vec<u64> {
    let n = (src * 5 + dst * 11) % 4;
    (0..n)
        .map(|k| (src * 10_000 + dst * 100 + k) as u64)
        .collect()
}

fn check_dd(p: usize, d: u32) {
    let out = Machine::run(MachineConfig::new(p), move |comm| {
        let me = comm.rank();
        let bufs = FlatBuckets::from_nested((0..p).map(|dst| payload(p, me, dst)).collect());
        comm.alltoallv_dd(bufs, d).to_nested()
    });
    for (me, recv) in out.results.into_iter().enumerate() {
        for (src, got) in recv.into_iter().enumerate() {
            assert_eq!(got, payload(p, src, me), "p={p} d={d} {src}→{me}");
        }
    }
}

#[test]
fn exact_power_shapes() {
    check_dd(8, 3); // 2^3
    check_dd(27, 3); // 3^3
    check_dd(16, 4); // 2^4
    check_dd(16, 2); // 4^2
    check_dd(64, 3); // 4^3
    check_dd(81, 4); // 3^4
}

#[test]
fn fallback_shapes() {
    check_dd(12, 3); // not a cube → grid fallback
    check_dd(6, 2); // not a square → grid fallback
    check_dd(3, 1); // d < 2 → direct
    check_dd(2, 5); // p < 4 → direct
}

#[test]
fn higher_dimension_trades_startups_for_volume() {
    let p = 64;
    let run = |d: u32| {
        Machine::run(MachineConfig::new(p), move |comm| {
            let bufs = FlatBuckets::from_nested((0..p).map(|dst| vec![dst as u64; 2]).collect());
            comm.alltoallv_dd(bufs, d);
        })
    };
    let d2 = run(2); // 8×8 grid
    let d3 = run(3); // 4×4×4 torus
    let d6 = run(6); // 2^6 hypercube-like
    assert!(
        d3.total_messages() < d2.total_messages(),
        "d=3 {} should need fewer startups than d=2 {}",
        d3.total_messages(),
        d2.total_messages()
    );
    // At p = 64, d·p^(1/d) is 12 for both d = 3 and d = 6 — equal by the
    // formula, so only a non-increase is guaranteed.
    assert!(
        d6.total_messages() <= d3.total_messages(),
        "d=6 {} should need no more startups than d=3 {}",
        d6.total_messages(),
        d3.total_messages()
    );
    assert!(
        d6.total_bytes() > d2.total_bytes(),
        "more hops ⇒ more volume: d6 {} vs d2 {}",
        d6.total_bytes(),
        d2.total_bytes()
    );
}
