//! Socket-transport failure modes through the machine surface: a PE
//! that dies mid-collective must come back as a typed
//! [`MachineError::Transport`] within the configured io timeout — never
//! a hang, never a bare panic string.

use kamsta_comm::{Machine, MachineConfig, MachineError, TransportError, TransportKind};
use std::time::{Duration, Instant};

fn sockets(p: usize, timeout: Duration) -> MachineConfig {
    MachineConfig::new(p)
        .with_transport(TransportKind::Sockets)
        .with_io_timeout(timeout)
}

#[test]
fn early_returning_pe_surfaces_as_typed_peer_closed() {
    // Rank 1 returns before the collective; its fabric drops, the
    // other ranks' receives see EOF.
    let err = Machine::try_run(sockets(3, Duration::from_secs(10)), |comm| {
        if comm.rank() == 1 {
            return 0u64;
        }
        comm.allreduce_sum(comm.rank() as u64)
    })
    .unwrap_err();
    match err {
        MachineError::Transport { source, .. } => {
            assert!(
                matches!(
                    source,
                    TransportError::PeerClosed { .. } | TransportError::Timeout { .. }
                ),
                "{source:?}"
            );
        }
        other => panic!("expected a transport error, got {other:?}"),
    }
}

#[test]
fn sleeping_pe_times_out_within_the_configured_bound() {
    // Rank 0 never reaches the collective; peers must give up after the
    // (short) io timeout instead of hanging. Rank 0 itself sits in a
    // sleep shorter than the test harness timeout, so the whole machine
    // returns promptly.
    let timeout = Duration::from_millis(300);
    let start = Instant::now();
    let err = Machine::try_run(sockets(2, timeout), |comm| {
        if comm.rank() == 0 {
            std::thread::sleep(Duration::from_secs(2));
            return 0u64;
        }
        comm.allreduce_sum(1)
    })
    .unwrap_err();
    assert!(
        matches!(
            err,
            MachineError::Transport {
                source: TransportError::Timeout { .. },
                ..
            }
        ),
        "{err:?}"
    );
    // Bounded: the timeout plus the sleeping PE's nap plus slack, far
    // below a hang.
    assert!(
        start.elapsed() < Duration::from_secs(10),
        "took {:?}",
        start.elapsed()
    );
}

#[test]
fn transport_error_keeps_genuine_panics_distinct() {
    // A genuine program panic must still unwind out of `try_run`, not be
    // laundered into a transport error.
    let res = std::panic::catch_unwind(|| {
        Machine::try_run(sockets(2, Duration::from_secs(5)), |comm| {
            if comm.rank() == 0 {
                panic!("program bug on rank 0");
            }
            comm.allreduce_sum(1)
        })
    });
    assert!(res.is_err(), "program panic must propagate");
}

#[test]
fn worker_entry_rejects_non_socket_configs() {
    let err = Machine::try_run_worker(MachineConfig::new(2), None, |_| ()).unwrap_err();
    assert!(matches!(err, MachineError::SocketConfig(_)), "{err:?}");

    let err = Machine::try_run_worker(
        MachineConfig::new(2).with_transport(TransportKind::Sockets),
        Some(0),
        |_| (),
    )
    .unwrap_err();
    assert!(matches!(err, MachineError::SocketConfig(_)), "{err:?}");

    // Static endpoints without a rank: the worker cannot guess its slot.
    let err = Machine::try_run_worker(
        MachineConfig::new(2).with_endpoints(["127.0.0.1:7101", "127.0.0.1:7102"]),
        None,
        |_| (),
    )
    .unwrap_err();
    assert!(matches!(err, MachineError::SocketConfig(_)), "{err:?}");
}

#[test]
fn lone_worker_mesh_timeout_names_joined_and_missing_ranks() {
    // A worker of a 2-endpoint machine whose peer never starts: the
    // formation failure must say exactly who made it into the mesh and
    // who is missing — not a bare timeout the operator has to bisect.
    let l0 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let l1 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addrs = [
        l0.local_addr().unwrap().to_string(),
        l1.local_addr().unwrap().to_string(),
    ];
    drop((l0, l1));
    let cfg = MachineConfig::new(2)
        .with_endpoints(addrs)
        .with_handshake_timeout(Duration::from_millis(300))
        .with_io_timeout(Duration::from_secs(5));
    let start = Instant::now();
    let err = Machine::try_run_worker(cfg, Some(0), |_| ()).unwrap_err();
    match err {
        MachineError::Transport {
            rank: 0,
            source:
                TransportError::MeshIncomplete {
                    ref joined,
                    ref missing,
                    ..
                },
        } => {
            assert_eq!(joined, &vec![0], "only this worker joined");
            assert_eq!(missing, &vec![1], "the absent peer is named");
        }
        other => panic!("expected MeshIncomplete, got {other:?}"),
    }
    // And the human-readable rendering carries the rank lists.
    let msg = err.to_string();
    assert!(msg.contains("joined") && msg.contains("missing"), "{msg}");
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "bounded by the handshake timeout, took {:?}",
        start.elapsed()
    );
}

#[test]
fn workers_with_static_endpoints_form_a_machine_across_fabrics() {
    // Two worker entries (as two threads standing in for two processes)
    // against a static endpoint table: the same entry path the launcher
    // exercises across real processes, minus the fork.
    let l0 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let l1 = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addrs = [
        l0.local_addr().unwrap().to_string(),
        l1.local_addr().unwrap().to_string(),
    ];
    drop((l0, l1)); // workers re-bind their slot
    let cfg = MachineConfig::new(2)
        .with_endpoints(addrs.clone())
        .with_io_timeout(Duration::from_secs(10));
    let handles: Vec<_> = (0..2)
        .map(|rank| {
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                Machine::try_run_worker(cfg, Some(rank), |comm| comm.allgather(comm.rank() as u64))
            })
        })
        .collect();
    for (rank, h) in handles.into_iter().enumerate() {
        let run = h.join().unwrap().unwrap();
        assert_eq!(run.rank, rank);
        assert_eq!(run.result, vec![0, 1]);
        assert!(run.stats.messages > 0);
    }
}
