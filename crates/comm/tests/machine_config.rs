//! MachineConfig validation: bad configurations come back as typed
//! [`MachineError`]s through `validate`/`try_run` instead of poisoning a
//! PE thread.
//!
//! Everything lives in one `#[test]` because the `KAMSTA_TRANSPORT`
//! checks mutate process-global environment state — a single test per
//! binary keeps that serial.

use kamsta_comm::{Machine, MachineConfig, MachineError, TransportKind};

#[test]
fn invalid_configs_are_typed_errors() {
    // Zero PEs.
    let cfg = MachineConfig::new(0);
    assert_eq!(cfg.validate(), Err(MachineError::NoPes));
    assert!(matches!(
        Machine::try_run(cfg, |_| ()),
        Err(MachineError::NoPes)
    ));

    // A valid config runs through try_run.
    let out = Machine::try_run(MachineConfig::new(3), |comm| comm.rank()).unwrap();
    assert_eq!(out.results, vec![0, 1, 2]);

    // Explicit transport wins over the environment.
    std::env::set_var("KAMSTA_TRANSPORT", "bytes");
    assert_eq!(
        MachineConfig::new(2).resolved_transport(),
        Ok(TransportKind::Bytes)
    );
    assert_eq!(
        MachineConfig::new(2)
            .with_transport(TransportKind::Cells)
            .resolved_transport(),
        Ok(TransportKind::Cells)
    );

    // A typo'd KAMSTA_TRANSPORT is rejected loudly, not silently run on
    // the default backend...
    std::env::set_var("KAMSTA_TRANSPORT", "carrier-pigeon");
    let cfg = MachineConfig::new(2);
    assert_eq!(
        cfg.validate(),
        Err(MachineError::UnknownTransport("carrier-pigeon".into()))
    );
    assert!(Machine::try_run(cfg, |_| ()).is_err());
    // ...unless the caller pinned the transport programmatically.
    assert!(MachineConfig::new(2)
        .with_transport(TransportKind::Bytes)
        .validate()
        .is_ok());

    std::env::remove_var("KAMSTA_TRANSPORT");
    assert_eq!(
        MachineConfig::new(2).resolved_transport(),
        Ok(TransportKind::Cells)
    );

    // Errors render a human-readable message for service logs.
    assert!(MachineError::NoPes.to_string().contains("at least one PE"));
    assert!(MachineError::UnknownTransport("x".into())
        .to_string()
        .contains("KAMSTA_TRANSPORT"));
    assert!((MachineError::PeCountMismatch {
        expected: 4,
        got: 2
    })
    .to_string()
    .contains("fixed at 4"));
}
