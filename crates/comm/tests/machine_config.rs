//! MachineConfig validation: bad configurations come back as typed
//! [`MachineError`]s through `validate`/`try_run` instead of poisoning a
//! PE thread.
//!
//! Everything lives in one `#[test]` because the `KAMSTA_TRANSPORT`
//! checks mutate process-global environment state — a single test per
//! binary keeps that serial.

use kamsta_comm::{Machine, MachineConfig, MachineError, SocketSetup, TransportKind};
use std::time::Duration;

#[test]
fn invalid_configs_are_typed_errors() {
    // Zero PEs.
    let cfg = MachineConfig::new(0);
    assert_eq!(cfg.validate(), Err(MachineError::NoPes));
    assert!(matches!(
        Machine::try_run(cfg, |_| ()),
        Err(MachineError::NoPes)
    ));

    // A valid config runs through try_run.
    let out = Machine::try_run(MachineConfig::new(3), |comm| comm.rank()).unwrap();
    assert_eq!(out.results, vec![0, 1, 2]);

    // Explicit transport wins over the environment.
    std::env::set_var("KAMSTA_TRANSPORT", "bytes");
    assert_eq!(
        MachineConfig::new(2).resolved_transport(),
        Ok(TransportKind::Bytes)
    );
    assert_eq!(
        MachineConfig::new(2)
            .with_transport(TransportKind::Cells)
            .resolved_transport(),
        Ok(TransportKind::Cells)
    );

    // A typo'd KAMSTA_TRANSPORT is rejected loudly, not silently run on
    // the default backend...
    std::env::set_var("KAMSTA_TRANSPORT", "carrier-pigeon");
    let cfg = MachineConfig::new(2);
    assert_eq!(
        cfg.validate(),
        Err(MachineError::UnknownTransport("carrier-pigeon".into()))
    );
    assert!(Machine::try_run(cfg, |_| ()).is_err());
    // ...unless the caller pinned the transport programmatically.
    assert!(MachineConfig::new(2)
        .with_transport(TransportKind::Bytes)
        .validate()
        .is_ok());

    // `sockets` is a first-class env value, resolving to a loopback mesh
    // for the in-process runner.
    std::env::set_var("KAMSTA_TRANSPORT", "sockets");
    let resolved = MachineConfig::new(2).resolve().unwrap();
    assert_eq!(resolved.transport, TransportKind::Sockets);
    assert_eq!(resolved.sockets, Some(SocketSetup::Loopback));

    // The io timeout resolves from KAMSTA_SOCKET_TIMEOUT_MS; zero or
    // garbage values are typed errors.
    std::env::set_var("KAMSTA_SOCKET_TIMEOUT_MS", "1500");
    assert_eq!(
        MachineConfig::new(2).resolve().unwrap().io_timeout,
        Duration::from_millis(1500)
    );
    std::env::set_var("KAMSTA_SOCKET_TIMEOUT_MS", "0");
    assert_eq!(
        MachineConfig::new(2).resolve(),
        Err(MachineError::InvalidTimeout("0".into()))
    );
    std::env::set_var("KAMSTA_SOCKET_TIMEOUT_MS", "soon");
    assert!(matches!(
        MachineConfig::new(2).resolve(),
        Err(MachineError::InvalidTimeout(_))
    ));
    std::env::remove_var("KAMSTA_SOCKET_TIMEOUT_MS");
    // An explicit builder timeout wins over the environment, and a zero
    // one is rejected the same way.
    assert_eq!(
        MachineConfig::new(2)
            .with_io_timeout(Duration::from_secs(2))
            .resolve()
            .unwrap()
            .io_timeout,
        Duration::from_secs(2)
    );
    assert!(matches!(
        MachineConfig::new(2)
            .with_io_timeout(Duration::ZERO)
            .resolve(),
        Err(MachineError::InvalidTimeout(_))
    ));

    std::env::remove_var("KAMSTA_TRANSPORT");
    assert_eq!(
        MachineConfig::new(2).resolved_transport(),
        Ok(TransportKind::Cells)
    );

    // Endpoint tables must cover exactly the PE count and parse.
    assert!(matches!(
        MachineConfig::new(3)
            .with_endpoints(["127.0.0.1:7001", "127.0.0.1:7002"])
            .resolve(),
        Err(MachineError::SocketConfig(_))
    ));
    assert!(matches!(
        MachineConfig::new(2)
            .with_endpoints(["127.0.0.1:7001", "not-an-address"])
            .resolve(),
        Err(MachineError::SocketConfig(_))
    ));
    let resolved = MachineConfig::new(2)
        .with_endpoints(["127.0.0.1:7001", "127.0.0.1:7002"])
        .resolve()
        .unwrap();
    assert!(matches!(resolved.sockets, Some(SocketSetup::Endpoints(ref t)) if t.len() == 2));

    // Socket discovery options on a non-socket transport are rejected —
    // with_endpoints implies sockets, so only an explicit override hits it.
    let mut cfg = MachineConfig::new(2).with_endpoints(["127.0.0.1:7001", "127.0.0.1:7002"]);
    cfg.transport = Some(TransportKind::Cells);
    assert!(matches!(cfg.resolve(), Err(MachineError::SocketConfig(_))));

    // Rendezvous discovery cannot be driven by the in-process runner.
    assert!(matches!(
        Machine::try_run(
            MachineConfig::new(2).with_rendezvous("127.0.0.1:7000"),
            |_| ()
        ),
        Err(MachineError::SocketConfig(_))
    ));
    assert!(matches!(
        MachineConfig::new(2).with_rendezvous("?").resolve(),
        Err(MachineError::SocketConfig(_))
    ));

    // Errors render a human-readable message for service logs.
    assert!(MachineError::NoPes.to_string().contains("at least one PE"));
    assert!(MachineError::UnknownTransport("x".into())
        .to_string()
        .contains("KAMSTA_TRANSPORT"));
    assert!((MachineError::PeCountMismatch {
        expected: 4,
        got: 2
    })
    .to_string()
    .contains("fixed at 4"));
    assert!(MachineError::UnknownTransport("x".into())
        .to_string()
        .contains("sockets"));
}
