//! Property tests for the collective operations: arbitrary payloads and
//! PE counts must round-trip exactly.

use kamsta_comm::{AlltoallKind, Machine, MachineConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allgatherv_concatenates(
        p in 1usize..8,
        chunks in prop::collection::vec(prop::collection::vec(any::<u32>(), 0..20), 1..8),
    ) {
        let chunks_run = chunks.clone();
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let mine = chunks_run.get(comm.rank()).cloned().unwrap_or_default();
            comm.allgatherv(mine)
        });
        let expected: Vec<u32> = chunks.iter().take(p).flatten().copied().collect();
        for r in out.results {
            prop_assert_eq!(&r, &expected);
        }
    }

    #[test]
    fn exscan_prefixes(
        p in 1usize..9,
        vals in prop::collection::vec(any::<u32>(), 1..9),
    ) {
        let vals_run = vals.clone();
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let v = vals_run.get(comm.rank()).copied().unwrap_or(0) as u64;
            comm.exscan_sum(v)
        });
        for (rank, got) in out.results.into_iter().enumerate() {
            let expected: u64 = (0..rank)
                .map(|r| vals.get(r).copied().unwrap_or(0) as u64)
                .sum();
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn alltoall_strategies_agree(
        p in 2usize..10,
        salt in any::<u64>(),
    ) {
        let run = |kind: AlltoallKind| {
            Machine::run(MachineConfig::new(p).with_alltoall(kind), move |comm| {
                let me = comm.rank() as u64;
                let bufs: Vec<Vec<u64>> = (0..p)
                    .map(|d| {
                        let n = ((salt ^ (me * 31 + d as u64)) % 5) as usize;
                        (0..n as u64).map(|k| salt ^ (me * 1000 + d as u64 * 10 + k)).collect()
                    })
                    .collect();
                match kind {
                    AlltoallKind::Direct => comm.alltoallv_direct(bufs),
                    AlltoallKind::Grid => comm.alltoallv_grid(bufs),
                    AlltoallKind::Hypercube => comm.alltoallv_hypercube(bufs),
                    AlltoallKind::Auto => comm.sparse_alltoallv(bufs),
                }
            })
            .results
        };
        let direct = run(AlltoallKind::Direct);
        prop_assert_eq!(&run(AlltoallKind::Grid), &direct);
        prop_assert_eq!(&run(AlltoallKind::Hypercube), &direct);
        prop_assert_eq!(&run(AlltoallKind::Auto), &direct);
    }

    #[test]
    fn allreduce_vec_min_matches_reference(
        p in 1usize..8,
        len in 1usize..40,
        salt in any::<u64>(),
    ) {
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let r = comm.rank() as u64;
            let mine: Vec<u64> = (0..len as u64).map(|i| (salt ^ (r * 131 + i * 7)) % 1000).collect();
            comm.allreduce_vec(mine, |a, b| *a.min(b))
        });
        let mut expected = vec![u64::MAX; len];
        for r in 0..p as u64 {
            for (i, e) in expected.iter_mut().enumerate() {
                *e = (*e).min((salt ^ (r * 131 + i as u64 * 7)) % 1000);
            }
        }
        for res in out.results {
            prop_assert_eq!(&res, &expected);
        }
    }
}
