//! Property tests for the collective operations: arbitrary payloads and
//! PE counts must round-trip exactly.

use kamsta_comm::{AlltoallKind, FlatBuckets, Machine, MachineConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allgatherv_concatenates(
        p in 1usize..8,
        chunks in prop::collection::vec(prop::collection::vec(any::<u32>(), 0..20), 1..8),
    ) {
        let chunks_run = chunks.clone();
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let mine = chunks_run.get(comm.rank()).cloned().unwrap_or_default();
            comm.allgatherv(mine)
        });
        let expected: Vec<u32> = chunks.iter().take(p).flatten().copied().collect();
        for r in out.results {
            prop_assert_eq!(&r, &expected);
        }
    }

    #[test]
    fn exscan_prefixes(
        p in 1usize..9,
        vals in prop::collection::vec(any::<u32>(), 1..9),
    ) {
        let vals_run = vals.clone();
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let v = vals_run.get(comm.rank()).copied().unwrap_or(0) as u64;
            comm.exscan_sum(v)
        });
        for (rank, got) in out.results.into_iter().enumerate() {
            let expected: u64 = (0..rank)
                .map(|r| vals.get(r).copied().unwrap_or(0) as u64)
                .sum();
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn alltoall_strategies_agree(
        p in 2usize..10,
        salt in any::<u64>(),
    ) {
        let run = |kind: AlltoallKind| {
            Machine::run(MachineConfig::new(p).with_alltoall(kind), move |comm| {
                let me = comm.rank() as u64;
                let bufs = FlatBuckets::from_nested(
                    (0..p)
                        .map(|d| {
                            let n = ((salt ^ (me * 31 + d as u64)) % 5) as usize;
                            (0..n as u64).map(|k| salt ^ (me * 1000 + d as u64 * 10 + k)).collect()
                        })
                        .collect(),
                );
                let recv = match kind {
                    AlltoallKind::Direct => comm.alltoallv_direct(bufs),
                    AlltoallKind::Grid => comm.alltoallv_grid(bufs),
                    AlltoallKind::Hypercube => comm.alltoallv_hypercube(bufs),
                    AlltoallKind::Auto => comm.sparse_alltoallv(bufs),
                };
                recv.to_nested()
            })
            .results
        };
        let direct = run(AlltoallKind::Direct);
        prop_assert_eq!(&run(AlltoallKind::Grid), &direct);
        prop_assert_eq!(&run(AlltoallKind::Hypercube), &direct);
        prop_assert_eq!(&run(AlltoallKind::Auto), &direct);
    }

    #[test]
    fn flat_buckets_roundtrip_nested_construction(
        nested in prop::collection::vec(prop::collection::vec(any::<u64>(), 0..12), 1..10),
    ) {
        // The flat representation must agree with the old Vec<Vec<T>>
        // construction in every observable way.
        let flat = FlatBuckets::from_nested(nested.clone());
        prop_assert_eq!(flat.buckets(), nested.len());
        prop_assert_eq!(flat.total_len(), nested.iter().map(Vec::len).sum::<usize>());
        for (j, bucket) in nested.iter().enumerate() {
            prop_assert_eq!(flat.bucket(j), bucket.as_slice());
            prop_assert_eq!(flat.count(j), bucket.len());
        }
        prop_assert_eq!(&flat.to_nested(), &nested);
        let flat_payload: Vec<u64> = nested.iter().flatten().copied().collect();
        prop_assert_eq!(flat.payload(), flat_payload.as_slice());
        prop_assert_eq!(flat.into_payload(), flat_payload);
    }

    #[test]
    fn flat_buckets_scatter_matches_nested_pushes(
        buckets in 1usize..9,
        pairs in prop::collection::vec((0usize..9, any::<u32>()), 0..60),
    ) {
        let pairs: Vec<(usize, u32)> =
            pairs.into_iter().map(|(d, x)| (d % buckets, x)).collect();
        // Reference: the old push-into-nested-buckets construction.
        let mut nested: Vec<Vec<u32>> = vec![Vec::new(); buckets];
        for &(d, x) in &pairs {
            nested[d].push(x);
        }
        // Count-then-scatter must produce the identical (stable) layout.
        let flat = FlatBuckets::from_pairs(buckets, pairs.clone());
        prop_assert_eq!(&flat.to_nested(), &nested);
        let by_fn = FlatBuckets::from_dest_fn(
            buckets,
            pairs.iter().map(|&(_, x)| x).collect::<Vec<u32>>(),
            |_| 0,
        );
        prop_assert_eq!(by_fn.count(0), pairs.len());
    }

    #[test]
    fn allreduce_vec_min_matches_reference(
        p in 1usize..8,
        len in 1usize..40,
        salt in any::<u64>(),
    ) {
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let r = comm.rank() as u64;
            let mine: Vec<u64> = (0..len as u64).map(|i| (salt ^ (r * 131 + i * 7)) % 1000).collect();
            comm.allreduce_vec(mine, |a, b| *a.min(b))
        });
        let mut expected = vec![u64::MAX; len];
        for r in 0..p as u64 {
            for (i, e) in expected.iter_mut().enumerate() {
                *e = (*e).min((salt ^ (r * 131 + i as u64 * 7)) % 1000);
            }
        }
        for res in out.results {
            prop_assert_eq!(&res, &expected);
        }
    }
}
