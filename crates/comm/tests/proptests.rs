//! Property tests for the collective operations and the wire decoders:
//! arbitrary payloads and PE counts must round-trip exactly, and
//! arbitrary hostile bytes must come back as typed errors — never a
//! panic, never an out-of-bounds read, never an unbounded allocation.

use kamsta_comm::wire::{
    self, split_frame, FrameHeader, CH_DATA, FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD,
};
use kamsta_comm::{AlltoallKind, FlatBuckets, Machine, MachineConfig, WireError};
use proptest::prelude::*;

/// Encode one well-formed data frame (header + payload).
fn good_frame(comm: u64, seq: u64, tag: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    FrameHeader {
        channel: CH_DATA,
        comm,
        a: seq,
        b: tag,
        len: payload.len() as u32,
        sum: 0,
    }
    .write(&mut out);
    out.extend_from_slice(payload);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allgatherv_concatenates(
        p in 1usize..8,
        chunks in prop::collection::vec(prop::collection::vec(any::<u32>(), 0..20), 1..8),
    ) {
        let chunks_run = chunks.clone();
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let mine = chunks_run.get(comm.rank()).cloned().unwrap_or_default();
            comm.allgatherv(mine)
        });
        let expected: Vec<u32> = chunks.iter().take(p).flatten().copied().collect();
        for r in out.results {
            prop_assert_eq!(&r, &expected);
        }
    }

    #[test]
    fn exscan_prefixes(
        p in 1usize..9,
        vals in prop::collection::vec(any::<u32>(), 1..9),
    ) {
        let vals_run = vals.clone();
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let v = vals_run.get(comm.rank()).copied().unwrap_or(0) as u64;
            comm.exscan_sum(v)
        });
        for (rank, got) in out.results.into_iter().enumerate() {
            let expected: u64 = (0..rank)
                .map(|r| vals.get(r).copied().unwrap_or(0) as u64)
                .sum();
            prop_assert_eq!(got, expected);
        }
    }

    #[test]
    fn alltoall_strategies_agree(
        p in 2usize..10,
        salt in any::<u64>(),
    ) {
        let run = |kind: AlltoallKind| {
            Machine::run(MachineConfig::new(p).with_alltoall(kind), move |comm| {
                let me = comm.rank() as u64;
                let bufs = FlatBuckets::from_nested(
                    (0..p)
                        .map(|d| {
                            let n = ((salt ^ (me * 31 + d as u64)) % 5) as usize;
                            (0..n as u64).map(|k| salt ^ (me * 1000 + d as u64 * 10 + k)).collect()
                        })
                        .collect(),
                );
                let recv = match kind {
                    AlltoallKind::Direct => comm.alltoallv_direct(bufs),
                    AlltoallKind::Grid => comm.alltoallv_grid(bufs),
                    AlltoallKind::Hypercube => comm.alltoallv_hypercube(bufs),
                    AlltoallKind::Auto => comm.sparse_alltoallv(bufs),
                };
                recv.to_nested()
            })
            .results
        };
        let direct = run(AlltoallKind::Direct);
        prop_assert_eq!(&run(AlltoallKind::Grid), &direct);
        prop_assert_eq!(&run(AlltoallKind::Hypercube), &direct);
        prop_assert_eq!(&run(AlltoallKind::Auto), &direct);
    }

    #[test]
    fn flat_buckets_roundtrip_nested_construction(
        nested in prop::collection::vec(prop::collection::vec(any::<u64>(), 0..12), 1..10),
    ) {
        // The flat representation must agree with the old Vec<Vec<T>>
        // construction in every observable way.
        let flat = FlatBuckets::from_nested(nested.clone());
        prop_assert_eq!(flat.buckets(), nested.len());
        prop_assert_eq!(flat.total_len(), nested.iter().map(Vec::len).sum::<usize>());
        for (j, bucket) in nested.iter().enumerate() {
            prop_assert_eq!(flat.bucket(j), bucket.as_slice());
            prop_assert_eq!(flat.count(j), bucket.len());
        }
        prop_assert_eq!(&flat.to_nested(), &nested);
        let flat_payload: Vec<u64> = nested.iter().flatten().copied().collect();
        prop_assert_eq!(flat.payload(), flat_payload.as_slice());
        prop_assert_eq!(flat.into_payload(), flat_payload);
    }

    #[test]
    fn flat_buckets_scatter_matches_nested_pushes(
        buckets in 1usize..9,
        pairs in prop::collection::vec((0usize..9, any::<u32>()), 0..60),
    ) {
        let pairs: Vec<(usize, u32)> =
            pairs.into_iter().map(|(d, x)| (d % buckets, x)).collect();
        // Reference: the old push-into-nested-buckets construction.
        let mut nested: Vec<Vec<u32>> = vec![Vec::new(); buckets];
        for &(d, x) in &pairs {
            nested[d].push(x);
        }
        // Count-then-scatter must produce the identical (stable) layout.
        let flat = FlatBuckets::from_pairs(buckets, pairs.clone());
        prop_assert_eq!(&flat.to_nested(), &nested);
        let by_fn = FlatBuckets::from_dest_fn(
            buckets,
            pairs.iter().map(|&(_, x)| x).collect::<Vec<u32>>(),
            |_| 0,
        );
        prop_assert_eq!(by_fn.count(0), pairs.len());
    }

    #[test]
    fn split_frame_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        // Whatever the network delivers, the splitter answers with
        // Ok(Some), Ok(None), or a typed WireError — by returning here
        // at all the property holds (a panic fails the test).
        let _ = split_frame(&bytes);
    }

    #[test]
    fn split_frame_survives_truncation_and_bit_flips(
        seq in any::<u64>(),
        tag in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..96),
        cut_pick in any::<usize>(),
        flip_pick in any::<usize>(),
    ) {
        let frame = good_frame(7, seq, tag, &payload);
        // The pristine frame parses back exactly.
        let (h, total) = split_frame(&frame).unwrap().expect("complete frame");
        prop_assert_eq!(total, frame.len());
        prop_assert_eq!((h.a, h.b, h.len as usize), (seq, tag, payload.len()));

        // Every truncation is "keep reading", not an error and not a panic:
        // the splitter must never trust a length before the bytes arrive.
        let cut = cut_pick % frame.len();
        prop_assert_eq!(split_frame(&frame[..cut]).unwrap(), None);

        // A single flipped bit anywhere: still a total function. Flips in
        // the length field may announce an oversized frame — that must be
        // the typed Malformed rejection, before any allocation.
        let mut evil = frame.clone();
        let bit = flip_pick % (evil.len() * 8);
        evil[bit / 8] ^= 1 << (bit % 8);
        match split_frame(&evil) {
            Ok(_) => {}
            Err(WireError::Malformed(_)) | Err(WireError::Truncated) => {}
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error class: {e:?}"))),
        }
    }

    #[test]
    fn coalesced_frames_reassemble_under_any_fragmentation(
        buckets in prop::collection::vec(prop::collection::vec(any::<u64>(), 0..40), 1..6),
        cuts in prop::collection::vec(any::<usize>(), 0..12),
    ) {
        // PR 10 frame layout: one coalesced CH_DATA frame per
        // (peer, round), payload = wire::write_slice of the whole
        // bucket. The stream below is what a peer's TCP connection
        // delivers for several rounds back to back; the kernel may
        // hand it to us in arbitrary fragments. Reassembling through
        // the same split_frame loop the receive pump runs must
        // recover every bucket exactly, regardless of where the
        // fragment boundaries fall.
        let mut stream = Vec::new();
        for (seq, bucket) in buckets.iter().enumerate() {
            let mut payload = Vec::new();
            wire::write_slice(&mut payload, bucket);
            stream.extend_from_slice(&good_frame(7, seq as u64, 3, &payload));
        }

        // Arbitrary cut points — including cuts inside headers, inside
        // payloads, and duplicate/zero-width cuts.
        let mut points: Vec<usize> = cuts.iter().map(|c| c % (stream.len() + 1)).collect();
        points.push(0);
        points.push(stream.len());
        points.sort_unstable();
        points.dedup();

        // Feed each fragment into a growing rd buffer, draining
        // complete frames as they appear (Link::parse_frames' shape).
        let mut rd: Vec<u8> = Vec::new();
        let mut got: Vec<(u64, Vec<u64>)> = Vec::new();
        for w in points.windows(2) {
            rd.extend_from_slice(&stream[w[0]..w[1]]);
            let mut off = 0;
            while let Some((h, total)) = split_frame(&rd[off..]).unwrap() {
                prop_assert_eq!(h.channel, CH_DATA);
                prop_assert_eq!((h.comm, h.b), (7, 3));
                let payload = &rd[off + FRAME_HEADER_LEN..off + total];
                let mut r = wire::WireReader::new(payload);
                let vals = wire::read_vec::<u64>(&mut r).unwrap();
                r.finish().unwrap();
                got.push((h.a, vals));
                off += total;
            }
            rd.drain(..off);
        }
        prop_assert!(rd.is_empty(), "stream fully consumed");
        let expected: Vec<(u64, Vec<u64>)> = buckets
            .iter()
            .enumerate()
            .map(|(s, b)| (s as u64, b.clone()))
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn coalesced_frame_corruption_is_a_typed_error(
        bucket in prop::collection::vec(any::<u64>(), 1..40),
        flip_pick in any::<usize>(),
    ) {
        // A bit flip anywhere in a coalesced frame must surface as a
        // typed WireError from exactly one of the two decode layers
        // (split_frame on the header, read_vec/finish on the payload)
        // — or leave a value-level change the checksum layer catches.
        // Never a panic, never an out-of-bounds read.
        let mut payload = Vec::new();
        wire::write_slice(&mut payload, &bucket);
        let mut frame = good_frame(7, 0, 0, &payload);
        let bit = flip_pick % (frame.len() * 8);
        frame[bit / 8] ^= 1 << (bit % 8);

        match split_frame(&frame) {
            Err(WireError::Malformed(_)) | Err(WireError::Truncated) => {}
            Ok(None) => {} // length grew: looks like a partial frame
            Ok(Some((_, total))) => {
                let end = total.min(frame.len());
                let mut r = wire::WireReader::new(&frame[FRAME_HEADER_LEN..end]);
                let _ = wire::read_vec::<u64>(&mut r).and_then(|_| r.finish());
            }
            Err(e) => return Err(TestCaseError::fail(format!("unexpected error class: {e:?}"))),
        }
    }

    #[test]
    fn split_frame_rejects_length_lies_before_allocating(
        lie in MAX_FRAME_PAYLOAD + 1..u32::MAX,
    ) {
        // A header announcing an absurd payload length, with no payload
        // behind it: rejected from the header alone.
        let mut out = Vec::new();
        FrameHeader { channel: CH_DATA, comm: 0, a: 0, b: 0, len: lie, sum: 0 }.write(&mut out);
        prop_assert!(matches!(
            split_frame(&out),
            Err(WireError::Malformed("oversized frame"))
        ));
    }

    #[test]
    fn wire_decoders_are_total_on_hostile_payloads(
        vals in prop::collection::vec(any::<u64>(), 0..24),
        text_bytes in prop::collection::vec(any::<u8>(), 0..24),
        cut_pick in any::<usize>(),
        flip_pick in any::<usize>(),
    ) {
        // Round-trip sanity, then the same bytes truncated and bit-flipped:
        // decode must return Ok or a typed WireError, never panic and
        // never read out of bounds.
        let value = (vals, String::from_utf8_lossy(&text_bytes).into_owned());
        let bytes = wire::encode(&value);
        prop_assert_eq!(wire::decode::<(Vec<u64>, String)>(&bytes).unwrap(), value);

        let cut = cut_pick % bytes.len().max(1);
        let _ = wire::decode::<(Vec<u64>, String)>(&bytes[..cut.min(bytes.len())]);

        if !bytes.is_empty() {
            let mut evil = bytes.clone();
            let bit = flip_pick % (evil.len() * 8);
            evil[bit / 8] ^= 1 << (bit % 8);
            let _ = wire::decode::<(Vec<u64>, String)>(&evil);
            let _ = wire::decode::<Vec<(u32, u32)>>(&evil);
            let _ = wire::decode::<String>(&evil);
        }
    }

    #[test]
    fn allreduce_vec_min_matches_reference(
        p in 1usize..8,
        len in 1usize..40,
        salt in any::<u64>(),
    ) {
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let r = comm.rank() as u64;
            let mine: Vec<u64> = (0..len as u64).map(|i| (salt ^ (r * 131 + i * 7)) % 1000).collect();
            comm.allreduce_vec(mine, |a, b| *a.min(b))
        });
        let mut expected = vec![u64::MAX; len];
        for r in 0..p as u64 {
            for (i, e) in expected.iter_mut().enumerate() {
                *e = (*e).min((salt ^ (r * 131 + i as u64 * 7)) % 1000);
            }
        }
        for res in out.results {
            prop_assert_eq!(&res, &expected);
        }
    }
}
