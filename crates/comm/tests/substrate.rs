//! Stress tests for the synchronization substrate: the dissemination
//! barrier, the typed epoch-stamped exchange cells and the
//! single-superstep collective protocol built on them (DESIGN.md §6).

use kamsta_comm::{route, AlltoallKind, FlatBuckets, Machine, MachineConfig};
use proptest::prelude::*;
use std::time::Duration;

/// Hammer mixed collectives from all PEs for many epochs. Every round
/// cycles the *same* cell sets (same payload types) through different
/// collectives with different publishers, so a stale lane, a torn epoch
/// stamp or a skewed per-type round counter corrupts a checked value
/// almost immediately.
#[test]
fn mixed_collectives_stress_many_epochs() {
    for p in [2usize, 3, 7, 16] {
        let rounds = 200usize;
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let me = comm.rank() as u64;
            let mut acc = 0u64;
            for r in 0..rounds as u64 {
                // Rotate the broadcast root so every PE publishes.
                let root = (r as usize) % p;
                let v = (comm.rank() == root).then_some(r * 1000 + root as u64);
                acc ^= comm.broadcast(root, v);

                // Scalar allgather: sum must be exact every epoch.
                let all = comm.allgather(me * 31 + r);
                acc ^= all.iter().sum::<u64>();

                // Vector payloads of epoch-varying length through the
                // same Vec<u64> cell set that gatherv uses below.
                let mine: Vec<u64> = (0..(me + r) % 5).map(|k| me * 100 + k).collect();
                acc ^= comm.allgatherv(mine).iter().sum::<u64>();

                // Rooted gatherv with rotating root; re-broadcast the
                // root's fold so every PE's accumulator stays replicated.
                let root = (r as usize + 1) % p;
                let got = comm.gatherv(root, vec![me ^ r]);
                acc ^= comm.broadcast(root, got.map(|all| all.iter().sum::<u64>()));

                // Pairwise exchange along a shifting ring.
                if p > 1 {
                    let shift = 1 + (r as usize % (p - 1));
                    let to = (comm.rank() + shift) % p;
                    let from = (comm.rank() + p - shift) % p;
                    let got = comm
                        .exchange(Some((to, me * 7 + r)), Some(from))
                        .expect("ring partner always sends");
                    assert_eq!(got, (from as u64) * 7 + r);
                }

                // Small all-to-all every few epochs.
                if r % 5 == 0 {
                    let bufs = FlatBuckets::from_nested(
                        (0..p).map(|d| vec![me * 10 + d as u64]).collect(),
                    );
                    let recv = comm.sparse_alltoallv(bufs);
                    for (src, b) in recv.iter_buckets().enumerate() {
                        assert_eq!(b, &[(src as u64) * 10 + me]);
                    }
                }

                acc ^= comm.allreduce_sum(acc & 0xFFFF);
            }
            acc
        });
        // Every PE folds identical replicated values: accs must agree.
        for (r, acc) in out.results.iter().enumerate() {
            assert_eq!(*acc, out.results[0], "p={p} rank {r} diverged");
        }
    }
}

/// Sub-communicators keep independent cell registries and epochs even
/// when parent and child collectives interleave for many rounds.
#[test]
fn split_interleaved_with_parent_collectives() {
    let p = 12;
    let out = Machine::run(MachineConfig::new(p), move |comm| {
        let color = comm.rank() % 3;
        let sub = comm.split(color, comm.rank());
        let mut acc = 0u64;
        for r in 0..100u64 {
            acc ^= sub.allreduce_sum(comm.rank() as u64 + r);
            acc ^= comm.allreduce_sum(r);
            acc ^= sub.allgatherv(vec![r, acc & 0xFF]).iter().sum::<u64>();
        }
        (color, acc)
    });
    for (rank, (color, acc)) in out.results.iter().enumerate() {
        let twin = out
            .results
            .iter()
            .enumerate()
            .find(|(other, (c, _))| c == color && *other != rank);
        if let Some((_, (_, other_acc))) = twin {
            assert_eq!(acc, other_acc, "sub-communicator color {color} diverged");
        }
    }
}

/// A PE dying mid-run must unblock peers parked inside a collective: the
/// barrier is poisoned and every waiter panics instead of deadlocking.
#[test]
fn dying_pe_unblocks_parked_waiters() {
    let res = std::panic::catch_unwind(|| {
        Machine::run(MachineConfig::new(8), |comm| {
            if comm.rank() == 3 {
                // Let the others reach the collective and park first.
                std::thread::sleep(Duration::from_millis(50));
                panic!("pe 3 dies before publishing");
            }
            // Peers block inside a collective (waiting for rank 3's
            // barrier signal) — poisoning must release them.
            comm.allgather(comm.rank() as u64)
        })
    });
    assert!(res.is_err(), "machine run must propagate the PE panic");
}

/// Same, but with the dying PE deep inside a multi-round collective
/// sequence while peers are several collectives ahead or behind.
#[test]
fn dying_pe_unblocks_waiters_mid_sequence() {
    let res = std::panic::catch_unwind(|| {
        Machine::run(MachineConfig::new(4), |comm| {
            for r in 0..10u64 {
                if comm.rank() == 1 && r == 7 {
                    panic!("pe 1 dies at round 7");
                }
                comm.allreduce_sum(r);
                comm.barrier();
            }
        })
    });
    assert!(res.is_err());
}

/// The p == 1 fast paths must agree with the general collectives.
#[test]
fn single_pe_fast_paths_match_semantics() {
    let out = Machine::run(MachineConfig::new(1), |comm| {
        let b = comm.broadcast(0, Some(41u64));
        let bv = comm.broadcast_vec(0, Some(vec![1u8, 2]));
        let g = comm.gather(0, 5u32).expect("root gathers");
        let gv = comm.gatherv(0, vec![7u16, 8]).expect("root gathers");
        let ag = comm.allgather(9u64);
        let agv = comm.allgatherv(vec![10u64, 11]);
        let ex = comm.exchange::<u64>(None, None);
        let rt = route(comm, vec![(0usize, 99u64)]);
        (b, bv, g, gv, ag, agv, ex, rt)
    });
    let (b, bv, g, gv, ag, agv, ex, rt) = out.results.into_iter().next().unwrap();
    assert_eq!(b, 41);
    assert_eq!(bv, vec![1, 2]);
    assert_eq!(g, vec![5]);
    assert_eq!(gv, vec![7, 8]);
    assert_eq!(ag, vec![9]);
    assert_eq!(agv, vec![10, 11]);
    assert_eq!(ex, None);
    assert_eq!(rt, vec![99]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Exchange-cell round-trip under every all-to-all strategy:
    /// arbitrary (dest, payload) streams must arrive exactly, in sender
    /// order, whichever routed cell protocol carries them — and repeated
    /// exchanges in one run must not bleed epochs into each other.
    #[test]
    fn cell_roundtrip_under_all_strategies(
        p in 1usize..10,
        reps in 1usize..4,
        items in prop::collection::vec((0usize..10, any::<u64>()), 0..40),
    ) {
        for kind in [
            AlltoallKind::Direct,
            AlltoallKind::Grid,
            AlltoallKind::Hypercube,
            AlltoallKind::Auto,
        ] {
            let stream = items.clone();
            let out = Machine::run(
                MachineConfig::new(p).with_alltoall(kind),
                move |comm| {
                    let me = comm.rank();
                    let mut got = Vec::new();
                    for rep in 0..reps {
                        // Each PE perturbs the shared stream so peers
                        // carry different payloads per repetition.
                        let mine: Vec<(usize, u64)> = stream
                            .iter()
                            .map(|&(d, x)| (d % p, x ^ ((me + rep) as u64)))
                            .collect();
                        got.push(route(comm, mine));
                    }
                    got
                },
            );
            // Reference: per destination, senders deliver in rank order,
            // each sender's items in stream order.
            for rep in 0..reps {
                for dest in 0..p {
                    let mut expect = Vec::new();
                    for src in 0..p {
                        expect.extend(items.iter().filter(|(d, _)| d % p == dest)
                            .map(|&(_, x)| x ^ ((src + rep) as u64)));
                    }
                    prop_assert_eq!(
                        &out.results[dest][rep],
                        &expect,
                        "kind {:?} p {} dest {} rep {}", kind, p, dest, rep
                    );
                }
            }
        }
    }

    /// The value-only request/reply protocol (two chained all-to-alls on
    /// the same cell sets) must pair every answer with its question
    /// positionally under every strategy.
    #[test]
    fn request_reply_pairs_positionally(
        p in 1usize..9,
        queries in prop::collection::vec((0usize..9, any::<u32>()), 0..30),
    ) {
        for kind in [AlltoallKind::Direct, AlltoallKind::Grid, AlltoallKind::Hypercube] {
            let queries = queries.clone();
            let out = Machine::run(MachineConfig::new(p).with_alltoall(kind), move |comm| {
                let pairs: Vec<(usize, u32)> =
                    queries.iter().map(|&(d, q)| (d % p, q)).collect();
                let bufs = FlatBuckets::from_pairs(p, pairs);
                let resolve = |q: &u32| (*q as u64).wrapping_mul(0x9E37_79B9);
                let expected: Vec<u64> = bufs.payload().iter().map(&resolve).collect();
                let answers = comm.request_reply(bufs, resolve);
                (answers, expected)
            });
            for (answers, expected) in out.results {
                prop_assert_eq!(answers, expected, "kind {:?} p {}", kind, p);
            }
        }
    }
}
