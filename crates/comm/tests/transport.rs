//! Transport-boundary suites: Wire round-trip properties for every
//! encoder, and the cross-transport oracle — the same program must
//! produce identical results *and* bit-identical modeled cost counters
//! under the shared-cells and byte-stream backends.

use kamsta_comm::wire::{decode, encode};
use kamsta_comm::{
    route, AlltoallKind, Comm, FlatBuckets, Machine, MachineConfig, PeStats, TransportKind, Wire,
};
use proptest::prelude::*;

fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: &T) -> Result<(), TestCaseError> {
    let buf = encode(v);
    let back = decode::<T>(&buf);
    prop_assert_eq!(back.as_ref().ok(), Some(v), "encoded: {:?}", buf);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn wire_scalars_roundtrip(
        a in any::<u8>(), b in any::<u16>(), c in any::<u32>(), d in any::<u64>(),
        e in any::<u128>(), f in any::<i32>(), g in any::<i64>(), h in any::<usize>(),
        x in any::<f32>(), y in any::<f64>(), t in any::<bool>(),
    ) {
        roundtrip(&a)?;
        roundtrip(&b)?;
        roundtrip(&c)?;
        roundtrip(&d)?;
        roundtrip(&e)?;
        roundtrip(&f)?;
        roundtrip(&g)?;
        roundtrip(&h)?;
        roundtrip(&t)?;
        // Floats round-trip by bits (NaN compares unequal, check bits).
        prop_assert_eq!(decode::<f32>(&encode(&x)).unwrap().to_bits(), x.to_bits());
        prop_assert_eq!(decode::<f64>(&encode(&y)).unwrap().to_bits(), y.to_bits());
    }

    #[test]
    fn wire_containers_roundtrip(
        v in prop::collection::vec(any::<u64>(), 0..40),
        o in any::<Option<(u32, u64)>>(),
        s in prop::collection::vec(any::<u8>(), 0..24)
            .prop_map(|v| String::from_utf8_lossy(&v).into_owned()),
        pair in any::<(u64, u32, bool)>(),
        nested in prop::collection::vec(prop::collection::vec(any::<u32>(), 0..6), 0..6),
    ) {
        roundtrip(&v)?;
        roundtrip(&o)?;
        roundtrip(&s)?;
        roundtrip(&pair)?;
        roundtrip(&nested)?;
    }

    #[test]
    fn wire_flat_buckets_roundtrip(
        nested in prop::collection::vec(prop::collection::vec(any::<u64>(), 0..10), 1..9),
    ) {
        // FlatBuckets must survive with its sdispls arrays intact, not
        // merely its flattened payload.
        let fb = FlatBuckets::from_nested(nested);
        let back = decode::<FlatBuckets<u64>>(&encode(&fb)).unwrap();
        prop_assert_eq!(back.displs(), fb.displs());
        prop_assert_eq!(back.payload(), fb.payload());
        prop_assert_eq!(&back, &fb);
    }

    #[test]
    fn wire_flat_buckets_of_tuples_roundtrip(
        pairs in prop::collection::vec((0usize..7, any::<(u32, u64)>()), 0..40),
    ) {
        let fb = FlatBuckets::from_pairs(7, pairs);
        roundtrip(&fb)?;
    }

    #[test]
    fn wire_rejects_any_truncation(
        v in prop::collection::vec(any::<(u64, u32)>(), 1..10),
    ) {
        let buf = encode(&v);
        for cut in 0..buf.len() {
            prop_assert!(decode::<Vec<(u64, u32)>>(&buf[..cut]).is_err(), "cut={cut}");
        }
    }
}

/// A program exercising every collective and all-to-all strategy, whose
/// per-PE result captures everything observable.
fn mixed_workload(comm: &Comm) -> Vec<u64> {
    let p = comm.size();
    let me = comm.rank() as u64;
    let mut acc: Vec<u64> = Vec::new();

    comm.barrier();
    acc.push(comm.broadcast(0, (comm.rank() == 0).then_some(41u64)));
    acc.extend(comm.broadcast_vec(p - 1, (comm.rank() == p - 1).then(|| vec![me, 7, 9])));
    acc.extend(comm.allgather(me * 3 + 1));
    acc.extend(comm.allgatherv((0..=me).collect::<Vec<u64>>()));
    if let Some(g) = comm.gather(0, me + 100) {
        acc.extend(g);
    }
    if let Some(g) = comm.gatherv(p / 2, vec![me; (me as usize % 3) + 1]) {
        acc.extend(g);
    }
    acc.push(comm.allreduce_sum(me + 1));
    acc.push(comm.allreduce_max(me * 17 % 5));
    acc.push(comm.exscan_sum(me + 2));
    if let Some(r) = comm.reduce(0, me + 5, |a, b| a.wrapping_mul(*b).wrapping_add(1)) {
        acc.push(r);
    }
    acc.extend(comm.allreduce_vec(vec![me, me * 2, 99 - me], |a, b| *a.min(b)));

    // Every all-to-all strategy on the same skewed payload.
    let mk = |salt: u64| {
        FlatBuckets::from_nested(
            (0..p)
                .map(|d| {
                    let n = ((me * 13 + d as u64 * 7 + salt) % 4) as usize;
                    (0..n as u64)
                        .map(|k| me * 1000 + d as u64 * 10 + k)
                        .collect()
                })
                .collect(),
        )
    };
    acc.extend(comm.alltoallv_direct(mk(1)).into_payload());
    acc.extend(comm.alltoallv_grid(mk(2)).into_payload());
    acc.extend(comm.alltoallv_hypercube(mk(3)).into_payload());
    acc.extend(comm.alltoallv_dd(mk(4), 2).into_payload());
    acc.extend(comm.alltoallv_dd(mk(5), 3).into_payload());
    acc.extend(comm.sparse_alltoallv(mk(6)).into_payload());
    acc.extend(route(
        comm,
        (0..2 * p).map(|k| (k % p, me * 31 + k as u64)).collect(),
    ));

    // The request/reply pattern behind the pull protocol.
    let requests =
        FlatBuckets::from_dest_fn(p, (0..3 * p as u64).collect(), |&q| (q % p as u64) as usize);
    acc.extend(comm.request_reply(requests, |&q| q * 2 + me));

    // Sub-communicators: parity groups, collectives inside, then back.
    let sub = comm.split(comm.rank() % 2, comm.rank());
    acc.push(sub.allreduce_sum(me + 50));
    acc.extend(sub.allgather(me));
    acc.push(comm.allreduce_sum(acc.iter().copied().fold(0u64, u64::wrapping_add)));
    acc
}

fn run_workload(p: usize, kind: TransportKind) -> (Vec<Vec<u64>>, Vec<PeStats>, u64, u64) {
    let out = Machine::run(MachineConfig::new(p).with_transport(kind), mixed_workload);
    let msgs = out.total_messages();
    let bytes = out.total_bytes();
    (out.results, out.stats, msgs, bytes)
}

#[test]
fn cross_transport_oracle_results_and_charges_identical() {
    for p in [1usize, 2, 3, 4, 7, 8, 16] {
        let (res_c, stats_c, msgs_c, bytes_c) = run_workload(p, TransportKind::Cells);
        for kind in [TransportKind::Bytes, TransportKind::Sockets] {
            let (res_b, stats_b, msgs_b, bytes_b) = run_workload(p, kind);
            assert_eq!(res_c, res_b, "p={p} {kind:?}: results diverge");
            assert_eq!(msgs_c, msgs_b, "p={p} {kind:?}: total_messages diverge");
            assert_eq!(bytes_c, bytes_b, "p={p} {kind:?}: total_bytes diverge");
            // Bit-identical per-PE counters, including the modeled f64
            // clock: charges sit above the transport boundary at
            // identical positions.
            for (rank, (c, b)) in stats_c.iter().zip(&stats_b).enumerate() {
                assert_eq!(c, b, "p={p} rank={rank} {kind:?}: PeStats diverge");
                assert_eq!(
                    c.modeled_time.to_bits(),
                    b.modeled_time.to_bits(),
                    "p={p} rank={rank} {kind:?}: modeled clock not bit-identical"
                );
            }
        }
    }
}

#[test]
fn alltoall_kinds_agree_across_transports() {
    for kind in [
        AlltoallKind::Auto,
        AlltoallKind::Direct,
        AlltoallKind::Grid,
        AlltoallKind::Hypercube,
    ] {
        let run = |t: TransportKind| {
            Machine::run(
                MachineConfig::new(9).with_alltoall(kind).with_transport(t),
                |comm| {
                    let p = comm.size();
                    let me = comm.rank() as u64;
                    let bufs = FlatBuckets::from_dest_fn(
                        p,
                        (0..40).map(|k| me * 100 + k).collect::<Vec<u64>>(),
                        |&x| (x % p as u64) as usize,
                    );
                    comm.sparse_alltoallv(bufs).to_nested()
                },
            )
            .results
        };
        let cells = run(TransportKind::Cells);
        assert_eq!(cells, run(TransportKind::Bytes), "{kind:?}");
        assert_eq!(cells, run(TransportKind::Sockets), "{kind:?}");
    }
}

#[test]
fn transport_is_inherited_by_split_subcommunicators() {
    for kind in [TransportKind::Bytes, TransportKind::Sockets] {
        let out = Machine::run(MachineConfig::new(4).with_transport(kind), |comm| {
            assert_eq!(comm.transport(), kind);
            let sub = comm.split(comm.rank() / 2, comm.rank());
            assert_eq!(sub.transport(), kind);
            sub.allreduce_sum(comm.rank() as u64)
        });
        assert_eq!(out.results, vec![1, 1, 5, 5], "{kind:?}");
    }
}
