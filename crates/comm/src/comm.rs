//! The per-PE communicator handle and the basic collective operations.
//!
//! Every operation on [`Comm`] is *collective*: all PEs of the communicator
//! must call it in the same order (standard MPI semantics). Collectives are
//! built from typed exchange cells ([`crate::cells`]) and the dissemination
//! barrier with folded-in clock max-reduction; the modeled α-β cost of each
//! operation follows the complexity stated in Sec. II-A of the paper (e.g.
//! `O(α log p + βℓ)` for broadcast, (all)reduce and prefix sums).
//!
//! Each collective is a **single superstep**: publish into your own typed
//! cell, one barrier, read peers' cells directly. Epoch stamps on the
//! cells validate that readers see exactly the round they expect, which is
//! what lets the old publish → barrier → read → barrier → clear discipline
//! drop its second barrier (see `cells.rs` for the safety argument). On a
//! single-PE communicator the collectives skip synchronisation entirely.

use crate::alltoall::AlltoallKind;
use crate::barrier::ClockBarrier;
use crate::bytestream::{ByteHub, Payload};
use crate::cells::{CellRegistry, CellSet, Round};
use crate::cost::{Clock, CostModel, PeStats};
use crate::fault::FaultyTransport;
use crate::socket::SocketFabric;
use crate::transport::{raise, To, TransportKind};
use crate::wire::Wire;
use std::any::{Any, TypeId};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::Arc;

/// State shared by all PEs of one communicator.
#[derive(Debug)]
pub(crate) struct CommShared {
    pub(crate) barrier: ClockBarrier,
    /// The typed cell blackboard. Data plane of the cells transport;
    /// under the byte transport it still carries the *out-of-band*
    /// communicator-construction plumbing of [`Comm::split`] (a real
    /// multi-process launcher builds sub-communicators out-of-band too).
    pub(crate) cells: CellRegistry,
    /// The per-PE-pair byte queues — `Some` iff this communicator runs
    /// the [`TransportKind::Bytes`] backend.
    pub(crate) bytes: Option<ByteHub>,
}

impl CommShared {
    /// `machine_threads` is the machine-wide OS thread count,
    /// `p × threads_per_pe` — sub-communicator barriers judge host
    /// oversubscription by it, not by their own size, and hybrid
    /// machines count their intra-PE threads too.
    /// `faults` arms fault injection on the byte-hub data plane (sockets
    /// carry theirs on the fabric; cells sit above the boundary).
    pub(crate) fn new(
        p: usize,
        machine_threads: usize,
        transport: TransportKind,
        faults: Option<Arc<FaultyTransport>>,
    ) -> Self {
        Self {
            barrier: ClockBarrier::new(p, machine_threads),
            cells: CellRegistry::new(p),
            bytes: match transport {
                // Sockets carry their frames on the fabric owned by the
                // `Comm` itself, not on shared in-process state.
                TransportKind::Cells | TransportKind::Sockets => None,
                TransportKind::Bytes => Some(ByteHub::new(p, faults)),
            },
        }
    }
}

/// This PE's cached handle on one cell set plus its round counter. The
/// counter is PE-local but advances identically on every PE (collectives
/// run in the same order everywhere), so all PEs agree on each round's
/// epoch without sharing a counter.
struct CellCacheEntry {
    set: Arc<dyn Any + Send + Sync>,
    epoch: u64,
}

/// A PE's handle on one communicator (MPI communicator analogue).
///
/// Cheap to pass by reference into algorithm code; [`Comm::split`] derives
/// sub-communicators that share the PE's modeled clock.
pub struct Comm {
    rank: usize,
    size: usize,
    /// OS threads of the whole machine, `pes × threads_per_pe`
    /// (constant across `split`).
    machine_threads: usize,
    shared: Arc<CommShared>,
    clock: Arc<Clock>,
    cost: CostModel,
    cell_cache: RefCell<HashMap<TypeId, CellCacheEntry>>,
    /// Round sequence of the byte lane; advances identically on every PE
    /// (SPMD collective order), stamping each frame.
    seq: Cell<u64>,
    /// The socket mesh — `Some` iff this communicator runs the
    /// [`TransportKind::Sockets`] backend. Shared (via `Arc`) with every
    /// sub-communicator split off this one: frames are demultiplexed by
    /// `comm_id`, not by connection.
    socket: Option<Arc<SocketFabric>>,
    /// Local rank → machine-world rank, for sub-communicators over the
    /// socket mesh. `None` means the identity (the world communicator).
    group: Option<Arc<Vec<usize>>>,
    /// Communicator id stamped on socket frames (world = 0; children
    /// derive theirs deterministically in [`Comm::split`]).
    comm_id: u64,
    /// Socket-barrier episode counter (advances identically on every PE).
    bepoch: Cell<u64>,
    /// How many `split`s this communicator has performed — salt for the
    /// children's `comm_id` derivation.
    splits: Cell<u64>,
    pub(crate) alltoall_kind: AlltoallKind,
    pub(crate) grid_threshold_bytes: usize,
    /// Reusable send/scratch buffers for the byte lane. Buckets are
    /// encoded directly into a pooled buffer, handed to the transport,
    /// and recycled once the bytes are on the wire — steady-state rounds
    /// allocate nothing on the send path.
    pool: RefCell<Vec<Vec<u8>>>,
}

impl std::fmt::Debug for Comm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Comm")
            .field("rank", &self.rank)
            .field("size", &self.size)
            .finish()
    }
}

pub(crate) fn bytes_of<T>(n: usize) -> u64 {
    (n * std::mem::size_of::<T>()) as u64
}

impl Comm {
    #[allow(clippy::too_many_arguments)] // internal constructor mirroring MachineConfig
    pub(crate) fn new(
        rank: usize,
        size: usize,
        machine_threads: usize,
        shared: Arc<CommShared>,
        clock: Arc<Clock>,
        cost: CostModel,
        alltoall_kind: AlltoallKind,
        grid_threshold_bytes: usize,
    ) -> Self {
        Self {
            rank,
            size,
            machine_threads,
            shared,
            clock,
            cost,
            cell_cache: RefCell::new(HashMap::new()),
            seq: Cell::new(0),
            socket: None,
            group: None,
            comm_id: 0,
            bepoch: Cell::new(0),
            splits: Cell::new(0),
            alltoall_kind,
            grid_threshold_bytes,
            pool: RefCell::new(Vec::new()),
        }
    }

    /// Re-home this communicator onto a socket mesh: frames travel the
    /// fabric stamped with `comm_id`, local ranks map to world ranks via
    /// `group` (`None` = identity, i.e. the world communicator).
    pub(crate) fn into_socket(
        mut self,
        fabric: Arc<SocketFabric>,
        group: Option<Arc<Vec<usize>>>,
        comm_id: u64,
    ) -> Self {
        debug_assert_eq!(
            group.as_ref().map_or(fabric.size(), |g| g.len()),
            self.size,
            "socket group table must cover the communicator"
        );
        self.socket = Some(fabric);
        self.group = group;
        self.comm_id = comm_id;
        self
    }

    /// Machine-world rank of this communicator's local rank `local`.
    #[inline]
    fn world_of(&self, local: usize) -> usize {
        match &self.group {
            None => local,
            Some(g) => g[local],
        }
    }

    /// This PE's rank within the communicator, `0..size`.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of PEs in the communicator.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// The machine cost model in effect.
    #[inline]
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Hybrid threads per PE (`t` in the paper's `boruvka-t` naming).
    #[inline]
    pub fn threads_per_pe(&self) -> usize {
        self.cost.threads_per_pe
    }

    /// The intra-PE thread pool handle: a [`rayon::ThreadPool`] whose
    /// `install` grants this PE's `threads_per_pe` as the ambient
    /// parallel width. The machine harness already installs every PE's
    /// rank closure at this width, so kernels that simply call
    /// `par_iter`/`join` inherit it; this handle is for callers that
    /// need to *re-establish* the width on another thread or widen a
    /// specific section explicitly. Cheap to construct — all widths
    /// share one global worker pool sized to the host's cores, which is
    /// what keeps `p × t` from oversubscribing the machine.
    pub fn pool(&self) -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new()
            .num_threads(self.cost.threads_per_pe)
            .build()
            .expect("width handles cannot fail to build")
    }

    /// The PE's modeled clock.
    #[inline]
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Snapshot of this PE's cost statistics.
    pub fn stats(&self) -> PeStats {
        self.clock.stats()
    }

    #[inline]
    pub(crate) fn log2p(&self) -> u64 {
        crate::ceil_log2(self.size).max(1) as u64
    }

    /// Charge `ops` units of local work (γ-term, divided by the hybrid
    /// speedup). Algorithms call this at their local kernels so that the
    /// modeled clock reflects computation as well as communication.
    #[inline]
    pub fn charge_local(&self, ops: u64) {
        self.clock.advance(self.cost.local_time(ops));
        self.clock.record_local(ops);
    }

    /// Charge a communication event of `msgs` message startups and `bytes`
    /// bottleneck volume onto this PE's clock.
    #[inline]
    pub fn charge_comm(&self, msgs: u64, bytes: u64) {
        self.clock.advance(self.cost.comm_time(msgs, bytes));
        self.clock.record_comm(msgs, bytes);
    }

    /// Internal rendezvous: synchronises PEs *and* max-syncs modeled
    /// clocks (the max-reduction rides inside the dissemination rounds),
    /// but charges nothing. Collectives are built from this.
    pub(crate) fn sync(&self) {
        if self.size == 1 {
            return;
        }
        let synced = if self.socket.is_some() {
            self.socket_barrier()
        } else {
            self.shared.barrier.wait(self.rank, self.clock.now())
        };
        self.clock.set(synced);
    }

    /// Dissemination barrier over the socket mesh, folding in the clock
    /// max exactly like [`ClockBarrier::wait`]: round `k` sends the
    /// running maximum to rank `me + 2^k` and receives from `me − 2^k`
    /// (mod size), `⌈log₂ size⌉` rounds in total. `max` is associative,
    /// commutative, and exact over `f64`, so every PE converges on the
    /// bit-identical synced clock the in-process barrier would produce.
    fn socket_barrier(&self) -> f64 {
        let fab = self.socket.as_ref().expect("socket barrier without mesh");
        let episode = self.bepoch.get() + 1;
        self.bepoch.set(episode);
        let mut best = self.clock.now();
        for k in 0..crate::ceil_log2(self.size) {
            let code = (episode << 8) | k as u64;
            let to = self.world_of((self.rank + (1 << k)) % self.size);
            let from = self.world_of((self.rank + self.size - (1 << k)) % self.size);
            fab.send_barrier(to, self.comm_id, code, best.to_bits())
                .unwrap_or_else(|e| raise(e));
            let bits = fab
                .recv_barrier(from, self.comm_id, code)
                .unwrap_or_else(|e| raise(e));
            best = best.max(f64::from_bits(bits));
        }
        best
    }

    /// The byte-transport queue fabric, when this communicator runs the
    /// bytes backend.
    #[inline]
    pub(crate) fn hub(&self) -> Option<&ByteHub> {
        self.shared.bytes.as_ref()
    }

    /// Whether this communicator's frames travel a byte lane (in-process
    /// queues or sockets) rather than the cells blackboard.
    #[inline]
    pub(crate) fn has_byte_lane(&self) -> bool {
        self.socket.is_some() || self.shared.bytes.is_some()
    }

    /// Take a cleared scratch buffer from the lane pool (or allocate a
    /// fresh one on the first rounds). Return it with [`Comm::buf_put`]
    /// once the bytes are on the wire so later rounds reuse the capacity.
    pub(crate) fn buf_take(&self) -> Vec<u8> {
        let mut buf = self.pool.borrow_mut().pop().unwrap_or_default();
        buf.clear();
        buf
    }

    /// Recycle a scratch buffer into the lane pool. The pool is bounded;
    /// beyond that, buffers are simply dropped.
    pub(crate) fn buf_put(&self, buf: Vec<u8>) {
        let mut pool = self.pool.borrow_mut();
        if pool.len() < 32 {
            pool.push(buf);
        }
    }

    /// Send one coalesced bucket frame to local rank `dst` on whichever
    /// byte lane this communicator runs, recycling the buffer afterwards.
    /// Transport failures abort the PE with a typed error (see
    /// [`crate::transport::raise`]).
    pub(crate) fn lane_send(&self, dst: usize, seq: u64, tag: u64, buf: Vec<u8>) {
        if let Some(fab) = &self.socket {
            fab.send_data(self.world_of(dst), self.comm_id, seq, tag, &buf)
                .unwrap_or_else(|e| raise(e));
            self.buf_put(buf);
        } else if let Some(hub) = self.hub() {
            hub.push(self.rank, dst, seq, tag, Payload::Owned(buf))
                .unwrap_or_else(|e| raise(e));
        } else {
            unreachable!("lane_send on the cells transport");
        }
    }

    /// Broadcast one encoded frame to every *other* rank of this
    /// communicator. The bytes are encoded exactly once: sockets write
    /// the same buffer to each peer, the in-process hub shares them via
    /// `Arc` — no per-destination clone anywhere.
    pub(crate) fn lane_broadcast(&self, seq: u64, tag: u64, buf: Vec<u8>) {
        if let Some(fab) = &self.socket {
            for dst in 0..self.size {
                if dst == self.rank {
                    continue;
                }
                fab.send_data(self.world_of(dst), self.comm_id, seq, tag, &buf)
                    .unwrap_or_else(|e| raise(e));
            }
            self.buf_put(buf);
        } else if let Some(hub) = self.hub() {
            let shared = Arc::new(buf);
            for dst in 0..self.size {
                if dst == self.rank {
                    continue;
                }
                hub.push(
                    self.rank,
                    dst,
                    seq,
                    tag,
                    Payload::Shared(Arc::clone(&shared)),
                )
                .unwrap_or_else(|e| raise(e));
            }
        } else {
            unreachable!("lane_broadcast on the cells transport");
        }
    }

    /// Pop the round-`seq` frame from local rank `src` off the byte lane
    /// and decode it in place: `f` gets a borrowed view of the payload
    /// (no copy out of the receive buffer), and the buffer itself is
    /// recycled into the lane pool where ownership allows.
    pub(crate) fn lane_pop_with<R>(
        &self,
        src: usize,
        seq: u64,
        tag: u64,
        what: &str,
        f: impl FnOnce(&[u8]) -> Result<R, crate::wire::WireError>,
    ) -> R {
        let decoded = if let Some(fab) = &self.socket {
            fab.recv_data_with(self.world_of(src), self.comm_id, seq, tag, what, |bytes| {
                f(bytes)
            })
            .unwrap_or_else(|e| raise(e))
        } else if let Some(hub) = self.hub() {
            let payload = hub
                .pop_frame(src, self.rank, seq, tag, what)
                .unwrap_or_else(|e| raise(e));
            let out = f(payload.as_slice());
            if let Payload::Owned(buf) = payload {
                self.buf_put(buf);
            }
            out
        } else {
            unreachable!("lane_pop_with on the cells transport");
        };
        decoded.unwrap_or_else(|e| {
            raise(crate::transport::TransportError::Protocol(format!(
                "decoding {what} of round {seq}: {e}"
            )))
        })
    }

    /// The transport this communicator runs over.
    #[inline]
    pub fn transport(&self) -> TransportKind {
        if self.socket.is_some() {
            TransportKind::Sockets
        } else if self.shared.bytes.is_some() {
            TransportKind::Bytes
        } else {
            TransportKind::Cells
        }
    }

    /// Next byte-transport round sequence number (advances identically
    /// on every PE: collectives are SPMD-ordered).
    #[inline]
    pub(crate) fn next_seq(&self) -> u64 {
        let s = self.seq.get() + 1;
        self.seq.set(s);
        s
    }

    /// Start a single-superstep round on the cell set for type `T`: the
    /// per-type epoch advances by one (identically on every PE), the set
    /// is resolved from the PE-local cache (registry mutex only on first
    /// use of a type). Cells-backend data plane, plus the out-of-band
    /// plumbing of [`Comm::split`] under either backend.
    pub(crate) fn cells_round<T: Send + 'static>(&self) -> Round<T> {
        let mut cache = self.cell_cache.borrow_mut();
        let entry = cache
            .entry(TypeId::of::<T>())
            .or_insert_with(|| CellCacheEntry {
                set: self.shared.cells.get::<T>(),
                epoch: 0,
            });
        entry.epoch += 1;
        let set = Arc::clone(&entry.set)
            .downcast::<CellSet<T>>()
            .expect("cell cache entry keyed by TypeId");
        Round::new(set, entry.epoch, self.rank)
    }

    /// Explicit barrier (collective). Charges `α·log p`.
    pub fn barrier(&self) {
        self.charge_comm(self.log2p(), 0);
        self.sync();
    }

    // ------------------------------------------------------------------
    // rooted / replicated collectives
    // ------------------------------------------------------------------

    /// Broadcast `value` from `root` to all PEs (collective).
    ///
    /// Non-root PEs pass `None`. Cost: `α log p + β·bytes`.
    pub fn broadcast<T: Wire + Clone + Send + Sync + 'static>(
        &self,
        root: usize,
        value: Option<T>,
    ) -> T {
        debug_assert!(root < self.size);
        if self.size == 1 {
            self.charge_comm(self.log2p(), bytes_of::<T>(1));
            return value.expect("root must supply a value to broadcast");
        }
        let round = self.xround::<T>();
        if self.rank == root {
            round.post(
                To::All,
                value.expect("root must supply a value to broadcast"),
            );
        }
        self.sync();
        let out = round.read(root).into_owned();
        self.charge_comm(self.log2p(), bytes_of::<T>(1));
        out
    }

    /// Broadcast a vector from `root`; cost `α log p + β·len·size_of::<T>()`.
    pub fn broadcast_vec<T: Wire + Clone + Send + Sync + 'static>(
        &self,
        root: usize,
        value: Option<Vec<T>>,
    ) -> Vec<T> {
        debug_assert!(root < self.size);
        if self.size == 1 {
            let v = value.expect("root must supply a value to broadcast");
            self.charge_comm(self.log2p(), bytes_of::<T>(v.len()));
            return v;
        }
        let round = self.xround::<Vec<T>>();
        if self.rank == root {
            round.post(
                To::All,
                value.expect("root must supply a value to broadcast"),
            );
        }
        self.sync();
        let out = round.read(root).into_owned();
        self.charge_comm(self.log2p(), bytes_of::<T>(out.len()));
        out
    }

    /// Gather one value per PE at `root` (rank order). Returns `Some` on the
    /// root, `None` elsewhere.
    pub fn gather<T: Wire + Send + 'static>(&self, root: usize, value: T) -> Option<Vec<T>> {
        debug_assert!(root < self.size);
        if self.size == 1 {
            self.charge_comm(self.log2p(), bytes_of::<T>(1));
            return Some(vec![value]);
        }
        let round = self.xround::<T>();
        round.post(To::One(root), value);
        self.sync();
        let out = if self.rank == root {
            Some((0..self.size).map(|r| round.take(r)).collect())
        } else {
            None
        };
        let total = bytes_of::<T>(self.size);
        if self.rank == root {
            self.charge_comm(self.log2p(), total);
        } else {
            self.charge_comm(self.log2p(), bytes_of::<T>(1));
        }
        out
    }

    /// Gather a vector per PE at `root`, concatenated in rank order.
    pub fn gatherv<T: Wire + Send + 'static>(&self, root: usize, value: Vec<T>) -> Option<Vec<T>> {
        debug_assert!(root < self.size);
        if self.size == 1 {
            self.charge_comm(self.log2p(), bytes_of::<T>(value.len()));
            return Some(value);
        }
        let own = bytes_of::<T>(value.len());
        let round = self.xround::<Vec<T>>();
        round.post(To::One(root), value);
        self.sync();
        let out = if self.rank == root {
            let mut all = Vec::new();
            for r in 0..self.size {
                all.extend(round.take(r));
            }
            Some(all)
        } else {
            None
        };
        match &out {
            Some(all) => self.charge_comm(self.log2p(), bytes_of::<T>(all.len())),
            None => self.charge_comm(self.log2p(), own),
        }
        out
    }

    /// All PEs obtain the vector of every PE's `value`, in rank order.
    /// Cost: `α log p + β·p·size_of::<T>()` (ℓ = total message length).
    pub fn allgather<T: Wire + Clone + Send + Sync + 'static>(&self, value: T) -> Vec<T> {
        let all = self.allgather_uncharged(value);
        self.charge_comm(self.log2p(), bytes_of::<T>(self.size));
        all
    }

    /// Allgather without cost charging — for simulation plumbing whose
    /// real-world counterpart needs no communication (e.g. [`Comm::split`]
    /// membership derived from static structure).
    fn allgather_uncharged<T: Wire + Clone + Send + Sync + 'static>(&self, value: T) -> Vec<T> {
        if self.size == 1 {
            return vec![value];
        }
        let round = self.xround::<T>();
        round.post(To::All, value);
        self.sync();
        (0..self.size).map(|r| round.read(r).into_owned()).collect()
    }

    /// All PEs obtain the concatenation (rank order) of every PE's vector.
    /// Cost: `α log p + β·ℓ` with ℓ the sum of all message lengths
    /// (the allgather/gossiping bound from Sec. II-A).
    pub fn allgatherv<T: Wire + Clone + Send + Sync + 'static>(&self, value: Vec<T>) -> Vec<T> {
        if self.size == 1 {
            self.charge_comm(self.log2p(), bytes_of::<T>(value.len()));
            return value;
        }
        let round = self.xround::<Vec<T>>();
        round.post(To::All, value);
        self.sync();
        // One read per source (the byte transport consumes its queues).
        let parts: Vec<_> = (0..self.size).map(|r| round.read(r)).collect();
        let total: usize = parts.iter().map(|v| v.len()).sum();
        let mut all = Vec::with_capacity(total);
        for v in &parts {
            all.extend_from_slice(v);
        }
        self.charge_comm(self.log2p(), bytes_of::<T>(all.len()));
        all
    }

    // ------------------------------------------------------------------
    // reductions and scans
    // ------------------------------------------------------------------

    /// Reduce all PEs' values with `op` at `root` (deterministic rank-order
    /// fold). Cost: `α log p + β·size_of::<T>()`.
    pub fn reduce<T, F>(&self, root: usize, value: T, op: F) -> Option<T>
    where
        T: Wire + Clone + Send + Sync + 'static,
        F: Fn(&T, &T) -> T,
    {
        let gathered = self.gather(root, value);
        gathered.map(|vals| {
            let mut it = vals.into_iter();
            let first = it.next().expect("communicator is non-empty");
            it.fold(first, |acc, x| op(&acc, &x))
        })
    }

    /// All-reduce: every PE obtains `op` folded over all values in rank
    /// order (deterministic even for non-commutative `op`).
    /// Cost: `α log p + β·size_of::<T>()`.
    pub fn allreduce<T, F>(&self, value: T, op: F) -> T
    where
        T: Wire + Clone + Send + Sync + 'static,
        F: Fn(&T, &T) -> T,
    {
        let all = self.allgather(value);
        // The allgather already charged α log p + β·p·s; the extra fold is
        // local and negligible for scalars.
        let mut it = all.into_iter();
        let first = it.next().expect("communicator is non-empty");
        it.fold(first, |acc, x| op(&acc, &x))
    }

    /// Convenience: global sum of a `u64`.
    pub fn allreduce_sum(&self, value: u64) -> u64 {
        self.allreduce(value, |a, b| a + b)
    }

    /// Convenience: global maximum of a `u64`.
    pub fn allreduce_max(&self, value: u64) -> u64 {
        self.allreduce(value, |a, b| *a.max(b))
    }

    /// Convenience: global minimum of a `u64`.
    pub fn allreduce_min(&self, value: u64) -> u64 {
        self.allreduce(value, |a, b| *a.min(b))
    }

    /// Element-wise vector all-reduce — the primitive behind the replicated
    /// base case (Sec. IV-D: "the lightest edge for each vertex can then be
    /// computed using an allReduce-operation with vector length n′").
    ///
    /// Implemented as a hypercube butterfly with fold-in/fold-out for
    /// non-power-of-two `p`, so simulation work per PE is `O(ℓ log p)`
    /// rather than `O(ℓ·p)`. Charged at the recursive-halving bound
    /// `α log p + 2β·ℓ`.
    ///
    /// All PEs must pass vectors of equal length. `op` must be associative
    /// and commutative (element-wise min/max/sum style).
    pub fn allreduce_vec<T, F>(&self, mut value: Vec<T>, op: F) -> Vec<T>
    where
        T: Wire + Clone + Send + 'static,
        F: Fn(&T, &T) -> T,
    {
        let p = self.size;
        let len = value.len();
        self.charge_comm(self.log2p(), 2 * bytes_of::<T>(len));
        if p == 1 {
            return value;
        }
        let q = crate::floor_pow2(p);
        let extras = p - q; // ranks q..p fold into ranks 0..extras
                            // Fold-in: rank q+r sends to r.
        if self.rank >= q {
            let dest = self.rank - q;
            self.exchange(Some((dest, std::mem::take(&mut value))), None::<usize>);
        } else if self.rank < extras {
            let src = self.rank + q;
            let other = self
                .exchange::<Vec<T>>(None, Some(src))
                .expect("fold-in partner must send");
            combine_elementwise(&mut value, &other, &op, self.rank < src);
        } else {
            self.exchange(None::<(usize, Vec<T>)>, None);
        }
        // Butterfly among ranks 0..q.
        let dims = crate::ceil_log2(q);
        for d in 0..dims {
            if self.rank < q {
                let partner = self.rank ^ (1 << d);
                let other = self
                    .exchange(Some((partner, value.clone())), Some(partner))
                    .expect("butterfly partner must send");
                combine_elementwise(&mut value, &other, &op, self.rank < partner);
            } else {
                self.exchange(None::<(usize, Vec<T>)>, None);
            }
        }
        // Fold-out: rank r sends the result back to q+r.
        if self.rank >= q {
            let src = self.rank - q;
            value = self
                .exchange(None, Some(src))
                .expect("fold-out partner must send");
        } else if self.rank < extras {
            let dest = self.rank + q;
            self.exchange(Some((dest, value.clone())), None);
        } else {
            self.exchange(None::<(usize, Vec<T>)>, None);
        }
        value
    }

    /// Exclusive prefix "sum" with `op` over rank order; rank 0 receives
    /// `identity`. Cost: `α log p + β·size_of::<T>()`.
    pub fn exscan<T, F>(&self, value: T, identity: T, op: F) -> T
    where
        T: Wire + Clone + Send + Sync + 'static,
        F: Fn(&T, &T) -> T,
    {
        let all = self.allgather(value);
        all[..self.rank].iter().fold(identity, |acc, x| op(&acc, x))
    }

    /// Exclusive prefix sum of `u64` values (the common case: computing
    /// global offsets of distributed sequences).
    pub fn exscan_sum(&self, value: u64) -> u64 {
        self.exscan(value, 0, |a, b| a + b)
    }

    // ------------------------------------------------------------------
    // point-to-point (paired) exchange
    // ------------------------------------------------------------------

    /// Paired send/receive, collective over the communicator: *every* PE
    /// must call this each round, passing `None`s if idle. Used by the
    /// hypercube building blocks.
    ///
    /// `send` is `(destination, payload)`; `recv_from` names the rank whose
    /// payload to take. Cost per side: `α + β·payload bytes`.
    pub fn exchange<V: Wire + Send + 'static>(
        &self,
        send: Option<(usize, V)>,
        recv_from: Option<usize>,
    ) -> Option<V> {
        if self.size == 1 {
            debug_assert!(send.is_none(), "self-exchange is a protocol bug");
            debug_assert!(recv_from.is_none());
            return None;
        }
        let round = self.xround::<V>();
        let sent = send.is_some();
        if let Some((dest, payload)) = send {
            debug_assert!(dest < self.size, "exchange dest out of range");
            debug_assert_ne!(dest, self.rank, "self-exchange is a protocol bug");
            round.post(To::One(dest), payload);
        }
        self.sync();
        let received = recv_from.map(|src| {
            debug_assert_ne!(src, self.rank);
            round.take(src)
        });
        if sent || received.is_some() {
            self.charge_comm(1, 0); // β charged by callers who know sizes
        }
        received
    }

    // ------------------------------------------------------------------
    // sub-communicators
    // ------------------------------------------------------------------

    /// Split the communicator into disjoint groups by `color`; within each
    /// group, ranks are assigned by ascending `(key, old rank)` — MPI
    /// `Comm_split` semantics. Collective.
    ///
    /// Charges no modeled cost: the algorithms in this workspace derive
    /// colors from statically known structure (hypercube bit masks, grid
    /// coordinates), which real implementations resolve without
    /// communication; the exchange below is simulation plumbing.
    pub fn split(&self, color: usize, key: usize) -> Comm {
        let infos = self.allgather_uncharged((color, key, self.rank));
        let mut members: Vec<(usize, usize)> = infos
            .iter()
            .filter(|(c, _, _)| *c == color)
            .map(|(_, k, r)| (*k, *r))
            .collect();
        members.sort_unstable();
        let my_new_rank = members
            .iter()
            .position(|&(_, r)| r == self.rank)
            .expect("caller must be a member of its own color group");
        let group_size = members.len();
        let leader_global = members[0].1;

        // Sockets: nothing to hand out at all. Every member derived the
        // same member list from the allgather above, so each builds its
        // child locally — the parent's fabric is shared by `Arc`, local
        // ranks map to world ranks through the group table, and frames
        // are told apart by a deterministically derived communicator id
        // (identical on every member: the split counter advances in SPMD
        // order and the color is common to the group).
        if let Some(fab) = &self.socket {
            let split_no = self.splits.get() + 1;
            self.splits.set(split_no);
            let world: Vec<usize> = members.iter().map(|&(_, r)| self.world_of(r)).collect();
            let child_id = mix_comm_id(self.comm_id, split_no, color as u64);
            // The shared cells/barrier are unused under sockets; a
            // single-slot stand-in keeps the type uniform.
            let standin = Arc::new(CommShared::new(
                1,
                self.machine_threads,
                TransportKind::Cells,
                None,
            ));
            return Comm::new(
                my_new_rank,
                group_size,
                self.machine_threads,
                standin,
                Arc::clone(&self.clock),
                self.cost,
                self.alltoall_kind,
                self.grid_threshold_bytes,
            )
            .into_socket(Arc::clone(fab), Some(Arc::new(world)), child_id);
        }

        // The child's shared state is handed out through the cell
        // blackboard under *either* in-process backend: communicator
        // construction is out-of-band plumbing (a process launcher builds
        // the child's group table out-of-band too, as above), not
        // data-plane traffic. The child inherits the parent's transport.
        let kind = self.transport();
        let faults = self.hub().and_then(|h| h.faults().cloned());
        let group_shared = if self.size == 1 {
            Arc::new(CommShared::new(1, self.machine_threads, kind, faults))
        } else {
            let round = self.cells_round::<Arc<CommShared>>();
            if self.rank == leader_global {
                round.publish(Arc::new(CommShared::new(
                    group_size,
                    self.machine_threads,
                    kind,
                    faults,
                )));
            }
            self.sync();
            Arc::clone(round.read(leader_global))
        };

        Comm::new(
            my_new_rank,
            group_size,
            self.machine_threads,
            group_shared,
            Arc::clone(&self.clock),
            self.cost,
            self.alltoall_kind,
            self.grid_threshold_bytes,
        )
    }
}

/// Derive a child communicator id from the parent's id, its split
/// counter, and the group color — splitmix64-style finalizer, so sibling
/// groups and successive split generations land on distinct ids with
/// overwhelming probability (ids only need to be distinct among
/// communicators alive on one fabric at once).
fn mix_comm_id(parent: u64, split_no: u64, color: u64) -> u64 {
    let mut x = parent
        ^ split_no.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ color.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Element-wise combine; `self_first` fixes the operand order so all PEs of
/// a butterfly round compute bit-identical results even for non-commutative
/// tie-breaking ops.
fn combine_elementwise<T, F>(acc: &mut [T], other: &[T], op: &F, self_first: bool)
where
    T: Clone,
    F: Fn(&T, &T) -> T,
{
    assert_eq!(
        acc.len(),
        other.len(),
        "allreduce_vec requires equal-length vectors on all PEs"
    );
    for (a, b) in acc.iter_mut().zip(other.iter()) {
        *a = if self_first { op(a, b) } else { op(b, a) };
    }
}
