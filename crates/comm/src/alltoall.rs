//! Personalized (sparse) all-to-all exchange in four flavours, all on the
//! flat zero-copy buffer representation ([`FlatBuckets`]).
//!
//! This module implements Sec. VI-A of the paper ("Reducing Startup
//! Overhead of All-To-All Exchanges"):
//!
//! * **direct** — the `MPI_Alltoallv` analogue: one logical message per
//!   destination, startup cost `α·p`;
//! * **two-level grid** — PEs arranged in a `⌊√p⌋ × ⌈p/c⌉` virtual grid; a
//!   message from `i` to `j` travels via the intermediate PE in row
//!   `row(j)`, column `col(i)`, cutting startup cost to `O(α√p)` at the
//!   price of doubled volume. Includes the paper's incomplete-last-row
//!   rule;
//! * **hypercube** — `log p` pairwise phases (the `d = log p` end of the
//!   generalisation discussed in the paper, \[45\]);
//! * **auto** ([`crate::Comm::sparse_alltoallv`]) — the paper's threshold
//!   rule: use the grid variant when the average bytes per message is below
//!   500 bytes, direct otherwise.
//!
//! Every strategy sends and receives [`FlatBuckets`]: one contiguous
//! payload per PE, sub-message boundaries expressed as displacement
//! arrays — the exact `sdispls`/`rdispls` layout of `MPI_Alltoallv`.
//! Indirect routes carry a small flat `u32` header per hop describing the
//! sub-message split; β is charged on the true contiguous byte counts.
//!
//! All strategies are written **once** against the transport boundary
//! ([`crate::transport`]): the flat and paired-flat exchange primitives
//! deliver buckets whether the backend is the zero-copy cell blackboard
//! or the `Wire`-encoded byte queues; charges sit above the boundary, so
//! modeled costs are identical under either backend.

use crate::comm::{bytes_of, Comm};
use crate::flat::{FlatBuckets, FlatBuilder};
use crate::wire::Wire;

/// Strategy selector for [`Comm::sparse_alltoallv`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AlltoallKind {
    /// Threshold rule from Sec. VI-A (500 bytes average message size).
    #[default]
    Auto,
    /// Always direct (`α·p` startups) — the paper's "one-level" baseline.
    Direct,
    /// Always two-level grid (`α·√p` startups, 2× volume).
    Grid,
    /// Hypercube (`α·log p` startups, `log p`× volume); requires
    /// power-of-two `p`, otherwise falls back to the grid variant.
    Hypercube,
}

/// The virtual two-dimensional PE grid of Sec. VI-A.
///
/// `c = ⌊√p⌋` columns and `r = ⌈p/c⌉` rows, so `c ≤ r ≤ c + 2`. PE `i`
/// lives at column `i mod c`, row `i / c`. The last row may be incomplete.
#[derive(Clone, Copy, Debug)]
pub struct GridTopology {
    pub p: usize,
    pub c: usize,
    pub r: usize,
}

impl GridTopology {
    pub fn new(p: usize) -> Self {
        assert!(p > 0);
        let c = (p as f64).sqrt().floor() as usize;
        let c = c.max(1);
        let r = p.div_ceil(c);
        debug_assert!(c <= r && r <= c + 2, "paper invariant c <= r <= c+2");
        Self { p, c, r }
    }

    #[inline]
    pub fn col(&self, i: usize) -> usize {
        i % self.c
    }

    #[inline]
    pub fn row(&self, i: usize) -> usize {
        i / self.c
    }

    /// True if the last row of the grid is incomplete (`p != c·r`).
    #[inline]
    pub fn has_incomplete_row(&self) -> bool {
        self.p != self.c * self.r
    }

    /// True if PE `j` is a member of the incomplete last row.
    #[inline]
    pub fn in_incomplete_row(&self, j: usize) -> bool {
        self.has_incomplete_row() && self.row(j) == self.r - 1
    }

    /// The row PE `j` is (virtually) a member of for the second exchange:
    /// its own row, or row `col(j)` if `j` sits in the incomplete last row
    /// (the paper's special rule).
    #[inline]
    pub fn virtual_row(&self, j: usize) -> usize {
        if self.in_incomplete_row(j) {
            self.col(j)
        } else {
            self.row(j)
        }
    }

    /// Intermediate PE for a message from `i` to `j`: row `virtual_row(j)`,
    /// column `col(i)`.
    #[inline]
    pub fn intermediate(&self, i: usize, j: usize) -> usize {
        let t = self.virtual_row(j) * self.c + self.col(i);
        debug_assert!(t < self.p, "intermediate must be a real PE");
        t
    }

    /// PEs that may send to `t` in the first exchange: the members of
    /// `t`'s column.
    pub fn phase1_senders(&self, t: usize) -> Vec<usize> {
        let col = self.col(t);
        (0..self.r)
            .map(|q| q * self.c + col)
            .filter(|&i| i < self.p)
            .collect()
    }

    /// PEs that may send to `j` in the second exchange: the members of
    /// `j`'s virtual row.
    pub fn phase2_senders(&self, j: usize) -> Vec<usize> {
        let vr = self.virtual_row(j);
        (0..self.c)
            .map(|q| vr * self.c + q)
            .filter(|&t| t < self.p)
            .collect()
    }

    /// Final destinations whose traffic is relayed by row `q`'s
    /// intermediates: all `j` with `virtual_row(j) == q`, ascending. Both
    /// endpoints of a relayed message derive the same canonical list, so
    /// sub-message boundaries travel as a plain count array.
    pub fn row_dests(&self, q: usize) -> Vec<usize> {
        (0..self.p).filter(|&j| self.virtual_row(j) == q).collect()
    }
}

impl Comm {
    /// Direct (one-level) all-to-all: the `MPI_Alltoallv` analogue.
    ///
    /// Returns `recv` with `recv.bucket(i)` = payload sent by PE `i` to
    /// this PE. Cost: `α·p + β·max(bytes out, bytes in)`.
    pub fn alltoallv_direct<T: Wire + Clone + Send + Sync + 'static>(
        &self,
        bufs: FlatBuckets<T>,
    ) -> FlatBuckets<T> {
        let p = self.size();
        let out_bytes = bytes_of::<T>(bufs.total_len());
        let all: Vec<usize> = (0..p).collect();
        let recv = self.raw_exchange_flat(bufs, &all, &all);
        let in_bytes = bytes_of::<T>(recv.total_len());
        self.charge_comm(p as u64, out_bytes.max(in_bytes));
        recv
    }

    /// Two-level grid all-to-all (Sec. VI-A). Startup `O(α√p)`, twice the
    /// communication volume of the direct variant. Sub-message boundaries
    /// travel as flat `u32` count headers over the canonical
    /// ([`GridTopology::row_dests`], [`GridTopology::phase1_senders`])
    /// orders, so the payload stays a single contiguous buffer per hop.
    pub fn alltoallv_grid<T: Wire + Clone + Send + Sync + 'static>(
        &self,
        bufs: FlatBuckets<T>,
    ) -> FlatBuckets<T> {
        let p = self.size();
        if p <= 2 {
            return self.alltoallv_direct(bufs);
        }
        let grid = GridTopology::new(p);
        let me = self.rank();

        // Canonical relay lists of every row, bucketed in one O(p) pass
        // (row_dests(q) == rows.bucket(q); the per-row scan would cost
        // O(p·√p) at exactly the scale the grid route targets).
        let rows = FlatBuckets::from_dest_fn(grid.r, (0..p).collect(), |&j| grid.virtual_row(j));

        // Phase 1: forward each destination bucket to its intermediate,
        // concatenated in canonical destination order per intermediate.
        let mut counts1 = vec![0usize; p];
        let mut sub1_counts = vec![0usize; p];
        let mut data1: Vec<T> = Vec::with_capacity(bufs.total_len());
        let mut sub1: Vec<u32> = Vec::new();
        for q in 0..grid.r {
            let dests = rows.bucket(q);
            if dests.is_empty() {
                continue;
            }
            let t = q * grid.c + grid.col(me);
            for &j in dests {
                data1.extend_from_slice(bufs.bucket(j));
                sub1.push(bufs.count(j) as u32);
                counts1[t] += bufs.count(j);
            }
            sub1_counts[t] = dests.len();
        }
        let out1 = bytes_of::<T>(data1.len()) + bytes_of::<u32>(sub1.len());

        // My column relays both ways: I push phase-1 buckets to exactly
        // the PEs that pop phase-1 frames from me.
        let senders1 = grid.phase1_senders(me);
        let dests2: Vec<usize> = rows.bucket(grid.row(me)).to_vec();

        // Phase 2 regroup happens inside the round, while the sources'
        // payloads are still borrowed (cells) / freshly decoded (bytes):
        // for destination j, the sub-messages of all original senders (my
        // column, ascending) are concatenated; offsets into each sender's
        // phase-1 slice are derived from its count header.
        let (in1, data2, sub2, counts2, sub2_counts) = self.paired_flat_round_with(
            FlatBuckets::from_counts(data1, &counts1),
            FlatBuckets::from_counts(sub1, &sub1_counts),
            &senders1,
            &senders1,
            |parts| {
                let in1: u64 = parts
                    .iter()
                    .map(|(d, s)| bytes_of::<T>(d.len()) + bytes_of::<u32>(s.len()))
                    .sum();
                let mut offsets: Vec<usize> = vec![0; parts.len()];
                let mut counts2 = vec![0usize; p];
                let mut sub2_counts = vec![0usize; p];
                let mut data2: Vec<T> = Vec::new();
                let mut sub2: Vec<u32> = Vec::new();
                for (dj, &j) in dests2.iter().enumerate() {
                    for (si, (d, s)) in parts.iter().enumerate() {
                        let cnt = if s.is_empty() { 0 } else { s[dj] as usize };
                        let off = offsets[si];
                        data2.extend_from_slice(&d[off..off + cnt]);
                        offsets[si] = off + cnt;
                        sub2.push(cnt as u32);
                        counts2[j] += cnt;
                        sub2_counts[j] += 1;
                    }
                }
                (in1, data2, sub2, counts2, sub2_counts)
            },
        );
        self.charge_comm(senders1.len() as u64, out1.max(in1));

        let out2 = bytes_of::<T>(data2.len()) + bytes_of::<u32>(sub2.len());
        let senders2 = grid.phase2_senders(me);

        // Assemble the final receive buffer keyed by original source: the
        // message from source s arrived via intermediate(s, me), at the
        // source's position (its row) within that intermediate's column.
        let (in2, out) = self.paired_flat_round_with(
            FlatBuckets::from_counts(data2, &counts2),
            FlatBuckets::from_counts(sub2, &sub2_counts),
            &dests2,
            &senders2,
            |parts| {
                let in2: u64 = parts
                    .iter()
                    .map(|(d, s)| bytes_of::<T>(d.len()) + bytes_of::<u32>(s.len()))
                    .sum();
                let total: usize = parts.iter().map(|(d, _)| d.len()).sum();
                // Flat per-(intermediate, source-slot) exclusive prefix
                // sums over each intermediate's count header.
                let mut pre_start = Vec::with_capacity(parts.len() + 1);
                pre_start.push(0);
                let mut prefix: Vec<usize> = Vec::new();
                for (_, s) in parts {
                    let mut acc = 0usize;
                    prefix.push(0);
                    for &c in *s {
                        acc += c as usize;
                        prefix.push(acc);
                    }
                    pre_start.push(prefix.len());
                }
                // O(1) lookup from an intermediate's rank to its position
                // in the ascending senders2 list.
                let mut sender2_pos = vec![usize::MAX; p];
                for (ti, &t) in senders2.iter().enumerate() {
                    sender2_pos[t] = ti;
                }
                let mut out = FlatBuilder::with_capacity(total, p);
                for s in 0..p {
                    let ti = sender2_pos[grid.intermediate(s, me)];
                    if ti != usize::MAX {
                        let slot = grid.row(s);
                        let pre = &prefix[pre_start[ti]..pre_start[ti + 1]];
                        if slot + 1 < pre.len() {
                            out.extend_from_slice(&parts[ti].0[pre[slot]..pre[slot + 1]]);
                        }
                    }
                    out.seal();
                }
                (in2, out.finish(p))
            },
        );
        self.charge_comm(senders2.len() as u64, out2.max(in2));
        out
    }

    /// Hypercube all-to-all: `log p` pairwise phases, each moving all data
    /// whose destination differs in the current bit (Johnsson & Ho, ref. 45
    /// of the paper; the `d = log p` end of the paper's generalised grid).
    ///
    /// Carried data stays in one flat buffer per PE, keyed by final
    /// destination with a 4-byte source tag per element (charged).
    /// Requires power-of-two `p`; other sizes fall back to the grid
    /// variant.
    pub fn alltoallv_hypercube<T: Wire + Clone + Send + Sync + 'static>(
        &self,
        bufs: FlatBuckets<T>,
    ) -> FlatBuckets<T> {
        let p = self.size();
        if !p.is_power_of_two() {
            return self.alltoallv_grid(bufs);
        }
        if p == 1 {
            return bufs;
        }
        let me = self.rank();
        let dims = crate::ceil_log2(p);
        // carried.bucket(j) = (source, item) pairs currently held here
        // destined for j.
        let mut carried: FlatBuckets<(u32, T)> = bufs.map(|x| (me as u32, x));
        for d in 0..dims {
            let bit = 1usize << d;
            let partner = me ^ bit;
            // Everything whose destination's bit d differs from mine moves.
            let moving: usize = (0..p)
                .filter(|j| (j & bit) != (me & bit))
                .map(|j| carried.count(j))
                .sum();
            let mut keep = FlatBuilder::with_capacity(carried.total_len() - moving, p);
            let mut send = FlatBuilder::with_capacity(moving, p);
            for j in 0..p {
                if (j & bit) != (me & bit) {
                    send.extend_from_slice(carried.bucket(j));
                } else {
                    keep.extend_from_slice(carried.bucket(j));
                }
                keep.seal();
                send.seal();
            }
            let keep = keep.finish(p);
            let send = send.finish(p);
            let out_bytes = bytes_of::<(u32, T)>(send.total_len());
            let received = self
                .exchange(Some((partner, send)), Some(partner))
                .expect("hypercube partner always sends");
            let in_bytes = bytes_of::<(u32, T)>(received.total_len());
            self.charge_comm(0, out_bytes.max(in_bytes)); // α charged by exchange
            carried = merge_flat(keep, received);
        }
        // All remaining data is destined here; group it by source (stable,
        // so each source's stream keeps its order).
        let mine: Vec<(u32, T)> = carried.into_payload();
        FlatBuckets::from_dest_fn(p, mine, |(src, _)| *src as usize).map(|(_, x)| x)
    }

    /// d-dimensional generalisation of the grid all-to-all (Sec. VI-A:
    /// "For larger p, the grid approach can easily be generalized to
    /// dimensions 2 < d ≤ log(p)"). Messages are routed digit by digit
    /// through a `side^d` torus, cutting startups to `O(d·p^(1/d))` at
    /// `d×` the volume; carried elements are tagged `(dest, src)` (8
    /// bytes, charged). Requires `p = side^d` exactly; other shapes fall
    /// back to the 2D grid (`d = 2`) or direct (`d < 2`).
    pub fn alltoallv_dd<T: Wire + Clone + Send + Sync + 'static>(
        &self,
        bufs: FlatBuckets<T>,
        d: u32,
    ) -> FlatBuckets<T> {
        let p = self.size();
        if d < 2 || p < 4 {
            return self.alltoallv_direct(bufs);
        }
        let side = (p as f64).powf(1.0 / d as f64).round() as usize;
        if side < 2 || side.pow(d) != p {
            return self.alltoallv_grid(bufs);
        }
        let me = self.rank();
        let digit = |x: usize, k: u32| (x / side.pow(k)) % side;
        // carried: (final_dest, original_src, payload), flat.
        let mut carried: Vec<(u32, u32, T)> = Vec::with_capacity(bufs.total_len());
        for j in 0..p {
            for x in bufs.bucket(j) {
                carried.push((j as u32, me as u32, x.clone()));
            }
        }
        // Route the highest digit first, mirroring the 2D row-then-column
        // scheme. In round k every PE talks only to the `side` PEs that
        // differ in digit k; an element steps to the PE with digit k
        // corrected, other digits unchanged.
        for k in (0..d).rev() {
            let hop = |dest: usize| -> usize {
                let want = digit(dest, k);
                (me as isize + (want as isize - digit(me, k) as isize) * side.pow(k) as isize)
                    as usize
            };
            let out = FlatBuckets::from_dest_fn(p, carried, |&(dest, _, _)| hop(dest as usize));
            let out_bytes = bytes_of::<(u32, u32, T)>(out.total_len() - out.count(me));
            // Partners: PEs agreeing with me on all digits except k — a
            // symmetric relation, so the send and receive sets coincide.
            let mut partners: Vec<usize> = (0..side)
                .map(|v| {
                    (me as isize + (v as isize - digit(me, k) as isize) * side.pow(k) as isize)
                        as usize
                })
                .collect();
            partners.sort_unstable();
            let received = self.raw_exchange_flat(out, &partners, &partners);
            let in_bytes = bytes_of::<(u32, u32, T)>(received.total_len() - received.count(me));
            carried = received.into_payload();
            self.charge_comm(side as u64, out_bytes.max(in_bytes));
        }
        // Group by original source (stable).
        debug_assert!(carried.iter().all(|&(dest, _, _)| dest as usize == me));
        FlatBuckets::from_dest_fn(p, carried, |&(_, src, _)| src as usize).map(|(_, _, x)| x)
    }

    /// Sparse all-to-all with the paper's automatic strategy selection:
    /// measure the global average bytes per message and use the two-level
    /// grid when it is below the threshold (500 bytes on the paper's
    /// system), the direct exchange otherwise.
    pub fn sparse_alltoallv<T: Wire + Clone + Send + Sync + 'static>(
        &self,
        bufs: FlatBuckets<T>,
    ) -> FlatBuckets<T> {
        match self.alltoall_kind {
            AlltoallKind::Direct => return self.alltoallv_direct(bufs),
            AlltoallKind::Grid => return self.alltoallv_grid(bufs),
            AlltoallKind::Hypercube => return self.alltoallv_hypercube(bufs),
            AlltoallKind::Auto => {}
        }
        let p = self.size();
        if p <= 8 {
            return self.alltoallv_direct(bufs);
        }
        let out_bytes = bytes_of::<T>(bufs.total_len());
        let total = self.allreduce_sum(out_bytes);
        let avg_per_message = total / (p as u64 * p as u64);
        if avg_per_message < self.grid_threshold_bytes as u64 {
            self.alltoallv_grid(bufs)
        } else {
            self.alltoallv_direct(bufs)
        }
    }

    /// Positional request/reply exchange: deliver `requests` to their
    /// bucket PEs, resolve every incoming request at the receiver with
    /// `resolve`, and ship the answers back *value-only* — each reply
    /// rides in the bucket of its request, so position alone pairs answer
    /// with question at half the wire volume of a key-value reply.
    /// Returns the answers aligned with the request payload order.
    /// Collective.
    ///
    /// This is the wire pattern behind the MST pipeline's pull-based
    /// label protocol and the batch-dynamic layer's membership lookups.
    pub fn request_reply<Q, A>(&self, requests: FlatBuckets<Q>, resolve: impl Fn(&Q) -> A) -> Vec<A>
    where
        Q: Wire + Clone + Send + Sync + 'static,
        A: Wire + Clone + Send + Sync + 'static,
    {
        let p = self.size();
        let incoming = self.sparse_alltoallv(requests);
        self.charge_local(incoming.total_len() as u64);
        let reply_counts: Vec<usize> = (0..p).map(|j| incoming.count(j)).collect();
        let answers: Vec<A> = incoming.payload().iter().map(&resolve).collect();
        let replies = FlatBuckets::from_counts(answers, &reply_counts);
        self.sparse_alltoallv(replies).into_payload()
    }
}

/// Merge two equally-bucketed flat buffers: bucket `j` of the result is
/// `a.bucket(j) ++ b.bucket(j)`. One pass, one allocation.
fn merge_flat<T: Clone>(a: FlatBuckets<T>, b: FlatBuckets<T>) -> FlatBuckets<T> {
    debug_assert_eq!(a.buckets(), b.buckets());
    let p = a.buckets();
    let mut out = FlatBuilder::with_capacity(a.total_len() + b.total_len(), p);
    for j in 0..p {
        out.extend_from_slice(a.bucket(j));
        out.extend_from_slice(b.bucket(j));
        out.seal();
    }
    out.finish(p)
}

/// Convenience used by algorithm crates: deliver keyed items to explicit
/// destination PEs. `items` is a list of `(dest, item)`; the result is the
/// list of items delivered to this PE (sender order preserved within each
/// source). The bucketing is a count-then-scatter pass and the flattening
/// of the receive buffer is free — no nested vectors anywhere.
pub fn route<T: Wire + Clone + Send + Sync + 'static>(
    comm: &Comm,
    items: Vec<(usize, T)>,
) -> Vec<T> {
    let bufs = FlatBuckets::from_pairs(comm.size(), items);
    comm.sparse_alltoallv(bufs).into_payload()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_topology_invariants() {
        for p in 1..200 {
            let g = GridTopology::new(p);
            assert!(g.c * g.r >= p);
            assert!(g.c <= g.r && g.r <= g.c + 2, "p={p}: c={}, r={}", g.c, g.r);
            for j in 0..p {
                for i in 0..p {
                    let t = g.intermediate(i, j);
                    assert!(t < p, "p={p} i={i} j={j} t={t}");
                    // Intermediate shares column with the sender...
                    assert_eq!(g.col(t), g.col(i));
                    // ...and row with the receiver's virtual row.
                    assert_eq!(g.row(t), g.virtual_row(j));
                    // Phase partner lists are consistent with the routing.
                    assert!(g.phase1_senders(t).contains(&i));
                    assert!(g.phase2_senders(j).contains(&t));
                    // The canonical relay list contains the destination.
                    assert!(g.row_dests(g.virtual_row(j)).contains(&j));
                }
            }
            // Every destination appears in exactly one row's relay list.
            let mut seen = vec![0usize; p];
            for q in 0..g.r {
                for j in g.row_dests(q) {
                    seen[j] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1), "p={p}");
        }
    }

    #[test]
    fn grid_partner_counts_are_sqrt_scale() {
        let g = GridTopology::new(1024);
        assert_eq!(g.c, 32);
        assert_eq!(g.r, 32);
        for pe in [0usize, 31, 512, 1023] {
            assert!(g.phase1_senders(pe).len() <= g.r);
            assert!(g.phase2_senders(pe).len() <= g.c);
        }
    }
}
