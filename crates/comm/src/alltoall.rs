//! Personalized (sparse) all-to-all exchange in four flavours.
//!
//! This module implements Sec. VI-A of the paper ("Reducing Startup
//! Overhead of All-To-All Exchanges"):
//!
//! * **direct** — the `MPI_Alltoallv` analogue: one logical message per
//!   destination, startup cost `α·p`;
//! * **two-level grid** — PEs arranged in a `⌊√p⌋ × ⌈p/c⌉` virtual grid; a
//!   message from `i` to `j` travels via the intermediate PE in row
//!   `row(j)`, column `col(i)`, cutting startup cost to `O(α√p)` at the
//!   price of doubled volume. Includes the paper's incomplete-last-row
//!   rule;
//! * **hypercube** — `log p` pairwise phases (the `d = log p` end of the
//!   generalisation discussed in the paper, \[45\]);
//! * **auto** ([`crate::Comm::sparse_alltoallv`]) — the paper's threshold
//!   rule: use the grid variant when the average bytes per message is below
//!   500 bytes, direct otherwise.

use crate::comm::{bytes_of, Comm};

/// Strategy selector for [`Comm::sparse_alltoallv`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AlltoallKind {
    /// Threshold rule from Sec. VI-A (500 bytes average message size).
    #[default]
    Auto,
    /// Always direct (`α·p` startups) — the paper's "one-level" baseline.
    Direct,
    /// Always two-level grid (`α·√p` startups, 2× volume).
    Grid,
    /// Hypercube (`α·log p` startups, `log p`× volume); requires
    /// power-of-two `p`, otherwise falls back to the grid variant.
    Hypercube,
}

/// The virtual two-dimensional PE grid of Sec. VI-A.
///
/// `c = ⌊√p⌋` columns and `r = ⌈p/c⌉` rows, so `c ≤ r ≤ c + 2`. PE `i`
/// lives at column `i mod c`, row `i / c`. The last row may be incomplete.
#[derive(Clone, Copy, Debug)]
pub struct GridTopology {
    pub p: usize,
    pub c: usize,
    pub r: usize,
}

impl GridTopology {
    pub fn new(p: usize) -> Self {
        assert!(p > 0);
        let c = (p as f64).sqrt().floor() as usize;
        let c = c.max(1);
        let r = p.div_ceil(c);
        debug_assert!(c <= r && r <= c + 2, "paper invariant c <= r <= c+2");
        Self { p, c, r }
    }

    #[inline]
    pub fn col(&self, i: usize) -> usize {
        i % self.c
    }

    #[inline]
    pub fn row(&self, i: usize) -> usize {
        i / self.c
    }

    /// True if the last row of the grid is incomplete (`p != c·r`).
    #[inline]
    pub fn has_incomplete_row(&self) -> bool {
        self.p != self.c * self.r
    }

    /// True if PE `j` is a member of the incomplete last row.
    #[inline]
    pub fn in_incomplete_row(&self, j: usize) -> bool {
        self.has_incomplete_row() && self.row(j) == self.r - 1
    }

    /// The row PE `j` is (virtually) a member of for the second exchange:
    /// its own row, or row `col(j)` if `j` sits in the incomplete last row
    /// (the paper's special rule).
    #[inline]
    pub fn virtual_row(&self, j: usize) -> usize {
        if self.in_incomplete_row(j) {
            self.col(j)
        } else {
            self.row(j)
        }
    }

    /// Intermediate PE for a message from `i` to `j`: row `virtual_row(j)`,
    /// column `col(i)`.
    #[inline]
    pub fn intermediate(&self, i: usize, j: usize) -> usize {
        let t = self.virtual_row(j) * self.c + self.col(i);
        debug_assert!(t < self.p, "intermediate must be a real PE");
        t
    }

    /// PEs that may send to `t` in the first exchange: the members of
    /// `t`'s column.
    pub fn phase1_senders(&self, t: usize) -> Vec<usize> {
        let col = self.col(t);
        (0..self.r)
            .map(|q| q * self.c + col)
            .filter(|&i| i < self.p)
            .collect()
    }

    /// PEs that may send to `j` in the second exchange: the members of
    /// `j`'s virtual row.
    pub fn phase2_senders(&self, j: usize) -> Vec<usize> {
        let vr = self.virtual_row(j);
        (0..self.c)
            .map(|q| vr * self.c + q)
            .filter(|&t| t < self.p)
            .collect()
    }
}

/// One PE's buckets in a personalized exchange: `bufs[j]` is the payload
/// destined for PE `j`. Must have length `p`.
pub type Buckets<T> = Vec<Vec<T>>;

/// Source-tagged payload list used while routing indirectly.
type Tagged<T> = Vec<(u32, Vec<T>)>;

type ExchangeSlot<T> = Vec<parking_lot::Mutex<Option<Vec<T>>>>;

impl Comm {
    /// Raw data-plane exchange: deliver `bufs[j]` to PE `j`, reading only
    /// from the PEs in `recv_from`. Performs no cost charging; the public
    /// wrappers charge according to their communication pattern.
    fn raw_exchange<T: Send + 'static>(
        &self,
        bufs: Buckets<T>,
        recv_from: &[usize],
    ) -> Vec<(usize, Vec<T>)> {
        let p = self.size();
        assert_eq!(bufs.len(), p, "need one bucket per destination PE");
        let publication: ExchangeSlot<T> = bufs
            .into_iter()
            .map(|b| parking_lot::Mutex::new(Some(b)))
            .collect();
        self.slots().put_shared(self.rank(), publication);
        self.sync();
        let mut received = Vec::with_capacity(recv_from.len());
        for &src in recv_from {
            let senders_slot = self.slots().read_shared::<ExchangeSlot<T>>(src);
            let data = senders_slot[self.rank()]
                .lock()
                .take()
                .expect("each bucket is taken exactly once");
            received.push((src, data));
        }
        self.sync();
        self.slots().clear(self.rank());
        received
    }

    /// Direct (one-level) all-to-all: the `MPI_Alltoallv` analogue.
    ///
    /// Returns `recv` with `recv[i]` = payload sent by PE `i` to this PE.
    /// Cost: `α·p + β·max(bytes out, bytes in)`.
    pub fn alltoallv_direct<T: Send + 'static>(&self, bufs: Buckets<T>) -> Buckets<T> {
        let p = self.size();
        let out_bytes: u64 = bufs.iter().map(|b| bytes_of::<T>(b.len())).sum();
        let all: Vec<usize> = (0..p).collect();
        let received = self.raw_exchange(bufs, &all);
        let mut recv: Buckets<T> = (0..p).map(|_| Vec::new()).collect();
        let mut in_bytes = 0u64;
        for (src, data) in received {
            in_bytes += bytes_of::<T>(data.len());
            recv[src] = data;
        }
        self.charge_comm(p as u64, out_bytes.max(in_bytes));
        recv
    }

    /// Two-level grid all-to-all (Sec. VI-A). Startup `O(α√p)`, twice the
    /// communication volume of the direct variant.
    pub fn alltoallv_grid<T: Send + 'static>(&self, bufs: Buckets<T>) -> Buckets<T> {
        let p = self.size();
        if p <= 2 {
            return self.alltoallv_direct(bufs);
        }
        let grid = GridTopology::new(p);
        let me = self.rank();

        // Phase 1: forward each destination bucket to its intermediate,
        // tagged with (final destination, original source).
        let mut phase1: Buckets<(u32, u32, Vec<T>)> = (0..p).map(|_| Vec::new()).collect();
        let mut out1 = 0u64;
        for (j, data) in bufs.into_iter().enumerate() {
            if data.is_empty() {
                continue;
            }
            out1 += bytes_of::<T>(data.len());
            let t = grid.intermediate(me, j);
            phase1[t].push((j as u32, me as u32, data));
        }
        let senders1 = grid.phase1_senders(me);
        let recv1 = self.raw_exchange(phase1, &senders1);
        let mut in1 = 0u64;

        // Regroup by final destination for phase 2.
        let mut phase2: Buckets<(u32, Vec<T>)> = (0..p).map(|_| Vec::new()).collect();
        for (_src, items) in recv1 {
            for (dest, orig_src, data) in items {
                in1 += bytes_of::<T>(data.len());
                phase2[dest as usize].push((orig_src, data));
            }
        }
        self.charge_comm(senders1.len() as u64, out1.max(in1));

        let senders2 = grid.phase2_senders(me);
        let out2 = in1; // everything received in phase 1 is forwarded
        let recv2 = self.raw_exchange(phase2, &senders2);
        let mut recv: Buckets<T> = (0..p).map(|_| Vec::new()).collect();
        let mut in2 = 0u64;
        for (_t, items) in recv2 {
            for (orig_src, data) in items {
                in2 += bytes_of::<T>(data.len());
                let bucket = &mut recv[orig_src as usize];
                if bucket.is_empty() {
                    *bucket = data;
                } else {
                    bucket.extend(data);
                }
            }
        }
        self.charge_comm(senders2.len() as u64, out2.max(in2));
        recv
    }

    /// Hypercube all-to-all: `log p` pairwise phases, each moving all data
    /// whose destination differs in the current bit (Johnsson & Ho, ref. 45 of the paper;
    /// the `d = log p` end of the paper's generalised grid).
    ///
    /// Requires power-of-two `p`; other sizes fall back to the grid
    /// variant.
    pub fn alltoallv_hypercube<T: Send + 'static>(&self, bufs: Buckets<T>) -> Buckets<T> {
        let p = self.size();
        if !p.is_power_of_two() {
            return self.alltoallv_grid(bufs);
        }
        if p == 1 {
            return bufs;
        }
        let me = self.rank();
        let dims = crate::ceil_log2(p);
        // carried[j] = accumulated payload currently held here destined for j
        let mut carried: Vec<Vec<(u32, Vec<T>)>> = (0..p).map(|_| Vec::new()).collect();
        for (j, data) in bufs.into_iter().enumerate() {
            if !data.is_empty() || j == me {
                carried[j].push((me as u32, data));
            }
        }
        for d in 0..dims {
            let bit = 1usize << d;
            let partner = me ^ bit;
            // Everything whose destination's bit d differs from mine moves.
            let mut outgoing: Vec<(u32, Tagged<T>)> = Vec::new();
            let mut out_bytes = 0u64;
            for (j, bucket) in carried.iter_mut().enumerate() {
                if (j & bit) != (me & bit) && !bucket.is_empty() {
                    let items = std::mem::take(bucket);
                    out_bytes += items
                        .iter()
                        .map(|(_, v)| bytes_of::<T>(v.len()))
                        .sum::<u64>();
                    outgoing.push((j as u32, items));
                }
            }
            let incoming = self
                .exchange(Some((partner, outgoing)), Some(partner))
                .expect("hypercube partner always sends");
            let mut in_bytes = 0u64;
            for (j, items) in incoming {
                in_bytes += items
                    .iter()
                    .map(|(_, v)| bytes_of::<T>(v.len()))
                    .sum::<u64>();
                carried[j as usize].extend(items);
            }
            self.charge_comm(0, out_bytes.max(in_bytes)); // α charged by exchange
        }
        let mut recv: Buckets<T> = (0..p).map(|_| Vec::new()).collect();
        for (src, data) in std::mem::take(&mut carried[me]) {
            let bucket = &mut recv[src as usize];
            if bucket.is_empty() {
                *bucket = data;
            } else {
                bucket.extend(data);
            }
        }
        recv
    }

    /// d-dimensional generalisation of the grid all-to-all (Sec. VI-A:
    /// "For larger p, the grid approach can easily be generalized to
    /// dimensions 2 < d ≤ log(p)"). Messages are routed digit by digit
    /// through a `side^d` torus, cutting startups to `O(d·p^(1/d))` at
    /// `d×` the volume. Requires `p = side^d` exactly; other shapes fall
    /// back to the 2D grid (`d = 2`) or direct (`d < 2`).
    pub fn alltoallv_dd<T: Send + 'static>(&self, bufs: Buckets<T>, d: u32) -> Buckets<T> {
        let p = self.size();
        if d < 2 || p < 4 {
            return self.alltoallv_direct(bufs);
        }
        let side = (p as f64).powf(1.0 / d as f64).round() as usize;
        if side < 2 || side.pow(d) != p {
            return self.alltoallv_grid(bufs);
        }
        let me = self.rank();
        let digit = |x: usize, k: u32| (x / side.pow(k)) % side;
        // carried: (final_dest, original_src, payload)
        let mut carried: Vec<(u32, u32, Vec<T>)> = bufs
            .into_iter()
            .enumerate()
            .filter(|(_, data)| !data.is_empty())
            .map(|(j, data)| (j as u32, me as u32, data))
            .collect();
        // Route the highest digit first, mirroring the 2D row-then-column
        // scheme. In round k every PE talks only to the `side` PEs that
        // differ in digit k.
        for k in (0..d).rev() {
            let mut out: Buckets<(u32, u32, Vec<T>)> = (0..p).map(|_| Vec::new()).collect();
            let mut out_bytes = 0u64;
            let mut keep = Vec::new();
            for (dest, src, data) in carried {
                let want = digit(dest as usize, k);
                if want == digit(me, k) {
                    keep.push((dest, src, data));
                } else {
                    // Step to the PE with digit k corrected, other digits
                    // unchanged.
                    let t = me as isize
                        + (want as isize - digit(me, k) as isize) * side.pow(k) as isize;
                    out_bytes += bytes_of::<T>(data.len());
                    out[t as usize].push((dest, src, data));
                }
            }
            // Partners: PEs agreeing with me on all digits except k.
            let partners: Vec<usize> = (0..side)
                .map(|v| {
                    (me as isize + (v as isize - digit(me, k) as isize) * side.pow(k) as isize)
                        as usize
                })
                .collect();
            let received = self.raw_exchange(out, &partners);
            let mut in_bytes = 0u64;
            carried = keep;
            for (_, items) in received {
                for item in items {
                    in_bytes += bytes_of::<T>(item.2.len());
                    carried.push(item);
                }
            }
            self.charge_comm(side as u64, out_bytes.max(in_bytes));
        }
        let mut recv: Buckets<T> = (0..p).map(|_| Vec::new()).collect();
        for (dest, src, data) in carried {
            debug_assert_eq!(dest as usize, me);
            let bucket = &mut recv[src as usize];
            if bucket.is_empty() {
                *bucket = data;
            } else {
                bucket.extend(data);
            }
        }
        recv
    }

    /// Sparse all-to-all with the paper's automatic strategy selection:
    /// measure the global average bytes per message and use the two-level
    /// grid when it is below the threshold (500 bytes on the paper's
    /// system), the direct exchange otherwise.
    pub fn sparse_alltoallv<T: Send + 'static>(&self, bufs: Buckets<T>) -> Buckets<T> {
        match self.alltoall_kind {
            AlltoallKind::Direct => return self.alltoallv_direct(bufs),
            AlltoallKind::Grid => return self.alltoallv_grid(bufs),
            AlltoallKind::Hypercube => return self.alltoallv_hypercube(bufs),
            AlltoallKind::Auto => {}
        }
        let p = self.size();
        if p <= 8 {
            return self.alltoallv_direct(bufs);
        }
        let out_bytes: u64 = bufs.iter().map(|b| bytes_of::<T>(b.len())).sum();
        let total = self.allreduce_sum(out_bytes);
        let avg_per_message = total / (p as u64 * p as u64);
        if avg_per_message < self.grid_threshold_bytes as u64 {
            self.alltoallv_grid(bufs)
        } else {
            self.alltoallv_direct(bufs)
        }
    }
}

/// Convenience used by algorithm crates: deliver keyed items to explicit
/// destination PEs. `items` is a list of `(dest, item)`; the result is the
/// list of items delivered to this PE (sender order preserved within each
/// source).
pub fn route<T: Send + 'static>(comm: &Comm, items: Vec<(usize, T)>) -> Vec<T> {
    let p = comm.size();
    let mut bufs: Buckets<T> = (0..p).map(|_| Vec::new()).collect();
    for (dest, item) in items {
        bufs[dest].push(item);
    }
    comm.sparse_alltoallv(bufs).into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_topology_invariants() {
        for p in 1..200 {
            let g = GridTopology::new(p);
            assert!(g.c * g.r >= p);
            assert!(g.c <= g.r && g.r <= g.c + 2, "p={p}: c={}, r={}", g.c, g.r);
            for j in 0..p {
                for i in 0..p {
                    let t = g.intermediate(i, j);
                    assert!(t < p, "p={p} i={i} j={j} t={t}");
                    // Intermediate shares column with the sender...
                    assert_eq!(g.col(t), g.col(i));
                    // ...and row with the receiver's virtual row.
                    assert_eq!(g.row(t), g.virtual_row(j));
                    // Phase partner lists are consistent with the routing.
                    assert!(g.phase1_senders(t).contains(&i));
                    assert!(g.phase2_senders(j).contains(&t));
                }
            }
        }
    }

    #[test]
    fn grid_partner_counts_are_sqrt_scale() {
        let g = GridTopology::new(1024);
        assert_eq!(g.c, 32);
        assert_eq!(g.r, 32);
        for pe in [0usize, 31, 512, 1023] {
            assert!(g.phase1_senders(pe).len() <= g.r);
            assert!(g.phase2_senders(pe).len() <= g.c);
        }
    }
}
