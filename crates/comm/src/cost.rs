//! The α-β-γ machine cost model (DESIGN.md substitution S2).
//!
//! The paper's machine model (Sec. II-A) charges `α + βℓ` per message of
//! length `ℓ`. We add a `γ` term for local computation so that the tradeoff
//! between local work and communication — the heart of the paper's
//! engineering story — is visible in the modeled clock. Clocks advance
//! per-PE and are max-synchronised at barriers (BSP semantics), so the
//! modeled completion time of a phase is the *bottleneck* PE's time, exactly
//! the quantity the paper's analysis reasons about.

use std::sync::atomic::{AtomicU64, Ordering};

/// Machine parameters of the modeled distributed system.
///
/// Defaults are calibrated to the SuperMUC-NG class of machine the paper
/// used: `α = 5 µs` message startup, `β = 0.4 ns/byte` (≈ 20 Gbit/s
/// effective point-to-point bandwidth per PE) and `γ = 1 ns` per unit of
/// local work (roughly one cache-resident edge relaxation).
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Message startup overhead in seconds.
    pub alpha: f64,
    /// Per-byte communication time in seconds.
    pub beta: f64,
    /// Per-operation local computation time in seconds.
    pub gamma: f64,
    /// Hybrid parallelism: number of threads per PE (the paper's OpenMP
    /// threads per MPI process, Sec. VI). Local work is divided by
    /// [`CostModel::local_speedup`]; communication stays single-threaded
    /// per PE, as the paper observed for `MPI_Alltoallv` (Sec. VII-A).
    pub threads_per_pe: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            alpha: 5e-6,
            beta: 4e-10,
            gamma: 1e-9,
            threads_per_pe: 1,
        }
    }
}

impl CostModel {
    /// Effective local-work speedup of `threads_per_pe` threads. Sub-linear
    /// (`t^0.9`) to reflect shared-memory scaling losses the paper reports
    /// for its parlay-based kernels.
    #[inline]
    pub fn local_speedup(&self) -> f64 {
        (self.threads_per_pe.max(1) as f64).powf(0.9)
    }

    /// Modeled time for sending/receiving `msgs` messages totalling `bytes`.
    #[inline]
    pub fn comm_time(&self, msgs: u64, bytes: u64) -> f64 {
        self.alpha * msgs as f64 + self.beta * bytes as f64
    }

    /// Modeled time for `ops` units of local work under hybrid parallelism.
    #[inline]
    pub fn local_time(&self, ops: u64) -> f64 {
        self.gamma * ops as f64 / self.local_speedup()
    }
}

/// A per-PE modeled clock plus communication statistics.
///
/// Stored behind atomics so a `Comm` handle stays `Send` when it is moved
/// into its PE thread; each clock is only ever touched by its own PE, so
/// all accesses use relaxed ordering (synchronisation happens through the
/// barrier, never through the clock).
#[derive(Debug, Default)]
pub struct Clock {
    /// Modeled seconds, stored as `f64` bits.
    time_bits: AtomicU64,
    msgs: AtomicU64,
    bytes: AtomicU64,
    local_ops: AtomicU64,
}

impl Clock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current modeled time in seconds.
    #[inline]
    pub fn now(&self) -> f64 {
        f64::from_bits(self.time_bits.load(Ordering::Relaxed))
    }

    /// Advance the modeled clock by `dt` seconds.
    #[inline]
    pub fn advance(&self, dt: f64) {
        debug_assert!(dt >= 0.0, "clock must advance monotonically");
        let t = self.now() + dt;
        self.time_bits.store(t.to_bits(), Ordering::Relaxed);
    }

    /// Set the clock (used by the barrier's max-synchronisation).
    #[inline]
    pub fn set(&self, t: f64) {
        self.time_bits.store(t.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    pub fn record_comm(&self, msgs: u64, bytes: u64) {
        self.msgs.fetch_add(msgs, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    #[inline]
    pub fn record_local(&self, ops: u64) {
        self.local_ops.fetch_add(ops, Ordering::Relaxed);
    }

    /// Snapshot of this PE's accumulated statistics.
    pub fn stats(&self) -> PeStats {
        PeStats {
            modeled_time: self.now(),
            messages: self.msgs.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            local_ops: self.local_ops.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of one PE's modeled cost counters.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PeStats {
    /// Modeled elapsed seconds on this PE (post barrier synchronisation).
    pub modeled_time: f64,
    /// Number of point-to-point messages this PE initiated.
    pub messages: u64,
    /// Bytes this PE sent.
    pub bytes: u64,
    /// Charged local-work operations.
    pub local_ops: u64,
}

impl PeStats {
    /// Counter deltas since an earlier snapshot of the same clock — the
    /// phase-scoped measurement the experiment harness uses to report
    /// algorithm cost without input-preparation traffic.
    pub fn since(&self, before: &PeStats) -> PeStats {
        PeStats {
            modeled_time: self.modeled_time - before.modeled_time,
            messages: self.messages - before.messages,
            bytes: self.bytes - before.bytes,
            local_ops: self.local_ops - before.local_ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_defaults() {
        let m = CostModel::default();
        assert!(m.alpha > 0.0 && m.beta > 0.0 && m.gamma > 0.0);
        assert_eq!(m.threads_per_pe, 1);
        assert!((m.local_speedup() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cost_model_hybrid_speedup() {
        let m = CostModel {
            threads_per_pe: 8,
            ..CostModel::default()
        };
        let s = m.local_speedup();
        assert!(s > 6.0 && s < 8.0, "sub-linear speedup, got {s}");
        assert!(m.local_time(1000) < CostModel::default().local_time(1000));
    }

    #[test]
    fn comm_time_formula() {
        let m = CostModel {
            alpha: 1.0,
            beta: 0.5,
            gamma: 0.0,
            threads_per_pe: 1,
        };
        assert!((m.comm_time(3, 10) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn clock_advances_and_snapshots() {
        let c = Clock::new();
        assert_eq!(c.now(), 0.0);
        c.advance(1.5);
        c.advance(0.5);
        assert!((c.now() - 2.0).abs() < 1e-12);
        c.record_comm(4, 100);
        c.record_local(42);
        let s = c.stats();
        assert_eq!(s.messages, 4);
        assert_eq!(s.bytes, 100);
        assert_eq!(s.local_ops, 42);
        c.set(10.0);
        assert_eq!(c.now(), 10.0);
    }
}
