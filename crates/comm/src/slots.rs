//! The blackboard: one publication slot per PE.
//!
//! All collectives follow the same two-superstep discipline:
//!
//! 1. every PE *publishes* (at most) one typed value into its own slot,
//! 2. barrier,
//! 3. PEs *read* (clone via `Arc`) or *take* (move) from peers' slots,
//! 4. barrier,
//! 5. publishers clear their slot.
//!
//! Because writes and reads are separated by a barrier, every slot access
//! is uncontended in the steady state; the mutex is only a formality that
//! keeps the code `unsafe`-free. Type erasure through `Box<dyn Any>` lets a
//! single blackboard serve every element type.

use parking_lot::Mutex;
use std::any::Any;
use std::sync::Arc;

type Slot = Mutex<Option<Box<dyn Any + Send>>>;

#[derive(Default)]
pub struct Slots {
    slots: Vec<Slot>,
}

impl std::fmt::Debug for Slots {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Slots({})", self.slots.len())
    }
}

impl Slots {
    pub fn new(n: usize) -> Self {
        Self {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Publish `value` into slot `rank`. The slot must be empty — a full
    /// slot means two collectives overlapped, which is a protocol bug.
    pub fn put<T: Send + 'static>(&self, rank: usize, value: T) {
        let prev = self.slots[rank].lock().replace(Box::new(value));
        debug_assert!(prev.is_none(), "slot {rank} was not cleared");
    }

    /// Publish a shared value that several PEs will read.
    pub fn put_shared<T: Send + Sync + 'static>(&self, rank: usize, value: T) {
        self.put(rank, Arc::new(value));
    }

    /// Move the value out of slot `rank`.
    pub fn take<T: Send + 'static>(&self, rank: usize) -> T {
        let boxed = self.slots[rank]
            .lock()
            .take()
            .unwrap_or_else(|| panic!("slot {rank} empty on take"));
        *boxed
            .downcast::<T>()
            .unwrap_or_else(|_| panic!("slot {rank} type mismatch on take"))
    }

    /// Clone the shared handle out of slot `rank` without clearing it.
    pub fn read_shared<T: Send + Sync + 'static>(&self, rank: usize) -> Arc<T> {
        let guard = self.slots[rank].lock();
        let boxed = guard
            .as_ref()
            .unwrap_or_else(|| panic!("slot {rank} empty on read"));
        boxed
            .downcast_ref::<Arc<T>>()
            .unwrap_or_else(|| panic!("slot {rank} type mismatch on read"))
            .clone()
    }

    /// Drop whatever is in slot `rank` (publisher-side cleanup).
    pub fn clear(&self, rank: usize) {
        *self.slots[rank].lock() = None;
    }

    /// True if the slot currently holds a value (testing aid).
    #[allow(dead_code)]
    pub fn is_occupied(&self, rank: usize) -> bool {
        self.slots[rank].lock().is_some()
    }

    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_take_roundtrip() {
        let s = Slots::new(2);
        s.put(0, vec![1u32, 2, 3]);
        assert!(s.is_occupied(0));
        assert!(!s.is_occupied(1));
        let v: Vec<u32> = s.take(0);
        assert_eq!(v, vec![1, 2, 3]);
        assert!(!s.is_occupied(0));
    }

    #[test]
    fn shared_read_is_non_destructive() {
        let s = Slots::new(1);
        s.put_shared(0, String::from("hello"));
        let a = s.read_shared::<String>(0);
        let b = s.read_shared::<String>(0);
        assert_eq!(*a, "hello");
        assert_eq!(*b, "hello");
        s.clear(0);
        assert!(!s.is_occupied(0));
    }

    #[test]
    #[should_panic(expected = "empty on take")]
    fn take_from_empty_panics() {
        let s = Slots::new(1);
        let _: u32 = s.take(0);
    }

    #[test]
    #[should_panic(expected = "type mismatch")]
    fn type_mismatch_panics() {
        let s = Slots::new(1);
        s.put(0, 1u32);
        let _: u64 = s.take(0);
    }
}
