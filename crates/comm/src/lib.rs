//! # kamsta-comm — simulated distributed-memory SPMD runtime
//!
//! This crate is the substrate underneath the distributed MST algorithms of
//! Sanders & Schimek, *Engineering Massively Parallel MST Algorithms*
//! (IPDPS 2023). The paper's algorithms are bulk-synchronous MPI programs;
//! here each *processing element* (PE) is an OS thread executing the same
//! rank program against a [`Comm`] handle that provides the MPI-style
//! collective operations the paper relies on:
//!
//! * [`Comm::barrier`], [`Comm::broadcast`], [`Comm::gather`],
//!   [`Comm::allgather`], [`Comm::allgatherv`]
//! * [`Comm::reduce`], [`Comm::allreduce`], [`Comm::allreduce_vec`]
//!   (the vector allreduce that powers the replicated base case)
//! * [`Comm::exscan`] (exclusive prefix sums)
//! * personalized all-to-all in five flavours: direct
//!   ([`Comm::alltoallv_direct`]), **two-level grid**
//!   ([`Comm::alltoallv_grid`], Sec. VI-A of the paper), its
//!   d-dimensional generalisation ([`Comm::alltoallv_dd`]), hypercube
//!   ([`Comm::alltoallv_hypercube`]) and the threshold-based automatic
//!   selection ([`Comm::sparse_alltoallv`]) — all on the flat zero-copy
//!   buffer representation ([`FlatBuckets`]: one contiguous payload plus
//!   a displacement array, the MPI `sdispls`/`rdispls` layout)
//! * sub-communicators ([`Comm::split`]), used by the 2D-partitioned
//!   sparse-matrix baseline
//!
//! ## Synchronization substrate
//!
//! Collectives run on a low-latency substrate (see `DESIGN.md` §6): an
//! O(log p) *dissemination barrier* whose rounds carry the BSP clock
//! max-reduction, and typed, epoch-stamped *exchange cells* (one
//! cache-padded cell array per payload type) that make every collective a
//! **single superstep** — publish, one barrier, read peers' cells in
//! place. There is no central counter, no per-value heap boxing, no mutex
//! on the hot path, and no second barrier; single-PE communicators skip
//! synchronisation entirely.
//!
//! ## Transport boundary
//!
//! Every collective is written once against an internal transport
//! boundary (`DESIGN.md` §8) with three backends, selected per machine
//! via [`MachineConfig::with_transport`] or
//! `KAMSTA_TRANSPORT={cells,bytes,sockets}`:
//!
//! * [`TransportKind::Cells`] (default) — the zero-copy exchange-cell
//!   blackboard above;
//! * [`TransportKind::Bytes`] — per-PE-pair byte queues carrying
//!   [`Wire`]-encoded frames (fixed-width little-endian Pod fields,
//!   varint counts), the in-process shape of a socket transport;
//! * [`TransportKind::Sockets`] — the same frames over per-PE-pair TCP
//!   streams, between threads ([`Machine::try_run`] binds a loopback
//!   mesh) or OS processes ([`Machine::try_run_worker`] + the
//!   `kamsta_launch` binary). Failures are typed [`TransportError`]s
//!   bounded by the configured io timeout, never hangs.
//!
//! Payloads crossing collectives therefore implement [`Wire`]. Modeled
//! α-β-γ charges sit above the boundary and count `size_of`-based
//! logical bytes, so cost counters are bit-for-bit identical under all
//! backends — the determinism suites double as cross-transport oracles.
//!
//! ## Cost model
//!
//! Because the paper's evaluation ran on up to 2^16 cores of SuperMUC-NG,
//! which we do not have, every collective additionally charges a modeled
//! **α-β-γ cost** onto a per-PE clock ([`Clock`]): `α` per message startup,
//! `β` per byte of the PE's bottleneck communication volume and `γ` per unit
//! of local work ([`Comm::charge_local`]). Clocks are max-synchronised at
//! every barrier, giving BSP semantics: the modeled time of a run is the
//! bottleneck PE's accumulated time. Benchmarks report this modeled time
//! alongside real wall time; see `DESIGN.md` (substitution S2).
//!
//! ## Example
//!
//! ```
//! use kamsta_comm::{Machine, MachineConfig};
//!
//! let cfg = MachineConfig::new(4);
//! let out = Machine::run(cfg, |comm| {
//!     let rank = comm.rank() as u64;
//!     comm.allreduce(rank, |a, b| a + b)
//! });
//! assert_eq!(out.results, vec![6, 6, 6, 6]);
//! ```

mod alltoall;
mod barrier;
mod bytestream;
mod cells;
mod comm;
mod cost;
pub mod fault;
mod flat;
mod machine;
mod socket;
mod transport;
pub mod wire;

pub use alltoall::{route, AlltoallKind, GridTopology};
pub use comm::Comm;
pub use cost::{Clock, CostModel, PeStats};
pub use fault::{FaultPlan, FaultyTransport, LethalFault, LethalKind};
pub use flat::{FlatBuckets, FlatBuilder};
pub use machine::{
    Machine, MachineConfig, MachineError, ResolvedConfig, RunOutput, SocketSetup, SocketSetupCfg,
    WorkerRun,
};
pub use socket::serve_rendezvous;
pub use transport::{TransportError, TransportKind};
pub use wire::{Wire, WireError, WireReader};

/// Bytes occupied by `n` elements of type `T` — the unit used for β-cost
/// accounting throughout the workspace.
#[inline]
pub fn bytes_for<T>(n: usize) -> u64 {
    (n * std::mem::size_of::<T>()) as u64
}

/// Integer ceiling of log2; `ceil_log2(1) == 0`.
#[inline]
pub fn ceil_log2(x: usize) -> u32 {
    debug_assert!(x > 0);
    usize::BITS - (x - 1).leading_zeros()
}

/// Largest power of two `<= x` (x > 0).
#[inline]
pub fn floor_pow2(x: usize) -> usize {
    debug_assert!(x > 0);
    1 << (usize::BITS - 1 - x.leading_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_helpers() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(floor_pow2(1), 1);
        assert_eq!(floor_pow2(2), 2);
        assert_eq!(floor_pow2(3), 2);
        assert_eq!(floor_pow2(4), 4);
        assert_eq!(floor_pow2(1023), 512);
    }
}
