//! The socket transport backend: per-PE-pair TCP streams carrying
//! length-prefixed [`Wire`](crate::wire) frames.
//!
//! Where the byte-stream backend moves frames through in-process
//! `VecDeque`s, this backend moves the **same frames** through real OS
//! sockets — between threads of one process (the in-process machine
//! mode of `Machine::try_run`) or between OS processes spawned by the
//! `kamsta_launch` binary (`Machine::try_run_worker`). The collective
//! layer above the transport boundary is untouched: the three
//! primitives of `transport.rs` route their encoded buckets through
//! [`SocketFabric`] instead of the [`ByteHub`](crate::bytestream), and
//! the dissemination barrier runs over [`CH_BARRIER`] frames.
//!
//! ## Mesh topology and bootstrap
//!
//! The fabric is a full mesh: one TCP stream per unordered PE pair.
//! [`SocketFabric::connect_mesh`] builds it from a rank-indexed address
//! table: rank `i` **connects** to every rank `j < i` (sending a
//! [`CH_HELLO`] frame naming itself) and **accepts** from every
//! `j > i` on its own listener, in whatever order those peers dial in —
//! the hello identifies them. Connect refusals are retried until the
//! deadline (peers bind their listeners at different times), so
//! arbitrarily staggered start-up is tolerated up to the timeout.
//!
//! ## The progress engine
//!
//! All-to-all rounds write to every peer before reading from any. With
//! blocking sockets two PEs whose kernel send buffers fill would
//! deadlock writing to each other; every stream is therefore
//! **permanently non-blocking** after the mesh is up, and both the send
//! and the receive path run a pump loop: on `WouldBlock`, drain every
//! link's readable bytes into per-communicator pending queues
//! ([`SocketFabric::pump_all`]), then retry until the io deadline.
//! Received frames are demultiplexed by communicator id and channel, so
//! sub-communicator traffic and barrier signals interleave freely on
//! the shared pair streams.
//!
//! ## Failure model
//!
//! Every wait is bounded by the machine's io timeout and every failure
//! is a typed [`TransportError`], never a hang: EOF on a link is
//! [`TransportError::PeerClosed`] (flagged `mid_frame` when the stream
//! died inside a frame), a deadline miss is [`TransportError::Timeout`],
//! and out-of-order rounds, tag mismatches, oversized or malformed
//! frames are [`TransportError::Protocol`]. Teardown is by drop: a PE
//! that errors (or finishes) closes its streams, which surfaces at its
//! peers as `PeerClosed` on their next receive — graceful exit and
//! process death look the same, which is the point.

use crate::transport::TransportError;
use crate::wire::{
    self, FrameHeader, Wire, CH_BARRIER, CH_DATA, CH_HELLO, FRAME_HEADER_LEN, MAX_FRAME_PAYLOAD,
};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Magic carried in the `b` field of hello frames, guarding against a
/// non-kamsta peer (or a different protocol revision) joining the mesh.
const HELLO_MAGIC: u64 = 0x6B61_6D73_7461_2D36; // "kamsta-6"

/// Pseudo communicator id of rendezvous traffic — outside the id space
/// `Comm::split` derives (which starts from the world id 0).
const RENDEZVOUS_COMM: u64 = u64::MAX;

/// Back-off of the pump loops when no byte moved: long enough to yield
/// the core on oversubscribed hosts, short enough to stay invisible
/// next to loopback round trips.
const PUMP_IDLE: Duration = Duration::from_micros(50);

fn io_error(peer: usize, e: &std::io::Error) -> TransportError {
    match e.kind() {
        ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe
        | ErrorKind::UnexpectedEof => TransportError::PeerClosed {
            peer,
            mid_frame: false,
        },
        _ => TransportError::Io(format!("peer {peer}: {e}")),
    }
}

/// One decoded data-plane frame waiting to be consumed.
struct DataFrame {
    seq: u64,
    tag: u64,
    bytes: Vec<u8>,
}

/// Per-communicator pending queues of one link. TCP preserves order per
/// stream, and within one communicator the SPMD round order makes that
/// arrival order the consumption order — so plain FIFOs suffice.
#[derive(Default)]
struct Pending {
    data: VecDeque<DataFrame>,
    barrier: VecDeque<(u64, u64)>,
}

/// One live stream to a peer plus its parse state.
struct Link {
    stream: TcpStream,
    /// Received, not yet frame-parsed bytes (at most one partial frame
    /// plus whatever arrived behind it in the last read burst).
    rd: Vec<u8>,
    /// The peer's end is gone (EOF or reset observed).
    closed: bool,
    pending: HashMap<u64, Pending>,
}

impl Link {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            rd: Vec::new(),
            closed: false,
            pending: HashMap::new(),
        }
    }

    /// Drain everything currently readable (non-blocking) and parse
    /// complete frames into the pending queues. Returns whether any
    /// bytes arrived.
    fn pump(&mut self, peer: usize) -> Result<bool, TransportError> {
        if self.closed {
            return Ok(false);
        }
        let mut progressed = false;
        let mut buf = [0u8; 64 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    self.rd.extend_from_slice(&buf[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.closed = true;
                    return Err(io_error(peer, &e));
                }
            }
        }
        self.parse_frames(peer)?;
        Ok(progressed)
    }

    fn parse_frames(&mut self, peer: usize) -> Result<(), TransportError> {
        let mut off = 0;
        while self.rd.len() - off >= FRAME_HEADER_LEN {
            let h = FrameHeader::parse(&self.rd[off..off + FRAME_HEADER_LEN])
                .map_err(|e| TransportError::Protocol(format!("frame from PE {peer}: {e}")))?;
            if h.len > MAX_FRAME_PAYLOAD {
                return Err(TransportError::Protocol(format!(
                    "oversized frame from PE {peer}: {} bytes (cap {MAX_FRAME_PAYLOAD})",
                    h.len
                )));
            }
            let total = FRAME_HEADER_LEN + h.len as usize;
            if self.rd.len() - off < total {
                break; // partial frame: wait for the rest
            }
            let payload = self.rd[off + FRAME_HEADER_LEN..off + total].to_vec();
            off += total;
            let entry = self.pending.entry(h.comm).or_default();
            match h.channel {
                CH_DATA => entry.data.push_back(DataFrame {
                    seq: h.a,
                    tag: h.b,
                    bytes: payload,
                }),
                CH_BARRIER => entry.barrier.push_back((h.a, h.b)),
                _ => {
                    return Err(TransportError::Protocol(format!(
                        "unexpected hello frame from PE {peer} after mesh construction"
                    )))
                }
            }
        }
        self.rd.drain(..off);
        Ok(())
    }
}

/// This PE's end of the full socket mesh: one [`Link`] per peer, shared
/// by the world communicator and everything `Comm::split` derives.
///
/// Links are mutexed for `Sync` (the `Comm` holding the fabric may move
/// between threads); within one PE access is single-threaded, so the
/// locks never contend.
pub(crate) struct SocketFabric {
    rank: usize,
    p: usize,
    timeout: Duration,
    /// `links[peer]`; `None` exactly at `peer == rank`.
    links: Box<[Option<Mutex<Link>>]>,
}

impl std::fmt::Debug for SocketFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SocketFabric(rank {} of {})", self.rank, self.p)
    }
}

impl SocketFabric {
    /// Build the mesh from a rank-indexed address table. `listener` must
    /// already be bound to `addrs[rank]` (peers are dialling it). Blocks
    /// until all `p − 1` links are up or `timeout` expires.
    pub(crate) fn connect_mesh(
        rank: usize,
        listener: TcpListener,
        addrs: &[SocketAddr],
        timeout: Duration,
    ) -> Result<Self, TransportError> {
        let p = addrs.len();
        assert!(rank < p, "mesh rank out of range");
        let deadline = Instant::now() + timeout;
        let mut links: Vec<Option<Mutex<Link>>> = (0..p).map(|_| None).collect();

        // Dial every lower rank, identifying ourselves with a hello.
        for (j, addr) in addrs.iter().enumerate().take(rank) {
            let mut stream = connect_retry(*addr, j, deadline)?;
            let mut hello = Vec::with_capacity(FRAME_HEADER_LEN);
            FrameHeader {
                channel: CH_HELLO,
                comm: 0,
                a: rank as u64,
                b: HELLO_MAGIC,
                len: 0,
            }
            .write(&mut hello);
            stream.write_all(&hello).map_err(|e| io_error(j, &e))?;
            links[j] = Some(Mutex::new(Link::new(stream)));
        }

        // Accept from every higher rank, in arrival order.
        listener
            .set_nonblocking(true)
            .map_err(|e| TransportError::Io(format!("listener: {e}")))?;
        let mut missing = p - 1 - rank;
        while missing > 0 {
            match listener.accept() {
                Ok((stream, _)) => {
                    let hello = read_hello_blocking(&stream, usize::MAX, deadline)?;
                    let peer = hello.a as usize;
                    if hello.b != HELLO_MAGIC || peer <= rank || peer >= p {
                        return Err(TransportError::Protocol(format!(
                            "mesh hello from unexpected rank {peer}"
                        )));
                    }
                    if links[peer].is_some() {
                        return Err(TransportError::Protocol(format!(
                            "duplicate mesh connection from rank {peer}"
                        )));
                    }
                    links[peer] = Some(Mutex::new(Link::new(stream)));
                    missing -= 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(TransportError::Timeout {
                            peer: rank,
                            waited: timeout,
                        });
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(TransportError::Io(format!("accept: {e}"))),
            }
        }

        // Switch to the non-blocking regime of the data plane.
        for (j, link) in links.iter().enumerate() {
            if let Some(l) = link {
                let l = l.lock();
                l.stream.set_nodelay(true).ok();
                l.stream
                    .set_nonblocking(true)
                    .map_err(|e| io_error(j, &e))?;
            }
        }
        Ok(Self {
            rank,
            p,
            timeout,
            links: links.into_boxed_slice(),
        })
    }

    pub(crate) fn size(&self) -> usize {
        self.p
    }

    fn link(&self, peer: usize) -> &Mutex<Link> {
        self.links[peer]
            .as_ref()
            .expect("no socket link to self or out-of-range peer")
    }

    /// Drain every link's readable bytes. Returns whether any byte moved
    /// anywhere — the caller's cue to back off when idle.
    fn pump_all(&self) -> Result<bool, TransportError> {
        let mut progressed = false;
        for (peer, link) in self.links.iter().enumerate() {
            if let Some(l) = link {
                progressed |= l.lock().pump(peer)?;
            }
        }
        Ok(progressed)
    }

    /// Write one whole frame to `peer`, pumping receives while the send
    /// buffer is full (see the module docs on the all-to-all deadlock).
    fn send_frame(&self, peer: usize, frame: &[u8]) -> Result<(), TransportError> {
        let deadline = Instant::now() + self.timeout;
        let mut off = 0;
        loop {
            {
                let mut link = self.link(peer).lock();
                if link.closed {
                    return Err(TransportError::PeerClosed {
                        peer,
                        mid_frame: false,
                    });
                }
                loop {
                    match link.stream.write(&frame[off..]) {
                        Ok(0) => {
                            return Err(TransportError::PeerClosed {
                                peer,
                                mid_frame: off > 0,
                            })
                        }
                        Ok(n) => {
                            off += n;
                            if off == frame.len() {
                                return Ok(());
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(e) => return Err(io_error(peer, &e)),
                    }
                }
            }
            if Instant::now() > deadline {
                return Err(TransportError::Timeout {
                    peer,
                    waited: self.timeout,
                });
            }
            if !self.pump_all()? {
                std::thread::sleep(PUMP_IDLE);
            }
        }
    }

    /// Send a data-plane frame for round `seq` of communicator `comm`.
    pub(crate) fn send_data(
        &self,
        peer: usize,
        comm: u64,
        seq: u64,
        tag: u64,
        payload: &[u8],
    ) -> Result<(), TransportError> {
        debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD as usize);
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        FrameHeader {
            channel: CH_DATA,
            comm,
            a: seq,
            b: tag,
            len: payload.len() as u32,
        }
        .write(&mut frame);
        frame.extend_from_slice(payload);
        self.send_frame(peer, &frame)
    }

    /// Send a barrier signal (`code` = `episode << 8 | round`) carrying
    /// the clock maximum as bits.
    pub(crate) fn send_barrier(
        &self,
        peer: usize,
        comm: u64,
        code: u64,
        clock_bits: u64,
    ) -> Result<(), TransportError> {
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN);
        FrameHeader {
            channel: CH_BARRIER,
            comm,
            a: code,
            b: clock_bits,
            len: 0,
        }
        .write(&mut frame);
        self.send_frame(peer, &frame)
    }

    /// Receive the round-`seq` data frame from `peer` on communicator
    /// `comm`, discarding stale frames of earlier rounds (posted but
    /// never consumed — the socket analogue of a stale byte-hub frame).
    pub(crate) fn recv_data(
        &self,
        peer: usize,
        comm: u64,
        seq: u64,
        tag: u64,
        what: &str,
    ) -> Result<Vec<u8>, TransportError> {
        let deadline = Instant::now() + self.timeout;
        loop {
            {
                let mut link = self.link(peer).lock();
                link.pump(peer)?;
                let pending = link.pending.entry(comm).or_default();
                while let Some(front) = pending.data.front() {
                    if front.seq < seq {
                        pending.data.pop_front(); // stale, never consumed
                        continue;
                    }
                    if front.seq == seq && front.tag == tag {
                        let frame = pending.data.pop_front().expect("front just probed");
                        return Ok(frame.bytes);
                    }
                    return Err(TransportError::Protocol(format!(
                        "socket {what} of round {seq}: found frame of round {} from PE {peer} — \
                         a PE skipped a send or collectives ran out of order",
                        front.seq
                    )));
                }
                if link.closed {
                    return Err(TransportError::PeerClosed {
                        peer,
                        mid_frame: !link.rd.is_empty(),
                    });
                }
            }
            if Instant::now() > deadline {
                return Err(TransportError::Timeout {
                    peer,
                    waited: self.timeout,
                });
            }
            if !self.pump_all()? {
                std::thread::sleep(PUMP_IDLE);
            }
        }
    }

    /// Receive the barrier signal with exactly `code` from `peer`.
    ///
    /// Per (pair, communicator, episode) there is exactly one barrier
    /// frame in each direction — the dissemination offsets `2^k mod p`
    /// are pairwise distinct over the rounds — and TCP's per-stream FIFO
    /// plus the SPMD collective order make arrival order match episode
    /// order, so the front of the queue must be the expected signal.
    pub(crate) fn recv_barrier(
        &self,
        peer: usize,
        comm: u64,
        code: u64,
    ) -> Result<u64, TransportError> {
        let deadline = Instant::now() + self.timeout;
        loop {
            {
                let mut link = self.link(peer).lock();
                link.pump(peer)?;
                let pending = link.pending.entry(comm).or_default();
                if let Some(&(got, bits)) = pending.barrier.front() {
                    if got != code {
                        return Err(TransportError::Protocol(format!(
                            "barrier signal out of order from PE {peer}: \
                             expected code {code:#x}, found {got:#x}"
                        )));
                    }
                    pending.barrier.pop_front();
                    return Ok(bits);
                }
                if link.closed {
                    return Err(TransportError::PeerClosed {
                        peer,
                        mid_frame: !link.rd.is_empty(),
                    });
                }
            }
            if Instant::now() > deadline {
                return Err(TransportError::Timeout {
                    peer,
                    waited: self.timeout,
                });
            }
            if !self.pump_all()? {
                std::thread::sleep(PUMP_IDLE);
            }
        }
    }
}

/// Connect to `addr`, retrying refusals until `deadline` — the peer may
/// simply not have bound its listener yet.
fn connect_retry(
    addr: SocketAddr,
    peer: usize,
    deadline: Instant,
) -> Result<TcpStream, TransportError> {
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(TransportError::Timeout {
                peer,
                waited: Duration::ZERO,
            });
        }
        match TcpStream::connect_timeout(&addr, left) {
            Ok(s) => return Ok(s),
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::ConnectionRefused
                        | ErrorKind::ConnectionReset
                        | ErrorKind::TimedOut
                        | ErrorKind::AddrNotAvailable
                ) =>
            {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(io_error(peer, &e)),
        }
    }
}

/// Blocking read of exactly one header-only hello frame, bounded by
/// `deadline` via the stream's read timeout.
fn read_hello_blocking(
    stream: &TcpStream,
    peer: usize,
    deadline: Instant,
) -> Result<FrameHeader, TransportError> {
    set_deadline(stream, peer, deadline)?;
    let mut buf = [0u8; FRAME_HEADER_LEN];
    (&mut &*stream)
        .read_exact(&mut buf)
        .map_err(|e| match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => TransportError::Timeout {
                peer,
                waited: Duration::ZERO,
            },
            _ => io_error(peer, &e),
        })?;
    let h = FrameHeader::parse(&buf)
        .map_err(|e| TransportError::Protocol(format!("hello frame: {e}")))?;
    if h.channel != CH_HELLO {
        return Err(TransportError::Protocol(format!(
            "expected a hello frame, got channel {}",
            h.channel
        )));
    }
    Ok(h)
}

fn set_deadline(stream: &TcpStream, peer: usize, deadline: Instant) -> Result<(), TransportError> {
    let left = deadline.saturating_duration_since(Instant::now());
    if left.is_zero() {
        return Err(TransportError::Timeout {
            peer,
            waited: Duration::ZERO,
        });
    }
    stream
        .set_nonblocking(false)
        .and_then(|()| stream.set_read_timeout(Some(left)))
        .map_err(|e| io_error(peer, &e))
}

// ---------------------------------------------------------------------
// Launcher rendezvous
// ---------------------------------------------------------------------

/// Blocking read of one whole frame (header + payload) with the
/// deadline applied — rendezvous streams are blocking and short-lived.
fn read_frame_blocking(
    stream: &TcpStream,
    peer: usize,
    deadline: Instant,
) -> Result<(FrameHeader, Vec<u8>), TransportError> {
    set_deadline(stream, peer, deadline)?;
    let mut head = [0u8; FRAME_HEADER_LEN];
    let mut s = stream;
    s.read_exact(&mut head).map_err(|e| io_error(peer, &e))?;
    let h = FrameHeader::parse(&head)
        .map_err(|e| TransportError::Protocol(format!("rendezvous frame: {e}")))?;
    if h.len > MAX_FRAME_PAYLOAD {
        return Err(TransportError::Protocol(format!(
            "oversized rendezvous frame: {} bytes",
            h.len
        )));
    }
    let mut payload = vec![0u8; h.len as usize];
    s.read_exact(&mut payload).map_err(|e| io_error(peer, &e))?;
    Ok((h, payload))
}

fn write_data_frame(
    stream: &TcpStream,
    peer: usize,
    seq: u64,
    value: &impl Wire,
) -> Result<(), TransportError> {
    let payload = wire::encode(value);
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    FrameHeader {
        channel: CH_DATA,
        comm: RENDEZVOUS_COMM,
        a: seq,
        b: 0,
        len: payload.len() as u32,
    }
    .write(&mut frame);
    frame.extend_from_slice(&payload);
    (&mut &*stream)
        .write_all(&frame)
        .map_err(|e| io_error(peer, &e))
}

/// Serve the launcher side of the rank-assignment handshake: accept `p`
/// workers on `listener`, assign each a rank (honouring claimed ranks,
/// filling the rest in arrival order), and broadcast the address table.
/// Returns the table, rank-indexed.
///
/// `abort` is polled while waiting; returning `Some(reason)` fails the
/// rendezvous immediately (the launcher passes child-death detection
/// through it, so one dead worker cannot stall the others to the full
/// timeout).
pub fn serve_rendezvous(
    listener: &TcpListener,
    p: usize,
    timeout: Duration,
    mut abort: impl FnMut() -> Option<String>,
) -> Result<Vec<SocketAddr>, TransportError> {
    assert!(p > 0);
    let deadline = Instant::now() + timeout;
    listener
        .set_nonblocking(true)
        .map_err(|e| TransportError::Io(format!("rendezvous listener: {e}")))?;
    // (stream, claimed rank or MAX, advertised address)
    let mut arrivals: Vec<(TcpStream, u64, String)> = Vec::with_capacity(p);
    while arrivals.len() < p {
        if let Some(reason) = abort() {
            return Err(TransportError::Protocol(format!(
                "rendezvous aborted: {reason}"
            )));
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let hello = read_hello_blocking(&stream, usize::MAX, deadline)?;
                if hello.b != HELLO_MAGIC {
                    return Err(TransportError::Protocol(
                        "rendezvous hello with wrong magic".to_string(),
                    ));
                }
                let (h, payload) = read_frame_blocking(&stream, usize::MAX, deadline)?;
                if h.comm != RENDEZVOUS_COMM || h.a != 0 {
                    return Err(TransportError::Protocol(
                        "rendezvous address frame out of order".to_string(),
                    ));
                }
                let addr: String = wire::decode(&payload)
                    .map_err(|e| TransportError::Protocol(format!("rendezvous address: {e}")))?;
                arrivals.push((stream, hello.a, addr));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    return Err(TransportError::Timeout {
                        peer: arrivals.len(),
                        waited: timeout,
                    });
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(TransportError::Io(format!("rendezvous accept: {e}"))),
        }
    }

    // Rank assignment: claimed ranks are honoured, the unclaimed fill
    // the remaining slots in arrival order.
    let mut ranks: Vec<Option<usize>> = vec![None; p];
    let mut slots: Vec<Option<usize>> = vec![None; p]; // rank -> arrival
    for (i, (_, claimed, _)) in arrivals.iter().enumerate() {
        if *claimed == u64::MAX {
            continue;
        }
        let r = *claimed as usize;
        if r >= p {
            return Err(TransportError::Protocol(format!(
                "worker claimed rank {r} of a {p}-PE machine"
            )));
        }
        if slots[r].is_some() {
            return Err(TransportError::Protocol(format!(
                "two workers claimed rank {r}"
            )));
        }
        slots[r] = Some(i);
        ranks[i] = Some(r);
    }
    let mut next_free = 0usize;
    for (i, rank) in ranks.iter_mut().enumerate() {
        if rank.is_none() {
            while slots[next_free].is_some() {
                next_free += 1;
            }
            slots[next_free] = Some(i);
            *rank = Some(next_free);
        }
    }

    let mut table: Vec<SocketAddr> = Vec::with_capacity(p);
    for slot in &slots {
        let i = slot.expect("every rank assigned");
        let addr = arrivals[i].2.parse().map_err(|_| {
            TransportError::Protocol(format!("worker advertised bad address {:?}", arrivals[i].2))
        })?;
        table.push(addr);
    }

    let strings: Vec<String> = table.iter().map(|a| a.to_string()).collect();
    for (i, (stream, _, _)) in arrivals.iter().enumerate() {
        let rank = ranks[i].expect("every arrival ranked") as u64;
        write_data_frame(stream, usize::MAX, 1, &(rank, strings.clone()))?;
    }
    Ok(table)
}

/// Worker side of the rendezvous: bind an ephemeral listener, report it
/// to the launcher at `rendezvous` (claiming `preferred` when given),
/// and receive the assigned rank plus the full address table. The
/// returned listener is the one peers will dial for the mesh.
pub(crate) fn rendezvous_client(
    rendezvous: &str,
    preferred: Option<usize>,
    timeout: Duration,
) -> Result<(usize, TcpListener, Vec<SocketAddr>), TransportError> {
    let deadline = Instant::now() + timeout;
    let host: SocketAddr = rendezvous
        .parse()
        .map_err(|_| TransportError::Protocol(format!("bad rendezvous address {rendezvous:?}")))?;
    // Bind on the same interface the launcher is reachable on.
    let listener = TcpListener::bind((host.ip(), 0))
        .map_err(|e| TransportError::Io(format!("worker listener: {e}")))?;
    let my_addr = listener
        .local_addr()
        .map_err(|e| TransportError::Io(format!("worker listener: {e}")))?;

    let mut stream = connect_retry(host, usize::MAX, deadline)?;
    let mut hello = Vec::with_capacity(FRAME_HEADER_LEN);
    FrameHeader {
        channel: CH_HELLO,
        comm: 0,
        a: preferred.map_or(u64::MAX, |r| r as u64),
        b: HELLO_MAGIC,
        len: 0,
    }
    .write(&mut hello);
    stream
        .write_all(&hello)
        .map_err(|e| io_error(usize::MAX, &e))?;
    write_data_frame(&stream, usize::MAX, 0, &my_addr.to_string())?;

    let (h, payload) = read_frame_blocking(&stream, usize::MAX, deadline)?;
    if h.comm != RENDEZVOUS_COMM || h.a != 1 {
        return Err(TransportError::Protocol(
            "rendezvous reply out of order".to_string(),
        ));
    }
    let (rank, strings): (u64, Vec<String>) = wire::decode(&payload)
        .map_err(|e| TransportError::Protocol(format!("rendezvous reply: {e}")))?;
    let mut table = Vec::with_capacity(strings.len());
    for s in &strings {
        table.push(s.parse().map_err(|_| {
            TransportError::Protocol(format!("rendezvous table entry {s:?} unparsable"))
        })?);
    }
    Ok((rank as usize, listener, table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn loopback_pair(p: usize, timeout: Duration) -> Vec<SocketFabric> {
        let listeners: Vec<TcpListener> = (0..p)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let addrs = Arc::new(addrs);
        let mut handles = Vec::new();
        for (rank, listener) in listeners.into_iter().enumerate() {
            let addrs = Arc::clone(&addrs);
            handles.push(std::thread::spawn(move || {
                SocketFabric::connect_mesh(rank, listener, &addrs, timeout).unwrap()
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn data_frames_roundtrip_across_a_real_socket_pair() {
        let fabs = loopback_pair(2, Duration::from_secs(5));
        let payload = vec![1u8, 2, 3, 4];
        fabs[0].send_data(1, 0, 1, 42, &payload).unwrap();
        let got = fabs[1].recv_data(0, 0, 1, 42, "test").unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn stale_frames_are_discarded_like_the_byte_hub() {
        let fabs = loopback_pair(2, Duration::from_secs(5));
        fabs[0].send_data(1, 0, 1, 7, b"old").unwrap();
        fabs[0].send_data(1, 0, 3, 7, b"new").unwrap();
        let got = fabs[1].recv_data(0, 0, 3, 7, "test").unwrap();
        assert_eq!(got, b"new");
    }

    #[test]
    fn future_frame_is_a_protocol_error() {
        let fabs = loopback_pair(2, Duration::from_secs(5));
        fabs[0].send_data(1, 0, 5, 7, b"x").unwrap();
        let err = fabs[1].recv_data(0, 0, 2, 7, "test").unwrap_err();
        assert!(
            matches!(err, TransportError::Protocol(ref m) if m.contains("skipped a send")),
            "{err:?}"
        );
    }

    #[test]
    fn tag_mismatch_is_a_protocol_error() {
        let fabs = loopback_pair(2, Duration::from_secs(5));
        fabs[0].send_data(1, 0, 1, 7, b"x").unwrap();
        let err = fabs[1].recv_data(0, 0, 1, 8, "test").unwrap_err();
        assert!(matches!(err, TransportError::Protocol(_)), "{err:?}");
    }

    #[test]
    fn peer_drop_surfaces_as_peer_closed() {
        let mut fabs = loopback_pair(2, Duration::from_secs(5));
        drop(fabs.remove(0));
        let err = fabs[0].recv_data(0, 0, 1, 7, "test").unwrap_err();
        assert!(
            matches!(err, TransportError::PeerClosed { peer: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn missing_frame_times_out_with_bound() {
        let timeout = Duration::from_millis(150);
        let fabs = loopback_pair(2, timeout);
        let t0 = Instant::now();
        let err = fabs[1].recv_data(0, 0, 1, 7, "test").unwrap_err();
        assert!(
            matches!(err, TransportError::Timeout { peer: 0, .. }),
            "{err:?}"
        );
        assert!(t0.elapsed() < timeout * 20, "timeout must be bounded");
    }

    #[test]
    fn oversized_frame_header_is_rejected() {
        let fabs = loopback_pair(2, Duration::from_secs(5));
        // Hand-craft a header announcing an absurd payload.
        let mut frame = Vec::new();
        FrameHeader {
            channel: CH_DATA,
            comm: 0,
            a: 1,
            b: 7,
            len: MAX_FRAME_PAYLOAD + 1,
        }
        .write(&mut frame);
        {
            let mut link = fabs[0].link(1).lock();
            link.stream.write_all(&frame).unwrap();
        }
        let err = fabs[1].recv_data(0, 0, 1, 7, "test").unwrap_err();
        assert!(
            matches!(err, TransportError::Protocol(ref m) if m.contains("oversized")),
            "{err:?}"
        );
    }

    #[test]
    fn truncated_frame_surfaces_as_mid_frame_close() {
        let fabs = loopback_pair(2, Duration::from_secs(5));
        // A valid header promising 100 bytes, then only 3, then EOF.
        let mut frame = Vec::new();
        FrameHeader {
            channel: CH_DATA,
            comm: 0,
            a: 1,
            b: 7,
            len: 100,
        }
        .write(&mut frame);
        frame.extend_from_slice(b"abc");
        {
            let link = fabs[0].link(1).lock();
            (&mut &link.stream).write_all(&frame).unwrap();
            let _ = link.stream.shutdown(std::net::Shutdown::Write);
        }
        let err = fabs[1].recv_data(0, 0, 1, 7, "test").unwrap_err();
        assert!(
            matches!(
                err,
                TransportError::PeerClosed {
                    peer: 0,
                    mid_frame: true
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn rendezvous_assigns_claimed_and_free_ranks() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let timeout = Duration::from_secs(5);
        let mut joins = Vec::new();
        for preferred in [Some(2usize), None, Some(0)] {
            let addr = addr.clone();
            joins.push(std::thread::spawn(move || {
                rendezvous_client(&addr, preferred, timeout).unwrap()
            }));
        }
        let table = serve_rendezvous(&listener, 3, timeout, || None).unwrap();
        assert_eq!(table.len(), 3);
        let mut got: Vec<(Option<usize>, usize)> = Vec::new();
        for (pref, j) in [Some(2usize), None, Some(0)].into_iter().zip(joins) {
            let (rank, _, t) = j.join().unwrap();
            assert_eq!(t, table);
            got.push((pref, rank));
        }
        for (pref, rank) in &got {
            if let Some(p) = pref {
                assert_eq!(rank, p, "claimed ranks are honoured");
            }
        }
        let mut ranks: Vec<usize> = got.iter().map(|(_, r)| *r).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2]);
    }

    #[test]
    fn rendezvous_rejects_duplicate_claims() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let timeout = Duration::from_secs(5);
        let joins: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || rendezvous_client(&addr, Some(1), timeout))
            })
            .collect();
        let err = serve_rendezvous(&listener, 2, timeout, || None).unwrap_err();
        assert!(
            matches!(err, TransportError::Protocol(ref m) if m.contains("claimed rank")),
            "{err:?}"
        );
        for j in joins {
            let _ = j.join(); // clients error out or time out; either is fine
        }
    }
}
