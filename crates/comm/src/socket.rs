//! The socket transport backend: per-PE-pair TCP streams carrying
//! length-prefixed [`Wire`](crate::wire) frames.
//!
//! Where the byte-stream backend moves frames through in-process
//! `VecDeque`s, this backend moves the **same frames** through real OS
//! sockets — between threads of one process (the in-process machine
//! mode of `Machine::try_run`) or between OS processes spawned by the
//! `kamsta_launch` binary (`Machine::try_run_worker`). The collective
//! layer above the transport boundary is untouched: the three
//! primitives of `transport.rs` route their encoded buckets through
//! [`SocketFabric`] instead of the [`ByteHub`](crate::bytestream), and
//! the dissemination barrier runs over [`CH_BARRIER`] frames.
//!
//! ## Mesh topology and bootstrap
//!
//! The fabric is a full mesh: one TCP stream per unordered PE pair.
//! [`SocketFabric::connect_mesh`] builds it from a rank-indexed address
//! table: rank `i` **connects** to every rank `j < i` (sending a
//! [`CH_HELLO`] frame naming itself) and **accepts** from every
//! `j > i` on its own listener, in whatever order those peers dial in —
//! the hello identifies them. Connect refusals are retried until the
//! **handshake** deadline (peers bind their listeners at different
//! times), so arbitrarily staggered start-up is tolerated up to that
//! timeout; a formation failure reports exactly which ranks joined and
//! which never showed ([`TransportError::MeshIncomplete`]).
//!
//! ## The progress engine
//!
//! All-to-all rounds write to every peer before reading from any. With
//! blocking sockets two PEs whose kernel send buffers fill would
//! deadlock writing to each other; every stream is therefore
//! **permanently non-blocking** after the mesh is up, and both the send
//! and the receive path run a pump loop: on `WouldBlock`, drain every
//! link's readable bytes into per-communicator pending queues
//! ([`SocketFabric::pump_all`]), then retry until the io deadline.
//! Received frames are demultiplexed by communicator id and channel, so
//! sub-communicator traffic and barrier signals interleave freely on
//! the shared pair streams.
//!
//! ## Liveness probes
//!
//! A PE blocked in a receive sends a tiny [`CH_PING`] request to the
//! peer it is waiting on every probe interval (a fraction of the io
//! timeout); any live transport answers with a pong from its pump. The
//! probe's value is the **write**: an idle receiver otherwise never
//! writes, so a connection that died without delivering EOF/RST (peer
//! host gone, cable pulled) would only surface at the full io deadline —
//! the failing ping write surfaces it in O(probe interval) instead.
//! A missing *pong* is deliberately not a death verdict: the transport
//! is single-threaded by design, so a peer deep in computation pumps
//! nothing and answers nothing while perfectly healthy.
//!
//! ## Failure model and fault injection
//!
//! Every wait is bounded by the machine's io timeout and every failure
//! is a typed [`TransportError`], never a hang: EOF on a link is
//! [`TransportError::PeerClosed`] (flagged `mid_frame` when the stream
//! died inside a frame), a deadline miss is [`TransportError::Timeout`],
//! and out-of-order rounds, tag mismatches, oversized or malformed
//! frames are [`TransportError::Protocol`]. Teardown is by drop: a PE
//! that errors (or finishes) closes its streams, which surfaces at its
//! peers as `PeerClosed` on their next receive — graceful exit and
//! process death look the same, which is the point.
//!
//! With a [`FaultyTransport`](crate::fault::FaultyTransport) armed, the
//! send path injects the plan's faults per frame: transient ones
//! (delays, short writes, duplicates, retransmit-with-backoff) are
//! absorbed by stream reassembly and the stale-frame discard; lethal
//! ones corrupt the frame *after* its checksum is stamped, so the
//! receiver detects them as typed errors — a wrong answer is off the
//! table. See `crate::fault` for the taxonomy.

use crate::fault::{frame_checksum, FaultyTransport, LethalKind, SendFaults};
use crate::transport::TransportError;
use crate::wire::{
    self, FrameHeader, Wire, CH_BARRIER, CH_DATA, CH_HELLO, CH_PING, FRAME_HEADER_LEN,
    MAX_FRAME_PAYLOAD,
};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Kernel-level waiting via `poll(2)`, declared directly against the
/// system libc (no crate dependency). The pump loops park the thread
/// here until a link has bytes (or the kernel send buffer of a blocked
/// write drains) instead of spinning on `WouldBlock` reads with a
/// sleep back-off — on oversubscribed hosts running p processes per
/// core that spin was the dominant socket-transport cost.
#[cfg(unix)]
mod kernel_wait {
    use std::time::Duration;

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;

    #[repr(C)]
    pub struct PollFd {
        pub fd: i32,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
    }

    /// Block until any fd is ready or `timeout` elapses. Errors (and
    /// EINTR) are deliberately swallowed: the caller re-checks its
    /// queues and enforces its own deadline on every iteration, so a
    /// spurious early return costs one loop turn, never correctness.
    pub fn wait(fds: &mut [PollFd], timeout: Duration) {
        if fds.is_empty() {
            std::thread::sleep(timeout.min(Duration::from_millis(5)));
            return;
        }
        let ms = timeout.as_millis().clamp(1, i32::MAX as u128) as i32;
        unsafe {
            poll(fds.as_mut_ptr(), fds.len() as u64, ms);
        }
    }
}

/// Magic carried in the `b` field of hello frames, guarding against a
/// non-kamsta peer (or a different protocol revision) joining the mesh.
const HELLO_MAGIC: u64 = 0x6B61_6D73_7461_2D37; // "kamsta-7"

/// Pseudo communicator id of rendezvous traffic — outside the id space
/// `Comm::split` derives (which starts from the world id 0).
const RENDEZVOUS_COMM: u64 = u64::MAX;

/// Back-off of the pump loops when no byte moved: long enough to yield
/// the core on oversubscribed hosts, short enough to stay invisible
/// next to loopback round trips.
const PUMP_IDLE: Duration = Duration::from_micros(50);

/// How often a blocked receive probes its peer with a [`CH_PING`]: a
/// fraction of the io timeout, clamped so probes neither spam loopback
/// runs with tight timeouts nor wait minutes under huge ones.
fn ping_interval(io_timeout: Duration) -> Duration {
    (io_timeout / 8).clamp(Duration::from_millis(10), Duration::from_millis(500))
}

fn io_error(peer: usize, e: &std::io::Error) -> TransportError {
    match e.kind() {
        ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe
        | ErrorKind::UnexpectedEof => TransportError::PeerClosed {
            peer,
            mid_frame: false,
        },
        _ => TransportError::Io(format!("peer {peer}: {e}")),
    }
}

/// One decoded data-plane frame waiting to be consumed.
struct DataFrame {
    seq: u64,
    tag: u64,
    bytes: Vec<u8>,
}

/// Per-communicator pending queues of one link. TCP preserves order per
/// stream, and within one communicator the SPMD round order makes that
/// arrival order the consumption order — so plain FIFOs suffice.
#[derive(Default)]
struct Pending {
    data: VecDeque<DataFrame>,
    barrier: VecDeque<(u64, u64)>,
}

/// One live stream to a peer plus its parse state.
struct Link {
    stream: TcpStream,
    /// Received, not yet frame-parsed bytes (at most one partial frame
    /// plus whatever arrived behind it in the last read burst).
    rd: Vec<u8>,
    /// Control-plane bytes (pings/pongs) waiting for socket space. The
    /// backlog is always flushed before data frames so control frames
    /// never interleave into the middle of a data frame.
    wr_backlog: Vec<u8>,
    /// The peer's end is gone (EOF or reset observed).
    closed: bool,
    pending: HashMap<u64, Pending>,
    /// Ping requests received and not yet answered with a pong.
    ping_reqs: VecDeque<u64>,
    /// Nonce of the next ping this side sends.
    pings_sent: u64,
    /// Pongs received — liveness telemetry only, never a death verdict
    /// (a computing peer legitimately answers nothing; see module docs).
    #[allow(dead_code)]
    pongs: u64,
    /// Reads performed on this link (keys the short-read fault draw).
    reads: u64,
    /// Retired payload buffers awaiting reuse: consumed data frames
    /// return their `Vec` here and `parse_frames` refills from it, so
    /// steady-state rounds allocate nothing on the receive path.
    spare: Vec<Vec<u8>>,
}

/// Bound of each link's spare-buffer freelist (and of the communicator
/// send pool): enough to cover the frames in flight of one superstep,
/// small enough that retired capacity cannot pile up.
const SPARE_BUFS: usize = 8;

impl Link {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            rd: Vec::new(),
            wr_backlog: Vec::new(),
            closed: false,
            pending: HashMap::new(),
            ping_reqs: VecDeque::new(),
            pings_sent: 0,
            pongs: 0,
            reads: 0,
            spare: Vec::new(),
        }
    }

    /// Drain everything currently readable (non-blocking) and parse
    /// complete frames into the pending queues; answer any pings that
    /// arrived. Returns whether any bytes arrived.
    fn pump(&mut self, peer: usize, fx: Option<&FaultyTransport>) -> Result<bool, TransportError> {
        if self.closed {
            return Ok(false);
        }
        let mut progressed = false;
        let mut buf = [0u8; 64 * 1024];
        loop {
            // With no faults armed and a large partial frame at the
            // head of `rd`, read its remainder straight into `rd` —
            // funnelling multi-megabyte buckets through the 64 KiB
            // stack window would double-copy every byte. The fault
            // path keeps the windowed reads: short-read injection
            // must cap each syscall deterministically.
            if fx.is_none() {
                if let Some(need) = self.large_frame_need() {
                    if self.read_into_rd(peer, need)? {
                        progressed = true;
                        continue;
                    }
                    break; // WouldBlock or EOF
                }
            }
            // A short-read fault shrinks one read's window, fragmenting
            // frame arrival across syscalls — reassembly absorbs it.
            let cap = fx
                .and_then(|f| f.read_chunk(peer, self.reads))
                .unwrap_or(buf.len());
            self.reads = self.reads.wrapping_add(1);
            match self.stream.read(&mut buf[..cap]) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    self.rd.extend_from_slice(&buf[..n]);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.closed = true;
                    return Err(io_error(peer, &e));
                }
            }
        }
        self.parse_frames(peer, fx)?;
        self.answer_pings(peer, fx)?;
        Ok(progressed)
    }

    /// How many more bytes the partial frame at the head of `rd` still
    /// needs, when that remainder is large enough (beyond the stack
    /// window) to justify reading straight into `rd`. `rd` always
    /// starts at a frame boundary — `parse_frames` drains whole frames.
    fn large_frame_need(&self) -> Option<usize> {
        let h = FrameHeader::parse(self.rd.get(..FRAME_HEADER_LEN)?).ok()?;
        let total = FRAME_HEADER_LEN.checked_add(h.len as usize)?;
        let need = total.checked_sub(self.rd.len())?;
        (need > 64 * 1024).then_some(need)
    }

    /// One direct read of up to `need` bytes (capped per call) into the
    /// tail of `rd`. Returns whether bytes arrived; EOF marks the link
    /// closed, `WouldBlock` just reports no progress.
    fn read_into_rd(&mut self, peer: usize, need: usize) -> Result<bool, TransportError> {
        let chunk = need.min(4 * 1024 * 1024);
        let old = self.rd.len();
        self.rd.resize(old + chunk, 0);
        self.reads = self.reads.wrapping_add(1);
        loop {
            match self.stream.read(&mut self.rd[old..]) {
                Ok(0) => {
                    self.rd.truncate(old);
                    self.closed = true;
                    return Ok(false);
                }
                Ok(n) => {
                    self.rd.truncate(old + n);
                    return Ok(true);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    self.rd.truncate(old);
                    return Ok(false);
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    self.rd.truncate(old);
                    self.closed = true;
                    return Err(io_error(peer, &e));
                }
            }
        }
    }

    fn parse_frames(
        &mut self,
        peer: usize,
        fx: Option<&FaultyTransport>,
    ) -> Result<(), TransportError> {
        let mut off = 0;
        loop {
            let split = wire::split_frame(&self.rd[off..])
                .map_err(|e| TransportError::Protocol(format!("frame from PE {peer}: {e}")))?;
            let Some((h, total)) = split else {
                break; // partial frame: wait for the rest
            };
            let payload = &self.rd[off + FRAME_HEADER_LEN..off + total];
            // With faults armed every data-plane frame carries a
            // checksum; verify before demultiplexing so corruption can
            // never be served as an answer — not even to another
            // communicator.
            if fx.is_some() && frame_checksum(h.channel, h.comm, h.a, h.b, payload) != h.sum {
                return Err(TransportError::Protocol(format!(
                    "frame from PE {peer} failed its checksum (corrupt frame)"
                )));
            }
            off += total;
            match h.channel {
                CH_DATA => {
                    // Land the payload in a recycled buffer: the only
                    // copy on the whole receive path (out of the
                    // stream reassembly buffer), into capacity retired
                    // by an earlier round.
                    let mut bytes = self.spare.pop().unwrap_or_default();
                    bytes.extend_from_slice(payload);
                    self.pending
                        .entry(h.comm)
                        .or_default()
                        .data
                        .push_back(DataFrame {
                            seq: h.a,
                            tag: h.b,
                            bytes,
                        })
                }
                CH_BARRIER => self
                    .pending
                    .entry(h.comm)
                    .or_default()
                    .barrier
                    .push_back((h.a, h.b)),
                CH_PING if h.b == 0 => self.ping_reqs.push_back(h.a),
                CH_PING => self.pongs += 1,
                _ => {
                    return Err(TransportError::Protocol(format!(
                        "unexpected hello frame from PE {peer} after mesh construction"
                    )))
                }
            }
        }
        self.rd.drain(..off);
        Ok(())
    }

    /// Turn queued ping requests into pong frames and flush as much of
    /// the control backlog as the socket accepts right now.
    fn answer_pings(
        &mut self,
        peer: usize,
        fx: Option<&FaultyTransport>,
    ) -> Result<(), TransportError> {
        while let Some(nonce) = self.ping_reqs.pop_front() {
            push_ping_frame(&mut self.wr_backlog, nonce, 1, fx);
        }
        self.flush_backlog(peer)
    }

    /// Flush pending control bytes. A connection-level failure here is
    /// the liveness probe doing its job: mark the link closed so the
    /// caller's receive path surfaces `PeerClosed` immediately.
    fn flush_backlog(&mut self, peer: usize) -> Result<(), TransportError> {
        while !self.wr_backlog.is_empty() && !self.closed {
            match self.stream.write(&self.wr_backlog) {
                Ok(0) => self.closed = true,
                Ok(n) => {
                    self.wr_backlog.drain(..n);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => match io_error(peer, &e) {
                    TransportError::PeerClosed { .. } => self.closed = true,
                    other => return Err(other),
                },
            }
        }
        Ok(())
    }

    /// Pop the round-`seq` data frame of communicator `comm` if it has
    /// arrived, discarding stale frames of earlier rounds along the way
    /// (their buffers go back to the freelist). `Err(got)` reports a
    /// wrong-round frame at the queue head — a protocol violation the
    /// caller turns into a typed error.
    fn take_data(&mut self, comm: u64, seq: u64, tag: u64) -> Result<Option<DataFrame>, u64> {
        let pending = self.pending.entry(comm).or_default();
        while let Some(front) = pending.data.front() {
            if front.seq < seq {
                let stale = pending.data.pop_front().expect("front just probed");
                if self.spare.len() < SPARE_BUFS {
                    let mut buf = stale.bytes;
                    buf.clear();
                    self.spare.push(buf);
                }
                continue;
            }
            if front.seq == seq && front.tag == tag {
                return Ok(pending.data.pop_front());
            }
            return Err(front.seq);
        }
        Ok(None)
    }

    /// Return a consumed frame's buffer to the freelist.
    fn recycle(&mut self, mut buf: Vec<u8>) {
        if self.spare.len() < SPARE_BUFS {
            buf.clear();
            self.spare.push(buf);
        }
    }
}

/// Append one encoded [`CH_PING`] frame (`dir` 0 = request, 1 = pong).
fn push_ping_frame(out: &mut Vec<u8>, nonce: u64, dir: u64, fx: Option<&FaultyTransport>) {
    let sum = if fx.is_some() {
        frame_checksum(CH_PING, 0, nonce, dir, &[])
    } else {
        0
    };
    FrameHeader {
        channel: CH_PING,
        comm: 0,
        a: nonce,
        b: dir,
        len: 0,
        sum,
    }
    .write(out);
}

/// This PE's end of the full socket mesh: one [`Link`] per peer, shared
/// by the world communicator and everything `Comm::split` derives.
///
/// Links are mutexed for `Sync` (the `Comm` holding the fabric may move
/// between threads); within one PE access is single-threaded, so the
/// locks never contend.
pub(crate) struct SocketFabric {
    rank: usize,
    p: usize,
    /// Steady-state deadline of every data-plane send and receive.
    timeout: Duration,
    /// Armed fault-injection engine; `None` is the zero-cost fast path.
    faults: Option<Arc<FaultyTransport>>,
    /// `links[peer]`; `None` exactly at `peer == rank`.
    links: Box<[Option<Mutex<Link>>]>,
}

impl std::fmt::Debug for SocketFabric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SocketFabric(rank {} of {})", self.rank, self.p)
    }
}

impl SocketFabric {
    /// Build the mesh from a rank-indexed address table. `listener` must
    /// already be bound to `addrs[rank]` (peers are dialling it). Blocks
    /// until all `p − 1` links are up or the `handshake` deadline
    /// expires — a partial mesh fails with
    /// [`TransportError::MeshIncomplete`] naming who made it and who is
    /// missing. `io_timeout` governs the data plane afterwards.
    pub(crate) fn connect_mesh(
        rank: usize,
        listener: TcpListener,
        addrs: &[SocketAddr],
        handshake: Duration,
        io_timeout: Duration,
        faults: Option<Arc<FaultyTransport>>,
    ) -> Result<Self, TransportError> {
        let p = addrs.len();
        assert!(rank < p, "mesh rank out of range");
        let deadline = Instant::now() + handshake;
        let mut links: Vec<Option<Mutex<Link>>> = (0..p).map(|_| None).collect();
        let incomplete = |links: &[Option<Mutex<Link>>], waited| {
            let joined: Vec<usize> = (0..p)
                .filter(|&j| j == rank || links[j].is_some())
                .collect();
            let missing: Vec<usize> = (0..p)
                .filter(|&j| j != rank && links[j].is_none())
                .collect();
            TransportError::MeshIncomplete {
                joined,
                missing,
                waited,
            }
        };

        // Dial every lower rank, identifying ourselves with a hello.
        for (j, addr) in addrs.iter().enumerate().take(rank) {
            let mut stream = match connect_retry(*addr, j, deadline) {
                Ok(s) => s,
                Err(TransportError::Timeout { .. }) => {
                    return Err(incomplete(&links, handshake));
                }
                Err(e) => return Err(e),
            };
            let mut hello = Vec::with_capacity(FRAME_HEADER_LEN);
            FrameHeader {
                channel: CH_HELLO,
                comm: 0,
                a: rank as u64,
                b: HELLO_MAGIC,
                len: 0,
                sum: 0,
            }
            .write(&mut hello);
            stream.write_all(&hello).map_err(|e| io_error(j, &e))?;
            links[j] = Some(Mutex::new(Link::new(stream)));
        }

        // Accept from every higher rank, in arrival order.
        listener
            .set_nonblocking(true)
            .map_err(|e| TransportError::Io(format!("listener: {e}")))?;
        let mut missing = p - 1 - rank;
        while missing > 0 {
            match listener.accept() {
                Ok((stream, _)) => {
                    let hello = read_hello_blocking(&stream, usize::MAX, deadline)?;
                    let peer = hello.a as usize;
                    if hello.b != HELLO_MAGIC || peer <= rank || peer >= p {
                        return Err(TransportError::Protocol(format!(
                            "mesh hello from unexpected rank {peer}"
                        )));
                    }
                    if links[peer].is_some() {
                        return Err(TransportError::Protocol(format!(
                            "duplicate mesh connection from rank {peer}"
                        )));
                    }
                    links[peer] = Some(Mutex::new(Link::new(stream)));
                    missing -= 1;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if Instant::now() > deadline {
                        return Err(incomplete(&links, handshake));
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => return Err(TransportError::Io(format!("accept: {e}"))),
            }
        }

        // Switch to the non-blocking regime of the data plane.
        for (j, link) in links.iter().enumerate() {
            if let Some(l) = link {
                let l = l.lock();
                l.stream.set_nodelay(true).ok();
                l.stream
                    .set_nonblocking(true)
                    .map_err(|e| io_error(j, &e))?;
            }
        }
        Ok(Self {
            rank,
            p,
            timeout: io_timeout,
            faults,
            links: links.into_boxed_slice(),
        })
    }

    pub(crate) fn size(&self) -> usize {
        self.p
    }

    fn link(&self, peer: usize) -> &Mutex<Link> {
        self.links[peer]
            .as_ref()
            .expect("no socket link to self or out-of-range peer")
    }

    /// Park this thread in the kernel until any link becomes readable
    /// (or, for a blocked send, until `write_to`'s stream drains),
    /// bounded by `timeout`. The pump loops call this instead of a
    /// sleep back-off: a blocked receive wakes the instant bytes
    /// arrive rather than on the next poll tick, and an idle PE costs
    /// the host nothing — the difference between a syscall storm and a
    /// parked thread when p processes share a core.
    /// Returns the peers whose links came back ready — the caller pumps
    /// exactly those instead of sweeping all p − 1 links on every wake.
    fn wait_links(&self, write_to: Option<usize>, timeout: Duration) -> Vec<usize> {
        #[cfg(unix)]
        {
            use std::os::fd::AsRawFd;
            let mut fds = Vec::with_capacity(self.p);
            let mut peers = Vec::with_capacity(self.p);
            for (peer, link) in self.links.iter().enumerate() {
                if let Some(l) = link {
                    let l = l.lock();
                    if l.closed {
                        continue;
                    }
                    let mut events = kernel_wait::POLLIN;
                    if write_to == Some(peer) {
                        events |= kernel_wait::POLLOUT;
                    }
                    fds.push(kernel_wait::PollFd {
                        fd: l.stream.as_raw_fd(),
                        events,
                        revents: 0,
                    });
                    peers.push(peer);
                }
            }
            kernel_wait::wait(&mut fds, timeout);
            fds.iter()
                .zip(peers)
                .filter(|(fd, _)| fd.revents != 0)
                .map(|(_, peer)| peer)
                .collect()
        }
        #[cfg(not(unix))]
        {
            let _ = write_to;
            std::thread::sleep(timeout.min(PUMP_IDLE));
            (0..self.p).filter(|&j| j != self.rank).collect()
        }
    }

    /// Drain the readable bytes of exactly `peers` (a `wait_links`
    /// ready set).
    fn pump_peers(&self, peers: &[usize]) -> Result<bool, TransportError> {
        let fx = self.faults.as_deref();
        let mut progressed = false;
        for &peer in peers {
            if let Some(l) = &self.links[peer] {
                progressed |= l.lock().pump(peer, fx)?;
            }
        }
        Ok(progressed)
    }

    /// Drain every link's readable bytes. Returns whether any byte moved
    /// anywhere — the caller's cue to back off when idle.
    fn pump_all(&self) -> Result<bool, TransportError> {
        let fx = self.faults.as_deref();
        let mut progressed = false;
        for (peer, link) in self.links.iter().enumerate() {
            if let Some(l) = link {
                progressed |= l.lock().pump(peer, fx)?;
            }
        }
        Ok(progressed)
    }

    /// Queue a [`CH_PING`] request to `peer` and push it out. A probe
    /// whose write fails at the connection level marks the link closed —
    /// that is the O(probe interval) death detection of a peer whose
    /// disappearance never produced a readable EOF.
    fn send_ping(&self, peer: usize) -> Result<(), TransportError> {
        let fx = self.faults.as_deref();
        let mut link = self.link(peer).lock();
        if link.closed {
            return Ok(()); // the receive path will surface PeerClosed
        }
        let nonce = link.pings_sent;
        link.pings_sent += 1;
        push_ping_frame(&mut link.wr_backlog, nonce, 0, fx);
        link.flush_backlog(peer)
    }

    /// Fast-path transmission of one data-plane frame as header +
    /// borrowed payload: control backlog, header tail, and payload tail
    /// are gathered into a single `write_vectored` call — the frame is
    /// never assembled into a contiguous buffer and the common case is
    /// one syscall per (peer, round). Used whenever no fault is drawn
    /// for the frame; the fault schedules keep the scalar
    /// [`SocketFabric::send_frame`], whose short writes, retransmits
    /// and lethal injections need a contiguous frame to slice.
    fn send_frame_parts(
        &self,
        peer: usize,
        header: &[u8; FRAME_HEADER_LEN],
        payload: &[u8],
    ) -> Result<(), TransportError> {
        let total = FRAME_HEADER_LEN + payload.len();
        let deadline = Instant::now() + self.timeout;
        let mut off: usize = 0; // frame bytes (header + payload) on the wire
        loop {
            {
                let mut link = self.link(peer).lock();
                if link.closed {
                    return Err(TransportError::PeerClosed {
                        peer,
                        mid_frame: off > 0,
                    });
                }
                let Link {
                    stream, wr_backlog, ..
                } = &mut *link;
                while off < total {
                    let (h_from, p_from) = if off < FRAME_HEADER_LEN {
                        (off, 0)
                    } else {
                        (FRAME_HEADER_LEN, off - FRAME_HEADER_LEN)
                    };
                    // Backlog first: queued pings/pongs must never land
                    // inside this data frame.
                    let slices = [
                        IoSlice::new(wr_backlog),
                        IoSlice::new(&header[h_from..]),
                        IoSlice::new(&payload[p_from..]),
                    ];
                    match stream.write_vectored(&slices) {
                        Ok(0) => {
                            return Err(TransportError::PeerClosed {
                                peer,
                                mid_frame: off > 0,
                            })
                        }
                        Ok(n) => {
                            let from_backlog = n.min(wr_backlog.len());
                            wr_backlog.drain(..from_backlog);
                            off += n - from_backlog;
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(e) => return Err(io_error(peer, &e)),
                    }
                }
            }
            if off == total {
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(TransportError::Timeout {
                    peer,
                    waited: self.timeout,
                });
            }
            // Kernel send buffer full: park until the peer's pump makes
            // room or any link becomes readable, then drain exactly the
            // readable ones (the all-to-all deadlock guard).
            let ready = self.wait_links(
                Some(peer),
                deadline
                    .saturating_duration_since(Instant::now())
                    .min(Duration::from_millis(500)),
            );
            self.pump_peers(&ready)?;
        }
    }

    /// Write one whole frame to `peer`, pumping receives while the send
    /// buffer is full (see the module docs on the all-to-all deadlock).
    ///
    /// With faults armed, `sf` carries this frame's injected transient
    /// schedule: a pre-send delay, `failed_attempts` transient refusals
    /// each followed by a capped-exponential backoff and a retransmit
    /// from byte 0, short (chunked) writes, and a duplicate send.
    fn send_frame(
        &self,
        peer: usize,
        frame: &[u8],
        sf: Option<&SendFaults>,
    ) -> Result<(), TransportError> {
        if let (Some(sf), Some(fx)) = (sf, self.faults.as_deref()) {
            if let Some(d) = sf.delay {
                std::thread::sleep(d);
            }
            // Retransmit-on-transient: the refused attempts never put a
            // byte on the wire, so the eventual transmission is whole
            // and the receiver sees nothing unusual.
            for attempt in 0..sf.failed_attempts {
                std::thread::sleep(fx.backoff(sf.key, attempt));
            }
        }
        let chunk = sf.and_then(|s| s.write_chunk).unwrap_or(usize::MAX);
        let deadline = Instant::now() + self.timeout;
        let mut off: usize = 0;
        loop {
            {
                let mut link = self.link(peer).lock();
                // Control frames queued by the pump must drain first so
                // they never land inside this data frame.
                link.flush_backlog(peer)?;
                if link.closed {
                    return Err(TransportError::PeerClosed {
                        peer,
                        mid_frame: off > 0,
                    });
                }
                while link.wr_backlog.is_empty() && off < frame.len() {
                    let end = frame.len().min(off.saturating_add(chunk));
                    match link.stream.write(&frame[off..end]) {
                        Ok(0) => {
                            return Err(TransportError::PeerClosed {
                                peer,
                                mid_frame: off > 0,
                            })
                        }
                        Ok(n) => off += n,
                        Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                        Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                        Err(e) => return Err(io_error(peer, &e)),
                    }
                }
            }
            // Lock released: the duplicate (and the receiver's pump
            // running on another thread) can take it freely.
            if off == frame.len() {
                if sf.is_some_and(|s| s.duplicate) {
                    // The duplicate rides the reliable path; the
                    // receiver's stale-frame discard absorbs it.
                    return self.send_frame(peer, frame, None);
                }
                return Ok(());
            }
            if Instant::now() > deadline {
                return Err(TransportError::Timeout {
                    peer,
                    waited: self.timeout,
                });
            }
            if !self.pump_all()? {
                std::thread::sleep(PUMP_IDLE);
            }
        }
    }

    /// Perform an injected lethal fault instead of (or around) the
    /// normal transmission of `frame`. See [`LethalKind`].
    fn inject_lethal(
        &self,
        kind: LethalKind,
        peer: usize,
        mut frame: Vec<u8>,
        sf: &SendFaults,
    ) -> Result<(), TransportError> {
        let fx = self.faults.as_deref().expect("lethal implies faults armed");
        match kind {
            LethalKind::BitFlip => {
                // Flip one payload bit *after* the checksum was stamped:
                // the frame still parses, but the receiver's verify
                // fails with a typed protocol error. Sender-side this
                // send "succeeds" — exactly how silent corruption looks.
                let payload_bits = (frame.len() - FRAME_HEADER_LEN) * 8;
                if payload_bits > 0 {
                    let bit = fx.flip_bit(sf.key, payload_bits);
                    frame[FRAME_HEADER_LEN + bit / 8] ^= 1 << (bit % 8);
                } else {
                    // Zero payload: corrupt the `b` header field.
                    let bit = fx.flip_bit(sf.key, 64);
                    frame[17 + bit / 8] ^= 1 << (bit % 8);
                }
                self.send_frame(peer, &frame, None)
            }
            LethalKind::Truncate => {
                // Ship the header plus half the payload, then close the
                // stream: the peer observes EOF inside a frame.
                let cut = FRAME_HEADER_LEN + (frame.len() - FRAME_HEADER_LEN) / 2;
                self.write_best_effort(peer, &frame[..cut]);
                self.shutdown_all();
                Err(TransportError::Io(format!(
                    "injected fault: truncated frame to PE {peer}"
                )))
            }
            LethalKind::Disconnect => {
                // Pull the cable mid-frame: a few bytes of header, then
                // every link goes down at once.
                let cut = frame.len().min(FRAME_HEADER_LEN / 2);
                self.write_best_effort(peer, &frame[..cut]);
                self.shutdown_all();
                Err(TransportError::Io(
                    "injected fault: mid-frame disconnect".into(),
                ))
            }
        }
    }

    /// Push `bytes` at `peer` without error handling — lethal faults
    /// want the partial frame on the wire if possible, but the injection
    /// must proceed (to the shutdown) even if the kernel refuses.
    fn write_best_effort(&self, peer: usize, bytes: &[u8]) {
        let link = self.link(peer).lock();
        let mut off = 0;
        for _ in 0..64 {
            match (&link.stream).write(&bytes[off..]) {
                Ok(0) => break,
                Ok(n) => {
                    off += n;
                    if off == bytes.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    /// Tear down every link at once (lethal disconnect/truncate).
    fn shutdown_all(&self) {
        for link in self.links.iter().flatten() {
            let mut l = link.lock();
            let _ = l.stream.shutdown(std::net::Shutdown::Both);
            l.closed = true;
        }
    }

    /// Send a data-plane frame for round `seq` of communicator `comm`.
    pub(crate) fn send_data(
        &self,
        peer: usize,
        comm: u64,
        seq: u64,
        tag: u64,
        payload: &[u8],
    ) -> Result<(), TransportError> {
        debug_assert!(payload.len() <= MAX_FRAME_PAYLOAD as usize);
        let (sum, sf) = match self.faults.as_deref() {
            None => (0, None),
            Some(fx) => (
                frame_checksum(CH_DATA, comm, seq, tag, payload),
                Some(fx.send_faults(CH_DATA, self.rank, peer, comm, seq)),
            ),
        };
        let header = FrameHeader {
            channel: CH_DATA,
            comm,
            a: seq,
            b: tag,
            len: payload.len() as u32,
            sum,
        };
        // Clean frames — unarmed runs, and armed rounds whose draw came
        // up empty — take the zero-copy vectored path. Any drawn fault
        // needs the contiguous frame of the scalar path to mangle.
        if sf.as_ref().is_none_or(|s| !s.any()) {
            return self.send_frame_parts(peer, &header.to_array(), payload);
        }
        let sf = sf.expect("fault schedule just probed");
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
        header.write(&mut frame);
        frame.extend_from_slice(payload);
        if let Some(kind) = sf.lethal {
            return self.inject_lethal(kind, peer, frame, &sf);
        }
        self.send_frame(peer, &frame, Some(&sf))
    }

    /// Send a barrier signal (`code` = `episode << 8 | round`) carrying
    /// the clock maximum as bits.
    pub(crate) fn send_barrier(
        &self,
        peer: usize,
        comm: u64,
        code: u64,
        clock_bits: u64,
    ) -> Result<(), TransportError> {
        let (sum, sf) = match self.faults.as_deref() {
            None => (0, None),
            Some(fx) => (
                frame_checksum(CH_BARRIER, comm, code, clock_bits, &[]),
                Some(fx.send_faults(CH_BARRIER, self.rank, peer, comm, code)),
            ),
        };
        let header = FrameHeader {
            channel: CH_BARRIER,
            comm,
            a: code,
            b: clock_bits,
            len: 0,
            sum,
        };
        if sf.as_ref().is_none_or(|s| !s.any()) {
            return self.send_frame_parts(peer, &header.to_array(), &[]);
        }
        let mut frame = Vec::with_capacity(FRAME_HEADER_LEN);
        header.write(&mut frame);
        self.send_frame(peer, &frame, sf.as_ref())
    }

    /// Receive the round-`seq` data frame from `peer` on communicator
    /// `comm` and consume it in place: `f` gets a borrowed view of the
    /// payload (decoded straight out of the recycled receive buffer,
    /// which goes back to the link's freelist afterwards — no copy).
    /// Stale frames of earlier rounds (posted but never consumed, or
    /// injected duplicates of already-consumed rounds — the socket
    /// analogue of a stale byte-hub frame) are discarded along the way.
    pub(crate) fn recv_data_with<R>(
        &self,
        peer: usize,
        comm: u64,
        seq: u64,
        tag: u64,
        what: &str,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, TransportError> {
        let fx = self.faults.as_deref();
        let deadline = Instant::now() + self.timeout;
        let probe_every = ping_interval(self.timeout);
        let mut next_probe = Instant::now() + probe_every;
        loop {
            {
                let mut link = self.link(peer).lock();
                link.pump(peer, fx)?;
                match link.take_data(comm, seq, tag) {
                    Ok(Some(frame)) => {
                        let out = f(&frame.bytes);
                        link.recycle(frame.bytes);
                        return Ok(out);
                    }
                    Ok(None) => {}
                    Err(got) => {
                        return Err(TransportError::Protocol(format!(
                            "socket {what} of round {seq}: found frame of round {got} from \
                             PE {peer} — a PE skipped a send or collectives ran out of order"
                        )));
                    }
                }
                if link.closed {
                    return Err(TransportError::PeerClosed {
                        peer,
                        mid_frame: !link.rd.is_empty(),
                    });
                }
            }
            if Instant::now() > deadline {
                return Err(TransportError::Timeout {
                    peer,
                    waited: self.timeout,
                });
            }
            if Instant::now() >= next_probe {
                self.send_ping(peer)?;
                next_probe = Instant::now() + probe_every;
            }
            let wake = deadline.min(next_probe);
            let ready = self.wait_links(None, wake.saturating_duration_since(Instant::now()));
            self.pump_peers(&ready)?;
        }
    }

    /// Receive the round-`seq` data frame from `peer` as an owned
    /// buffer — the copying convenience form of
    /// [`SocketFabric::recv_data_with`].
    #[cfg(test)]
    pub(crate) fn recv_data(
        &self,
        peer: usize,
        comm: u64,
        seq: u64,
        tag: u64,
        what: &str,
    ) -> Result<Vec<u8>, TransportError> {
        self.recv_data_with(peer, comm, seq, tag, what, |b| b.to_vec())
    }

    /// Receive the barrier signal with exactly `code` from `peer`.
    ///
    /// Per (pair, communicator, episode) the protocol emits exactly one
    /// barrier frame in each direction — the dissemination offsets
    /// `2^k mod p` are pairwise distinct over the rounds — and TCP's
    /// per-stream FIFO plus the SPMD collective order make arrival
    /// order match episode order. Codes are strictly increasing per
    /// (link, communicator), so a frame with a *smaller* code than
    /// expected can only be an injected duplicate of an already-consumed
    /// signal: it is discarded as stale. A *larger* code means this PE
    /// missed a signal for good — a protocol error.
    pub(crate) fn recv_barrier(
        &self,
        peer: usize,
        comm: u64,
        code: u64,
    ) -> Result<u64, TransportError> {
        let fx = self.faults.as_deref();
        let deadline = Instant::now() + self.timeout;
        let probe_every = ping_interval(self.timeout);
        let mut next_probe = Instant::now() + probe_every;
        loop {
            {
                let mut link = self.link(peer).lock();
                link.pump(peer, fx)?;
                let pending = link.pending.entry(comm).or_default();
                while let Some(&(got, bits)) = pending.barrier.front() {
                    if got < code {
                        pending.barrier.pop_front(); // duplicate of a consumed signal
                        continue;
                    }
                    if got > code {
                        return Err(TransportError::Protocol(format!(
                            "barrier signal out of order from PE {peer}: \
                             expected code {code:#x}, found {got:#x}"
                        )));
                    }
                    pending.barrier.pop_front();
                    return Ok(bits);
                }
                if link.closed {
                    return Err(TransportError::PeerClosed {
                        peer,
                        mid_frame: !link.rd.is_empty(),
                    });
                }
            }
            if Instant::now() > deadline {
                return Err(TransportError::Timeout {
                    peer,
                    waited: self.timeout,
                });
            }
            if Instant::now() >= next_probe {
                self.send_ping(peer)?;
                next_probe = Instant::now() + probe_every;
            }
            let wake = deadline.min(next_probe);
            let ready = self.wait_links(None, wake.saturating_duration_since(Instant::now()));
            self.pump_peers(&ready)?;
        }
    }
}

/// Connect to `addr`, retrying refusals until `deadline` — the peer may
/// simply not have bound its listener yet.
fn connect_retry(
    addr: SocketAddr,
    peer: usize,
    deadline: Instant,
) -> Result<TcpStream, TransportError> {
    loop {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() {
            return Err(TransportError::Timeout {
                peer,
                waited: Duration::ZERO,
            });
        }
        match TcpStream::connect_timeout(&addr, left) {
            Ok(s) => return Ok(s),
            Err(e)
                if matches!(
                    e.kind(),
                    ErrorKind::ConnectionRefused
                        | ErrorKind::ConnectionReset
                        | ErrorKind::TimedOut
                        | ErrorKind::AddrNotAvailable
                ) =>
            {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) => return Err(io_error(peer, &e)),
        }
    }
}

/// Blocking read of exactly one header-only hello frame, bounded by
/// `deadline` via the stream's read timeout.
fn read_hello_blocking(
    stream: &TcpStream,
    peer: usize,
    deadline: Instant,
) -> Result<FrameHeader, TransportError> {
    set_deadline(stream, peer, deadline)?;
    let mut buf = [0u8; FRAME_HEADER_LEN];
    (&mut &*stream)
        .read_exact(&mut buf)
        .map_err(|e| match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => TransportError::Timeout {
                peer,
                waited: Duration::ZERO,
            },
            _ => io_error(peer, &e),
        })?;
    let h = FrameHeader::parse(&buf)
        .map_err(|e| TransportError::Protocol(format!("hello frame: {e}")))?;
    if h.channel != CH_HELLO {
        return Err(TransportError::Protocol(format!(
            "expected a hello frame, got channel {}",
            h.channel
        )));
    }
    Ok(h)
}

fn set_deadline(stream: &TcpStream, peer: usize, deadline: Instant) -> Result<(), TransportError> {
    let left = deadline.saturating_duration_since(Instant::now());
    if left.is_zero() {
        return Err(TransportError::Timeout {
            peer,
            waited: Duration::ZERO,
        });
    }
    stream
        .set_nonblocking(false)
        .and_then(|()| stream.set_read_timeout(Some(left)))
        .map_err(|e| io_error(peer, &e))
}

// ---------------------------------------------------------------------
// Launcher rendezvous
// ---------------------------------------------------------------------

/// Blocking read of one whole frame (header + payload) with the
/// deadline applied — rendezvous streams are blocking and short-lived.
fn read_frame_blocking(
    stream: &TcpStream,
    peer: usize,
    deadline: Instant,
) -> Result<(FrameHeader, Vec<u8>), TransportError> {
    set_deadline(stream, peer, deadline)?;
    let mut head = [0u8; FRAME_HEADER_LEN];
    let mut s = stream;
    s.read_exact(&mut head).map_err(|e| io_error(peer, &e))?;
    let h = FrameHeader::parse(&head)
        .map_err(|e| TransportError::Protocol(format!("rendezvous frame: {e}")))?;
    if h.len > MAX_FRAME_PAYLOAD {
        return Err(TransportError::Protocol(format!(
            "oversized rendezvous frame: {} bytes",
            h.len
        )));
    }
    let mut payload = vec![0u8; h.len as usize];
    s.read_exact(&mut payload).map_err(|e| io_error(peer, &e))?;
    Ok((h, payload))
}

fn write_data_frame(
    stream: &TcpStream,
    peer: usize,
    seq: u64,
    value: &impl Wire,
) -> Result<(), TransportError> {
    let payload = wire::encode(value);
    let mut frame = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    FrameHeader {
        channel: CH_DATA,
        comm: RENDEZVOUS_COMM,
        a: seq,
        b: 0,
        len: payload.len() as u32,
        sum: 0,
    }
    .write(&mut frame);
    frame.extend_from_slice(&payload);
    (&mut &*stream)
        .write_all(&frame)
        .map_err(|e| io_error(peer, &e))
}

/// Serve the launcher side of the rank-assignment handshake: accept `p`
/// workers on `listener`, assign each a rank (honouring claimed ranks,
/// filling the rest in arrival order), and broadcast the address table.
/// Returns the table, rank-indexed.
///
/// `abort` is polled while waiting; returning `Some(reason)` fails the
/// rendezvous immediately (the launcher passes child-death detection
/// through it, so one dead worker cannot stall the others to the full
/// timeout). A rendezvous that times out half-assembled reports the
/// claimed ranks that did arrive and the ranks still missing
/// ([`TransportError::MeshIncomplete`]) — the operator's cue which
/// worker to go look at.
pub fn serve_rendezvous(
    listener: &TcpListener,
    p: usize,
    timeout: Duration,
    mut abort: impl FnMut() -> Option<String>,
) -> Result<Vec<SocketAddr>, TransportError> {
    assert!(p > 0);
    let deadline = Instant::now() + timeout;
    listener
        .set_nonblocking(true)
        .map_err(|e| TransportError::Io(format!("rendezvous listener: {e}")))?;
    // (stream, claimed rank or MAX, advertised address)
    let mut arrivals: Vec<(TcpStream, u64, String)> = Vec::with_capacity(p);
    while arrivals.len() < p {
        if let Some(reason) = abort() {
            return Err(TransportError::Protocol(format!(
                "rendezvous aborted: {reason}"
            )));
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let hello = read_hello_blocking(&stream, usize::MAX, deadline)?;
                if hello.b != HELLO_MAGIC {
                    return Err(TransportError::Protocol(
                        "rendezvous hello with wrong magic".to_string(),
                    ));
                }
                let (h, payload) = read_frame_blocking(&stream, usize::MAX, deadline)?;
                if h.comm != RENDEZVOUS_COMM || h.a != 0 {
                    return Err(TransportError::Protocol(
                        "rendezvous address frame out of order".to_string(),
                    ));
                }
                let addr: String = wire::decode(&payload)
                    .map_err(|e| TransportError::Protocol(format!("rendezvous address: {e}")))?;
                arrivals.push((stream, hello.a, addr));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                if Instant::now() > deadline {
                    let mut joined: Vec<usize> = arrivals
                        .iter()
                        .filter(|(_, claimed, _)| *claimed != u64::MAX)
                        .map(|(_, claimed, _)| *claimed as usize)
                        .collect();
                    joined.sort_unstable();
                    let missing: Vec<usize> = (0..p).filter(|r| !joined.contains(r)).collect();
                    return Err(TransportError::MeshIncomplete {
                        joined,
                        missing,
                        waited: timeout,
                    });
                }
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => return Err(TransportError::Io(format!("rendezvous accept: {e}"))),
        }
    }

    // Rank assignment: claimed ranks are honoured, the unclaimed fill
    // the remaining slots in arrival order.
    let mut ranks: Vec<Option<usize>> = vec![None; p];
    let mut slots: Vec<Option<usize>> = vec![None; p]; // rank -> arrival
    for (i, (_, claimed, _)) in arrivals.iter().enumerate() {
        if *claimed == u64::MAX {
            continue;
        }
        let r = *claimed as usize;
        if r >= p {
            return Err(TransportError::Protocol(format!(
                "worker claimed rank {r} of a {p}-PE machine"
            )));
        }
        if slots[r].is_some() {
            return Err(TransportError::Protocol(format!(
                "two workers claimed rank {r}"
            )));
        }
        slots[r] = Some(i);
        ranks[i] = Some(r);
    }
    let mut next_free = 0usize;
    for (i, rank) in ranks.iter_mut().enumerate() {
        if rank.is_none() {
            while slots[next_free].is_some() {
                next_free += 1;
            }
            slots[next_free] = Some(i);
            *rank = Some(next_free);
        }
    }

    let mut table: Vec<SocketAddr> = Vec::with_capacity(p);
    for slot in &slots {
        let i = slot.expect("every rank assigned");
        let addr = arrivals[i].2.parse().map_err(|_| {
            TransportError::Protocol(format!("worker advertised bad address {:?}", arrivals[i].2))
        })?;
        table.push(addr);
    }

    let strings: Vec<String> = table.iter().map(|a| a.to_string()).collect();
    for (i, (stream, _, _)) in arrivals.iter().enumerate() {
        let rank = ranks[i].expect("every arrival ranked") as u64;
        write_data_frame(stream, usize::MAX, 1, &(rank, strings.clone()))?;
    }
    Ok(table)
}

/// Worker side of the rendezvous: bind an ephemeral listener, report it
/// to the launcher at `rendezvous` (claiming `preferred` when given),
/// and receive the assigned rank plus the full address table. The
/// returned listener is the one peers will dial for the mesh.
pub(crate) fn rendezvous_client(
    rendezvous: &str,
    preferred: Option<usize>,
    timeout: Duration,
) -> Result<(usize, TcpListener, Vec<SocketAddr>), TransportError> {
    let deadline = Instant::now() + timeout;
    let host: SocketAddr = rendezvous
        .parse()
        .map_err(|_| TransportError::Protocol(format!("bad rendezvous address {rendezvous:?}")))?;
    // Bind on the same interface the launcher is reachable on.
    let listener = TcpListener::bind((host.ip(), 0))
        .map_err(|e| TransportError::Io(format!("worker listener: {e}")))?;
    let my_addr = listener
        .local_addr()
        .map_err(|e| TransportError::Io(format!("worker listener: {e}")))?;

    let mut stream = connect_retry(host, usize::MAX, deadline)?;
    let mut hello = Vec::with_capacity(FRAME_HEADER_LEN);
    FrameHeader {
        channel: CH_HELLO,
        comm: 0,
        a: preferred.map_or(u64::MAX, |r| r as u64),
        b: HELLO_MAGIC,
        len: 0,
        sum: 0,
    }
    .write(&mut hello);
    stream
        .write_all(&hello)
        .map_err(|e| io_error(usize::MAX, &e))?;
    write_data_frame(&stream, usize::MAX, 0, &my_addr.to_string())?;

    let (h, payload) = read_frame_blocking(&stream, usize::MAX, deadline)?;
    if h.comm != RENDEZVOUS_COMM || h.a != 1 {
        return Err(TransportError::Protocol(
            "rendezvous reply out of order".to_string(),
        ));
    }
    let (rank, strings): (u64, Vec<String>) = wire::decode(&payload)
        .map_err(|e| TransportError::Protocol(format!("rendezvous reply: {e}")))?;
    let mut table = Vec::with_capacity(strings.len());
    for s in &strings {
        table.push(s.parse().map_err(|_| {
            TransportError::Protocol(format!("rendezvous table entry {s:?} unparsable"))
        })?);
    }
    Ok((rank as usize, listener, table))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, LethalFault};

    fn mesh(p: usize, timeout: Duration, plan: Option<FaultPlan>) -> Vec<SocketFabric> {
        let listeners: Vec<TcpListener> = (0..p)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let addrs = Arc::new(addrs);
        let faults = plan.map(|pl| Arc::new(FaultyTransport::new(pl)));
        let mut handles = Vec::new();
        for (rank, listener) in listeners.into_iter().enumerate() {
            let addrs = Arc::clone(&addrs);
            let faults = faults.clone();
            handles.push(std::thread::spawn(move || {
                SocketFabric::connect_mesh(rank, listener, &addrs, timeout, timeout, faults)
                    .unwrap()
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    fn loopback_pair(p: usize, timeout: Duration) -> Vec<SocketFabric> {
        mesh(p, timeout, None)
    }

    #[test]
    fn data_frames_roundtrip_across_a_real_socket_pair() {
        let fabs = loopback_pair(2, Duration::from_secs(5));
        let payload = vec![1u8, 2, 3, 4];
        fabs[0].send_data(1, 0, 1, 42, &payload).unwrap();
        let got = fabs[1].recv_data(0, 0, 1, 42, "test").unwrap();
        assert_eq!(got, payload);
    }

    #[test]
    fn stale_frames_are_discarded_like_the_byte_hub() {
        let fabs = loopback_pair(2, Duration::from_secs(5));
        fabs[0].send_data(1, 0, 1, 7, b"old").unwrap();
        fabs[0].send_data(1, 0, 3, 7, b"new").unwrap();
        let got = fabs[1].recv_data(0, 0, 3, 7, "test").unwrap();
        assert_eq!(got, b"new");
    }

    #[test]
    fn future_frame_is_a_protocol_error() {
        let fabs = loopback_pair(2, Duration::from_secs(5));
        fabs[0].send_data(1, 0, 5, 7, b"x").unwrap();
        let err = fabs[1].recv_data(0, 0, 2, 7, "test").unwrap_err();
        assert!(
            matches!(err, TransportError::Protocol(ref m) if m.contains("skipped a send")),
            "{err:?}"
        );
    }

    #[test]
    fn tag_mismatch_is_a_protocol_error() {
        let fabs = loopback_pair(2, Duration::from_secs(5));
        fabs[0].send_data(1, 0, 1, 7, b"x").unwrap();
        let err = fabs[1].recv_data(0, 0, 1, 8, "test").unwrap_err();
        assert!(matches!(err, TransportError::Protocol(_)), "{err:?}");
    }

    #[test]
    fn peer_drop_surfaces_as_peer_closed() {
        let mut fabs = loopback_pair(2, Duration::from_secs(5));
        drop(fabs.remove(0));
        let err = fabs[0].recv_data(0, 0, 1, 7, "test").unwrap_err();
        assert!(
            matches!(err, TransportError::PeerClosed { peer: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn missing_frame_times_out_with_bound() {
        let timeout = Duration::from_millis(150);
        let fabs = loopback_pair(2, timeout);
        let t0 = Instant::now();
        let err = fabs[1].recv_data(0, 0, 1, 7, "test").unwrap_err();
        assert!(
            matches!(err, TransportError::Timeout { peer: 0, .. }),
            "{err:?}"
        );
        assert!(t0.elapsed() < timeout * 20, "timeout must be bounded");
    }

    #[test]
    fn oversized_frame_header_is_rejected() {
        let fabs = loopback_pair(2, Duration::from_secs(5));
        // Hand-craft a header announcing an absurd payload.
        let mut frame = Vec::new();
        FrameHeader {
            channel: CH_DATA,
            comm: 0,
            a: 1,
            b: 7,
            len: MAX_FRAME_PAYLOAD + 1,
            sum: 0,
        }
        .write(&mut frame);
        {
            let mut link = fabs[0].link(1).lock();
            link.stream.write_all(&frame).unwrap();
        }
        let err = fabs[1].recv_data(0, 0, 1, 7, "test").unwrap_err();
        assert!(
            matches!(err, TransportError::Protocol(ref m) if m.contains("oversized")),
            "{err:?}"
        );
    }

    #[test]
    fn truncated_frame_surfaces_as_mid_frame_close() {
        let fabs = loopback_pair(2, Duration::from_secs(5));
        // A valid header promising 100 bytes, then only 3, then EOF.
        let mut frame = Vec::new();
        FrameHeader {
            channel: CH_DATA,
            comm: 0,
            a: 1,
            b: 7,
            len: 100,
            sum: 0,
        }
        .write(&mut frame);
        frame.extend_from_slice(b"abc");
        {
            let link = fabs[0].link(1).lock();
            (&mut &link.stream).write_all(&frame).unwrap();
            let _ = link.stream.shutdown(std::net::Shutdown::Write);
        }
        let err = fabs[1].recv_data(0, 0, 1, 7, "test").unwrap_err();
        assert!(
            matches!(
                err,
                TransportError::PeerClosed {
                    peer: 0,
                    mid_frame: true
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn pings_are_answered_by_the_peer_pump() {
        let fabs = loopback_pair(2, Duration::from_secs(5));
        fabs[0].send_ping(1).unwrap();
        // Give the bytes a moment, then let PE 1's pump answer and PE
        // 0's pump collect the pong.
        let t0 = Instant::now();
        loop {
            fabs[1].pump_all().unwrap();
            fabs[0].pump_all().unwrap();
            if fabs[0].link(1).lock().pongs > 0 {
                break;
            }
            assert!(t0.elapsed() < Duration::from_secs(5), "pong never arrived");
            std::thread::sleep(Duration::from_millis(1));
        }
        // The probe traffic is invisible to the data plane.
        fabs[0].send_data(1, 0, 1, 42, b"after-ping").unwrap();
        let got = fabs[1].recv_data(0, 0, 1, 42, "test").unwrap();
        assert_eq!(got, b"after-ping");
    }

    #[test]
    fn transient_faults_are_absorbed_bit_identically() {
        let plan = FaultPlan::seeded(23)
            .with_delays(0.3, 60)
            .with_short_writes(0.5)
            .with_short_reads(0.5)
            .with_duplicates(0.4)
            .with_retries(0.4);
        let fabs = mesh(2, Duration::from_secs(10), Some(plan));
        let payload: Vec<u8> = (0..997u32).flat_map(|x| x.to_le_bytes()).collect();
        for round in 0..24u64 {
            fabs[0].send_data(1, 0, round, 7, &payload).unwrap();
            fabs[1].send_data(0, 0, round, 7, &payload).unwrap();
            assert_eq!(fabs[1].recv_data(0, 0, round, 7, "test").unwrap(), payload);
            assert_eq!(fabs[0].recv_data(1, 0, round, 7, "test").unwrap(), payload);
        }
    }

    #[test]
    fn duplicate_barrier_signals_are_discarded_as_stale() {
        let fabs = loopback_pair(2, Duration::from_secs(5));
        let code1 = 1u64 << 8; // round 1, phase 0
        let code2 = 2u64 << 8; // round 2, phase 0
        fabs[0].send_barrier(1, 0, code1, 10).unwrap();
        fabs[0].send_barrier(1, 0, code1, 10).unwrap(); // injected twin
        fabs[0].send_barrier(1, 0, code2, 20).unwrap();
        assert_eq!(fabs[1].recv_barrier(0, 0, code1).unwrap(), 10);
        assert_eq!(
            fabs[1].recv_barrier(0, 0, code2).unwrap(),
            20,
            "twin absorbed"
        );
    }

    #[test]
    fn injected_bitflip_surfaces_as_checksum_error() {
        let plan = FaultPlan::seeded(5).with_lethal(LethalFault {
            rank: 0,
            kind: LethalKind::BitFlip,
            at_seq: 0,
        });
        let fabs = mesh(2, Duration::from_secs(5), Some(plan));
        fabs[0]
            .send_data(1, 0, 0, 7, b"payload-to-corrupt")
            .unwrap();
        let err = fabs[1].recv_data(0, 0, 0, 7, "test").unwrap_err();
        assert!(
            matches!(err, TransportError::Protocol(ref m) if m.contains("checksum")),
            "{err:?}"
        );
    }

    #[test]
    fn injected_truncate_surfaces_as_mid_frame_close() {
        let plan = FaultPlan::seeded(5).with_lethal(LethalFault {
            rank: 0,
            kind: LethalKind::Truncate,
            at_seq: 0,
        });
        let fabs = mesh(2, Duration::from_secs(5), Some(plan));
        let err = fabs[0].send_data(1, 0, 0, 7, &[9u8; 64]).unwrap_err();
        assert!(
            matches!(err, TransportError::Io(ref m) if m.contains("injected")),
            "{err:?}"
        );
        let err = fabs[1].recv_data(0, 0, 0, 7, "test").unwrap_err();
        assert!(
            matches!(
                err,
                TransportError::PeerClosed {
                    peer: 0,
                    mid_frame: true
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn mesh_timeout_reports_joined_and_missing_ranks() {
        // Three slots in the table, but rank 2 never shows up.
        let listeners: Vec<TcpListener> = (0..3)
            .map(|_| TcpListener::bind("127.0.0.1:0").unwrap())
            .collect();
        let addrs: Vec<SocketAddr> = listeners.iter().map(|l| l.local_addr().unwrap()).collect();
        let addrs = Arc::new(addrs);
        let timeout = Duration::from_millis(400);
        let mut handles = Vec::new();
        for (rank, listener) in listeners.into_iter().enumerate().take(2) {
            let addrs = Arc::clone(&addrs);
            handles.push(std::thread::spawn(move || {
                SocketFabric::connect_mesh(rank, listener, &addrs, timeout, timeout, None)
            }));
        }
        for h in handles {
            let err = h.join().unwrap().unwrap_err();
            match err {
                TransportError::MeshIncomplete {
                    joined, missing, ..
                } => {
                    assert_eq!(joined, vec![0, 1]);
                    assert_eq!(missing, vec![2]);
                }
                other => panic!("expected MeshIncomplete, got {other:?}"),
            }
        }
    }

    #[test]
    fn rendezvous_assigns_claimed_and_free_ranks() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let timeout = Duration::from_secs(5);
        let mut joins = Vec::new();
        for preferred in [Some(2usize), None, Some(0)] {
            let addr = addr.clone();
            joins.push(std::thread::spawn(move || {
                rendezvous_client(&addr, preferred, timeout).unwrap()
            }));
        }
        let table = serve_rendezvous(&listener, 3, timeout, || None).unwrap();
        assert_eq!(table.len(), 3);
        let mut got: Vec<(Option<usize>, usize)> = Vec::new();
        for (pref, j) in [Some(2usize), None, Some(0)].into_iter().zip(joins) {
            let (rank, _, t) = j.join().unwrap();
            assert_eq!(t, table);
            got.push((pref, rank));
        }
        for (pref, rank) in &got {
            if let Some(p) = pref {
                assert_eq!(rank, p, "claimed ranks are honoured");
            }
        }
        let mut ranks: Vec<usize> = got.iter().map(|(_, r)| *r).collect();
        ranks.sort_unstable();
        assert_eq!(ranks, vec![0, 1, 2]);
    }

    #[test]
    fn rendezvous_rejects_duplicate_claims() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let timeout = Duration::from_secs(5);
        let joins: Vec<_> = (0..2)
            .map(|_| {
                let addr = addr.clone();
                std::thread::spawn(move || rendezvous_client(&addr, Some(1), timeout))
            })
            .collect();
        let err = serve_rendezvous(&listener, 2, timeout, || None).unwrap_err();
        assert!(
            matches!(err, TransportError::Protocol(ref m) if m.contains("claimed rank")),
            "{err:?}"
        );
        for j in joins {
            let _ = j.join(); // clients error out or time out; either is fine
        }
    }

    #[test]
    fn rendezvous_timeout_names_the_missing_ranks() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let timeout = Duration::from_millis(300);
        // One worker of a claimed pair shows up; the other never does.
        let join = {
            let addr = addr.clone();
            std::thread::spawn(move || rendezvous_client(&addr, Some(0), Duration::from_secs(2)))
        };
        let err = serve_rendezvous(&listener, 2, timeout, || None).unwrap_err();
        match err {
            TransportError::MeshIncomplete {
                joined, missing, ..
            } => {
                assert_eq!(joined, vec![0]);
                assert_eq!(missing, vec![1]);
            }
            other => panic!("expected MeshIncomplete, got {other:?}"),
        }
        drop(listener);
        let _ = join.join();
    }
}
