//! The machine: spawns one thread per PE and runs an SPMD rank program.

use crate::alltoall::AlltoallKind;
use crate::comm::{Comm, CommShared};
use crate::cost::{Clock, CostModel, PeStats};
use crate::transport::TransportKind;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A rejected machine configuration. Surfaced by
/// [`MachineConfig::validate`] / [`Machine::try_run`] so front-ends (the
/// `MstService`, the runner binaries) can refuse bad configs gracefully
/// instead of poisoning a PE thread mid-run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// `pes == 0`: a machine needs at least one processing element.
    NoPes,
    /// `KAMSTA_TRANSPORT` was set to something other than
    /// `cells`/`bytes`.
    UnknownTransport(String),
    /// A front-end with state sharded over a fixed PE count was handed a
    /// config for a different count.
    PeCountMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::NoPes => write!(f, "machine needs at least one PE"),
            MachineError::UnknownTransport(v) => {
                write!(
                    f,
                    "unknown KAMSTA_TRANSPORT value {v:?} (expected \"cells\" or \"bytes\")"
                )
            }
            MachineError::PeCountMismatch { expected, got } => {
                write!(f, "PE count is fixed at {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for MachineError {}

/// Configuration of a simulated distributed machine run.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of processing elements (MPI ranks in the paper).
    pub pes: usize,
    /// Machine cost parameters, including hybrid threads per PE.
    pub cost: CostModel,
    /// All-to-all strategy (Sec. VI-A); `Auto` applies the 500-byte rule.
    pub alltoall: AlltoallKind,
    /// Threshold for the automatic grid/direct decision, in average bytes
    /// per message (paper: 500 on SuperMUC-NG).
    pub grid_threshold_bytes: usize,
    /// Stack size per PE thread.
    pub stack_size: usize,
    /// Transport backend; `None` resolves `KAMSTA_TRANSPORT` at run time
    /// (default: [`TransportKind::Cells`]).
    pub transport: Option<TransportKind>,
}

impl MachineConfig {
    /// A machine with `pes` PEs and default cost parameters.
    pub fn new(pes: usize) -> Self {
        Self {
            pes,
            cost: CostModel::default(),
            alltoall: AlltoallKind::Auto,
            grid_threshold_bytes: 500,
            stack_size: 4 << 20,
            transport: None,
        }
    }

    /// Pin the transport backend, overriding `KAMSTA_TRANSPORT`.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = Some(transport);
        self
    }

    /// The transport this config resolves to (explicit choice, else the
    /// `KAMSTA_TRANSPORT` environment variable, else cells).
    pub fn resolved_transport(&self) -> Result<TransportKind, MachineError> {
        match self.transport {
            Some(k) => Ok(k),
            None => TransportKind::from_env(),
        }
    }

    /// Check the configuration, returning a typed error instead of
    /// panicking a PE thread later.
    pub fn validate(&self) -> Result<(), MachineError> {
        if self.pes == 0 {
            return Err(MachineError::NoPes);
        }
        self.resolved_transport().map(|_| ())
    }

    /// Set hybrid threads per PE (the paper's `-1` / `-8` variants).
    pub fn with_threads(mut self, t: usize) -> Self {
        self.cost.threads_per_pe = t.max(1);
        self
    }

    /// Override the all-to-all strategy.
    pub fn with_alltoall(mut self, kind: AlltoallKind) -> Self {
        self.alltoall = kind;
        self
    }

    /// Override the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        let t = self.cost.threads_per_pe;
        self.cost = cost;
        self.cost.threads_per_pe = t;
        self
    }

    /// Total simulated cores: `pes × threads_per_pe` (the paper scales
    /// inputs by cores, not ranks).
    pub fn cores(&self) -> usize {
        self.pes * self.cost.threads_per_pe
    }
}

/// Results of a machine run.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// Per-PE return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-PE cost statistics, indexed by rank.
    pub stats: Vec<PeStats>,
    /// BSP completion time: the maximum modeled clock over all PEs.
    pub modeled_time: f64,
    /// Real wall-clock time of the simulation (not the modeled machine).
    pub wall: Duration,
}

impl<R> RunOutput<R> {
    /// Total messages across PEs.
    pub fn total_messages(&self) -> u64 {
        self.stats.iter().map(|s| s.messages).sum()
    }

    /// Total bytes across PEs.
    pub fn total_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes).sum()
    }
}

/// The simulated distributed machine.
pub struct Machine;

impl Machine {
    /// Run `rank_fn` on `cfg.pes` PEs; blocks until all PEs return.
    ///
    /// `rank_fn` receives this PE's [`Comm`] for the world communicator.
    /// If any PE panics, the barrier is poisoned (unblocking peers) and the
    /// panic is propagated to the caller.
    pub fn run<F, R>(cfg: MachineConfig, rank_fn: F) -> RunOutput<R>
    where
        F: Fn(&Comm) -> R + Send + Sync,
        R: Send,
    {
        Self::try_run(cfg, rank_fn).unwrap_or_else(|e| panic!("invalid machine config: {e}"))
    }

    /// [`Machine::run`] with the configuration checked up front: a bad
    /// config (zero PEs, unknown `KAMSTA_TRANSPORT`) comes back as
    /// [`MachineError`] before any thread is spawned.
    pub fn try_run<F, R>(cfg: MachineConfig, rank_fn: F) -> Result<RunOutput<R>, MachineError>
    where
        F: Fn(&Comm) -> R + Send + Sync,
        R: Send,
    {
        cfg.validate()?;
        let transport = cfg.resolved_transport()?;
        let p = cfg.pes;
        let shared = Arc::new(CommShared::new(p, p, transport));
        let clocks: Vec<Arc<Clock>> = (0..p).map(|_| Arc::new(Clock::new())).collect();
        let start = Instant::now();

        let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
        std::thread::scope(|scope| {
            let rank_fn = &rank_fn;
            let shared_ref = &shared;
            let cfg_ref = &cfg;
            let handles: Vec<_> = results
                .iter_mut()
                .zip(clocks.iter())
                .enumerate()
                .map(|(rank, (result_slot, clock))| {
                    let clock = Arc::clone(clock);
                    std::thread::Builder::new()
                        .name(format!("pe-{rank}"))
                        .stack_size(cfg_ref.stack_size)
                        .spawn_scoped(scope, move || {
                            let comm = Comm::new(
                                rank,
                                p,
                                p,
                                Arc::clone(shared_ref),
                                clock,
                                cfg_ref.cost,
                                cfg_ref.alltoall,
                                cfg_ref.grid_threshold_bytes,
                            );
                            let out =
                                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                    rank_fn(&comm)
                                }));
                            match out {
                                Ok(r) => *result_slot = Some(r),
                                Err(payload) => {
                                    shared_ref.barrier.poison();
                                    std::panic::resume_unwind(payload);
                                }
                            }
                        })
                        .expect("failed to spawn PE thread")
                })
                .collect();
            // Scoped threads are joined on scope exit; join explicitly to
            // surface the *first* panic deterministically by rank order.
            let mut first_panic = None;
            for h in handles {
                if let Err(e) = h.join() {
                    first_panic.get_or_insert(e);
                }
            }
            if let Some(e) = first_panic {
                std::panic::resume_unwind(e);
            }
        });

        let wall = start.elapsed();
        let stats: Vec<PeStats> = clocks.iter().map(|c| c.stats()).collect();
        let modeled_time = stats.iter().map(|s| s.modeled_time).fold(0.0, f64::max);
        Ok(RunOutput {
            results: results
                .into_iter()
                .map(|r| r.expect("PE finished without result"))
                .collect(),
            stats,
            modeled_time,
            wall,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_by_rank() {
        let out = Machine::run(MachineConfig::new(5), |comm| comm.rank() * 10);
        assert_eq!(out.results, vec![0, 10, 20, 30, 40]);
        assert_eq!(out.stats.len(), 5);
    }

    #[test]
    fn cores_scales_with_threads() {
        let cfg = MachineConfig::new(8).with_threads(8);
        assert_eq!(cfg.cores(), 64);
        assert_eq!(cfg.cost.threads_per_pe, 8);
    }

    #[test]
    fn single_pe_machine_works() {
        let out = Machine::run(MachineConfig::new(1), |comm| {
            comm.barrier();
            comm.allreduce_sum(7)
        });
        assert_eq!(out.results, vec![7]);
    }

    #[test]
    fn pe_panic_propagates() {
        let res = std::panic::catch_unwind(|| {
            Machine::run(MachineConfig::new(4), |comm| {
                if comm.rank() == 2 {
                    panic!("pe 2 exploded");
                }
                // Peers block on a barrier; poisoning must release them.
                comm.barrier();
            })
        });
        assert!(res.is_err());
    }

    #[test]
    fn modeled_time_is_max_over_pes() {
        let out = Machine::run(MachineConfig::new(3), |comm| {
            comm.charge_local(1_000_000 * (comm.rank() as u64 + 1));
        });
        let g = CostModel::default().gamma;
        assert!((out.modeled_time - 3_000_000.0 * g).abs() < 1e-9);
    }
}
