//! The machine: runs an SPMD rank program on `p` PEs — as threads of
//! this process (cells, bytes, or a loopback socket mesh), or as one
//! rank of a multi-process socket machine ([`Machine::try_run_worker`],
//! driven by the `kamsta_launch` binary).
//!
//! All configuration validation and environment resolution lives in
//! **one** place, [`MachineConfig::resolve`]; every entry point funnels
//! through it, so there is exactly one code path that can reject a
//! config or read `KAMSTA_TRANSPORT` / `KAMSTA_SOCKET_TIMEOUT_MS`.

use crate::alltoall::AlltoallKind;
use crate::barrier::BarrierPoisoned;
use crate::comm::{Comm, CommShared};
use crate::cost::{Clock, CostModel, PeStats};
use crate::fault::{FaultPlan, FaultyTransport};
use crate::socket::{self, SocketFabric};
use crate::transport::{TransportError, TransportKind};
use parking_lot::Mutex;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A rejected machine configuration or a failed run. Surfaced by
/// [`MachineConfig::resolve`] / [`Machine::try_run`] so front-ends (the
/// `MstService`, the runner binaries) can refuse bad configs gracefully
/// instead of poisoning a PE thread mid-run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MachineError {
    /// `pes == 0`: a machine needs at least one processing element.
    NoPes,
    /// `KAMSTA_TRANSPORT` was set to something other than
    /// `cells`/`bytes`/`sockets`.
    UnknownTransport(String),
    /// A front-end with state sharded over a fixed PE count was handed a
    /// config for a different count.
    PeCountMismatch { expected: usize, got: usize },
    /// `KAMSTA_SOCKET_TIMEOUT_MS` / `KAMSTA_HANDSHAKE_TIMEOUT_MS` (or
    /// the corresponding builder) was zero or unparsable.
    InvalidTimeout(String),
    /// `KAMSTA_FAULTS` (or `with_faults`) did not parse as a fault plan.
    InvalidFaultPlan(String),
    /// The socket setup does not fit the run mode: endpoints for the
    /// wrong PE count, unparsable addresses, socket options on a
    /// non-socket transport, or a rendezvous config handed to the
    /// in-process runner.
    SocketConfig(String),
    /// A PE failed at run time with a typed transport error — a peer
    /// died, a deadline passed, or the frame protocol was violated.
    Transport { rank: usize, source: TransportError },
}

impl std::fmt::Display for MachineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MachineError::NoPes => write!(f, "machine needs at least one PE"),
            MachineError::UnknownTransport(v) => {
                write!(
                    f,
                    "unknown KAMSTA_TRANSPORT value {v:?} (expected \"cells\", \"bytes\" or \"sockets\")"
                )
            }
            MachineError::PeCountMismatch { expected, got } => {
                write!(f, "PE count is fixed at {expected}, got {got}")
            }
            MachineError::InvalidTimeout(v) => {
                write!(
                    f,
                    "invalid socket io timeout {v:?} (want positive milliseconds)"
                )
            }
            MachineError::InvalidFaultPlan(m) => {
                write!(f, "invalid KAMSTA_FAULTS fault plan: {m}")
            }
            MachineError::SocketConfig(m) => write!(f, "socket configuration error: {m}"),
            MachineError::Transport { rank, source } => {
                write!(f, "transport failure on PE {rank}: {source}")
            }
        }
    }
}

impl std::error::Error for MachineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MachineError::Transport { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// How a sockets-transport machine finds its peers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SocketSetupCfg {
    /// A static rank-indexed address table: entry `r` is where rank `r`
    /// listens. Workers know their rank a priori.
    Endpoints(Vec<String>),
    /// A rendezvous server (the launcher) that assigns ranks and
    /// broadcasts the address table.
    Rendezvous(String),
}

/// Configuration of a distributed machine run.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of processing elements (MPI ranks in the paper).
    pub pes: usize,
    /// Machine cost parameters, including hybrid threads per PE.
    pub cost: CostModel,
    /// All-to-all strategy (Sec. VI-A); `Auto` applies the 500-byte rule.
    pub alltoall: AlltoallKind,
    /// Threshold for the automatic grid/direct decision, in average bytes
    /// per message (paper: 500 on SuperMUC-NG).
    pub grid_threshold_bytes: usize,
    /// Stack size per PE thread.
    pub stack_size: usize,
    /// Transport backend; `None` resolves `KAMSTA_TRANSPORT` at run time
    /// (default: [`TransportKind::Cells`]).
    pub transport: Option<TransportKind>,
    /// Socket connect/send/receive deadline; `None` resolves
    /// `KAMSTA_SOCKET_TIMEOUT_MS` at run time (default: 30 s).
    pub io_timeout: Option<Duration>,
    /// Mesh/rendezvous formation deadline; `None` resolves
    /// `KAMSTA_HANDSHAKE_TIMEOUT_MS` (default: the io timeout). Kept
    /// separate so slow staggered start-up can be tolerated without
    /// inflating the steady-state hang bound.
    pub handshake_timeout: Option<Duration>,
    /// Deterministic fault-injection plan; `None` resolves
    /// `KAMSTA_FAULTS` at run time (default: no faults armed).
    pub faults: Option<FaultPlan>,
    /// Peer discovery for the sockets transport; `None` means an
    /// in-process loopback mesh on ephemeral ports.
    pub socket_setup: Option<SocketSetupCfg>,
}

/// A [`MachineConfig`] after the single validation/env-resolution pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ResolvedConfig {
    /// The transport the run will use.
    pub transport: TransportKind,
    /// The socket io deadline in effect (meaningful under sockets).
    pub io_timeout: Duration,
    /// The mesh-formation deadline in effect (meaningful under sockets).
    pub handshake_timeout: Duration,
    /// The fault plan armed on the run's transport (bytes and sockets;
    /// the cells blackboard sits above the transport boundary).
    pub faults: Option<FaultPlan>,
    /// Socket peer discovery — `Some` iff `transport` is sockets.
    pub sockets: Option<SocketSetup>,
}

/// Resolved socket peer discovery.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SocketSetup {
    /// In-process mesh over ephemeral loopback ports.
    Loopback,
    /// Static rank-indexed address table.
    Endpoints(Vec<SocketAddr>),
    /// Rendezvous server assigning ranks.
    Rendezvous { addr: SocketAddr },
}

impl MachineConfig {
    /// A machine with `pes` PEs and default cost parameters.
    ///
    /// Hybrid threads per PE default to `KAMSTA_THREADS` when set (the
    /// CI hybrid leg forces every machine in the suite through the
    /// intra-PE pool this way); [`MachineConfig::with_threads`]
    /// overrides it per machine.
    pub fn new(pes: usize) -> Self {
        let mut cost = CostModel::default();
        if let Some(t) = std::env::var("KAMSTA_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            cost.threads_per_pe = t.max(1);
        }
        Self {
            pes,
            cost,
            alltoall: AlltoallKind::Auto,
            grid_threshold_bytes: 500,
            stack_size: 4 << 20,
            transport: None,
            io_timeout: None,
            handshake_timeout: None,
            faults: None,
            socket_setup: None,
        }
    }

    /// Pin the transport backend, overriding `KAMSTA_TRANSPORT`.
    pub fn with_transport(mut self, transport: TransportKind) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Run over sockets against a static rank-indexed address table
    /// (entry `r` is where rank `r` listens). Implies
    /// [`TransportKind::Sockets`].
    pub fn with_endpoints<S: Into<String>>(mut self, addrs: impl IntoIterator<Item = S>) -> Self {
        self.transport = Some(TransportKind::Sockets);
        self.socket_setup = Some(SocketSetupCfg::Endpoints(
            addrs.into_iter().map(Into::into).collect(),
        ));
        self
    }

    /// Run over sockets, discovering peers through a rendezvous server
    /// (the launcher). Implies [`TransportKind::Sockets`].
    pub fn with_rendezvous(mut self, addr: impl Into<String>) -> Self {
        self.transport = Some(TransportKind::Sockets);
        self.socket_setup = Some(SocketSetupCfg::Rendezvous(addr.into()));
        self
    }

    /// Bound every socket connect/send/receive by `timeout`, overriding
    /// `KAMSTA_SOCKET_TIMEOUT_MS`.
    pub fn with_io_timeout(mut self, timeout: Duration) -> Self {
        self.io_timeout = Some(timeout);
        self
    }

    /// Bound mesh/rendezvous formation by `timeout`, overriding
    /// `KAMSTA_HANDSHAKE_TIMEOUT_MS` (default: the io timeout).
    pub fn with_handshake_timeout(mut self, timeout: Duration) -> Self {
        self.handshake_timeout = Some(timeout);
        self
    }

    /// Arm a deterministic fault-injection plan on the run's transport,
    /// overriding `KAMSTA_FAULTS`. See [`FaultPlan`].
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// **The** validation and environment-resolution pass: every entry
    /// point (`try_run`, `try_run_worker`, the service builder) funnels
    /// through here, and nothing else reads the `KAMSTA_TRANSPORT` /
    /// `KAMSTA_SOCKET_TIMEOUT_MS` variables or rejects a config shape.
    pub fn resolve(&self) -> Result<ResolvedConfig, MachineError> {
        if self.pes == 0 {
            return Err(MachineError::NoPes);
        }
        let transport = match self.transport {
            Some(k) => k,
            None => TransportKind::from_env()?,
        };
        let timeout_of = |field: Option<Duration>,
                          var: &str,
                          default: Duration|
         -> Result<Duration, MachineError> {
            match field {
                Some(d) if !d.is_zero() => Ok(d),
                Some(d) => Err(MachineError::InvalidTimeout(format!("{d:?}"))),
                None => match std::env::var(var) {
                    Err(_) => Ok(default),
                    Ok(v) => match v.parse::<u64>() {
                        Ok(ms) if ms > 0 => Ok(Duration::from_millis(ms)),
                        _ => Err(MachineError::InvalidTimeout(v)),
                    },
                },
            }
        };
        let io_timeout = timeout_of(
            self.io_timeout,
            "KAMSTA_SOCKET_TIMEOUT_MS",
            Duration::from_secs(30),
        )?;
        let handshake_timeout = timeout_of(
            self.handshake_timeout,
            "KAMSTA_HANDSHAKE_TIMEOUT_MS",
            io_timeout,
        )?;
        let faults = match &self.faults {
            Some(plan) => Some(plan.clone()),
            None => match std::env::var("KAMSTA_FAULTS") {
                Err(_) => None,
                Ok(v) => Some(FaultPlan::parse(&v).map_err(MachineError::InvalidFaultPlan)?),
            },
        };
        let sockets = match (transport, &self.socket_setup) {
            (TransportKind::Sockets, None) => Some(SocketSetup::Loopback),
            (TransportKind::Sockets, Some(SocketSetupCfg::Endpoints(addrs))) => {
                if addrs.len() != self.pes {
                    return Err(MachineError::SocketConfig(format!(
                        "{} endpoints for a {}-PE machine",
                        addrs.len(),
                        self.pes
                    )));
                }
                let mut parsed = Vec::with_capacity(addrs.len());
                for a in addrs {
                    parsed.push(a.parse().map_err(|_| {
                        MachineError::SocketConfig(format!("unparsable endpoint {a:?}"))
                    })?);
                }
                Some(SocketSetup::Endpoints(parsed))
            }
            (TransportKind::Sockets, Some(SocketSetupCfg::Rendezvous(addr))) => {
                let addr = addr.parse().map_err(|_| {
                    MachineError::SocketConfig(format!("unparsable rendezvous address {addr:?}"))
                })?;
                Some(SocketSetup::Rendezvous { addr })
            }
            (_, None) => None,
            (_, Some(_)) => {
                return Err(MachineError::SocketConfig(format!(
                    "socket endpoints/rendezvous configured, but the transport is {transport:?}"
                )))
            }
        };
        Ok(ResolvedConfig {
            transport,
            io_timeout,
            handshake_timeout,
            faults,
            sockets,
        })
    }

    /// The transport this config resolves to. Shim over
    /// [`MachineConfig::resolve`].
    pub fn resolved_transport(&self) -> Result<TransportKind, MachineError> {
        self.resolve().map(|r| r.transport)
    }

    /// Check the configuration. Shim over [`MachineConfig::resolve`].
    pub fn validate(&self) -> Result<(), MachineError> {
        self.resolve().map(|_| ())
    }

    /// Set hybrid threads per PE (the paper's `-1` / `-8` variants).
    pub fn with_threads(mut self, t: usize) -> Self {
        self.cost.threads_per_pe = t.max(1);
        self
    }

    /// Override the all-to-all strategy.
    pub fn with_alltoall(mut self, kind: AlltoallKind) -> Self {
        self.alltoall = kind;
        self
    }

    /// Override the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        let t = self.cost.threads_per_pe;
        self.cost = cost;
        self.cost.threads_per_pe = t;
        self
    }

    /// Total simulated cores: `pes × threads_per_pe` (the paper scales
    /// inputs by cores, not ranks).
    pub fn cores(&self) -> usize {
        self.pes * self.cost.threads_per_pe
    }
}

/// Results of a machine run.
#[derive(Debug)]
pub struct RunOutput<R> {
    /// Per-PE return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-PE cost statistics, indexed by rank.
    pub stats: Vec<PeStats>,
    /// BSP completion time: the maximum modeled clock over all PEs.
    pub modeled_time: f64,
    /// Real wall-clock time of the simulation (not the modeled machine).
    pub wall: Duration,
}

impl<R> RunOutput<R> {
    /// Total messages across PEs.
    pub fn total_messages(&self) -> u64 {
        self.stats.iter().map(|s| s.messages).sum()
    }

    /// Total bytes across PEs.
    pub fn total_bytes(&self) -> u64 {
        self.stats.iter().map(|s| s.bytes).sum()
    }
}

/// One rank's view of a multi-process machine run
/// ([`Machine::try_run_worker`]).
#[derive(Debug)]
pub struct WorkerRun<R> {
    /// The rank this process ran as (assigned by the rendezvous when the
    /// config did not pin it).
    pub rank: usize,
    /// This rank's return value.
    pub result: R,
    /// This rank's cost statistics.
    pub stats: PeStats,
    /// Real wall-clock time of this rank (mesh construction included).
    pub wall: Duration,
}

/// The distributed machine.
pub struct Machine;

impl Machine {
    /// Run `rank_fn` on `cfg.pes` PEs; blocks until all PEs return.
    ///
    /// `rank_fn` receives this PE's [`Comm`] for the world communicator.
    /// If any PE panics, the barrier is poisoned (unblocking peers) and
    /// the panic is propagated to the caller.
    ///
    /// Thin wrapper over [`Machine::try_run`]: **panics** on a rejected
    /// config or a transport failure. Front-ends that must not panic use
    /// `try_run`.
    pub fn run<F, R>(cfg: MachineConfig, rank_fn: F) -> RunOutput<R>
    where
        F: Fn(&Comm) -> R + Send + Sync,
        R: Send,
    {
        Self::try_run(cfg, rank_fn).unwrap_or_else(|e| panic!("machine run failed: {e}"))
    }

    /// [`Machine::run`] with failures typed: a bad config (zero PEs,
    /// unknown `KAMSTA_TRANSPORT`, malformed endpoints) comes back as
    /// [`MachineError`] before any thread is spawned, and a transport
    /// failure at run time (peer death, timeout, protocol violation —
    /// possible under sockets and bytes) comes back as
    /// [`MachineError::Transport`] instead of unwinding.
    pub fn try_run<F, R>(cfg: MachineConfig, rank_fn: F) -> Result<RunOutput<R>, MachineError>
    where
        F: Fn(&Comm) -> R + Send + Sync,
        R: Send,
    {
        let resolved = cfg.resolve()?;
        let p = cfg.pes;
        let faults = resolved
            .faults
            .clone()
            .map(|plan| Arc::new(FaultyTransport::new(plan)));
        // Machine-wide OS thread count: PE threads × hybrid threads.
        // The barrier's spin-vs-park choice keys on this, so a 4×8
        // hybrid machine on an 8-core host parks instead of busy-
        // spinning 32 threads against each other.
        let machine_threads = p * cfg.cost.threads_per_pe;
        match resolved.sockets {
            None => {
                let shared = Arc::new(CommShared::new(
                    p,
                    machine_threads,
                    resolved.transport,
                    faults,
                ));
                let shared_ref = &shared;
                run_pes(
                    &cfg,
                    |rank, clock| {
                        Ok(Comm::new(
                            rank,
                            p,
                            machine_threads,
                            Arc::clone(shared_ref),
                            clock,
                            cfg.cost,
                            cfg.alltoall,
                            cfg.grid_threshold_bytes,
                        ))
                    },
                    || shared_ref.barrier.poison(),
                    &rank_fn,
                )
            }
            Some(SocketSetup::Rendezvous { .. }) => Err(MachineError::SocketConfig(
                "rendezvous discovery is for worker processes — use \
                 Machine::try_run_worker or the kamsta_launch binary"
                    .to_string(),
            )),
            Some(ref setup) => {
                // In-process socket mesh: bind all listeners up front so
                // every PE thread's connect has a live accept side, then
                // let each thread build its own fabric. Failed PEs drop
                // their fabric, which surfaces at peers as `PeerClosed`
                // bounded by the io timeout — no poison flag needed.
                let mut addrs = Vec::with_capacity(p);
                let mut listeners = Vec::with_capacity(p);
                for rank in 0..p {
                    let listener = match setup {
                        SocketSetup::Loopback => TcpListener::bind("127.0.0.1:0"),
                        SocketSetup::Endpoints(table) => TcpListener::bind(table[rank]),
                        SocketSetup::Rendezvous { .. } => unreachable!("matched above"),
                    }
                    .map_err(|e| MachineError::SocketConfig(format!("binding rank {rank}: {e}")))?;
                    addrs.push(listener.local_addr().map_err(|e| {
                        MachineError::SocketConfig(format!("binding rank {rank}: {e}"))
                    })?);
                    listeners.push(Mutex::new(Some(listener)));
                }
                let addrs_ref = &addrs;
                let listeners_ref = &listeners;
                let handshake = resolved.handshake_timeout;
                let timeout = resolved.io_timeout;
                let faults_ref = &faults;
                run_pes(
                    &cfg,
                    move |rank, clock| {
                        let listener = listeners_ref[rank]
                            .lock()
                            .take()
                            .expect("listener taken once per rank");
                        let fabric = SocketFabric::connect_mesh(
                            rank,
                            listener,
                            addrs_ref,
                            handshake,
                            timeout,
                            faults_ref.clone(),
                        )?;
                        Ok(Comm::new(
                            rank,
                            p,
                            machine_threads,
                            Arc::new(CommShared::new(
                                1,
                                machine_threads,
                                TransportKind::Cells,
                                None,
                            )),
                            clock,
                            cfg.cost,
                            cfg.alltoall,
                            cfg.grid_threshold_bytes,
                        )
                        .into_socket(Arc::new(fabric), None, 0))
                    },
                    || {},
                    &rank_fn,
                )
            }
        }
    }

    /// Run **one rank** of a multi-process socket machine in this
    /// process. The config must use the sockets transport with either
    /// static endpoints (then `rank` is required and names this
    /// process's slot) or a rendezvous server (then `rank` is an
    /// optional preference the rendezvous honours).
    ///
    /// Blocks until this rank's program returns; peers run in other
    /// processes. Transport failures — a dead peer, a missed deadline —
    /// come back as [`MachineError::Transport`], bounded by the
    /// configured io timeout.
    pub fn try_run_worker<F, R>(
        cfg: MachineConfig,
        rank: Option<usize>,
        rank_fn: F,
    ) -> Result<WorkerRun<R>, MachineError>
    where
        F: FnOnce(&Comm) -> R,
    {
        let resolved = cfg.resolve()?;
        let start = Instant::now();
        let timeout = resolved.io_timeout;
        let handshake = resolved.handshake_timeout;
        let faults = resolved
            .faults
            .clone()
            .map(|plan| Arc::new(FaultyTransport::new(plan)));
        let (my_rank, listener, table) = match resolved.sockets {
            None | Some(SocketSetup::Loopback) => {
                return Err(MachineError::SocketConfig(
                    "try_run_worker needs with_endpoints(..) or with_rendezvous(..) \
                     on the sockets transport"
                        .to_string(),
                ))
            }
            Some(SocketSetup::Endpoints(table)) => {
                let Some(r) = rank else {
                    return Err(MachineError::SocketConfig(
                        "static endpoints need an explicit rank for this worker".to_string(),
                    ));
                };
                if r >= table.len() {
                    return Err(MachineError::SocketConfig(format!(
                        "worker rank {r} out of range for {} endpoints",
                        table.len()
                    )));
                }
                let listener = TcpListener::bind(table[r])
                    .map_err(|e| MachineError::SocketConfig(format!("binding rank {r}: {e}")))?;
                (r, listener, table)
            }
            Some(SocketSetup::Rendezvous { addr }) => {
                let (r, listener, table) =
                    socket::rendezvous_client(&addr.to_string(), rank, handshake)
                        .map_err(|source| MachineError::Transport { rank: 0, source })?;
                if table.len() != cfg.pes {
                    return Err(MachineError::PeCountMismatch {
                        expected: cfg.pes,
                        got: table.len(),
                    });
                }
                (r, listener, table)
            }
        };
        let p = table.len();
        // This process is one PE of a machine whose every rank runs
        // `threads_per_pe` hybrid threads — the barrier heuristic and
        // the intra-PE pool width both follow the machine-wide count.
        let machine_threads = p * cfg.cost.threads_per_pe;
        let fabric =
            SocketFabric::connect_mesh(my_rank, listener, &table, handshake, timeout, faults)
                .map_err(|source| MachineError::Transport {
                    rank: my_rank,
                    source,
                })?;
        let clock = Arc::new(Clock::new());
        let comm = Comm::new(
            my_rank,
            p,
            machine_threads,
            Arc::new(CommShared::new(
                1,
                machine_threads,
                TransportKind::Cells,
                None,
            )),
            Arc::clone(&clock),
            cfg.cost,
            cfg.alltoall,
            cfg.grid_threshold_bytes,
        )
        .into_socket(Arc::new(fabric), None, 0);
        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            comm.pool().install(|| rank_fn(&comm))
        }));
        drop(comm);
        match out {
            Ok(result) => Ok(WorkerRun {
                rank: my_rank,
                result,
                stats: clock.stats(),
                wall: start.elapsed(),
            }),
            Err(payload) => match payload.downcast::<TransportError>() {
                Ok(source) => Err(MachineError::Transport {
                    rank: my_rank,
                    source: *source,
                }),
                Err(payload) => std::panic::resume_unwind(payload),
            },
        }
    }
}

/// The shared PE-thread runner behind every in-process mode of
/// [`Machine::try_run`]: spawn `cfg.pes` named threads, build each PE's
/// communicator with `make_comm`, and classify every unwind —
///
/// * a [`TransportError`] payload is recorded and `poison` is called so
///   in-process peers unblock; the first one (preferring the PE where
///   the failure *originated* over secondary `PeerClosed` fallout)
///   becomes [`MachineError::Transport`];
/// * a [`BarrierPoisoned`] payload is secondary fallout by definition
///   and is swallowed;
/// * anything else is a genuine program panic and is resumed on the
///   caller, first by rank order.
fn run_pes<F, R>(
    cfg: &MachineConfig,
    make_comm: impl Fn(usize, Arc<Clock>) -> Result<Comm, TransportError> + Sync,
    poison: impl Fn() + Sync,
    rank_fn: &F,
) -> Result<RunOutput<R>, MachineError>
where
    F: Fn(&Comm) -> R + Send + Sync,
    R: Send,
{
    let p = cfg.pes;
    let clocks: Vec<Arc<Clock>> = (0..p).map(|_| Arc::new(Clock::new())).collect();
    let start = Instant::now();

    let mut results: Vec<Option<R>> = (0..p).map(|_| None).collect();
    let mut terrs: Vec<Option<TransportError>> = (0..p).map(|_| None).collect();
    std::thread::scope(|scope| {
        let make_comm = &make_comm;
        let poison = &poison;
        let handles: Vec<_> = results
            .iter_mut()
            .zip(terrs.iter_mut())
            .zip(clocks.iter())
            .enumerate()
            .map(|(rank, ((result_slot, terr_slot), clock))| {
                let clock = Arc::clone(clock);
                std::thread::Builder::new()
                    .name(format!("pe-{rank}"))
                    .stack_size(cfg.stack_size)
                    .spawn_scoped(scope, move || {
                        let comm = match make_comm(rank, clock) {
                            Ok(c) => c,
                            Err(e) => {
                                *terr_slot = Some(e);
                                poison();
                                return;
                            }
                        };
                        // Every PE runs its rank closure at the
                        // configured hybrid width: local kernels that
                        // call `par_iter`/`join`/`par_sort` fan out
                        // into the process-wide worker pool, width 1
                        // staying strictly sequential.
                        let out = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            comm.pool().install(|| rank_fn(&comm))
                        }));
                        // Drop the comm before classifying: under sockets
                        // this closes the fabric, turning this PE's exit
                        // into `PeerClosed` at its peers.
                        drop(comm);
                        match out {
                            Ok(r) => *result_slot = Some(r),
                            Err(payload) => {
                                poison();
                                match payload.downcast::<TransportError>() {
                                    Ok(e) => *terr_slot = Some(*e),
                                    Err(payload) => {
                                        if !payload.is::<BarrierPoisoned>() {
                                            std::panic::resume_unwind(payload);
                                        }
                                    }
                                }
                            }
                        }
                    })
                    .expect("failed to spawn PE thread")
            })
            .collect();
        // Scoped threads are joined on scope exit; join explicitly to
        // surface the *first* genuine panic deterministically by rank.
        let mut first_panic = None;
        for h in handles {
            if let Err(e) = h.join() {
                first_panic.get_or_insert(e);
            }
        }
        if let Some(e) = first_panic {
            std::panic::resume_unwind(e);
        }
    });

    // Transport failure: report where it originated when that is
    // distinguishable — `PeerClosed` is usually fallout from another
    // PE's death, so any other error class wins; ties go to rank order.
    let originating = terrs
        .iter()
        .position(|e| matches!(e, Some(TransportError::Protocol(_) | TransportError::Io(_))))
        .or_else(|| terrs.iter().position(|e| e.is_some()));
    if let Some(rank) = originating {
        return Err(MachineError::Transport {
            rank,
            source: terrs[rank].take().expect("position() found it"),
        });
    }

    let wall = start.elapsed();
    let stats: Vec<PeStats> = clocks.iter().map(|c| c.stats()).collect();
    let modeled_time = stats.iter().map(|s| s.modeled_time).fold(0.0, f64::max);
    Ok(RunOutput {
        results: results
            .into_iter()
            .map(|r| r.expect("PE finished without result"))
            .collect(),
        stats,
        modeled_time,
        wall,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_returns_results_by_rank() {
        let out = Machine::run(MachineConfig::new(5), |comm| comm.rank() * 10);
        assert_eq!(out.results, vec![0, 10, 20, 30, 40]);
        assert_eq!(out.stats.len(), 5);
    }

    #[test]
    fn cores_scales_with_threads() {
        let cfg = MachineConfig::new(8).with_threads(8);
        assert_eq!(cfg.cores(), 64);
        assert_eq!(cfg.cost.threads_per_pe, 8);
    }

    #[test]
    fn single_pe_machine_works() {
        let out = Machine::run(MachineConfig::new(1), |comm| {
            comm.barrier();
            comm.allreduce_sum(7)
        });
        assert_eq!(out.results, vec![7]);
    }

    #[test]
    fn pe_panic_propagates() {
        let res = std::panic::catch_unwind(|| {
            Machine::run(MachineConfig::new(4), |comm| {
                if comm.rank() == 2 {
                    panic!("pe 2 exploded");
                }
                // Peers block on a barrier; poisoning must release them.
                comm.barrier();
            })
        });
        assert!(res.is_err());
    }

    #[test]
    fn modeled_time_is_max_over_pes() {
        // Pin t=1: the expected figure is the unscaled local charge, and
        // the CI hybrid leg sets KAMSTA_THREADS which would otherwise
        // divide it by the hybrid speedup.
        let out = Machine::run(MachineConfig::new(3).with_threads(1), |comm| {
            comm.charge_local(1_000_000 * (comm.rank() as u64 + 1));
        });
        let g = CostModel::default().gamma;
        assert!((out.modeled_time - 3_000_000.0 * g).abs() < 1e-9);
    }
}
