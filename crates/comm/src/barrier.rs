//! A central barrier with integrated BSP clock synchronisation.
//!
//! All blackboard collectives are built from this barrier. On top of plain
//! rendezvous it computes the maximum of the participating PEs' modeled
//! clocks and hands it back to every PE, which is exactly the BSP superstep
//! rule: nobody proceeds (in modeled time) before the slowest PE arrives.
//!
//! The implementation parks waiters on a condvar rather than spinning so
//! that heavily oversubscribed runs (thousands of PE threads on a couple of
//! dozen cores) do not melt down. A poison flag aborts all waiters if any
//! PE panics, turning deadlocks into clean test failures.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

#[derive(Debug)]
struct State {
    /// PEs arrived in the current round.
    count: usize,
    /// Round counter; waiters wait for it to change.
    epoch: u64,
    /// Max clock gathered while the current round fills up.
    gathering_max: f64,
    /// Max clock of the *completed* round, read by released waiters.
    released_max: f64,
}

/// Sense-less central barrier (epoch-counting) with clock max-reduction.
#[derive(Debug)]
pub struct ClockBarrier {
    n: usize,
    state: Mutex<State>,
    cv: Condvar,
    poisoned: AtomicBool,
}

impl ClockBarrier {
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        Self {
            n,
            state: Mutex::new(State {
                count: 0,
                epoch: 0,
                gathering_max: 0.0,
                released_max: 0.0,
            }),
            cv: Condvar::new(),
            poisoned: AtomicBool::new(false),
        }
    }

    #[allow(dead_code)] // diagnostic surface used by tests
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Mark the barrier poisoned (a PE panicked); wakes all waiters.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        // Grab the lock so no waiter can miss the flag between checking it
        // and parking.
        let _g = self.state.lock();
        self.cv.notify_all();
    }

    #[allow(dead_code)] // diagnostic surface used by tests
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Wait for all `n` participants; returns the maximum `clock` value
    /// passed by any participant of this round.
    ///
    /// Panics if the barrier is poisoned, propagating a peer PE's failure.
    pub fn wait(&self, clock: f64) -> f64 {
        let mut s = self.state.lock();
        if self.poisoned.load(Ordering::SeqCst) {
            panic!("barrier poisoned: a peer PE panicked");
        }
        if clock > s.gathering_max {
            s.gathering_max = clock;
        }
        s.count += 1;
        if s.count == self.n {
            // Last arriver releases the round.
            s.count = 0;
            s.released_max = s.gathering_max;
            s.gathering_max = 0.0;
            s.epoch = s.epoch.wrapping_add(1);
            let m = s.released_max;
            drop(s);
            self.cv.notify_all();
            m
        } else {
            let my_epoch = s.epoch;
            while s.epoch == my_epoch {
                // Bounded waits so a poisoned barrier cannot deadlock.
                self.cv.wait_for(&mut s, Duration::from_millis(50));
                if self.poisoned.load(Ordering::SeqCst) {
                    panic!("barrier poisoned: a peer PE panicked");
                }
            }
            s.released_max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_participant_is_trivial() {
        let b = ClockBarrier::new(1);
        assert_eq!(b.wait(3.0), 3.0);
        assert_eq!(b.wait(1.0), 1.0);
    }

    #[test]
    fn max_clock_is_returned_to_everyone() {
        let n = 8;
        let b = Arc::new(ClockBarrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || b.wait(i as f64))
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), (n - 1) as f64);
        }
    }

    #[test]
    fn repeated_rounds_do_not_mix_clocks() {
        let n = 4;
        let b = Arc::new(ClockBarrier::new(n));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let r1 = b.wait(i as f64);
                    let r2 = b.wait(100.0 + i as f64);
                    (r1, r2)
                })
            })
            .collect();
        for h in handles {
            let (r1, r2) = h.join().unwrap();
            assert_eq!(r1, 3.0);
            assert_eq!(r2, 103.0);
        }
    }

    #[test]
    fn poison_wakes_waiters() {
        let b = Arc::new(ClockBarrier::new(2));
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || {
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b2.wait(0.0)));
            res.is_err()
        });
        std::thread::sleep(Duration::from_millis(20));
        b.poison();
        assert!(waiter.join().unwrap(), "waiter should observe poisoning");
    }
}
