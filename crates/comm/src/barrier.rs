//! An O(log p) dissemination barrier with integrated BSP clock
//! synchronisation.
//!
//! All blackboard collectives are built from this barrier. On top of plain
//! rendezvous it computes the maximum of the participating PEs' modeled
//! clocks and hands it back to every PE, which is exactly the BSP superstep
//! rule: nobody proceeds (in modeled time) before the slowest PE arrives.
//!
//! ## Algorithm
//!
//! The previous substrate used a central counter guarded by one mutex and a
//! condvar — every arrival serialised on the same cache line and the last
//! arriver paid an O(p) broadcast wake-up. This implementation is the
//! classic *dissemination* barrier (Hensgen, Finkel & Manber 1988): in
//! round `k` of `⌈log₂ p⌉`, PE `i` signals PE `(i + 2^k) mod p` and waits
//! for the signal from PE `(i − 2^k) mod p`. After the last round every
//! PE has transitively heard from every other PE, so the rendezvous is
//! complete — without any shared counter, O(log p) remote writes per PE,
//! each to a distinct cache-line-padded flag.
//!
//! The BSP **clock max-reduction rides inside the rounds**: each signal
//! carries the sender's running clock maximum, and the receiver folds it
//! into its own. Max is idempotent and commutative, and the dissemination
//! signal graph covers all p PEs from every start, so after the last round
//! every PE holds the global maximum — the separate gather the central
//! barrier needed is gone.
//!
//! Because each signal carries a value, episodes need more than sense
//! reversal: a fast PE may exit episode `e` and fire its episode-`e+1`
//! round-0 signal while a slow peer has only *sent* (not yet consumed)
//! its own episode-`e` signals, so a single-buffered flag could be
//! overwritten with the next episode's clock before it is read. Each
//! flag therefore has **two lanes indexed by episode parity**, stamped
//! with the episode number. Skew between PEs is at most one episode —
//! entering `e + 1` requires exiting the full barrier of episode `e`,
//! which happens-after every PE consumed all its episode-`e − 1`
//! signals — so the lane a writer claims for episode `e + 1` is never
//! one a reader still needs, and `stamp == episode` on the right lane
//! is an unambiguous, tear-free "signal has landed" predicate.
//!
//! Waiters **spin briefly, then park**: a short `spin_loop` burst covers
//! the common in-cache handoff when every PE has a core of its own
//! (skipped entirely when the machine oversubscribes the host, where
//! spinning only steals cycles from the PE being waited on), then the
//! waiter registers itself in its inbox and parks. The signal writer
//! unparks exactly that one thread — unlike a central condvar, which
//! broadcast-woke all `p` waiters every round. Parks are time-bounded so
//! a poison flag (set when any PE panics) aborts all waiters promptly,
//! turning deadlocks into clean test failures.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread::Thread;
use std::time::Duration;

/// Typed panic payload of a poisoned barrier: some *other* PE failed
/// first, and this PE is being unwound only so the machine can tear
/// down. The runner in `machine.rs` downcasts for it and swallows the
/// unwind — only the originating PE's failure is reported.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BarrierPoisoned;

/// One dissemination signal inbox: per episode parity, an epoch stamp
/// plus the sender's running clock maximum. The whole inbox sits on its
/// own padded line so the signal write of one PE never false-shares
/// with another PE's spin loop.
#[repr(align(128))]
#[derive(Debug)]
struct Flag {
    /// Episode number of the last signal landed in each lane (0 = never).
    stamp: [AtomicU64; 2],
    /// Clock maximum carried by that signal, as `f64` bits. Written
    /// before `stamp` (Release) and read after it (Acquire).
    clock_bits: [AtomicU64; 2],
    /// True while the inbox owner is parked in `waiter`; lets the signal
    /// writer skip the wake-up lock entirely in the spinning fast path.
    has_waiter: AtomicBool,
    /// The parked inbox owner, if any. Only the slow path touches this
    /// lock, and each inbox has exactly one legal waiter (its owner PE).
    waiter: Mutex<Option<Thread>>,
}

impl Flag {
    fn new() -> Self {
        Self {
            stamp: [AtomicU64::new(0), AtomicU64::new(0)],
            clock_bits: [AtomicU64::new(0), AtomicU64::new(0)],
            has_waiter: AtomicBool::new(false),
            waiter: Mutex::new(None),
        }
    }
}

/// Per-PE episode counter, padded: only the owning PE touches it.
#[repr(align(128))]
#[derive(Debug)]
struct Episode(AtomicU64);

/// Dissemination barrier with folded-in clock max-reduction.
///
/// `wait(rank, clock)` is the only rendezvous primitive of the crate; it
/// returns the maximum clock over all participants of the episode.
#[derive(Debug)]
pub struct ClockBarrier {
    n: usize,
    rounds: usize,
    /// Busy-spin budget before parking: a few hundred iterations when
    /// every PE thread can have a host core, zero when the simulation
    /// oversubscribes the host (then spinning steals the very cycles the
    /// awaited PE needs to make progress).
    spin: u32,
    /// `flags[pe * rounds + k]`: the round-`k` inbox of `pe`.
    flags: Box<[Flag]>,
    /// `episodes[pe]`: how many episodes `pe` has completed.
    episodes: Box<[Episode]>,
    poisoned: AtomicBool,
}

/// Busy-spin budget when PE threads are not oversubscribed.
const SPIN_ROUNDS: u32 = 256;
/// Cooperative yields before parking — on an oversubscribed host a yield
/// hands the core straight to a runnable peer at a fraction of a futex
/// park/unpark round-trip.
const YIELD_ROUNDS: u32 = 64;
/// Bounded park so a poisoned barrier is noticed promptly even if the
/// wake-up signal never arrives.
const PARK: Duration = Duration::from_millis(1);

impl ClockBarrier {
    /// `n` participants. `machine_threads` is the *machine-wide* OS
    /// thread count — `p × threads_per_pe`, not just `p`: a
    /// sub-communicator's barrier must judge host oversubscription by
    /// every thread competing for the cores (the hybrid variants'
    /// intra-PE pool threads included), not by its own (possibly tiny)
    /// membership. A `p=4, t=8` machine on an 8-core host therefore
    /// parks instead of spinning, even though its 4 PE threads alone
    /// would fit.
    pub fn new(n: usize, machine_threads: usize) -> Self {
        assert!(n > 0, "barrier needs at least one participant");
        let rounds = crate::ceil_log2(n) as usize;
        let cores = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self {
            n,
            rounds,
            spin: if machine_threads.max(n) <= cores {
                SPIN_ROUNDS
            } else {
                0
            },
            flags: (0..n * rounds).map(|_| Flag::new()).collect(),
            episodes: (0..n).map(|_| Episode(AtomicU64::new(0))).collect(),
            poisoned: AtomicBool::new(false),
        }
    }

    #[allow(dead_code)] // diagnostic surface used by tests
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Mark the barrier poisoned (a PE panicked) and wake every parked
    /// waiter; spinning waiters notice the flag themselves.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::SeqCst);
        for flag in &self.flags {
            if let Some(t) = flag.waiter.lock().take() {
                t.unpark();
            }
        }
    }

    #[allow(dead_code)] // diagnostic surface used by tests
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    #[inline]
    fn flag(&self, pe: usize, round: usize) -> &Flag {
        &self.flags[pe * self.rounds + round]
    }

    /// Wait for all `n` participants; returns the maximum `clock` value
    /// passed by any participant of this episode. `rank` must be this
    /// PE's unique rank in `0..n`.
    ///
    /// Panics if the barrier is poisoned, propagating a peer PE's failure.
    pub fn wait(&self, rank: usize, clock: f64) -> f64 {
        debug_assert!(rank < self.n);
        if self.poisoned.load(Ordering::SeqCst) {
            // Typed payload, same as the in-wait poison paths: the
            // machine layer classifies `BarrierPoisoned` as secondary
            // fallout and keeps the originating PE's error instead.
            std::panic::panic_any(BarrierPoisoned);
        }
        if self.n == 1 {
            return clock;
        }
        // Episode numbers start at 1 so stamp 0 means "never signalled".
        let e = self.episodes[rank].0.load(Ordering::Relaxed) + 1;
        let lane = (e & 1) as usize;
        let mut max = clock;
        for k in 0..self.rounds {
            let peer = (rank + (1 << k)) % self.n;
            let out = self.flag(peer, k);
            out.clock_bits[lane].store(max.to_bits(), Ordering::Relaxed);
            out.stamp[lane].store(e, Ordering::Release);
            // Wake the peer iff it already parked on this inbox; the
            // `has_waiter` check keeps the fast path lock-free. The
            // SeqCst fence pairs with the waiter's fence between its
            // registration store and stamp re-check: whichever fence
            // comes first in the global order, either we observe the
            // registration or the waiter observes the stamp — a wake-up
            // can never fall between the two (store-buffering race).
            std::sync::atomic::fence(Ordering::SeqCst);
            if out.has_waiter.load(Ordering::Acquire) {
                if let Some(t) = out.waiter.lock().take() {
                    t.unpark();
                }
            }
            let inbox = self.flag(rank, k);
            self.spin_until_stamped(inbox, lane, e);
            let heard = f64::from_bits(inbox.clock_bits[lane].load(Ordering::Relaxed));
            if heard > max {
                max = heard;
            }
        }
        self.episodes[rank].0.store(e, Ordering::Relaxed);
        max
    }

    /// Wait until lane `lane` of `flag` is stamped with episode `e`
    /// (Acquire, so the carried clock bits and everything the sender did
    /// before signalling are visible): bounded spin first, then register
    /// in the inbox and park until the signal writer unparks us.
    #[inline]
    fn spin_until_stamped(&self, flag: &Flag, lane: usize, e: u64) {
        for _ in 0..self.spin {
            if flag.stamp[lane].load(Ordering::Acquire) == e {
                return;
            }
            std::hint::spin_loop();
        }
        // On an oversubscribed host the awaited PE needs the core we are
        // holding: hand it over directly a few times before paying for
        // park/unpark futex round-trips.
        for _ in 0..YIELD_ROUNDS {
            if flag.stamp[lane].load(Ordering::Acquire) == e {
                return;
            }
            if self.poisoned.load(Ordering::SeqCst) {
                std::panic::panic_any(BarrierPoisoned);
            }
            std::thread::yield_now();
        }
        loop {
            if flag.stamp[lane].load(Ordering::Acquire) == e {
                return;
            }
            if self.poisoned.load(Ordering::SeqCst) {
                std::panic::panic_any(BarrierPoisoned);
            }
            // Register, then re-check the stamp before parking: the
            // SeqCst fence pairs with the writer's (see `wait`), so a
            // writer that signalled in between either sees `has_waiter`
            // and unparks us, or we see its stamp here — no lost wake-up.
            *flag.waiter.lock() = Some(std::thread::current());
            flag.has_waiter.store(true, Ordering::Release);
            std::sync::atomic::fence(Ordering::SeqCst);
            if flag.stamp[lane].load(Ordering::Acquire) != e
                && !self.poisoned.load(Ordering::SeqCst)
            {
                std::thread::park_timeout(PARK);
            }
            flag.has_waiter.store(false, Ordering::Relaxed);
            *flag.waiter.lock() = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_participant_is_trivial() {
        let b = ClockBarrier::new(1, 1);
        assert_eq!(b.wait(0, 3.0), 3.0);
        assert_eq!(b.wait(0, 1.0), 1.0);
    }

    #[test]
    fn max_clock_is_returned_to_everyone() {
        for n in [2usize, 3, 5, 8, 13, 16] {
            let b = Arc::new(ClockBarrier::new(n, n));
            let handles: Vec<_> = (0..n)
                .map(|i| {
                    let b = Arc::clone(&b);
                    std::thread::spawn(move || b.wait(i, i as f64))
                })
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), (n - 1) as f64, "n={n}");
            }
        }
    }

    #[test]
    fn repeated_rounds_do_not_mix_clocks() {
        let n = 4;
        let b = Arc::new(ClockBarrier::new(n, n));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let r1 = b.wait(i, i as f64);
                    let r2 = b.wait(i, 100.0 + i as f64);
                    (r1, r2)
                })
            })
            .collect();
        for h in handles {
            let (r1, r2) = h.join().unwrap();
            assert_eq!(r1, 3.0);
            assert_eq!(r2, 103.0);
        }
    }

    #[test]
    fn many_episodes_back_to_back() {
        // Epoch stamping (not sense reversal) must keep fast and slow PEs
        // from confusing episodes even over many reuses of the same flags.
        let n = 7;
        let episodes = 200;
        let b = Arc::new(ClockBarrier::new(n, n));
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut out = Vec::with_capacity(episodes);
                    for e in 0..episodes {
                        out.push(b.wait(i, (e * n + i) as f64));
                    }
                    out
                })
            })
            .collect();
        for h in handles {
            let got = h.join().unwrap();
            for (e, v) in got.into_iter().enumerate() {
                assert_eq!(v, (e * n + n - 1) as f64);
            }
        }
    }

    #[test]
    fn poison_wakes_waiters() {
        let b = Arc::new(ClockBarrier::new(2, 2));
        let b2 = Arc::clone(&b);
        let waiter = std::thread::spawn(move || {
            let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| b2.wait(0, 0.0)));
            res.is_err()
        });
        std::thread::sleep(Duration::from_millis(20));
        b.poison();
        assert!(waiter.join().unwrap(), "waiter should observe poisoning");
    }
}
