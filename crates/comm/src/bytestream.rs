//! The byte-stream transport backend: per-PE-pair byte queues carrying
//! [`Wire`](crate::wire)-encoded frames.
//!
//! Where the shared-cells backend publishes typed values on a zero-copy
//! blackboard, this backend moves **bytes**: a sender encodes its value
//! once and pushes one frame per recipient onto the `(src → dst)` queue;
//! after the round's barrier each receiver pops its frames and decodes.
//! Nothing is shared between PEs but the queues themselves, which is
//! exactly the shape of a socket transport — and since the socket
//! backend of [`crate::socket`] landed, both feed the same byte-lane
//! code path in `transport.rs`, stamped with the same numeric type tags
//! ([`crate::wire::type_tag`]).
//!
//! ## Framing and the round discipline
//!
//! Collectives are SPMD-ordered, so every PE advances an identical
//! per-communicator round sequence number ([`crate::Comm`] owns the
//! counter). Each frame is stamped with the sender's sequence number and
//! payload type tag; a receiver popping for round `s`:
//!
//! * discards frames with `seq < s` — posts from earlier rounds that no
//!   protocol step ever consumed (the byte analogue of a stale cell lane
//!   being overwritten two epochs later);
//! * returns a typed [`TransportError::Protocol`] on `seq > s`, a type
//!   mismatch, or a missing frame — a PE skipped a send or the
//!   collectives ran out of order. The error propagates through
//!   [`crate::Machine::try_run`] instead of tearing the process down
//!   with a panic string, matching the socket path's failure surface.
//!
//! Queues are `parking_lot`-mutexed `VecDeque`s; the round barrier — not
//! the queue lock — is what orders sends before receives, so lock
//! contention is a pop/push critical section, never a wait-for-data spin.

use crate::transport::TransportError;
use parking_lot::Mutex;
use std::collections::VecDeque;

/// One encoded message travelling a PE-pair queue.
pub(crate) struct Frame {
    /// The sender's round sequence number at post time.
    seq: u64,
    /// Payload type tag ([`crate::wire::type_tag`]) — the same stamp the
    /// socket frames carry on the wire.
    tag: u64,
    bytes: Vec<u8>,
}

/// The per-communicator queue fabric: `p × p` ordered byte queues.
pub(crate) struct ByteHub {
    p: usize,
    queues: Box<[Mutex<VecDeque<Frame>>]>,
}

impl std::fmt::Debug for ByteHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ByteHub(p = {})", self.p)
    }
}

impl ByteHub {
    pub(crate) fn new(p: usize) -> Self {
        Self {
            p,
            queues: (0..p * p).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    #[inline]
    fn queue(&self, src: usize, dst: usize) -> &Mutex<VecDeque<Frame>> {
        &self.queues[src * self.p + dst]
    }

    /// Push an already-encoded frame onto the `(src → dst)` queue.
    pub(crate) fn push(&self, src: usize, dst: usize, seq: u64, tag: u64, bytes: Vec<u8>) {
        self.queue(src, dst)
            .lock()
            .push_back(Frame { seq, tag, bytes });
    }

    /// Pop the frame of round `seq` from the `(src → dst)` queue,
    /// discarding stale (never-consumed) frames from earlier rounds.
    /// Protocol violations are typed errors, mirroring the socket path.
    pub(crate) fn pop(
        &self,
        src: usize,
        dst: usize,
        seq: u64,
        tag: u64,
        what: &str,
    ) -> Result<Vec<u8>, TransportError> {
        let mut q = self.queue(src, dst).lock();
        loop {
            let Some(frame) = q.pop_front() else {
                return Err(TransportError::Protocol(format!(
                    "byte-stream {what} of round {seq}: no frame from PE {src} — \
                     a PE skipped a send or collectives ran out of order"
                )));
            };
            if frame.seq < seq {
                continue; // posted but never consumed; drop like a stale lane
            }
            if frame.seq != seq || frame.tag != tag {
                return Err(TransportError::Protocol(format!(
                    "byte-stream {what} of round {seq}: found frame of round {} — \
                     a PE skipped a send or collectives ran out of order",
                    frame.seq
                )));
            }
            return Ok(frame.bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{self, type_tag};

    #[test]
    fn push_pop_roundtrip() {
        let hub = ByteHub::new(2);
        let tag = type_tag::<Vec<u64>>();
        hub.push(0, 1, 1, tag, wire::encode(&vec![1u64, 2, 3]));
        let got: Vec<u64> = wire::decode(&hub.pop(0, 1, 1, tag, "test").unwrap()).unwrap();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn stale_frames_are_discarded() {
        let hub = ByteHub::new(2);
        let tag = type_tag::<u32>();
        hub.push(0, 1, 1, tag, wire::encode(&7u32)); // never consumed
        hub.push(0, 1, 3, tag, wire::encode(&9u32));
        let got: u32 = wire::decode(&hub.pop(0, 1, 3, tag, "test").unwrap()).unwrap();
        assert_eq!(got, 9);
    }

    #[test]
    fn missing_frame_is_a_typed_error() {
        let hub = ByteHub::new(2);
        let err = hub.pop(0, 1, 1, type_tag::<u32>(), "test").unwrap_err();
        assert!(
            matches!(err, TransportError::Protocol(ref m) if m.contains("skipped a send")),
            "{err:?}"
        );
    }

    #[test]
    fn future_frame_is_a_typed_error() {
        let hub = ByteHub::new(2);
        let tag = type_tag::<u8>();
        hub.push(0, 1, 5, tag, wire::encode(&1u8));
        let err = hub.pop(0, 1, 2, tag, "test").unwrap_err();
        assert!(
            matches!(err, TransportError::Protocol(ref m) if m.contains("skipped a send")),
            "{err:?}"
        );
    }

    #[test]
    fn tag_mismatch_is_a_typed_error() {
        let hub = ByteHub::new(2);
        hub.push(0, 1, 1, type_tag::<u8>(), wire::encode(&1u8));
        let err = hub.pop(0, 1, 1, type_tag::<u16>(), "test").unwrap_err();
        assert!(matches!(err, TransportError::Protocol(_)), "{err:?}");
    }
}
