//! The byte-stream transport backend: per-PE-pair byte queues carrying
//! [`Wire`](crate::wire)-encoded frames.
//!
//! Where the shared-cells backend publishes typed values on a zero-copy
//! blackboard, this backend moves **bytes**: a sender encodes its value
//! once and pushes one frame per recipient onto the `(src → dst)` queue;
//! after the round's barrier each receiver pops its frames and decodes.
//! Nothing is shared between PEs but the queues themselves, which is
//! exactly the shape of a socket transport — and since the socket
//! backend of [`crate::socket`] landed, both feed the same byte-lane
//! code path in `transport.rs`, stamped with the same numeric type tags
//! ([`crate::wire::type_tag`]).
//!
//! ## Framing and the round discipline
//!
//! Collectives are SPMD-ordered, so every PE advances an identical
//! per-communicator round sequence number ([`crate::Comm`] owns the
//! counter). Each frame is stamped with the sender's sequence number and
//! payload type tag; a receiver popping for round `s`:
//!
//! * discards frames with `seq < s` — posts from earlier rounds that no
//!   protocol step ever consumed (the byte analogue of a stale cell lane
//!   being overwritten two epochs later); injected *duplicate* frames
//!   are absorbed by the same rule, since the original of round `s` is
//!   consumed before its twin is ever inspected;
//! * returns a typed [`TransportError::Protocol`] on `seq > s`, a type
//!   mismatch, or a missing frame — a PE skipped a send or the
//!   collectives ran out of order. The error propagates through
//!   [`crate::Machine::try_run`] instead of tearing the process down
//!   with a panic string, matching the socket path's failure surface.
//!
//! ## Fault injection
//!
//! When a [`FaultyTransport`](crate::fault::FaultyTransport) is armed,
//! `push` consults it per frame: transient faults (delays, retransmit
//! backoffs, duplicates) are absorbed by the round discipline above;
//! lethal ones corrupt the stored bytes *after* the frame checksum is
//! stamped, so `pop` detects them as a typed checksum mismatch — a
//! corrupt frame is never decoded into a wrong answer. Without a plan
//! the checksum is neither computed nor verified.
//!
//! Queues are `parking_lot`-mutexed `VecDeque`s; the round barrier — not
//! the queue lock — is what orders sends before receives, so lock
//! contention is a pop/push critical section, never a wait-for-data spin.

use crate::fault::{frame_checksum, FaultyTransport, LethalKind};
use crate::transport::TransportError;
use crate::wire::CH_DATA;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// An encoded frame payload: owned by exactly one queue slot, or shared
/// by every destination of a broadcast. `To::All` posts encode **once**
/// and enqueue `p − 1` `Arc` clones — the queue layer never copies
/// payload bytes.
pub(crate) enum Payload {
    Owned(Vec<u8>),
    Shared(Arc<Vec<u8>>),
}

impl Payload {
    #[inline]
    pub(crate) fn as_slice(&self) -> &[u8] {
        match self {
            Payload::Owned(v) => v,
            Payload::Shared(a) => a,
        }
    }

    /// The bytes by value, copying only when still shared.
    pub(crate) fn into_vec(self) -> Vec<u8> {
        match self {
            Payload::Owned(v) => v,
            Payload::Shared(a) => Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()),
        }
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload::Owned(v)
    }
}

/// One encoded message travelling a PE-pair queue.
pub(crate) struct Frame {
    /// The sender's round sequence number at post time.
    seq: u64,
    /// Payload type tag ([`crate::wire::type_tag`]) — the same stamp the
    /// socket frames carry on the wire.
    tag: u64,
    /// Frame checksum, stamped/verified only while faults are armed.
    sum: u64,
    bytes: Payload,
}

/// The per-communicator queue fabric: `p × p` ordered byte queues.
pub(crate) struct ByteHub {
    p: usize,
    queues: Box<[Mutex<VecDeque<Frame>>]>,
    faults: Option<Arc<FaultyTransport>>,
}

impl std::fmt::Debug for ByteHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ByteHub(p = {})", self.p)
    }
}

impl ByteHub {
    pub(crate) fn new(p: usize, faults: Option<Arc<FaultyTransport>>) -> Self {
        Self {
            p,
            queues: (0..p * p).map(|_| Mutex::new(VecDeque::new())).collect(),
            faults,
        }
    }

    /// The armed fault engine, if any — sub-communicator hubs inherit it.
    pub(crate) fn faults(&self) -> Option<&Arc<FaultyTransport>> {
        self.faults.as_ref()
    }

    #[inline]
    fn queue(&self, src: usize, dst: usize) -> &Mutex<VecDeque<Frame>> {
        &self.queues[src * self.p + dst]
    }

    /// Push an already-encoded frame onto the `(src → dst)` queue.
    ///
    /// The reliable path never fails; with faults armed, a lethal
    /// disconnect surfaces here as a typed io error on the faulty PE
    /// (its analogue of tearing down every socket).
    pub(crate) fn push(
        &self,
        src: usize,
        dst: usize,
        seq: u64,
        tag: u64,
        bytes: Payload,
    ) -> Result<(), TransportError> {
        let Some(fx) = self.faults.as_deref() else {
            self.queue(src, dst).lock().push_back(Frame {
                seq,
                tag,
                sum: 0,
                bytes,
            });
            return Ok(());
        };
        // Stamp the checksum over the *intended* bytes first: lethal
        // corruption below happens after, which is exactly what makes it
        // detectable at pop time.
        let sum = frame_checksum(CH_DATA, 0, seq, tag, bytes.as_slice());
        let f = fx.send_faults(CH_DATA, src, dst, 0, seq);
        if let Some(d) = f.delay {
            std::thread::sleep(d);
        }
        // Retransmit-on-transient: each refused attempt backs off
        // (capped exponential + jitter), then the frame goes out whole.
        for attempt in 0..f.failed_attempts {
            std::thread::sleep(fx.backoff(f.key, attempt));
        }
        let bytes = match f.lethal {
            Some(LethalKind::Disconnect) => {
                return Err(TransportError::Io(
                    "injected fault: mid-frame disconnect".into(),
                ));
            }
            Some(LethalKind::Truncate) => {
                // Corruption mutates: take the bytes by value (copying
                // only if another destination still shares them).
                let mut v = bytes.into_vec();
                v.truncate(v.len() / 2);
                Payload::Owned(v)
            }
            Some(LethalKind::BitFlip) if !bytes.as_slice().is_empty() => {
                let mut v = bytes.into_vec();
                let bit = fx.flip_bit(f.key, v.len() * 8);
                v[bit / 8] ^= 1 << (bit % 8);
                Payload::Owned(v)
            }
            Some(LethalKind::BitFlip) | None => bytes,
        };
        let mut q = self.queue(src, dst).lock();
        if f.duplicate && f.lethal.is_none() {
            // The twin shares the bytes instead of cloning them.
            let shared = match bytes {
                Payload::Owned(v) => Arc::new(v),
                Payload::Shared(a) => a,
            };
            q.push_back(Frame {
                seq,
                tag,
                sum,
                bytes: Payload::Shared(Arc::clone(&shared)),
            });
            q.push_back(Frame {
                seq,
                tag,
                sum,
                bytes: Payload::Shared(shared),
            });
            return Ok(());
        }
        q.push_back(Frame {
            seq,
            tag,
            sum,
            bytes,
        });
        Ok(())
    }

    /// Pop the frame of round `seq` from the `(src → dst)` queue,
    /// discarding stale (never-consumed or duplicated) frames from
    /// earlier rounds. Protocol violations are typed errors, mirroring
    /// the socket path. The caller decodes from the returned payload's
    /// slice view and recycles owned buffers into its pool.
    pub(crate) fn pop_frame(
        &self,
        src: usize,
        dst: usize,
        seq: u64,
        tag: u64,
        what: &str,
    ) -> Result<Payload, TransportError> {
        let mut q = self.queue(src, dst).lock();
        loop {
            let Some(frame) = q.pop_front() else {
                return Err(TransportError::Protocol(format!(
                    "byte-stream {what} of round {seq}: no frame from PE {src} — \
                     a PE skipped a send or collectives ran out of order"
                )));
            };
            if frame.seq < seq {
                continue; // posted but never consumed; drop like a stale lane
            }
            if frame.seq != seq || frame.tag != tag {
                return Err(TransportError::Protocol(format!(
                    "byte-stream {what} of round {seq}: found frame of round {} — \
                     a PE skipped a send or collectives ran out of order",
                    frame.seq
                )));
            }
            if self.faults.is_some()
                && frame_checksum(CH_DATA, 0, frame.seq, frame.tag, frame.bytes.as_slice())
                    != frame.sum
            {
                return Err(TransportError::Protocol(format!(
                    "byte-stream {what} of round {seq}: frame from PE {src} \
                     failed its checksum (corrupt frame)"
                )));
            }
            return Ok(frame.bytes);
        }
    }

    /// Test convenience: pop and own the bytes.
    #[cfg(test)]
    fn pop(
        &self,
        src: usize,
        dst: usize,
        seq: u64,
        tag: u64,
        what: &str,
    ) -> Result<Vec<u8>, TransportError> {
        self.pop_frame(src, dst, seq, tag, what)
            .map(Payload::into_vec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultPlan, LethalFault};
    use crate::wire::{self, type_tag};

    fn hub(p: usize) -> ByteHub {
        ByteHub::new(p, None)
    }

    fn faulty(p: usize, plan: FaultPlan) -> ByteHub {
        ByteHub::new(p, Some(Arc::new(FaultyTransport::new(plan))))
    }

    fn owned<T: wire::Wire>(v: &T) -> Payload {
        wire::encode(v).into()
    }

    #[test]
    fn push_pop_roundtrip() {
        let hub = hub(2);
        let tag = type_tag::<Vec<u64>>();
        hub.push(0, 1, 1, tag, owned(&vec![1u64, 2, 3])).unwrap();
        let got: Vec<u64> = wire::decode(&hub.pop(0, 1, 1, tag, "test").unwrap()).unwrap();
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn stale_frames_are_discarded() {
        let hub = hub(2);
        let tag = type_tag::<u32>();
        hub.push(0, 1, 1, tag, owned(&7u32)).unwrap(); // never consumed
        hub.push(0, 1, 3, tag, owned(&9u32)).unwrap();
        let got: u32 = wire::decode(&hub.pop(0, 1, 3, tag, "test").unwrap()).unwrap();
        assert_eq!(got, 9);
    }

    #[test]
    fn missing_frame_is_a_typed_error() {
        let hub = hub(2);
        let err = hub.pop(0, 1, 1, type_tag::<u32>(), "test").unwrap_err();
        assert!(
            matches!(err, TransportError::Protocol(ref m) if m.contains("skipped a send")),
            "{err:?}"
        );
    }

    #[test]
    fn future_frame_is_a_typed_error() {
        let hub = hub(2);
        let tag = type_tag::<u8>();
        hub.push(0, 1, 5, tag, owned(&1u8)).unwrap();
        let err = hub.pop(0, 1, 2, tag, "test").unwrap_err();
        assert!(
            matches!(err, TransportError::Protocol(ref m) if m.contains("skipped a send")),
            "{err:?}"
        );
    }

    #[test]
    fn tag_mismatch_is_a_typed_error() {
        let hub = hub(2);
        hub.push(0, 1, 1, type_tag::<u8>(), owned(&1u8)).unwrap();
        let err = hub.pop(0, 1, 1, type_tag::<u16>(), "test").unwrap_err();
        assert!(matches!(err, TransportError::Protocol(_)), "{err:?}");
    }

    #[test]
    fn injected_duplicates_are_absorbed() {
        let hub = faulty(2, FaultPlan::seeded(5).with_duplicates(1.0));
        let tag = type_tag::<u32>();
        for round in 1..=8u64 {
            hub.push(0, 1, round, tag, owned(&(round as u32))).unwrap();
        }
        for round in 1..=8u64 {
            let got: u32 = wire::decode(&hub.pop(0, 1, round, tag, "test").unwrap()).unwrap();
            assert_eq!(got, round as u32, "duplicate absorbed by stale discard");
        }
    }

    #[test]
    fn injected_bit_flip_is_a_checksum_error_never_a_wrong_answer() {
        let hub = faulty(
            2,
            FaultPlan::seeded(5).with_lethal(LethalFault {
                rank: 0,
                kind: LethalKind::BitFlip,
                at_seq: 1,
            }),
        );
        let tag = type_tag::<Vec<u64>>();
        hub.push(0, 1, 1, tag, owned(&vec![1u64, 2, 3])).unwrap();
        let err = hub.pop(0, 1, 1, tag, "test").unwrap_err();
        assert!(
            matches!(err, TransportError::Protocol(ref m) if m.contains("checksum")),
            "{err:?}"
        );
    }

    #[test]
    fn injected_truncation_is_a_checksum_error() {
        let hub = faulty(
            2,
            FaultPlan::seeded(5).with_lethal(LethalFault {
                rank: 0,
                kind: LethalKind::Truncate,
                at_seq: 0,
            }),
        );
        let tag = type_tag::<Vec<u64>>();
        hub.push(0, 1, 0, tag, owned(&vec![9u64; 16])).unwrap();
        let err = hub.pop(0, 1, 0, tag, "test").unwrap_err();
        assert!(
            matches!(err, TransportError::Protocol(ref m) if m.contains("checksum")),
            "{err:?}"
        );
    }

    #[test]
    fn injected_disconnect_is_a_typed_io_error_on_the_faulty_pe() {
        let hub = faulty(
            2,
            FaultPlan::seeded(5).with_lethal(LethalFault {
                rank: 1,
                kind: LethalKind::Disconnect,
                at_seq: 2,
            }),
        );
        let tag = type_tag::<u8>();
        hub.push(1, 0, 1, tag, owned(&1u8)).unwrap();
        let err = hub.push(1, 0, 2, tag, owned(&2u8)).unwrap_err();
        assert!(
            matches!(err, TransportError::Io(ref m) if m.contains("injected")),
            "{err:?}"
        );
        // The other direction is unaffected.
        hub.push(0, 1, 2, tag, owned(&3u8)).unwrap();
    }

    #[test]
    fn transient_faults_do_not_change_delivery() {
        let hub = faulty(
            2,
            FaultPlan::seeded(11)
                .with_delays(0.5, 50)
                .with_retries(0.5)
                .with_duplicates(0.3),
        );
        let tag = type_tag::<u64>();
        for round in 0..32u64 {
            hub.push(0, 1, round, tag, owned(&(round * 3))).unwrap();
        }
        for round in 0..32u64 {
            let got: u64 = wire::decode(&hub.pop(0, 1, round, tag, "test").unwrap()).unwrap();
            assert_eq!(got, round * 3);
        }
    }
}
