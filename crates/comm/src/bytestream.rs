//! The byte-stream transport backend: per-PE-pair byte queues carrying
//! [`Wire`]-encoded frames.
//!
//! Where the shared-cells backend publishes typed values on a zero-copy
//! blackboard, this backend moves **bytes**: a sender encodes its value
//! once and pushes one frame per recipient onto the `(src → dst)` queue;
//! after the round's barrier each receiver pops its frames and decodes.
//! Nothing is shared between PEs but the queues themselves, which is
//! exactly the shape of a socket or pipe transport — swapping the
//! in-process `VecDeque`s for file descriptors (and the [`TypeId`] frame
//! tag for a registered message tag) is a local change to this module,
//! with a process/socket launcher as the drop-in follow-up.
//!
//! ## Framing and the round discipline
//!
//! Collectives are SPMD-ordered, so every PE advances an identical
//! per-communicator round sequence number ([`crate::Comm`] owns the
//! counter). Each frame is stamped with the sender's sequence number and
//! payload [`TypeId`]; a receiver popping for round `s`:
//!
//! * discards frames with `seq < s` — posts from earlier rounds that no
//!   protocol step ever consumed (the byte analogue of a stale cell lane
//!   being overwritten two epochs later);
//! * panics on `seq > s` or a type mismatch — a PE skipped a send or the
//!   collectives ran out of order, the same protocol violations the cell
//!   epoch stamps turn into panics on the shared-cells path.
//!
//! Queues are `parking_lot`-mutexed `VecDeque`s; the round barrier — not
//! the queue lock — is what orders sends before receives, so lock
//! contention is a pop/push critical section, never a wait-for-data spin.

use crate::wire::{self, Wire};
use parking_lot::Mutex;
use std::any::TypeId;
use std::collections::VecDeque;

/// One encoded message travelling a PE-pair queue.
pub(crate) struct Frame {
    /// The sender's round sequence number at post time.
    seq: u64,
    /// Payload type tag. A socket transport would replace this with a
    /// registered numeric message tag; in-process, `TypeId` is exact.
    ty: TypeId,
    bytes: Vec<u8>,
}

/// The per-communicator queue fabric: `p × p` ordered byte queues.
pub(crate) struct ByteHub {
    p: usize,
    queues: Box<[Mutex<VecDeque<Frame>>]>,
}

impl std::fmt::Debug for ByteHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ByteHub(p = {})", self.p)
    }
}

impl ByteHub {
    pub(crate) fn new(p: usize) -> Self {
        Self {
            p,
            queues: (0..p * p).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    #[inline]
    fn queue(&self, src: usize, dst: usize) -> &Mutex<VecDeque<Frame>> {
        &self.queues[src * self.p + dst]
    }

    /// Push an already-encoded frame onto the `(src → dst)` queue.
    pub(crate) fn push(&self, src: usize, dst: usize, seq: u64, ty: TypeId, bytes: Vec<u8>) {
        self.queue(src, dst)
            .lock()
            .push_back(Frame { seq, ty, bytes });
    }

    /// Pop the frame of round `seq` from the `(src → dst)` queue,
    /// discarding stale (never-consumed) frames from earlier rounds.
    /// Panics on protocol violations, mirroring the cell stamp asserts.
    pub(crate) fn pop(&self, src: usize, dst: usize, seq: u64, ty: TypeId, what: &str) -> Vec<u8> {
        let mut q = self.queue(src, dst).lock();
        loop {
            let frame = q.pop_front().unwrap_or_else(|| {
                panic!(
                    "byte-stream {what} of round {seq}: no frame from PE {src} — \
                     a PE skipped a send or collectives ran out of order"
                )
            });
            if frame.seq < seq {
                continue; // posted but never consumed; drop like a stale lane
            }
            assert!(
                frame.seq == seq && frame.ty == ty,
                "byte-stream {what} of round {seq}: found frame of round {} — \
                 a PE skipped a send or collectives ran out of order",
                frame.seq
            );
            return frame.bytes;
        }
    }

    /// Encode `value` once and push it to every recipient in `dsts`.
    pub(crate) fn post_value<T: Wire + 'static>(
        &self,
        src: usize,
        dsts: impl Iterator<Item = usize>,
        seq: u64,
        value: &T,
    ) {
        let ty = TypeId::of::<T>();
        let mut encoded: Option<Vec<u8>> = None;
        for dst in dsts {
            let bytes = encoded.get_or_insert_with(|| wire::encode(value)).clone();
            self.push(src, dst, seq, ty, bytes);
        }
    }

    /// Pop and decode the round-`seq` value from `src`.
    pub(crate) fn take_value<T: Wire + 'static>(
        &self,
        src: usize,
        dst: usize,
        seq: u64,
        what: &str,
    ) -> T {
        let bytes = self.pop(src, dst, seq, TypeId::of::<T>(), what);
        wire::decode(&bytes)
            .unwrap_or_else(|e| panic!("byte-stream {what} of round {seq}: decode failed: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_roundtrip() {
        let hub = ByteHub::new(2);
        hub.post_value(0, [1usize].into_iter(), 1, &vec![1u64, 2, 3]);
        let got: Vec<u64> = hub.take_value(0, 1, 1, "test");
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn stale_frames_are_discarded() {
        let hub = ByteHub::new(2);
        hub.post_value(0, [1usize].into_iter(), 1, &7u32); // never consumed
        hub.post_value(0, [1usize].into_iter(), 3, &9u32);
        let got: u32 = hub.take_value(0, 1, 3, "test");
        assert_eq!(got, 9);
    }

    #[test]
    #[should_panic(expected = "skipped a send")]
    fn missing_frame_panics() {
        let hub = ByteHub::new(2);
        let _: u32 = hub.take_value(0, 1, 1, "test");
    }

    #[test]
    #[should_panic(expected = "skipped a send")]
    fn future_frame_panics() {
        let hub = ByteHub::new(2);
        hub.post_value(0, [1usize].into_iter(), 5, &1u8);
        let _: u8 = hub.take_value(0, 1, 2, "test");
    }

    #[test]
    fn encode_once_per_recipient_set() {
        let hub = ByteHub::new(3);
        hub.post_value(0, [1usize, 2].into_iter(), 1, &String::from("x"));
        let a: String = hub.take_value(0, 1, 1, "test");
        let b: String = hub.take_value(0, 2, 1, "test");
        assert_eq!(a, "x");
        assert_eq!(b, "x");
    }
}
