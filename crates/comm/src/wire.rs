//! The `Wire` encoding layer of the transport boundary.
//!
//! Every value that crosses the byte-stream transport is encoded by a
//! [`Wire`] impl. The format is deliberately boring — it has to be
//! readable by a future out-of-process peer that shares nothing but this
//! specification:
//!
//! * **Pod-like scalars** (`u8..u128`, `i32`/`i64`, `f32`/`f64`,
//!   [`Weight`]-style newtypes in downstream crates) are fixed-width
//!   little-endian — the layout the radix sorter and the flat buffers
//!   already assume, so encoding a `&[CEdge]` is a plain field walk.
//! * **Counts and displacements** (`usize`, `Vec` lengths, `FlatBuckets`
//!   bucket counts) are LEB128 varints — the 7-bit codec of
//!   `kamsta-graph`'s compressed edge lists, which wins on the small
//!   values these overwhelmingly are.
//! * **Containers** (`Vec<T>`, `Option<T>`, tuples, `FlatBuckets<T>`)
//!   compose element encodings with varint length/count headers.
//!
//! Decoding is total: every read is bounds-checked and returns
//! [`WireError`] on truncated or malformed input instead of panicking,
//! so a corrupt frame from a (future) remote peer cannot take the
//! process down.
//!
//! ## Coalesced bucket frames
//!
//! The byte-lane collectives ship **one `CH_DATA` frame per (peer,
//! round)**: a flat exchange serializes the whole destination bucket —
//! varint element count followed by the elements ([`write_slice`]) —
//! into a single pooled buffer, and a paired flat exchange prepends the
//! sub-message `u32` count header the same way (`write_slice(sub)`
//! then `write_slice(data)`). Framing cost is therefore per peer per
//! superstep, not per value, and the fault-injection checksum of
//! `crate::fault` covers the coalesced payload as one unit. Senders
//! encode with [`encode_into`] into buffers recycled across rounds
//! (the `Comm` buffer pool), and receivers decode from borrowed
//! `&[u8]` views of the transport's own receive buffers — the data
//! path allocates nothing per value in steady state.
//!
//! The **modeled** β-cost of a collective is charged on
//! `size_of::<T>()`-based logical bytes (see [`crate::bytes_for`]), *not*
//! on the encoded length — the cost model describes the simulated
//! machine, and keeping it encoding-independent is what makes modeled
//! times bit-for-bit identical across transports.

use std::sync::Arc;

// ---------------------------------------------------------------------
// Socket frame header
// ---------------------------------------------------------------------

/// Data-plane frame of the socket transport: a collective round's
/// payload, stamped with the sender's round sequence and type tag.
pub const CH_DATA: u8 = 0;
/// Barrier-plane frame: one dissemination-barrier signal carrying the
/// sender's running clock maximum.
pub const CH_BARRIER: u8 = 1;
/// Handshake frame: rank identification during mesh construction and
/// launcher rendezvous. Never seen after the mesh is up.
pub const CH_HELLO: u8 = 2;
/// Liveness probe: a blocked PE pings the peer it is waiting on (`b` =
/// 0) and any live transport answers with a pong (`b` = 1) from its
/// receive pump — so a broken connection is discovered by the ping
/// *write* failing in O(probe interval) instead of a full io-timeout
/// expiry. Zero payload, absorbed below the collective layer.
pub const CH_PING: u8 = 3;

/// Encoded size of a [`FrameHeader`]: channel byte plus five LE fields.
pub const FRAME_HEADER_LEN: usize = 1 + 8 + 8 + 8 + 4 + 8;

/// Maximum accepted payload length of one socket frame (256 MiB). A
/// header announcing more is rejected as a protocol violation before
/// anything is allocated — corrupt length fields must not become
/// allocation bombs.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 28;

/// The fixed-width header in front of every socket-transport frame.
///
/// Layout (little-endian): `channel: u8`, `comm: u64`, `a: u64`,
/// `b: u64`, `len: u32`, `sum: u64`, followed by `len` payload bytes.
/// The meaning of `a`/`b` depends on the channel:
///
/// | channel | `a` | `b` |
/// |---|---|---|
/// | [`CH_DATA`] | round sequence | payload [`type_tag`] |
/// | [`CH_BARRIER`] | `episode << 8 \| round` | clock maximum as `f64` bits |
/// | [`CH_HELLO`] | sender's claimed rank | protocol magic |
/// | [`CH_PING`] | probe nonce | 0 = ping, 1 = pong |
///
/// `sum` is the frame checksum, stamped and verified only while fault
/// injection is armed (see `crate::fault`); it is written as 0 and
/// ignored otherwise, so the reliable-fabric fast path pays nothing but
/// the field's bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    pub channel: u8,
    /// Communicator id the frame belongs to — sub-communicators built by
    /// `Comm::split` share the PE-pair streams and demultiplex on this.
    pub comm: u64,
    pub a: u64,
    pub b: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// Fault-mode frame checksum (0 when fault hooks are not armed).
    pub sum: u64,
}

impl FrameHeader {
    /// Append the encoded header to `out`.
    pub fn write(&self, out: &mut Vec<u8>) {
        out.push(self.channel);
        out.extend_from_slice(&self.comm.to_le_bytes());
        out.extend_from_slice(&self.a.to_le_bytes());
        out.extend_from_slice(&self.b.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.sum.to_le_bytes());
    }

    /// The encoded header as a stack array — the vectored socket send
    /// path writes `[header, payload]` without assembling a frame `Vec`.
    pub fn to_array(&self) -> [u8; FRAME_HEADER_LEN] {
        let mut out = [0u8; FRAME_HEADER_LEN];
        out[0] = self.channel;
        out[1..9].copy_from_slice(&self.comm.to_le_bytes());
        out[9..17].copy_from_slice(&self.a.to_le_bytes());
        out[17..25].copy_from_slice(&self.b.to_le_bytes());
        out[25..29].copy_from_slice(&self.len.to_le_bytes());
        out[29..37].copy_from_slice(&self.sum.to_le_bytes());
        out
    }

    /// Decode a header from the first [`FRAME_HEADER_LEN`] bytes of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Self, WireError> {
        if buf.len() < FRAME_HEADER_LEN {
            return Err(WireError::Truncated);
        }
        let channel = buf[0];
        if channel > CH_PING {
            return Err(WireError::Malformed("frame channel"));
        }
        let word = |at: usize| u64::from_le_bytes(buf[at..at + 8].try_into().unwrap());
        Ok(Self {
            channel,
            comm: word(1),
            a: word(9),
            b: word(17),
            len: u32::from_le_bytes(buf[25..29].try_into().unwrap()),
            sum: word(29),
        })
    }
}

/// Split the leading frame off a receive buffer: `Ok(None)` when `buf`
/// holds only part of a frame (read more), otherwise the parsed header
/// plus the total encoded size (header + payload) to consume. Length
/// lies are rejected *before* any allocation: a header announcing more
/// than [`MAX_FRAME_PAYLOAD`] is `Malformed`, and a plausible length is
/// only trusted once that many bytes have actually arrived. This is the
/// exact splitter the socket pump runs on raw network input, exported
/// so the fuzz suite can hammer it with truncated/bit-flipped/lying
/// frames directly.
pub fn split_frame(buf: &[u8]) -> Result<Option<(FrameHeader, usize)>, WireError> {
    if buf.len() < FRAME_HEADER_LEN {
        return Ok(None);
    }
    let h = FrameHeader::parse(buf)?;
    if h.len > MAX_FRAME_PAYLOAD {
        return Err(WireError::Malformed("oversized frame"));
    }
    let total = FRAME_HEADER_LEN + h.len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some((h, total)))
}

/// A stable-within-one-binary numeric tag for type `T` — the socket
/// transport's frame type stamp. Derived by hashing the `TypeId` with a
/// fixed-key FNV-1a, so it is identical across the processes of one
/// launcher invocation (they all exec the same binary) without relying
/// on `TypeId`'s unstable internal representation crossing the wire
/// directly.
pub fn type_tag<T: 'static>() -> u64 {
    struct Fnv(u64);
    impl std::hash::Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
    }
    use std::hash::{Hash, Hasher};
    let mut h = Fnv(0xCBF2_9CE4_8422_2325);
    std::any::TypeId::of::<T>().hash(&mut h);
    h.finish()
}

/// Errors surfaced by checked wire decoding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated,
    /// A varint ran past the 10-byte / 64-bit limit.
    VarintOverflow,
    /// A structurally invalid encoding (bad tag, count mismatch, …).
    Malformed(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "wire input truncated"),
            WireError::VarintOverflow => write!(f, "varint exceeds 64 bits"),
            WireError::Malformed(what) => write!(f, "malformed wire value: {what}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append `x` as a LEB128-style 7-bit varint (at most 10 bytes).
#[inline]
pub fn write_uvarint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Checked varint decode from `buf` starting at `*pos`, advancing it.
///
/// Rejects truncated input ([`WireError::Truncated`]) and continuations
/// past the 64-bit capacity ([`WireError::VarintOverflow`]) — including
/// the 10-byte encodings whose final byte carries bits above 2^63.
#[inline]
pub fn try_read_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or(WireError::Truncated)?;
        *pos += 1;
        let low = (byte & 0x7F) as u64;
        if shift >= 64 || (shift == 63 && low > 1) {
            return Err(WireError::VarintOverflow);
        }
        x |= low << shift;
        if byte & 0x80 == 0 {
            return Ok(x);
        }
        shift += 7;
    }
}

/// A bounds-checked cursor over an encoded buffer.
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[inline]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Take the next `n` raw bytes.
    #[inline]
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Take a fixed-size array of raw bytes.
    #[inline]
    pub fn take_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }

    /// Decode a varint.
    #[inline]
    pub fn uvarint(&mut self) -> Result<u64, WireError> {
        try_read_uvarint(self.buf, &mut self.pos)
    }

    /// Decode a varint-encoded length, rejecting lengths that could not
    /// possibly fit in the remaining input (`min_elem_bytes` is a lower
    /// bound on one element's encoding) — a cheap guard against
    /// allocation bombs from corrupt frames. Zero-width elements (`()`)
    /// occupy no input and allocate nothing, so their counts pass
    /// unchecked.
    #[inline]
    pub fn length(&mut self, min_elem_bytes: usize) -> Result<usize, WireError> {
        let n = self.uvarint()?;
        let n = usize::try_from(n).map_err(|_| WireError::Malformed("length exceeds usize"))?;
        if min_elem_bytes > 0 && n.saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(WireError::Truncated);
        }
        Ok(n)
    }

    /// Assert the value consumed the whole buffer (frame framing is
    /// exact: one value per frame).
    pub fn finish(self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::Malformed("trailing bytes after value"))
        }
    }
}

/// A value that can cross the byte-stream transport.
///
/// Implementations must round-trip: `decode(encode(x)) == x`, consuming
/// exactly the bytes `encode` produced.
pub trait Wire: Sized {
    /// Append this value's encoding to `out`.
    fn wire_write(&self, out: &mut Vec<u8>);
    /// Decode one value from the reader.
    fn wire_read(r: &mut WireReader<'_>) -> Result<Self, WireError>;
    /// A lower bound on the encoded size of any value of this type, used
    /// to sanity-check length headers before allocating. Conservative
    /// (1) by default.
    #[inline]
    fn wire_min_size() -> usize {
        1
    }

    /// Append the encodings of every element of `xs`. The default is
    /// the element-wise loop; byte slices override it with one
    /// `extend_from_slice` (their encoding *is* their memory).
    #[inline]
    fn wire_write_many(xs: &[Self], out: &mut Vec<u8>) {
        for x in xs {
            x.wire_write(out);
        }
    }
}

/// Encode one value into a fresh buffer.
pub fn encode<T: Wire>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.wire_write(&mut out);
    out
}

/// Encode one value into a reused buffer: `out` is cleared, then filled
/// with exactly the bytes [`encode`] would produce — but the buffer's
/// capacity is retained, so a pool of these amortises every allocation
/// of the send path away after the first round.
pub fn encode_into<T: Wire>(value: &T, out: &mut Vec<u8>) {
    out.clear();
    value.wire_write(out);
}

/// Decode one value, requiring the buffer to be consumed exactly.
pub fn decode<T: Wire>(buf: &[u8]) -> Result<T, WireError> {
    let mut r = WireReader::new(buf);
    let v = T::wire_read(&mut r)?;
    r.finish()?;
    Ok(v)
}

/// Append a varint count followed by the elements of `s`.
pub fn write_slice<T: Wire>(out: &mut Vec<u8>, s: &[T]) {
    write_uvarint(out, s.len() as u64);
    T::wire_write_many(s, out);
}

/// Decode a counted slice written by [`write_slice`].
pub fn read_vec<T: Wire>(r: &mut WireReader<'_>) -> Result<Vec<T>, WireError> {
    let n = r.length(T::wire_min_size())?;
    let mut v = Vec::with_capacity(n);
    for _ in 0..n {
        v.push(T::wire_read(r)?);
    }
    Ok(v)
}

macro_rules! wire_le_int {
    ($($t:ty),*) => {$(
        impl Wire for $t {
            #[inline]
            fn wire_write(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn wire_read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(<$t>::from_le_bytes(r.take_array()?))
            }
            #[inline]
            fn wire_min_size() -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}

wire_le_int!(u16, u32, u64, u128, i8, i16, i32, i64, i128);

/// `u8` gets the LE-int impl plus a bulk path: a byte slice's encoding
/// is its memory, so `write_slice(&[u8])` is one memcpy.
impl Wire for u8 {
    #[inline]
    fn wire_write(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    #[inline]
    fn wire_read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(r.take_array::<1>()?[0])
    }
    #[inline]
    fn wire_min_size() -> usize {
        1
    }
    #[inline]
    fn wire_write_many(xs: &[Self], out: &mut Vec<u8>) {
        out.extend_from_slice(xs);
    }
}

impl Wire for f32 {
    #[inline]
    fn wire_write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    #[inline]
    fn wire_read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f32::from_bits(u32::from_le_bytes(r.take_array()?)))
    }
    #[inline]
    fn wire_min_size() -> usize {
        4
    }
}

impl Wire for f64 {
    #[inline]
    fn wire_write(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
    #[inline]
    fn wire_read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_bits(u64::from_le_bytes(r.take_array()?)))
    }
    #[inline]
    fn wire_min_size() -> usize {
        8
    }
}

/// `usize` values are counts/ranks/displacements — varint wins.
impl Wire for usize {
    #[inline]
    fn wire_write(&self, out: &mut Vec<u8>) {
        write_uvarint(out, *self as u64);
    }
    #[inline]
    fn wire_read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        usize::try_from(r.uvarint()?).map_err(|_| WireError::Malformed("usize overflow"))
    }
}

impl Wire for bool {
    #[inline]
    fn wire_write(&self, out: &mut Vec<u8>) {
        out.push(*self as u8);
    }
    #[inline]
    fn wire_read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_array::<1>()?[0] {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError::Malformed("bool tag")),
        }
    }
}

impl Wire for () {
    #[inline]
    fn wire_write(&self, _out: &mut Vec<u8>) {}
    #[inline]
    fn wire_read(_r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
    #[inline]
    fn wire_min_size() -> usize {
        0
    }
}

macro_rules! wire_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Wire),+> Wire for ($($name,)+) {
            #[inline]
            fn wire_write(&self, out: &mut Vec<u8>) {
                $(self.$idx.wire_write(out);)+
            }
            #[inline]
            fn wire_read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
                Ok(($($name::wire_read(r)?,)+))
            }
            #[inline]
            fn wire_min_size() -> usize {
                0 $(+ $name::wire_min_size())+
            }
        }
    };
}

wire_tuple!(A: 0);
wire_tuple!(A: 0, B: 1);
wire_tuple!(A: 0, B: 1, C: 2);
wire_tuple!(A: 0, B: 1, C: 2, D: 3);
wire_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl<T: Wire> Wire for Option<T> {
    fn wire_write(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.wire_write(out);
            }
        }
    }
    fn wire_read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.take_array::<1>()?[0] {
            0 => Ok(None),
            1 => Ok(Some(T::wire_read(r)?)),
            _ => Err(WireError::Malformed("Option tag")),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn wire_write(&self, out: &mut Vec<u8>) {
        write_slice(out, self);
    }
    fn wire_read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        read_vec(r)
    }
}

impl Wire for String {
    fn wire_write(&self, out: &mut Vec<u8>) {
        write_uvarint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
    fn wire_read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.length(1)?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::Malformed("non-UTF-8 string"))
    }
}

/// `Arc<T>` encodes as its inner value (decode re-allocates; only used
/// by replicated read-mostly payloads).
impl<T: Wire> Wire for Arc<T> {
    fn wire_write(&self, out: &mut Vec<u8>) {
        (**self).wire_write(out);
    }
    fn wire_read(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Arc::new(T::wire_read(r)?))
    }
    #[inline]
    fn wire_min_size() -> usize {
        T::wire_min_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(v: T) {
        let buf = encode(&v);
        assert_eq!(decode::<T>(&buf).unwrap(), v);
    }

    #[test]
    fn scalar_roundtrips() {
        roundtrip(0u8);
        roundtrip(u8::MAX);
        roundtrip(u16::MAX);
        roundtrip(123u32);
        roundtrip(u64::MAX);
        roundtrip(u128::MAX);
        roundtrip(-7i32);
        roundtrip(i64::MIN);
        roundtrip(3.25f32);
        roundtrip(-0.0f64);
        roundtrip(f64::INFINITY);
        roundtrip(true);
        roundtrip(false);
        roundtrip(());
        roundtrip(usize::MAX);
    }

    #[test]
    fn nan_survives_by_bits() {
        let buf = encode(&f64::NAN);
        assert!(decode::<f64>(&buf).unwrap().is_nan());
    }

    #[test]
    fn container_roundtrips() {
        roundtrip(Some(42u64));
        roundtrip(None::<u64>);
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip(vec![(); 5]); // zero-width elements decode, not Truncated
        roundtrip((1u32, 2u64, 3usize));
        roundtrip((1u8, (2u16, vec![3u32]), Some(4u64), false, 5i64));
        roundtrip(String::from("héllo"));
        roundtrip(vec![Some((1u64, 2u32)), None]);
        assert_eq!(*decode::<Arc<u64>>(&encode(&Arc::new(9u64))).unwrap(), 9);
    }

    #[test]
    fn uvarint_boundaries() {
        for k in 0..10u32 {
            for x in [
                (1u64 << (7 * k)).wrapping_sub(1),
                1u64.checked_shl(7 * k).unwrap_or(0),
            ] {
                let mut buf = Vec::new();
                write_uvarint(&mut buf, x);
                let mut pos = 0;
                assert_eq!(try_read_uvarint(&buf, &mut pos), Ok(x), "x={x}");
                assert_eq!(pos, buf.len());
            }
        }
        let mut buf = Vec::new();
        write_uvarint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
        let mut pos = 0;
        assert_eq!(try_read_uvarint(&buf, &mut pos), Ok(u64::MAX));
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        assert_eq!(decode::<u64>(&[1, 2, 3]), Err(WireError::Truncated));
        assert_eq!(
            try_read_uvarint(&[0x80, 0x80], &mut 0),
            Err(WireError::Truncated)
        );
        // Vec claiming a huge length over a short buffer.
        let mut bomb = Vec::new();
        write_uvarint(&mut bomb, 1 << 40);
        assert_eq!(decode::<Vec<u64>>(&bomb), Err(WireError::Truncated));
    }

    #[test]
    fn varint_overflow_is_detected() {
        // 11 continuation bytes.
        let over = [0xFFu8; 11];
        assert_eq!(
            try_read_uvarint(&over, &mut 0),
            Err(WireError::VarintOverflow)
        );
        // 10-byte encoding whose last byte has bits beyond 2^63.
        let mut buf = vec![0xFF; 9];
        buf.push(0x02);
        assert_eq!(
            try_read_uvarint(&buf, &mut 0),
            Err(WireError::VarintOverflow)
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = encode(&7u32);
        buf.push(0);
        assert_eq!(
            decode::<u32>(&buf),
            Err(WireError::Malformed("trailing bytes after value"))
        );
    }

    #[test]
    fn malformed_tags_rejected() {
        assert_eq!(decode::<bool>(&[2]), Err(WireError::Malformed("bool tag")));
        assert_eq!(
            decode::<Option<u8>>(&[9, 0]),
            Err(WireError::Malformed("Option tag"))
        );
    }

    #[test]
    fn frame_header_roundtrips() {
        let h = FrameHeader {
            channel: CH_BARRIER,
            comm: u64::MAX - 3,
            a: 0x0102_0304,
            b: 7.5f64.to_bits(),
            len: 12345,
            sum: 0xDEAD_BEEF_F00D_CAFE,
        };
        let mut buf = Vec::new();
        h.write(&mut buf);
        assert_eq!(buf.len(), FRAME_HEADER_LEN);
        assert_eq!(FrameHeader::parse(&buf), Ok(h));
    }

    #[test]
    fn frame_header_rejects_garbage() {
        assert_eq!(
            FrameHeader::parse(&[0u8; FRAME_HEADER_LEN - 1]),
            Err(WireError::Truncated)
        );
        let mut buf = vec![9u8; FRAME_HEADER_LEN]; // invalid channel
        assert_eq!(
            FrameHeader::parse(&buf),
            Err(WireError::Malformed("frame channel"))
        );
        buf[0] = CH_DATA;
        assert!(FrameHeader::parse(&buf).is_ok());
        buf[0] = CH_PING;
        assert!(FrameHeader::parse(&buf).is_ok());
    }

    #[test]
    fn split_frame_rejects_length_lies_before_allocating() {
        let mut buf = Vec::new();
        FrameHeader {
            channel: CH_DATA,
            comm: 0,
            a: 1,
            b: 2,
            len: 3,
            sum: 0,
        }
        .write(&mut buf);
        buf.extend_from_slice(&[7, 8, 9]);
        // Complete frame splits; a strict prefix asks for more input.
        let (h, total) = split_frame(&buf).unwrap().expect("complete frame");
        assert_eq!((h.a, h.b, total), (1, 2, buf.len()));
        for cut in 0..buf.len() {
            assert_eq!(split_frame(&buf[..cut]).unwrap(), None, "cut={cut}");
        }
        // A header lying about its length: oversized is rejected before
        // any allocation, plausible-but-unfulfilled waits for bytes.
        buf[25..29].copy_from_slice(&(MAX_FRAME_PAYLOAD + 1).to_le_bytes());
        assert_eq!(
            split_frame(&buf),
            Err(WireError::Malformed("oversized frame"))
        );
        buf[25..29].copy_from_slice(&1000u32.to_le_bytes());
        assert_eq!(split_frame(&buf), Ok(None));
    }

    #[test]
    fn type_tags_distinguish_types_and_stay_stable() {
        assert_eq!(type_tag::<Vec<u64>>(), type_tag::<Vec<u64>>());
        assert_ne!(type_tag::<Vec<u64>>(), type_tag::<Vec<u32>>());
        assert_ne!(type_tag::<u64>(), type_tag::<i64>());
    }
}
