//! Flat zero-copy communication buffers.
//!
//! [`FlatBuckets`] is the MPI `sdispls`/`rdispls` layout: one contiguous
//! payload vector plus a displacement array, replacing the
//! allocation-heavy `Vec<Vec<T>>` bucket representation on every exchange
//! of the MST pipeline. Construction is a count-then-scatter pass — a
//! counting pass over the destinations, a prefix sum, and a stable
//! index-gather pass that materialises the bucket-ordered payload in one
//! allocation (the source vector lives until the gather finishes, so
//! peak memory is twice the payload for scatter-built buffers). No
//! per-bucket vectors, no reallocation, and flattening the received
//! payload back into one sequence ([`FlatBuckets::into_payload`]) is
//! free. Payloads already grouped by destination skip the scatter
//! entirely via [`FlatBuckets::from_counts`].

/// Payload size (elements) below which [`FlatBuckets::from_dests`]
/// always runs sequentially — per element the build is one histogram
/// bump and one scatter copy, so the parallel plan's extra pass and
/// offset bookkeeping only pay off on large exchanges even with real
/// cores behind the pool.
const PAR_BUILD_CUTOFF: usize = 64 * 1024;

/// Raw mutable pointer that may cross threads: the parallel scatter
/// writes disjoint index ranges, so sharing the base pointer is sound.
struct SendMutPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendMutPtr<T> {}
unsafe impl<T: Send> Sync for SendMutPtr<T> {}

/// A bucketed sequence stored contiguously: bucket `j` is
/// `data[displs[j]..displs[j + 1]]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FlatBuckets<T> {
    data: Vec<T>,
    /// `buckets + 1` monotone offsets into `data`; `displs[0] == 0` and
    /// `displs[buckets] == data.len()`.
    displs: Vec<usize>,
}

impl<T> FlatBuckets<T> {
    /// `buckets` empty buckets.
    pub fn empty(buckets: usize) -> Self {
        Self {
            data: Vec::new(),
            displs: vec![0; buckets + 1],
        }
    }

    /// Wrap an already bucket-ordered payload: bucket `j` holds the next
    /// `counts[j]` elements of `data`. The counts must cover the payload
    /// exactly.
    pub fn from_counts(data: Vec<T>, counts: &[usize]) -> Self {
        let mut displs = Vec::with_capacity(counts.len() + 1);
        let mut acc = 0usize;
        displs.push(0);
        for &c in counts {
            acc += c;
            displs.push(acc);
        }
        assert_eq!(acc, data.len(), "counts must cover the payload exactly");
        Self { data, displs }
    }

    /// Count-then-scatter from explicit per-element destinations:
    /// `dests[k]` is the bucket of `items[k]`. A counting pass fills the
    /// displacement array; a stable index-gather pass then materialises
    /// the payload in bucket order (elements of one bucket keep their
    /// input order, which the exchange determinism tests rely on). The
    /// only allocations are the `O(p)` offset arrays, one `u32` index
    /// buffer and the output payload — no per-bucket vectors.
    ///
    /// When the ambient rayon width exceeds one and the payload is
    /// large, the count and scatter passes run in parallel over fixed
    /// contiguous input chunks. Each chunk counts its own histogram,
    /// a sequential combine derives per-`(chunk, bucket)` start offsets,
    /// and the chunks then scatter into disjoint index ranges. Because
    /// chunks are contiguous input ranges processed in input order, the
    /// result is bit-identical to the sequential pass for every chunk
    /// count — stability and determinism are preserved by construction.
    pub fn from_dests(buckets: usize, items: Vec<T>, dests: &[u32]) -> Self
    where
        T: Clone + Send + Sync,
    {
        assert_eq!(items.len(), dests.len());
        let n = items.len();
        if rayon::current_num_threads() > 1 && n >= PAR_BUILD_CUTOFF {
            return Self::from_dests_par(buckets, items, dests);
        }
        let mut displs = vec![0usize; buckets + 1];
        for &d in dests {
            displs[d as usize + 1] += 1;
        }
        for j in 0..buckets {
            displs[j + 1] += displs[j];
        }
        let mut pos = displs[..buckets].to_vec();
        let mut idx = vec![0u32; items.len()];
        for (k, &d) in dests.iter().enumerate() {
            idx[pos[d as usize]] = k as u32;
            pos[d as usize] += 1;
        }
        let data: Vec<T> = idx.iter().map(|&k| items[k as usize].clone()).collect();
        Self { data, displs }
    }

    /// Parallel count → offsets → scatter. Chunk `c` owns the input
    /// range `[c·CHUNK, (c+1)·CHUNK)`; within a bucket, chunk order ==
    /// input order, so the scatter is stable for any chunk count.
    fn from_dests_par(buckets: usize, items: Vec<T>, dests: &[u32]) -> Self
    where
        T: Clone + Send + Sync,
    {
        use rayon::prelude::*;
        const CHUNK: usize = 8192;
        let n = items.len();
        let chunks = n.div_ceil(CHUNK);
        // Pass 1: per-chunk histograms, computed independently.
        let hists: Vec<Vec<usize>> = (0..chunks)
            .into_par_iter()
            .map(|c| {
                let lo = c * CHUNK;
                let hi = n.min(lo + CHUNK);
                let mut h = vec![0usize; buckets];
                for &d in &dests[lo..hi] {
                    h[d as usize] += 1;
                }
                h
            })
            .collect();
        // Combine: global displacements plus the deterministic start
        // offset of every (chunk, bucket) cell — bucket base, then the
        // counts of all earlier chunks for the same bucket.
        let mut displs = vec![0usize; buckets + 1];
        for h in &hists {
            for (j, &c) in h.iter().enumerate() {
                displs[j + 1] += c;
            }
        }
        for j in 0..buckets {
            displs[j + 1] += displs[j];
        }
        let mut starts = vec![0usize; chunks * buckets];
        let mut run = displs[..buckets].to_vec();
        for (c, h) in hists.iter().enumerate() {
            for j in 0..buckets {
                starts[c * buckets + j] = run[j];
                run[j] += h[j];
            }
        }
        // Pass 2: scatter. Chunks write disjoint positions (each input
        // index belongs to exactly one chunk and each (chunk, bucket)
        // cell is a private range), so raw writes race-free.
        let mut idx = vec![0u32; n];
        let idx_ptr = SendMutPtr(idx.as_mut_ptr());
        (0..chunks).into_par_iter().for_each(|c| {
            let _ = &idx_ptr;
            let lo = c * CHUNK;
            let hi = n.min(lo + CHUNK);
            let mut pos = starts[c * buckets..(c + 1) * buckets].to_vec();
            for (k, &d) in dests[lo..hi].iter().enumerate() {
                let j = d as usize;
                unsafe { idx_ptr.0.add(pos[j]).write((lo + k) as u32) };
                pos[j] += 1;
            }
        });
        // Pass 3: ordered parallel gather.
        let data: Vec<T> = idx.par_iter().map(|&k| items[k as usize].clone()).collect();
        Self { data, displs }
    }

    /// Count-then-scatter with a destination function.
    pub fn from_dest_fn(buckets: usize, items: Vec<T>, dest: impl Fn(&T) -> usize) -> Self
    where
        T: Clone + Send + Sync,
    {
        let dests: Vec<u32> = items.iter().map(|x| dest(x) as u32).collect();
        Self::from_dests(buckets, items, &dests)
    }

    /// Count-then-scatter from `(destination, item)` pairs.
    pub fn from_pairs(buckets: usize, pairs: Vec<(usize, T)>) -> Self
    where
        T: Clone + Send + Sync,
    {
        let dests: Vec<u32> = pairs.iter().map(|(d, _)| *d as u32).collect();
        let items: Vec<T> = pairs.into_iter().map(|(_, x)| x).collect();
        Self::from_dests(buckets, items, &dests)
    }

    /// Convert from the nested representation (tests / interop).
    pub fn from_nested(nested: Vec<Vec<T>>) -> Self {
        let counts: Vec<usize> = nested.iter().map(Vec::len).collect();
        let mut data = Vec::with_capacity(counts.iter().sum());
        for b in nested {
            data.extend(b);
        }
        Self::from_counts(data, &counts)
    }

    /// Number of buckets.
    #[inline]
    pub fn buckets(&self) -> usize {
        self.displs.len() - 1
    }

    /// Total number of elements across all buckets.
    #[inline]
    pub fn total_len(&self) -> usize {
        self.data.len()
    }

    /// True if no bucket holds any element.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of elements in bucket `j`.
    #[inline]
    pub fn count(&self, j: usize) -> usize {
        self.displs[j + 1] - self.displs[j]
    }

    /// Bucket `j` as a slice.
    #[inline]
    pub fn bucket(&self, j: usize) -> &[T] {
        &self.data[self.displs[j]..self.displs[j + 1]]
    }

    /// The displacement array (`buckets + 1` entries).
    #[inline]
    pub fn displs(&self) -> &[usize] {
        &self.displs
    }

    /// The contiguous payload in bucket order.
    #[inline]
    pub fn payload(&self) -> &[T] {
        &self.data
    }

    /// Flatten into the payload (bucket order). Free: the payload *is*
    /// the storage.
    #[inline]
    pub fn into_payload(self) -> Vec<T> {
        self.data
    }

    /// Iterate buckets as slices, ascending bucket index.
    pub fn iter_buckets(&self) -> impl Iterator<Item = &[T]> {
        (0..self.buckets()).map(move |j| self.bucket(j))
    }

    /// Map every element, preserving the bucket structure.
    pub fn map<U>(self, f: impl FnMut(T) -> U) -> FlatBuckets<U> {
        FlatBuckets {
            data: self.data.into_iter().map(f).collect(),
            displs: self.displs,
        }
    }

    /// Back to the nested representation (tests / interop).
    pub fn to_nested(&self) -> Vec<Vec<T>>
    where
        T: Clone,
    {
        self.iter_buckets().map(<[T]>::to_vec).collect()
    }
}

/// Wire format: varint bucket count, varint per-bucket element counts
/// (the `sdispls` array as deltas — overwhelmingly small), then the
/// contiguous payload. This is the framing the byte-stream transport
/// uses for whole-structure sends (pairwise hypercube hops); per-bucket
/// scatter sends use the slice framing of [`crate::wire::write_slice`].
impl<T: crate::wire::Wire> crate::wire::Wire for FlatBuckets<T> {
    fn wire_write(&self, out: &mut Vec<u8>) {
        crate::wire::write_uvarint(out, self.buckets() as u64);
        for j in 0..self.buckets() {
            crate::wire::write_uvarint(out, self.count(j) as u64);
        }
        for x in &self.data {
            x.wire_write(out);
        }
    }

    fn wire_read(r: &mut crate::wire::WireReader<'_>) -> Result<Self, crate::wire::WireError> {
        let buckets = r.length(1)?;
        let mut displs = Vec::with_capacity(buckets + 1);
        displs.push(0usize);
        let mut acc = 0usize;
        for _ in 0..buckets {
            let c = r.length(T::wire_min_size())?;
            acc = acc
                .checked_add(c)
                .ok_or(crate::wire::WireError::Malformed("bucket count overflow"))?;
            displs.push(acc);
        }
        if T::wire_min_size() > 0 && acc.saturating_mul(T::wire_min_size()) > r.remaining() {
            return Err(crate::wire::WireError::Truncated);
        }
        let mut data = Vec::with_capacity(acc);
        for _ in 0..acc {
            data.push(T::wire_read(r)?);
        }
        Ok(Self { data, displs })
    }
}

/// Sequential builder for a [`FlatBuckets`]: append elements of bucket
/// 0, seal it, append bucket 1, … Used on receive paths where bucket
/// contents arrive as slices of peers' published buffers.
pub struct FlatBuilder<T> {
    data: Vec<T>,
    displs: Vec<usize>,
}

impl<T> FlatBuilder<T> {
    pub fn with_capacity(elements: usize, buckets: usize) -> Self {
        let mut displs = Vec::with_capacity(buckets + 1);
        displs.push(0);
        Self {
            data: Vec::with_capacity(elements),
            displs,
        }
    }

    /// Append elements to the current (unsealed) bucket.
    #[inline]
    pub fn extend_from_slice(&mut self, s: &[T])
    where
        T: Clone,
    {
        self.data.extend_from_slice(s);
    }

    /// Append one element to the current bucket.
    #[inline]
    pub fn push(&mut self, v: T) {
        self.data.push(v);
    }

    /// Decode a [`crate::wire::write_slice`]-framed bucket straight into
    /// the current (unsealed) bucket: elements land in the final payload
    /// allocation as they decode, with no intermediate per-peer `Vec`.
    /// This is the byte lane's receive path for flat exchanges — the
    /// reader borrows the transport's recycled frame buffer, so the only
    /// copy is wire bytes → typed payload. The length prefix is bounds-
    /// checked against the remaining bytes before any reservation.
    pub fn extend_from_wire(
        &mut self,
        r: &mut crate::wire::WireReader<'_>,
    ) -> Result<usize, crate::wire::WireError>
    where
        T: crate::wire::Wire,
    {
        let n = r.length(T::wire_min_size())?;
        self.data.reserve(n);
        for _ in 0..n {
            self.data.push(T::wire_read(r)?);
        }
        Ok(n)
    }

    /// Close the current bucket; subsequent elements go to the next one.
    #[inline]
    pub fn seal(&mut self) {
        self.displs.push(self.data.len());
    }

    /// Finish with exactly `buckets` buckets (trailing empties added).
    pub fn finish(mut self, buckets: usize) -> FlatBuckets<T> {
        assert!(self.displs.len() <= buckets + 1, "sealed too many buckets");
        while self.displs.len() < buckets + 1 {
            self.displs.push(self.data.len());
        }
        FlatBuckets {
            data: self.data,
            displs: self.displs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dests_scatters_stably_into_bucket_order() {
        let items = vec![10u64, 21, 12, 23, 14, 20];
        let dests = vec![1u32, 2, 1, 2, 1, 2];
        let fb = FlatBuckets::from_dests(4, items, &dests);
        assert_eq!(fb.buckets(), 4);
        assert_eq!(fb.count(0), 0);
        assert_eq!(fb.count(3), 0);
        // Stable: input order preserved within each bucket.
        assert_eq!(fb.bucket(1), &[10, 12, 14]);
        assert_eq!(fb.bucket(2), &[21, 23, 20]);
        assert_eq!(fb.total_len(), 6);
        assert_eq!(fb.payload(), &[10, 12, 14, 21, 23, 20]);
    }

    #[test]
    fn parallel_build_matches_sequential_bit_for_bit() {
        let buckets = 7usize;
        let n = 100_000u64; // above PAR_BUILD_CUTOFF
        let items: Vec<u64> = (0..n)
            .map(|k| k.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let dests: Vec<u32> = items.iter().map(|&x| (x % buckets as u64) as u32).collect();
        let width = |t: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(t)
                .build()
                .unwrap()
        };
        let seq = width(1).install(|| FlatBuckets::from_dests(buckets, items.clone(), &dests));
        for t in [2usize, 8] {
            let par = width(t).install(|| FlatBuckets::from_dests(buckets, items.clone(), &dests));
            assert_eq!(par, seq, "width {t} must scatter identically");
        }
    }

    #[test]
    fn nested_roundtrip() {
        let nested = vec![vec![1u32, 2], vec![], vec![3], vec![4, 5, 6]];
        let fb = FlatBuckets::from_nested(nested.clone());
        assert_eq!(fb.to_nested(), nested);
        assert_eq!(fb.displs(), &[0, 2, 2, 3, 6]);
        assert_eq!(fb.into_payload(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn builder_pads_trailing_empties() {
        let mut b = FlatBuilder::with_capacity(4, 5);
        b.extend_from_slice(&[1u8, 2]);
        b.seal();
        b.push(3);
        b.seal();
        let fb = b.finish(5);
        assert_eq!(fb.buckets(), 5);
        assert_eq!(fb.bucket(0), &[1, 2]);
        assert_eq!(fb.bucket(1), &[3]);
        for j in 2..5 {
            assert!(fb.bucket(j).is_empty());
        }
    }

    #[test]
    fn from_counts_checks_coverage() {
        let fb = FlatBuckets::from_counts(vec![7u16, 8, 9], &[1, 0, 2]);
        assert_eq!(fb.bucket(0), &[7]);
        assert_eq!(fb.bucket(2), &[8, 9]);
    }

    #[test]
    #[should_panic(expected = "cover the payload")]
    fn from_counts_rejects_mismatch() {
        let _ = FlatBuckets::from_counts(vec![1u8], &[2]);
    }

    #[test]
    fn empty_has_no_elements() {
        let fb = FlatBuckets::<u64>::empty(3);
        assert!(fb.is_empty());
        assert_eq!(fb.buckets(), 3);
        assert_eq!(fb.iter_buckets().map(<[u64]>::len).sum::<usize>(), 0);
    }
}
