//! Typed, epoch-stamped exchange cells — the blackboard the collectives
//! publish through.
//!
//! The previous substrate stored every published value as a
//! `Mutex<Option<Box<dyn Any + Send>>>`: one heap allocation to box the
//! value, a mutex acquisition per slot access, a `downcast` per read, and
//! a five-step **two-superstep** discipline (publish → barrier → read →
//! barrier → clear) whose second barrier existed only so publishers knew
//! their slot could be reused.
//!
//! This module replaces all of that with **typed cell sets**: for each
//! payload type `T`, a [`CellRegistry`] lazily creates one array of
//! cache-line-padded [`ExchangeCell<T>`]s (one per PE). Values are moved
//! into the cell in place — no boxing, no downcasting, and no lock on the
//! hot path (the registry's mutex is touched once per *type*, not per
//! access; each `Comm` handle caches the `Arc` thereafter).
//!
//! ## Single-superstep protocol
//!
//! Every use of a cell set is one *round*, numbered by a per-PE epoch
//! counter that advances identically on all PEs (collectives are called
//! in the same order on every PE — standard SPMD discipline). A round is:
//!
//! 1. publish: write the value into your own cell's `epoch & 1` lane,
//!    then store the epoch stamp (Release);
//! 2. one barrier;
//! 3. read peers' cells directly (`&T`, stamp-validated) or move values
//!    out ([`Round::take`]); **no second barrier, no clear**.
//!
//! Why this is safe: a reader of round `e` holds its references strictly
//! between the barriers of rounds `e` and `e + 1` (its next use of the
//! set). A publisher can only overwrite lane `e & 1` in round `e + 2`,
//! and it reaches that publish only after passing the round-`e + 1`
//! barrier — which happens-after *every* PE arrived at that barrier, i.e.
//! after every reader of round `e` finished. The epoch stamp turns this
//! argument into a runtime check: `Round::read`/`take` assert the lane
//! carries exactly the expected epoch, so any protocol violation (a
//! missing publish, a skipped collective on one PE, an out-of-order
//! round) fails loudly instead of returning torn data.
//!
//! Values that are published but never taken (e.g. an `exchange` nobody
//! listens to) simply stay in their lane and are dropped when the lane is
//! reused two rounds later, or when the machine run ends.

use parking_lot::Mutex;
use std::any::{Any, TypeId};
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One PE's publication cell for payload type `T`: two value lanes
/// (epoch parity) with epoch stamps, padded so neighbouring PEs' cells
/// never share a cache line.
#[repr(align(128))]
pub(crate) struct ExchangeCell<T> {
    stamps: [AtomicU64; 2],
    values: [UnsafeCell<Option<T>>; 2],
}

// Safety: lane access is serialised by the single-superstep protocol
// (writes before a barrier, reads after it, reuse two rounds later) —
// see the module docs. `T: Send` suffices for the cell to be shared:
// values only *move* across threads through `publish`/`take`; methods
// that hand out `&T` across threads additionally require `T: Sync`.
unsafe impl<T: Send> Sync for ExchangeCell<T> {}

impl<T> ExchangeCell<T> {
    fn new() -> Self {
        Self {
            stamps: [AtomicU64::new(0), AtomicU64::new(0)],
            values: [UnsafeCell::new(None), UnsafeCell::new(None)],
        }
    }

    /// Publish `value` for round `e` (called by the owning PE only,
    /// before the round's barrier).
    fn publish(&self, e: u64, value: T) {
        let lane = (e & 1) as usize;
        // Safety: any reader of this lane finished two rounds ago (module
        // docs); the owning PE is the only writer.
        unsafe {
            *self.values[lane].get() = Some(value);
        }
        self.stamps[lane].store(e, Ordering::Release);
    }

    /// Validate the stamp of round `e`'s lane and panic with a protocol
    /// diagnosis if it does not match.
    fn check_stamp(&self, e: u64, what: &str) -> usize {
        let lane = (e & 1) as usize;
        let stamp = self.stamps[lane].load(Ordering::Acquire);
        assert!(
            stamp == e,
            "exchange-cell {what} of epoch {e} found stamp {stamp}: \
             a PE skipped a publish or collectives ran out of order"
        );
        lane
    }

    /// Borrow the value published for round `e`. Called after the round's
    /// barrier; the reference must be dropped before this PE's next use
    /// of the same cell set (enforced by `Round`'s borrow).
    fn read(&self, e: u64) -> &T
    where
        T: Sync,
    {
        let lane = self.check_stamp(e, "read");
        // Safety: stamp == e proves the publish of round e is visible
        // (Acquire pairs with the publisher's Release), and no write can
        // touch this lane until round e + 2.
        unsafe { (*self.values[lane].get()).as_ref() }
            .expect("exchange cell empty despite matching stamp")
    }

    /// Move the value published for round `e` out of the cell. At most
    /// one PE may take from a given cell per round (the protocol's
    /// designated receiver).
    fn take(&self, e: u64) -> T {
        let lane = self.check_stamp(e, "take");
        // Safety: as in `read`, plus take-exclusivity: only the
        // designated receiver of this round touches the Option.
        unsafe { (*self.values[lane].get()).take() }
            .unwrap_or_else(|| panic!("exchange cell taken twice in epoch {e}"))
    }
}

/// The per-type cell array: one [`ExchangeCell<T>`] per PE.
pub(crate) struct CellSet<T> {
    cells: Box<[ExchangeCell<T>]>,
}

impl<T> CellSet<T> {
    fn new(p: usize) -> Self {
        Self {
            cells: (0..p).map(|_| ExchangeCell::new()).collect(),
        }
    }
}

/// Lazily-populated map from payload type to its [`CellSet`]. Shared by
/// all PEs of a communicator; the mutex is hit once per (PE, type) —
/// every subsequent round goes through the `Comm` handle's local cache.
pub(crate) struct CellRegistry {
    p: usize,
    sets: Mutex<HashMap<TypeId, Arc<dyn Any + Send + Sync>>>,
}

impl std::fmt::Debug for CellRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CellRegistry(p = {})", self.p)
    }
}

impl CellRegistry {
    pub(crate) fn new(p: usize) -> Self {
        Self {
            p,
            sets: Mutex::new(HashMap::new()),
        }
    }

    /// The cell set for type `T`, created on first use. All PEs resolve
    /// the same `Arc`.
    pub(crate) fn get<T: Send + 'static>(&self) -> Arc<CellSet<T>> {
        let mut sets = self.sets.lock();
        let entry = sets
            .entry(TypeId::of::<T>())
            .or_insert_with(|| Arc::new(CellSet::<T>::new(self.p)));
        Arc::clone(entry)
            .downcast::<CellSet<T>>()
            .expect("registry entry keyed by TypeId")
    }
}

/// One single-superstep round on a typed cell set: the epoch is fixed at
/// construction ([`crate::Comm`] advances its per-type counter), and all
/// publishes/reads/takes of the round go through this handle.
pub(crate) struct Round<T> {
    set: Arc<CellSet<T>>,
    epoch: u64,
    rank: usize,
}

impl<T: Send + 'static> Round<T> {
    pub(crate) fn new(set: Arc<CellSet<T>>, epoch: u64, rank: usize) -> Self {
        Self { set, epoch, rank }
    }

    /// Publish this PE's value for the round (before the barrier).
    pub(crate) fn publish(&self, value: T) {
        self.set.cells[self.rank].publish(self.epoch, value);
    }

    /// Borrow the value PE `r` published this round (after the barrier).
    pub(crate) fn read(&self, r: usize) -> &T
    where
        T: Sync,
    {
        self.set.cells[r].read(self.epoch)
    }

    /// Move the value PE `r` published this round out of its cell (after
    /// the barrier; at most one taker per cell per round).
    pub(crate) fn take(&self, r: usize) -> T {
        self.set.cells[r].take(self.epoch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_take_roundtrip() {
        let set: Arc<CellSet<Vec<u32>>> = CellRegistry::new(2).get();
        let r0 = Round::new(Arc::clone(&set), 1, 0);
        r0.publish(vec![1, 2, 3]);
        let r1 = Round::new(set, 1, 1);
        assert_eq!(r1.take(0), vec![1, 2, 3]);
    }

    #[test]
    fn reads_are_non_destructive() {
        let set: Arc<CellSet<String>> = CellRegistry::new(1).get();
        let round = Round::new(set, 1, 0);
        round.publish(String::from("hello"));
        assert_eq!(round.read(0), "hello");
        assert_eq!(round.read(0), "hello");
    }

    #[test]
    fn lanes_alternate_and_reuse_drops_stale_values() {
        let set: Arc<CellSet<u64>> = CellRegistry::new(1).get();
        for e in 1..=6 {
            let round = Round::new(Arc::clone(&set), e, 0);
            round.publish(e * 10);
            assert_eq!(*round.read(0), e * 10);
        }
    }

    #[test]
    fn registry_returns_one_set_per_type() {
        let reg = CellRegistry::new(3);
        let a: Arc<CellSet<u32>> = reg.get();
        let b: Arc<CellSet<u32>> = reg.get();
        assert!(Arc::ptr_eq(&a, &b));
        let _c: Arc<CellSet<u64>> = reg.get(); // distinct type, no clash
    }

    #[test]
    #[should_panic(expected = "skipped a publish")]
    fn stale_epoch_read_panics() {
        let set: Arc<CellSet<u8>> = CellRegistry::new(1).get();
        let r1 = Round::new(Arc::clone(&set), 1, 0);
        r1.publish(7);
        let r2 = Round::new(set, 2, 0);
        let _ = r2.take(0); // nothing published in epoch 2
    }

    #[test]
    #[should_panic(expected = "taken twice")]
    fn double_take_panics() {
        let set: Arc<CellSet<u8>> = CellRegistry::new(1).get();
        let round = Round::new(set, 1, 0);
        round.publish(9);
        let _ = round.take(0);
        let _ = round.take(0);
    }
}
