//! Deterministic fault injection at the transport boundary.
//!
//! The transport boundary (`transport.rs`) is the one seam every
//! collective crosses, which makes it the right place to *inject*
//! faults: a [`FaultPlan`] describes, per machine, which frames are
//! delayed, duplicated, chopped into short writes/reads, transiently
//! refused (forcing the retransmit/backoff path), or lethally corrupted
//! — and a [`FaultyTransport`] wraps the byte-lane backends (the
//! in-process [`ByteHub`](crate::bytestream) queues and the
//! [`SocketFabric`](crate::socket) TCP mesh) so both consult the same
//! plan at the same points.
//!
//! ## Determinism
//!
//! Every fault decision is a pure function of the plan's seed and the
//! frame's coordinates — `(channel, src, dst, communicator, sequence)`
//! — hashed through SplitMix64. No wall-clock, no global counters: the
//! same plan on the same program produces the same fault schedule on
//! every run and on both byte-lane backends, which is what lets the
//! chaos suite compare a faulted run's digest against a fault-free one
//! by string equality. (The one exception is short *reads*, which key
//! on a per-link read counter that depends on arrival timing; they only
//! vary how many syscalls reassembly takes, never what is reassembled.)
//!
//! ## Taxonomy
//!
//! **Transient** faults are absorbed below the collective layer and
//! must not change results or modeled cost: delays, short writes/reads
//! (stream reassembly), duplicate frames (stale-frame discard), and
//! transient send refusals (retransmit with capped exponential backoff
//! plus deterministic jitter). **Lethal** faults are injected once on a
//! chosen rank at a chosen data superstep and must surface as a typed
//! [`TransportError`](crate::TransportError) within the io deadline:
//! a truncated frame (mid-frame close at the peer), a bit-flipped frame
//! (checksum mismatch — installing any fault plan, even an empty one,
//! arms a per-frame checksum so corruption is *detected*, never served
//! as a wrong answer), or a mid-frame disconnect.
//!
//! Configuration: [`MachineConfig::with_faults`](crate::MachineConfig::with_faults)
//! or the `KAMSTA_FAULTS` environment variable (see [`FaultPlan::parse`]).

use std::time::Duration;

/// SplitMix64 finalizer — the hash driving every fault decision.
#[inline]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

// Per-fault-kind salts, so one frame's independent draws decorrelate.
const S_DELAY: u64 = 0xD1;
const S_DELAY_LEN: u64 = 0xD2;
const S_SHORT_WRITE: u64 = 0x5E;
const S_SHORT_READ: u64 = 0x5F;
const S_DUP: u64 = 0xDD;
const S_RETRY: u64 = 0x47;
const S_RETRY_LEN: u64 = 0x48;
const S_JITTER: u64 = 0x11;
pub(crate) const S_FLIP: u64 = 0xF1;

/// First backoff step of the retransmit-on-transient path.
const BACKOFF_BASE: Duration = Duration::from_micros(40);
/// Backoff cap — transient retries stay far below any io deadline.
const BACKOFF_CAP: Duration = Duration::from_millis(2);

/// A lethal (unrecoverable) fault: injected on `rank`'s sends once its
/// data-plane round sequence reaches `at_seq`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LethalFault {
    /// Machine-world rank whose outgoing frames are corrupted.
    pub rank: usize,
    /// What happens to the frame.
    pub kind: LethalKind,
    /// First data-plane sequence number (superstep) the fault fires on.
    pub at_seq: u64,
}

/// The unrecoverable fault kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LethalKind {
    /// The frame is cut short and the stream closed mid-frame: peers see
    /// [`TransportError::PeerClosed`](crate::TransportError::PeerClosed)
    /// with `mid_frame` set.
    Truncate,
    /// One payload bit is flipped *after* the checksum is stamped: the
    /// receiver's verification fails with a typed
    /// [`TransportError::Protocol`](crate::TransportError::Protocol).
    BitFlip,
    /// Every link is torn down mid-frame — the socket analogue of
    /// pulling the network cable; under the in-process byte hub the
    /// faulty PE aborts with a typed io error instead.
    Disconnect,
}

impl LethalKind {
    fn parse(s: &str) -> Result<Self, String> {
        match s {
            "truncate" => Ok(LethalKind::Truncate),
            "bitflip" => Ok(LethalKind::BitFlip),
            "disconnect" => Ok(LethalKind::Disconnect),
            other => Err(format!(
                "unknown lethal fault kind {other:?} (expected truncate|bitflip|disconnect)"
            )),
        }
    }
}

/// A seeded, deterministic fault schedule for one machine run.
///
/// Probabilities are stored in per-mille (so the plan stays `Eq` and
/// env round-trips exactly); `0` disables a fault kind, and a plan with
/// every rate zero and no lethal fault ([`FaultPlan::is_empty`]) only
/// arms the frame checksums — the shape the `chaos-overhead` benchmark
/// entry measures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of every SplitMix64 draw.
    pub seed: u64,
    /// Per-frame probability (per-mille) of an injected send delay.
    pub delay_pm: u32,
    /// Upper bound of one injected delay, microseconds.
    pub delay_max_us: u64,
    /// Per-frame probability (per-mille) of chopping the send into
    /// short writes (sockets only; stream reassembly absorbs it).
    pub short_write_pm: u32,
    /// Per-read probability (per-mille) of a tiny receive buffer
    /// (sockets only).
    pub short_read_pm: u32,
    /// Per-frame probability (per-mille) of sending the frame twice
    /// (the stale-frame discard absorbs the duplicate).
    pub dup_pm: u32,
    /// Per-frame probability (per-mille) of transient send refusals,
    /// forcing the retransmit path with capped exponential backoff.
    pub retry_pm: u32,
    /// At most one unrecoverable fault per plan.
    pub lethal: Option<LethalFault>,
}

impl FaultPlan {
    /// An empty plan: no faults, but hooks (and frame checksums) armed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            delay_pm: 0,
            delay_max_us: 200,
            short_write_pm: 0,
            short_read_pm: 0,
            dup_pm: 0,
            retry_pm: 0,
            lethal: None,
        }
    }

    /// Inject per-frame delays with probability `p` (0..=1), each at
    /// most `max_us` microseconds.
    pub fn with_delays(mut self, p: f64, max_us: u64) -> Self {
        self.delay_pm = per_mille(p);
        self.delay_max_us = max_us.max(1);
        self
    }

    /// Chop sends into short writes with probability `p`.
    pub fn with_short_writes(mut self, p: f64) -> Self {
        self.short_write_pm = per_mille(p);
        self
    }

    /// Shrink receive buffers with probability `p` per read.
    pub fn with_short_reads(mut self, p: f64) -> Self {
        self.short_read_pm = per_mille(p);
        self
    }

    /// Duplicate frames with probability `p`.
    pub fn with_duplicates(mut self, p: f64) -> Self {
        self.dup_pm = per_mille(p);
        self
    }

    /// Transiently refuse sends with probability `p`, exercising the
    /// retransmit/backoff path.
    pub fn with_retries(mut self, p: f64) -> Self {
        self.retry_pm = per_mille(p);
        self
    }

    /// Schedule the plan's one unrecoverable fault.
    pub fn with_lethal(mut self, lethal: LethalFault) -> Self {
        self.lethal = Some(lethal);
        self
    }

    /// No fault can ever fire (checksums are still armed).
    pub fn is_empty(&self) -> bool {
        self.delay_pm == 0
            && self.short_write_pm == 0
            && self.short_read_pm == 0
            && self.dup_pm == 0
            && self.retry_pm == 0
            && self.lethal.is_none()
    }

    /// Parse the `KAMSTA_FAULTS` format: comma-separated `key=value`
    /// pairs. Keys: `seed=N`, `delay=P`, `delay_us=N`, `short_write=P`,
    /// `short_read=P`, `dup=P`, `retry=P`, and
    /// `lethal=KIND@RANK:SEQ` with KIND one of
    /// `truncate`/`bitflip`/`disconnect`. Probabilities are decimals in
    /// `[0, 1]`. Example:
    ///
    /// ```text
    /// KAMSTA_FAULTS="seed=7,delay=0.1,dup=0.05,retry=0.1"
    /// KAMSTA_FAULTS="seed=3,lethal=bitflip@1:6"
    /// ```
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut plan = FaultPlan::seeded(1);
        for part in s.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, value) = part
                .split_once('=')
                .ok_or_else(|| format!("fault plan entry {part:?} is not key=value"))?;
            match key {
                "seed" => plan.seed = parse_u64(key, value)?,
                "delay" => plan.delay_pm = parse_prob(key, value)?,
                "delay_us" => plan.delay_max_us = parse_u64(key, value)?.max(1),
                "short_write" => plan.short_write_pm = parse_prob(key, value)?,
                "short_read" => plan.short_read_pm = parse_prob(key, value)?,
                "dup" => plan.dup_pm = parse_prob(key, value)?,
                "retry" => plan.retry_pm = parse_prob(key, value)?,
                "lethal" => {
                    let (kind, at) = value
                        .split_once('@')
                        .ok_or_else(|| format!("lethal fault {value:?} is not KIND@RANK:SEQ"))?;
                    let (rank, seq) = at
                        .split_once(':')
                        .ok_or_else(|| format!("lethal fault {value:?} is not KIND@RANK:SEQ"))?;
                    plan.lethal = Some(LethalFault {
                        rank: parse_u64("lethal rank", rank)? as usize,
                        kind: LethalKind::parse(kind)?,
                        at_seq: parse_u64("lethal seq", seq)?,
                    });
                }
                other => return Err(format!("unknown fault plan key {other:?}")),
            }
        }
        Ok(plan)
    }

    #[inline]
    fn draw(&self, key: u64, salt: u64) -> u64 {
        splitmix64(self.seed ^ splitmix64(key ^ salt))
    }

    #[inline]
    fn hit(&self, pm: u32, key: u64, salt: u64) -> bool {
        pm > 0 && self.draw(key, salt) % 1000 < pm as u64
    }
}

fn per_mille(p: f64) -> u32 {
    ((p.clamp(0.0, 1.0)) * 1000.0).round() as u32
}

fn parse_u64(key: &str, value: &str) -> Result<u64, String> {
    value
        .parse()
        .map_err(|_| format!("fault plan {key}={value:?} is not a number"))
}

fn parse_prob(key: &str, value: &str) -> Result<u32, String> {
    let p: f64 = value
        .parse()
        .map_err(|_| format!("fault plan {key}={value:?} is not a probability"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("fault plan {key}={value:?} is outside [0, 1]"));
    }
    Ok(per_mille(p))
}

/// The sender-side fault schedule of one frame, drawn once per send.
#[derive(Clone, Copy, Debug)]
pub(crate) struct SendFaults {
    /// Base key of this frame's draws (for backoff jitter / bit pick).
    pub(crate) key: u64,
    /// Sleep this long before the first write attempt.
    pub(crate) delay: Option<Duration>,
    /// Number of transient refusals before the send goes through; each
    /// is followed by a backoff ([`FaultyTransport::backoff`]) and a
    /// retransmit from byte 0.
    pub(crate) failed_attempts: u32,
    /// Send the frame a second time after the first completes.
    pub(crate) duplicate: bool,
    /// Cap each `write` syscall at this many bytes (short writes).
    pub(crate) write_chunk: Option<usize>,
    /// The plan's unrecoverable fault fires on this frame.
    pub(crate) lethal: Option<LethalKind>,
}

impl SendFaults {
    /// Whether this frame drew *any* fault. The socket send path routes
    /// clean frames through its vectored fast path even with a plan
    /// armed (an empty plan only arms checksums — the `chaos-overhead`
    /// shape); a drawn fault of any kind takes the legacy byte-at-a-time
    /// path, whose chunked writes and whole-frame buffer the injections
    /// are specified against.
    pub(crate) fn any(&self) -> bool {
        self.delay.is_some()
            || self.failed_attempts > 0
            || self.duplicate
            || self.write_chunk.is_some()
            || self.lethal.is_some()
    }
}

/// The injection engine wrapping both byte-lane backends: the socket
/// fabric and the in-process byte hub consult it on every frame they
/// move. Holding one (even with an empty plan) arms the per-frame
/// checksums; absence of a `FaultyTransport` is the zero-cost fast
/// path.
#[derive(Debug)]
pub struct FaultyTransport {
    plan: FaultPlan,
}

impl FaultyTransport {
    pub fn new(plan: FaultPlan) -> Self {
        Self { plan }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Draw the fault schedule of one frame on `(src → dst)` for round
    /// `seq` of communicator `comm`. Deterministic in its arguments.
    pub(crate) fn send_faults(
        &self,
        channel: u8,
        src: usize,
        dst: usize,
        comm: u64,
        seq: u64,
    ) -> SendFaults {
        let p = &self.plan;
        let key = [channel as u64, src as u64, dst as u64, comm, seq]
            .into_iter()
            .fold(p.seed, |h, x| splitmix64(h ^ x));
        let delay = p
            .hit(p.delay_pm, key, S_DELAY)
            .then(|| Duration::from_micros(1 + p.draw(key, S_DELAY_LEN) % p.delay_max_us));
        let failed_attempts = if p.hit(p.retry_pm, key, S_RETRY) {
            1 + (p.draw(key, S_RETRY_LEN) % 3) as u32
        } else {
            0
        };
        let duplicate = p.hit(p.dup_pm, key, S_DUP);
        let write_chunk = p
            .hit(p.short_write_pm, key, S_SHORT_WRITE)
            .then(|| 1 + (p.draw(key, S_SHORT_WRITE) % 64) as usize);
        // Lethal faults fire on the data plane only: the chosen
        // superstep is a data round sequence number.
        let lethal = p.lethal.and_then(|l| {
            (channel == crate::wire::CH_DATA && src == l.rank && seq >= l.at_seq).then_some(l.kind)
        });
        SendFaults {
            key,
            delay,
            failed_attempts,
            duplicate,
            write_chunk,
            lethal,
        }
    }

    /// Receive-side short read: cap the next `read` of `peer`'s link at
    /// this many bytes. Keyed on a per-link read counter — timing-
    /// dependent, which is fine: it varies syscall boundaries, never
    /// bytes (see the module docs).
    pub(crate) fn read_chunk(&self, peer: usize, read_no: u64) -> Option<usize> {
        let p = &self.plan;
        let key = splitmix64(p.seed ^ splitmix64(peer as u64) ^ read_no);
        p.hit(p.short_read_pm, key, S_SHORT_READ)
            .then(|| 1 + (p.draw(key, S_SHORT_READ) % 61) as usize)
    }

    /// Backoff before retransmit attempt `attempt` (0-based): capped
    /// exponential plus deterministic jitter.
    pub(crate) fn backoff(&self, key: u64, attempt: u32) -> Duration {
        let exp = BACKOFF_BASE
            .checked_mul(1 << attempt.min(16))
            .unwrap_or(BACKOFF_CAP)
            .min(BACKOFF_CAP);
        let jitter =
            self.plan.draw(key ^ attempt as u64, S_JITTER) % BACKOFF_BASE.as_micros().max(1) as u64;
        exp + Duration::from_micros(jitter)
    }

    /// Pick the payload bit a [`LethalKind::BitFlip`] flips.
    pub(crate) fn flip_bit(&self, key: u64, bits: usize) -> usize {
        (self.plan.draw(key, S_FLIP) % bits.max(1) as u64) as usize
    }
}

/// Checksum stamped on every frame while fault hooks are armed: a
/// SplitMix64 fold over the header fields and the payload (8 bytes at a
/// time), so any single bit flip anywhere in the frame is detected with
/// overwhelming probability. Not computed (field written as 0, never
/// verified) when no fault plan is installed — TCP and in-process
/// queues are already reliable; the checksum exists to catch *injected*
/// corruption before it can become a wrong answer.
pub(crate) fn frame_checksum(channel: u8, comm: u64, a: u64, b: u64, payload: &[u8]) -> u64 {
    let mut h = splitmix64(
        (channel as u64)
            ^ comm.rotate_left(17)
            ^ a.rotate_left(34)
            ^ b.rotate_left(51)
            ^ ((payload.len() as u64) << 8),
    );
    let mut chunks = payload.chunks_exact(8);
    for c in &mut chunks {
        h = splitmix64(h ^ u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut last = [0u8; 8];
        last[..rem.len()].copy_from_slice(rem);
        h = splitmix64(h ^ u64::from_le_bytes(last) ^ rem.len() as u64);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips_the_documented_format() {
        let plan =
            FaultPlan::parse("seed=7,delay=0.1,delay_us=300,short_write=0.2,dup=0.05,retry=0.5")
                .unwrap();
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.delay_pm, 100);
        assert_eq!(plan.delay_max_us, 300);
        assert_eq!(plan.short_write_pm, 200);
        assert_eq!(plan.dup_pm, 50);
        assert_eq!(plan.retry_pm, 500);
        assert!(plan.lethal.is_none());
        assert!(!plan.is_empty());

        let plan = FaultPlan::parse("seed=3,lethal=bitflip@1:6").unwrap();
        assert_eq!(
            plan.lethal,
            Some(LethalFault {
                rank: 1,
                kind: LethalKind::BitFlip,
                at_seq: 6
            })
        );
        assert!(FaultPlan::parse("").unwrap().is_empty());
    }

    #[test]
    fn parse_rejects_malformed_plans() {
        for bad in [
            "frobnicate=1",
            "delay",
            "delay=2.0",
            "delay=x",
            "seed=abc",
            "lethal=bitflip",
            "lethal=explode@0:1",
            "lethal=truncate@0",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn draws_are_deterministic_and_seed_sensitive() {
        let a = FaultyTransport::new(FaultPlan::seeded(7).with_duplicates(0.5));
        let b = FaultyTransport::new(FaultPlan::seeded(7).with_duplicates(0.5));
        let c = FaultyTransport::new(FaultPlan::seeded(8).with_duplicates(0.5));
        let pattern = |fx: &FaultyTransport| {
            (0..64)
                .map(|seq| fx.send_faults(0, 0, 1, 0, seq).duplicate)
                .collect::<Vec<bool>>()
        };
        assert_eq!(pattern(&a), pattern(&b), "same seed, same schedule");
        assert_ne!(
            pattern(&a),
            pattern(&c),
            "different seed, different schedule"
        );
        assert!(
            pattern(&a).iter().any(|&d| d),
            "p=0.5 fires somewhere in 64 draws"
        );
        assert!(
            !pattern(&a).iter().all(|&d| d),
            "p=0.5 skips somewhere in 64 draws"
        );
    }

    #[test]
    fn empty_plan_never_fires() {
        let fx = FaultyTransport::new(FaultPlan::seeded(42));
        for seq in 0..256 {
            let f = fx.send_faults(0, 0, 1, 0, seq);
            assert!(f.delay.is_none());
            assert_eq!(f.failed_attempts, 0);
            assert!(!f.duplicate);
            assert!(f.write_chunk.is_none());
            assert!(f.lethal.is_none());
            assert!(fx.read_chunk(1, seq).is_none());
        }
    }

    #[test]
    fn lethal_fires_on_the_chosen_rank_and_superstep_only() {
        let fx = FaultyTransport::new(FaultPlan::seeded(1).with_lethal(LethalFault {
            rank: 2,
            kind: LethalKind::Truncate,
            at_seq: 5,
        }));
        assert!(
            fx.send_faults(0, 2, 0, 0, 4).lethal.is_none(),
            "before the superstep"
        );
        assert_eq!(
            fx.send_faults(0, 2, 0, 0, 5).lethal,
            Some(LethalKind::Truncate)
        );
        assert!(fx.send_faults(0, 1, 0, 0, 5).lethal.is_none(), "wrong rank");
        assert!(
            fx.send_faults(1, 2, 0, 0, 5).lethal.is_none(),
            "barrier frames exempt"
        );
    }

    #[test]
    fn backoff_is_capped_and_jittered() {
        let fx = FaultyTransport::new(FaultPlan::seeded(9).with_retries(1.0));
        let mut prev = Duration::ZERO;
        for attempt in 0..12 {
            let b = fx.backoff(0xABCD, attempt);
            assert!(b <= BACKOFF_CAP + BACKOFF_BASE, "attempt {attempt}: {b:?}");
            if attempt < 3 {
                assert!(b >= prev / 2, "roughly growing early on");
            }
            prev = b;
        }
    }

    #[test]
    fn checksum_detects_any_single_bit_flip() {
        let payload: Vec<u8> = (0..37u8).collect();
        let sum = frame_checksum(0, 1, 2, 3, &payload);
        assert_eq!(sum, frame_checksum(0, 1, 2, 3, &payload), "pure function");
        for bit in 0..payload.len() * 8 {
            let mut corrupt = payload.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(sum, frame_checksum(0, 1, 2, 3, &corrupt), "bit {bit}");
        }
        assert_ne!(sum, frame_checksum(1, 1, 2, 3, &payload), "header covered");
        assert_ne!(sum, frame_checksum(0, 1, 2, 4, &payload), "header covered");
    }
}
