//! The transport boundary: one collective layer, two backends.
//!
//! Every collective in this crate is written **once**, against the three
//! primitives below; each primitive has a shared-cells implementation
//! (the epoch-stamped zero-copy blackboard of [`crate::cells`]) and a
//! byte-stream implementation (the [`Wire`]-encoded per-PE-pair queues
//! of [`crate::bytestream`]):
//!
//! 1. **Blackboard round** ([`XRound`]) — post one typed value with a
//!    recipient set ([`To`]), barrier, read/take peers' values. Cells:
//!    publish in place, readers borrow ([`Rx::Borrowed`]). Bytes: encode
//!    once, enqueue per recipient, receivers decode ([`Rx::Owned`]).
//! 2. **Flat exchange** ([`crate::Comm::flat_round_with`]) — deliver
//!    `bufs.bucket(j)` to PE `j`. Cells: publish the whole
//!    [`FlatBuckets`] once, each receiver slices its bucket from the
//!    peers' cells (zero-copy). Bytes: encode each destination's bucket
//!    with a varint count header into its pair queue.
//! 3. **Paired flat exchange** ([`crate::Comm::paired_flat_round_with`])
//!    — the grid route's payload + sub-message-count header in a single
//!    round.
//!
//! Exchange patterns are declared on **both** sides: the sender names
//! the PEs that will pop from it (`send_to`), the receiver the PEs it
//! pops from (`recv_from`), and the two must describe the same edge set
//! — the cells backend ignores `send_to` (blackboard reads are free),
//! the byte backend delivers exactly those frames. Receivers read each
//! source **at most once per round** (the byte queues are consumed), a
//! discipline the cells backend also satisfies.
//!
//! Modeled α/β charges live in the collectives above this boundary,
//! never in the primitives, and count `size_of`-based logical bytes —
//! so the cost counters of a run are bit-for-bit identical under both
//! backends, which the determinism suites exploit as a cross-transport
//! oracle.

use crate::bytestream::ByteHub;
use crate::cells::Round;
use crate::comm::Comm;
use crate::flat::{FlatBuckets, FlatBuilder};
use crate::machine::MachineError;
use crate::wire::{self, Wire, WireReader};
use std::any::TypeId;
use std::cell::RefCell;
use std::ops::Deref;

/// Which transport a machine's collectives run over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// Epoch-stamped typed exchange cells: in-process, zero-copy.
    #[default]
    Cells,
    /// Per-PE-pair byte queues carrying `Wire`-encoded frames.
    Bytes,
}

impl TransportKind {
    /// Resolve the transport from `KAMSTA_TRANSPORT` (`cells` | `bytes`;
    /// unset means [`TransportKind::Cells`]). An unrecognised value is a
    /// configuration error, surfaced through
    /// [`crate::MachineConfig::validate`] rather than silently ignored.
    pub fn from_env() -> Result<Self, MachineError> {
        match std::env::var("KAMSTA_TRANSPORT") {
            Err(_) => Ok(TransportKind::Cells),
            Ok(v) => match v.as_str() {
                "cells" => Ok(TransportKind::Cells),
                "bytes" => Ok(TransportKind::Bytes),
                other => Err(MachineError::UnknownTransport(other.to_string())),
            },
        }
    }
}

/// Recipient set of a blackboard post. The cells backend ignores this
/// (its blackboard is readable by everyone for free); the byte backend
/// encodes once and enqueues exactly these frames.
#[derive(Clone, Copy, Debug)]
pub(crate) enum To {
    /// Every other PE of the communicator (plus the local slot).
    All,
    /// One PE (possibly self).
    One(usize),
}

/// A value received in a round: borrowed straight out of a peer's cell
/// on the cells backend, decoded and owned on the byte backend.
pub(crate) enum Rx<'r, T> {
    Borrowed(&'r T),
    Owned(T),
}

impl<T> Deref for Rx<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        match self {
            Rx::Borrowed(r) => r,
            Rx::Owned(v) => v,
        }
    }
}

impl<T: Clone> Rx<'_, T> {
    /// The value by ownership — cloning only when it is still borrowed
    /// from a cell, never re-cloning an already-owned decode.
    #[inline]
    pub(crate) fn into_owned(self) -> T {
        match self {
            Rx::Borrowed(r) => r.clone(),
            Rx::Owned(v) => v,
        }
    }
}

/// One blackboard round over whichever backend the communicator uses.
pub(crate) enum XRound<'c, T: Send + 'static> {
    Cells(Round<T>),
    Bytes(BytesRound<'c, T>),
}

/// Byte-backend state of one blackboard round: the pair queues plus a
/// local slot standing in for "my own cell".
pub(crate) struct BytesRound<'c, T> {
    hub: &'c ByteHub,
    seq: u64,
    rank: usize,
    size: usize,
    local: RefCell<Option<T>>,
}

impl<'c, T: Wire + Send + 'static> BytesRound<'c, T> {
    pub(crate) fn new(hub: &'c ByteHub, seq: u64, rank: usize, size: usize) -> Self {
        Self {
            hub,
            seq,
            rank,
            size,
            local: RefCell::new(None),
        }
    }

    fn post(&self, to: To, value: T) {
        match to {
            To::All => self.hub.post_value(
                self.rank,
                (0..self.size).filter(|&d| d != self.rank),
                self.seq,
                &value,
            ),
            To::One(dst) if dst != self.rank => {
                self.hub
                    .post_value(self.rank, std::iter::once(dst), self.seq, &value)
            }
            To::One(_) => {}
        }
        *self.local.borrow_mut() = Some(value);
    }

    fn take(&self, src: usize) -> T {
        if src == self.rank {
            self.local
                .borrow_mut()
                .take()
                .expect("byte-stream round: own value taken twice or never posted")
        } else {
            self.hub.take_value(src, self.rank, self.seq, "round")
        }
    }
}

impl<T: Wire + Send + 'static> XRound<'_, T> {
    /// Post this PE's value for the round (before the barrier).
    pub(crate) fn post(&self, to: To, value: T) {
        match self {
            XRound::Cells(r) => r.publish(value),
            XRound::Bytes(b) => b.post(to, value),
        }
    }

    /// The value PE `src` posted this round (after the barrier); at most
    /// one `read`/`take` per source per round.
    pub(crate) fn read(&self, src: usize) -> Rx<'_, T>
    where
        T: Sync,
    {
        match self {
            XRound::Cells(r) => Rx::Borrowed(r.read(src)),
            XRound::Bytes(b) => Rx::Owned(b.take(src)),
        }
    }

    /// Move PE `src`'s posted value out of the round.
    pub(crate) fn take(&self, src: usize) -> T {
        match self {
            XRound::Cells(r) => r.take(src),
            XRound::Bytes(b) => b.take(src),
        }
    }
}

/// A relayed grid message on the cells backend: payload buckets indexed
/// by next-hop PE plus, per next-hop, the `u32` lengths of the
/// sub-messages in canonical order — the flat header that replaces
/// per-message tagging.
pub(crate) struct GridMsg<T> {
    pub(crate) data: FlatBuckets<T>,
    pub(crate) sub: FlatBuckets<u32>,
}

impl Comm {
    /// Start a blackboard round on the communicator's transport.
    pub(crate) fn xround<T: Wire + Send + 'static>(&self) -> XRound<'_, T> {
        match self.hub() {
            None => XRound::Cells(self.cells_round::<T>()),
            Some(hub) => XRound::Bytes(BytesRound::new(
                hub,
                self.next_seq(),
                self.rank(),
                self.size(),
            )),
        }
    }

    /// **Flat exchange** (transport primitive 2): deliver `bufs.bucket(j)`
    /// to PE `j` for every `j` in `send_to`, then hand `consume` this PE's
    /// received parts as `(source, slice)` pairs in `recv_from` order.
    /// `send_to`/`recv_from` must describe the same communication edge
    /// set on all PEs; both must be ascending. Charges nothing — callers
    /// charge per their pattern.
    pub(crate) fn flat_round_with<T, R>(
        &self,
        bufs: FlatBuckets<T>,
        send_to: &[usize],
        recv_from: &[usize],
        consume: impl FnOnce(&[(usize, &[T])]) -> R,
    ) -> R
    where
        T: Wire + Clone + Send + Sync + 'static,
    {
        let me = self.rank();
        debug_assert_eq!(bufs.buckets(), self.size(), "one bucket per destination PE");
        debug_assert!(recv_from.windows(2).all(|w| w[0] < w[1]));
        match self.hub() {
            None => {
                let round = self.cells_round::<FlatBuckets<T>>();
                round.publish(bufs);
                self.sync();
                let parts: Vec<(usize, &[T])> = recv_from
                    .iter()
                    .map(|&src| (src, round.read(src).bucket(me)))
                    .collect();
                consume(&parts)
            }
            Some(hub) => {
                let seq = self.next_seq();
                let ty = TypeId::of::<FlatBuckets<T>>();
                // Self-delivery never touches the wire: the local bucket
                // is handed to `consume` straight out of `bufs` (often the
                // largest bucket of a home-sharded exchange).
                for &dst in send_to {
                    if dst == me {
                        continue;
                    }
                    let mut out = Vec::new();
                    wire::write_slice(&mut out, bufs.bucket(dst));
                    hub.push(me, dst, seq, ty, out);
                }
                self.sync();
                let owned: Vec<(usize, Vec<T>)> = recv_from
                    .iter()
                    .filter(|&&src| src != me)
                    .map(|&src| {
                        let bytes = hub.pop(src, me, seq, ty, "flat exchange");
                        let mut r = WireReader::new(&bytes);
                        let part = wire::read_vec::<T>(&mut r)
                            .and_then(|v| r.finish().map(|()| v))
                            .unwrap_or_else(|e| {
                                panic!("flat exchange of round {seq}: decode failed: {e}")
                            });
                        (src, part)
                    })
                    .collect();
                let mut decoded = owned.iter();
                let parts: Vec<(usize, &[T])> = recv_from
                    .iter()
                    .map(|&src| {
                        if src == me {
                            (me, bufs.bucket(me))
                        } else {
                            let (s, v) = decoded.next().expect("one decode per remote source");
                            debug_assert_eq!(*s, src);
                            (src, v.as_slice())
                        }
                    })
                    .collect();
                consume(&parts)
            }
        }
    }

    /// **Paired flat exchange** (transport primitive 3): one round
    /// delivering `(data.bucket(j), sub.bucket(j))` to PE `j` — the grid
    /// route's payload plus its flat `u32` count header, without paying a
    /// second barrier. `consume` receives `(data, sub)` slices per source
    /// in `recv_from` order.
    pub(crate) fn paired_flat_round_with<T, R>(
        &self,
        data: FlatBuckets<T>,
        sub: FlatBuckets<u32>,
        send_to: &[usize],
        recv_from: &[usize],
        consume: impl FnOnce(&[(&[T], &[u32])]) -> R,
    ) -> R
    where
        T: Wire + Clone + Send + Sync + 'static,
    {
        let me = self.rank();
        match self.hub() {
            None => {
                let round = self.cells_round::<GridMsg<T>>();
                round.publish(GridMsg { data, sub });
                self.sync();
                let parts: Vec<(&[T], &[u32])> = recv_from
                    .iter()
                    .map(|&src| {
                        let m = round.read(src);
                        (m.data.bucket(me), m.sub.bucket(me))
                    })
                    .collect();
                consume(&parts)
            }
            Some(hub) => {
                let seq = self.next_seq();
                let ty = TypeId::of::<GridMsg<T>>();
                // Self-delivery stays off the wire, as in `flat_round_with`.
                for &dst in send_to {
                    if dst == me {
                        continue;
                    }
                    let mut out = Vec::new();
                    wire::write_slice(&mut out, sub.bucket(dst));
                    wire::write_slice(&mut out, data.bucket(dst));
                    hub.push(me, dst, seq, ty, out);
                }
                self.sync();
                let owned: Vec<(Vec<T>, Vec<u32>)> = recv_from
                    .iter()
                    .filter(|&&src| src != me)
                    .map(|&src| {
                        let bytes = hub.pop(src, me, seq, ty, "paired flat exchange");
                        let mut r = WireReader::new(&bytes);
                        let decoded = wire::read_vec::<u32>(&mut r).and_then(|s| {
                            let d = wire::read_vec::<T>(&mut r)?;
                            r.finish()?;
                            Ok((d, s))
                        });
                        decoded.unwrap_or_else(|e| {
                            panic!("paired flat exchange of round {seq}: decode failed: {e}")
                        })
                    })
                    .collect();
                let mut decoded = owned.iter();
                let parts: Vec<(&[T], &[u32])> = recv_from
                    .iter()
                    .map(|&src| {
                        if src == me {
                            (data.bucket(me), sub.bucket(me))
                        } else {
                            let (d, s) = decoded.next().expect("one decode per remote source");
                            (d.as_slice(), s.as_slice())
                        }
                    })
                    .collect();
                consume(&parts)
            }
        }
    }

    /// Flat exchange materialised as a source-keyed [`FlatBuckets`]:
    /// bucket `src` of the result is the payload PE `src` addressed to
    /// this PE (empty for sources outside `recv_from`).
    pub(crate) fn raw_exchange_flat<T: Wire + Clone + Send + Sync + 'static>(
        &self,
        bufs: FlatBuckets<T>,
        send_to: &[usize],
        recv_from: &[usize],
    ) -> FlatBuckets<T> {
        let p = self.size();
        if p == 1 {
            return if recv_from.is_empty() {
                FlatBuckets::empty(1)
            } else {
                bufs
            };
        }
        self.flat_round_with(bufs, send_to, recv_from, |parts| {
            let total: usize = parts.iter().map(|(_, b)| b.len()).sum();
            let mut out = FlatBuilder::with_capacity(total, p);
            let mut it = parts.iter().peekable();
            for src in 0..p {
                if let Some((s, b)) = it.peek() {
                    if *s == src {
                        out.extend_from_slice(b);
                        it.next();
                    }
                }
                out.seal();
            }
            out.finish(p)
        })
    }
}
