//! The transport boundary: one collective layer, three backends.
//!
//! Every collective in this crate is written **once**, against the three
//! primitives below; each primitive has a shared-cells implementation
//! (the epoch-stamped zero-copy blackboard of [`crate::cells`]) and a
//! byte-lane implementation, where the lane is either the in-process
//! per-PE-pair queues of [`crate::bytestream`] or the per-PE-pair TCP
//! streams of [`crate::socket`] — both carry the same [`Wire`]-encoded
//! frames, so the two lanes share one code path here:
//!
//! 1. **Blackboard round** ([`XRound`]) — post one typed value with a
//!    recipient set ([`To`]), barrier, read/take peers' values. Cells:
//!    publish in place, readers borrow ([`Rx::Borrowed`]). Lane: encode
//!    once, enqueue per recipient, receivers decode ([`Rx::Owned`]).
//! 2. **Flat exchange** ([`crate::Comm::flat_round_with`]) — deliver
//!    `bufs.bucket(j)` to PE `j`. Cells: publish the whole
//!    [`FlatBuckets`] once, each receiver slices its bucket from the
//!    peers' cells (zero-copy). Bytes: encode each destination's bucket
//!    with a varint count header into its pair queue.
//! 3. **Paired flat exchange** ([`crate::Comm::paired_flat_round_with`])
//!    — the grid route's payload + sub-message-count header in a single
//!    round.
//!
//! Exchange patterns are declared on **both** sides: the sender names
//! the PEs that will pop from it (`send_to`), the receiver the PEs it
//! pops from (`recv_from`), and the two must describe the same edge set
//! — the cells backend ignores `send_to` (blackboard reads are free),
//! the byte backend delivers exactly those frames. Receivers read each
//! source **at most once per round** (the byte queues are consumed), a
//! discipline the cells backend also satisfies.
//!
//! Modeled α/β charges live in the collectives above this boundary,
//! never in the primitives, and count `size_of`-based logical bytes —
//! so the cost counters of a run are bit-for-bit identical under both
//! backends, which the determinism suites exploit as a cross-transport
//! oracle.

use crate::cells::Round;
use crate::comm::Comm;
use crate::flat::{FlatBuckets, FlatBuilder};
use crate::machine::MachineError;
use crate::wire::{self, Wire, WireReader};
use std::cell::RefCell;
use std::ops::Deref;
use std::time::Duration;

/// Which transport a machine's collectives run over.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TransportKind {
    /// Epoch-stamped typed exchange cells: in-process, zero-copy.
    #[default]
    Cells,
    /// Per-PE-pair byte queues carrying `Wire`-encoded frames.
    Bytes,
    /// Per-PE-pair TCP streams carrying the same `Wire` frames across
    /// threads or OS processes (see [`crate::socket`]).
    Sockets,
}

impl TransportKind {
    /// Resolve the transport from `KAMSTA_TRANSPORT` (`cells` | `bytes` |
    /// `sockets`; unset means [`TransportKind::Cells`]). An unrecognised
    /// value is a configuration error, surfaced through
    /// [`crate::MachineConfig::resolve`] rather than silently ignored.
    pub fn from_env() -> Result<Self, MachineError> {
        match std::env::var("KAMSTA_TRANSPORT") {
            Err(_) => Ok(TransportKind::Cells),
            Ok(v) => match v.as_str() {
                "cells" => Ok(TransportKind::Cells),
                "bytes" => Ok(TransportKind::Bytes),
                "sockets" => Ok(TransportKind::Sockets),
                other => Err(MachineError::UnknownTransport(other.to_string())),
            },
        }
    }
}

/// A runtime failure of the transport layer: a peer that died, a wait
/// that hit its deadline, or a frame stream that violated the SPMD
/// protocol. Surfaced from [`crate::Machine::try_run`] as
/// [`MachineError::Transport`] — typed, never a hang, never a plain
/// panic string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TransportError {
    /// The connection to `peer` is gone (clean close, reset, or process
    /// death — indistinguishable by design). `mid_frame` is set when the
    /// stream ended inside a frame, pointing at a crash rather than an
    /// orderly shutdown.
    PeerClosed { peer: usize, mid_frame: bool },
    /// A send or receive involving `peer` exceeded the machine's io
    /// timeout.
    Timeout { peer: usize, waited: Duration },
    /// Mesh construction or launcher rendezvous timed out with only part
    /// of the machine present: `joined` is who made it, `missing` who
    /// never showed — the actionable half of a formation failure (which
    /// host to go look at).
    MeshIncomplete {
        joined: Vec<usize>,
        missing: Vec<usize>,
        waited: Duration,
    },
    /// The peer spoke, but wrongly: out-of-order round, type-tag
    /// mismatch, malformed or oversized frame, failed decode.
    Protocol(String),
    /// An OS-level socket error not better classified above.
    Io(String),
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::PeerClosed { peer, mid_frame } => {
                let how = if *mid_frame { " mid-frame" } else { "" };
                write!(f, "PE {peer} closed its connection{how}")
            }
            TransportError::Timeout { peer, waited } => {
                write!(f, "timed out after {waited:?} waiting on PE {peer}")
            }
            TransportError::MeshIncomplete {
                joined,
                missing,
                waited,
            } => {
                write!(
                    f,
                    "machine formation timed out after {waited:?}: \
                     ranks {joined:?} joined, ranks {missing:?} missing"
                )
            }
            TransportError::Protocol(m) => write!(f, "transport protocol violation: {m}"),
            TransportError::Io(m) => write!(f, "transport io error: {m}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Abort the calling PE with a typed transport error. The machine
/// runner downcasts the payload and converts it to
/// [`MachineError::Transport`] instead of resuming the unwind, so a
/// transport failure deep inside a collective surfaces as an `Err` from
/// `try_run`, not a crash.
pub(crate) fn raise(e: TransportError) -> ! {
    std::panic::panic_any(e)
}

/// Recipient set of a blackboard post. The cells backend ignores this
/// (its blackboard is readable by everyone for free); the byte backend
/// encodes once and enqueues exactly these frames.
#[derive(Clone, Copy, Debug)]
pub(crate) enum To {
    /// Every other PE of the communicator (plus the local slot).
    All,
    /// One PE (possibly self).
    One(usize),
}

/// A value received in a round: borrowed straight out of a peer's cell
/// on the cells backend, decoded and owned on the byte backend.
pub(crate) enum Rx<'r, T> {
    Borrowed(&'r T),
    Owned(T),
}

impl<T> Deref for Rx<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        match self {
            Rx::Borrowed(r) => r,
            Rx::Owned(v) => v,
        }
    }
}

impl<T: Clone> Rx<'_, T> {
    /// The value by ownership — cloning only when it is still borrowed
    /// from a cell, never re-cloning an already-owned decode.
    #[inline]
    pub(crate) fn into_owned(self) -> T {
        match self {
            Rx::Borrowed(r) => r.clone(),
            Rx::Owned(v) => v,
        }
    }
}

/// One blackboard round over whichever backend the communicator uses.
pub(crate) enum XRound<'c, T: Send + 'static> {
    Cells(Round<T>),
    Lane(LaneRound<'c, T>),
}

/// Byte-lane state of one blackboard round: frames through the
/// communicator's lane (in-process queues or sockets) plus a local slot
/// standing in for "my own cell" — self-delivery never touches the lane.
pub(crate) struct LaneRound<'c, T> {
    comm: &'c Comm,
    seq: u64,
    local: RefCell<Option<T>>,
}

impl<'c, T: Wire + Send + 'static> LaneRound<'c, T> {
    pub(crate) fn new(comm: &'c Comm, seq: u64) -> Self {
        Self {
            comm,
            seq,
            local: RefCell::new(None),
        }
    }

    fn post(&self, to: To, value: T) {
        let me = self.comm.rank();
        let tag = wire::type_tag::<T>();
        match to {
            To::All => {
                // Encode exactly once into a pooled buffer; the lane
                // shares the bytes across all p − 1 destinations.
                let mut buf = self.comm.buf_take();
                wire::encode_into(&value, &mut buf);
                self.comm.lane_broadcast(self.seq, tag, buf);
            }
            To::One(dst) if dst != me => {
                let mut buf = self.comm.buf_take();
                wire::encode_into(&value, &mut buf);
                self.comm.lane_send(dst, self.seq, tag, buf);
            }
            To::One(_) => {}
        }
        *self.local.borrow_mut() = Some(value);
    }

    fn take(&self, src: usize) -> T {
        if src == self.comm.rank() {
            self.local
                .borrow_mut()
                .take()
                .expect("byte-lane round: own value taken twice or never posted")
        } else {
            let tag = wire::type_tag::<T>();
            self.comm
                .lane_pop_with(src, self.seq, tag, "round", wire::decode)
        }
    }
}

impl<T: Wire + Send + 'static> XRound<'_, T> {
    /// Post this PE's value for the round (before the barrier).
    pub(crate) fn post(&self, to: To, value: T) {
        match self {
            XRound::Cells(r) => r.publish(value),
            XRound::Lane(b) => b.post(to, value),
        }
    }

    /// The value PE `src` posted this round (after the barrier); at most
    /// one `read`/`take` per source per round.
    pub(crate) fn read(&self, src: usize) -> Rx<'_, T>
    where
        T: Sync,
    {
        match self {
            XRound::Cells(r) => Rx::Borrowed(r.read(src)),
            XRound::Lane(b) => Rx::Owned(b.take(src)),
        }
    }

    /// Move PE `src`'s posted value out of the round.
    pub(crate) fn take(&self, src: usize) -> T {
        match self {
            XRound::Cells(r) => r.take(src),
            XRound::Lane(b) => b.take(src),
        }
    }
}

/// A relayed grid message on the cells backend: payload buckets indexed
/// by next-hop PE plus, per next-hop, the `u32` lengths of the
/// sub-messages in canonical order — the flat header that replaces
/// per-message tagging.
pub(crate) struct GridMsg<T> {
    pub(crate) data: FlatBuckets<T>,
    pub(crate) sub: FlatBuckets<u32>,
}

impl Comm {
    /// Start a blackboard round on the communicator's transport.
    pub(crate) fn xround<T: Wire + Send + 'static>(&self) -> XRound<'_, T> {
        if self.has_byte_lane() {
            XRound::Lane(LaneRound::new(self, self.next_seq()))
        } else {
            XRound::Cells(self.cells_round::<T>())
        }
    }

    /// **Flat exchange** (transport primitive 2): deliver `bufs.bucket(j)`
    /// to PE `j` for every `j` in `send_to`, then hand `consume` this PE's
    /// received parts as `(source, slice)` pairs in `recv_from` order.
    /// `send_to`/`recv_from` must describe the same communication edge
    /// set on all PEs; both must be ascending. Charges nothing — callers
    /// charge per their pattern.
    pub(crate) fn flat_round_with<T, R>(
        &self,
        bufs: FlatBuckets<T>,
        send_to: &[usize],
        recv_from: &[usize],
        consume: impl FnOnce(&[(usize, &[T])]) -> R,
    ) -> R
    where
        T: Wire + Clone + Send + Sync + 'static,
    {
        let me = self.rank();
        debug_assert_eq!(bufs.buckets(), self.size(), "one bucket per destination PE");
        debug_assert!(recv_from.windows(2).all(|w| w[0] < w[1]));
        match self.has_byte_lane() {
            false => {
                let round = self.cells_round::<FlatBuckets<T>>();
                round.publish(bufs);
                self.sync();
                let parts: Vec<(usize, &[T])> = recv_from
                    .iter()
                    .map(|&src| (src, round.read(src).bucket(me)))
                    .collect();
                consume(&parts)
            }
            true => {
                let seq = self.next_seq();
                let tag = wire::type_tag::<FlatBuckets<T>>();
                // Self-delivery never touches the wire: the local bucket
                // is handed to `consume` straight out of `bufs` (often the
                // largest bucket of a home-sharded exchange).
                for &dst in send_to {
                    if dst == me {
                        continue;
                    }
                    // One coalesced frame per (peer, round): the whole
                    // bucket, serialized into a pooled buffer that the
                    // lane recycles once the bytes are on the wire.
                    let mut out = self.buf_take();
                    wire::write_slice(&mut out, bufs.bucket(dst));
                    self.lane_send(dst, seq, tag, out);
                }
                self.sync();
                let owned: Vec<(usize, Vec<T>)> = recv_from
                    .iter()
                    .filter(|&&src| src != me)
                    .map(|&src| {
                        let part = self.lane_pop_with(src, seq, tag, "flat exchange", |bytes| {
                            let mut r = WireReader::new(bytes);
                            let v = wire::read_vec::<T>(&mut r)?;
                            r.finish()?;
                            Ok(v)
                        });
                        (src, part)
                    })
                    .collect();
                let mut decoded = owned.iter();
                let parts: Vec<(usize, &[T])> = recv_from
                    .iter()
                    .map(|&src| {
                        if src == me {
                            (me, bufs.bucket(me))
                        } else {
                            let (s, v) = decoded.next().expect("one decode per remote source");
                            debug_assert_eq!(*s, src);
                            (src, v.as_slice())
                        }
                    })
                    .collect();
                consume(&parts)
            }
        }
    }

    /// **Paired flat exchange** (transport primitive 3): one round
    /// delivering `(data.bucket(j), sub.bucket(j))` to PE `j` — the grid
    /// route's payload plus its flat `u32` count header, without paying a
    /// second barrier. `consume` receives `(data, sub)` slices per source
    /// in `recv_from` order.
    pub(crate) fn paired_flat_round_with<T, R>(
        &self,
        data: FlatBuckets<T>,
        sub: FlatBuckets<u32>,
        send_to: &[usize],
        recv_from: &[usize],
        consume: impl FnOnce(&[(&[T], &[u32])]) -> R,
    ) -> R
    where
        T: Wire + Clone + Send + Sync + 'static,
    {
        let me = self.rank();
        match self.has_byte_lane() {
            false => {
                let round = self.cells_round::<GridMsg<T>>();
                round.publish(GridMsg { data, sub });
                self.sync();
                let parts: Vec<(&[T], &[u32])> = recv_from
                    .iter()
                    .map(|&src| {
                        let m = round.read(src);
                        (m.data.bucket(me), m.sub.bucket(me))
                    })
                    .collect();
                consume(&parts)
            }
            true => {
                let seq = self.next_seq();
                let tag = wire::type_tag::<GridMsg<T>>();
                // Self-delivery stays off the wire, as in `flat_round_with`.
                for &dst in send_to {
                    if dst == me {
                        continue;
                    }
                    let mut out = self.buf_take();
                    wire::write_slice(&mut out, sub.bucket(dst));
                    wire::write_slice(&mut out, data.bucket(dst));
                    self.lane_send(dst, seq, tag, out);
                }
                self.sync();
                let owned: Vec<(Vec<T>, Vec<u32>)> = recv_from
                    .iter()
                    .filter(|&&src| src != me)
                    .map(|&src| {
                        self.lane_pop_with(src, seq, tag, "paired flat exchange", |bytes| {
                            let mut r = WireReader::new(bytes);
                            let s = wire::read_vec::<u32>(&mut r)?;
                            let d = wire::read_vec::<T>(&mut r)?;
                            r.finish()?;
                            Ok((d, s))
                        })
                    })
                    .collect();
                let mut decoded = owned.iter();
                let parts: Vec<(&[T], &[u32])> = recv_from
                    .iter()
                    .map(|&src| {
                        if src == me {
                            (data.bucket(me), sub.bucket(me))
                        } else {
                            let (d, s) = decoded.next().expect("one decode per remote source");
                            (d.as_slice(), s.as_slice())
                        }
                    })
                    .collect();
                consume(&parts)
            }
        }
    }

    /// Flat exchange materialised as a source-keyed [`FlatBuckets`]:
    /// bucket `src` of the result is the payload PE `src` addressed to
    /// this PE (empty for sources outside `recv_from`).
    pub(crate) fn raw_exchange_flat<T: Wire + Clone + Send + Sync + 'static>(
        &self,
        bufs: FlatBuckets<T>,
        send_to: &[usize],
        recv_from: &[usize],
    ) -> FlatBuckets<T> {
        let p = self.size();
        if p == 1 {
            return if recv_from.is_empty() {
                FlatBuckets::empty(1)
            } else {
                bufs
            };
        }
        if self.has_byte_lane() {
            // Byte-lane fast path: decode each peer's frame straight into
            // the result payload via `FlatBuilder::extend_from_wire` — no
            // intermediate per-peer `Vec<T>` between the recycled frame
            // buffer and the final allocation.
            let me = self.rank();
            let seq = self.next_seq();
            let tag = wire::type_tag::<FlatBuckets<T>>();
            for &dst in send_to {
                if dst == me {
                    continue;
                }
                let mut out = self.buf_take();
                wire::write_slice(&mut out, bufs.bucket(dst));
                self.lane_send(dst, seq, tag, out);
            }
            self.sync();
            let mut out = FlatBuilder::with_capacity(0, p);
            let mut it = recv_from.iter().peekable();
            for src in 0..p {
                if it.peek() == Some(&&src) {
                    it.next();
                    if src == me {
                        out.extend_from_slice(bufs.bucket(me));
                    } else {
                        self.lane_pop_with(src, seq, tag, "flat exchange", |bytes| {
                            let mut r = WireReader::new(bytes);
                            out.extend_from_wire(&mut r)?;
                            r.finish()
                        });
                    }
                }
                out.seal();
            }
            return out.finish(p);
        }
        self.flat_round_with(bufs, send_to, recv_from, |parts| {
            let total: usize = parts.iter().map(|(_, b)| b.len()).sum();
            let mut out = FlatBuilder::with_capacity(total, p);
            let mut it = parts.iter().peekable();
            for src in 0..p {
                if let Some((s, b)) = it.peek() {
                    if *s == src {
                        out.extend_from_slice(b);
                        it.next();
                    }
                }
                out.seal();
            }
            out.finish(p)
        })
    }
}
