//! Order-preserving rebalancing and global sortedness checks.

use kamsta_comm::{Comm, FlatBuckets, Wire};

/// Redistribute a globally ordered sequence so PE `i` ends up with the
/// contiguous block `[i·N/p, (i+1)·N/p)` of global positions — the output
/// contract of the paper's `REDISTRIBUTE` (Sec. IV-C re-establishes the
/// distributed graph data structure on balanced, sorted edges).
/// Preserves global order. Collective.
pub fn rebalance<T: Wire + Clone + Send + Sync + 'static>(comm: &Comm, data: Vec<T>) -> Vec<T> {
    let p = comm.size();
    if p == 1 {
        return data;
    }
    let n = data.len() as u64;
    let counts = comm.allgather(n);
    let total: u64 = counts.iter().sum();
    let my_offset: u64 = counts[..comm.rank()].iter().sum();

    // Target block of PE i: [i·total/p, (i+1)·total/p). My elements hold
    // the contiguous global positions [my_offset, my_offset + n), so each
    // destination receives a contiguous range of my payload: the flat
    // buffer is the payload plus an O(p) count array — no per-item work.
    let target_start = |i: usize| (i as u64 * total) / p as u64;
    let counts: Vec<usize> = (0..p)
        .map(|i| {
            let lo = target_start(i).clamp(my_offset, my_offset + n);
            let hi = target_start(i + 1).clamp(my_offset, my_offset + n);
            (hi - lo) as usize
        })
        .collect();
    let bufs = FlatBuckets::from_counts(data, &counts);
    // Receiving in source-rank order preserves global order because source
    // ranks hold ascending global position ranges.
    comm.alltoallv_direct(bufs).into_payload()
}

/// Check that the distributed sequence is globally sorted (each PE locally
/// sorted, and boundaries between consecutive non-empty PEs in order).
/// Returns the same verdict on every PE. Collective.
pub fn is_globally_sorted<T: Wire + Ord + Clone + Send + Sync + 'static>(
    comm: &Comm,
    data: &[T],
) -> bool {
    let locally_sorted = data.windows(2).all(|w| w[0] <= w[1]);
    let boundary: Option<(T, T)> = match (data.first(), data.last()) {
        (Some(f), Some(l)) => Some((f.clone(), l.clone())),
        _ => None,
    };
    let bounds = comm.allgather(boundary);
    let all_local = comm.allreduce(locally_sorted, |a, b| *a && *b);
    if !all_local {
        return false;
    }
    let mut prev_last: Option<&T> = None;
    for (first, last) in bounds.iter().flatten() {
        if let Some(pl) = prev_last {
            if pl > first {
                return false;
            }
        }
        prev_last = Some(last);
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig};

    #[test]
    fn rebalance_evens_out_skewed_distribution() {
        let p = 5;
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            // All data starts on PE 0, globally ordered.
            let data: Vec<u64> = if comm.rank() == 0 {
                (0..103).collect()
            } else {
                vec![]
            };
            rebalance(comm, data)
        });
        let mut flat = Vec::new();
        for (i, chunk) in out.results.iter().enumerate() {
            let lo = (i as u64 * 103) / 5;
            let hi = ((i as u64 + 1) * 103) / 5;
            assert_eq!(chunk.len() as u64, hi - lo, "PE {i} block size");
            flat.extend_from_slice(chunk);
        }
        assert_eq!(flat, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn rebalance_preserves_order_from_mixed_sources() {
        let p = 4;
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let r = comm.rank() as u64;
            // PE r holds [100r, 100r + 10r) — increasing sizes.
            let data: Vec<u64> = (0..10 * r).map(|k| 100 * r + k).collect();
            rebalance(comm, data)
        });
        let flat: Vec<u64> = out.results.into_iter().flatten().collect();
        let mut expected = Vec::new();
        for r in 0u64..4 {
            expected.extend((0..10 * r).map(|k| 100 * r + k));
        }
        assert_eq!(flat, expected);
    }

    #[test]
    fn sortedness_checker_accepts_and_rejects() {
        let out = Machine::run(MachineConfig::new(3), |comm| {
            let r = comm.rank() as u64;
            let good: Vec<u64> = (10 * r..10 * r + 5).collect();
            let ok = is_globally_sorted(comm, &good);
            // Equal boundary values across PEs still count as sorted.
            let flat = vec![2u64, 2, 2];
            let ok_flat = is_globally_sorted(comm, &flat);
            // Globally decreasing blocks must be rejected.
            let bad: Vec<u64> = (100 - 10 * r..105 - 10 * r).collect();
            let not_ok = is_globally_sorted(comm, &bad);
            (ok, ok_flat, not_ok)
        });
        for (ok, ok_flat, not_ok) in out.results {
            assert!(ok);
            assert!(ok_flat);
            assert!(!not_ok);
        }
    }

    #[test]
    fn empty_pes_are_tolerated() {
        let out = Machine::run(MachineConfig::new(4), |comm| {
            let data: Vec<u32> = if comm.rank() == 2 { vec![5, 6] } else { vec![] };
            is_globally_sorted(comm, &data)
        });
        assert!(out.results.into_iter().all(|b| b));
    }
}
