//! # kamsta-sort — distributed sorting over `kamsta-comm`
//!
//! The paper's MST algorithms lean on distributed comparison sorting in two
//! places: rebuilding the lexicographically sorted distributed edge list
//! after every contraction round (`REDISTRIBUTE`, Sec. IV-C) and sorting
//! pivot samples in Filter-Borůvka (Sec. V). Following Sec. II-A / VI-C:
//!
//! * [`hypercube_quicksort`] moves the data a logarithmic number of times —
//!   right for small inputs on many PEs (the paper uses it when the average
//!   number of elements per PE is ≤ 512);
//! * [`sample_sort`] is a two-level AMS-style sample sort that moves data a
//!   constant number of times — right for large inputs. Its splitter sample
//!   is itself sorted with the hypercube algorithm, as in the paper;
//! * [`sort_auto`] applies the paper's selection rule;
//! * [`rebalance`] restores perfectly balanced block distribution while
//!   preserving global order — the output contract of `REDISTRIBUTE`.
//!
//! All sorts are deterministic: the same input distribution and seed
//! produce the same output on every run, which the test suite exploits.

mod balance;
mod hypercube;
mod local;
mod merge;
mod radix;
mod sample;

pub use balance::{is_globally_sorted, rebalance};
pub use hypercube::hypercube_quicksort;
pub use local::{local_radix_sort, local_sort};
pub use merge::{multiway_merge, multiway_merge_flat};
pub use radix::{par_radix_sort_by_key, radix_sort_by_key, radix_sort_keys, RadixKey, SortOutcome};
pub use sample::{sample_sort, sample_sort_by_key};

use kamsta_comm::{Comm, Wire};

/// Average elements per PE below which the hypercube sorter wins
/// (Sec. VI-C: "we use distributed hypercube quicksort if the average
/// number of elements to sort per PE is below 512").
pub const HYPERCUBE_THRESHOLD: u64 = 512;

/// The paper's sorter selection rule (Sec. VI-C): hypercube quicksort for
/// small inputs, two-level sample sort for large ones. Collective.
pub fn sort_auto<T>(comm: &Comm, data: Vec<T>, seed: u64) -> Vec<T>
where
    T: Wire + Ord + Clone + Send + Sync + 'static,
{
    let total = comm.allreduce_sum(data.len() as u64);
    let avg_per_pe = total / comm.size() as u64;
    if avg_per_pe <= HYPERCUBE_THRESHOLD {
        hypercube_quicksort(comm, data, seed)
    } else {
        sample_sort(comm, data, seed)
    }
}

/// [`sort_auto`] with a packed radix key for the local phases. `key_of`
/// must realise exactly `T`'s `Ord`; the hypercube path (small inputs,
/// where startups dominate and local sorting is negligible) stays
/// comparison-based. Collective.
pub fn sort_auto_by_key<T, K>(
    comm: &Comm,
    data: Vec<T>,
    seed: u64,
    key_of: impl Fn(&T) -> K + Copy + Sync,
) -> Vec<T>
where
    T: Wire + Ord + Copy + Send + Sync + 'static,
    K: RadixKey + Send,
{
    let total = comm.allreduce_sum(data.len() as u64);
    let avg_per_pe = total / comm.size() as u64;
    if avg_per_pe <= HYPERCUBE_THRESHOLD {
        hypercube_quicksort(comm, data, seed)
    } else {
        sample_sort_by_key(comm, data, seed, key_of)
    }
}
