//! K-way merging of sorted runs (receive-side of the sample sort).

use kamsta_comm::FlatBuckets;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Merge sorted runs into one sorted vector.
///
/// Uses a binary heap of run heads (`O(n log k)`); runs must each be
/// sorted. Stable across runs in run-index order for equal elements, which
/// keeps distributed sorts deterministic.
pub fn multiway_merge<T: Ord>(mut runs: Vec<Vec<T>>) -> Vec<T> {
    match runs.len() {
        0 => return Vec::new(),
        1 => return runs.pop().unwrap(),
        _ => {}
    }
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<T>> = runs.into_iter().map(Vec::into_iter).collect();
    let mut heap: BinaryHeap<Reverse<(T, usize)>> = BinaryHeap::with_capacity(iters.len());
    for (k, it) in iters.iter_mut().enumerate() {
        if let Some(v) = it.next() {
            heap.push(Reverse((v, k)));
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((v, k))) = heap.pop() {
        out.push(v);
        if let Some(next) = iters[k].next() {
            heap.push(Reverse((next, k)));
        }
    }
    out
}

/// Merge the sorted runs of a flat receive buffer (one run per source
/// bucket) into one sorted vector — the zero-copy receive side of the
/// sample sort: runs are merged straight out of the contiguous buffer.
///
/// Same `O(n log k)` heap strategy and the same run-index tie-break as
/// [`multiway_merge`], so distributed sorts stay deterministic.
pub fn multiway_merge_flat<T: Ord + Clone>(runs: &FlatBuckets<T>) -> Vec<T> {
    let k = runs.buckets();
    let mut heads: Vec<std::slice::Iter<'_, T>> = runs.iter_buckets().map(<[T]>::iter).collect();
    let mut heap: BinaryHeap<Reverse<(&T, usize)>> = BinaryHeap::with_capacity(k);
    for (i, it) in heads.iter_mut().enumerate() {
        if let Some(v) = it.next() {
            heap.push(Reverse((v, i)));
        }
    }
    let mut out = Vec::with_capacity(runs.total_len());
    while let Some(Reverse((v, i))) = heap.pop() {
        out.push(v.clone());
        if let Some(next) = heads[i].next() {
            heap.push(Reverse((next, i)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merges_disjoint_runs() {
        let runs = vec![vec![1, 4, 7], vec![2, 5, 8], vec![3, 6, 9]];
        assert_eq!(multiway_merge(runs), (1..=9).collect::<Vec<_>>());
    }

    #[test]
    fn merges_overlapping_runs_with_duplicates() {
        let runs = vec![vec![1, 1, 3], vec![1, 2, 3], vec![]];
        assert_eq!(multiway_merge(runs), vec![1, 1, 1, 2, 3, 3]);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(multiway_merge::<u8>(vec![]), Vec::<u8>::new());
        assert_eq!(multiway_merge(vec![vec![2, 9]]), vec![2, 9]);
        assert_eq!(multiway_merge(vec![vec![], vec![5], vec![]]), vec![5]);
    }

    #[test]
    fn flat_merge_matches_nested_merge() {
        let nested = vec![vec![1u32, 4, 7], vec![2, 5, 8], vec![], vec![3, 3, 9]];
        let flat = FlatBuckets::from_nested(nested.clone());
        assert_eq!(multiway_merge_flat(&flat), multiway_merge(nested));
    }

    #[test]
    fn random_runs_match_flat_sort() {
        let mut state = 12345u64;
        let mut rng = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            (state >> 33) as u32
        };
        let mut runs = Vec::new();
        let mut flat = Vec::new();
        for _ in 0..10 {
            let len = (rng() % 50) as usize;
            let mut run: Vec<u32> = (0..len).map(|_| rng() % 1000).collect();
            run.sort_unstable();
            flat.extend_from_slice(&run);
            runs.push(run);
        }
        flat.sort_unstable();
        assert_eq!(multiway_merge(runs), flat);
    }
}
