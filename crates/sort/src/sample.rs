//! Two-level sample sort (AMS-style, Axtmann et al. \[46\]).
//!
//! The workhorse sorter for large inputs: data is moved a constant number
//! of times. Splitters are obtained by *regular sampling* of the locally
//! sorted data; the sample itself is sorted with the hypercube algorithm,
//! mirroring the paper's "two-level sample sort … applying the hypercube
//! algorithm to sort the samples" (Sec. VI-C). Delivery goes through the
//! sparse all-to-all, so the automatic grid indirection kicks in for small
//! per-partner volumes, making this "two-level" in the AMS sense as well.

use crate::hypercube::hypercube_quicksort;
use crate::local::{local_radix_sort, local_sort};
use crate::merge::multiway_merge_flat;
use crate::radix::RadixKey;
use kamsta_comm::{Comm, FlatBuckets, Wire};

/// Oversampling: samples taken per PE for splitter selection. Regular
/// sampling with 16 per PE bounds bucket skew well for balanced inputs.
const OVERSAMPLING: usize = 16;

/// Sort the distributed sequence; returns this PE's bucket of the globally
/// sorted result (rank-order concatenation is sorted). Collective.
///
/// The output is bucket-partitioned, not perfectly balanced; callers that
/// need balanced blocks compose with [`crate::rebalance`].
pub fn sample_sort<T>(comm: &Comm, data: Vec<T>, seed: u64) -> Vec<T>
where
    T: Wire + Ord + Clone + Send + Sync + 'static,
{
    sample_sort_impl(comm, data, seed, |c, d| local_sort(c, d))
}

/// [`sample_sort`] with the local phase replaced by the LSD radix sort on
/// packed keys ([`crate::radix`]). `key_of` must realise exactly `T`'s
/// `Ord` — the distributed plumbing (splitters, merge) still compares.
pub fn sample_sort_by_key<T, K>(
    comm: &Comm,
    data: Vec<T>,
    seed: u64,
    key_of: impl Fn(&T) -> K + Copy + Sync,
) -> Vec<T>
where
    T: Wire + Ord + Copy + Send + Sync + 'static,
    K: RadixKey + Send,
{
    sample_sort_impl(comm, data, seed, move |c, d| local_radix_sort(c, d, key_of))
}

fn sample_sort_impl<T>(
    comm: &Comm,
    mut data: Vec<T>,
    seed: u64,
    local: impl Fn(&Comm, &mut [T]),
) -> Vec<T>
where
    T: Wire + Ord + Clone + Send + Sync + 'static,
{
    let p = comm.size();
    if p == 1 {
        local(comm, &mut data);
        return data;
    }
    local(comm, &mut data);

    // Regular sampling of the locally sorted run.
    let s = OVERSAMPLING.min(data.len());
    let mut sample = Vec::with_capacity(s);
    for i in 0..s {
        // Evenly spaced picks, biased away from position 0.
        let idx = ((i + 1) * data.len()) / (s + 1);
        sample.push(data[idx.min(data.len() - 1)].clone());
    }

    // Sort the global sample with the hypercube sorter (small input).
    let my_sorted_sample = hypercube_quicksort(comm, sample, seed);

    // Select p-1 splitters at evenly spaced global sample positions.
    let counts = comm.allgather(my_sorted_sample.len() as u64);
    let total: u64 = counts.iter().sum();
    let my_offset: u64 = counts[..comm.rank()].iter().sum();
    let mut owned_splitters = Vec::new();
    if total > 0 {
        for i in 1..p as u64 {
            let pos = (i * total) / p as u64;
            if pos >= my_offset && pos < my_offset + my_sorted_sample.len() as u64 {
                owned_splitters.push(my_sorted_sample[(pos - my_offset) as usize].clone());
            }
        }
    }
    let splitters = comm.allgatherv(owned_splitters);

    // Bucket the locally sorted data: bucket b holds elements in
    // (splitters[b-1], splitters[b]]. The buckets are contiguous ranges
    // of the sorted run, so the flat buffer wraps the payload directly —
    // only the count array is computed, nothing is copied.
    let mut counts = vec![0usize; p];
    if splitters.is_empty() {
        counts[0] = data.len();
    } else {
        comm.charge_local((data.len() as u64) * (kamsta_comm::ceil_log2(p) as u64));
        let mut start = 0usize;
        for (b, spl) in splitters.iter().enumerate() {
            let end = start + data[start..].partition_point(|x| x <= spl);
            counts[b] = end - start;
            start = end;
        }
        counts[splitters.len()] = data.len() - start;
    }
    let bufs = FlatBuckets::from_counts(data, &counts);

    // Deliver and merge the sorted runs.
    let runs = comm.sparse_alltoallv(bufs);
    comm.charge_local(runs.total_len() as u64);
    multiway_merge_flat(&runs)
}
