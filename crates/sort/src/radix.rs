//! LSD radix sort on packed integer keys, with an adaptive
//! profitability gate.
//!
//! The local phases of the distributed sorts — and the dedup prefilter of
//! `REDISTRIBUTE` (Sec. VI-B) — sort edges under total orders that pack
//! into wide integers (`kamsta-graph`'s `PackedEdge` and the full
//! lexicographic `(u, v, w, id)` key). An OR/AND fold finds the bytes
//! that actually vary; they are compacted into a narrow `u64`/`u128` so
//! the stable counting passes move small records, and a one-scan
//! sorted-input check skips re-sorting the prefilter's already-ordered
//! output entirely.
//!
//! A counting pass costs roughly three comparison levels' worth of
//! memory traffic per element, so radix only wins when the active key
//! width is small relative to `log n` — vertex-id / edge-id sequences
//! and late-round component labels, not full-entropy first-round edge
//! keys. The sorters measure exactly that and fall back to
//! `sort_unstable` otherwise (callers whose keys cannot be packed at
//! all never reach the radix path — [`RadixKey`] is only implemented
//! for packable keys). The returned pass count is `0` whenever the
//! comparison path ran, which callers use for γ-cost charging.

/// A sort key with byte-wise radix access. `Ord` must equal the
/// big-endian byte order: byte `BYTES - 1` is the most significant.
///
/// The bit-wise fold operations power exact constant-byte detection in
/// one cheap word-op pass: byte `b` is constant across the input iff the
/// OR-fold and AND-fold of all keys agree on it.
pub trait RadixKey: Copy + Ord {
    /// Number of 8-bit digits in the key.
    const BYTES: usize;
    /// Digit `i`, with `i = 0` the least significant.
    fn radix_byte(&self, i: usize) -> u8;
    /// Byte-wise (in fact bit-wise) OR of two keys.
    fn bit_or(a: Self, b: Self) -> Self;
    /// Byte-wise (in fact bit-wise) AND of two keys.
    fn bit_and(a: Self, b: Self) -> Self;
}

macro_rules! radix_key_uint {
    ($t:ty, $bytes:expr) => {
        impl RadixKey for $t {
            const BYTES: usize = $bytes;
            #[inline(always)]
            fn radix_byte(&self, i: usize) -> u8 {
                (self >> (8 * i)) as u8
            }
            #[inline(always)]
            fn bit_or(a: Self, b: Self) -> Self {
                a | b
            }
            #[inline(always)]
            fn bit_and(a: Self, b: Self) -> Self {
                a & b
            }
        }
    };
}

radix_key_uint!(u32, 4);
radix_key_uint!(u64, 8);
radix_key_uint!(u128, 16);

/// Lexicographic pair `(hi, lo)`: `lo` supplies the low 16 digits.
impl RadixKey for (u128, u128) {
    const BYTES: usize = 32;
    #[inline(always)]
    fn radix_byte(&self, i: usize) -> u8 {
        if i < 16 {
            (self.1 >> (8 * i)) as u8
        } else {
            (self.0 >> (8 * (i - 16))) as u8
        }
    }
    #[inline(always)]
    fn bit_or(a: Self, b: Self) -> Self {
        (a.0 | b.0, a.1 | b.1)
    }
    #[inline(always)]
    fn bit_and(a: Self, b: Self) -> Self {
        (a.0 & b.0, a.1 & b.1)
    }
}

/// Lexicographic pair `(hi, lo)` with a 64-bit low word.
impl RadixKey for (u128, u64) {
    const BYTES: usize = 24;
    #[inline(always)]
    fn radix_byte(&self, i: usize) -> u8 {
        if i < 8 {
            (self.1 >> (8 * i)) as u8
        } else {
            (self.0 >> (8 * (i - 8))) as u8
        }
    }
    #[inline(always)]
    fn bit_or(a: Self, b: Self) -> Self {
        (a.0 | b.0, a.1 | b.1)
    }
    #[inline(always)]
    fn bit_and(a: Self, b: Self) -> Self {
        (a.0 & b.0, a.1 & b.1)
    }
}

/// Below this length the comparison sort's constant factor wins.
const SMALL_SORT_CUTOFF: usize = 96;

/// How a sort call was executed — the caller's basis for γ-cost
/// charging (a counting pass, a comparison level and a sortedness scan
/// all move different amounts of data per element).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortOutcome {
    /// The input was already sorted: one scan, nothing moved.
    AlreadySorted,
    /// Radix path ran with this many counting passes.
    Radix(usize),
    /// Comparison fallback ran (small slice, unprofitable key entropy,
    /// or a key too wide to compact): `n log n` comparisons.
    Comparison,
}

impl SortOutcome {
    /// Counting passes performed (0 unless the radix path ran).
    pub fn passes(&self) -> usize {
        match self {
            SortOutcome::Radix(p) => *p,
            _ => 0,
        }
    }
}

/// A counting pass moves each record once through a 256-way scatter —
/// measured at roughly `RADIX_PASS_COST_IN_LEVELS` comparison levels of
/// a pdqsort on the same data. Radix engages only when its pass count
/// undercuts the comparison sort's `log n` levels by that factor.
const RADIX_PASS_COST_IN_LEVELS: usize = 3;

/// True if a radix sort with `passes` counting passes beats the
/// comparison sort's `log n` levels on `n` elements.
#[inline]
fn radix_profitable(n: usize, passes: usize) -> bool {
    passes * RADIX_PASS_COST_IN_LEVELS <= kamsta_comm::ceil_log2(n.max(2)) as usize
}

/// A narrow integer the active bytes of a wide key are compacted into
/// before the counting passes — the passes then move 12/20-byte records
/// instead of 28–40-byte ones.
trait CompactKey: Copy + Default + Ord {
    const BYTES: usize;
    fn set_byte(&mut self, i: usize, b: u8);
    fn digit8(&self, d: usize) -> usize;
}

macro_rules! compact_key_uint {
    ($t:ty, $bytes:expr) => {
        impl CompactKey for $t {
            const BYTES: usize = $bytes;
            #[inline(always)]
            fn set_byte(&mut self, i: usize, b: u8) {
                *self |= (b as $t) << (8 * i);
            }
            #[inline(always)]
            fn digit8(&self, d: usize) -> usize {
                ((self >> (8 * d)) & 0xFF) as usize
            }
        }
    };
}

compact_key_uint!(u64, 8);
compact_key_uint!(u128, 16);

/// Stable LSD counting sort of `(compacted key, input index)` records;
/// returns (sorted records, passes).
fn sort_compact<T, K: RadixKey, C: CompactKey>(
    data: &[T],
    key_of: impl Fn(&T) -> K,
    active: &[usize],
) -> (Vec<(C, u32)>, usize) {
    let mut keyed: Vec<(C, u32)> = data
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let k = key_of(x);
            let mut c = C::default();
            for (slot, &b) in active.iter().enumerate() {
                c.set_byte(slot, k.radix_byte(b));
            }
            (c, i as u32)
        })
        .collect();
    let mut scratch = keyed.clone();
    for d in 0..active.len() {
        let mut hist = [0u32; 256];
        for (c, _) in keyed.iter() {
            hist[c.digit8(d)] += 1;
        }
        let mut acc = 0usize;
        let mut offs = [0usize; 256];
        for (o, &h) in offs.iter_mut().zip(hist.iter()) {
            *o = acc;
            acc += h as usize;
        }
        for &(c, i) in keyed.iter() {
            let digit = c.digit8(d);
            scratch[offs[digit]] = (c, i);
            offs[digit] += 1;
        }
        std::mem::swap(&mut keyed, &mut scratch);
    }
    (keyed, active.len())
}

/// Sort `data` ascending by `key_of` with an LSD radix sort, falling
/// back to `sort_unstable_by_key` when radix cannot win. Returns how
/// the sort was executed ([`SortOutcome`]) for γ-cost charging.
///
/// The radix path is stable; the comparison fallback is not — callers
/// needing deterministic results use keys that are total orders (every
/// key in this workspace ends in a unique edge id), for which the
/// distinction is unobservable.
///
/// The streaming OR/AND fold finds the bytes that actually vary; they
/// are compacted into a `u64` (or `u128` for ≥ 9 active bytes) so the
/// counting passes move narrow records. Keys whose active width exceeds
/// 16 bytes — entropy a counting sort cannot beat comparisons on — fall
/// back to `sort_unstable`.
pub fn radix_sort_by_key<T: Copy, K: RadixKey>(
    data: &mut [T],
    key_of: impl Fn(&T) -> K,
) -> SortOutcome {
    let n = data.len();
    if n < 2 {
        return SortOutcome::AlreadySorted;
    }
    if n <= SMALL_SORT_CUTOFF {
        data.sort_unstable_by_key(key_of);
        return SortOutcome::Comparison;
    }
    // One streaming pass: sortedness check + OR/AND folds, nothing
    // allocated before the engage-or-fall-back decision. Already-sorted
    // inputs are common on the hot path (the dedup prefilter hands its
    // sorted output to the distributed sort).
    let first = key_of(&data[0]);
    let (mut ors, mut ands, mut prev) = (first, first, first);
    let mut sorted = true;
    for x in &data[1..] {
        let k = key_of(x);
        sorted &= prev <= k;
        prev = k;
        ors = K::bit_or(ors, k);
        ands = K::bit_and(ands, k);
    }
    if sorted {
        return SortOutcome::AlreadySorted;
    }
    let active: Vec<usize> = (0..K::BYTES)
        .filter(|&b| ors.radix_byte(b) != ands.radix_byte(b))
        .collect();
    if !radix_profitable(n, active.len()) || active.len() > <u128 as CompactKey>::BYTES {
        data.sort_unstable_by_key(key_of);
        return SortOutcome::Comparison;
    }
    let (order, passes): (Vec<u32>, usize) = if active.len() <= <u64 as CompactKey>::BYTES {
        let (keyed, passes) = sort_compact::<T, K, u64>(data, &key_of, &active);
        (keyed.into_iter().map(|(_, i)| i).collect(), passes)
    } else {
        let (keyed, passes) = sort_compact::<T, K, u128>(data, &key_of, &active);
        (keyed.into_iter().map(|(_, i)| i).collect(), passes)
    };
    let gathered: Vec<T> = order.iter().map(|&i| data[i as usize]).collect();
    data.copy_from_slice(&gathered);
    SortOutcome::Radix(passes)
}

/// Sort a key sequence itself; same execution and fallback rules as
/// [`radix_sort_by_key`] with the identity key.
pub fn radix_sort_keys<K: RadixKey>(data: &mut [K]) -> SortOutcome {
    radix_sort_by_key(data, |&k| k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn sorts_u64_like_comparison_sort() {
        let mut s = 7u64;
        let mut v: Vec<u64> = (0..5000).map(|_| splitmix(&mut s) % 1_000_003).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        let outcome = radix_sort_keys(&mut v);
        assert!(
            matches!(outcome, SortOutcome::Radix(p) if p > 0),
            "large input must take the radix path: {outcome:?}"
        );
        assert_eq!(v, expect);
    }

    #[test]
    fn skips_constant_bytes() {
        // Keys fit in 16 bits: only 2 of the 8 byte passes may run.
        let mut s = 11u64;
        let mut v: Vec<u64> = (0..4096).map(|_| splitmix(&mut s) % 65_536).collect();
        let outcome = radix_sort_keys(&mut v);
        assert!(
            matches!(outcome, SortOutcome::Radix(p) if p <= 2),
            "constant high bytes must be skipped: {outcome:?}"
        );
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn wide_tuple_keys_match_tuple_order() {
        let mut s = 13u64;
        let mut v: Vec<(u128, u64)> = (0..3000)
            .map(|_| {
                (
                    (splitmix(&mut s) as u128) << 64 | splitmix(&mut s) as u128,
                    splitmix(&mut s),
                )
            })
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_keys(&mut v);
        assert_eq!(v, expect);
        let mut w: Vec<(u128, u128)> = (0..3000)
            .map(|_| {
                (
                    splitmix(&mut s) as u128,
                    (splitmix(&mut s) as u128) << 64 | splitmix(&mut s) as u128,
                )
            })
            .collect();
        let mut expect = w.clone();
        expect.sort_unstable();
        radix_sort_keys(&mut w);
        assert_eq!(w, expect);
    }

    #[test]
    fn by_key_sorts_payloads_stably() {
        // Payload (k, tag); key only looks at k — equal keys must keep
        // insertion order (stability).
        let mut s = 17u64;
        let items: Vec<(u32, u32)> = (0..2000)
            .map(|i| ((splitmix(&mut s) % 50) as u32, i as u32))
            .collect();
        let mut sorted = items.clone();
        let outcome = radix_sort_by_key(&mut sorted, |&(k, _)| k);
        assert!(matches!(outcome, SortOutcome::Radix(p) if p > 0));
        let mut expect = items;
        expect.sort_by_key(|&(k, _)| k); // std stable sort
        assert_eq!(sorted, expect);
    }

    #[test]
    fn small_inputs_use_comparison_fallback() {
        let mut v: Vec<u64> = vec![5, 3, 9, 1];
        let outcome = radix_sort_keys(&mut v);
        assert_eq!(outcome, SortOutcome::Comparison);
        assert_eq!(v, vec![1, 3, 5, 9]);
    }
}
