//! LSD radix sort on packed integer keys, with an adaptive
//! profitability gate.
//!
//! The local phases of the distributed sorts — and the dedup prefilter of
//! `REDISTRIBUTE` (Sec. VI-B) — sort edges under total orders that pack
//! into wide integers (`kamsta-graph`'s `PackedEdge` and the full
//! lexicographic `(u, v, w, id)` key). An OR/AND fold finds the bytes
//! that actually vary; they are compacted into a narrow `u64`/`u128` so
//! the stable counting passes move small records, and a one-scan
//! sorted-input check skips re-sorting the prefilter's already-ordered
//! output entirely.
//!
//! A counting pass costs roughly three comparison levels' worth of
//! memory traffic per element, so radix only wins when the active key
//! width is small relative to `log n` — vertex-id / edge-id sequences
//! and late-round component labels, not full-entropy first-round edge
//! keys. The sorters measure exactly that and fall back to
//! `sort_unstable` otherwise (callers whose keys cannot be packed at
//! all never reach the radix path — [`RadixKey`] is only implemented
//! for packable keys). The returned pass count is `0` whenever the
//! comparison path ran, which callers use for γ-cost charging.

/// A sort key with byte-wise radix access. `Ord` must equal the
/// big-endian byte order: byte `BYTES - 1` is the most significant.
///
/// The bit-wise fold operations power exact constant-byte detection in
/// one cheap word-op pass: byte `b` is constant across the input iff the
/// OR-fold and AND-fold of all keys agree on it.
pub trait RadixKey: Copy + Ord {
    /// Number of 8-bit digits in the key.
    const BYTES: usize;
    /// Digit `i`, with `i = 0` the least significant.
    fn radix_byte(&self, i: usize) -> u8;
    /// Byte-wise (in fact bit-wise) OR of two keys.
    fn bit_or(a: Self, b: Self) -> Self;
    /// Byte-wise (in fact bit-wise) AND of two keys.
    fn bit_and(a: Self, b: Self) -> Self;
}

macro_rules! radix_key_uint {
    ($t:ty, $bytes:expr) => {
        impl RadixKey for $t {
            const BYTES: usize = $bytes;
            #[inline(always)]
            fn radix_byte(&self, i: usize) -> u8 {
                (self >> (8 * i)) as u8
            }
            #[inline(always)]
            fn bit_or(a: Self, b: Self) -> Self {
                a | b
            }
            #[inline(always)]
            fn bit_and(a: Self, b: Self) -> Self {
                a & b
            }
        }
    };
}

radix_key_uint!(u32, 4);
radix_key_uint!(u64, 8);
radix_key_uint!(u128, 16);

/// Lexicographic pair `(hi, lo)`: `lo` supplies the low 16 digits.
impl RadixKey for (u128, u128) {
    const BYTES: usize = 32;
    #[inline(always)]
    fn radix_byte(&self, i: usize) -> u8 {
        if i < 16 {
            (self.1 >> (8 * i)) as u8
        } else {
            (self.0 >> (8 * (i - 16))) as u8
        }
    }
    #[inline(always)]
    fn bit_or(a: Self, b: Self) -> Self {
        (a.0 | b.0, a.1 | b.1)
    }
    #[inline(always)]
    fn bit_and(a: Self, b: Self) -> Self {
        (a.0 & b.0, a.1 & b.1)
    }
}

/// Lexicographic pair `(hi, lo)` with a 64-bit low word.
impl RadixKey for (u128, u64) {
    const BYTES: usize = 24;
    #[inline(always)]
    fn radix_byte(&self, i: usize) -> u8 {
        if i < 8 {
            (self.1 >> (8 * i)) as u8
        } else {
            (self.0 >> (8 * (i - 8))) as u8
        }
    }
    #[inline(always)]
    fn bit_or(a: Self, b: Self) -> Self {
        (a.0 | b.0, a.1 | b.1)
    }
    #[inline(always)]
    fn bit_and(a: Self, b: Self) -> Self {
        (a.0 & b.0, a.1 & b.1)
    }
}

/// Below this length the comparison sort's constant factor wins.
const SMALL_SORT_CUTOFF: usize = 96;

/// How a sort call was executed — the caller's basis for γ-cost
/// charging (a counting pass, a comparison level and a sortedness scan
/// all move different amounts of data per element).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SortOutcome {
    /// The input was already sorted: one scan, nothing moved.
    AlreadySorted,
    /// Radix path ran with this many counting passes.
    Radix(usize),
    /// Comparison fallback ran (small slice, unprofitable key entropy,
    /// or a key too wide to compact): `n log n` comparisons.
    Comparison,
}

impl SortOutcome {
    /// Counting passes performed (0 unless the radix path ran).
    pub fn passes(&self) -> usize {
        match self {
            SortOutcome::Radix(p) => *p,
            _ => 0,
        }
    }
}

/// A counting pass moves each record once through a 256-way scatter —
/// measured at roughly `RADIX_PASS_COST_IN_LEVELS` comparison levels of
/// a pdqsort on the same data. Radix engages only when its pass count
/// undercuts the comparison sort's `log n` levels by that factor.
const RADIX_PASS_COST_IN_LEVELS: usize = 3;

/// True if a radix sort with `passes` counting passes beats the
/// comparison sort's `log n` levels on `n` elements.
#[inline]
fn radix_profitable(n: usize, passes: usize) -> bool {
    passes * RADIX_PASS_COST_IN_LEVELS <= kamsta_comm::ceil_log2(n.max(2)) as usize
}

/// A narrow integer the active bytes of a wide key are compacted into
/// before the counting passes — the passes then move 12/20-byte records
/// instead of 28–40-byte ones.
trait CompactKey: Copy + Default + Ord {
    const BYTES: usize;
    fn set_byte(&mut self, i: usize, b: u8);
    fn digit8(&self, d: usize) -> usize;
}

macro_rules! compact_key_uint {
    ($t:ty, $bytes:expr) => {
        impl CompactKey for $t {
            const BYTES: usize = $bytes;
            #[inline(always)]
            fn set_byte(&mut self, i: usize, b: u8) {
                *self |= (b as $t) << (8 * i);
            }
            #[inline(always)]
            fn digit8(&self, d: usize) -> usize {
                ((self >> (8 * d)) & 0xFF) as usize
            }
        }
    };
}

compact_key_uint!(u64, 8);
compact_key_uint!(u128, 16);

/// Stable LSD counting sort of `(compacted key, input index)` records;
/// returns (sorted records, passes).
fn sort_compact<T, K: RadixKey, C: CompactKey>(
    data: &[T],
    key_of: impl Fn(&T) -> K,
    active: &[usize],
) -> (Vec<(C, u32)>, usize) {
    let mut keyed: Vec<(C, u32)> = data
        .iter()
        .enumerate()
        .map(|(i, x)| {
            let k = key_of(x);
            let mut c = C::default();
            for (slot, &b) in active.iter().enumerate() {
                c.set_byte(slot, k.radix_byte(b));
            }
            (c, i as u32)
        })
        .collect();
    let mut scratch = keyed.clone();
    for d in 0..active.len() {
        let mut hist = [0u32; 256];
        for (c, _) in keyed.iter() {
            hist[c.digit8(d)] += 1;
        }
        let mut acc = 0usize;
        let mut offs = [0usize; 256];
        for (o, &h) in offs.iter_mut().zip(hist.iter()) {
            *o = acc;
            acc += h as usize;
        }
        for &(c, i) in keyed.iter() {
            let digit = c.digit8(d);
            scratch[offs[digit]] = (c, i);
            offs[digit] += 1;
        }
        std::mem::swap(&mut keyed, &mut scratch);
    }
    (keyed, active.len())
}

/// Sort `data` ascending by `key_of` with an LSD radix sort, falling
/// back to `sort_unstable_by_key` when radix cannot win. Returns how
/// the sort was executed ([`SortOutcome`]) for γ-cost charging.
///
/// The radix path is stable; the comparison fallback is not — callers
/// needing deterministic results use keys that are total orders (every
/// key in this workspace ends in a unique edge id), for which the
/// distinction is unobservable.
///
/// The streaming OR/AND fold finds the bytes that actually vary; they
/// are compacted into a `u64` (or `u128` for ≥ 9 active bytes) so the
/// counting passes move narrow records. Keys whose active width exceeds
/// 16 bytes — entropy a counting sort cannot beat comparisons on — fall
/// back to `sort_unstable`.
pub fn radix_sort_by_key<T: Copy, K: RadixKey>(
    data: &mut [T],
    key_of: impl Fn(&T) -> K,
) -> SortOutcome {
    let n = data.len();
    if n < 2 {
        return SortOutcome::AlreadySorted;
    }
    if n <= SMALL_SORT_CUTOFF {
        data.sort_unstable_by_key(key_of);
        return SortOutcome::Comparison;
    }
    // One streaming pass: sortedness check + OR/AND folds, nothing
    // allocated before the engage-or-fall-back decision. Already-sorted
    // inputs are common on the hot path (the dedup prefilter hands its
    // sorted output to the distributed sort).
    let first = key_of(&data[0]);
    let (mut ors, mut ands, mut prev) = (first, first, first);
    let mut sorted = true;
    for x in &data[1..] {
        let k = key_of(x);
        sorted &= prev <= k;
        prev = k;
        ors = K::bit_or(ors, k);
        ands = K::bit_and(ands, k);
    }
    if sorted {
        return SortOutcome::AlreadySorted;
    }
    let active: Vec<usize> = (0..K::BYTES)
        .filter(|&b| ors.radix_byte(b) != ands.radix_byte(b))
        .collect();
    if !radix_profitable(n, active.len()) || active.len() > <u128 as CompactKey>::BYTES {
        data.sort_unstable_by_key(key_of);
        return SortOutcome::Comparison;
    }
    let (order, passes): (Vec<u32>, usize) = if active.len() <= <u64 as CompactKey>::BYTES {
        let (keyed, passes) = sort_compact::<T, K, u64>(data, &key_of, &active);
        (keyed.into_iter().map(|(_, i)| i).collect(), passes)
    } else {
        let (keyed, passes) = sort_compact::<T, K, u128>(data, &key_of, &active);
        (keyed.into_iter().map(|(_, i)| i).collect(), passes)
    };
    let gathered: Vec<T> = order.iter().map(|&i| data[i as usize]).collect();
    data.copy_from_slice(&gathered);
    SortOutcome::Radix(passes)
}

/// Sort a key sequence itself; same execution and fallback rules as
/// [`radix_sort_by_key`] with the identity key.
pub fn radix_sort_keys<K: RadixKey>(data: &mut [K]) -> SortOutcome {
    radix_sort_by_key(data, |&k| k)
}

/// Input size below which the parallel radix machinery is pure
/// overhead and [`par_radix_sort_by_key`] delegates to the sequential
/// sorter. The parallel body pays per-chunk 256-bucket histogram
/// passes plus an extra gather; below ~2^16 records the sequential LSD
/// loop wins even with real cores behind the pool (published parallel
/// radix sorters put the crossover near 10^5 elements), and on an
/// oversubscribed host the gap is the whole overhead — the BENCH
/// hybrid rows gate it.
const PAR_RADIX_CUTOFF: usize = 65_536;

/// Chunk length for the parallel fold / count / scatter passes.
const PAR_RADIX_CHUNK: usize = 8192;

/// Raw mutable pointer shared across scatter chunks; sound because
/// every `(chunk, digit)` cell is a private output range.
struct SendMutPtr<T>(*mut T);
unsafe impl<T: Send> Send for SendMutPtr<T> {}
unsafe impl<T: Send> Sync for SendMutPtr<T> {}

/// Width-parallel [`radix_sort_by_key`]: same decisions, same
/// [`SortOutcome`] (hence identical γ charges), bit-identical output —
/// for every rayon width, including 1.
///
/// How each stage stays exact:
/// - The engage-or-fall-back pass becomes per-chunk folds combined in
///   chunk order. OR/AND are associative and sortedness decomposes into
///   chunk-local sortedness plus boundary comparisons, so the decision
///   quantities are *equal* to the sequential scan's, not approximations.
/// - The radix body partitions the keyed records by the most
///   significant active digit using the same deterministic
///   count → per-(chunk, digit) offsets → scatter plan as the
///   distributed exchanges: chunks are contiguous input ranges scattered
///   in chunk order, so the partition is stable for any chunk count.
///   Each of the 256 partitions is then LSD-sorted over the remaining
///   digits independently (in parallel across partitions). A stable
///   MSD split followed by stable LSD passes on each part is the same
///   permutation as the sequential all-digits LSD sort, so the output
///   is identical and the pass count (`1 + (active - 1) = active`)
///   charges identically.
/// - The comparison fallback runs `par_sort_unstable_by_key`; as with
///   the sequential fallback, cross-width determinism there relies on
///   the workspace's total-order keys.
pub fn par_radix_sort_by_key<T: Copy + Send + Sync, K: RadixKey + Send>(
    data: &mut [T],
    key_of: impl Fn(&T) -> K + Sync,
) -> SortOutcome {
    use rayon::prelude::*;
    let n = data.len();
    if rayon::current_num_threads() <= 1 || n < PAR_RADIX_CUTOFF {
        return radix_sort_by_key(data, key_of);
    }
    // Parallel engage-or-fall-back pass: chunk folds + boundary checks.
    let chunks = n.div_ceil(PAR_RADIX_CHUNK);
    let folds: Vec<(K, K, bool)> = (0..chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * PAR_RADIX_CHUNK;
            let hi = n.min(lo + PAR_RADIX_CHUNK);
            let first = key_of(&data[lo]);
            let (mut ors, mut ands, mut prev) = (first, first, first);
            let mut sorted = lo == 0 || key_of(&data[lo - 1]) <= first;
            for x in &data[lo + 1..hi] {
                let k = key_of(x);
                sorted &= prev <= k;
                prev = k;
                ors = K::bit_or(ors, k);
                ands = K::bit_and(ands, k);
            }
            (ors, ands, sorted)
        })
        .collect();
    let mut ors = folds[0].0;
    let mut ands = folds[0].1;
    let mut sorted = true;
    for &(o, a, s) in &folds {
        ors = K::bit_or(ors, o);
        ands = K::bit_and(ands, a);
        sorted &= s;
    }
    if sorted {
        return SortOutcome::AlreadySorted;
    }
    let active: Vec<usize> = (0..K::BYTES)
        .filter(|&b| ors.radix_byte(b) != ands.radix_byte(b))
        .collect();
    if !radix_profitable(n, active.len()) || active.len() > <u128 as CompactKey>::BYTES {
        data.par_sort_unstable_by_key(&key_of);
        return SortOutcome::Comparison;
    }
    let (order, passes): (Vec<u32>, usize) = if active.len() <= <u64 as CompactKey>::BYTES {
        par_sort_compact::<T, K, u64>(data, &key_of, &active)
    } else {
        par_sort_compact::<T, K, u128>(data, &key_of, &active)
    };
    let gathered: Vec<T> = order.par_iter().map(|&i| data[i as usize]).collect();
    data.copy_from_slice(&gathered);
    SortOutcome::Radix(passes)
}

/// Parallel body of [`par_radix_sort_by_key`]: build keyed records,
/// stable-partition them by the most significant active digit, LSD-sort
/// each partition over the remaining digits, return the input-index
/// order and the pass count.
fn par_sort_compact<T, K, C>(
    data: &[T],
    key_of: &(impl Fn(&T) -> K + Sync),
    active: &[usize],
) -> (Vec<u32>, usize)
where
    T: Copy + Send + Sync,
    K: RadixKey,
    C: CompactKey + Send + Sync,
{
    use rayon::prelude::*;
    let n = data.len();
    let keyed: Vec<(C, u32)> = data
        .par_iter()
        .enumerate()
        .map(|(i, x)| {
            let k = key_of(x);
            let mut c = C::default();
            for (slot, &b) in active.iter().enumerate() {
                c.set_byte(slot, k.radix_byte(b));
            }
            (c, i as u32)
        })
        .collect();
    // Stable MSD partition: per-chunk histograms of the top digit …
    let top = active.len() - 1;
    let chunks = n.div_ceil(PAR_RADIX_CHUNK);
    let hists: Vec<[u32; 256]> = (0..chunks)
        .into_par_iter()
        .map(|c| {
            let lo = c * PAR_RADIX_CHUNK;
            let hi = n.min(lo + PAR_RADIX_CHUNK);
            let mut h = [0u32; 256];
            for (k, _) in &keyed[lo..hi] {
                h[k.digit8(top)] += 1;
            }
            h
        })
        .collect();
    // … combined into partition bounds and per-(chunk, digit) offsets …
    let mut bounds = [0usize; 257];
    for h in &hists {
        for (d, &c) in h.iter().enumerate() {
            bounds[d + 1] += c as usize;
        }
    }
    for d in 0..256 {
        bounds[d + 1] += bounds[d];
    }
    let mut starts = vec![0usize; chunks * 256];
    let mut run: Vec<usize> = bounds[..256].to_vec();
    for (c, h) in hists.iter().enumerate() {
        for d in 0..256 {
            starts[c * 256 + d] = run[d];
            run[d] += h[d] as usize;
        }
    }
    // … then a chunk-ordered scatter into disjoint ranges.
    let mut part: Vec<(C, u32)> = vec![(C::default(), 0u32); n];
    let part_ptr = SendMutPtr(part.as_mut_ptr());
    (0..chunks).into_par_iter().for_each(|c| {
        let _ = &part_ptr;
        let lo = c * PAR_RADIX_CHUNK;
        let hi = n.min(lo + PAR_RADIX_CHUNK);
        let mut pos = starts[c * 256..(c + 1) * 256].to_vec();
        for &(k, i) in &keyed[lo..hi] {
            let d = k.digit8(top);
            unsafe { part_ptr.0.add(pos[d]).write((k, i)) };
            pos[d] += 1;
        }
    });
    drop(keyed);
    // LSD passes over the remaining digits, independent per partition.
    if top > 0 {
        let part_ptr = SendMutPtr(part.as_mut_ptr());
        (0..256usize).into_par_iter().for_each(|d| {
            let _ = &part_ptr;
            let (lo, hi) = (bounds[d], bounds[d + 1]);
            if hi - lo > 1 {
                let bucket = unsafe { std::slice::from_raw_parts_mut(part_ptr.0.add(lo), hi - lo) };
                lsd_passes(bucket, top);
            }
        });
    }
    (part.into_par_iter().map(|(_, i)| i).collect(), active.len())
}

/// Sequential stable LSD counting passes over digits `0..digits` of a
/// keyed-record slice (the per-partition tail of the parallel sorter).
fn lsd_passes<C: CompactKey>(records: &mut [(C, u32)], digits: usize) {
    let mut keyed = records.to_vec();
    let mut scratch = keyed.clone();
    for d in 0..digits {
        let mut hist = [0u32; 256];
        for (c, _) in keyed.iter() {
            hist[c.digit8(d)] += 1;
        }
        let mut acc = 0usize;
        let mut offs = [0usize; 256];
        for (o, &h) in offs.iter_mut().zip(hist.iter()) {
            *o = acc;
            acc += h as usize;
        }
        for &(c, i) in keyed.iter() {
            let digit = c.digit8(d);
            scratch[offs[digit]] = (c, i);
            offs[digit] += 1;
        }
        std::mem::swap(&mut keyed, &mut scratch);
    }
    records.copy_from_slice(&keyed);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    #[test]
    fn sorts_u64_like_comparison_sort() {
        let mut s = 7u64;
        let mut v: Vec<u64> = (0..5000).map(|_| splitmix(&mut s) % 1_000_003).collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        let outcome = radix_sort_keys(&mut v);
        assert!(
            matches!(outcome, SortOutcome::Radix(p) if p > 0),
            "large input must take the radix path: {outcome:?}"
        );
        assert_eq!(v, expect);
    }

    #[test]
    fn skips_constant_bytes() {
        // Keys fit in 16 bits: only 2 of the 8 byte passes may run.
        let mut s = 11u64;
        let mut v: Vec<u64> = (0..4096).map(|_| splitmix(&mut s) % 65_536).collect();
        let outcome = radix_sort_keys(&mut v);
        assert!(
            matches!(outcome, SortOutcome::Radix(p) if p <= 2),
            "constant high bytes must be skipped: {outcome:?}"
        );
        assert!(v.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn wide_tuple_keys_match_tuple_order() {
        let mut s = 13u64;
        let mut v: Vec<(u128, u64)> = (0..3000)
            .map(|_| {
                (
                    (splitmix(&mut s) as u128) << 64 | splitmix(&mut s) as u128,
                    splitmix(&mut s),
                )
            })
            .collect();
        let mut expect = v.clone();
        expect.sort_unstable();
        radix_sort_keys(&mut v);
        assert_eq!(v, expect);
        let mut w: Vec<(u128, u128)> = (0..3000)
            .map(|_| {
                (
                    splitmix(&mut s) as u128,
                    (splitmix(&mut s) as u128) << 64 | splitmix(&mut s) as u128,
                )
            })
            .collect();
        let mut expect = w.clone();
        expect.sort_unstable();
        radix_sort_keys(&mut w);
        assert_eq!(w, expect);
    }

    #[test]
    fn by_key_sorts_payloads_stably() {
        // Payload (k, tag); key only looks at k — equal keys must keep
        // insertion order (stability).
        let mut s = 17u64;
        let items: Vec<(u32, u32)> = (0..2000)
            .map(|i| ((splitmix(&mut s) % 50) as u32, i as u32))
            .collect();
        let mut sorted = items.clone();
        let outcome = radix_sort_by_key(&mut sorted, |&(k, _)| k);
        assert!(matches!(outcome, SortOutcome::Radix(p) if p > 0));
        let mut expect = items;
        expect.sort_by_key(|&(k, _)| k); // std stable sort
        assert_eq!(sorted, expect);
    }

    #[test]
    fn small_inputs_use_comparison_fallback() {
        let mut v: Vec<u64> = vec![5, 3, 9, 1];
        let outcome = radix_sort_keys(&mut v);
        assert_eq!(outcome, SortOutcome::Comparison);
        assert_eq!(v, vec![1, 3, 5, 9]);
    }

    fn width(t: usize) -> rayon::ThreadPool {
        rayon::ThreadPoolBuilder::new()
            .num_threads(t)
            .build()
            .unwrap()
    }

    #[test]
    fn parallel_radix_is_bit_identical_across_widths() {
        // Low-entropy keys with payload tags: the radix path runs, and
        // stability makes the output unique — every width must match
        // the sequential sorter exactly, outcome included.
        let mut s = 23u64;
        let items: Vec<(u32, u32)> = (0..100_000)
            .map(|i| ((splitmix(&mut s) % 65_536) as u32, i as u32))
            .collect();
        let mut seq = items.clone();
        let seq_out = radix_sort_by_key(&mut seq, |&(k, _)| k);
        assert!(matches!(seq_out, SortOutcome::Radix(_)));
        for t in [1usize, 2, 8] {
            let mut par = items.clone();
            let par_out = width(t).install(|| par_radix_sort_by_key(&mut par, |&(k, _)| k));
            assert_eq!(par_out, seq_out, "outcome at width {t}");
            assert_eq!(par, seq, "permutation at width {t}");
        }
    }

    #[test]
    fn parallel_radix_matches_sequential_decisions() {
        // Already-sorted input: the parallel chunk folds must reach the
        // same AlreadySorted verdict (boundary checks included).
        let sorted_in: Vec<u64> = (0..80_000u64).map(|i| i * 3).collect();
        let mut v = sorted_in.clone();
        let out = width(8).install(|| par_radix_sort_by_key(&mut v, |&k| k));
        assert_eq!(out, SortOutcome::AlreadySorted);
        assert_eq!(v, sorted_in);
        // Full-entropy keys: both sides must take the comparison
        // fallback and, keys being distinct, agree on the result.
        let mut s = 29u64;
        let items: Vec<u64> = (0..80_000).map(|_| splitmix(&mut s)).collect();
        let mut seq = items.clone();
        let seq_out = radix_sort_by_key(&mut seq, |&k| k);
        assert_eq!(seq_out, SortOutcome::Comparison);
        let mut par = items.clone();
        let par_out = width(8).install(|| par_radix_sort_by_key(&mut par, |&k| k));
        assert_eq!(par_out, SortOutcome::Comparison);
        assert_eq!(par, seq);
    }

    #[test]
    fn parallel_radix_tuple_keys_cross_word_boundary() {
        // Active bytes straddle the (hi, lo) halves of a tuple key, so
        // the parallel folds and compact-key build exercise the tuple
        // digit indexing; the unique low word keeps the order total.
        let mut s = 31u64;
        let items: Vec<(u64, u64)> = (0..80_000).map(|i| (splitmix(&mut s) % 256, i)).collect();
        let key = |&(k, i): &(u64, u64)| ((k as u128) << 64, i);
        let mut seq = items.clone();
        let seq_out = radix_sort_by_key(&mut seq, key);
        assert!(matches!(seq_out, SortOutcome::Radix(_)), "{seq_out:?}");
        let mut par = items.clone();
        let par_out = width(8).install(|| par_radix_sort_by_key(&mut par, key));
        assert_eq!(par_out, seq_out);
        assert_eq!(par, seq);
    }
}
