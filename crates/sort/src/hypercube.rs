//! Distributed hypercube quicksort (Axtmann & Sanders \[10\], simplified).
//!
//! The data is repeatedly split around a pivot along the dimensions of a
//! hypercube: after processing dimension `d`, every element in the lower
//! half-cube is ≤ every element in the upper half-cube. After `log p`
//! rounds each PE locally sorts its remaining elements, and the
//! rank-order concatenation is globally sorted. Data moves `log p` times —
//! exactly the regime the paper reserves for *small* inputs (≤ 512
//! elements per PE on average, Sec. VI-C), where startup costs dominate.
//!
//! Non-power-of-two communicators fold the surplus ranks' data into the
//! largest power-of-two prefix first; surplus ranks finish empty, which is
//! harmless for the splitter-sorting use case and still globally sorted.

use crate::local::local_sort;
use kamsta_comm::{Comm, Wire};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-(seed, level, rank) RNG stream.
fn rng_for(seed: u64, level: u32, rank: usize) -> SmallRng {
    let mix = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((level as u64) << 32)
        .wrapping_add(rank as u64);
    SmallRng::seed_from_u64(mix)
}

/// Median of a small sample (consumes and sorts it).
fn median<T: Ord>(mut sample: Vec<T>) -> Option<T> {
    if sample.is_empty() {
        return None;
    }
    let mid = sample.len() / 2;
    sample.sort_unstable();
    Some(sample.swap_remove(mid))
}

/// Sort the distributed sequence; returns this PE's chunk of the globally
/// sorted result (rank-order concatenation is sorted). Collective.
pub fn hypercube_quicksort<T>(comm: &Comm, data: Vec<T>, seed: u64) -> Vec<T>
where
    T: Wire + Ord + Clone + Send + Sync + 'static,
{
    let p = comm.size();
    if p == 1 {
        let mut data = data;
        local_sort(comm, &mut data);
        return data;
    }
    let q = kamsta_comm::floor_pow2(p);
    let data = if q == p {
        data
    } else {
        // Fold surplus ranks q..p into ranks 0..(p-q).
        fold_in_surplus(comm, data, q)
    };

    // Active PEs run the hypercube phase on a sub-communicator; surplus
    // PEs get a singleton communicator and fall through with no data.
    let active = comm.rank() < q;
    let sub = comm.split(if active { 0 } else { 1 + comm.rank() }, comm.rank());
    let mut data = data;
    if active {
        data = hypercube_phase(&sub, data, seed);
    }
    local_sort(comm, &mut data);
    comm.barrier();
    data
}

/// Ship data of ranks `>= q` to rank `r - q`; returns the (possibly
/// grown) local data. Collective over `comm`.
fn fold_in_surplus<T: Wire + Ord + Send + 'static>(comm: &Comm, data: Vec<T>, q: usize) -> Vec<T> {
    let me = comm.rank();
    let extras = comm.size() - q;
    if me >= q {
        let n = data.len();
        comm.exchange(Some((me - q, data)), None::<usize>);
        comm.charge_comm(0, kamsta_comm::bytes_for::<T>(n));
        Vec::new()
    } else if me < extras {
        let mut data = data;
        let incoming = comm
            .exchange::<Vec<T>>(None, Some(me + q))
            .expect("surplus partner must send");
        comm.charge_comm(0, kamsta_comm::bytes_for::<T>(incoming.len()));
        data.extend(incoming);
        data
    } else {
        // Idle PEs still advance the same typed exchange round as the
        // fold participants (`V = Vec<T>`).
        comm.exchange::<Vec<T>>(None, None);
        data
    }
}

/// The quicksort rounds on a power-of-two communicator.
fn hypercube_phase<T>(sub: &Comm, mut data: Vec<T>, seed: u64) -> Vec<T>
where
    T: Wire + Ord + Clone + Send + Sync + 'static,
{
    let q = sub.size();
    debug_assert!(q.is_power_of_two());
    let dims = kamsta_comm::ceil_log2(q);
    for level in (0..dims).rev() {
        // Groups of size 2^(level+1) agree on a pivot.
        let group = sub.split(sub.rank() >> (level + 1), sub.rank());
        let mut rng = rng_for(seed, level, sub.rank());
        let mut sample = Vec::with_capacity(3);
        for _ in 0..3.min(data.len()) {
            sample.push(data[rng.gen_range(0..data.len())].clone());
        }
        let gathered = group.allgatherv(sample);
        let pivot = median(gathered);

        let (low, high): (Vec<T>, Vec<T>) = match &pivot {
            Some(pv) => {
                sub.charge_local(data.len() as u64);
                data.drain(..).partition(|x| *x <= *pv)
            }
            None => (Vec::new(), Vec::new()),
        };

        let partner = sub.rank() ^ (1 << level);
        let lower_half = sub.rank() & (1 << level) == 0;
        let (keep, send) = if lower_half { (low, high) } else { (high, low) };
        let sent_bytes = kamsta_comm::bytes_for::<T>(send.len());
        let received = sub
            .exchange(Some((partner, send)), Some(partner))
            .expect("hypercube partner always sends");
        sub.charge_comm(
            0,
            sent_bytes.max(kamsta_comm::bytes_for::<T>(received.len())),
        );
        data = keep;
        data.extend(received);
    }
    data
}
