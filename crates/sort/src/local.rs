//! Local sorting kernels with hybrid (rayon) parallelism.

use crate::radix::{par_radix_sort_by_key, RadixKey, SortOutcome};
use kamsta_comm::Comm;
use rayon::prelude::*;

/// Sort a local slice, charging `γ·n·log n` local work. Uses the rayon
/// parallel sort when the PE runs with more than one hybrid thread
/// (the paper's OpenMP threads, Sec. VI).
pub fn local_sort<T: Ord + Send>(comm: &Comm, data: &mut [T]) {
    let n = data.len();
    if n > 1 {
        let logn = kamsta_comm::ceil_log2(n) as u64;
        comm.charge_local(n as u64 * logn.max(1));
    }
    // The pool's parallel merge sort pays an extra merge copy per
    // level; below ~2^15 elements the plain pdqsort wins even with
    // real cores behind the pool.
    if comm.threads_per_pe() > 1 && n > 32_768 {
        data.par_sort_unstable();
    } else {
        data.sort_unstable();
    }
}

/// Sort a local slice by a packed radix key, charging γ by what
/// actually ran: `n` for an already-sorted scan, `n·passes` for the
/// counting-sort passes, `n·log n` for the comparison fallback (as
/// [`local_sort`] charges). Hybrid PEs run the width-parallel radix
/// sorter ([`par_radix_sort_by_key`]), which takes the *same* path
/// decisions and produces the *same* permutation as the sequential
/// sorter — so both the output and the modeled charge are independent
/// of `threads_per_pe`. (An earlier revision abandoned radix entirely
/// at t > 1 and flat-charged `n·log n`, which made the `-8` variants'
/// charges — and, for key orders differing from `T: Ord`, their
/// output — diverge from t = 1.)
pub fn local_radix_sort<T: Copy + Ord + Send + Sync, K: RadixKey + Send>(
    comm: &Comm,
    data: &mut [T],
    key_of: impl Fn(&T) -> K + Sync,
) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let logn = kamsta_comm::ceil_log2(n).max(1) as u64;
    let units = match par_radix_sort_by_key(data, key_of) {
        SortOutcome::AlreadySorted => n as u64,
        SortOutcome::Radix(passes) => n as u64 * (passes as u64).clamp(1, logn),
        SortOutcome::Comparison => n as u64 * logn,
    };
    comm.charge_local(units);
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig};

    #[test]
    fn sorts_and_charges() {
        let out = Machine::run(MachineConfig::new(2), |comm| {
            let mut v = vec![5u32, 3, 9, 1, 1, 0];
            local_sort(comm, &mut v);
            (v, comm.stats().local_ops)
        });
        for (v, ops) in out.results {
            assert_eq!(v, vec![0, 1, 1, 3, 5, 9]);
            assert!(ops > 0);
        }
    }

    #[test]
    fn radix_charges_and_output_are_thread_invariant() {
        // The modeled charge keys on the SortOutcome, which must not
        // depend on threads_per_pe — t=1 and t=4 must agree bit for bit
        // on both the permutation and local_ops.
        let run = |threads: usize| {
            Machine::run(MachineConfig::new(1).with_threads(threads), |comm| {
                let mut v: Vec<(u32, u32)> = (0..100_000u64)
                    .map(|i| (((i * 2_654_435_761) % 512) as u32, i as u32))
                    .collect();
                local_radix_sort(comm, &mut v, |&(k, _)| k);
                (v, comm.stats().local_ops)
            })
        };
        let (seq, seq_ops) = run(1).results.remove(0);
        for t in [2usize, 4] {
            let (par, par_ops) = run(t).results.remove(0);
            assert_eq!(par, seq, "t={t} permutation");
            assert_eq!(par_ops, seq_ops, "t={t} charge");
        }
    }

    #[test]
    fn parallel_path_sorts_large_input() {
        let out = Machine::run(MachineConfig::new(1).with_threads(4), |comm| {
            let mut v: Vec<u64> = (0..50_000).map(|i| (i * 2_654_435_761) % 65_536).collect();
            local_sort(comm, &mut v);
            v.windows(2).all(|w| w[0] <= w[1])
        });
        assert!(out.results[0]);
    }
}
