//! Local sorting kernels with hybrid (rayon) parallelism.

use crate::radix::{radix_sort_by_key, RadixKey, SortOutcome};
use kamsta_comm::Comm;
use rayon::prelude::*;

/// Sort a local slice, charging `γ·n·log n` local work. Uses the rayon
/// parallel sort when the PE runs with more than one hybrid thread
/// (the paper's OpenMP threads, Sec. VI).
pub fn local_sort<T: Ord + Send>(comm: &Comm, data: &mut [T]) {
    let n = data.len();
    if n > 1 {
        let logn = kamsta_comm::ceil_log2(n) as u64;
        comm.charge_local(n as u64 * logn.max(1));
    }
    if comm.threads_per_pe() > 1 && n > 4096 {
        data.par_sort_unstable();
    } else {
        data.sort_unstable();
    }
}

/// Sort a local slice by a packed radix key, charging γ by what
/// actually ran: `n` for an already-sorted scan, `n·passes` for the
/// counting-sort passes, `n·log n` for the comparison fallback (as
/// [`local_sort`] charges). Hybrid PEs with large slices use the rayon
/// parallel comparison sort, exactly as [`local_sort`] does — the
/// radix passes are sequential and must not cost the `-8` variants
/// their thread speedup.
pub fn local_radix_sort<T: Copy + Ord + Send, K: RadixKey>(
    comm: &Comm,
    data: &mut [T],
    key_of: impl Fn(&T) -> K,
) {
    let n = data.len();
    if n < 2 {
        return;
    }
    let logn = kamsta_comm::ceil_log2(n).max(1) as u64;
    if comm.threads_per_pe() > 1 && n > 4096 {
        comm.charge_local(n as u64 * logn);
        data.par_sort_unstable();
        return;
    }
    let units = match radix_sort_by_key(data, key_of) {
        SortOutcome::AlreadySorted => n as u64,
        SortOutcome::Radix(passes) => n as u64 * (passes as u64).clamp(1, logn),
        SortOutcome::Comparison => n as u64 * logn,
    };
    comm.charge_local(units);
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig};

    #[test]
    fn sorts_and_charges() {
        let out = Machine::run(MachineConfig::new(2), |comm| {
            let mut v = vec![5u32, 3, 9, 1, 1, 0];
            local_sort(comm, &mut v);
            (v, comm.stats().local_ops)
        });
        for (v, ops) in out.results {
            assert_eq!(v, vec![0, 1, 1, 3, 5, 9]);
            assert!(ops > 0);
        }
    }

    #[test]
    fn parallel_path_sorts_large_input() {
        let out = Machine::run(MachineConfig::new(1).with_threads(4), |comm| {
            let mut v: Vec<u64> = (0..10_000).map(|i| (i * 2_654_435_761) % 65_536).collect();
            local_sort(comm, &mut v);
            v.windows(2).all(|w| w[0] <= w[1])
        });
        assert!(out.results[0]);
    }
}
