//! End-to-end correctness of the distributed sorters: the rank-order
//! concatenation of outputs must be the sorted multiset of all inputs.

use kamsta_comm::{Machine, MachineConfig};
use kamsta_sort::{hypercube_quicksort, is_globally_sorted, rebalance, sample_sort, sort_auto};

/// Deterministic pseudo-random input for PE `rank`.
fn input_for(rank: usize, n: usize, salt: u64) -> Vec<u64> {
    let mut state = salt
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(rank as u64 + 1);
    (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 24
        })
        .collect()
}

fn check_sorter(p: usize, per_pe: usize, salt: u64, which: &str) {
    let which_owned = which.to_string();
    let out = Machine::run(MachineConfig::new(p), move |comm| {
        let data = input_for(comm.rank(), per_pe, salt);
        let sorted = match which_owned.as_str() {
            "hypercube" => hypercube_quicksort(comm, data, 42),
            "sample" => sample_sort(comm, data, 42),
            "auto" => sort_auto(comm, data, 42),
            _ => unreachable!(),
        };
        let ok = is_globally_sorted(comm, &sorted);
        (sorted, ok)
    });
    let mut flat: Vec<u64> = Vec::new();
    let mut expected: Vec<u64> = Vec::new();
    for (rank, (chunk, ok)) in out.results.into_iter().enumerate() {
        assert!(ok, "{which} p={p}: checker rejected output");
        flat.extend(chunk);
        expected.extend(input_for(rank, per_pe, salt));
    }
    expected.sort_unstable();
    assert_eq!(
        flat, expected,
        "{which} p={p} per_pe={per_pe}: output is not the sorted input multiset"
    );
}

#[test]
fn hypercube_sorts_power_of_two() {
    for p in [1, 2, 4, 8, 16] {
        check_sorter(p, 50, 7, "hypercube");
    }
}

#[test]
fn hypercube_sorts_non_power_of_two() {
    for p in [3, 5, 6, 7, 11, 12] {
        check_sorter(p, 37, 8, "hypercube");
    }
}

#[test]
fn hypercube_sorts_empty_and_tiny_inputs() {
    for p in [2, 4, 7] {
        check_sorter(p, 0, 1, "hypercube");
        check_sorter(p, 1, 2, "hypercube");
    }
}

#[test]
fn sample_sorts_various_sizes() {
    for p in [1, 2, 3, 4, 8, 13] {
        check_sorter(p, 500, 9, "sample");
    }
}

#[test]
fn sample_sorts_skewed_duplicates() {
    let p = 6;
    let out = Machine::run(MachineConfig::new(p), move |comm| {
        // Heavy duplication: only 4 distinct keys.
        let data: Vec<u64> = (0..200).map(|i| (i + comm.rank()) as u64 % 4).collect();
        sample_sort(comm, data, 3)
    });
    let flat: Vec<u64> = out.results.into_iter().flatten().collect();
    assert_eq!(flat.len(), 200 * p);
    assert!(flat.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn auto_picks_hypercube_for_small_and_sample_for_large() {
    // Functional check only: both paths must sort correctly.
    check_sorter(8, 10, 4, "auto"); // avg 10 <= 512 → hypercube path
    check_sorter(8, 2000, 5, "auto"); // avg 2000 > 512 → sample path
}

#[test]
fn sorters_are_deterministic() {
    let run = || {
        Machine::run(MachineConfig::new(6), |comm| {
            let data = input_for(comm.rank(), 300, 11);
            sample_sort(comm, data, 99)
        })
        .results
    };
    assert_eq!(run(), run());
}

#[test]
fn sort_then_rebalance_gives_balanced_sorted_blocks() {
    let p = 5;
    let per_pe = 123;
    let out = Machine::run(MachineConfig::new(p), move |comm| {
        let data = input_for(comm.rank(), per_pe, 13);
        let sorted = sample_sort(comm, data, 21);
        let balanced = rebalance(comm, sorted);
        let ok = is_globally_sorted(comm, &balanced);
        (balanced, ok)
    });
    let total = p * per_pe;
    let mut flat = Vec::new();
    for (i, (chunk, ok)) in out.results.into_iter().enumerate() {
        assert!(ok);
        let lo = (i * total) / p;
        let hi = ((i + 1) * total) / p;
        assert_eq!(chunk.len(), hi - lo, "PE {i} should hold its block");
        flat.extend(chunk);
    }
    assert!(flat.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn sorting_charges_communication_and_work() {
    let out = Machine::run(MachineConfig::new(4), |comm| {
        let data = input_for(comm.rank(), 1000, 17);
        sample_sort(comm, data, 1);
    });
    assert!(out.total_messages() > 0);
    assert!(out.total_bytes() > 0);
    assert!(out.modeled_time > 0.0);
}
