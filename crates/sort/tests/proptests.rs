//! Property-based tests: for arbitrary distributions of arbitrary data
//! over arbitrary PE counts, every sorter returns the sorted multiset.

use kamsta_comm::{Machine, MachineConfig};
use kamsta_sort::{hypercube_quicksort, rebalance, sample_sort};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hypercube_matches_reference(
        p in 1usize..9,
        chunks in prop::collection::vec(prop::collection::vec(any::<u32>(), 0..60), 1..9),
        seed in any::<u64>(),
    ) {
        let chunks_for_run = chunks.clone();
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let data = chunks_for_run.get(comm.rank()).cloned().unwrap_or_default();
            hypercube_quicksort(comm, data, seed)
        });
        let flat: Vec<u32> = out.results.into_iter().flatten().collect();
        let mut expected: Vec<u32> = chunks.iter().take(p).flatten().copied().collect();
        expected.sort_unstable();
        prop_assert_eq!(flat, expected);
    }

    #[test]
    fn sample_sort_matches_reference(
        p in 1usize..9,
        chunks in prop::collection::vec(prop::collection::vec(any::<u32>(), 0..120), 1..9),
        seed in any::<u64>(),
    ) {
        let chunks_for_run = chunks.clone();
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let data = chunks_for_run.get(comm.rank()).cloned().unwrap_or_default();
            sample_sort(comm, data, seed)
        });
        let flat: Vec<u32> = out.results.into_iter().flatten().collect();
        let mut expected: Vec<u32> = chunks.iter().take(p).flatten().copied().collect();
        expected.sort_unstable();
        prop_assert_eq!(flat, expected);
    }

    #[test]
    fn rebalance_preserves_sequence(
        p in 1usize..9,
        chunks in prop::collection::vec(prop::collection::vec(any::<u32>(), 0..50), 1..9),
    ) {
        let chunks_for_run = chunks.clone();
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let data = chunks_for_run.get(comm.rank()).cloned().unwrap_or_default();
            rebalance(comm, data)
        });
        let total: usize = chunks.iter().take(p).map(Vec::len).sum();
        let flat: Vec<u32> = out.results.iter().flatten().copied().collect();
        let expected: Vec<u32> = chunks.iter().take(p).flatten().copied().collect();
        prop_assert_eq!(flat, expected, "sequence must be preserved");
        for (i, chunk) in out.results.iter().enumerate() {
            let lo = (i * total) / p;
            let hi = ((i + 1) * total) / p;
            prop_assert_eq!(chunk.len(), hi - lo, "PE {} block size", i);
        }
    }
}
