//! **Fig. 6**: normalized running-time distribution across algorithm
//! phases for `boruvka-{1,8}` and `filterBoruvka-{1,8}` (b1/b8/f1/f8) on
//! 3D-RGG, GNM and RMAT at three machine sizes.

use kamsta::{Algorithm, Phase};
use kamsta_bench::{bench_mst_config, env_usize, Table, Variant, WeakScale};

const FAMILIES: [&str; 3] = ["3D-RGG", "GNM", "RMAT"];

fn main() {
    let max_cores = env_usize("KAMSTA_MAX_CORES", 64);
    let ws = WeakScale::from_env();
    let core_points = [max_cores / 4, max_cores / 2, max_cores];
    println!(
        "# Fig. 6 — normalized phase breakdown, 2^{} vertices / 2^{} edges per core",
        ws.v_per_core, ws.m_per_core
    );
    println!("# cells: fraction of the bottleneck modeled time spent per phase\n");

    let variants = [
        (
            "b1",
            Variant {
                algo: Algorithm::Boruvka,
                threads: 1,
            },
        ),
        (
            "b8",
            Variant {
                algo: Algorithm::Boruvka,
                threads: 8,
            },
        ),
        (
            "f1",
            Variant {
                algo: Algorithm::FilterBoruvka,
                threads: 1,
            },
        ),
        (
            "f8",
            Variant {
                algo: Algorithm::FilterBoruvka,
                threads: 8,
            },
        ),
    ];

    for family in FAMILIES {
        for &cores in &core_points {
            if cores < 8 {
                continue;
            }
            println!("## {family} @ {cores} cores");
            let mut headers: Vec<String> = vec!["phase".into()];
            headers.extend(variants.iter().map(|(l, _)| l.to_string()));
            let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
            let mut table = Table::new(&header_refs);
            let config = ws.config(family, cores);
            let mut norms: Vec<Option<[f64; 8]>> = Vec::new();
            for (_, v) in &variants {
                let norm = v
                    .run(cores, config, bench_mst_config(), 42)
                    .and_then(|s| s.phases.map(|p| p.normalized()));
                norms.push(norm);
            }
            for (i, phase) in Phase::ALL.iter().enumerate() {
                let mut cells = vec![phase.label().to_string()];
                for n in &norms {
                    match n {
                        Some(frac) => cells.push(format!("{:.3}", frac[i])),
                        None => cells.push("-".into()),
                    }
                }
                table.row(cells);
            }
            table.print();
            println!();
        }
    }
    println!("# paper shape: 3D-RGG spends heavily on localPreprocessing; GNM/RMAT skip it");
    println!("# and are dominated by exchangeLabels+relabel and redistribute, which the");
    println!("# filter variants shift into partition+filter");
}
