//! **Sec. VII-C**: comparison with shared-memory algorithms. The paper
//! compares against MASTIFF on a 128-core server; our stand-in for the
//! state-of-the-art single-node code is the rayon parallel Borůvka with
//! min-priority-write (DESIGN.md S7). The qualitative claim to
//! reproduce: the distributed algorithms are a modest factor slower at
//! small core counts and overtake as cores grow.

use kamsta::{Algorithm, Machine, MachineConfig, WEdge};
use kamsta_bench::{bench_mst_config, core_series, env_usize, standin_instances, Table, Variant};
use kamsta_graph::InputGraph;

fn main() {
    let scale = env_usize("KAMSTA_STRONG_SCALE", 13) as u32;
    let max_cores = env_usize("KAMSTA_MAX_CORES", 64);
    println!("# Sec. VII-C — distributed algorithms vs. shared-memory parallel Borůvka");
    println!("# shared-memory column: wall seconds on this host; distributed: modeled seconds\n");

    let mut table = Table::new(&[
        "instance",
        "shared-mem (s)",
        "cores",
        "boruvka-1 (s)",
        "filterBoruvka-1 (s)",
    ]);
    for (name, _, config) in standin_instances(scale).into_iter().take(3) {
        // Materialise the full graph once for the shared-memory run.
        let out = Machine::run(MachineConfig::new(4), move |comm| {
            let input = InputGraph::generate(comm, config, 42);
            input
                .graph
                .edges
                .iter()
                .map(|e| e.wedge())
                .collect::<Vec<WEdge>>()
        });
        let full: Vec<WEdge> = out.results.into_iter().flatten().collect();
        let t0 = std::time::Instant::now();
        let msf = kamsta::core::shared::par_boruvka(&full);
        let shared_secs = t0.elapsed().as_secs_f64();
        let shared_weight: u64 = msf.iter().map(|e| e.w as u64).sum();

        for cores in core_series(max_cores) {
            let b = Variant {
                algo: Algorithm::Boruvka,
                threads: 1,
            }
            .run(cores, config, bench_mst_config(), 42)
            .unwrap();
            let f = Variant {
                algo: Algorithm::FilterBoruvka,
                threads: 1,
            }
            .run(cores, config, bench_mst_config(), 42)
            .unwrap();
            assert_eq!(b.msf_weight, shared_weight, "{name}: weight mismatch");
            table.row(vec![
                name.to_string(),
                format!("{shared_secs:.4}"),
                cores.to_string(),
                format!("{:.4}", b.modeled_time),
                format!("{:.4}", f.modeled_time),
            ]);
        }
    }
    table.print();
    println!(
        "\n# paper shape: shared memory wins at ~256 cores; distributed overtakes from ~1-4k cores"
    );
}
