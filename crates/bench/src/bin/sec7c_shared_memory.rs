//! **Sec. VII-C**: comparison with shared-memory algorithms — and the
//! harness for the intra-PE thread pool. The paper compares against
//! MASTIFF on a 128-core server; our stand-in for the state-of-the-art
//! single-node code is the rayon parallel Borůvka with
//! min-priority-write (DESIGN.md S7). Since the hybrid `threads_per_pe`
//! axis now drives *real* worker threads (DESIGN.md S11), this binary
//! also measures the p × t wall-clock matrix: a fixed PE count at
//! t ∈ {1, 2, 8}, with the per-scope wall breakdown ([`kamsta::WallStats`])
//! and per-scope speedups vs. t = 1.
//!
//! Caveat recorded in EXPERIMENTS.md: wall speedup > 1 requires real
//! cores. On a single-core host every width shares one core, so the
//! expected hybrid "speedup" there is ≈ 1.0 (pool overhead shows up as
//! a few percent); the ≥ 2× target applies to hosts with ≥ t free cores.

use kamsta::{Algorithm, Machine, MachineConfig, RunSummary, Runner, WEdge};
use kamsta_bench::{bench_mst_config, env_usize, Table, WeakScale};
use kamsta_graph::InputGraph;

fn best_of(reps: usize, run: impl Fn() -> RunSummary) -> RunSummary {
    let mut best: Option<RunSummary> = None;
    for _ in 0..reps {
        let s = run();
        if best.as_ref().is_none_or(|b| s.wall_time < b.wall_time) {
            best = Some(s);
        }
    }
    best.expect("reps >= 1")
}

fn main() {
    let ws = WeakScale::from_env();
    let pes = env_usize("KAMSTA_SEC7C_PES", 4);
    let reps = env_usize("KAMSTA_SEC7C_REPS", 3);
    let config = ws.config("GNM", 16);
    let seed = 42u64;

    println!("# Sec. VII-C — shared-memory Borůvka vs. distributed, and the p × t hybrid matrix");
    println!(
        "# host cores: {}",
        std::thread::available_parallelism().map_or(1, usize::from)
    );
    println!("# instance: GNM weak-scaled to 16 cores ({config:?}), p = {pes}, best of {reps}\n");

    // Shared-memory baseline: one flat edge list through the rayon
    // parallel Borůvka at full host width.
    let out = Machine::run(MachineConfig::new(pes), move |comm| {
        let input = InputGraph::generate(comm, config, seed);
        input
            .graph
            .edges
            .iter()
            .map(|e| e.wedge())
            .collect::<Vec<WEdge>>()
    });
    let full: Vec<WEdge> = out.results.into_iter().flatten().collect();
    let t0 = std::time::Instant::now();
    let msf = kamsta::core::shared::par_boruvka(&full);
    let shared_secs = t0.elapsed().as_secs_f64();
    let shared_weight: u64 = msf.iter().map(|e| e.w as u64).sum();
    println!("shared-memory par_boruvka: {shared_secs:.4} s (weight {shared_weight})\n");

    let mut table = Table::new(&[
        "variant",
        "p",
        "t",
        "wall (s)",
        "generate",
        "prepare",
        "solve",
        "redist",
        "modeled (s)",
    ]);
    let mut t1: Option<RunSummary> = None;
    for t in [1usize, 2, 8] {
        let s = best_of(reps, || {
            Runner::new(pes, t)
                .with_mst_config(bench_mst_config())
                .run_generated(config, Algorithm::Boruvka, seed)
        });
        assert_eq!(s.msf_weight, shared_weight, "t={t}: weight mismatch");
        let w = s.wall_stats;
        table.row(vec![
            format!("boruvka-{t}"),
            pes.to_string(),
            t.to_string(),
            format!("{:.4}", s.wall_time),
            format!("{:.4}", w.generate),
            format!("{:.4}", w.prepare),
            format!("{:.4}", w.solve),
            format!("{:.4}", w.redistribute),
            format!("{:.4}", s.modeled_time),
        ]);
        if t == 1 {
            t1 = Some(s);
        } else {
            let base = t1.as_ref().expect("t=1 runs first");
            let bw = base.wall_stats;
            let ratio = |a: f64, b: f64| if b > 0.0 { a / b } else { f64::NAN };
            println!(
                "t={t} speedup vs t=1: total {:.2}x | generate {:.2}x prepare {:.2}x \
                 solve {:.2}x redistribute {:.2}x (local-dominated: prepare+solve {:.2}x)",
                ratio(base.wall_time, s.wall_time),
                ratio(bw.generate, w.generate),
                ratio(bw.prepare, w.prepare),
                ratio(bw.solve, w.solve),
                ratio(bw.redistribute, w.redistribute),
                ratio(bw.prepare + bw.solve, w.prepare + w.solve),
            );
        }
    }
    println!();
    table.print();
    println!(
        "\n# paper shape: shared memory wins at ~256 cores; distributed overtakes from ~1-4k cores"
    );
}
