//! **Fig. 4**: running time of the algorithms *without* local
//! preprocessing on the high-locality families (paper: 2^17 vertices and
//! 2^23 edges per core), with the fastest preprocessing-enabled variant
//! (`local-boruvka-8`) as the baseline. Shows local contraction is worth
//! up to 5× on these inputs.

use kamsta::{Algorithm, MstConfig};
use kamsta_bench::{bench_mst_config, core_series, env_usize, Table, Variant, WeakScale};

const FAMILIES: [&str; 4] = ["2D-GRID", "2D-RGG", "3D-RGG", "RHG"];

fn main() {
    let max_cores = env_usize("KAMSTA_MAX_CORES", 64);
    // Fig. 4 uses denser inputs than Fig. 3 (2^23 vs 2^21 per core): add
    // two to the default edge density.
    let base = WeakScale::from_env();
    let ws = WeakScale {
        v_per_core: base.v_per_core,
        m_per_core: env_usize("KAMSTA_M_PER_CORE", base.m_per_core as usize + 2) as u32,
    };
    println!(
        "# Fig. 4 — no-preprocessing ablation, 2^{} vertices / 2^{} edges per core (paper: 2^17 / 2^23)",
        ws.v_per_core, ws.m_per_core
    );
    println!(
        "# cells: modeled seconds (lower is better); local-boruvka-8 keeps preprocessing on\n"
    );

    let noprep = |algo: Algorithm, threads: usize| Variant { algo, threads };
    let variants = [
        noprep(Algorithm::BoruvkaNoPreprocessing, 1),
        noprep(Algorithm::BoruvkaNoPreprocessing, 8),
        noprep(Algorithm::FilterBoruvka, 1),
        noprep(Algorithm::FilterBoruvka, 8),
    ];
    let baseline = Variant {
        algo: Algorithm::Boruvka,
        threads: 8,
    };
    let nofilter_prep_cfg: MstConfig = bench_mst_config();
    let noprep_cfg = MstConfig {
        preprocessing: false,
        ..bench_mst_config()
    };

    for family in FAMILIES {
        println!("## {family}");
        let mut table = Table::new(&[
            "cores",
            "boruvka-1",
            "boruvka-8",
            "filterBoruvka-1",
            "filterBoruvka-8",
            "local-boruvka-8",
            "prep speedup",
        ]);
        for cores in core_series(max_cores) {
            let config = ws.config(family, cores);
            let mut cells = vec![cores.to_string()];
            let mut best_noprep = f64::INFINITY;
            for v in &variants {
                match v.run(cores, config, noprep_cfg, 42) {
                    Some(s) => {
                        best_noprep = best_noprep.min(s.modeled_time);
                        cells.push(format!("{:.4}", s.modeled_time));
                    }
                    None => cells.push("-".into()),
                }
            }
            let with_prep = baseline
                .run(cores, config, nofilter_prep_cfg, 42)
                .map(|s| s.modeled_time);
            match with_prep {
                Some(t) => {
                    cells.push(format!("{t:.4}"));
                    cells.push(format!("{:.2}x", best_noprep / t.max(1e-12)));
                }
                None => {
                    cells.push("-".into());
                    cells.push("-".into());
                }
            }
            table.row(cells);
        }
        table.print();
        println!();
    }
    println!("# paper shape: local-boruvka-8 is fastest on every local family (up to 5x)");
}
