//! **Perf trajectory**: end-to-end wall/modeled timings on a fixed
//! instance set, written as machine-readable JSON so successive PRs can
//! regress against each other (`BENCH_pr<N>.json` at the repo root).
//!
//! Instances: the GNM / RMAT / RoadLike / 2D-RGG / RHG weak-scaling
//! configurations (the latter two are the paper's Fig. 3 geometric
//! families) at fixed seeds, run with `boruvka-1` and `filterBoruvka-1`,
//! plus the
//! batch-dynamic workload (`dyn-64`: random updates in batches of 64 on
//! GNM, wall time of the dynamic path; its `edges_per_second` field
//! reports the *touched-edge volume* — certificate edges examined by
//! the re-solves — per modeled second, so dyn throughput stays
//! comparable across PRs regardless of the op count; `input_edges` is
//! the op count).
//!
//! Since PR 3, `modeled_time`/`edges_per_second` of the static entries
//! cover the MST computation only (input generation and preparation
//! excluded, matching the paper's methodology); `wall_time` still spans
//! the whole simulation.
//!
//! Since PR 8 every static entry also carries the wall-side phase
//! breakdown (`wall_generate` / `wall_prepare` / `wall_solve` /
//! `wall_redistribute`, the bottleneck-reduced [`kamsta::WallStats`]
//! scopes) plus `wall_modeled_divergence` = `wall_time / modeled_time`.
//! The divergence is the one number the modeled α-β-γ clock cannot see:
//! a generator or preparation wall cliff leaves `modeled_time` untouched
//! and blows this ratio up instead. With a baseline, each matched entry
//! additionally gets `divergence_vs_baseline` — its divergence relative
//! to the baseline's — which `perf_check` gates.
//!
//! Since PR 9 the hybrid `boruvka-8` / `filterBoruvka-8` variants ride
//! along: the **same p** as their `-1` siblings, each PE driving an
//! 8-wide pool (DESIGN.md S11). Holding p fixed makes the `-8` vs `-1`
//! delta exactly the pool's wall cost/benefit at identical distribution
//! — the paper's core-budget split (p = cores/t, [`Variant::runner`])
//! stays with the figure binaries, where cross-p comparison is the
//! point. Hybrid baseline rows fall back to the `-1` sibling when the
//! previous PR's file predates the hybrid entries.
//!
//! Environment:
//!
//! * `KAMSTA_MAX_CORES` — simulated core count (default 16);
//! * `KAMSTA_V_PER_CORE` / `KAMSTA_M_PER_CORE` — weak-scaling sizes
//!   (defaults 10 / 14, as in the other harness binaries);
//! * `KAMSTA_PERF_REPS` — timing repetitions, minimum wall time is kept
//!   (default 3);
//! * `KAMSTA_BASELINE` — path to a previous run's JSON; when set, its
//!   **current entries** (one per instance×algo; the previous run's own
//!   nested `"baseline"` section is ignored) are embedded under
//!   `"baseline"` together with a `"baseline_source"` naming the file
//!   they came from, and per-entry speedups are computed;
//! * `KAMSTA_PERF_OUT` — output path (default `BENCH_pr10.json`);
//! * `KAMSTA_TRANSPORT` — transport backend (`cells` | `bytes` |
//!   `sockets`) for the simulated machines, resolved by `MachineConfig`
//!   itself.
//!
//! Independent of `KAMSTA_TRANSPORT`, every run additionally emits a
//! `boruvka-1-sockets` entry per family: the same workload pinned to
//! the TCP socket transport, so the real-wire overhead is tracked PR
//! over PR (modeled counters are transport-invariant by construction —
//! only the walls differ). Since PR 10 each `-sockets` entry also
//! carries `transport_tax` — its wall over the same family's
//! `boruvka-1` wall from this run — the sockets/cells gap as one
//! number, gated by `perf_check` so it cannot silently regress past
//! its post-PR-10 level.
//!
//! Since PR 7 one `chaos-overhead` entry rides along: the GNM workload
//! on sockets with fault-injection hooks **armed but empty**
//! (`FaultPlan::seeded` with no fault classes enabled). Arming turns on
//! per-frame checksum stamping and verification, so this wall tracks
//! the price of the chaos machinery itself; its distance from the
//! plain `boruvka-1-sockets` wall is the overhead a production run
//! would pay for always-on corruption detection.

use kamsta::{Algorithm, FaultPlan, MstConfig, RunSummary, Runner, TransportKind, WallStats};
use kamsta_bench::{bench_mst_config, dyn_throughput_workload, env_usize, Variant, WeakScale};

const SEED: u64 = 42;
/// The weak-scaling families: the PR 2 set (GNM / RMAT / ROAD) plus the
/// paper's Fig. 3 geometric families (2D-RGG, RHG), absent from the
/// BENCH files before PR 5.
const FAMILIES: [&str; 5] = ["GNM", "RMAT", "ROAD", "2D-RGG", "RHG"];

/// How one entry's machine is configured beyond the variant itself.
#[derive(Clone, Copy)]
enum Mode {
    /// Whatever `KAMSTA_TRANSPORT` resolves to (the default cells).
    EnvTransport,
    /// Pinned to the TCP socket transport.
    Sockets,
    /// Sockets with fault-injection hooks armed on an empty plan.
    ChaosArmed,
}

struct Entry {
    instance: &'static str,
    cores: usize,
    algo: String,
    wall_time: f64,
    modeled_time: f64,
    edges_per_second: f64,
    msf_weight: u64,
    input_edges: u64,
    /// Wall-side phase breakdown; `None` for the dynamic workload (its
    /// wall is the whole update stream, not one generate→solve pass).
    wall: Option<WallStats>,
}

impl Entry {
    /// Wall seconds per modeled second — the ratio the modeled clock is
    /// blind to (see module docs).
    fn divergence(&self) -> f64 {
        self.wall_time / self.modeled_time.max(f64::MIN_POSITIVE)
    }
}

fn run_entry(
    family: &'static str,
    cores: usize,
    v: Variant,
    cfg: MstConfig,
    ws: &WeakScale,
    reps: usize,
    mode: Mode,
) -> Option<Entry> {
    let config = ws.config(family, cores);
    let mut best: Option<RunSummary> = None;
    for _ in 0..reps.max(1) {
        // Same p for every variant (unlike the figure binaries' core
        // budget p = cores/t): the hybrid entries must differ from
        // their `-1` siblings only in pool width, or the gate would
        // compare different distributions.
        let mut runner = Runner::new(cores, v.threads).with_mst_config(cfg);
        match mode {
            Mode::EnvTransport => {}
            Mode::Sockets => runner = runner.with_transport(TransportKind::Sockets),
            Mode::ChaosArmed => {
                // Hooks armed, no fault class enabled: measures the
                // price of checksum stamping + verification alone.
                runner = runner
                    .with_transport(TransportKind::Sockets)
                    .with_faults(FaultPlan::seeded(7));
            }
        }
        let s = runner.run_generated(config, v.algo, SEED);
        let keep = match &best {
            Some(b) => s.wall_time < b.wall_time,
            None => true,
        };
        if keep {
            best = Some(s);
        }
    }
    let s = best?;
    let algo = match mode {
        Mode::ChaosArmed => "chaos-overhead".to_string(),
        Mode::Sockets => format!("{}-sockets", v.label()),
        Mode::EnvTransport => v.label(),
    };
    Some(Entry {
        instance: family,
        cores,
        algo,
        wall_time: s.wall_time,
        modeled_time: s.modeled_time,
        edges_per_second: s.edges_per_second,
        msf_weight: s.msf_weight,
        input_edges: s.input_edges,
        wall: Some(s.wall_stats),
    })
}

/// One entry line. `baseline` is the matched `(wall, modeled)` row of
/// the previous run, if any; `transport_tax` is the sockets-over-cells
/// wall ratio of `-sockets` entries (see module docs).
fn json_entry(e: &Entry, baseline: Option<(f64, f64)>, transport_tax: Option<f64>) -> String {
    let mut s = format!(
        "    {{\"instance\": \"{}\", \"cores\": {}, \"algo\": \"{}\", \
         \"wall_time\": {:.6}, \"modeled_time\": {:.6}, \
         \"edges_per_second\": {:.3}, \"msf_weight\": {}, \"input_edges\": {}",
        e.instance,
        e.cores,
        e.algo,
        e.wall_time,
        e.modeled_time,
        e.edges_per_second,
        e.msf_weight,
        e.input_edges
    );
    if let Some(w) = &e.wall {
        s.push_str(&format!(
            ", \"wall_generate\": {:.6}, \"wall_prepare\": {:.6}, \
             \"wall_solve\": {:.6}, \"wall_redistribute\": {:.6}",
            w.generate, w.prepare, w.solve, w.redistribute
        ));
    }
    s.push_str(&format!(
        ", \"wall_modeled_divergence\": {:.3}",
        e.divergence()
    ));
    if let Some(tax) = transport_tax {
        s.push_str(&format!(", \"transport_tax\": {tax:.3}"));
    }
    if let Some((bw, bm)) = baseline {
        let base_div = bw / bm.max(f64::MIN_POSITIVE);
        s.push_str(&format!(
            ", \"wall_speedup_vs_baseline\": {:.3}, \
             \"modeled_speedup_vs_baseline\": {:.3}, \
             \"divergence_vs_baseline\": {:.3}",
            bw / e.wall_time,
            bm / e.modeled_time,
            e.divergence() / base_div.max(f64::MIN_POSITIVE)
        ));
    }
    s.push('}');
    s
}

/// Minimal extraction of `(instance, algo, wall_time, modeled_time)`
/// tuples from a previous run's JSON (written by this binary — the format
/// is under our control, so no general parser is needed).
///
/// Only the previous run's own `"entries"` section is read: scanning
/// stops at its `"baseline"` key, and duplicate `(instance, algo)` rows
/// keep the first occurrence — so a baseline file that itself embeds a
/// baseline contributes exactly one row per instance×algo instead of
/// accumulating prior PRs' rows on every hop.
fn parse_baseline(text: &str) -> Vec<(String, String, f64, f64)> {
    let mut out: Vec<(String, String, f64, f64)> = Vec::new();
    for line in kamsta_bench::perf_entry_lines(text) {
        let field = |name: &str| kamsta_bench::perf_json_field(line, name);
        if let (Some(inst), Some(algo), Some(w), Some(m)) = (
            field("instance"),
            field("algo"),
            field("wall_time"),
            field("modeled_time"),
        ) {
            if let (Ok(w), Ok(m)) = (w.parse(), m.parse()) {
                if !out.iter().any(|(i, a, _, _)| *i == inst && *a == algo) {
                    out.push((inst, algo, w, m));
                }
            }
        }
    }
    out
}

fn main() {
    let cores = env_usize("KAMSTA_MAX_CORES", 16);
    let reps = env_usize("KAMSTA_PERF_REPS", 3);
    let ws = WeakScale::from_env();
    let cfg = bench_mst_config();
    let out_path =
        std::env::var("KAMSTA_PERF_OUT").unwrap_or_else(|_| "BENCH_pr10.json".to_string());
    let baseline_source = std::env::var("KAMSTA_BASELINE").ok();
    let baseline: Vec<(String, String, f64, f64)> = baseline_source
        .as_ref()
        .and_then(|p| std::fs::read_to_string(p).ok())
        .map(|t| parse_baseline(&t))
        .unwrap_or_default();

    // Since PR 9 the hybrid `-8` variants ride along: the same p as
    // the `-1` rows, each PE driving an 8-wide pool, exercising the
    // real intra-PE thread pool end to end (see module docs for why p
    // is held fixed here).
    let variants = [
        Variant {
            algo: Algorithm::Boruvka,
            threads: 1,
        },
        Variant {
            algo: Algorithm::FilterBoruvka,
            threads: 1,
        },
        Variant {
            algo: Algorithm::Boruvka,
            threads: 8,
        },
        Variant {
            algo: Algorithm::FilterBoruvka,
            threads: 8,
        },
    ];

    let mut entries: Vec<Entry> = Vec::new();
    for family in FAMILIES {
        for v in variants {
            if let Some(e) = run_entry(family, cores, v, cfg, &ws, reps, Mode::EnvTransport) {
                eprintln!(
                    "{family:>5} {:<16} wall {:.4}s modeled {:.4}s",
                    e.algo, e.wall_time, e.modeled_time
                );
                entries.push(e);
            }
        }
        // The socket-transport wall for the same workload: real TCP
        // between the PE threads, modeled counters unchanged.
        if let Some(e) = run_entry(family, cores, variants[0], cfg, &ws, reps, Mode::Sockets) {
            eprintln!(
                "{family:>5} {:<16} wall {:.4}s modeled {:.4}s",
                e.algo, e.wall_time, e.modeled_time
            );
            entries.push(e);
        }
    }

    // The chaos-machinery overhead probe: one socket-transport GNM run
    // with fault hooks armed but no fault class enabled.
    if let Some(e) = run_entry("GNM", cores, variants[0], cfg, &ws, reps, Mode::ChaosArmed) {
        eprintln!(
            "{:>5} {:<16} wall {:.4}s modeled {:.4}s",
            e.instance, e.algo, e.wall_time, e.modeled_time
        );
        entries.push(e);
    }

    // The batch-dynamic workload: 8 batches of 64 random updates on the
    // GNM instance, best-of-reps like the static entries.
    let (dyn_batches, dyn_batch) = (8usize, 64usize);
    let mut best: Option<kamsta_bench::DynThroughput> = None;
    for _ in 0..reps.max(1) {
        let t = dyn_throughput_workload(
            cores,
            ws.config("GNM", cores),
            cfg,
            SEED,
            dyn_batches,
            dyn_batch,
        );
        if best.is_none_or(|b| t.dyn_wall < b.dyn_wall) {
            best = Some(t);
        }
    }
    if let Some(t) = best {
        eprintln!(
            "  GNM dyn-{dyn_batch:<12} wall {:.4}s modeled {:.4}s ({:.2}x vs scratch)",
            t.dyn_wall,
            t.dyn_modeled,
            t.wall_speedup()
        );
        // Throughput over the *touched-edge volume* (certificate edges
        // examined by the re-solves), not the op count: ops say nothing
        // about how much graph the dynamic path actually processed, so
        // only the touched volume is comparable across PRs.
        let touched = t.stats.certificate_edges;
        entries.push(Entry {
            instance: "GNM",
            cores,
            algo: format!("dyn-{dyn_batch}"),
            wall_time: t.dyn_wall,
            modeled_time: t.dyn_modeled,
            edges_per_second: touched as f64 / t.dyn_modeled.max(f64::MIN_POSITIVE),
            msf_weight: t.final_weight,
            input_edges: t.ops,
            wall: None,
        });
    }

    let lookup = |inst: &str, algo: &str| -> Option<(f64, f64)> {
        if let Some(row) = baseline
            .iter()
            .find(|(i, a, _, _)| i == inst && a == algo)
            .map(|(_, _, w, m)| (*w, *m))
        {
            return Some(row);
        }
        // Hybrid `-8` entries measure the same workload as their `-1`
        // siblings under a different p × t split; baseline files from
        // before PR 9 have no hybrid rows, so fall back to the sibling —
        // the speedup then reads "this PR's hybrid split vs the previous
        // PR's single-thread split", which is exactly the trajectory the
        // gate should watch.
        let sibling = format!("{}-1", algo.strip_suffix("-8")?);
        baseline
            .iter()
            .find(|(i, a, _, _)| i == inst && *a == sibling)
            .map(|(_, _, w, m)| (*w, *m))
    };

    let mut body: Vec<String> = Vec::new();
    for e in &entries {
        // Sockets-over-cells wall ratio of this run: the real-wire tax
        // per family, measured against the env-transport `boruvka-1`
        // sibling from the same session (cells under the default CI
        // configuration, so host conditions cancel out of the ratio).
        let tax = e.algo.strip_suffix("-sockets").and_then(|sibling| {
            entries
                .iter()
                .find(|c| c.instance == e.instance && c.algo == sibling)
                .map(|c| e.wall_time / c.wall_time.max(f64::MIN_POSITIVE))
        });
        let base = lookup(e.instance, &e.algo);
        if base.is_none() && !baseline.is_empty() {
            // A baseline was supplied but has no row for this entry —
            // perf_check will refuse the gap on static entries, so make
            // it visible at measurement time.
            eprintln!(
                "perf_trajectory: warning: baseline has no ({}, {}) row — \
                 entry gets no *_vs_baseline fields",
                e.instance, e.algo
            );
        }
        body.push(json_entry(e, base, tax));
    }
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"bench\": \"perf_trajectory\", \"cores\": {cores}, \"seed\": {SEED}, \
         \"v_per_core\": {}, \"m_per_core\": {},\n",
        ws.v_per_core, ws.m_per_core
    ));
    json.push_str("  \"entries\": [\n");
    json.push_str(&body.join(",\n"));
    json.push_str("\n  ]");
    if !baseline.is_empty() {
        let base: Vec<String> = baseline
            .iter()
            .map(|(i, a, w, m)| {
                format!(
                    "    {{\"instance\": \"{i}\", \"algo\": \"{a}\", \
                     \"wall_time\": {w:.6}, \"modeled_time\": {m:.6}}}"
                )
            })
            .collect();
        let source = baseline_source.as_deref().unwrap_or("unknown");
        json.push_str(&format!(",\n  \"baseline_source\": \"{source}\""));
        json.push_str(",\n  \"baseline\": [\n");
        json.push_str(&base.join(",\n"));
        json.push_str("\n  ]");
    }
    json.push_str("\n}\n");
    std::fs::write(&out_path, &json).expect("write perf JSON");
    eprintln!("wrote {out_path}");
}
