//! **Perf check**: CI gate over a `perf_trajectory` JSON. Reads the file
//! given as the first argument (default `BENCH_pr7.json`), inspects every
//! *static* entry (the `dyn-*` workload is excluded — its wall time is
//! dominated by the update stream, not the substrate; `chaos-*` entries
//! are excluded too — they track the fault-injection machinery's own
//! overhead, not the substrate's trajectory) and fails with exit
//! code 1 if any entry's `wall_speedup_vs_baseline` falls below the
//! threshold — i.e. if its wall time regressed by more than the allowed
//! fraction against the baseline the trajectory run was given.
//!
//! Environment:
//!
//! * `KAMSTA_PERF_MIN_SPEEDUP` — minimum acceptable speedup (default
//!   `0.9`: fail on a >10% wall-time regression).

use kamsta_bench::{perf_entry_lines, perf_json_field as field};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr7.json".to_string());
    let min: f64 = std::env::var("KAMSTA_PERF_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.9);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("perf_check: cannot read {path}: {e}"));

    let mut checked = 0usize;
    let mut failures = Vec::new();
    for line in perf_entry_lines(&text) {
        let (Some(inst), Some(algo)) = (field(line, "instance"), field(line, "algo")) else {
            continue;
        };
        if algo.starts_with("dyn-") || algo.starts_with("chaos-") {
            continue;
        }
        let Some(speedup) = field(line, "wall_speedup_vs_baseline").and_then(|s| s.parse().ok())
        else {
            eprintln!("perf_check: {inst}/{algo} has no wall_speedup_vs_baseline — skipped");
            continue;
        };
        checked += 1;
        let speedup: f64 = speedup;
        let status = if speedup < min { "FAIL" } else { "ok" };
        eprintln!("perf_check: {inst:>5}/{algo:<16} wall speedup {speedup:.3} [{status}]");
        if speedup < min {
            failures.push(format!("{inst}/{algo}: {speedup:.3} < {min:.3}"));
        }
    }

    if checked == 0 {
        eprintln!("perf_check: no static entries with speedups found in {path}");
        std::process::exit(1);
    }
    if !failures.is_empty() {
        eprintln!(
            "perf_check: wall-time regression beyond {:.0}% on {} entr{}:",
            (1.0 - min) * 100.0,
            failures.len(),
            if failures.len() == 1 { "y" } else { "ies" }
        );
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    eprintln!("perf_check: all {checked} static entries within budget (min speedup {min:.3})");
}
