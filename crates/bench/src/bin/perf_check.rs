//! **Perf check**: CI gate over a `perf_trajectory` JSON. Reads the file
//! given as the first argument (default `BENCH_pr9.json`), inspects every
//! *static* entry (the `dyn-*` workload is excluded — its wall time is
//! dominated by the update stream, not the substrate; `chaos-*` entries
//! are excluded too — they track the fault-injection machinery's own
//! overhead, not the substrate's trajectory) and fails with exit code 1
//! if any of them regressed:
//!
//! * `wall_speedup_vs_baseline` below the threshold — the entry's wall
//!   time regressed by more than the allowed fraction against the
//!   baseline the trajectory run was given;
//! * `divergence_vs_baseline` above the growth bound — the entry's
//!   wall-seconds-per-modeled-second ratio blew up relative to the
//!   baseline. The modeled α-β-γ clock only covers the solve, so a
//!   generator or preparation wall cliff (the PR 8 RHG sweep bug's
//!   shape) moves *only* this ratio; gating it is what keeps such
//!   cliffs from landing silently;
//! * a static entry missing `wall_speedup_vs_baseline` entirely — every
//!   gated family must be measured against a baseline row; a silent gap
//!   is how the geometric families escaped the gate before PR 8;
//! * `transport_tax` (the `-sockets` entries' wall over the same
//!   family's `boruvka-1` wall, both from the same session) above the
//!   bound — the sockets/cells gap regressed past the post-PR-10
//!   byte-transport data path's level. The ratio is host-neutral:
//!   numerator and denominator share the session's conditions.
//!
//! Environment:
//!
//! * `KAMSTA_PERF_MIN_SPEEDUP` — minimum acceptable speedup (default
//!   `0.9`: fail on a >10% wall-time regression);
//! * `KAMSTA_PERF_MAX_DIVERGENCE_GROWTH` — maximum acceptable
//!   `divergence_vs_baseline` (default `10.0`);
//! * `KAMSTA_PERF_MAX_TRANSPORT_TAX` — maximum acceptable
//!   `transport_tax` on `-sockets` entries (default `12.0`; the
//!   post-PR-10 levels sit at 2–7× on an oversubscribed single-core
//!   host, family-dependent);
//! * `KAMSTA_PERF_ALLOW_MISSING` — set to `1` to demote missing
//!   speedup fields back to a warning (for trajectory runs taken
//!   without a baseline file).

use kamsta_bench::{perf_entry_lines, perf_json_field as field};

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_pr10.json".to_string());
    let min = env_f64("KAMSTA_PERF_MIN_SPEEDUP", 0.9);
    let max_div = env_f64("KAMSTA_PERF_MAX_DIVERGENCE_GROWTH", 10.0);
    let max_tax = env_f64("KAMSTA_PERF_MAX_TRANSPORT_TAX", 12.0);
    let allow_missing = std::env::var("KAMSTA_PERF_ALLOW_MISSING").is_ok_and(|v| v == "1");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("perf_check: cannot read {path}: {e}"));

    let mut seen = 0usize;
    let mut checked = 0usize;
    let mut failures = Vec::new();
    for line in perf_entry_lines(&text) {
        let (Some(inst), Some(algo)) = (field(line, "instance"), field(line, "algo")) else {
            continue;
        };
        if algo.starts_with("dyn-") || algo.starts_with("chaos-") {
            continue;
        }
        seen += 1;
        let speedup: Option<f64> =
            field(line, "wall_speedup_vs_baseline").and_then(|s| s.parse().ok());
        let Some(speedup) = speedup else {
            if allow_missing {
                eprintln!("perf_check: {inst}/{algo} has no wall_speedup_vs_baseline — allowed");
            } else {
                eprintln!("perf_check: {inst:>5}/{algo:<16} missing speedup [FAIL]");
                failures.push(format!(
                    "{inst}/{algo}: no wall_speedup_vs_baseline (set \
                     KAMSTA_PERF_ALLOW_MISSING=1 for baseline-less runs)"
                ));
            }
            continue;
        };
        checked += 1;
        let div: Option<f64> = field(line, "divergence_vs_baseline").and_then(|s| s.parse().ok());
        let tax: Option<f64> = field(line, "transport_tax").and_then(|s| s.parse().ok());
        let speed_ok = speedup >= min;
        let div_ok = div.is_none_or(|d| d <= max_div);
        let tax_ok = tax.is_none_or(|t| t <= max_tax);
        let status = if speed_ok && div_ok && tax_ok {
            "ok"
        } else {
            "FAIL"
        };
        let div_str = div.map_or(String::new(), |d| format!(" divergence x{d:.2}"));
        let tax_str = tax.map_or(String::new(), |t| format!(" tax x{t:.2}"));
        eprintln!(
            "perf_check: {inst:>5}/{algo:<16} wall speedup {speedup:.3}{div_str}{tax_str} \
             [{status}]"
        );
        if !speed_ok {
            failures.push(format!("{inst}/{algo}: speedup {speedup:.3} < {min:.3}"));
        }
        if !div_ok {
            failures.push(format!(
                "{inst}/{algo}: wall/modeled divergence grew x{:.2} > x{max_div:.2} \
                 vs baseline (wall cliff outside the modeled scopes)",
                div.unwrap()
            ));
        }
        if !tax_ok {
            failures.push(format!(
                "{inst}/{algo}: transport tax x{:.2} > x{max_tax:.2} \
                 (sockets wall regressed relative to the cells wall)",
                tax.unwrap()
            ));
        }
    }

    // An empty/corrupt file must fail even with the opt-out; a
    // baseline-less run under KAMSTA_PERF_ALLOW_MISSING=1 has static
    // entries but nothing gateable, which is the point of the opt-out.
    if seen == 0 {
        eprintln!("perf_check: no static entries found in {path}");
        std::process::exit(1);
    }
    if checked == 0 && failures.is_empty() && !allow_missing {
        eprintln!("perf_check: no static entries with speedups found in {path}");
        std::process::exit(1);
    }
    if !failures.is_empty() {
        eprintln!(
            "perf_check: {} failure{}:",
            failures.len(),
            if failures.len() == 1 { "" } else { "s" }
        );
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    eprintln!(
        "perf_check: all {checked} static entries within budget \
         (min speedup {min:.3}, max divergence growth x{max_div:.2})"
    );
}
