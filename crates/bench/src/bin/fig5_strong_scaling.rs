//! **Fig. 5**: strong scaling on the six real-world graphs. The original
//! instances (friendster, twitter, uk-2007, it-2004, US-road, wdc-14)
//! are unavailable offline, so structure-matched stand-ins are used
//! (DESIGN.md S5): social → RMAT, web → RHG, road → perturbed grid. A
//! DIMACS loader exists for running the real US-road instance when
//! available (`kamsta_graph::io::load_dimacs`).

use kamsta_bench::{
    bench_mst_config, core_series, env_usize, paper_variants, standin_instances, Table,
};

fn main() {
    let max_cores = env_usize("KAMSTA_MAX_CORES", 64);
    // Instance size: fixed (strong scaling). Default 2^14 vertices-ish.
    let scale = env_usize("KAMSTA_STRONG_SCALE", 14) as u32;
    println!("# Fig. 5 — strong scaling on real-world stand-ins (scale 2^{scale}; * = synthetic stand-in)");
    println!("# cells: modeled seconds (lower is better)\n");

    let variants = paper_variants();
    for (name, original, config) in standin_instances(scale) {
        println!("## {name} (paper original: {original})");
        let mut headers: Vec<String> = vec!["cores".into()];
        headers.extend(variants.iter().map(|v| v.label()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(&header_refs);
        for cores in core_series(max_cores) {
            let mut cells = vec![cores.to_string()];
            for v in &variants {
                match v.run(cores, config, bench_mst_config(), 42) {
                    Some(s) => cells.push(format!("{:.4}", s.modeled_time)),
                    None => cells.push("-".into()),
                }
            }
            table.row(cells);
        }
        table.print();
        println!();
    }
    println!("# paper shape: our algorithms scale to the largest core counts and beat");
    println!("# competitors 4-40x; filter wins on social graphs, plain boruvka elsewhere");
}
