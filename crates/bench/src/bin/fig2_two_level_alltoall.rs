//! **Fig. 2**: effect of the two-level all-to-all on component
//! contraction. The paper runs distributed Borůvka on GNM(2^17, 2^21 per
//! core) and plots the accumulated running time of the contraction phase
//! for one-level (direct `MPI_Alltoallv`) vs. two-level (grid) delivery:
//! one-level grows with the core count, two-level stays flat.

use kamsta::{Algorithm, AlltoallKind, Phase};
use kamsta_bench::{bench_mst_config, core_series, env_usize, Table, Variant, WeakScale};

fn main() {
    let max_cores = env_usize("KAMSTA_MAX_CORES", 64);
    let ws = WeakScale::from_env();
    println!(
        "# Fig. 2 — contraction-phase time, GNM(2^{}, 2^{}) per core (paper: 2^17, 2^21)",
        ws.v_per_core, ws.m_per_core
    );
    println!("# modeled seconds of the contractComponents phase; lower is better\n");

    let variant = Variant {
        algo: Algorithm::Boruvka,
        threads: 1,
    };
    let phase_idx = Phase::ALL
        .iter()
        .position(|p| *p == Phase::ContractComponents)
        .unwrap();

    let mut table = Table::new(&[
        "cores",
        "one-level (s)",
        "two-level (s)",
        "speedup",
        "one-level msgs",
        "two-level msgs",
    ]);
    for cores in core_series(max_cores) {
        let config = ws.config("GNM", cores);
        let run = |kind: AlltoallKind| {
            let runner = variant
                .runner(cores, bench_mst_config())
                .unwrap()
                .with_alltoall(kind);
            runner.run_generated(config, variant.algo, 42)
        };
        let direct = run(AlltoallKind::Direct);
        let grid = run(AlltoallKind::Grid);
        let t_direct = direct.phases.as_ref().unwrap().modeled[phase_idx];
        let t_grid = grid.phases.as_ref().unwrap().modeled[phase_idx];
        assert_eq!(direct.msf_weight, grid.msf_weight, "strategies must agree");
        table.row(vec![
            cores.to_string(),
            format!("{t_direct:.5}"),
            format!("{t_grid:.5}"),
            format!("{:.2}x", t_direct / t_grid.max(1e-12)),
            direct.messages.to_string(),
            grid.messages.to_string(),
        ]);
    }
    table.print();
    println!("\n# paper shape: one-level rises sharply with cores; two-level stays near-flat");
}
