//! **Fig. 3**: weak-scaling throughput (edges per second) on the six
//! synthetic graph families for `boruvka`, `filterBoruvka`, `MND-MST`
//! and `sparseMatrix`, each with 1 and 8 threads per process in the
//! paper (competitors here run single-threaded; their hybrid variants
//! share the same algorithm structure).

use kamsta_bench::{
    bench_mst_config, core_series, eng, env_usize, paper_variants, Table, WeakScale,
};

const FAMILIES: [&str; 6] = ["2D-GRID", "2D-RGG", "3D-RGG", "GNM", "RHG", "RMAT"];

fn main() {
    let max_cores = env_usize("KAMSTA_MAX_CORES", 64);
    let ws = WeakScale::from_env();
    println!(
        "# Fig. 3 — weak scaling, 2^{} vertices and 2^{} directed edges per core (paper: 2^17 / 2^21)",
        ws.v_per_core, ws.m_per_core
    );
    println!("# cells: modeled throughput in edges/second (higher is better)\n");

    let variants = paper_variants();
    for family in FAMILIES {
        println!("## {family}");
        let mut headers: Vec<String> = vec!["cores".into()];
        headers.extend(variants.iter().map(|v| v.label()));
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut table = Table::new(&header_refs);
        for cores in core_series(max_cores) {
            let config = ws.config(family, cores);
            let mut cells = vec![cores.to_string()];
            let mut weights: Vec<u64> = Vec::new();
            for v in &variants {
                match v.run(cores, config, bench_mst_config(), 42) {
                    Some(s) => {
                        weights.push(s.msf_weight);
                        cells.push(eng(s.edges_per_second));
                    }
                    None => cells.push("-".into()),
                }
            }
            weights.dedup();
            assert!(weights.len() <= 1, "{family}@{cores}: weight disagreement");
            table.row(cells);
        }
        table.print();
        println!();
    }
    println!("# paper shape: boruvka/filterBoruvka dominate everywhere; filter wins on GNM/RMAT;");
    println!("# competitors trail by 1-2 orders of magnitude, most on high-locality families");
}
