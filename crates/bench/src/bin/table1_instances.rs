//! **Table I**: the real-world instance inventory. We print the paper's
//! originals next to the structure-matched stand-ins this reproduction
//! uses (DESIGN.md S5), with the stand-ins' actual generated sizes.

use kamsta::{GraphConfig, Machine, MachineConfig};
use kamsta_bench::{env_usize, standin_instances, Table};
use kamsta_graph::InputGraph;

fn measure(config: GraphConfig) -> (u64, u64) {
    let out = Machine::run(MachineConfig::new(4), move |comm| {
        let input = InputGraph::generate(comm, config, 42);
        (input.graph.n_global, input.graph.m_global)
    });
    out.results[0]
}

fn main() {
    let scale = env_usize("KAMSTA_STRONG_SCALE", 14) as u32;
    println!("# Table I — strong-scaling instances (paper originals vs. generated stand-ins)\n");
    let mut table = Table::new(&[
        "instance",
        "paper original",
        "stand-in family",
        "n (generated)",
        "m (generated)",
        "avg degree",
    ]);
    for (name, original, config) in standin_instances(scale) {
        let (gn, gm) = measure(config);
        table.row(vec![
            name.to_string(),
            original.to_string(),
            config.family().to_string(),
            gn.to_string(),
            gm.to_string(),
            format!("{:.1}", gm as f64 / gn as f64),
        ]);
    }
    table.print();
    println!("\n# sizes scaled down ~2^10-2^13x (DESIGN.md S3); n/m ratios and structure class preserved");
    println!("# the real US-road instance can be used verbatim via kamsta_graph::io::load_dimacs");
}
