//! **Theorem 1** (empirical): Filter-Borůvka performs `O(m)` expected
//! work and makes `O(log(m/n))` base-case Borůvka calls for random edge
//! weights. We fix `n`, sweep the density `m/n`, and report the number
//! of base-case calls (should grow like `log(m/n)`) and the total edges
//! fed into base cases (should stay `O(n)`-ish, i.e. grow far slower
//! than `m`).

use kamsta::{Algorithm, GraphConfig};
use kamsta_bench::{bench_mst_config, env_usize, Table, Variant};

fn main() {
    let n = 1u64 << env_usize("KAMSTA_THM1_LOGN", 13);
    let cores = env_usize("KAMSTA_MAX_CORES", 16).min(16);
    println!("# Theorem 1 — Filter-Borůvka work/span scaling on GNM(n = {n}), {cores} PEs\n");

    let mut table = Table::new(&[
        "avg degree",
        "m",
        "log2(m/n)",
        "base-case calls",
        "base-case edges",
        "bc-edges / n",
        "filtered edges",
        "partition steps",
    ]);
    let variant = Variant {
        algo: Algorithm::FilterBoruvka,
        threads: 1,
    };
    for log_deg in [3u32, 4, 5, 6, 7] {
        let m = n << log_deg;
        let cfg = GraphConfig::Gnm { n, m };
        let s = variant
            .run(cores, cfg, bench_mst_config(), 42)
            .expect("enough cores");
        let stats = s.filter_stats.expect("filter reports stats");
        table.row(vec![
            (1u64 << log_deg).to_string(),
            s.input_edges.to_string(),
            format!("{log_deg}"),
            stats.base_case_calls.to_string(),
            stats.base_case_edges.to_string(),
            format!("{:.2}", stats.base_case_edges as f64 / n as f64),
            stats.filtered_edges.to_string(),
            stats.partition_steps.to_string(),
        ]);
    }
    table.print();
    println!("\n# expected: base-case calls grow ~ log(m/n); base-case edges stay a small");
    println!("# multiple of n while m grows 16x — the linear-work, polylog-span claim");
}
