//! **Dyn throughput**: updates/sec of the batch-dynamic MSF maintainer
//! vs from-scratch recomputation at every batch boundary, over a sweep
//! of batch sizes — the amortisation curve of the certificate re-solve.
//!
//! Environment:
//!
//! * `KAMSTA_MAX_CORES` — simulated core count (default 16);
//! * `KAMSTA_V_PER_CORE` / `KAMSTA_M_PER_CORE` — weak-scaling sizes
//!   (defaults 10 / 14);
//! * `KAMSTA_DYN_OPS` — total update operations per sweep point
//!   (default 1024);
//! * `KAMSTA_DYN_BATCHES` — comma-separated batch sizes
//!   (default `16,64,256`);
//! * `KAMSTA_DYN_OUT` — optional JSON output path.

use kamsta_bench::{bench_mst_config, dyn_throughput_workload, env_usize, Table, WeakScale};

const SEED: u64 = 42;
const FAMILIES: [&str; 3] = ["GNM", "2D-RGG", "RMAT"];

fn batch_sizes() -> Vec<usize> {
    std::env::var("KAMSTA_DYN_BATCHES")
        .ok()
        .map(|s| {
            s.split(',')
                .filter_map(|x| x.trim().parse().ok())
                .filter(|&b| b > 0)
                .collect()
        })
        .filter(|v: &Vec<usize>| !v.is_empty())
        .unwrap_or_else(|| vec![16, 64, 256])
}

fn main() {
    let cores = env_usize("KAMSTA_MAX_CORES", 16);
    let ops = env_usize("KAMSTA_DYN_OPS", 1024);
    let ws = WeakScale::from_env();
    let cfg = bench_mst_config();

    let mut table = Table::new(&[
        "family",
        "batch",
        "ops",
        "upd/s",
        "dyn wall",
        "scratch wall",
        "speedup",
        "modeled x",
        "resolves",
        "cert edges",
    ]);
    let mut json_entries: Vec<String> = Vec::new();
    for family in FAMILIES {
        let config = ws.config(family, cores);
        for batch in batch_sizes() {
            let batches = (ops / batch).max(1);
            let t = dyn_throughput_workload(cores, config, cfg, SEED, batches, batch);
            table.row(vec![
                family.to_string(),
                batch.to_string(),
                t.ops.to_string(),
                format!("{:.0}", t.updates_per_second()),
                format!("{:.4}s", t.dyn_wall),
                format!("{:.4}s", t.scratch_wall),
                format!("{:.2}x", t.wall_speedup()),
                format!("{:.2}x", t.modeled_speedup()),
                t.stats.resolves.to_string(),
                t.stats.certificate_edges.to_string(),
            ]);
            json_entries.push(format!(
                "    {{\"family\": \"{family}\", \"batch\": {batch}, \"ops\": {}, \
                 \"updates_per_second\": {:.3}, \"dyn_wall\": {:.6}, \
                 \"scratch_wall\": {:.6}, \"dyn_modeled\": {:.6}, \
                 \"scratch_modeled\": {:.6}, \"wall_speedup\": {:.3}, \
                 \"modeled_speedup\": {:.3}, \"final_weight\": {}}}",
                t.ops,
                t.updates_per_second(),
                t.dyn_wall,
                t.scratch_wall,
                t.dyn_modeled,
                t.scratch_modeled,
                t.wall_speedup(),
                t.modeled_speedup(),
                t.final_weight,
            ));
        }
    }
    println!("dyn_throughput: cores={cores} seed={SEED} (dyn apply vs from-scratch per batch)");
    table.print();

    if let Ok(path) = std::env::var("KAMSTA_DYN_OUT") {
        let json = format!(
            "{{\n  \"bench\": \"dyn_throughput\", \"cores\": {cores}, \"seed\": {SEED},\n  \
             \"entries\": [\n{}\n  ]\n}}\n",
            json_entries.join(",\n")
        );
        std::fs::write(&path, json).expect("write dyn throughput JSON");
        eprintln!("wrote {path}");
    }
}
