//! # kamsta-bench — the figure/table regeneration harness
//!
//! One binary per table and figure of the paper's evaluation (Sec. VII);
//! see `DESIGN.md` §3 for the experiment index and `EXPERIMENTS.md` for
//! recorded paper-vs-measured outcomes. Criterion micro-benches cover the
//! building-block ablations (all-to-all variants, sorters, the
//! hash-filter dedup).
//!
//! All binaries accept the environment variables:
//!
//! * `KAMSTA_MAX_CORES` — largest simulated core count (default 64);
//! * `KAMSTA_V_PER_CORE` / `KAMSTA_M_PER_CORE` — log2 of the per-core
//!   weak-scaling sizes (defaults 10 / 14; the paper used 17 / 21 —
//!   scaled down per DESIGN.md S3).

use kamsta::{Algorithm, GraphConfig, MstConfig, RunSummary, Runner};
use kamsta_comm::{Comm, Machine, MachineConfig};
use kamsta_core::dist::boruvka_mst;
use kamsta_dyn::{DynConfig, DynMst, WorkloadGen};
use kamsta_graph::io::distribute_from_root;
use kamsta_graph::{InputGraph, WEdge};

/// Measurements of one batch-dynamic update workload against the
/// from-scratch alternative (same deterministic update stream, same
/// final graph — the helper asserts the final forests agree).
#[derive(Clone, Copy, Debug)]
pub struct DynThroughput {
    /// Total update operations applied.
    pub ops: u64,
    /// Number of batches.
    pub batches: u64,
    /// Updates per batch.
    pub batch_size: usize,
    /// Wall seconds spent applying all batches dynamically.
    pub dyn_wall: f64,
    /// Modeled seconds of the dynamic path.
    pub dyn_modeled: f64,
    /// Wall seconds spent recomputing from scratch at every boundary.
    pub scratch_wall: f64,
    /// Modeled seconds of the from-scratch path.
    pub scratch_modeled: f64,
    /// Final forest weight (identical on both paths).
    pub final_weight: u64,
    /// Lifetime statistics of the dynamic maintainer.
    pub stats: kamsta_dyn::UpdateStats,
}

impl DynThroughput {
    /// Updates per wall second through the dynamic path.
    pub fn updates_per_second(&self) -> f64 {
        self.ops as f64 / self.dyn_wall.max(f64::MIN_POSITIVE)
    }

    /// Wall speedup of dynamic maintenance over recompute-per-batch.
    pub fn wall_speedup(&self) -> f64 {
        self.scratch_wall / self.dyn_wall.max(f64::MIN_POSITIVE)
    }

    /// Modeled speedup of dynamic maintenance over recompute-per-batch.
    pub fn modeled_speedup(&self) -> f64 {
        self.scratch_modeled / self.dyn_modeled.max(f64::MIN_POSITIVE)
    }
}

/// The vertex-space bound and initial canonical live set of a prepared
/// input — identical on every PE, so both measurement machines replay
/// the same [`WorkloadGen`] stream.
fn workload_base(comm: &Comm, input: &InputGraph) -> (u64, Vec<WEdge>) {
    let n = kamsta_dyn::vertex_bound(comm, input);
    let mut initial: Vec<WEdge> = comm.allgatherv(
        input
            .graph
            .edges
            .iter()
            .filter(|e| e.u < e.v)
            .map(|e| e.wedge())
            .collect(),
    );
    initial.sort_unstable();
    initial.dedup_by(|b, a| a.u == b.u && a.v == b.v);
    (n, initial)
}

/// Run the same random update stream through the batch-dynamic
/// maintainer and through from-scratch recomputation at every batch
/// boundary, timing both (bootstrap and generation excluded).
pub fn dyn_throughput_workload(
    cores: usize,
    config: GraphConfig,
    cfg: MstConfig,
    seed: u64,
    batches: usize,
    batch_size: usize,
) -> DynThroughput {
    let machine = MachineConfig::new(cores);
    let wl_seed = seed ^ 0x00DA_BEBC;

    let dyn_out = Machine::run(machine.clone(), |comm| {
        let input = InputGraph::generate(comm, config, seed);
        let (n, initial) = workload_base(comm, &input);
        let mut dynmst = DynMst::bootstrap(comm, DynConfig::new(n).with_mst(cfg), &input);
        let mut workload = WorkloadGen::new(n, wl_seed, &initial);
        comm.barrier();
        let before = comm.stats();
        let t0 = std::time::Instant::now();
        for _ in 0..batches {
            let batch = workload.next_batch(batch_size);
            let slice: &[_] = if comm.rank() == 0 { &batch } else { &[] };
            dynmst.apply_batch(comm, slice);
        }
        comm.barrier();
        let wall = t0.elapsed().as_secs_f64();
        let stats = comm.stats().since(&before);
        (
            wall,
            stats.modeled_time,
            dynmst.msf_weight(),
            dynmst.stats(),
        )
    });

    let scratch_out = Machine::run(machine, |comm| {
        let input = InputGraph::generate(comm, config, seed);
        let (n, initial) = workload_base(comm, &input);
        let mut workload = WorkloadGen::new(n, wl_seed, &initial);
        let mut weight = 0u64;
        comm.barrier();
        let before = comm.stats();
        let t0 = std::time::Instant::now();
        for _ in 0..batches {
            let _ = workload.next_batch(batch_size);
            let reference = workload.symmetric_edges();
            let slice = distribute_from_root(comm, (comm.rank() == 0).then_some(reference));
            let ref_input = InputGraph::from_sorted_edges(comm, slice);
            let r = boruvka_mst(comm, &ref_input, &cfg);
            weight = comm.allreduce_sum(r.edges.iter().map(|e| e.w as u64).sum::<u64>());
        }
        comm.barrier();
        let wall = t0.elapsed().as_secs_f64();
        let stats = comm.stats().since(&before);
        (wall, stats.modeled_time, weight)
    });

    let dyn_wall = dyn_out.results.iter().map(|r| r.0).fold(0.0, f64::max);
    let dyn_modeled = dyn_out.results.iter().map(|r| r.1).fold(0.0, f64::max);
    let scratch_wall = scratch_out.results.iter().map(|r| r.0).fold(0.0, f64::max);
    let scratch_modeled = scratch_out.results.iter().map(|r| r.1).fold(0.0, f64::max);
    assert_eq!(
        dyn_out.results[0].2, scratch_out.results[0].2,
        "dynamic and from-scratch forests must weigh the same"
    );
    DynThroughput {
        ops: (batches * batch_size) as u64,
        batches: batches as u64,
        batch_size,
        dyn_wall,
        dyn_modeled,
        scratch_wall,
        scratch_modeled,
        final_weight: dyn_out.results[0].2,
        stats: dyn_out.results[0].3,
    }
}

/// Extract the value of `"name": value` from one line of a
/// `perf_trajectory` JSON. The format is written by this crate
/// (one entry object per line), so a line-oriented scan suffices —
/// no general JSON parser. Shared by `perf_trajectory` (baseline
/// embedding) and `perf_check` (the CI regression gate) so the two
/// cannot drift apart.
pub fn perf_json_field(line: &str, name: &str) -> Option<String> {
    let tag = format!("\"{name}\": ");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"').to_string())
}

/// The trimmed entry rows of a `perf_trajectory` JSON: every line
/// carrying an `"instance"` field **before** the embedded `"baseline"`
/// section, so a file that itself embeds a baseline contributes only
/// its own measurements.
pub fn perf_entry_lines(text: &str) -> impl Iterator<Item = &str> {
    text.lines()
        .map(str::trim)
        .take_while(|line| !line.starts_with("\"baseline\""))
        .filter(|line| line.contains("\"instance\""))
}

/// Read a `usize` environment knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Simulated core counts for a scaling series: powers of two from 4 to
/// `max`.
pub fn core_series(max: usize) -> Vec<usize> {
    let mut cores = Vec::new();
    let mut c = 4;
    while c <= max {
        cores.push(c);
        c *= 2;
    }
    cores
}

/// The scaled-down weak-scaling sizes (paper: 2^17 vertices and 2^21
/// edges per core).
pub struct WeakScale {
    pub v_per_core: u32,
    pub m_per_core: u32,
}

impl WeakScale {
    pub fn from_env() -> Self {
        Self {
            v_per_core: env_usize("KAMSTA_V_PER_CORE", 10) as u32,
            m_per_core: env_usize("KAMSTA_M_PER_CORE", 14) as u32,
        }
    }

    pub fn config(&self, family: &str, cores: usize) -> GraphConfig {
        GraphConfig::weak_scaled(family, self.v_per_core, self.m_per_core, cores)
    }
}

/// An algorithm variant as plotted in the paper: algorithm × hybrid
/// thread count (`boruvka-8` etc.).
#[derive(Clone, Copy, Debug)]
pub struct Variant {
    pub algo: Algorithm,
    pub threads: usize,
}

impl Variant {
    pub fn label(&self) -> String {
        format!("{}-{}", self.algo.label(), self.threads)
    }

    /// Build the runner for a total core budget: `pes = cores / threads`.
    pub fn runner(&self, cores: usize, cfg: MstConfig) -> Option<Runner> {
        let pes = cores / self.threads;
        if pes == 0 {
            return None;
        }
        Some(Runner::new(pes, self.threads).with_mst_config(cfg))
    }

    /// Run on a generated graph at a total core budget.
    pub fn run(
        &self,
        cores: usize,
        config: GraphConfig,
        cfg: MstConfig,
        seed: u64,
    ) -> Option<RunSummary> {
        self.runner(cores, cfg)
            .map(|r| r.run_generated(config, self.algo, seed))
    }
}

/// The paper's Fig. 3/5 variant set (competitors ran single- and
/// 8-thread too).
pub fn paper_variants() -> Vec<Variant> {
    vec![
        Variant {
            algo: Algorithm::Boruvka,
            threads: 1,
        },
        Variant {
            algo: Algorithm::Boruvka,
            threads: 8,
        },
        Variant {
            algo: Algorithm::FilterBoruvka,
            threads: 1,
        },
        Variant {
            algo: Algorithm::FilterBoruvka,
            threads: 8,
        },
        Variant {
            algo: Algorithm::SparseMatrix,
            threads: 1,
        },
        Variant {
            algo: Algorithm::MndMst,
            threads: 1,
        },
    ]
}

/// Scaled default MST configuration for bench runs (base case constant
/// shrunk along with the instance sizes).
pub fn bench_mst_config() -> MstConfig {
    MstConfig {
        base_case_constant: 512,
        filter_min_edges_per_pe: 256,
        ..MstConfig::default()
    }
}

/// Simple aligned table printer (markdown-flavoured).
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let joined: Vec<String> = cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("| {} |", joined.join(" | "));
        };
        line(&self.headers);
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        println!("|-{}-|", sep.join("-|-"));
        for row in &self.rows {
            line(row);
        }
    }
}

/// The Fig. 5 / Table I stand-in instances (DESIGN.md S5): name, paper
/// original description, and the structure-matched generator config at
/// the given vertex scale.
pub fn standin_instances(scale: u32) -> Vec<(&'static str, &'static str, GraphConfig)> {
    let n = 1u64 << scale;
    vec![
        (
            "friendster*",
            "social, 68.3e6 vertices / 3.6e9 edges",
            GraphConfig::Rmat { scale, m: n * 52 },
        ),
        (
            "twitter*",
            "social, 41.7e6 vertices / 2.4e9 edges",
            GraphConfig::Rmat { scale, m: n * 57 },
        ),
        (
            "uk-2007*",
            "web, 105.9e6 vertices / 6.6e9 edges",
            GraphConfig::Rhg {
                n,
                m: n * 62,
                gamma: 2.4,
            },
        ),
        (
            "it-2004*",
            "web, 41.3e6 vertices / 2.1e9 edges",
            GraphConfig::Rhg {
                n,
                m: n * 50,
                gamma: 2.4,
            },
        ),
        ("US-road*", "road, 23.9e6 vertices / 57.7e6 edges", {
            let side = 1u64 << (scale / 2 + 1);
            GraphConfig::RoadLike {
                rows: side,
                cols: side,
            }
        }),
        (
            "wdc-14*",
            "web, 1.7e9 vertices / 123.9e9 edges",
            GraphConfig::Rhg {
                n: n * 2,
                m: n * 2 * 70,
                gamma: 2.2,
            },
        ),
    ]
}

/// Format a throughput in engineering notation.
pub fn eng(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_series_powers_of_two() {
        assert_eq!(core_series(64), vec![4, 8, 16, 32, 64]);
        assert_eq!(core_series(3), Vec::<usize>::new());
    }

    #[test]
    fn variant_labels_match_paper_style() {
        let v = Variant {
            algo: Algorithm::Boruvka,
            threads: 8,
        };
        assert_eq!(v.label(), "boruvka-8");
        assert!(
            v.runner(4, bench_mst_config()).is_none(),
            "4 cores / 8 threads → no PEs"
        );
        assert!(v.runner(16, bench_mst_config()).is_some());
    }

    #[test]
    fn eng_notation() {
        assert_eq!(eng(1.5e9), "1.50G");
        assert_eq!(eng(2.5e6), "2.50M");
        assert_eq!(eng(999.0), "999.00");
    }

    #[test]
    fn perf_json_field_extracts_values() {
        let line = r#"    {"instance": "RHG", "cores": 16, "algo": "boruvka-1", "wall_time": 2.166799, "divergence_vs_baseline": 1.013}"#;
        assert_eq!(perf_json_field(line, "instance").as_deref(), Some("RHG"));
        assert_eq!(perf_json_field(line, "cores").as_deref(), Some("16"));
        // Last field: value terminated by '}' instead of ','.
        assert_eq!(
            perf_json_field(line, "divergence_vs_baseline").as_deref(),
            Some("1.013")
        );
        assert_eq!(perf_json_field(line, "msf_weight"), None);
    }

    #[test]
    fn perf_entry_lines_stop_at_baseline_not_baseline_source() {
        // "baseline_source" precedes the "baseline" array in the files
        // perf_trajectory writes; it must NOT terminate the entry scan,
        // while the baseline rows themselves must be excluded.
        let text = "\
{
  \"entries\": [
    {\"instance\": \"GNM\", \"algo\": \"boruvka-1\", \"wall_time\": 0.1},
    {\"instance\": \"RHG\", \"algo\": \"boruvka-1\", \"wall_time\": 0.2}
  ],
  \"baseline_source\": \"BENCH_pr7.json\",
  \"baseline\": [
    {\"instance\": \"GNM\", \"algo\": \"boruvka-1\", \"wall_time\": 0.3}
  ]
}";
        let entries: Vec<&str> = perf_entry_lines(text).collect();
        assert_eq!(entries.len(), 2, "baseline rows leaked into entries");
        assert!(entries[1].contains("RHG"));
    }

    #[test]
    fn weak_scale_config_resolves_families() {
        let ws = WeakScale {
            v_per_core: 8,
            m_per_core: 10,
        };
        for fam in ["2D-GRID", "2D-RGG", "3D-RGG", "GNM", "RHG", "RMAT"] {
            let _ = ws.config(fam, 8); // must not panic
        }
    }
}
