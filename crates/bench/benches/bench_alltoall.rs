//! Criterion micro-bench: all-to-all strategies (Sec. VI-A / Fig. 2
//! building block). Measures real execution of the simulated exchange —
//! the per-partner overheads that motivate the grid variant are physical
//! here too.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kamsta_comm::{AlltoallKind, FlatBuckets, Machine, MachineConfig};

fn exchange(p: usize, kind: AlltoallKind, words_per_dest: usize) {
    Machine::run(MachineConfig::new(p).with_alltoall(kind), move |comm| {
        let bufs =
            FlatBuckets::from_nested((0..p).map(|d| vec![d as u64; words_per_dest]).collect());
        let recv = match kind {
            AlltoallKind::Direct => comm.alltoallv_direct(bufs),
            AlltoallKind::Grid => comm.alltoallv_grid(bufs),
            AlltoallKind::Hypercube => comm.alltoallv_hypercube(bufs),
            AlltoallKind::Auto => comm.sparse_alltoallv(bufs),
        };
        assert_eq!(recv.buckets(), p);
    });
}

fn bench_alltoall(c: &mut Criterion) {
    let mut group = c.benchmark_group("alltoall_small_messages_p64");
    group.sample_size(10);
    for (name, kind) in [
        ("one-level", AlltoallKind::Direct),
        ("two-level", AlltoallKind::Grid),
        ("hypercube", AlltoallKind::Hypercube),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, &kind| {
            b.iter(|| exchange(64, kind, 4));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("alltoall_large_messages_p16");
    group.sample_size(10);
    for (name, kind) in [
        ("one-level", AlltoallKind::Direct),
        ("two-level", AlltoallKind::Grid),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &kind, |b, &kind| {
            b.iter(|| exchange(16, kind, 4096));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alltoall);
criterion_main!(benches);
