//! Criterion micro-bench: latency of the synchronization substrate
//! itself — barrier round-trips and the small-payload collectives every
//! MST phase leans on — independent of the MST pipeline, so substrate
//! regressions show up without graph-algorithm noise (DESIGN.md §6).
//!
//! Each measurement spans a whole `Machine::run` (thread spawn + `ROUNDS`
//! back-to-back collectives), so the per-collective latency is the
//! per-iteration time divided by `ROUNDS` after subtracting the spawn
//! cost visible in the `spawn_only` baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kamsta_comm::{FlatBuckets, Machine, MachineConfig};

const PES: [usize; 4] = [2, 4, 16, 64];
const ROUNDS: usize = 64;

fn bench_spawn_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_spawn_only");
    group.sample_size(10);
    for p in PES {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| Machine::run(MachineConfig::new(p), |comm| comm.rank()));
        });
    }
    group.finish();
}

fn bench_barrier_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_barrier_roundtrip");
    group.sample_size(10);
    for p in PES {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                Machine::run(MachineConfig::new(p), |comm| {
                    for _ in 0..ROUNDS {
                        comm.barrier();
                    }
                })
            });
        });
    }
    group.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_broadcast_u64");
    group.sample_size(10);
    for p in PES {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                Machine::run(MachineConfig::new(p), |comm| {
                    let mut acc = 0u64;
                    for r in 0..ROUNDS as u64 {
                        let v = (comm.rank() == 0).then_some(r);
                        acc ^= comm.broadcast(0, v);
                    }
                    acc
                })
            });
        });
    }
    group.finish();
}

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_allreduce_sum");
    group.sample_size(10);
    for p in PES {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                Machine::run(MachineConfig::new(p), |comm| {
                    let mut acc = 0u64;
                    for r in 0..ROUNDS as u64 {
                        acc ^= comm.allreduce_sum(comm.rank() as u64 + r);
                    }
                    acc
                })
            });
        });
    }
    group.finish();
}

fn bench_alltoall_small(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_alltoall_4words");
    group.sample_size(10);
    for p in PES {
        group.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                Machine::run(MachineConfig::new(p), move |comm| {
                    let mut total = 0usize;
                    for _ in 0..ROUNDS / 4 {
                        let bufs =
                            FlatBuckets::from_nested((0..p).map(|d| vec![d as u64; 4]).collect());
                        total += comm.sparse_alltoallv(bufs).total_len();
                    }
                    total
                })
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_spawn_baseline,
    bench_barrier_roundtrip,
    bench_broadcast,
    bench_allreduce,
    bench_alltoall_small
);
criterion_main!(benches);
