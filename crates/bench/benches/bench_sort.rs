//! Criterion micro-bench: the two distributed sorters across the
//! small/large regimes behind the paper's selection rule (Sec. VI-C).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kamsta_comm::{Machine, MachineConfig};
use kamsta_sort::{hypercube_quicksort, sample_sort};

fn run_sort(p: usize, per_pe: usize, hypercube: bool) {
    Machine::run(MachineConfig::new(p), move |comm| {
        let base = comm.rank() as u64;
        let data: Vec<u64> = (0..per_pe as u64)
            .map(|i| (base * 2_654_435_761).wrapping_add(i * 40_503) % 1_000_000)
            .collect();
        if hypercube {
            hypercube_quicksort(comm, data, 42)
        } else {
            sample_sort(comm, data, 42)
        }
    });
}

fn bench_sort(c: &mut Criterion) {
    // The paper's threshold is 512 elements/PE: hypercube below, sample
    // sort above.
    let mut group = c.benchmark_group("distributed_sort_p16");
    group.sample_size(10);
    for per_pe in [256usize, 4096, 65536] {
        group.bench_with_input(BenchmarkId::new("hypercube", per_pe), &per_pe, |b, &n| {
            b.iter(|| run_sort(16, n, true))
        });
        group.bench_with_input(BenchmarkId::new("sample_sort", per_pe), &per_pe, |b, &n| {
            b.iter(|| run_sort(16, n, false))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sort);
criterion_main!(benches);
