//! Criterion micro-bench: the Sec. VI-B parallel-edge elimination
//! ablation — hash-table prefilter + sort vs. pure sorting ("outperforms
//! the pure sorting approach by up to a factor of 2.5 if the hash table
//! remains small enough to fit into the cache").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kamsta::{DedupStrategy, MstConfig};
use kamsta_comm::{Machine, MachineConfig};
use kamsta_core::dist::redistribute;
use kamsta_graph::CEdge;

/// Post-contraction-like edge set: few distinct endpoint pairs, many
/// parallel copies — exactly the shape local preprocessing leaves behind.
fn parallel_heavy_edges(rank: usize, pairs: u64, copies: u64) -> Vec<CEdge> {
    let mut edges = Vec::with_capacity((pairs * copies) as usize);
    let salt = rank as u64 * 1_000_003;
    for k in 0..pairs {
        let u = k * 7 % 1000;
        let v = 1000 + (k * 13) % 1000;
        for c in 0..copies {
            let w = ((salt + k * 31 + c * 97) % 254 + 1) as u32;
            edges.push(CEdge::new(u, v, w, salt + k * copies + c));
        }
    }
    edges
}

fn run_dedup(strategy: DedupStrategy, pairs: u64, copies: u64) {
    Machine::run(MachineConfig::new(8), move |comm| {
        let edges = parallel_heavy_edges(comm.rank(), pairs, copies);
        let cfg = MstConfig {
            dedup: strategy,
            ..MstConfig::default()
        };
        let g = redistribute(comm, edges, &cfg);
        assert!(g.m_global > 0);
    });
}

fn bench_dedup(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_edge_dedup_p8");
    group.sample_size(10);
    for copies in [4u64, 16, 64] {
        group.bench_with_input(BenchmarkId::new("pure_sort", copies), &copies, |b, &cp| {
            b.iter(|| run_dedup(DedupStrategy::Sort, 2000, cp))
        });
        group.bench_with_input(
            BenchmarkId::new("hash_filter", copies),
            &copies,
            |b, &cp| b.iter(|| run_dedup(DedupStrategy::HashFilter, 2000, cp)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dedup);
criterion_main!(benches);
