//! Criterion micro-bench: LSD radix sort on packed edge keys vs the
//! comparison sort it replaces, and flat vs nested bucket construction —
//! the two substrate changes of the data plane.
//!
//! The radix sorter gates itself on profitability (active key bytes vs
//! `log n`): the `id_sort` group shows the regime it engages in (narrow
//! vertex/edge-id keys — the pull protocol's sorts), the `edge_sort`
//! group the full-entropy first-round keys where it falls back to the
//! comparison sort, so those rows bound the gate's overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kamsta_comm::FlatBuckets;
use kamsta_graph::CEdge;
use kamsta_sort::{radix_sort_by_key, radix_sort_keys};

fn make_edges(n: usize) -> Vec<CEdge> {
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut rng = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        state >> 16
    };
    (0..n)
        .map(|k| {
            CEdge::new(
                rng() % (1 << 20),
                rng() % (1 << 20),
                (rng() % 254 + 1) as u32,
                k as u64,
            )
        })
        .collect()
}

fn bench_id_sorts(c: &mut Criterion) {
    let mut group = c.benchmark_group("id_sort");
    group.sample_size(10);
    let mut state = 0xfeed_f00d_dead_beefu64;
    let mut rng = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        state >> 16
    };
    for n in [1usize << 12, 1 << 16, 1 << 19] {
        let ids: Vec<u64> = (0..n).map(|_| rng() % (1 << 20)).collect();
        group.bench_with_input(BenchmarkId::new("comparison", n), &n, |b, _| {
            b.iter(|| {
                let mut v = ids.clone();
                v.sort_unstable();
                v
            })
        });
        group.bench_with_input(BenchmarkId::new("radix", n), &n, |b, _| {
            b.iter(|| {
                let mut v = ids.clone();
                radix_sort_keys(&mut v);
                v
            })
        });
    }
    group.finish();
}

fn bench_sorts(c: &mut Criterion) {
    let mut group = c.benchmark_group("edge_sort");
    group.sample_size(10);
    for n in [1usize << 12, 1 << 16, 1 << 19] {
        let edges = make_edges(n);
        group.bench_with_input(BenchmarkId::new("comparison_lex", n), &n, |b, _| {
            b.iter(|| {
                let mut v = edges.clone();
                v.sort_unstable();
                v
            })
        });
        group.bench_with_input(BenchmarkId::new("radix_lex", n), &n, |b, _| {
            b.iter(|| {
                let mut v = edges.clone();
                radix_sort_by_key(&mut v, CEdge::lex_key);
                v
            })
        });
        group.bench_with_input(BenchmarkId::new("comparison_weight", n), &n, |b, _| {
            b.iter(|| {
                let mut v = edges.clone();
                v.sort_unstable_by_key(|e| (e.weight_key(), e.id));
                v
            })
        });
        group.bench_with_input(BenchmarkId::new("radix_weight", n), &n, |b, _| {
            b.iter(|| {
                let mut v = edges.clone();
                radix_sort_by_key(&mut v, |e: &CEdge| {
                    (e.packed_weight_key().expect("packable").0, e.id)
                });
                v
            })
        });
    }
    group.finish();
}

fn bench_bucket_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("bucket_construction_p64");
    group.sample_size(10);
    let p = 64usize;
    for n in [1usize << 12, 1 << 16, 1 << 19] {
        let edges = make_edges(n);
        group.bench_with_input(BenchmarkId::new("nested_push", n), &n, |b, _| {
            b.iter(|| {
                let mut bufs: Vec<Vec<CEdge>> = (0..p).map(|_| Vec::new()).collect();
                for e in &edges {
                    bufs[(e.u as usize) % p].push(*e);
                }
                bufs
            })
        });
        group.bench_with_input(BenchmarkId::new("flat_count_scatter", n), &n, |b, _| {
            b.iter(|| FlatBuckets::from_dest_fn(p, edges.clone(), |e| (e.u as usize) % p))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_id_sorts,
    bench_sorts,
    bench_bucket_construction
);
criterion_main!(benches);
