//! Criterion end-to-end MST benchmarks: the paper's algorithms and the
//! competitor baselines on a locality-rich and a locality-free family
//! (real wall time of the simulation; the figure binaries report modeled
//! time).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kamsta::{Algorithm, GraphConfig, MstConfig, Runner};

fn bench_mst(c: &mut Criterion) {
    let configs = [
        (
            "2D-RGG",
            GraphConfig::Rgg2D {
                n: 1 << 14,
                m: 1 << 17,
            },
        ),
        (
            "GNM",
            GraphConfig::Gnm {
                n: 1 << 14,
                m: 1 << 17,
            },
        ),
    ];
    let algos = [
        Algorithm::Boruvka,
        Algorithm::FilterBoruvka,
        Algorithm::SparseMatrix,
        Algorithm::MndMst,
    ];
    for (family, config) in configs {
        let mut group = c.benchmark_group(format!("mst_{family}_p8"));
        group.sample_size(10);
        for algo in algos {
            group.bench_with_input(
                BenchmarkId::from_parameter(algo.label()),
                &algo,
                |b, &algo| {
                    let runner = Runner::new(8, 1).with_mst_config(MstConfig {
                        base_case_constant: 512,
                        ..MstConfig::default()
                    });
                    b.iter(|| runner.run_generated(config, algo, 42));
                },
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_mst);
criterion_main!(benches);
