//! Criterion micro-bench for the intra-PE thread pool (vendor/rayon,
//! DESIGN.md S11): recursive `join` fan-out against straight-line
//! recursion, `par_sort_unstable` against `sort_unstable` across the
//! 2^14–2^22 size range, and the cost of building + entering a
//! width handle (`ThreadPoolBuilder::build` + `install`) — the
//! per-PE-run overhead `Comm::pool()` pays.
//!
//! On a single-core host the parallel rows bound the pool's *overhead*
//! (they cannot win); on multi-core hosts they show the crossover.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rayon::prelude::*;

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn make_keys(n: usize) -> Vec<u64> {
    let mut s = 0xfeed_f00d_dead_beefu64;
    (0..n).map(|_| splitmix(&mut s)).collect()
}

fn fib_join(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    let (a, b) = rayon::join(|| fib_join(n - 1), || fib_join(n - 2));
    a + b
}

fn fib_seq(n: u64) -> u64 {
    if n < 2 {
        return n;
    }
    fib_seq(n - 1) + fib_seq(n - 2)
}

fn bench_join_fan_out(c: &mut Criterion) {
    let mut group = c.benchmark_group("join_fan_out");
    group.sample_size(10);
    let wide = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .unwrap();
    group.bench_function(BenchmarkId::from_parameter("fib18_sequential"), |b| {
        b.iter(|| fib_seq(std::hint::black_box(18)))
    });
    group.bench_function(BenchmarkId::from_parameter("fib18_join_w1"), |b| {
        b.iter(|| fib_join(std::hint::black_box(18)))
    });
    group.bench_function(BenchmarkId::from_parameter("fib18_join_w8"), |b| {
        b.iter(|| wide.install(|| fib_join(std::hint::black_box(18))))
    });
    group.finish();
}

fn bench_par_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_sort");
    group.sample_size(10);
    let wide = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .unwrap();
    for shift in [14u32, 18, 22] {
        let n = 1usize << shift;
        let keys = make_keys(n);
        group.bench_with_input(BenchmarkId::new("sort_unstable", n), &keys, |b, keys| {
            b.iter(|| {
                let mut v = keys.clone();
                v.sort_unstable();
                v
            })
        });
        group.bench_with_input(BenchmarkId::new("par_sort_w8", n), &keys, |b, keys| {
            b.iter(|| {
                let mut v = keys.clone();
                wide.install(|| v.par_sort_unstable());
                v
            })
        });
    }
    group.finish();
}

fn bench_pool_handle(c: &mut Criterion) {
    let mut group = c.benchmark_group("pool_handle");
    // Build + enter + leave: what every PE run pays once around its
    // rank closure (Comm::pool().install(..)).
    group.bench_function(BenchmarkId::from_parameter("build_install_noop"), |b| {
        b.iter(|| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(8)
                .build()
                .unwrap()
                .install(|| std::hint::black_box(1u64))
        })
    });
    group.bench_function(BenchmarkId::from_parameter("current_num_threads"), |b| {
        b.iter(rayon::current_num_threads)
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_join_fan_out,
    bench_par_sort,
    bench_pool_handle
);
criterion_main!(benches);
