//! Criterion micro-bench: the byte-transport data path in isolation.
//!
//! Three questions, matching the PR 10 redesign of the byte lane
//! (DESIGN.md §12):
//!
//! 1. **Encode/decode throughput** of `WEdge` and `PackedEdge` buckets
//!    through `wire::write_slice` / `wire::read_vec` — the exact code
//!    the flat exchange runs per (peer, round).
//! 2. **Coalesced vs per-message framing**: one `CH_DATA` frame
//!    carrying a whole bucket against one frame per element (the
//!    pre-PR-10 shape), both reassembled through `wire::split_frame`.
//! 3. **Pooled vs fresh buffers**: serializing into a buffer whose
//!    capacity survives from the previous round against allocating a
//!    new `Vec` each round.
//!
//! Sizes span 2^10–2^20 elements — the per-peer bucket range of the
//! weak-scaled perf-trajectory instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kamsta_comm::wire::{self, FrameHeader, Wire, WireReader, CH_DATA, FRAME_HEADER_LEN};
use kamsta_graph::{PackedEdge, WEdge};

fn wedges(n: usize) -> Vec<WEdge> {
    (0..n as u64)
        .map(|i| {
            let u = i.wrapping_mul(2_654_435_761) % (1 << 20);
            let v = i.wrapping_mul(40_503).wrapping_add(1) % (1 << 20);
            WEdge::new(u, v, ((i * 7 + 3) % 1_000_000) as u32)
        })
        .collect()
}

fn packed(n: usize) -> Vec<PackedEdge> {
    wedges(n)
        .into_iter()
        .enumerate()
        .map(|(i, e)| {
            PackedEdge(
                ((e.w as u128) << 96) | ((e.u as u128) << 48) | (e.v as u128) | (i as u128) << 1,
            )
        })
        .collect()
}

fn roundtrip<T: Wire>(bucket: &[T], scratch: &mut Vec<u8>) -> usize {
    scratch.clear();
    wire::write_slice(scratch, bucket);
    let mut r = WireReader::new(scratch);
    let out = wire::read_vec::<T>(&mut r).expect("self-encoded bucket decodes");
    r.finish().expect("no trailing bytes");
    out.len()
}

fn bench_encode_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_roundtrip");
    group.sample_size(10);
    for pow in [10usize, 14, 17, 20] {
        let n = 1usize << pow;
        let we = wedges(n);
        let pe = packed(n);
        let mut scratch = Vec::new();
        group.bench_with_input(BenchmarkId::new("wedge", n), &n, |b, _| {
            b.iter(|| roundtrip(&we, &mut scratch))
        });
        group.bench_with_input(BenchmarkId::new("packed_edge", n), &n, |b, _| {
            b.iter(|| roundtrip(&pe, &mut scratch))
        });
    }
    group.finish();
}

/// Reassemble a byte stream frame by frame, decoding each payload as a
/// `WEdge` bucket — what the receive pump does with a full `rd` buffer.
fn drain_frames(stream: &[u8]) -> usize {
    let mut off = 0;
    let mut total = 0;
    while let Some((h, len)) = wire::split_frame(&stream[off..]).expect("well-formed stream") {
        let payload = &stream[off + FRAME_HEADER_LEN..off + len];
        debug_assert_eq!(h.channel, CH_DATA);
        let mut r = WireReader::new(payload);
        total += wire::read_vec::<WEdge>(&mut r)
            .expect("bucket decodes")
            .len();
        off += len;
        if off == stream.len() {
            break;
        }
    }
    total
}

fn frame_header(len: usize, seq: u64) -> FrameHeader {
    FrameHeader {
        channel: CH_DATA,
        comm: 0,
        a: seq,
        b: 0,
        len: len as u32,
        sum: 0,
    }
}

fn bench_framing(c: &mut Criterion) {
    let mut group = c.benchmark_group("framing");
    group.sample_size(10);
    for pow in [10usize, 14, 17] {
        let n = 1usize << pow;
        let bucket = wedges(n);

        // One coalesced frame for the whole bucket (the PR 10 shape).
        let mut coalesced = Vec::new();
        let mut payload = Vec::new();
        wire::write_slice(&mut payload, &bucket);
        frame_header(payload.len(), 0).write(&mut coalesced);
        coalesced.extend_from_slice(&payload);

        // One frame per element (the pre-PR-10 shape, reconstructed).
        let mut per_msg = Vec::new();
        for (i, e) in bucket.iter().enumerate() {
            let mut p = Vec::new();
            wire::write_slice(&mut p, std::slice::from_ref(e));
            frame_header(p.len(), i as u64).write(&mut per_msg);
            per_msg.extend_from_slice(&p);
        }

        group.bench_with_input(BenchmarkId::new("coalesced", n), &n, |b, _| {
            b.iter(|| drain_frames(&coalesced))
        });
        group.bench_with_input(BenchmarkId::new("per_message", n), &n, |b, _| {
            b.iter(|| drain_frames(&per_msg))
        });
    }
    group.finish();
}

fn bench_buffer_pool(c: &mut Criterion) {
    let mut group = c.benchmark_group("send_buffers");
    group.sample_size(10);
    for pow in [10usize, 14, 17, 20] {
        let n = 1usize << pow;
        let bucket = wedges(n);
        let mut pooled = Vec::new();
        group.bench_with_input(BenchmarkId::new("pooled", n), &n, |b, _| {
            b.iter(|| {
                // The steady-state round: capacity survives, encode in
                // place (wire::encode_into semantics — clear + write).
                pooled.clear();
                wire::write_slice(&mut pooled, &bucket);
                pooled.len()
            })
        });
        group.bench_with_input(BenchmarkId::new("fresh", n), &n, |b, _| {
            b.iter(|| {
                let mut buf = Vec::new();
                wire::write_slice(&mut buf, &bucket);
                buf.len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_encode_decode,
    bench_framing,
    bench_buffer_pool
);
criterion_main!(benches);
