//! Property tests for the packed-key radix sort path: sorting edges by
//! [`PackedEdge`] keys must be a permutation that matches `sort_unstable`
//! under the `(w, min(u,v), max(u,v))` total order — including inputs
//! obeying the distinct-weight invariant the paper assumes (Sec. II-C).

use kamsta_graph::{CEdge, PackedEdge, WEdge};
use kamsta_sort::{radix_sort_by_key, radix_sort_keys};
use proptest::prelude::*;

fn weight_order(a: &WEdge, b: &WEdge) -> std::cmp::Ordering {
    a.weight_key().cmp(&b.weight_key())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn packed_key_radix_matches_comparison_sort(
        raw in prop::collection::vec((0u64..1 << 20, 0u64..1 << 20, any::<u32>()), 0..400),
    ) {
        let edges: Vec<WEdge> = raw.iter().map(|&(u, v, w)| WEdge::new(u, v, w)).collect();
        let mut keys: Vec<PackedEdge> = edges
            .iter()
            .map(|e| PackedEdge::pack(e).expect("u, v < 2^48 are packable"))
            .collect();
        let mut reference = keys.clone();
        reference.sort_unstable();
        radix_sort_keys(&mut keys);
        prop_assert_eq!(&keys, &reference);

        // Sorting the edges through the packed key is a permutation of
        // the input matching the comparison sort's order.
        let mut by_radix = edges.clone();
        radix_sort_by_key(&mut by_radix, |e: &WEdge| {
            PackedEdge::pack(e).expect("packable").0
        });
        let mut by_cmp = edges.clone();
        by_cmp.sort_by(weight_order); // stable, like the radix path
        prop_assert_eq!(
            by_radix.iter().map(WEdge::weight_key).collect::<Vec<_>>(),
            by_cmp.iter().map(WEdge::weight_key).collect::<Vec<_>>()
        );
        // Permutation: same multiset of edges.
        let mut a = by_radix;
        let mut b = edges;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn unique_weight_invariant_edges_sort_identically(
        n in 2u64..120,
        seed in any::<u64>(),
    ) {
        // Distinct-weight-free instance (Sec. II-C): every undirected
        // pair gets a unique weight, both directions present. The packed
        // key must order both directions identically and the radix sort
        // must reproduce the comparison order exactly.
        let mut edges: Vec<CEdge> = Vec::new();
        let mut w = 1u32;
        for i in 0..n {
            let j = (i + 1 + seed % (n - 1).max(1)) % n;
            if i == j {
                continue;
            }
            edges.push(CEdge::new(i, j, w, 2 * w as u64));
            edges.push(CEdge::new(j, i, w, 2 * w as u64 + 1));
            w += 1;
        }
        let mut by_radix = edges.clone();
        radix_sort_by_key(&mut by_radix, |e: &CEdge| {
            (e.packed_weight_key().expect("packable").0, e.id)
        });
        let mut by_cmp = edges.clone();
        by_cmp.sort_unstable_by_key(|e| (e.weight_key(), e.id));
        prop_assert_eq!(by_radix, by_cmp);
    }

    #[test]
    fn lex_key_radix_matches_cedge_ord(
        raw in prop::collection::vec((0u64..1 << 16, 0u64..1 << 16, 0u32..256, any::<u64>()), 0..400),
    ) {
        let edges: Vec<CEdge> = raw
            .iter()
            .map(|&(u, v, w, id)| CEdge::new(u, v, w, id))
            .collect();
        let mut by_radix = edges.clone();
        radix_sort_by_key(&mut by_radix, CEdge::lex_key);
        let mut by_cmp = edges;
        by_cmp.sort_unstable();
        prop_assert_eq!(by_radix, by_cmp);
    }
}
