//! Cross-family generator properties: every family must produce a
//! symmetric, self-loop-free, globally sorted distributed edge list whose
//! content does not depend on how many PEs generated it (the invariant
//! that makes the paper's `-1` vs `-8` thread comparisons meaningful).

use kamsta_comm::{Machine, MachineConfig};
use kamsta_graph::{GraphConfig, WEdge};
use proptest::prelude::*;
use std::collections::HashSet;

fn families(seed: u64) -> Vec<GraphConfig> {
    let _ = seed;
    vec![
        GraphConfig::Grid2D { rows: 9, cols: 7 },
        GraphConfig::Rgg2D { n: 250, m: 1800 },
        GraphConfig::Rgg3D { n: 250, m: 1800 },
        GraphConfig::Gnm { n: 180, m: 1500 },
        GraphConfig::Rhg {
            n: 220,
            m: 1700,
            gamma: 3.0,
        },
        GraphConfig::Rmat { scale: 7, m: 900 },
        GraphConfig::RoadLike { rows: 10, cols: 9 },
    ]
}

fn generate(p: usize, config: GraphConfig, seed: u64) -> Vec<WEdge> {
    let mut all: Vec<WEdge> = Machine::run(MachineConfig::new(p), move |comm| {
        config.generate(comm, seed)
    })
    .results
    .into_iter()
    .flatten()
    .collect();
    // RMAT may contain duplicates by design; canonicalise the multiset
    // as a sorted list for comparisons.
    all.sort_unstable();
    all
}

/// Degenerate corpus: m = 0 and single-vertex configurations must
/// produce valid — sorted, symmetric, loop-free, partition-invariant —
/// and, where the family can honour it exactly, *empty* edge lists.
#[test]
fn degenerate_configs_generate_cleanly() {
    let corpus = vec![
        GraphConfig::Gnm { n: 2, m: 0 },
        GraphConfig::Gnm { n: 50, m: 0 },
        GraphConfig::Grid2D { rows: 1, cols: 1 },
        GraphConfig::RoadLike { rows: 1, cols: 1 },
        GraphConfig::Rmat { scale: 0, m: 0 },
        GraphConfig::Rmat { scale: 5, m: 0 },
        GraphConfig::Rgg2D { n: 1, m: 0 },
        GraphConfig::Rgg3D { n: 1, m: 0 },
        GraphConfig::Rhg {
            n: 8,
            m: 0,
            gamma: 3.0,
        },
    ];
    for config in corpus {
        let a = generate(1, config, 7);
        let b = generate(4, config, 7);
        assert_eq!(a, b, "{config:?}: degenerate output must not depend on p");
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "{config:?}: sorted");
        let set: HashSet<(u64, u64, u32)> = a.iter().map(|e| (e.u, e.v, e.w)).collect();
        for e in &a {
            assert!(!e.is_self_loop(), "{config:?}: self-loop {e:?}");
            assert!(
                set.contains(&(e.v, e.u, e.w)),
                "{config:?}: missing back edge of {e:?}"
            );
        }
    }
    // Families whose structure pins the edge count honour m = 0 / one
    // vertex exactly.
    for config in [
        GraphConfig::Gnm { n: 40, m: 0 },
        GraphConfig::Grid2D { rows: 1, cols: 1 },
        GraphConfig::Rmat { scale: 5, m: 0 },
        GraphConfig::RoadLike { rows: 1, cols: 1 },
    ] {
        assert!(
            generate(3, config, 1).is_empty(),
            "{config:?} must generate no edges"
        );
    }
}

#[test]
fn all_families_symmetric_and_loop_free() {
    for config in families(3) {
        let all = generate(4, config, 3);
        assert!(!all.is_empty(), "{config:?} generated nothing");
        let set: HashSet<(u64, u64, u32)> = all.iter().map(|e| (e.u, e.v, e.w)).collect();
        for e in &all {
            assert!(!e.is_self_loop(), "{config:?}: self-loop {e:?}");
            assert!(
                set.contains(&(e.v, e.u, e.w)),
                "{config:?}: missing back edge of {e:?}"
            );
        }
    }
}

/// The RHG sweep visits each cell pair from several angular spans (and,
/// since PR 8, from both orientations of the symmetric-pair rule); a
/// bookkeeping slip there shows up as the same directed {u,v} emitted
/// twice. Duplicates are a hard invariant violation — `InputGraph`
/// assumes a duplicate-free sorted list — so pin it across PE counts
/// and seeds.
#[test]
fn rhg_emits_no_duplicate_pairs() {
    for seed in [1u64, 7, 13, 42] {
        for p in [1usize, 4, 16] {
            let all = generate(
                p,
                GraphConfig::Rhg {
                    n: 400,
                    m: 3000,
                    gamma: 3.0,
                },
                seed,
            );
            let mut pairs: HashSet<(u64, u64)> = HashSet::with_capacity(all.len());
            for e in &all {
                assert!(
                    pairs.insert((e.u, e.v)),
                    "p={p} seed={seed}: duplicate directed edge ({}, {})",
                    e.u,
                    e.v
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn rhg_no_duplicate_pairs_random_seeds(seed in 0u64..10_000) {
        for p in [1usize, 4, 16] {
            let all = generate(
                p,
                GraphConfig::Rhg { n: 220, m: 1700, gamma: 3.0 },
                seed,
            );
            let pairs: HashSet<(u64, u64)> = all.iter().map(|e| (e.u, e.v)).collect();
            prop_assert_eq!(
                pairs.len(),
                all.len(),
                "p={} seed={}: RHG emitted duplicate directed edges",
                p,
                seed
            );
        }
    }

    #[test]
    fn partition_invariance_for_every_family(
        seed in 0u64..1000,
        pa in 1usize..6,
        pb in 6usize..10,
    ) {
        for config in families(seed) {
            let a = generate(pa, config, seed);
            let b = generate(pb, config, seed);
            prop_assert_eq!(
                &a, &b,
                "{:?} differs between p={} and p={}", config, pa, pb
            );
        }
    }

    #[test]
    fn different_seeds_give_different_random_graphs(seed in 0u64..500) {
        for config in [
            GraphConfig::Gnm { n: 200, m: 1600 },
            GraphConfig::Rmat { scale: 7, m: 900 },
        ] {
            let a = generate(3, config, seed);
            let b = generate(3, config, seed + 1);
            prop_assert_ne!(a, b, "{:?}: seed must matter", config);
        }
    }
}
