//! Generator determinism across PE counts **and** transport backends.
//!
//! The geometric generators are communication-free (pure hashing on
//! `(seed, cell)`), so the distributed edge list must be bit-identical
//! no matter how many PEs generate it or which transport the machine
//! runs on — the transports may only move bytes, never perturb
//! float evaluation order. Compared via an order-sensitive digest of
//! the globally sorted list, which catches any drift in edge content,
//! weights, or ordering.

use kamsta_comm::{Machine, MachineConfig, TransportKind};
use kamsta_graph::{GraphConfig, WEdge};

/// FNV-style order-sensitive digest of a sorted edge list.
fn digest(edges: &[WEdge]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for e in edges {
        let mut x = e.u ^ e.v.rotate_left(21) ^ (e.w as u64).rotate_left(42);
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        h ^= x ^ (x >> 31);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ edges.len() as u64
}

fn generate_t(
    p: usize,
    threads: usize,
    transport: TransportKind,
    config: GraphConfig,
    seed: u64,
) -> Vec<WEdge> {
    let mut all: Vec<WEdge> = Machine::run(
        MachineConfig::new(p)
            .with_threads(threads)
            .with_transport(transport),
        move |comm| config.generate(comm, seed),
    )
    .results
    .into_iter()
    .flatten()
    .collect();
    all.sort_unstable();
    all
}

fn generate(p: usize, transport: TransportKind, config: GraphConfig, seed: u64) -> Vec<WEdge> {
    generate_t(p, 1, transport, config, seed)
}

#[test]
fn geometric_generators_deterministic_across_pes_and_transports() {
    let cases: [(GraphConfig, u64); 3] = [
        (
            GraphConfig::Rhg {
                n: 400,
                m: 3000,
                gamma: 3.0,
            },
            5,
        ),
        (GraphConfig::Rgg2D { n: 400, m: 3000 }, 7),
        (GraphConfig::Rgg3D { n: 300, m: 2200 }, 9),
    ];
    for (config, seed) in cases {
        let reference = generate(1, TransportKind::Cells, config, seed);
        assert!(!reference.is_empty(), "{config:?} generated nothing");
        let want = digest(&reference);
        for transport in [TransportKind::Cells, TransportKind::Bytes] {
            for p in [1usize, 2, 4, 16] {
                let got = generate(p, transport, config, seed);
                assert_eq!(
                    digest(&got),
                    want,
                    "{config:?} seed={seed}: edge-set digest differs at \
                     p={p} transport={transport:?}"
                );
                assert_eq!(
                    got, reference,
                    "{config:?} seed={seed}: edge list differs at \
                     p={p} transport={transport:?}"
                );
            }
        }
        // The hybrid thread axis: intra-PE width must never perturb the
        // generated edge list either — same digest at t ∈ {2, 8}.
        for t in [2usize, 8] {
            for p in [1usize, 4] {
                let got = generate_t(p, t, TransportKind::Cells, config, seed);
                assert_eq!(
                    digest(&got),
                    want,
                    "{config:?} seed={seed}: edge-set digest differs at p={p} t={t}"
                );
            }
        }
    }
}
