//! The prepared input graph: distributed structure + the varint-compressed
//! original edge list used to map MST edge ids back to original edges
//! (Sec. VI-C).

use crate::dist::{assign_ids, home_of_id, id_offsets, DistGraph};
use crate::edge::{CEdge, WEdge};
use crate::gen::GraphConfig;
use crate::varint::CompressedEdges;
use kamsta_comm::Comm;

/// A fully prepared MST input: the distributed graph plus the compressed
/// id→edge mapping and its routing table.
pub struct InputGraph {
    pub graph: DistGraph,
    /// Varint-compressed copy of this PE's slice of the initial edge list.
    pub compressed: CompressedEdges,
    /// Replicated: first global edge id held by each PE.
    pub id_offsets: Vec<u64>,
}

impl InputGraph {
    /// Prepare an input from this PE's slice of a globally sorted edge
    /// list: assign global-position ids, compress the original list, and
    /// establish the distributed structure. Collective.
    pub fn from_sorted_edges(comm: &Comm, edges: Vec<WEdge>) -> Self {
        let with_ids = assign_ids(comm, edges);
        let offsets = id_offsets(comm, with_ids.len());
        let compressed = CompressedEdges::compress(&with_ids, offsets[comm.rank()]);
        let graph = DistGraph::establish(comm, with_ids);
        Self {
            graph,
            compressed,
            id_offsets: offsets,
        }
    }

    /// Generate one of the paper's graph families and prepare it.
    /// Collective.
    pub fn generate(comm: &Comm, config: GraphConfig, seed: u64) -> Self {
        let edges = config.generate(comm, seed);
        Self::from_sorted_edges(comm, edges)
    }

    /// `REDISTRIBUTE MST`: route identified MST edge ids back to their
    /// original home PEs and decode them from the compressed list.
    /// Returns this PE's original edges that belong to the MSF, sorted.
    /// Collective.
    pub fn redistribute_mst(&self, comm: &Comm, ids: Vec<u64>) -> Vec<CEdge> {
        let items: Vec<(usize, u64)> = ids
            .into_iter()
            .map(|id| (home_of_id(&self.id_offsets, id), id))
            .collect();
        let mut mine = kamsta_comm::route(comm, items);
        kamsta_sort::radix_sort_keys(&mut mine);
        mine.dedup();
        comm.charge_local(self.compressed.len() as u64);
        self.compressed.lookup_sorted(&mine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig};

    #[test]
    fn prepares_generated_graph() {
        let out = Machine::run(MachineConfig::new(4), |comm| {
            let input = InputGraph::generate(comm, GraphConfig::Grid2D { rows: 8, cols: 8 }, 7);
            (
                input.graph.n_global,
                input.graph.m_global,
                input.compressed.len() as u64,
                input.graph.edges.len() as u64,
            )
        });
        for (n, m, clen, elen) in out.results {
            assert_eq!(n, 64);
            assert_eq!(m, 2 * (8 * 7 + 7 * 8));
            assert_eq!(clen, elen, "compressed copy covers the local slice");
        }
    }

    #[test]
    fn mst_id_redistribution_roundtrip() {
        let out = Machine::run(MachineConfig::new(3), |comm| {
            let input = InputGraph::generate(comm, GraphConfig::Grid2D { rows: 4, cols: 4 }, 3);
            // Pretend some scattered ids were identified as MST edges:
            // every PE claims ids it does not own.
            let total = input.graph.m_global;
            let claim: Vec<u64> = (0..total)
                .filter(|id| id % 3 == comm.rank() as u64)
                .collect();
            let mine = input.redistribute_mst(comm, claim);
            // Every returned edge must be an original local edge.
            let ok = mine.iter().all(|e| input.graph.edges.contains(e));
            (mine.len() as u64, ok)
        });
        let total: u64 = out.results.iter().map(|(l, _)| l).sum();
        assert_eq!(total, 2 * (4 * 3 + 3 * 4), "all ids delivered home");
        assert!(out.results.iter().all(|(_, ok)| *ok));
    }
}
