//! The prepared input graph: distributed structure + the varint-compressed
//! original edge list used to map MST edge ids back to original edges
//! (Sec. VI-C).

use crate::dist::{assign_ids, home_of_id, id_offsets, DistGraph};
use crate::edge::{CEdge, WEdge};
use crate::gen::GraphConfig;
use crate::varint::CompressedEdges;
use kamsta_comm::{Comm, FlatBuckets};

/// Rewrite every backward (`u > v`) copy's id to the id of its
/// undirected edge's globally *first* forward copy, so both directions
/// share one canonical id. This makes `(w, id)` a direction-symmetric,
/// **contraction-invariant** realisation of the paper's unique-weight
/// total order: for equal weights, forward global positions order
/// exactly by `(min(u,v), max(u,v))`, but unlike endpoint-based keys the
/// id survives relabeling unchanged — so every pipeline stage breaks
/// weight ties identically at every PE count, and `REDISTRIBUTE MST`
/// decodes every claim to the `u < v` copy. Exact duplicate copies of a
/// pair all map to the group's minimal id; surplus duplicates keep
/// their own (never-selected) position ids. Collective.
fn canonicalize_pair_ids(comm: &Comm, graph: &mut DistGraph) {
    let p = comm.size();
    let me = comm.rank();
    // Each backward copy asks the forward content's first-copy holder
    // for the group's first id. The holder is locator-decidable, so the
    // common case is one query — or none at all when the twin is local
    // (most edges of the high-locality families).
    let mut twin: Vec<Option<u64>> = vec![None; graph.edges.len()];
    let mut queries: Vec<(usize, (WEdge, u32))> = Vec::new();
    for (k, e) in graph.edges.iter().enumerate() {
        if e.u > e.v {
            let fwd = WEdge::new(e.v, e.u, e.w);
            for home in graph.first_copy_homes(&fwd) {
                if home == me {
                    if let Some(id) = graph.first_copy_id(&fwd) {
                        let slot = &mut twin[k];
                        *slot = Some(slot.map_or(id, |x| x.min(id)));
                    }
                } else {
                    queries.push((home, (fwd, k as u32)));
                }
            }
        }
    }
    comm.charge_local(graph.edges.len() as u64);
    // Tags stay on the sender: replies ride back positionally in the
    // request buckets, so only the bare content crosses the wire.
    let requests = FlatBuckets::from_pairs(p, queries);
    let sent = requests.payload().to_vec();
    let answers = comm.request_reply(requests.map(|(fwd, _)| fwd), |fwd| graph.first_copy_id(fwd));
    for ((_, k), a) in sent.into_iter().zip(answers) {
        if let Some(id) = a {
            let slot = &mut twin[k as usize];
            *slot = Some(slot.map_or(id, |x| x.min(id)));
        }
    }
    // Asymmetric hand-built inputs may lack the forward copy; such
    // backward edges keep their own position id.
    for (e, t) in graph.edges.iter_mut().zip(twin) {
        if let Some(id) = t {
            e.id = id;
        }
    }
}

/// A fully prepared MST input: the distributed graph plus the compressed
/// id→edge mapping and its routing table.
pub struct InputGraph {
    pub graph: DistGraph,
    /// Varint-compressed copy of this PE's slice of the initial edge list.
    pub compressed: CompressedEdges,
    /// Replicated: first global edge id held by each PE.
    pub id_offsets: Vec<u64>,
}

impl InputGraph {
    /// Prepare an input from this PE's slice of a globally sorted edge
    /// list: assign global-position ids, compress the original list,
    /// establish the distributed structure, and canonicalise pair ids
    /// (see [`canonicalize_pair_ids`]). Collective.
    pub fn from_sorted_edges(comm: &Comm, edges: Vec<WEdge>) -> Self {
        let with_ids = assign_ids(comm, edges);
        let offsets = id_offsets(comm, with_ids.len());
        let compressed = CompressedEdges::compress(&with_ids, offsets[comm.rank()]);
        let mut graph = DistGraph::establish(comm, with_ids);
        canonicalize_pair_ids(comm, &mut graph);
        Self {
            graph,
            compressed,
            id_offsets: offsets,
        }
    }

    /// Generate one of the paper's graph families and prepare it.
    /// Collective.
    pub fn generate(comm: &Comm, config: GraphConfig, seed: u64) -> Self {
        let edges = config.generate(comm, seed);
        Self::from_sorted_edges(comm, edges)
    }

    /// Prepare an input from an arbitrarily distributed, *unsorted* edge
    /// list: globally sort it with the distributed sorter (local phases
    /// radix on the packed `(u, v, w)` key), rebalance, and establish the
    /// structure. The certificate re-solves of the batch-dynamic layer
    /// enter here. Collective.
    pub fn from_unsorted_edges(comm: &Comm, edges: Vec<WEdge>) -> Self {
        let sorted = kamsta_sort::sort_auto_by_key(comm, edges, 0x00D1_5C0E, WEdge::lex_key);
        let balanced = kamsta_sort::rebalance(comm, sorted);
        Self::from_sorted_edges(comm, balanced)
    }

    /// `REDISTRIBUTE MST`: route identified MST edge ids back to their
    /// original home PEs and decode them from the compressed list. Ids
    /// are pair-canonical (see [`canonicalize_pair_ids`]), so every
    /// claim decodes to the `u < v` copy of its undirected edge — one
    /// direction per MSF edge globally, independent of which stage or
    /// direction claimed it. Returns this PE's original edges that
    /// belong to the MSF, sorted. Collective.
    pub fn redistribute_mst(&self, comm: &Comm, ids: Vec<u64>) -> Vec<CEdge> {
        let items: Vec<(usize, u64)> = ids
            .into_iter()
            .map(|id| (home_of_id(&self.id_offsets, id), id))
            .collect();
        let mut mine = kamsta_comm::route(comm, items);
        kamsta_sort::radix_sort_keys(&mut mine);
        mine.dedup();
        comm.charge_local(self.compressed.len() as u64);
        self.compressed.lookup_sorted(&mine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig};

    #[test]
    fn prepares_generated_graph() {
        let out = Machine::run(MachineConfig::new(4), |comm| {
            let input = InputGraph::generate(comm, GraphConfig::Grid2D { rows: 8, cols: 8 }, 7);
            (
                input.graph.n_global,
                input.graph.m_global,
                input.compressed.len() as u64,
                input.graph.edges.len() as u64,
            )
        });
        for (n, m, clen, elen) in out.results {
            assert_eq!(n, 64);
            assert_eq!(m, 2 * (8 * 7 + 7 * 8));
            assert_eq!(clen, elen, "compressed copy covers the local slice");
        }
    }

    #[test]
    fn mst_id_redistribution_roundtrip() {
        let out = Machine::run(MachineConfig::new(3), |comm| {
            let input = InputGraph::generate(comm, GraphConfig::Grid2D { rows: 4, cols: 4 }, 3);
            // Claim every id the pipeline could ever claim — the
            // canonical pair ids carried by this PE's edges. Both
            // directions share the id, so most ids are claimed by two
            // PEs at once and many claims route off-PE; the dedup at
            // the home must collapse them.
            let claim: Vec<u64> = input.graph.edges.iter().map(|e| e.id).collect();
            let mine = input.redistribute_mst(comm, claim);
            // Every returned edge must be an original local edge in the
            // canonical direction.
            let ok = mine
                .iter()
                .all(|e| e.u < e.v && input.graph.edges.contains(e));
            (mine.len() as u64, ok)
        });
        // Both directions of an edge share one id, so the claims cover
        // exactly one u < v copy per undirected edge.
        let total: u64 = out.results.iter().map(|(l, _)| l).sum();
        assert_eq!(total, 4 * 3 + 3 * 4, "one canonical copy per edge");
        assert!(out.results.iter().all(|(_, ok)| *ok));
    }

    #[test]
    fn pair_ids_survive_empty_pes() {
        // Regression: with far fewer edges than PEs, the locator
        // fill-back gives empty PEs the next holder's first edge, and
        // the first-copy holder is no longer locator[cnt]'s PE — the
        // canonicalisation must still find it. 2 directed edges over
        // 4 (and 16) PEs leave most slices empty.
        for p in [4usize, 16] {
            let out = Machine::run(MachineConfig::new(p), |comm| {
                let edges = vec![
                    WEdge::new(0, 1, 5),
                    WEdge::new(1, 0, 5),
                    WEdge::new(2, 9, 3),
                    WEdge::new(9, 2, 3),
                ];
                let slice =
                    crate::io::distribute_from_root(comm, (comm.rank() == 0).then_some(edges));
                let input = InputGraph::from_sorted_edges(comm, slice);
                input.graph.edges.clone()
            });
            let all: Vec<CEdge> = out.results.into_iter().flatten().collect();
            assert_eq!(all.len(), 4);
            for e in &all {
                let twin = all
                    .iter()
                    .find(|t| (t.u, t.v) == (e.v, e.u))
                    .expect("symmetric closure");
                assert_eq!(e.id, twin.id, "p={p}: directions of {e:?} disagree");
            }
        }
    }

    #[test]
    fn pair_ids_are_direction_symmetric_and_order_by_weight_key() {
        let out = Machine::run(MachineConfig::new(4), |comm| {
            let input = InputGraph::generate(comm, GraphConfig::Gnm { n: 40, m: 300 }, 9);
            input.graph.edges.clone()
        });
        let all: Vec<CEdge> = out.results.into_iter().flatten().collect();
        // Both directions of an undirected edge carry the same id…
        let mut by_pair = std::collections::HashMap::new();
        for e in &all {
            by_pair
                .entry((e.u.min(e.v), e.u.max(e.v), e.w))
                .or_insert_with(Vec::new)
                .push(e.id);
        }
        for ((u, v, w), ids) in by_pair {
            let min = *ids.iter().min().unwrap();
            // Every backward copy points at the group's first forward
            // copy (surplus exact-duplicate forward copies may keep
            // their own, never-selected ids).
            for e in all.iter().filter(|e| e.u > e.v) {
                if (e.v, e.u, e.w) == (u, v, w) {
                    assert_eq!(e.id, min, "backward copy of ({u}, {v}, {w})");
                }
            }
        }
        // …and for equal weights, distinct contents order exactly like
        // (w, min, max).
        for a in &all {
            for b in &all {
                if a.w == b.w && a.weight_key() != b.weight_key() {
                    assert_eq!(
                        a.id < b.id,
                        a.weight_key() < b.weight_key(),
                        "{a:?} vs {b:?}"
                    );
                }
            }
        }
    }
}
