//! # kamsta-graph — distributed weighted graphs
//!
//! The graph substrate of the KaMSTa reproduction: edge types with the
//! paper's lexicographic and unique-weight orders, the 1D-partitioned
//! distributed edge list with its replicated `minlex` locator
//! ([`DistGraph`], Sec. II-B), varint-compressed original-edge storage
//! ([`CompressedEdges`], Sec. VI-C), KaGen-style communication-free
//! generators for the six evaluation families ([`gen`], Sec. VII), and
//! DIMACS IO for real-world instances.

pub mod dist;
pub mod edge;
pub mod gen;
pub mod hash;
mod input;
pub mod io;
pub mod varint;

pub use dist::{assign_ids, home_of_id, id_offsets, DistGraph, VertexSegments};
pub use edge::{lighter, CEdge, HasWeightKey, PackedEdge, VertexId, WEdge, Weight};
pub use gen::GraphConfig;
pub use input::InputGraph;
pub use varint::CompressedEdges;
