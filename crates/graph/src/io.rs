//! Graph IO: the DIMACS `.gr` format (used by the 9th DIMACS challenge,
//! the source of the paper's US-road instance) and root-based
//! distribution of externally loaded edge lists.

use crate::edge::WEdge;
use kamsta_comm::Comm;
use std::io::BufRead;

/// Parse a DIMACS shortest-path `.gr` file: `p sp <n> <m>` header and
/// `a <u> <v> <w>` arc lines (1-based vertices; we keep them 1-based).
/// Returns `(n, edges)`. Most DIMACS graphs list both arc directions; use
/// [`symmetrize`] if the source does not.
pub fn parse_dimacs<R: BufRead>(reader: R) -> std::io::Result<(u64, Vec<WEdge>)> {
    let mut n = 0u64;
    let mut edges = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("c") | None => continue,
            Some("p") => {
                // "p sp n m"
                let _sp = parts.next();
                n = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("missing n in p-line"))?;
            }
            Some("a") => {
                let u: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("bad arc src"))?;
                let v: u64 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("bad arc dst"))?;
                let w: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| bad("bad arc weight"))?;
                edges.push(WEdge::new(u, v, w));
            }
            _ => continue,
        }
    }
    Ok((n, edges))
}

fn bad(msg: &str) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Load a DIMACS `.gr` file from disk.
pub fn load_dimacs(path: &std::path::Path) -> std::io::Result<(u64, Vec<WEdge>)> {
    let file = std::fs::File::open(path)?;
    parse_dimacs(std::io::BufReader::new(file))
}

/// Ensure every edge has its back edge; deduplicates directed edges and
/// keeps the lightest weight per direction pair.
pub fn symmetrize(mut edges: Vec<WEdge>) -> Vec<WEdge> {
    let reversed: Vec<WEdge> = edges.iter().map(WEdge::reversed).collect();
    edges.extend(reversed);
    edges.sort_unstable();
    edges.dedup_by(|next, first| next.u == first.u && next.v == first.v);
    edges
}

/// Distribute an edge list held by the root PE into the balanced, sorted
/// block partition the algorithms expect. Non-root PEs pass `None`.
/// Collective.
pub fn distribute_from_root(comm: &Comm, edges: Option<Vec<WEdge>>) -> Vec<WEdge> {
    let p = comm.size();
    let bufs = if comm.rank() == 0 {
        let mut edges = edges.expect("root must supply the edge list");
        edges.sort_unstable();
        let total = edges.len();
        // Sorted blocks are contiguous: the payload is already in bucket
        // order, so the flat buffer wraps it without a scatter pass.
        let counts: Vec<usize> = (0..p)
            .map(|i| (i + 1) * total / p - i * total / p)
            .collect();
        kamsta_comm::FlatBuckets::from_counts(edges, &counts)
    } else {
        kamsta_comm::FlatBuckets::empty(p)
    };
    comm.alltoallv_direct(bufs).into_payload()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig};

    const SAMPLE: &str = "c test graph\n\
                          p sp 4 5\n\
                          a 1 2 10\n\
                          a 2 1 10\n\
                          a 2 3 5\n\
                          a 3 2 5\n\
                          a 3 4 2\n";

    #[test]
    fn parses_dimacs() {
        let (n, edges) = parse_dimacs(SAMPLE.as_bytes()).unwrap();
        assert_eq!(n, 4);
        assert_eq!(edges.len(), 5);
        assert_eq!(edges[0], WEdge::new(1, 2, 10));
        assert_eq!(edges[4], WEdge::new(3, 4, 2));
    }

    #[test]
    fn symmetrize_adds_missing_back_edges() {
        let (_, edges) = parse_dimacs(SAMPLE.as_bytes()).unwrap();
        let sym = symmetrize(edges);
        assert_eq!(sym.len(), 6); // (3,4) gains (4,3)
        assert!(sym.contains(&WEdge::new(4, 3, 2)));
        assert!(sym.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_dimacs("a 1 nope 3\n".as_bytes()).is_err());
        assert!(parse_dimacs("p sp\n".as_bytes()).is_err());
    }

    #[test]
    fn distributes_from_root() {
        let out = Machine::run(MachineConfig::new(3), |comm| {
            let edges = if comm.rank() == 0 {
                // Unsorted on purpose.
                Some(vec![
                    WEdge::new(5, 1, 1),
                    WEdge::new(0, 1, 2),
                    WEdge::new(3, 2, 3),
                    WEdge::new(1, 0, 2),
                    WEdge::new(2, 3, 3),
                ])
            } else {
                None
            };
            distribute_from_root(comm, edges)
        });
        let flat: Vec<WEdge> = out.results.iter().flatten().copied().collect();
        assert_eq!(flat.len(), 5);
        assert!(
            flat.windows(2).all(|w| w[0] <= w[1]),
            "sorted after distribution"
        );
        let sizes: Vec<usize> = out.results.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 5);
        assert!(sizes.iter().all(|&s| s >= 1));
    }
}
