//! 7-bit variable-length encoding of sorted edge lists (Sec. VI-C).
//!
//! "As main memory on compute cluster nodes is notoriously scarce, this
//! copy is stored with 7-bit variable length encoding on the differences
//! of consecutive vertices." Each PE keeps its slice of the *initial*
//! edge list compressed; at the end of the MST computation, the ids of
//! MST edges are looked up here to recover original endpoints.

use crate::edge::{CEdge, VertexId, Weight};
pub use kamsta_comm::WireError;

/// Append `x` as LEB128-style 7-bit varint.
///
/// Delegates to the transport layer's codec
/// ([`kamsta_comm::wire::write_uvarint`]) so the compressed edge lists
/// and the byte-stream wire format share one encoding.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, x: u64) {
    kamsta_comm::wire::write_uvarint(out, x);
}

/// Checked varint decode from `buf` starting at `*pos`, advancing it.
///
/// Returns [`WireError::Truncated`] when the buffer ends inside a value
/// (including a trailing continuation byte at the very end) and
/// [`WireError::VarintOverflow`] when the encoding runs past 64 bits —
/// instead of panicking on an out-of-bounds index or silently wrapping
/// the shift. `pos` is still advanced past the bytes consumed so far,
/// so callers can report the exact failure offset.
#[inline]
pub fn try_read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    kamsta_comm::wire::try_read_uvarint(buf, pos)
}

/// Read a varint from `buf` starting at `*pos`, advancing it.
///
/// # Panics
///
/// Panics on truncated or overlong input. Use this only on buffers this
/// module produced itself (the [`CompressedEdges`] internals, whose
/// well-formedness is a construction invariant); anything read from the
/// outside world goes through [`try_read_varint`].
#[inline]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> u64 {
    try_read_varint(buf, pos).unwrap_or_else(|e| panic!("corrupt varint stream at {pos}: {e}"))
}

/// A compressed, immutable copy of a PE's slice of the initial edge list.
///
/// Requires the edges to be sorted lexicographically (the input invariant
/// of Sec. II-B); consecutive source deltas are then non-negative and
/// mostly zero, so compression is strong. Edge ids are implicit: the
/// `k`-th stored edge has id `first_id + k`.
#[derive(Clone, Debug)]
pub struct CompressedEdges {
    data: Vec<u8>,
    len: usize,
    first_id: u64,
}

impl CompressedEdges {
    /// Compress a sorted slice of edges whose ids are consecutive starting
    /// at `first_id` (the global-position ids assigned at graph build).
    pub fn compress(edges: &[CEdge], first_id: u64) -> Self {
        let mut data = Vec::with_capacity(edges.len() * 4);
        let mut prev_u: VertexId = 0;
        let mut prev_v: VertexId = 0;
        for (k, e) in edges.iter().enumerate() {
            debug_assert_eq!(e.id, first_id + k as u64, "ids must be consecutive");
            debug_assert!(e.u >= prev_u, "edges must be sorted by source");
            let du = e.u - prev_u;
            write_varint(&mut data, du);
            if du > 0 {
                prev_v = 0;
            }
            // Destinations within a source run ascend; encode signed-free
            // delta when possible, raw otherwise (zig-zag not needed since
            // sorted (u,v) runs are non-decreasing in v per source).
            let dv = e.v.wrapping_sub(prev_v);
            debug_assert!(
                du > 0 || e.v >= prev_v,
                "destinations must ascend within a source run"
            );
            write_varint(&mut data, dv);
            write_varint(&mut data, e.w as u64);
            prev_u = e.u;
            prev_v = e.v;
        }
        data.shrink_to_fit();
        Self {
            data,
            len: edges.len(),
            first_id,
        }
    }

    /// Number of stored edges.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed size in bytes.
    pub fn byte_size(&self) -> usize {
        self.data.len()
    }

    /// First stored edge id.
    pub fn first_id(&self) -> u64 {
        self.first_id
    }

    /// Decode the full slice (the "decoding the compressed edge list"
    /// step the paper accounts for twice in its timings).
    pub fn decode(&self) -> Vec<CEdge> {
        let mut out = Vec::with_capacity(self.len);
        let mut pos = 0usize;
        let mut u: VertexId = 0;
        let mut v: VertexId = 0;
        for k in 0..self.len {
            let du = read_varint(&self.data, &mut pos);
            u += du;
            if du > 0 {
                v = 0;
            }
            v = v.wrapping_add(read_varint(&self.data, &mut pos));
            let w = read_varint(&self.data, &mut pos) as Weight;
            out.push(CEdge::new(u, v, w, self.first_id + k as u64));
        }
        out
    }

    /// Look up original edges by a *sorted* list of ids in one scan.
    /// Ids must all lie in `[first_id, first_id + len)`.
    pub fn lookup_sorted(&self, ids: &[u64]) -> Vec<CEdge> {
        let mut out = Vec::with_capacity(ids.len());
        if ids.is_empty() {
            return out;
        }
        debug_assert!(ids.windows(2).all(|w| w[0] <= w[1]), "ids must be sorted");
        let mut pos = 0usize;
        let mut u: VertexId = 0;
        let mut v: VertexId = 0;
        let mut want = ids.iter().peekable();
        for k in 0..self.len {
            let du = read_varint(&self.data, &mut pos);
            u += du;
            if du > 0 {
                v = 0;
            }
            v = v.wrapping_add(read_varint(&self.data, &mut pos));
            let w = read_varint(&self.data, &mut pos) as Weight;
            let id = self.first_id + k as u64;
            while let Some(&&next) = want.peek() {
                if next == id {
                    out.push(CEdge::new(u, v, w, id));
                    want.next();
                } else {
                    break;
                }
            }
            if want.peek().is_none() {
                break;
            }
        }
        assert!(
            want.peek().is_none(),
            "lookup id out of range for this PE's compressed slice"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        // Every 2^(7k) continuation boundary (k = 1..9): the largest
        // value of each encoded length, the first value of the next
        // length, and their neighbours — plus u64::MAX (the full
        // 10-byte encoding).
        let mut cases = vec![0u64, 1, u32::MAX as u64, u64::MAX, u64::MAX - 1];
        for k in 1..=9u32 {
            let boundary = 1u64 << (7 * k);
            cases.extend([boundary - 1, boundary, boundary + 1]);
        }
        for &x in &cases {
            let mut buf = Vec::new();
            write_varint(&mut buf, x);
            assert_eq!(buf.len(), 1 + (63 - x.max(1).leading_zeros() as usize) / 7);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), x, "x={x}");
            assert_eq!(pos, buf.len());
            let mut pos = 0;
            assert_eq!(try_read_varint(&buf, &mut pos), Ok(x), "x={x}");
        }
    }

    #[test]
    fn truncated_varint_is_a_checked_error() {
        for x in [128u64, 1 << 14, 1 << 62, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, x);
            for cut in 0..buf.len() {
                let mut pos = 0;
                assert_eq!(
                    try_read_varint(&buf[..cut], &mut pos),
                    Err(WireError::Truncated),
                    "x={x} cut={cut}"
                );
            }
        }
        // Empty input.
        assert_eq!(try_read_varint(&[], &mut 0), Err(WireError::Truncated));
    }

    #[test]
    fn overlong_varint_is_a_checked_error() {
        // 11 continuation bytes: more than 64 bits of payload.
        assert_eq!(
            try_read_varint(&[0x80; 11], &mut 0),
            Err(WireError::VarintOverflow)
        );
        // A 10-byte encoding whose final byte sets bits above 2^63.
        let mut buf = vec![0xFF; 9];
        buf.push(0x7F);
        assert_eq!(
            try_read_varint(&buf, &mut 0),
            Err(WireError::VarintOverflow)
        );
    }

    #[test]
    #[should_panic(expected = "corrupt varint stream")]
    fn read_varint_documents_its_panic_on_truncation() {
        let _ = read_varint(&[0x80], &mut 0);
    }

    fn sample_edges() -> Vec<CEdge> {
        vec![
            CEdge::new(0, 3, 7, 100),
            CEdge::new(0, 5, 2, 101),
            CEdge::new(2, 0, 9, 102),
            CEdge::new(2, 2, 1, 103),
            CEdge::new(9, 1, 254, 104),
        ]
    }

    #[test]
    fn compress_decode_roundtrip() {
        let edges = sample_edges();
        let c = CompressedEdges::compress(&edges, 100);
        assert_eq!(c.len(), 5);
        assert_eq!(c.decode(), edges);
    }

    #[test]
    fn compression_beats_raw_on_sorted_runs() {
        // A long sorted run with small deltas compresses far below the
        // 24-byte raw footprint per edge.
        let edges: Vec<CEdge> = (0..1000)
            .map(|i| CEdge::new(i / 4, (i % 4) * 3, (i % 254 + 1) as Weight, i))
            .collect();
        let c = CompressedEdges::compress(&edges, 0);
        assert!(c.byte_size() < edges.len() * 6, "got {}", c.byte_size());
        assert_eq!(c.decode(), edges);
    }

    #[test]
    fn lookup_sorted_selects_requested_ids() {
        let edges = sample_edges();
        let c = CompressedEdges::compress(&edges, 100);
        let got = c.lookup_sorted(&[100, 102, 104]);
        assert_eq!(got, vec![edges[0], edges[2], edges[4]]);
        assert!(c.lookup_sorted(&[]).is_empty());
        assert_eq!(c.lookup_sorted(&[103]), vec![edges[3]]);
    }

    #[test]
    fn empty_list_roundtrip() {
        let c = CompressedEdges::compress(&[], 0);
        assert!(c.is_empty());
        assert!(c.decode().is_empty());
    }
}
