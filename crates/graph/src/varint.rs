//! 7-bit variable-length encoding of sorted edge lists (Sec. VI-C).
//!
//! "As main memory on compute cluster nodes is notoriously scarce, this
//! copy is stored with 7-bit variable length encoding on the differences
//! of consecutive vertices." Each PE keeps its slice of the *initial*
//! edge list compressed; at the end of the MST computation, the ids of
//! MST edges are looked up here to recover original endpoints.

use crate::edge::{CEdge, VertexId, Weight};

/// Append `x` as LEB128-style 7-bit varint.
#[inline]
pub fn write_varint(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7F) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Read a varint from `buf` starting at `*pos`, advancing it.
#[inline]
pub fn read_varint(buf: &[u8], pos: &mut usize) -> u64 {
    let mut x = 0u64;
    let mut shift = 0u32;
    loop {
        let byte = buf[*pos];
        *pos += 1;
        x |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            return x;
        }
        shift += 7;
        debug_assert!(shift < 64, "varint too long");
    }
}

/// A compressed, immutable copy of a PE's slice of the initial edge list.
///
/// Requires the edges to be sorted lexicographically (the input invariant
/// of Sec. II-B); consecutive source deltas are then non-negative and
/// mostly zero, so compression is strong. Edge ids are implicit: the
/// `k`-th stored edge has id `first_id + k`.
#[derive(Clone, Debug)]
pub struct CompressedEdges {
    data: Vec<u8>,
    len: usize,
    first_id: u64,
}

impl CompressedEdges {
    /// Compress a sorted slice of edges whose ids are consecutive starting
    /// at `first_id` (the global-position ids assigned at graph build).
    pub fn compress(edges: &[CEdge], first_id: u64) -> Self {
        let mut data = Vec::with_capacity(edges.len() * 4);
        let mut prev_u: VertexId = 0;
        let mut prev_v: VertexId = 0;
        for (k, e) in edges.iter().enumerate() {
            debug_assert_eq!(e.id, first_id + k as u64, "ids must be consecutive");
            debug_assert!(e.u >= prev_u, "edges must be sorted by source");
            let du = e.u - prev_u;
            write_varint(&mut data, du);
            if du > 0 {
                prev_v = 0;
            }
            // Destinations within a source run ascend; encode signed-free
            // delta when possible, raw otherwise (zig-zag not needed since
            // sorted (u,v) runs are non-decreasing in v per source).
            let dv = e.v.wrapping_sub(prev_v);
            debug_assert!(
                du > 0 || e.v >= prev_v,
                "destinations must ascend within a source run"
            );
            write_varint(&mut data, dv);
            write_varint(&mut data, e.w as u64);
            prev_u = e.u;
            prev_v = e.v;
        }
        data.shrink_to_fit();
        Self {
            data,
            len: edges.len(),
            first_id,
        }
    }

    /// Number of stored edges.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Compressed size in bytes.
    pub fn byte_size(&self) -> usize {
        self.data.len()
    }

    /// First stored edge id.
    pub fn first_id(&self) -> u64 {
        self.first_id
    }

    /// Decode the full slice (the "decoding the compressed edge list"
    /// step the paper accounts for twice in its timings).
    pub fn decode(&self) -> Vec<CEdge> {
        let mut out = Vec::with_capacity(self.len);
        let mut pos = 0usize;
        let mut u: VertexId = 0;
        let mut v: VertexId = 0;
        for k in 0..self.len {
            let du = read_varint(&self.data, &mut pos);
            u += du;
            if du > 0 {
                v = 0;
            }
            v = v.wrapping_add(read_varint(&self.data, &mut pos));
            let w = read_varint(&self.data, &mut pos) as Weight;
            out.push(CEdge::new(u, v, w, self.first_id + k as u64));
        }
        out
    }

    /// Look up original edges by a *sorted* list of ids in one scan.
    /// Ids must all lie in `[first_id, first_id + len)`.
    pub fn lookup_sorted(&self, ids: &[u64]) -> Vec<CEdge> {
        let mut out = Vec::with_capacity(ids.len());
        if ids.is_empty() {
            return out;
        }
        debug_assert!(ids.windows(2).all(|w| w[0] <= w[1]), "ids must be sorted");
        let mut pos = 0usize;
        let mut u: VertexId = 0;
        let mut v: VertexId = 0;
        let mut want = ids.iter().peekable();
        for k in 0..self.len {
            let du = read_varint(&self.data, &mut pos);
            u += du;
            if du > 0 {
                v = 0;
            }
            v = v.wrapping_add(read_varint(&self.data, &mut pos));
            let w = read_varint(&self.data, &mut pos) as Weight;
            let id = self.first_id + k as u64;
            while let Some(&&next) = want.peek() {
                if next == id {
                    out.push(CEdge::new(u, v, w, id));
                    want.next();
                } else {
                    break;
                }
            }
            if want.peek().is_none() {
                break;
            }
        }
        assert!(
            want.peek().is_none(),
            "lookup id out of range for this PE's compressed slice"
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip_boundaries() {
        let cases = [
            0u64,
            1,
            127,
            128,
            129,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &x in &cases {
            let mut buf = Vec::new();
            write_varint(&mut buf, x);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos), x);
            assert_eq!(pos, buf.len());
        }
    }

    fn sample_edges() -> Vec<CEdge> {
        vec![
            CEdge::new(0, 3, 7, 100),
            CEdge::new(0, 5, 2, 101),
            CEdge::new(2, 0, 9, 102),
            CEdge::new(2, 2, 1, 103),
            CEdge::new(9, 1, 254, 104),
        ]
    }

    #[test]
    fn compress_decode_roundtrip() {
        let edges = sample_edges();
        let c = CompressedEdges::compress(&edges, 100);
        assert_eq!(c.len(), 5);
        assert_eq!(c.decode(), edges);
    }

    #[test]
    fn compression_beats_raw_on_sorted_runs() {
        // A long sorted run with small deltas compresses far below the
        // 24-byte raw footprint per edge.
        let edges: Vec<CEdge> = (0..1000)
            .map(|i| CEdge::new(i / 4, (i % 4) * 3, (i % 254 + 1) as Weight, i))
            .collect();
        let c = CompressedEdges::compress(&edges, 0);
        assert!(c.byte_size() < edges.len() * 6, "got {}", c.byte_size());
        assert_eq!(c.decode(), edges);
    }

    #[test]
    fn lookup_sorted_selects_requested_ids() {
        let edges = sample_edges();
        let c = CompressedEdges::compress(&edges, 100);
        let got = c.lookup_sorted(&[100, 102, 104]);
        assert_eq!(got, vec![edges[0], edges[2], edges[4]]);
        assert!(c.lookup_sorted(&[]).is_empty());
        assert_eq!(c.lookup_sorted(&[103]), vec![edges[3]]);
    }

    #[test]
    fn empty_list_roundtrip() {
        let c = CompressedEdges::compress(&[], 0);
        assert!(c.is_empty());
        assert!(c.decode().is_empty());
    }
}
