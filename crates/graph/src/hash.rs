//! Deterministic hashing: the workhorse behind communication-free graph
//! generation (both endpoints of an edge must derive identical weights and
//! cell contents without talking to each other) and the fast hash tables
//! used by the parallel-edge filter (Sec. VI-B).

use std::hash::{BuildHasherDefault, Hasher};

/// SplitMix64 finalizer — a strong 64-bit mixer.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Combine two values into one hash (order-sensitive).
#[inline]
pub fn hash2(a: u64, b: u64) -> u64 {
    mix64(mix64(a) ^ b.rotate_left(32))
}

/// Combine three values into one hash (order-sensitive).
#[inline]
pub fn hash3(a: u64, b: u64, c: u64) -> u64 {
    mix64(hash2(a, b) ^ c.wrapping_mul(0xA24B_AED4_963E_E407))
}

/// Symmetric pair hash: `sym_hash(u, v, s) == sym_hash(v, u, s)` — both
/// directions of an undirected edge agree.
#[inline]
pub fn sym_hash(u: u64, v: u64, seed: u64) -> u64 {
    hash3(u.min(v), u.max(v), seed)
}

/// A uniform `f64` in `[0, 1)` from a hash value.
#[inline]
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// An FxHash-style multiply-rotate hasher: low quality, very fast on
/// integer keys — the profile the parallel-edge hash filter needs
/// (the table must stay cache-resident, Sec. VI-B).
#[derive(Default)]
pub struct FxHasher64 {
    state: u64,
}

const ROTATE: u32 = 5;
const SEED64: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl Hasher for FxHasher64 {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.state = (self.state.rotate_left(ROTATE) ^ n).wrapping_mul(SEED64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `HashMap`/`HashSet` build-hasher for integer-keyed tables.
pub type FxBuildHasher = BuildHasherDefault<FxHasher64>;

/// A fast integer-keyed hash map.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A fast integer-keyed hash set.
pub type FxHashSet<K> = std::collections::HashSet<K, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_bijective_sample() {
        // Distinct inputs must give distinct outputs on a sample.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(mix64(i)));
        }
    }

    #[test]
    fn sym_hash_is_symmetric_and_seeded() {
        assert_eq!(sym_hash(3, 9, 42), sym_hash(9, 3, 42));
        assert_ne!(sym_hash(3, 9, 42), sym_hash(3, 9, 43));
        assert_ne!(sym_hash(3, 9, 42), sym_hash(3, 10, 42));
    }

    #[test]
    fn unit_f64_in_range_and_spread() {
        let mut lo = false;
        let mut hi = false;
        for i in 0..1000 {
            let x = unit_f64(mix64(i));
            assert!((0.0..1.0).contains(&x));
            lo |= x < 0.1;
            hi |= x > 0.9;
        }
        assert!(lo && hi, "hash output should cover the unit interval");
    }

    #[test]
    fn fx_map_works() {
        let mut m: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..100 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.get(&50), Some(&100));
        assert_eq!(m.len(), 100);
    }
}
