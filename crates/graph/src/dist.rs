//! The distributed graph data structure (Sec. II-B).
//!
//! The edge sequence `E` is lexicographically sorted and 1D-partitioned:
//! PE `i` holds a contiguous subsequence `E_i`. An array of size `p`
//! holding `minlex(E_i)` for every PE is replicated on each PE, allowing
//! localisation of the *home PE* of a vertex or edge by binary search.
//!
//! A vertex whose edges span a PE boundary is *shared*; from the point of
//! view of a PE, a non-local vertex appearing in `E_i` is a *ghost*.

use crate::edge::{CEdge, VertexId, WEdge};
use kamsta_comm::Comm;

/// Sentinel locator entry for trailing empty PEs.
const LOCATOR_MAX: WEdge = WEdge::new(VertexId::MAX, VertexId::MAX, u32::MAX);

/// A 1D-partitioned, lexicographically sorted distributed edge list with
/// the replicated `minlex` locator.
#[derive(Clone, Debug)]
pub struct DistGraph {
    /// This PE's contiguous slice of the global edge sequence, locally
    /// sorted by `(u, v, w)`.
    pub edges: Vec<CEdge>,
    /// Replicated: effective first edge of each PE. Empty PEs inherit the
    /// next non-empty PE's first edge (trailing empties get a sentinel),
    /// which keeps home lookup a single `partition_point`.
    locator: Vec<WEdge>,
    /// Global number of distinct vertices appearing in edges.
    pub n_global: u64,
    /// Global number of (directed) edges.
    pub m_global: u64,
    /// True if this PE's first vertex also appears on an earlier PE.
    pub first_shared: bool,
    /// True if this PE's last vertex also appears on a later PE.
    pub last_shared: bool,
    /// Replicated, sorted list of all globally shared vertices (at most
    /// `p − 1`). Lets any PE decide shared-ness of any vertex locally —
    /// the property pointer doubling exploits (Sec. IV-B).
    shared_vertices: Vec<VertexId>,
    rank: usize,
    p: usize,
}

impl DistGraph {
    /// Establish the distributed graph structure from this PE's slice of a
    /// globally sorted edge sequence — the allgather-on-first-edge step of
    /// Sec. IV-C. Collective.
    ///
    /// Debug builds verify the local sortedness invariant.
    pub fn establish(comm: &Comm, edges: Vec<CEdge>) -> Self {
        debug_assert!(
            edges.windows(2).all(|w| w[0] <= w[1]),
            "edge slice must be locally sorted"
        );
        let p = comm.size();
        let first: Option<WEdge> = edges.first().map(|e| e.wedge());
        let firsts = comm.allgather(first);

        // Fill-back rule for empty PEs.
        let mut locator = vec![LOCATOR_MAX; p];
        let mut next = LOCATOR_MAX;
        for i in (0..p).rev() {
            if let Some(e) = firsts[i] {
                next = e;
            }
            locator[i] = next;
        }

        // Shared-vertex flags: compare boundary sources between
        // consecutive non-empty PEs.
        let bounds: Option<(VertexId, VertexId)> = match (edges.first(), edges.last()) {
            (Some(f), Some(l)) => Some((f.u, l.u)),
            _ => None,
        };
        let all_bounds = comm.allgather(bounds);
        let mut first_shared = false;
        let mut last_shared = false;
        if let Some((my_first, my_last)) = bounds {
            if let Some(b) = all_bounds[..comm.rank()].iter().rev().flatten().next() {
                first_shared = b.1 == my_first;
            }
            if let Some(b) = all_bounds[comm.rank() + 1..].iter().flatten().next() {
                last_shared = b.0 == my_last;
            }
        }

        // Replicated shared-vertex list: boundary vertices spanning
        // consecutive non-empty PEs (everyone computes the same list).
        let mut shared_vertices = Vec::new();
        let mut prev_last: Option<VertexId> = None;
        for b in all_bounds.iter().flatten() {
            if prev_last == Some(b.0) {
                shared_vertices.push(b.0);
            }
            prev_last = Some(b.1);
        }
        shared_vertices.dedup();

        // Count distinct vertices: local distinct sources, minus one if the
        // first is already counted by an earlier PE.
        let mut local_distinct = 0u64;
        let mut prev: Option<VertexId> = None;
        for e in &edges {
            if prev != Some(e.u) {
                local_distinct += 1;
                prev = Some(e.u);
            }
        }
        comm.charge_local(edges.len() as u64);
        let dedup = u64::from(first_shared);
        let n_global = comm.allreduce_sum(local_distinct - dedup);
        let m_global = comm.allreduce_sum(edges.len() as u64);

        Self {
            edges,
            locator,
            n_global,
            m_global,
            first_shared,
            last_shared,
            shared_vertices,
            rank: comm.rank(),
            p,
        }
    }

    /// True if `v` is shared between PEs anywhere in the machine —
    /// decidable locally from replicated state (at most `p − 1` entries).
    pub fn is_shared_global(&self, v: VertexId) -> bool {
        self.shared_vertices.binary_search(&v).is_ok()
    }

    /// The replicated list of globally shared vertices, ascending.
    pub fn shared_vertices(&self) -> &[VertexId] {
        &self.shared_vertices
    }

    /// Number of PEs the graph is partitioned over.
    #[inline]
    pub fn pes(&self) -> usize {
        self.p
    }

    /// This PE's rank (mirrors the building communicator).
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Home PE of a directed edge: the unique PE whose slice contains it
    /// (assuming it exists in the graph). `O(log p)` binary search on the
    /// replicated locator.
    pub fn home_of_edge(&self, e: &WEdge) -> usize {
        let idx = self.locator.partition_point(|first| first <= e);
        idx.saturating_sub(1)
    }

    /// Home PE of a vertex: the *last* PE holding edges with source `v`
    /// (for non-shared vertices this is the unique owner).
    pub fn home_of_vertex(&self, v: VertexId) -> usize {
        let idx = self.locator.partition_point(|first| first.u <= v);
        idx.saturating_sub(1)
    }

    /// The PEs that can hold the globally *first* copy of the directed
    /// content `e = (u, v, w)`. Every PE before the holder starts
    /// strictly below `e`, so with `cnt = #{i : locator[i] < e}` the
    /// holder is PE `cnt − 1` — except when locator entries equal to
    /// `e` follow: an entry can mean "my slice starts with `e`" *or*
    /// "I am empty and inherited the next holder's first edge"
    /// (sparse inputs — a 2-edge certificate re-solve at p = 16 —
    /// make such runs long), and the two are indistinguishable from
    /// the replicated locator alone. All entries of the equal run are
    /// therefore candidates; queried PEs not holding `e` answer
    /// `None` and the caller min-merges, so a superset is always
    /// safe. Empty result means no PE can hold a copy (`e` precedes
    /// the global minimum). The common dense case stays one
    /// candidate. Used to canonicalise pair ids.
    pub fn first_copy_homes(&self, e: &WEdge) -> Vec<usize> {
        let cnt = self.locator.partition_point(|first| first < e);
        let mut homes = Vec::new();
        if cnt > 0 {
            homes.push(cnt - 1);
        }
        let mut j = cnt;
        while j < self.p && self.locator[j] == *e {
            homes.push(j);
            j += 1;
        }
        homes
    }

    /// Minimal id among this PE's copies of the exact directed content
    /// `e` (`None` when the slice holds no copy). Local: one binary
    /// search on the lex-sorted slice, whose `(u, v, w, id)` order puts
    /// the minimal-id copy first in its content group.
    pub fn first_copy_id(&self, e: &WEdge) -> Option<u64> {
        let idx = self.edges.partition_point(|x| x.wedge() < *e);
        self.edges
            .get(idx)
            .filter(|x| x.wedge() == *e)
            .map(|x| x.id)
    }

    /// True if `v` appears as a source of one of this PE's edges.
    pub fn is_local_vertex(&self, v: VertexId) -> bool {
        self.edges
            .binary_search_by(|e| {
                e.u.cmp(&v).then(std::cmp::Ordering::Greater) // find any edge with src == v
            })
            .err()
            .map(|pos| pos < self.edges.len() && self.edges[pos].u == v)
            .unwrap_or(false)
    }

    /// True if `v` is one of this PE's boundary vertices shared with a
    /// neighbouring PE. Purely local (Sec. IV-B: "This property can be
    /// determined locally from the distributed graph data structure").
    pub fn is_shared(&self, v: VertexId) -> bool {
        (self.first_shared && self.edges.first().is_some_and(|e| e.u == v))
            || (self.last_shared && self.edges.last().is_some_and(|e| e.u == v))
    }

    /// Iterate over local vertices as `(source, edge index range)`
    /// segments — the segmented view behind `MIN EDGES` (Sec. IV).
    pub fn vertex_segments(&self) -> VertexSegments<'_> {
        VertexSegments {
            edges: &self.edges,
            pos: 0,
        }
    }

    /// The distinct local vertices (sources) on this PE, ascending.
    pub fn local_vertices(&self) -> Vec<VertexId> {
        self.vertex_segments().map(|(v, _)| v).collect()
    }

    /// Number of local vertices *not* shared with a previous PE — the
    /// count whose global sum drives the base-case switch (Sec. IV-D
    /// counts each shared vertex once).
    pub fn owned_vertex_count(&self) -> u64 {
        let mut cnt = 0u64;
        let mut prev = None;
        for e in &self.edges {
            if prev != Some(e.u) {
                cnt += 1;
                prev = Some(e.u);
            }
        }
        cnt - u64::from(self.first_shared)
    }
}

/// Iterator over `(source vertex, local edge range)` segments of a sorted
/// edge slice.
pub struct VertexSegments<'a> {
    edges: &'a [CEdge],
    pos: usize,
}

impl Iterator for VertexSegments<'_> {
    type Item = (VertexId, std::ops::Range<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.edges.len() {
            return None;
        }
        let start = self.pos;
        let v = self.edges[start].u;
        let mut end = start + 1;
        while end < self.edges.len() && self.edges[end].u == v {
            end += 1;
        }
        self.pos = end;
        Some((v, start..end))
    }
}

/// Assign global-position ids to a distributed (sorted) edge sequence:
/// the id of an edge is its global rank in the sequence. Collective.
pub fn assign_ids(comm: &Comm, edges: Vec<WEdge>) -> Vec<CEdge> {
    let offset = comm.exscan_sum(edges.len() as u64);
    comm.charge_local(edges.len() as u64);
    edges
        .into_iter()
        .enumerate()
        .map(|(k, e)| CEdge::from_wedge(e, offset + k as u64))
        .collect()
}

/// Replicated table of each PE's first global edge id, for routing MST
/// edge ids back to their home PEs (`REDISTRIBUTE MST`). Collective.
pub fn id_offsets(comm: &Comm, local_len: usize) -> Vec<u64> {
    let counts = comm.allgather(local_len as u64);
    let mut offsets = Vec::with_capacity(counts.len());
    let mut acc = 0u64;
    for c in counts {
        offsets.push(acc);
        acc += c;
    }
    offsets
}

/// Home PE of a global edge id, given the replicated [`id_offsets`] table.
pub fn home_of_id(offsets: &[u64], id: u64) -> usize {
    offsets.partition_point(|&o| o <= id).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig};

    /// A tiny path graph 0-1-2-3-4 split over PEs, with both edge
    /// directions, sorted, partitioned so vertex 2 is shared.
    fn path_slice(rank: usize) -> Vec<CEdge> {
        // Global sorted sequence (u,v,w):
        // (0,1,1) (1,0,1) (1,2,2) | (2,1,2) (2,3,3) | (3,2,3) (3,4,4) (4,3,4)
        let all = [
            (0, 1, 1),
            (1, 0, 1),
            (1, 2, 2),
            (2, 1, 2),
            (2, 3, 3),
            (3, 2, 3),
            (3, 4, 4),
            (4, 3, 4),
        ];
        // Split so vertex 3's edges span PEs 1 and 2 (3 is shared).
        let ranges = [(0, 3), (3, 6), (6, 8)];
        let (lo, hi) = ranges[rank];
        all[lo..hi]
            .iter()
            .enumerate()
            .map(|(k, &(u, v, w))| CEdge::new(u, v, w, (lo + k) as u64))
            .collect()
    }

    #[test]
    fn establish_counts_and_flags() {
        let out = Machine::run(MachineConfig::new(3), |comm| {
            let g = DistGraph::establish(comm, path_slice(comm.rank()));
            (
                g.n_global,
                g.m_global,
                g.first_shared,
                g.last_shared,
                g.owned_vertex_count(),
            )
        });
        for (rank, (n, m, first_shared, last_shared, owned)) in out.results.into_iter().enumerate()
        {
            assert_eq!(n, 5, "5 distinct vertices");
            assert_eq!(m, 8, "8 directed edges");
            match rank {
                0 => {
                    assert!(!first_shared && !last_shared);
                    assert_eq!(owned, 2); // 0 and 1 (1 is NOT shared: PE1 starts at 2)
                }
                1 => {
                    assert!(!first_shared && last_shared); // 3 continues on PE2
                    assert_eq!(owned, 2); // 2 and 3
                }
                2 => {
                    assert!(first_shared && !last_shared); // 3 started on PE1
                    assert_eq!(owned, 1); // 4 (3 counted by PE1)
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn home_lookups() {
        let out = Machine::run(MachineConfig::new(3), |comm| {
            let g = DistGraph::establish(comm, path_slice(comm.rank()));
            let edge_homes: Vec<usize> = [
                WEdge::new(0, 1, 1),
                WEdge::new(2, 1, 2),
                WEdge::new(3, 2, 3),
                WEdge::new(4, 3, 4),
            ]
            .iter()
            .map(|e| g.home_of_edge(e))
            .collect();
            let vertex_homes: Vec<usize> = (0..5).map(|v| g.home_of_vertex(v)).collect();
            (edge_homes, vertex_homes)
        });
        for (edge_homes, vertex_homes) in out.results {
            // (3,2,3) sits on PE 1 (vertex 3 spans PEs 1 and 2).
            assert_eq!(edge_homes, vec![0, 1, 1, 2]);
            // vertex 3 is shared between PE1 and PE2; home = last holder.
            assert_eq!(vertex_homes, vec![0, 0, 1, 2, 2]);
        }
    }

    #[test]
    fn global_shared_list_is_replicated() {
        let out = Machine::run(MachineConfig::new(3), |comm| {
            let g = DistGraph::establish(comm, path_slice(comm.rank()));
            (
                g.shared_vertices().to_vec(),
                (0..5).map(|v| g.is_shared_global(v)).collect::<Vec<bool>>(),
            )
        });
        for (list, flags) in out.results {
            assert_eq!(list, vec![3], "vertex 3 spans PEs 1 and 2");
            assert_eq!(flags, vec![false, false, false, true, false]);
        }
    }

    #[test]
    fn shared_detection_is_local() {
        let out = Machine::run(MachineConfig::new(3), |comm| {
            let g = DistGraph::establish(comm, path_slice(comm.rank()));
            (0..5).map(|v| g.is_shared(v)).collect::<Vec<bool>>()
        });
        // Vertex 3 spans PEs 1 and 2; from each holder's view it is shared.
        assert_eq!(out.results[0], vec![false; 5]);
        assert_eq!(out.results[1], vec![false, false, false, true, false]);
        assert_eq!(out.results[2], vec![false, false, false, true, false]);
    }

    #[test]
    fn segments_and_local_vertices() {
        let out = Machine::run(MachineConfig::new(3), |comm| {
            let g = DistGraph::establish(comm, path_slice(comm.rank()));
            let segs: Vec<(u64, usize)> = g.vertex_segments().map(|(v, r)| (v, r.len())).collect();
            (segs, g.local_vertices())
        });
        assert_eq!(out.results[0].0, vec![(0, 1), (1, 2)]);
        assert_eq!(out.results[1].0, vec![(2, 2), (3, 1)]);
        assert_eq!(out.results[2].0, vec![(3, 1), (4, 1)]);
        assert_eq!(out.results[1].1, vec![2, 3]);
    }

    #[test]
    fn empty_pe_locator_fill() {
        let out = Machine::run(MachineConfig::new(4), |comm| {
            // PEs 1 and 3 empty.
            let edges = match comm.rank() {
                0 => vec![CEdge::new(0, 1, 1, 0), CEdge::new(1, 0, 1, 1)],
                2 => vec![CEdge::new(5, 6, 2, 2), CEdge::new(6, 5, 2, 3)],
                _ => vec![],
            };
            let g = DistGraph::establish(comm, edges);
            (
                g.n_global,
                g.home_of_edge(&WEdge::new(5, 6, 2)),
                g.home_of_vertex(6),
                g.home_of_vertex(0),
            )
        });
        for (n, home_e, home_v6, home_v0) in out.results {
            assert_eq!(n, 4);
            assert_eq!(home_e, 2);
            assert_eq!(home_v6, 2);
            assert_eq!(home_v0, 0);
        }
    }

    #[test]
    fn id_assignment_and_routing() {
        let out = Machine::run(MachineConfig::new(3), |comm| {
            let n = comm.rank() + 1; // 1, 2, 3 edges
            let edges: Vec<WEdge> = (0..n)
                .map(|k| WEdge::new(comm.rank() as u64, k as u64, 1))
                .collect();
            let with_ids = assign_ids(comm, edges);
            let offsets = id_offsets(comm, n);
            let ids: Vec<u64> = with_ids.iter().map(|e| e.id).collect();
            (ids, offsets)
        });
        assert_eq!(out.results[0].0, vec![0]);
        assert_eq!(out.results[1].0, vec![1, 2]);
        assert_eq!(out.results[2].0, vec![3, 4, 5]);
        let offsets = &out.results[0].1;
        assert_eq!(offsets, &vec![0, 1, 3]);
        assert_eq!(home_of_id(offsets, 0), 0);
        assert_eq!(home_of_id(offsets, 1), 1);
        assert_eq!(home_of_id(offsets, 2), 1);
        assert_eq!(home_of_id(offsets, 5), 2);
    }
}
