//! Edge and vertex types (Sec. II-B of the paper).
//!
//! A graph is a lexicographically sorted sequence of *directed* edges
//! `(u, v, w)`; for every edge the back edge `(v, u, w)` is also present.
//! Lexicographic means: by source, then destination, then weight.
//!
//! Distinct edge weights are assumed w.l.o.g. by tie-breaking on vertex
//! labels (Sec. II-C); [`WEdge::weight_key`] realises that total order, and it is
//! direction-symmetric so both copies of an undirected edge agree.

/// Vertex label. The paper uses labels in `1..|V|`; we allow any `u64`.
pub type VertexId = u64;

/// Edge weight. The evaluation draws weights uniformly from `[1, 255)`
/// (Sec. VII), but any `u32` works.
pub type Weight = u32;

/// A directed weighted edge. Derived `Ord` is exactly the paper's
/// lexicographic order (source, destination, weight).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WEdge {
    pub u: VertexId,
    pub v: VertexId,
    pub w: Weight,
}

impl WEdge {
    pub const fn new(u: VertexId, v: VertexId, w: Weight) -> Self {
        Self { u, v, w }
    }

    /// The reversed (back) edge.
    #[inline]
    pub fn reversed(&self) -> Self {
        Self {
            u: self.v,
            v: self.u,
            w: self.w,
        }
    }

    /// Direction-symmetric unique-weight key: `(w, min(u,v), max(u,v))`.
    /// Comparing edges by this key yields the distinct-weight total order
    /// that makes the MST unique (Sec. II-C); both directions of an
    /// undirected edge map to the same key.
    #[inline]
    pub fn weight_key(&self) -> (Weight, VertexId, VertexId) {
        (self.w, self.u.min(self.v), self.u.max(self.v))
    }

    /// True if this is a self-loop.
    #[inline]
    pub fn is_self_loop(&self) -> bool {
        self.u == self.v
    }
}

/// A directed weighted edge carrying the global id of the *original* input
/// edge it descends from. Contraction relabels `u`/`v` while `id` keeps
/// pointing at the input edge, so MST edges can be reported in terms of
/// the original endpoints (Sec. VI-C: "we add an id to every edge prior to
/// the actual MST computation").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CEdge {
    pub u: VertexId,
    pub v: VertexId,
    pub w: Weight,
    pub id: u64,
}

impl CEdge {
    pub const fn new(u: VertexId, v: VertexId, w: Weight, id: u64) -> Self {
        Self { u, v, w, id }
    }

    pub fn from_wedge(e: WEdge, id: u64) -> Self {
        Self::new(e.u, e.v, e.w, id)
    }

    #[inline]
    pub fn wedge(&self) -> WEdge {
        WEdge::new(self.u, self.v, self.w)
    }

    #[inline]
    pub fn reversed(&self) -> Self {
        Self {
            u: self.v,
            v: self.u,
            w: self.w,
            id: self.id,
        }
    }

    /// See [`WEdge::weight_key`].
    #[inline]
    pub fn weight_key(&self) -> (Weight, VertexId, VertexId) {
        self.wedge().weight_key()
    }

    #[inline]
    pub fn is_self_loop(&self) -> bool {
        self.u == self.v
    }
}

impl PartialOrd for CEdge {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CEdge {
    /// Lexicographic by `(u, v, w)`, with `id` as the final tie-breaker so
    /// sorting stays total and deterministic.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.u, self.v, self.w, self.id).cmp(&(other.u, other.v, other.w, other.id))
    }
}

/// Compare two edges in the unique-weight total order (lighter first).
#[inline]
pub fn lighter<E: HasWeightKey>(a: &E, b: &E) -> bool {
    a.weight_key_of() < b.weight_key_of()
}

/// Trait unifying weight-key access over [`WEdge`] and [`CEdge`].
pub trait HasWeightKey {
    fn weight_key_of(&self) -> (Weight, VertexId, VertexId);
}

impl HasWeightKey for WEdge {
    fn weight_key_of(&self) -> (Weight, VertexId, VertexId) {
        self.weight_key()
    }
}

impl HasWeightKey for CEdge {
    fn weight_key_of(&self) -> (Weight, VertexId, VertexId) {
        self.weight_key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order_is_src_dst_weight() {
        let mut edges = vec![
            WEdge::new(2, 1, 5),
            WEdge::new(1, 3, 1),
            WEdge::new(1, 2, 9),
            WEdge::new(1, 2, 3),
        ];
        edges.sort();
        assert_eq!(
            edges,
            vec![
                WEdge::new(1, 2, 3),
                WEdge::new(1, 2, 9),
                WEdge::new(1, 3, 1),
                WEdge::new(2, 1, 5),
            ]
        );
    }

    #[test]
    fn weight_key_is_direction_symmetric() {
        let e = WEdge::new(7, 3, 10);
        assert_eq!(e.weight_key(), e.reversed().weight_key());
        let c = CEdge::new(7, 3, 10, 99);
        assert_eq!(c.weight_key(), c.reversed().weight_key());
    }

    #[test]
    fn weight_key_breaks_ties_consistently() {
        // Same weight, different endpoints: order decided by labels.
        let a = WEdge::new(1, 2, 5);
        let b = WEdge::new(1, 3, 5);
        assert!(lighter(&a, &b));
        assert!(lighter(&a.reversed(), &b));
        assert!(!lighter(&b, &a));
    }

    #[test]
    fn self_loop_detection() {
        assert!(WEdge::new(4, 4, 1).is_self_loop());
        assert!(!WEdge::new(4, 5, 1).is_self_loop());
    }

    #[test]
    fn cedge_orders_by_lex_then_id() {
        let a = CEdge::new(1, 2, 3, 0);
        let b = CEdge::new(1, 2, 3, 1);
        assert!(a < b);
        assert!(CEdge::new(0, 9, 9, 9) < a);
    }
}
