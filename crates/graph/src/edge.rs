//! Edge and vertex types (Sec. II-B of the paper).
//!
//! A graph is a lexicographically sorted sequence of *directed* edges
//! `(u, v, w)`; for every edge the back edge `(v, u, w)` is also present.
//! Lexicographic means: by source, then destination, then weight.
//!
//! Distinct edge weights are assumed w.l.o.g. by tie-breaking on vertex
//! labels (Sec. II-C); [`WEdge::weight_key`] realises that total order, and it is
//! direction-symmetric so both copies of an undirected edge agree.

/// Vertex label. The paper uses labels in `1..|V|`; we allow any `u64`.
pub type VertexId = u64;

/// Edge weight. The evaluation draws weights uniformly from `[1, 255)`
/// (Sec. VII), but any `u32` works.
pub type Weight = u32;

/// A directed weighted edge. Derived `Ord` is exactly the paper's
/// lexicographic order (source, destination, weight).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WEdge {
    pub u: VertexId,
    pub v: VertexId,
    pub w: Weight,
}

impl WEdge {
    pub const fn new(u: VertexId, v: VertexId, w: Weight) -> Self {
        Self { u, v, w }
    }

    /// The reversed (back) edge.
    #[inline]
    pub fn reversed(&self) -> Self {
        Self {
            u: self.v,
            v: self.u,
            w: self.w,
        }
    }

    /// Direction-symmetric unique-weight key: `(w, min(u,v), max(u,v))`.
    /// Comparing edges by this key yields the distinct-weight total order
    /// that makes the MST unique (Sec. II-C); both directions of an
    /// undirected edge map to the same key.
    #[inline]
    pub fn weight_key(&self) -> (Weight, VertexId, VertexId) {
        (self.w, self.u.min(self.v), self.u.max(self.v))
    }

    /// True if this is a self-loop.
    #[inline]
    pub fn is_self_loop(&self) -> bool {
        self.u == self.v
    }

    /// The lexicographic order `(u, v, w)` — exactly this type's `Ord` —
    /// packed into a radix-sortable wide key (endpoints in the high
    /// word, weight in the low).
    #[inline]
    pub fn lex_key(&self) -> (u128, u64) {
        (((self.u as u128) << 64) | self.v as u128, self.w as u64)
    }
}

/// A directed weighted edge carrying the global id of the *original* input
/// edge it descends from. Contraction relabels `u`/`v` while `id` keeps
/// pointing at the input edge, so MST edges can be reported in terms of
/// the original endpoints (Sec. VI-C: "we add an id to every edge prior to
/// the actual MST computation").
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct CEdge {
    pub u: VertexId,
    pub v: VertexId,
    pub w: Weight,
    pub id: u64,
}

impl CEdge {
    pub const fn new(u: VertexId, v: VertexId, w: Weight, id: u64) -> Self {
        Self { u, v, w, id }
    }

    pub fn from_wedge(e: WEdge, id: u64) -> Self {
        Self::new(e.u, e.v, e.w, id)
    }

    #[inline]
    pub fn wedge(&self) -> WEdge {
        WEdge::new(self.u, self.v, self.w)
    }

    #[inline]
    pub fn reversed(&self) -> Self {
        Self {
            u: self.v,
            v: self.u,
            w: self.w,
            id: self.id,
        }
    }

    /// See [`WEdge::weight_key`].
    #[inline]
    pub fn weight_key(&self) -> (Weight, VertexId, VertexId) {
        self.wedge().weight_key()
    }

    /// The full lexicographic order `(u, v, w, id)` — exactly this type's
    /// `Ord` — packed into a radix-sortable wide key. Always packable:
    /// `u`/`v` fill the high word, `w`/`id` the low word.
    #[inline]
    pub fn lex_key(&self) -> (u128, u128) {
        (
            ((self.u as u128) << 64) | self.v as u128,
            ((self.w as u128) << 64) | self.id as u128,
        )
    }

    /// The unique-weight total order `(w, min(u,v), max(u,v))` packed
    /// into a [`PackedEdge`] key; `None` when an endpoint exceeds the
    /// 48-bit packable range (callers fall back to comparison sorting).
    #[inline]
    pub fn packed_weight_key(&self) -> Option<PackedEdge> {
        PackedEdge::pack(&self.wedge())
    }

    #[inline]
    pub fn is_self_loop(&self) -> bool {
        self.u == self.v
    }
}

/// The unique-weight total order `(w, min(u,v), max(u,v))` of Sec. II-C
/// packed into one `u128`: weight in bits 96..128, the smaller endpoint
/// in bits 48..96, the larger in bits 0..48. Integer comparison equals
/// the tuple order, and a single LSD radix sort over the 16 bytes (most
/// of them constant for realistic inputs) replaces the comparison sort on
/// the dedup-prefilter and base-case phases.
///
/// Packable iff both endpoints fit in 48 bits (`2^48` vertices —
/// beyond any feasible instance; the graders fall back to comparison
/// sorting otherwise).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PackedEdge(pub u128);

impl PackedEdge {
    /// Largest endpoint label a packed key can hold.
    pub const MAX_PACKABLE_VERTEX: VertexId = (1 << 48) - 1;

    const MASK48: u128 = (1 << 48) - 1;

    /// Pack the direction-symmetric unique-weight key; `None` if an
    /// endpoint exceeds [`Self::MAX_PACKABLE_VERTEX`].
    #[inline]
    pub fn pack(e: &WEdge) -> Option<Self> {
        let lo = e.u.min(e.v);
        let hi = e.u.max(e.v);
        if hi > Self::MAX_PACKABLE_VERTEX {
            return None;
        }
        Some(Self(
            ((e.w as u128) << 96) | ((lo as u128) << 48) | hi as u128,
        ))
    }

    /// The edge weight.
    #[inline]
    pub fn weight(&self) -> Weight {
        (self.0 >> 96) as Weight
    }

    /// The endpoints as `(min, max)`.
    #[inline]
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        (
            ((self.0 >> 48) & Self::MASK48) as VertexId,
            (self.0 & Self::MASK48) as VertexId,
        )
    }

    /// The `(w, min, max)` tuple this key encodes.
    #[inline]
    pub fn weight_key(&self) -> (Weight, VertexId, VertexId) {
        let (lo, hi) = self.endpoints();
        (self.weight(), lo, hi)
    }
}

impl kamsta_sort::RadixKey for PackedEdge {
    const BYTES: usize = 16;
    #[inline(always)]
    fn radix_byte(&self, i: usize) -> u8 {
        (self.0 >> (8 * i)) as u8
    }
    #[inline(always)]
    fn bit_or(a: Self, b: Self) -> Self {
        Self(a.0 | b.0)
    }
    #[inline(always)]
    fn bit_and(a: Self, b: Self) -> Self {
        Self(a.0 & b.0)
    }
}

/// Wire formats (transport boundary): edges are Pod-like, so they cross
/// the byte transport as fixed-width little-endian field walks — `WEdge`
/// as `u, v, w` (20 bytes), `CEdge` as `u, v, w, id` (28 bytes),
/// `PackedEdge` as its `u128` key (16 bytes).
impl kamsta_comm::Wire for WEdge {
    fn wire_write(&self, out: &mut Vec<u8>) {
        self.u.wire_write(out);
        self.v.wire_write(out);
        self.w.wire_write(out);
    }
    fn wire_read(r: &mut kamsta_comm::WireReader<'_>) -> Result<Self, kamsta_comm::WireError> {
        Ok(Self {
            u: VertexId::wire_read(r)?,
            v: VertexId::wire_read(r)?,
            w: Weight::wire_read(r)?,
        })
    }
    #[inline]
    fn wire_min_size() -> usize {
        20
    }
}

impl kamsta_comm::Wire for CEdge {
    fn wire_write(&self, out: &mut Vec<u8>) {
        self.u.wire_write(out);
        self.v.wire_write(out);
        self.w.wire_write(out);
        self.id.wire_write(out);
    }
    fn wire_read(r: &mut kamsta_comm::WireReader<'_>) -> Result<Self, kamsta_comm::WireError> {
        Ok(Self {
            u: VertexId::wire_read(r)?,
            v: VertexId::wire_read(r)?,
            w: Weight::wire_read(r)?,
            id: u64::wire_read(r)?,
        })
    }
    #[inline]
    fn wire_min_size() -> usize {
        28
    }
}

impl kamsta_comm::Wire for PackedEdge {
    fn wire_write(&self, out: &mut Vec<u8>) {
        self.0.wire_write(out);
    }
    fn wire_read(r: &mut kamsta_comm::WireReader<'_>) -> Result<Self, kamsta_comm::WireError> {
        Ok(Self(u128::wire_read(r)?))
    }
    #[inline]
    fn wire_min_size() -> usize {
        16
    }
}

impl PartialOrd for CEdge {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for CEdge {
    /// Lexicographic by `(u, v, w)`, with `id` as the final tie-breaker so
    /// sorting stays total and deterministic.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.u, self.v, self.w, self.id).cmp(&(other.u, other.v, other.w, other.id))
    }
}

/// Compare two edges in the unique-weight total order (lighter first).
#[inline]
pub fn lighter<E: HasWeightKey>(a: &E, b: &E) -> bool {
    a.weight_key_of() < b.weight_key_of()
}

/// Trait unifying weight-key access over [`WEdge`] and [`CEdge`].
pub trait HasWeightKey {
    fn weight_key_of(&self) -> (Weight, VertexId, VertexId);
}

impl HasWeightKey for WEdge {
    fn weight_key_of(&self) -> (Weight, VertexId, VertexId) {
        self.weight_key()
    }
}

impl HasWeightKey for CEdge {
    fn weight_key_of(&self) -> (Weight, VertexId, VertexId) {
        self.weight_key()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexicographic_order_is_src_dst_weight() {
        let mut edges = vec![
            WEdge::new(2, 1, 5),
            WEdge::new(1, 3, 1),
            WEdge::new(1, 2, 9),
            WEdge::new(1, 2, 3),
        ];
        edges.sort();
        assert_eq!(
            edges,
            vec![
                WEdge::new(1, 2, 3),
                WEdge::new(1, 2, 9),
                WEdge::new(1, 3, 1),
                WEdge::new(2, 1, 5),
            ]
        );
    }

    #[test]
    fn weight_key_is_direction_symmetric() {
        let e = WEdge::new(7, 3, 10);
        assert_eq!(e.weight_key(), e.reversed().weight_key());
        let c = CEdge::new(7, 3, 10, 99);
        assert_eq!(c.weight_key(), c.reversed().weight_key());
    }

    #[test]
    fn weight_key_breaks_ties_consistently() {
        // Same weight, different endpoints: order decided by labels.
        let a = WEdge::new(1, 2, 5);
        let b = WEdge::new(1, 3, 5);
        assert!(lighter(&a, &b));
        assert!(lighter(&a.reversed(), &b));
        assert!(!lighter(&b, &a));
    }

    #[test]
    fn self_loop_detection() {
        assert!(WEdge::new(4, 4, 1).is_self_loop());
        assert!(!WEdge::new(4, 5, 1).is_self_loop());
    }

    #[test]
    fn cedge_orders_by_lex_then_id() {
        let a = CEdge::new(1, 2, 3, 0);
        let b = CEdge::new(1, 2, 3, 1);
        assert!(a < b);
        assert!(CEdge::new(0, 9, 9, 9) < a);
    }

    #[test]
    fn packed_edge_roundtrips_and_orders_like_weight_key() {
        let edges = [
            WEdge::new(7, 3, 10),
            WEdge::new(3, 7, 10),
            WEdge::new(0, 1, 10),
            WEdge::new(1, 0, 9),
            WEdge::new(1u64 << 47, 5, 9),
        ];
        for e in &edges {
            let p = PackedEdge::pack(e).unwrap();
            assert_eq!(p.weight_key(), e.weight_key(), "{e:?}");
        }
        for a in &edges {
            for b in &edges {
                let (pa, pb) = (PackedEdge::pack(a).unwrap(), PackedEdge::pack(b).unwrap());
                assert_eq!(
                    pa.cmp(&pb),
                    a.weight_key().cmp(&b.weight_key()),
                    "{a:?} vs {b:?}"
                );
            }
        }
        // Direction symmetry survives packing.
        assert_eq!(
            PackedEdge::pack(&edges[0]),
            PackedEdge::pack(&edges[0].reversed())
        );
    }

    #[test]
    fn packed_edge_rejects_oversized_vertices() {
        assert!(PackedEdge::pack(&WEdge::new(1 << 48, 0, 1)).is_none());
        assert!(PackedEdge::pack(&WEdge::new(0, 1 << 48, 1)).is_none());
        assert!(PackedEdge::pack(&WEdge::new(PackedEdge::MAX_PACKABLE_VERTEX, 0, 1)).is_some());
    }

    #[test]
    fn lex_key_realises_cedge_ord() {
        let edges = [
            CEdge::new(1, 2, 3, 0),
            CEdge::new(1, 2, 3, 1),
            CEdge::new(0, 9, 9, 9),
            CEdge::new(u64::MAX, 0, 7, 2),
            CEdge::new(1, 3, 0, u64::MAX),
        ];
        for a in &edges {
            for b in &edges {
                assert_eq!(a.lex_key().cmp(&b.lex_key()), a.cmp(b), "{a:?} vs {b:?}");
            }
        }
    }
}
