//! KaGen-style communication-free graph generators (Sec. VII).
//!
//! Every generator is SPMD-collective: each PE produces exactly its slice
//! of a *globally lexicographically sorted* distributed edge list with
//! both edge directions present (each direction emitted by the PE owning
//! its source), matching the paper's input invariant: "KaGen ensures that
//! the generated edges are globally lexicographically sorted and thus do
//! not produce shared vertices for the input". The RMAT generator is the
//! exception: as in the paper, its output is sorted and redistributed
//! with the distributed sorter afterwards.
//!
//! Determinism: generation is pure hashing on `(seed, structure)`, so both
//! endpoints of an edge agree on its existence and weight without
//! communication, and repeated runs are bit-identical.

mod gnm;
mod grid;
mod rgg;
mod rhg;
mod rmat;

pub use gnm::gnm;
pub use grid::{grid2d, road_like, RoadParams};
pub use rgg::{rgg2d, rgg3d, rgg_actual_n};
pub use rhg::{rhg, rhg_actual_n, RhgParams};
pub use rmat::{rmat, RmatParams};

use crate::edge::{VertexId, WEdge, Weight};
use crate::hash::sym_hash;
use kamsta_comm::Comm;

/// Edge weight from the symmetric hash, uniform in `[1, 255)` as in the
/// paper's experimental setup (Sec. VII: "we assign a weight drawn
/// uniformly at random from [1, 255) to each edge").
#[inline]
pub fn weight_of(u: VertexId, v: VertexId, seed: u64) -> Weight {
    (sym_hash(u, v, seed) % 254 + 1) as Weight
}

/// Balanced block range of `n` items for PE `rank` of `p`.
#[inline]
pub fn block_range(n: u64, p: usize, rank: usize) -> std::ops::Range<u64> {
    let p = p as u64;
    let r = rank as u64;
    (r * n / p)..((r + 1) * n / p)
}

/// Exact inverse of [`block_range`]: the block index whose range contains
/// item `v` (integer-rounding safe).
#[inline]
pub fn block_of(n: u64, parts: u64, v: u64) -> u64 {
    debug_assert!(v < n);
    let mut b = ((v as u128 * parts as u128) / n as u128) as u64;
    // Fix up the off-by-one that integer flooring can introduce.
    while b + 1 < parts && (b + 1) * n / parts <= v {
        b += 1;
    }
    while b > 0 && b * n / parts > v {
        b -= 1;
    }
    b
}

/// The six graph families of the paper's weak-scaling evaluation plus the
/// real-world stand-in families (DESIGN.md S5).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphConfig {
    /// 2D grid with `rows × cols` vertices (paper: 2D-GRID).
    Grid2D { rows: u64, cols: u64 },
    /// 2D random geometric graph with ~`n` vertices and connection radius
    /// chosen for ~`m` directed edges (paper: 2D-RGG).
    Rgg2D { n: u64, m: u64 },
    /// 3D random geometric graph (paper: 3D-RGG).
    Rgg3D { n: u64, m: u64 },
    /// Erdős–Renyi graph with `n` vertices and ~`m` directed edges
    /// (paper: GNM).
    Gnm { n: u64, m: u64 },
    /// Random hyperbolic graph with ~`n` vertices, ~`m` directed edges and
    /// power-law exponent `gamma` (paper: RHG, γ = 3.0).
    Rhg { n: u64, m: u64, gamma: f64 },
    /// RMAT graph with `2^scale` vertices and ~`m` directed edges using
    /// Graph500 probabilities (paper: RMAT).
    Rmat { scale: u32, m: u64 },
    /// Road-network stand-in: perturbed grid at average degree ≈ 2.4
    /// (substitute for US-road, DESIGN.md S5).
    RoadLike { rows: u64, cols: u64 },
}

impl GraphConfig {
    /// Human-readable family name matching the paper's figures.
    pub fn family(&self) -> &'static str {
        match self {
            GraphConfig::Grid2D { .. } => "2D-GRID",
            GraphConfig::Rgg2D { .. } => "2D-RGG",
            GraphConfig::Rgg3D { .. } => "3D-RGG",
            GraphConfig::Gnm { .. } => "GNM",
            GraphConfig::Rhg { .. } => "RHG",
            GraphConfig::Rmat { .. } => "RMAT",
            GraphConfig::RoadLike { .. } => "ROAD",
        }
    }

    /// True for the families the paper classifies as high-locality
    /// (grids and random geometric graphs; RHGs are "somewhere in
    /// between").
    pub fn is_local_family(&self) -> bool {
        matches!(
            self,
            GraphConfig::Grid2D { .. }
                | GraphConfig::Rgg2D { .. }
                | GraphConfig::Rgg3D { .. }
                | GraphConfig::RoadLike { .. }
        )
    }

    /// Generate this PE's slice of the distributed edge list. Collective.
    pub fn generate(&self, comm: &Comm, seed: u64) -> Vec<WEdge> {
        match *self {
            GraphConfig::Grid2D { rows, cols } => grid2d(comm, rows, cols, seed),
            GraphConfig::Rgg2D { n, m } => rgg2d(comm, n, m, seed),
            GraphConfig::Rgg3D { n, m } => rgg3d(comm, n, m, seed),
            GraphConfig::Gnm { n, m } => gnm(comm, n, m, seed),
            GraphConfig::Rhg { n, m, gamma } => rhg(comm, RhgParams { n, m, gamma }, seed),
            GraphConfig::Rmat { scale, m } => rmat(comm, RmatParams::graph500(scale, m), seed),
            GraphConfig::RoadLike { rows, cols } => {
                road_like(comm, RoadParams::default_for(rows, cols), seed)
            }
        }
    }

    /// Weak-scaling instance for the paper's figures: `2^v_per_core`
    /// vertices and `2^m_per_core` directed edges per core, scaled to
    /// `cores` (Sec. VII: "All graphs are scaled such that the number of
    /// vertices and edges are proportional to the number of cores").
    pub fn weak_scaled(family: &str, v_per_core: u32, m_per_core: u32, cores: usize) -> Self {
        let n = (cores as u64) << v_per_core;
        let m = (cores as u64) << m_per_core;
        match family {
            "2D-GRID" => {
                // Square-ish grid with ~n vertices.
                let side = (n as f64).sqrt().round() as u64;
                GraphConfig::Grid2D {
                    rows: side.max(2),
                    cols: side.max(2),
                }
            }
            "2D-RGG" => GraphConfig::Rgg2D { n, m },
            "3D-RGG" => GraphConfig::Rgg3D { n, m },
            "GNM" => GraphConfig::Gnm { n, m },
            "RHG" => GraphConfig::Rhg { n, m, gamma: 3.0 },
            "RMAT" => GraphConfig::Rmat {
                scale: kamsta_comm::ceil_log2(n as usize),
                m,
            },
            "ROAD" => {
                let side = (n as f64).sqrt().round() as u64;
                GraphConfig::RoadLike {
                    rows: side.max(2),
                    cols: side.max(2),
                }
            }
            other => panic!("unknown graph family {other}"),
        }
    }
}

/// Sort a locally generated edge slice (most generators emit per-source
/// groups already in source order; this finishes the job cheaply).
pub(crate) fn sort_local(comm: &Comm, edges: &mut [WEdge]) {
    if edges.len() > 1 {
        comm.charge_local(edges.len() as u64);
        edges.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weight_range_and_symmetry() {
        for i in 0..500u64 {
            let w = weight_of(i, i * 3 + 1, 9);
            assert!((1..255).contains(&w));
            assert_eq!(w, weight_of(i * 3 + 1, i, 9));
        }
    }

    #[test]
    fn block_ranges_partition() {
        let n = 103u64;
        let p = 7;
        let mut covered = 0;
        for r in 0..p {
            let range = block_range(n, p, r);
            assert_eq!(range.start, covered);
            covered = range.end;
        }
        assert_eq!(covered, n);
    }

    #[test]
    fn block_of_inverts_block_range() {
        for (n, parts) in [(300u64, 128u64), (103, 7), (1000, 13), (128, 128), (5, 3)] {
            for v in 0..n {
                let b = block_of(n, parts, v);
                let range = block_range(n, parts as usize, b as usize);
                assert!(
                    range.contains(&v),
                    "n={n} parts={parts} v={v}: block {b} range {range:?}"
                );
            }
        }
    }

    #[test]
    fn weak_scaling_config_sizes() {
        let c = GraphConfig::weak_scaled("GNM", 12, 15, 8);
        assert_eq!(
            c,
            GraphConfig::Gnm {
                n: 8 << 12,
                m: 8 << 15
            }
        );
        assert!(!c.is_local_family());
        let g = GraphConfig::weak_scaled("2D-GRID", 12, 15, 4);
        assert!(g.is_local_family());
        assert_eq!(g.family(), "2D-GRID");
    }
}
