//! 2D grid graphs (paper: 2D-GRID) and the road-network stand-in.

use super::{block_range, sort_local, weight_of};
use crate::edge::WEdge;
use crate::hash::{sym_hash, unit_f64};
use kamsta_comm::Comm;

/// Generate this PE's slice of a `rows × cols` 2D grid graph (4-neighbour,
/// no wraparound). Vertex `(r, c)` has id `r·cols + c`; ids ascend row-
/// major, so balanced id-range partitioning yields the high-locality
/// distribution the paper exploits. Collective.
pub fn grid2d(comm: &Comm, rows: u64, cols: u64, seed: u64) -> Vec<WEdge> {
    assert!(rows >= 1 && cols >= 1);
    let n = rows * cols;
    let range = block_range(n, comm.size(), comm.rank());
    let mut edges = Vec::with_capacity((range.end - range.start) as usize * 4);
    for u in range {
        let (r, c) = (u / cols, u % cols);
        let mut push = |v: u64| edges.push(WEdge::new(u, v, weight_of(u, v, seed)));
        if c > 0 {
            push(u - 1);
        }
        if c + 1 < cols {
            push(u + 1);
        }
        if r > 0 {
            push(u - cols);
        }
        if r + 1 < rows {
            push(u + cols);
        }
    }
    comm.charge_local(edges.len() as u64);
    sort_local(comm, &mut edges);
    edges
}

/// Parameters for the road-network stand-in (DESIGN.md S5): a grid with a
/// fraction of edges deleted (dead ends, sparse connectivity — road
/// networks average degree ≈ 2.4) plus occasional diagonal shortcuts
/// (highway ramps).
#[derive(Clone, Copy, Debug)]
pub struct RoadParams {
    pub rows: u64,
    pub cols: u64,
    /// Probability of deleting a grid edge.
    pub drop_prob: f64,
    /// Probability of a diagonal shortcut at a grid cell.
    pub shortcut_prob: f64,
}

impl RoadParams {
    /// Defaults that land near the US-road average degree of ≈ 2.4.
    pub fn default_for(rows: u64, cols: u64) -> Self {
        Self {
            rows,
            cols,
            drop_prob: 0.38,
            shortcut_prob: 0.02,
        }
    }
}

/// Generate this PE's slice of the perturbed-grid road stand-in. The
/// result may be disconnected — the MST algorithms must produce a forest
/// (Sec. II-B). Collective.
pub fn road_like(comm: &Comm, params: RoadParams, seed: u64) -> Vec<WEdge> {
    let RoadParams {
        rows,
        cols,
        drop_prob,
        shortcut_prob,
    } = params;
    let n = rows * cols;
    let drop_salt = seed ^ 0xD0D0_0001;
    let short_salt = seed ^ 0x5C5C_0002;
    let keep = |u: u64, v: u64| unit_f64(sym_hash(u, v, drop_salt)) >= drop_prob;
    // A diagonal shortcut pairs (x, x + cols + 1); both endpoint PEs
    // evaluate the same symmetric hash, so the graph stays consistent
    // without communication.
    let has_shortcut = |x: u64| -> bool {
        let (r, c) = (x / cols, x % cols);
        r + 1 < rows
            && c + 1 < cols
            && unit_f64(sym_hash(x, x + cols + 1, short_salt)) < shortcut_prob
    };

    let range = block_range(n, comm.size(), comm.rank());
    let mut edges = Vec::with_capacity((range.end - range.start) as usize * 3);
    for u in range {
        let (r, c) = (u / cols, u % cols);
        let mut push = |v: u64| edges.push(WEdge::new(u, v, weight_of(u, v, seed)));
        if c > 0 && keep(u - 1, u) {
            push(u - 1);
        }
        if c + 1 < cols && keep(u, u + 1) {
            push(u + 1);
        }
        if r > 0 && keep(u - cols, u) {
            push(u - cols);
        }
        if r + 1 < rows && keep(u, u + cols) {
            push(u + cols);
        }
        // Forward diagonal from u, backward diagonal into u.
        if has_shortcut(u) {
            push(u + cols + 1);
        }
        if u > cols && has_shortcut(u - cols - 1) {
            push(u - cols - 1);
        }
    }
    comm.charge_local(edges.len() as u64);
    sort_local(comm, &mut edges);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig};
    use std::collections::HashSet;

    fn gather_all(p: usize, f: impl Fn(&Comm) -> Vec<WEdge> + Send + Sync) -> Vec<Vec<WEdge>> {
        Machine::run(MachineConfig::new(p), f).results
    }

    #[test]
    fn grid_edge_count_and_symmetry() {
        let rows = 6;
        let cols = 5;
        let chunks = gather_all(3, move |comm| grid2d(comm, rows, cols, 7));
        let all: Vec<WEdge> = chunks.into_iter().flatten().collect();
        // 2·(#undirected edges) = 2·(rows·(cols−1) + (rows−1)·cols)
        let expected = 2 * (rows * (cols - 1) + (rows - 1) * cols);
        assert_eq!(all.len() as u64, expected);
        let set: HashSet<WEdge> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "no duplicate directed edges");
        for e in &all {
            assert!(set.contains(&e.reversed()), "missing back edge of {e:?}");
        }
    }

    #[test]
    fn grid_is_globally_sorted_and_partition_invariant() {
        let run = |p: usize| -> Vec<WEdge> {
            gather_all(p, move |comm| grid2d(comm, 8, 8, 3))
                .into_iter()
                .flatten()
                .collect()
        };
        let g1 = run(1);
        let g4 = run(4);
        let g7 = run(7);
        assert_eq!(g1, g4, "partitioning must not change the graph");
        assert_eq!(g1, g7);
        assert!(g1.windows(2).all(|w| w[0] <= w[1]), "globally sorted");
    }

    #[test]
    fn road_like_is_symmetric_and_sparser_than_grid() {
        let chunks = gather_all(4, move |comm| {
            road_like(comm, RoadParams::default_for(16, 16), 11)
        });
        let all: Vec<WEdge> = chunks.into_iter().flatten().collect();
        let set: HashSet<WEdge> = all.iter().copied().collect();
        for e in &all {
            assert!(set.contains(&e.reversed()), "missing back edge of {e:?}");
        }
        let grid_edges = 2 * (16 * 15 + 15 * 16);
        assert!(
            (all.len() as u64) < grid_edges,
            "perturbation should remove edges"
        );
        // Average degree should land near the road-network regime.
        let avg_deg = all.len() as f64 / (16.0 * 16.0);
        assert!(avg_deg > 1.5 && avg_deg < 3.5, "avg degree {avg_deg}");
    }

    #[test]
    fn degenerate_single_row_grid() {
        let chunks = gather_all(2, move |comm| grid2d(comm, 1, 5, 1));
        let all: Vec<WEdge> = chunks.into_iter().flatten().collect();
        assert_eq!(all.len(), 8); // path of 5 vertices, both directions
    }
}
