//! RMAT graphs with Graph500 probabilities (paper: RMAT).
//!
//! Each undirected edge is drawn by recursively descending the adjacency
//! matrix quadrants with probabilities `(a, b, c, d)`. Following the
//! paper's methodology exactly — "Regarding the RMAT generator, we first
//! globally sort the generated edges and then redistribute them equally
//! over all PEs" — generation is embarrassingly parallel over edge
//! indices, then the distributed sorter and rebalancer establish the
//! sorted 1D partition. This is the one generator that exercises the
//! full distributed sorting stack at construction time.

use super::weight_of;
use crate::edge::WEdge;
use crate::hash::{hash3, unit_f64};
use kamsta_comm::Comm;

/// RMAT parameters.
#[derive(Clone, Copy, Debug)]
pub struct RmatParams {
    /// `n = 2^scale` vertices.
    pub scale: u32,
    /// Target number of *directed* edges (undirected pairs = `m/2`).
    pub m: u64,
    pub a: f64,
    pub b: f64,
    pub c: f64,
}

impl RmatParams {
    /// The Graph500 defaults the paper uses: a=0.57, b=0.19, c=0.19.
    pub fn graph500(scale: u32, m: u64) -> Self {
        Self {
            scale,
            m,
            a: 0.57,
            b: 0.19,
            c: 0.19,
        }
    }
}

/// Draw undirected pair `k` by quadrant descent.
fn rmat_pair(params: &RmatParams, seed: u64, k: u64) -> (u64, u64) {
    let mut u = 0u64;
    let mut v = 0u64;
    let ab = params.a + params.b;
    let abc = ab + params.c;
    for level in 0..params.scale {
        let x = unit_f64(hash3(seed, k, level as u64));
        u <<= 1;
        v <<= 1;
        if x < params.a {
            // upper-left: no bits set
        } else if x < ab {
            v |= 1;
        } else if x < abc {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u, v)
}

/// Generate this PE's slice of an RMAT graph. Self-loops are skipped;
/// duplicate edges are kept (the paper's algorithms eliminate parallel
/// edges during `REDISTRIBUTE`). Collective; internally runs the
/// distributed sorter.
pub fn rmat(comm: &Comm, params: RmatParams, seed: u64) -> Vec<WEdge> {
    // An explicit m = 0 must stay empty (degenerate-input corpus).
    let mu = if params.m == 0 {
        0
    } else {
        (params.m / 2).max(1)
    };
    let range = super::block_range(mu, comm.size(), comm.rank());
    let mut edges = Vec::with_capacity(2 * (range.end - range.start) as usize);
    for k in range {
        let (u, v) = rmat_pair(&params, seed, k);
        if u == v {
            continue;
        }
        let w = weight_of(u, v, seed);
        edges.push(WEdge::new(u, v, w));
        edges.push(WEdge::new(v, u, w));
    }
    comm.charge_local(edges.len() as u64 * params.scale as u64);
    // Paper methodology: global sort, then equal redistribution.
    let sorted = kamsta_sort::sort_auto(comm, edges, seed ^ 0x4D41_5254);
    kamsta_sort::rebalance(comm, sorted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig};

    fn generate_all(p: usize, scale: u32, m: u64, seed: u64) -> Vec<Vec<WEdge>> {
        Machine::run(MachineConfig::new(p), move |comm| {
            rmat(comm, RmatParams::graph500(scale, m), seed)
        })
        .results
    }

    #[test]
    fn sorted_balanced_and_symmetric() {
        let chunks = generate_all(4, 8, 4000, 3);
        let sizes: Vec<usize> = chunks.iter().map(Vec::len).collect();
        let total: usize = sizes.iter().sum();
        for s in &sizes {
            assert!(
                (*s as i64 - (total / 4) as i64).abs() <= 1,
                "balanced blocks"
            );
        }
        let all: Vec<WEdge> = chunks.into_iter().flatten().collect();
        assert!(all.windows(2).all(|w| w[0] <= w[1]), "globally sorted");
        // Symmetry: count directed occurrences per unordered pair parity.
        let mut counts = std::collections::HashMap::new();
        for e in &all {
            *counts.entry((e.u.min(e.v), e.u.max(e.v))).or_insert(0i64) +=
                if e.u < e.v { 1 } else { -1 };
        }
        assert!(
            counts.values().all(|&c| c == 0),
            "every pair needs both directions equally often"
        );
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let all: Vec<WEdge> = generate_all(2, 10, 16_000, 7)
            .into_iter()
            .flatten()
            .collect();
        let mut deg = std::collections::HashMap::new();
        for e in &all {
            *deg.entry(e.u).or_insert(0u64) += 1;
        }
        let max_deg = *deg.values().max().unwrap();
        let avg = all.len() as f64 / deg.len() as f64;
        assert!(
            max_deg as f64 > 8.0 * avg,
            "RMAT should be skewed: max {max_deg} vs avg {avg}"
        );
    }

    #[test]
    fn deterministic() {
        let a = generate_all(3, 7, 1000, 11);
        let b = generate_all(3, 7, 1000, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn vertices_in_range() {
        let all: Vec<WEdge> = generate_all(2, 6, 500, 13).into_iter().flatten().collect();
        for e in &all {
            assert!(e.u < 64 && e.v < 64);
        }
    }
}
