//! Random geometric graphs in 2D and 3D (paper: 2D-RGG / 3D-RGG).
//!
//! Vertices are points in the unit square/cube; two vertices connect iff
//! their Euclidean distance is below a threshold chosen for the target
//! edge count. Generation is communication-free in KaGen style: the
//! domain is diced into cells of side ≥ radius, every cell's points are
//! a pure function of `(seed, cell)`, and a PE regenerates neighbouring
//! cells to find its cut edges. Each cell holds exactly `k` points (a
//! regularised Poisson field), which makes vertex ids — and with them the
//! sorted distributed edge list — computable in O(1) per cell.

use super::{sort_local, weight_of};
use crate::edge::WEdge;
use crate::hash::{hash3, unit_f64, FxHashMap};
use kamsta_comm::Comm;

/// Geometry of a regularised RGG: `g^DIM` cells, `k` points per cell.
struct CellGrid<const DIM: usize> {
    g: u64,
    k: u64,
    side: f64,
    radius: f64,
    seed: u64,
}

impl<const DIM: usize> CellGrid<DIM> {
    fn new(n: u64, m: u64, seed: u64) -> Self {
        assert!(n >= 1);
        let nf = n as f64;
        let avg_deg = (m as f64 / nf).max(1.0);
        // Solve n·V_DIM(r) = avg_deg for r.
        let radius = match DIM {
            2 => (avg_deg / (std::f64::consts::PI * nf)).sqrt(),
            3 => (3.0 * avg_deg / (4.0 * std::f64::consts::PI * nf)).cbrt(),
            _ => unreachable!("RGG supports 2D and 3D"),
        };
        let radius = radius.min(0.5);
        // Cell side must be >= radius; keep total cells <= n.
        let g_max_cells = (nf.powf(1.0 / DIM as f64)).floor().max(1.0) as u64;
        let g = ((1.0 / radius).floor().max(1.0) as u64)
            .min(g_max_cells)
            .max(1);
        let cells = g.pow(DIM as u32);
        let k = (n as f64 / cells as f64).round().max(1.0) as u64;
        Self {
            g,
            k,
            side: 1.0 / g as f64,
            radius,
            seed,
        }
    }

    fn cells(&self) -> u64 {
        self.g.pow(DIM as u32)
    }

    fn n_actual(&self) -> u64 {
        self.cells() * self.k
    }

    fn cell_coords(&self, cidx: u64) -> [u64; DIM] {
        let mut c = [0u64; DIM];
        let mut rest = cidx;
        for d in (0..DIM).rev() {
            c[d] = rest % self.g;
            rest /= self.g;
        }
        c
    }

    fn cell_index(&self, coords: [u64; DIM]) -> u64 {
        coords.iter().fold(0u64, |idx, c| idx * self.g + c)
    }

    /// The points of a cell: pure function of `(seed, cell)`.
    fn points(&self, cidx: u64) -> Vec<([f64; DIM], u64)> {
        let base = self.cell_coords(cidx);
        (0..self.k)
            .map(|j| {
                let mut pos = [0.0f64; DIM];
                for (d, item) in pos.iter_mut().enumerate() {
                    let h = hash3(self.seed, cidx, j * DIM as u64 + d as u64);
                    *item = (base[d] as f64 + unit_f64(h)) * self.side;
                }
                (pos, cidx * self.k + j)
            })
            .collect()
    }

    /// Neighbouring cells (including the cell itself) in the unit box.
    fn neighbours(&self, cidx: u64) -> Vec<u64> {
        let base = self.cell_coords(cidx);
        let mut out = Vec::with_capacity(3usize.pow(DIM as u32));
        let mut offsets = vec![[0i64; DIM]];
        for d in 0..DIM {
            let mut next = Vec::new();
            for o in &offsets {
                for delta in -1i64..=1 {
                    let mut oo = *o;
                    oo[d] = delta;
                    next.push(oo);
                }
            }
            offsets = next;
        }
        for o in offsets {
            let mut coords = [0u64; DIM];
            let mut ok = true;
            for d in 0..DIM {
                let c = base[d] as i64 + o[d];
                if c < 0 || c >= self.g as i64 {
                    ok = false;
                    break;
                }
                coords[d] = c as u64;
            }
            if ok {
                out.push(self.cell_index(coords));
            }
        }
        out
    }
}

fn dist2<const DIM: usize>(a: &[f64; DIM], b: &[f64; DIM]) -> f64 {
    let mut s = 0.0;
    for d in 0..DIM {
        let diff = a[d] - b[d];
        s += diff * diff;
    }
    s
}

fn rgg<const DIM: usize>(comm: &Comm, n: u64, m: u64, seed: u64) -> Vec<WEdge> {
    let grid = CellGrid::<DIM>::new(n, m, seed);
    let cells = grid.cells();
    let range = super::block_range(cells, comm.size(), comm.rank());
    let r2 = grid.radius * grid.radius;
    // Same shape fix as the RHG sweep: each touched cell (own slice +
    // halo) is hashed into existence exactly once per run instead of
    // once per neighbour visit, and undirected pairs with both cells
    // locally owned are tested once — from the lower cell / lower id —
    // emitting both directions. The edge set is identical to the naive
    // neighbourhood scan.
    let mut cache: FxHashMap<u64, Vec<([f64; DIM], u64)>> = FxHashMap::default();
    let mut edges = Vec::new();
    let mut work = 0u64;
    for cidx in range.clone() {
        let mine = cache
            .entry(cidx)
            .or_insert_with(|| grid.points(cidx))
            .clone();
        for ncell in grid.neighbours(cidx) {
            let owned = range.contains(&ncell);
            if owned && ncell < cidx {
                // The sweep of ncell tests this cell pair.
                continue;
            }
            let theirs = cache.entry(ncell).or_insert_with(|| grid.points(ncell));
            for (apos, aid) in &mine {
                for (bpos, bid) in theirs.iter() {
                    if ncell == cidx && bid <= aid {
                        continue;
                    }
                    work += 1;
                    if dist2(apos, bpos) <= r2 {
                        edges.push(WEdge::new(*aid, *bid, weight_of(*aid, *bid, seed)));
                        if owned {
                            edges.push(WEdge::new(*bid, *aid, weight_of(*bid, *aid, seed)));
                        }
                    }
                }
            }
        }
    }
    comm.charge_local(work + edges.len() as u64);
    sort_local(comm, &mut edges);
    edges
}

/// Generate this PE's slice of a 2D RGG with ~`n` vertices and a radius
/// targeting ~`m` directed edges. Collective.
pub fn rgg2d(comm: &Comm, n: u64, m: u64, seed: u64) -> Vec<WEdge> {
    rgg::<2>(comm, n, m, seed)
}

/// Generate this PE's slice of a 3D RGG with ~`n` vertices and a radius
/// targeting ~`m` directed edges. Collective.
pub fn rgg3d(comm: &Comm, n: u64, m: u64, seed: u64) -> Vec<WEdge> {
    rgg::<3>(comm, n, m, seed)
}

/// Actual vertex count of the regularised RGG for given parameters (the
/// cell dicing rounds `n` slightly).
pub fn rgg_actual_n<const DIM: usize>(n: u64, m: u64, seed: u64) -> u64 {
    CellGrid::<DIM>::new(n, m, seed).n_actual()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig};
    use std::collections::HashSet;

    fn generate_all<const DIM: usize>(p: usize, n: u64, m: u64, seed: u64) -> Vec<WEdge> {
        Machine::run(MachineConfig::new(p), move |comm| {
            rgg::<DIM>(comm, n, m, seed)
        })
        .results
        .into_iter()
        .flatten()
        .collect()
    }

    #[test]
    fn rgg2d_symmetric_sorted_no_self_loops() {
        let all = generate_all::<2>(4, 1000, 8000, 3);
        assert!(all.windows(2).all(|w| w[0] <= w[1]));
        let set: HashSet<WEdge> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len());
        for e in &all {
            assert!(set.contains(&e.reversed()), "missing back edge of {e:?}");
            assert!(!e.is_self_loop());
        }
    }

    #[test]
    fn rgg2d_edge_count_near_target() {
        let m = 16_000u64;
        let all = generate_all::<2>(3, 2000, m, 5);
        let got = all.len() as f64;
        assert!(
            got > 0.4 * m as f64 && got < 2.5 * m as f64,
            "edge count {got} vs target {m}"
        );
    }

    #[test]
    fn rgg2d_partition_invariant() {
        let a = generate_all::<2>(1, 500, 3000, 7);
        let b = generate_all::<2>(5, 500, 3000, 7);
        assert_eq!(a, b, "cell decomposition must be partition-independent");
    }

    #[test]
    fn rgg3d_symmetric_and_partition_invariant() {
        let a = generate_all::<3>(1, 800, 6000, 9);
        let b = generate_all::<3>(6, 800, 6000, 9);
        assert_eq!(a, b);
        let set: HashSet<WEdge> = a.iter().copied().collect();
        for e in &a {
            assert!(set.contains(&e.reversed()));
        }
    }

    /// The cell-cached, symmetric-pair neighbourhood sweep must emit
    /// exactly the edge set of the naive all-pairs distance check (cell
    /// side ≥ radius, so the 3^DIM neighbourhood covers every candidate;
    /// the pair orientation rules may only skip duplicate work).
    #[test]
    fn sweep_matches_bruteforce_all_pairs() {
        fn check<const DIM: usize>(n: u64, m: u64, seed: u64) {
            let grid = CellGrid::<DIM>::new(n, m, seed);
            let points: Vec<([f64; DIM], u64)> =
                (0..grid.cells()).flat_map(|c| grid.points(c)).collect();
            let r2 = grid.radius * grid.radius;
            let mut expected: Vec<WEdge> = Vec::new();
            for (apos, aid) in &points {
                for (bpos, bid) in &points {
                    if aid != bid && dist2(apos, bpos) <= r2 {
                        expected.push(WEdge::new(*aid, *bid, weight_of(*aid, *bid, seed)));
                    }
                }
            }
            expected.sort_unstable();
            for p in [1usize, 3] {
                let mut got = generate_all::<DIM>(p, n, m, seed);
                got.sort_unstable();
                assert_eq!(
                    got, expected,
                    "DIM={DIM} n={n} m={m} seed={seed} p={p}: sweep and brute force disagree"
                );
            }
        }
        check::<2>(400, 3000, 13);
        check::<2>(250, 1500, 6);
        check::<3>(300, 2200, 21);
    }

    #[test]
    fn rgg_has_locality_under_block_partition() {
        // Most edges stay within a PE's vertex range — the property the
        // paper's local preprocessing exploits.
        let p = 4;
        let all = generate_all::<2>(p, 2000, 12_000, 11);
        let n = rgg_actual_n::<2>(2000, 12_000, 11);
        let local = all
            .iter()
            .filter(|e| {
                let pu = (e.u * p as u64) / n;
                let pv = (e.v * p as u64) / n;
                pu == pv
            })
            .count();
        assert!(
            local * 2 > all.len(),
            "expected mostly-local edges, got {local}/{}",
            all.len()
        );
    }
}
