//! Erdős–Renyi G(n, m) graphs (paper: GNM), communication-free.
//!
//! The vertex set is split into a *fixed* number of buckets (independent
//! of the PE count, so the generated graph is partition-invariant). For
//! every bucket pair `{a, b}` a deterministic hash stream seeded by
//! `(seed, a, b)` produces the pair's edge count (Poissonised
//! multinomial split of `m`) and the endpoints themselves. Any PE can
//! replay the stream of any pair, so each PE emits exactly the edge
//! directions whose source lies in its range — no communication, same
//! divide-and-conquer determinism as KaGen.

use super::{block_of, block_range, sort_local, weight_of};
use crate::edge::WEdge;
use crate::hash::{hash3, mix64, unit_f64, FxHashSet};
use kamsta_comm::Comm;

/// Number of vertex buckets (graph-structure constant; NOT the PE count).
const BUCKETS: u64 = 128;

/// Deterministic Poisson sample with mean `lambda` from a hash stream.
/// Knuth's method for small means, normal approximation for large ones.
fn poisson(lambda: f64, stream: u64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 32.0 {
        let limit = (-lambda).exp();
        let mut prod = 1.0f64;
        let mut k = 0u64;
        loop {
            prod *= unit_f64(mix64(stream.wrapping_add(k.wrapping_mul(0x9E37))));
            if prod <= limit {
                return k;
            }
            k += 1;
            if k > (lambda * 12.0) as u64 + 64 {
                return k; // numerically degenerate; cap
            }
        }
    } else {
        // Box–Muller normal approximation N(λ, λ).
        let u1 = unit_f64(mix64(stream)).max(1e-12);
        let u2 = unit_f64(mix64(stream ^ 0xABCD_EF01));
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        let x = lambda + lambda.sqrt() * z;
        x.max(0.0).round() as u64
    }
}

/// Generate this PE's slice of a G(n, m) graph with ~`m` *directed* edges
/// (i.e. ~`m/2` undirected pairs). Multi-edges are suppressed within each
/// bucket pair; self-loops are skipped. Partition-invariant: the same
/// `(n, m, seed)` yields the same graph for every PE count. Collective.
pub fn gnm(comm: &Comm, n: u64, m: u64, seed: u64) -> Vec<WEdge> {
    assert!(n >= 2, "GNM needs at least two vertices");
    let b = BUCKETS.min(n);
    let p = comm.size();
    let me = comm.rank();
    // Undirected edge budget; an explicit m = 0 must stay empty (the
    // degenerate-input corpus relies on it) rather than rounding up.
    let mu = if m == 0 { 0.0 } else { (m / 2).max(1) as f64 };
    let total_pairs = (n as f64) * (n as f64 - 1.0) / 2.0;
    let my_range = block_range(n, p, me);
    let mut edges: Vec<WEdge> = Vec::with_capacity((2 * m as usize / p).max(16));

    // Buckets overlapping my vertex range.
    let my_buckets: Vec<u64> = if my_range.is_empty() {
        Vec::new()
    } else {
        (block_of(n, b, my_range.start)..=block_of(n, b, my_range.end - 1)).collect()
    };

    // Every unordered bucket pair touching one of my buckets.
    let mut pairs: FxHashSet<(u64, u64)> = FxHashSet::default();
    for &a in &my_buckets {
        for other in 0..b {
            pairs.insert((a.min(other), a.max(other)));
        }
    }
    let mut pairs: Vec<(u64, u64)> = pairs.into_iter().collect();
    pairs.sort_unstable();

    for (a, bb) in pairs {
        let ra = block_range(n, b as usize, a as usize);
        let rb = block_range(n, b as usize, bb as usize);
        let sa = (ra.end - ra.start) as f64;
        let sb = (rb.end - rb.start) as f64;
        let pair_count = if a == bb {
            sa * (sa - 1.0) / 2.0
        } else {
            sa * sb
        };
        let lambda = mu * pair_count / total_pairs;
        let pair_seed = hash3(seed, a, bb);
        let count = poisson(lambda, pair_seed);

        let mut seen: FxHashSet<(u64, u64)> = FxHashSet::default();
        for t in 0..count {
            let hx = hash3(pair_seed, t, 0);
            let hy = hash3(pair_seed, t, 1);
            let x = ra.start + hx % (ra.end - ra.start);
            let y = rb.start + hy % (rb.end - rb.start);
            if x == y {
                continue; // self-pair (only possible when a == bb)
            }
            let key = (x.min(y), x.max(y));
            if !seen.insert(key) {
                continue; // suppress multi-edge within the bucket pair
            }
            let w = weight_of(x, y, seed);
            // Emit only directions whose source lives in my vertex range.
            if my_range.contains(&x) {
                edges.push(WEdge::new(x, y, w));
            }
            if my_range.contains(&y) {
                edges.push(WEdge::new(y, x, w));
            }
        }
    }
    comm.charge_local(edges.len() as u64);
    sort_local(comm, &mut edges);
    edges
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig};
    use std::collections::HashSet;

    fn generate_all(p: usize, n: u64, m: u64, seed: u64) -> Vec<WEdge> {
        Machine::run(MachineConfig::new(p), move |comm| gnm(comm, n, m, seed))
            .results
            .into_iter()
            .flatten()
            .collect()
    }

    #[test]
    fn symmetric_and_simple() {
        let all = generate_all(4, 200, 1600, 5);
        let set: HashSet<WEdge> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "no duplicate directed edges");
        for e in &all {
            assert!(set.contains(&e.reversed()), "missing back edge of {e:?}");
            assert!(!e.is_self_loop());
            assert!(e.u < 200 && e.v < 200);
        }
    }

    #[test]
    fn edge_count_near_target() {
        let m = 4000u64;
        let all = generate_all(5, 500, m, 7);
        let got = all.len() as f64;
        assert!(
            (got - m as f64).abs() < 0.25 * m as f64,
            "directed edge count {got} too far from target {m}"
        );
    }

    #[test]
    fn partition_invariant() {
        // The graph must be identical for every PE count — this is what
        // makes the paper's hybrid `-8` variants comparable to `-1`.
        let a = generate_all(1, 300, 2400, 9);
        for p in [2, 3, 5, 8] {
            let b = generate_all(p, 300, 2400, 9);
            assert_eq!(a, b, "p={p} must generate the same graph");
        }
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "globally sorted");
    }

    #[test]
    fn small_n_fewer_buckets_than_vertices() {
        let all = generate_all(3, 10, 60, 3);
        for e in &all {
            assert!(e.u < 10 && e.v < 10);
        }
    }

    #[test]
    fn poisson_mean_is_plausible() {
        let lambda = 10.0;
        let mut total = 0u64;
        for s in 0..2000 {
            total += poisson(lambda, mix64(s));
        }
        let mean = total as f64 / 2000.0;
        assert!((mean - lambda).abs() < 0.5, "poisson mean {mean}");
        // Large-λ path.
        let mut total = 0u64;
        for s in 0..2000 {
            total += poisson(1000.0, mix64(s));
        }
        let mean = total as f64 / 2000.0;
        assert!((mean - 1000.0).abs() < 10.0, "normal-approx mean {mean}");
    }
}
