//! Threshold random hyperbolic graphs (paper: RHG, power-law exponent γ).
//!
//! Vertices are points on a hyperbolic disk of radius `R`: the radial
//! coordinate follows density `α·sinh(αr)/(cosh(αR)−1)` with
//! `α = (γ−1)/2`, the angle is uniform. Two vertices connect iff their
//! hyperbolic distance is at most `R`. This yields a power-law degree
//! distribution with exponent γ and strong clustering — the paper uses
//! γ = 3.0 and notes RHGs sit between the high-locality geometric
//! families and the locality-free GNM/RMAT.
//!
//! Communication-free generation dices the disk into `B` equal-mass
//! annular bands × `A` angular sectors with exactly `k` points per cell
//! (regularised field, same idea as the RGG generator); vertex ids are
//! sector-major so block partitioning preserves angular locality. The
//! disk radius `R` is calibrated to the target average degree by a
//! deterministic Monte-Carlo binary search that every PE replays
//! identically.

use super::{sort_local, weight_of};
use crate::edge::WEdge;
use crate::hash::{hash3, unit_f64, FxHashMap};
use kamsta_comm::Comm;
use std::f64::consts::PI;

/// Safety margin added to every per-point angular window. The window
/// pruning is exact in real arithmetic (`theta_max` is decreasing in
/// both radii, and every point of a band has `r ≥ band_lo`), so the
/// margin only has to absorb floating-point rounding of `acos`/`cosh`
/// — 1e-9 rad is ~1e6 ulps above that and costs no measurable extra
/// candidates.
const WINDOW_EPS: f64 = 1e-9;

/// RHG parameters.
#[derive(Clone, Copy, Debug)]
pub struct RhgParams {
    /// Target vertex count (rounded slightly by the cell dicing).
    pub n: u64,
    /// Target number of directed edges; the average degree `m/n` drives
    /// the disk-radius calibration.
    pub m: u64,
    /// Power-law exponent γ > 2.
    pub gamma: f64,
}

/// Radial quantile function: `F⁻¹(q)` for the hyperbolic radial law.
#[inline]
fn radius_for_quantile(q: f64, alpha: f64, big_r: f64) -> f64 {
    let c = (alpha * big_r).cosh() - 1.0;
    (1.0 + q * c).acosh() / alpha
}

/// Hyperbolic distance test: `d((r1,θ1),(r2,θ2)) ≤ R`.
#[inline]
fn connected(r1: f64, r2: f64, dtheta: f64, cosh_big_r: f64) -> bool {
    let cosh_d = r1.cosh() * r2.cosh() - r1.sinh() * r2.sinh() * dtheta.cos();
    cosh_d <= cosh_big_r
}

/// [`connected`] on cached points: same expression, same operation
/// order (IEEE multiplication commutes, so swapping the operands of a
/// symmetric pair cannot flip a boundary case), but `cosh r`/`sinh r`
/// come precomputed from the cell cache instead of being re-derived
/// per candidate pair.
#[inline]
fn connected_pre(p1: &CPoint, p2: &CPoint, dtheta: f64, cosh_big_r: f64) -> bool {
    p1.cosh_r * p2.cosh_r - p1.sinh_r * p2.sinh_r * dtheta.cos() <= cosh_big_r
}

/// Largest angular separation at which radii `r1, r2` can connect.
fn theta_max(r1: f64, r2: f64, big_r: f64, cosh_big_r: f64) -> f64 {
    if r1 + r2 <= big_r {
        return PI;
    }
    let denom = r1.sinh() * r2.sinh();
    if denom <= 0.0 {
        return PI;
    }
    let cos_t = (r1.cosh() * r2.cosh() - cosh_big_r) / denom;
    cos_t.clamp(-1.0, 1.0).acos()
}

/// Monte-Carlo estimate of the expected degree for disk radius `R`.
fn expected_degree(n: u64, alpha: f64, big_r: f64, seed: u64) -> f64 {
    const SAMPLES: u64 = 4000;
    let cosh_big_r = big_r.cosh();
    let mut hits = 0u64;
    for s in 0..SAMPLES {
        let r1 = radius_for_quantile(unit_f64(hash3(seed, s, 0)), alpha, big_r);
        let r2 = radius_for_quantile(unit_f64(hash3(seed, s, 1)), alpha, big_r);
        let dtheta = PI * unit_f64(hash3(seed, s, 2));
        if connected(r1, r2, dtheta, cosh_big_r) {
            hits += 1;
        }
    }
    (n.saturating_sub(1)) as f64 * hits as f64 / SAMPLES as f64
}

/// Calibrate the disk radius to the target average degree. Deterministic,
/// so all PEs agree without communication.
///
/// The bisection runs ~200k Monte-Carlo distance samples and every PE
/// derives the identical value, so the result is memoized process-wide:
/// on a simulated machine (p threads, one process) the first PE to
/// arrive computes while the rest block on the lock and then read the
/// cached value, instead of p PEs re-running the calibration on the
/// same physical cores.
fn calibrate_radius(n: u64, alpha: f64, target_deg: f64, seed: u64) -> f64 {
    use std::collections::HashMap;
    use std::sync::Mutex;
    type Key = (u64, u64, u64, u64);
    static MEMO: Mutex<Option<HashMap<Key, f64>>> = Mutex::new(None);
    let key: Key = (n, alpha.to_bits(), target_deg.to_bits(), seed);
    let mut memo = MEMO.lock().unwrap();
    let map = memo.get_or_insert_with(HashMap::new);
    if let Some(r) = map.get(&key) {
        return *r;
    }
    let mut lo = 0.5f64;
    let mut hi = 2.0 * (n.max(2) as f64).ln() + 20.0;
    for _ in 0..48 {
        let mid = 0.5 * (lo + hi);
        // Expected degree decreases as the disk grows.
        if expected_degree(n, alpha, mid, seed) > target_deg {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let r = 0.5 * (lo + hi);
    map.insert(key, r);
    r
}

/// The diced disk: `A` sectors × `B` equal-mass bands × `k` points/cell.
struct Disk {
    a: u64,
    b: u64,
    k: u64,
    alpha: f64,
    big_r: f64,
    cosh_big_r: f64,
    /// Inner radius of each band (quantile boundaries), length `b + 1`.
    band_lo: Vec<f64>,
    seed: u64,
}

/// A materialized point: polar coordinates, vertex id, and the
/// precomputed hyperbolic functions of `r` that every distance test
/// needs (the old sweep re-evaluated `cosh`/`sinh` per candidate pair).
#[derive(Clone, Copy, Debug)]
struct CPoint {
    r: f64,
    theta: f64,
    cosh_r: f64,
    sinh_r: f64,
    id: u64,
}

/// Per-PE cache of materialized cells. The band×band sweep touches the
/// same cells O(B × span) times; each is hashed, `acosh`-inverted and
/// `cosh`/`sinh`-expanded exactly once per run instead.
#[derive(Default)]
struct CellCache {
    cells: FxHashMap<u64, Vec<CPoint>>,
}

impl CellCache {
    fn cell(&mut self, disk: &Disk, s: u64, band: u64) -> &Vec<CPoint> {
        self.cells
            .entry(s * disk.b + band)
            .or_insert_with(|| disk.cell_points(s, band))
    }
}

impl Disk {
    fn new(params: &RhgParams, seed: u64) -> Self {
        assert!(params.gamma > 2.0, "RHG needs γ > 2");
        assert!(params.n >= 2);
        let alpha = (params.gamma - 1.0) / 2.0;
        let target_deg = (params.m as f64 / params.n as f64).max(1.0);
        let big_r = calibrate_radius(params.n, alpha, target_deg, seed ^ 0xCA11_B8A7);
        let b = 16u64.min(params.n.max(4) / 4).max(2);
        // Sector count is a pure function of n (NOT the PE count) so the
        // generated graph is partition-invariant.
        let a = ((params.n as f64 / (b as f64 * 4.0)).ceil() as u64).max(1);
        let k = ((params.n as f64 / (a * b) as f64).round() as u64).max(1);
        let band_lo: Vec<f64> = (0..=b)
            .map(|i| radius_for_quantile(i as f64 / b as f64, alpha, big_r))
            .collect();
        Self {
            a,
            b,
            k,
            alpha,
            big_r,
            cosh_big_r: big_r.cosh(),
            band_lo,
            seed,
        }
    }

    fn n_actual(&self) -> u64 {
        self.a * self.b * self.k
    }

    fn sector_width(&self) -> f64 {
        2.0 * PI / self.a as f64
    }

    /// Points of cell `(sector s, band b)`: pure function of the seed
    /// (the draws are identical to the pre-cache generator, so the
    /// produced graph is bit-for-bit unchanged), returned theta-sorted
    /// with `cosh r`/`sinh r` precomputed so the sweep can binary-search
    /// angular windows and test candidates without re-deriving the
    /// hyperbolic functions.
    fn cell_points(&self, s: u64, band: u64) -> Vec<CPoint> {
        let cell = s * self.b + band;
        let width = self.sector_width();
        let mut pts: Vec<CPoint> = (0..self.k)
            .map(|j| {
                let qa = unit_f64(hash3(self.seed, cell, 2 * j));
                let qr = unit_f64(hash3(self.seed, cell, 2 * j + 1));
                let theta = (s as f64 + qa) * width;
                let q = (band as f64 + qr) / self.b as f64;
                let r = radius_for_quantile(q, self.alpha, self.big_r);
                CPoint {
                    r,
                    theta,
                    cosh_r: r.cosh(),
                    sinh_r: r.sinh(),
                    id: cell * self.k + j,
                }
            })
            .collect();
        pts.sort_unstable_by(|x, y| x.theta.total_cmp(&y.theta).then(x.id.cmp(&y.id)));
        pts
    }
}

/// The index ranges of `pts` (theta-sorted) whose angle lies within
/// `window` of `center`, as up to two half-open ranges (the window may
/// wrap around 2π). Conservative by construction: a point outside the
/// ranges has circular angular distance ≥ `window` from `center`.
fn theta_ranges(pts: &[CPoint], center: f64, window: f64) -> [(usize, usize); 2] {
    if window >= PI {
        return [(0, pts.len()), (0, 0)];
    }
    let first_at_least = |x: f64| pts.partition_point(|p| p.theta < x);
    let lo = center - window;
    let hi = center + window;
    if lo < 0.0 {
        [
            (first_at_least(lo + 2.0 * PI), pts.len()),
            (0, first_at_least(hi)),
        ]
    } else if hi >= 2.0 * PI {
        [
            (first_at_least(lo), pts.len()),
            (0, first_at_least(hi - 2.0 * PI)),
        ]
    } else {
        [(first_at_least(lo), first_at_least(hi)), (0, 0)]
    }
}

/// Generate this PE's slice of the RHG. Collective.
///
/// The sweep is point-centric: for each of my points `p1` and each band
/// `band2`, the angular window is `theta_max(p1.r, band_lo[band2])` —
/// the *actual* radius of `p1` against the innermost radius band2 can
/// hold, instead of the loosest pair in both bands — and the candidate
/// range inside each theta-sorted cell is found by binary search.
/// Undirected pairs whose both endpoints are locally owned are tested
/// once (from the lower cell / lower id) and emit both directions;
/// cut pairs are tested once per side, each side emitting its own
/// direction — exactly the edge set of the naive band×band scan.
pub fn rhg(comm: &Comm, params: RhgParams, seed: u64) -> Vec<WEdge> {
    let disk = Disk::new(&params, seed);
    let my_sectors = super::block_range(disk.a, comm.size(), comm.rank());
    let width = disk.sector_width();
    let mut cache = CellCache::default();
    let mut edges = Vec::new();
    let mut work = 0u64;

    for s in my_sectors.clone() {
        for band in 0..disk.b {
            // Clone my cell out of the cache so candidate cells can be
            // materialized into it while iterating (k points per cell).
            let mine = cache.cell(&disk, s, band).clone();
            let cell1 = s * disk.b + band;
            for p1 in &mine {
                for band2 in 0..disk.b {
                    // Per-point window: conservative for every p2 in
                    // band2 because theta_max is decreasing in both
                    // radii and p2.r ≥ band_lo[band2].
                    let window = theta_max(
                        p1.r,
                        disk.band_lo[band2 as usize],
                        disk.big_r,
                        disk.cosh_big_r,
                    ) + WINDOW_EPS;
                    let span = ((window / width).ceil() as i64 + 1).min(disk.a as i64);
                    let full_circle = 2 * span + 1 >= disk.a as i64;
                    let deltas = if full_circle {
                        0..disk.a as i64
                    } else {
                        -span..span + 1
                    };
                    for ds in deltas {
                        let s2 = if full_circle {
                            ds as u64
                        } else {
                            (s as i64 + ds).rem_euclid(disk.a as i64) as u64
                        };
                        let cell2 = s2 * disk.b + band2;
                        let owned = my_sectors.contains(&s2);
                        if owned && cell2 < cell1 {
                            // Symmetric-pair iteration: the sweep of
                            // cell2 tests this pair and emits both
                            // directions.
                            continue;
                        }
                        let theirs = cache.cell(&disk, s2, band2);
                        for (lo, hi) in theta_ranges(theirs, p1.theta, window) {
                            for p2 in &theirs[lo..hi] {
                                if cell2 == cell1 && p2.id <= p1.id {
                                    continue;
                                }
                                work += 1;
                                let mut dt = (p1.theta - p2.theta).abs();
                                if dt > PI {
                                    dt = 2.0 * PI - dt;
                                }
                                if connected_pre(p1, p2, dt, disk.cosh_big_r) {
                                    edges.push(WEdge::new(
                                        p1.id,
                                        p2.id,
                                        weight_of(p1.id, p2.id, seed),
                                    ));
                                    if owned {
                                        edges.push(WEdge::new(
                                            p2.id,
                                            p1.id,
                                            weight_of(p2.id, p1.id, seed),
                                        ));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    #[cfg(debug_assertions)]
    {
        let mut seen = crate::hash::FxHashSet::default();
        for e in &edges {
            debug_assert!(seen.insert((e.u, e.v)), "duplicate directed edge {e:?}");
        }
    }
    comm.charge_local(work + edges.len() as u64);
    sort_local(comm, &mut edges);
    edges
}

/// Actual vertex count after cell dicing.
pub fn rhg_actual_n(params: &RhgParams, seed: u64) -> u64 {
    Disk::new(params, seed).n_actual()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig};
    use std::collections::{HashMap, HashSet};

    fn generate_all(p: usize, n: u64, m: u64, gamma: f64, seed: u64) -> Vec<WEdge> {
        Machine::run(MachineConfig::new(p), move |comm| {
            rhg(comm, RhgParams { n, m, gamma }, seed)
        })
        .results
        .into_iter()
        .flatten()
        .collect()
    }

    #[test]
    fn symmetric_sorted_simple() {
        let all = generate_all(4, 1000, 8000, 3.0, 5);
        assert!(all.windows(2).all(|w| w[0] <= w[1]), "globally sorted");
        let set: HashSet<WEdge> = all.iter().copied().collect();
        assert_eq!(set.len(), all.len(), "no duplicates");
        for e in &all {
            assert!(set.contains(&e.reversed()), "missing back edge of {e:?}");
            assert!(!e.is_self_loop());
        }
    }

    #[test]
    fn partition_invariant() {
        let a = generate_all(1, 600, 4000, 3.0, 9);
        let b = generate_all(5, 600, 4000, 3.0, 9);
        assert_eq!(a, b, "same graph regardless of PE count");
    }

    #[test]
    fn average_degree_near_target() {
        let n = 2000u64;
        let m = 16_000u64;
        let all = generate_all(3, n, m, 3.0, 7);
        let got = all.len() as f64;
        assert!(
            got > 0.4 * m as f64 && got < 2.5 * m as f64,
            "directed edges {got} vs target {m}"
        );
    }

    #[test]
    fn degree_distribution_has_heavy_tail() {
        let all = generate_all(2, 3000, 24_000, 3.0, 3);
        let mut deg: HashMap<u64, u64> = HashMap::new();
        for e in &all {
            *deg.entry(e.u).or_insert(0) += 1;
        }
        let max_deg = *deg.values().max().unwrap();
        let avg = all.len() as f64 / deg.len() as f64;
        assert!(
            max_deg as f64 > 6.0 * avg,
            "power law should produce hubs: max {max_deg}, avg {avg}"
        );
    }

    #[test]
    fn radial_quantile_is_monotone() {
        let alpha = 1.0;
        let big_r = 10.0;
        let mut prev = -1.0;
        for i in 0..=20 {
            let r = radius_for_quantile(i as f64 / 20.0, alpha, big_r);
            assert!(r >= prev);
            assert!((0.0..=big_r + 1e-9).contains(&r));
            prev = r;
        }
        assert!(radius_for_quantile(0.0, alpha, big_r).abs() < 1e-12);
        assert!((radius_for_quantile(1.0, alpha, big_r) - big_r).abs() < 1e-9);
    }

    /// The windowed, cell-cached, symmetric-pair sweep must emit exactly
    /// the edge set of the naive all-pairs hyperbolic-distance check —
    /// the pruning (angular windows, sector spans, pair orientation) may
    /// only skip work, never edges.
    #[test]
    fn sweep_matches_bruteforce_all_pairs() {
        for (n, m, seed) in [(300u64, 2400u64, 11u64), (500, 3500, 4), (120, 900, 29)] {
            let params = RhgParams { n, m, gamma: 3.0 };
            let disk = Disk::new(&params, seed);
            let mut points = Vec::new();
            for s in 0..disk.a {
                for band in 0..disk.b {
                    points.extend(disk.cell_points(s, band));
                }
            }
            let mut expected: Vec<WEdge> = Vec::new();
            for p1 in &points {
                for p2 in &points {
                    if p1.id == p2.id {
                        continue;
                    }
                    let mut dt = (p1.theta - p2.theta).abs();
                    if dt > PI {
                        dt = 2.0 * PI - dt;
                    }
                    if connected(p1.r, p2.r, dt, disk.cosh_big_r) {
                        expected.push(WEdge::new(p1.id, p2.id, weight_of(p1.id, p2.id, seed)));
                    }
                }
            }
            expected.sort_unstable();
            for p in [1usize, 3] {
                let got = {
                    let mut g = generate_all(p, n, m, 3.0, seed);
                    g.sort_unstable();
                    g
                };
                assert_eq!(
                    got, expected,
                    "n={n} m={m} seed={seed} p={p}: sweep and brute force disagree"
                );
            }
        }
    }

    #[test]
    fn calibration_hits_target_degree() {
        let n = 5000;
        let alpha = 1.0;
        for target in [4.0, 16.0] {
            let r = calibrate_radius(n, alpha, target, 42);
            let got = expected_degree(n, alpha, r, 42);
            assert!(
                (got - target).abs() / target < 0.25,
                "target {target}, calibrated degree {got}"
            );
        }
    }
}
