//! The sharded batch-dynamic MSF maintainer.
//!
//! State per PE: a `store` shard (every current edge whose canonical
//! `u < v` pair is homed here) and an `msf` shard (the subset in the
//! current forest), both lex-sorted so pair lookups are binary searches
//! on [`CEdge::lex_key`] prefixes. Replicated scalars (forest weight and
//! size, the id counter, statistics) ride along so every PE can answer
//! aggregate queries without communication.
//!
//! A batch applies in five bulk-synchronous steps, with every branch
//! decided on allreduced quantities so the PEs stay in lockstep:
//!
//! 1. canonicalise + assign fresh ids + route updates to pair homes;
//! 2. resolve last-writer-wins per pair, merge into the store shard;
//! 3. classify globally: effective inserts, deletions, forest hits;
//! 4. assemble the certificate `T' ∪ I ∪ C` (see below);
//! 5. re-solve the certificate with [`boruvka_mst`] and adopt the
//!    result as the new forest — skipped entirely when the batch
//!    provably cannot change the forest.
//!
//! Exactness of the certificate, writing `D` for removed edge content
//! (deletions plus the old copies of re-weighted pairs), `I` for new
//! content, `G_mid = G_old ∖ D`, and `T' = MSF(G_old) ∖ D`:
//!
//! * deletions never evict survivors: every `e ∈ T'` is minimal across
//!   some cut of `G_old` and stays minimal in the smaller `G_mid`, so
//!   `T' ⊆ MSF(G_mid)`;
//! * contracting the components of `T'`, the remainder of `MSF(G_mid)`
//!   is an MSF of the contracted multigraph, which by the cycle property
//!   only uses, per component pair, the lightest crossing edge of
//!   `G_mid` — exactly the candidate set `C` each PE collects from its
//!   own store shard (inserted pairs are excluded: they are not in
//!   `G_mid`, and travel in `I` anyway). Hence
//!   `MSF(G_mid) ⊆ T' ∪ C`;
//! * sparsification handles the insertions:
//!   `MSF(G_new) = MSF(MSF(G_mid) ∪ I)`, and a sandwich
//!   `MSF(A) ⊆ X ⊆ A ⇒ MSF(X) = MSF(A)` with `X = T' ∪ C ∪ I`
//!   finishes: re-solving the certificate yields `MSF(G_new)` exactly,
//!   with the same `(w, min, max)` tie-breaking a from-scratch run uses.

use kamsta_comm::{Comm, FlatBuckets};
use kamsta_core::dist::{boruvka_mst, MstConfig};
use kamsta_core::seq::UnionFind;
use kamsta_graph::gen::block_of;
use kamsta_graph::hash::{FxHashMap, FxHashSet};
use kamsta_graph::{CEdge, InputGraph, VertexId, WEdge, Weight};

/// Configuration of a batch-dynamic MSF maintainer.
#[derive(Clone, Copy, Debug)]
pub struct DynConfig {
    /// Vertex-id space bound: every endpoint must lie in `[0, n)`. The
    /// bound fixes the `block_of` home sharding, so it cannot change
    /// after construction.
    pub n: u64,
    /// Configuration of the certificate re-solves.
    pub mst: MstConfig,
}

impl DynConfig {
    /// Maintainer over the vertex space `[0, n)` with default re-solve
    /// parameters.
    pub fn new(n: u64) -> Self {
        Self {
            n: n.max(1),
            mst: MstConfig::default(),
        }
    }

    /// Override the certificate re-solve configuration.
    pub fn with_mst(mut self, mst: MstConfig) -> Self {
        self.mst = mst;
        self
    }
}

/// One edge update. Endpoints are canonicalised internally and
/// self-loops are ignored. The maintained graph is pair-keyed:
/// inserting an existing pair replaces its weight (a delete + insert in
/// one op), deleting an absent pair is a no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Update {
    /// Insert (or re-weight) the undirected edge `{u, v}`.
    Insert(WEdge),
    /// Delete the undirected edge `{u, v}` if present.
    Delete { u: VertexId, v: VertexId },
}

/// Statistics of a maintainer's lifetime, the [`FilterStats`] mirror of
/// the dynamic layer. Identical on every PE: all counters are global
/// quantities.
///
/// [`FilterStats`]: kamsta_core::dist::FilterStats
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UpdateStats {
    /// Batches applied.
    pub batches: u64,
    /// Edges inserted or re-weighted (pair-effective, not request count).
    pub inserts: u64,
    /// Deletions that matched a present edge.
    pub deletes: u64,
    /// Removed or re-weighted pairs that were forest edges.
    pub tree_deletes: u64,
    /// Certificate re-solves performed.
    pub resolves: u64,
    /// Batches answered without touching the MST pipeline.
    pub skipped_resolves: u64,
    /// Total (global, undirected) edges across all certificates.
    pub certificate_edges: u64,
    /// Replacement candidates harvested by component-crossing scans.
    pub replacement_candidates: u64,
}

/// Outcome of one batch. Identical on every PE.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BatchOutcome {
    /// True when a certificate re-solve ran.
    pub resolved: bool,
    /// Undirected edges in this batch's certificate (0 when skipped).
    pub certificate_edges: u64,
    /// Forest edges this batch removed or re-weighted.
    pub tree_deletes: u64,
    /// Forest weight after the batch.
    pub msf_weight: u64,
    /// Forest size after the batch.
    pub msf_edges: u64,
}

/// One PE's persisted slice of the dynamic state. The service layer
/// checkpoints these between machine runs.
#[derive(Clone, Debug, Default)]
pub struct DynShard {
    /// Current graph: canonical `u < v` edges homed here, lex-sorted.
    pub store: Vec<CEdge>,
    /// Current forest: subset of `store`, lex-sorted.
    pub msf: Vec<CEdge>,
}

/// The replicated scalars of the dynamic state.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DynReplicated {
    /// Global forest weight.
    pub weight: u64,
    /// Global forest size (undirected edges).
    pub msf_edges: u64,
    /// Next fresh edge id (ids only break ties between byte-identical
    /// content, but keep the shard order total).
    pub next_id: u64,
    /// Lifetime statistics.
    pub stats: UpdateStats,
}

/// Home PE of a canonical vertex pair under the `block_of` sharding of
/// the vertex space `[0, n)` over `p` PEs: the block of the smaller
/// endpoint.
#[inline]
pub fn home_of_pair(n: u64, p: usize, u: VertexId, v: VertexId) -> usize {
    block_of(n, p as u64, u.min(v)) as usize
}

/// The tight vertex-space bound of a prepared input: one past the
/// largest endpoint, floored at 2 (the smallest space an update
/// workload can draw from). The shared inference behind
/// [`DynMst::bootstrap`]'s range check, the differential harness and
/// the throughput benchmarks — one definition, so the dynamic and
/// from-scratch machines can never disagree on the sharding.
/// Collective.
pub fn vertex_bound(comm: &Comm, input: &InputGraph) -> u64 {
    let local_max = input
        .graph
        .edges
        .iter()
        .map(|e| e.u.max(e.v))
        .max()
        .unwrap_or(0);
    (comm.allreduce_max(local_max) + 1).max(2)
}

/// Binary search a lex-sorted shard for a canonical pair (pairs are
/// unique per shard, so the `(u, v)` prefix decides).
fn find_pair(list: &[CEdge], u: VertexId, v: VertexId) -> Result<usize, usize> {
    list.binary_search_by(|e| (e.u, e.v).cmp(&(u, v)))
}

/// An update routed to its pair home (`delete` ignores `w`).
#[derive(Clone, Copy, Debug)]
struct Routed {
    u: VertexId,
    v: VertexId,
    w: Weight,
    id: u64,
    delete: bool,
}

/// Wire format: fixed-width field walk, declaration order.
impl kamsta_comm::Wire for Routed {
    fn wire_write(&self, out: &mut Vec<u8>) {
        self.u.wire_write(out);
        self.v.wire_write(out);
        self.w.wire_write(out);
        self.id.wire_write(out);
        self.delete.wire_write(out);
    }
    fn wire_read(r: &mut kamsta_comm::WireReader<'_>) -> Result<Self, kamsta_comm::WireError> {
        Ok(Self {
            u: VertexId::wire_read(r)?,
            v: VertexId::wire_read(r)?,
            w: Weight::wire_read(r)?,
            id: u64::wire_read(r)?,
            delete: bool::wire_read(r)?,
        })
    }
    #[inline]
    fn wire_min_size() -> usize {
        29
    }
}

/// The sharded batch-dynamic MSF maintainer. All `&mut self` methods
/// taking a [`Comm`] are collective.
pub struct DynMst {
    cfg: DynConfig,
    p: usize,
    shard: DynShard,
    rep: DynReplicated,
}

impl DynMst {
    /// An empty maintainer over `cfg.n` vertices. Collective only in the
    /// sense that every PE must construct it with the same `cfg`.
    pub fn new(comm: &Comm, cfg: DynConfig) -> Self {
        Self {
            cfg,
            p: comm.size(),
            shard: DynShard::default(),
            rep: DynReplicated::default(),
        }
    }

    /// Seed the maintainer from a prepared input graph: solve the MSF
    /// once with the static pipeline, then shard the canonical edge
    /// content and the forest by pair home. *All* copies route
    /// canonically — pair-canonical ids make both directions of an
    /// undirected edge byte-identical after the swap, so the dedup
    /// collapses them (and parallel copies keep the `(w, id)`-minimal
    /// one, exactly the copy the static pipeline can ever use);
    /// backward-only edges of asymmetric hand-built inputs survive
    /// rather than vanishing from the store. Collective.
    pub fn bootstrap(comm: &Comm, cfg: DynConfig, input: &InputGraph) -> Self {
        // m_global is replicated, so the short-circuit keeps the
        // collective bound computation consistent across PEs.
        assert!(
            input.graph.m_global == 0 || vertex_bound(comm, input) <= cfg.n,
            "input vertex ids exceed the configured space [0, {})",
            cfg.n
        );
        let r = boruvka_mst(comm, input, &cfg.mst);
        let mut me = Self::new(comm, cfg);
        me.shard.store = me.route_canonical(comm, input.graph.edges.clone());
        me.shard.store.dedup_by(|b, a| a.u == b.u && a.v == b.v);
        me.shard.msf = me.adopt(comm, r.edges);
        me.rep.next_id = input.graph.m_global;
        me.refresh_cached(comm);
        me
    }

    /// Rebuild a maintainer from checkpointed parts (the service layer's
    /// resume path). `rep` must be the replicated scalars every PE
    /// checkpointed, `shard` this PE's slice.
    pub fn from_parts(comm: &Comm, cfg: DynConfig, shard: DynShard, rep: DynReplicated) -> Self {
        let mut me = Self::new(comm, cfg);
        me.shard = shard;
        me.rep = rep;
        me
    }

    /// Tear down into checkpointable parts.
    pub fn into_parts(self) -> (DynShard, DynReplicated) {
        (self.shard, self.rep)
    }

    /// The maintainer configuration.
    pub fn config(&self) -> &DynConfig {
        &self.cfg
    }

    /// Cached global forest weight (replicated; no communication).
    pub fn msf_weight(&self) -> u64 {
        self.rep.weight
    }

    /// Cached global forest size (replicated; no communication).
    pub fn msf_edge_count(&self) -> u64 {
        self.rep.msf_edges
    }

    /// Lifetime statistics (replicated; no communication).
    pub fn stats(&self) -> UpdateStats {
        self.rep.stats
    }

    /// The replicated scalars (for checkpointing).
    pub fn replicated(&self) -> DynReplicated {
        self.rep
    }

    /// This PE's forest shard (canonical `u < v`, lex-sorted).
    pub fn local_msf(&self) -> &[CEdge] {
        &self.shard.msf
    }

    /// This PE's store shard (canonical `u < v`, lex-sorted).
    pub fn local_edges(&self) -> &[CEdge] {
        &self.shard.store
    }

    /// The full forest, replicated (tests/debugging). Collective.
    pub fn collect_msf(&self, comm: &Comm) -> Vec<WEdge> {
        let mut all = comm.allgatherv(self.shard.msf.iter().map(CEdge::wedge).collect());
        all.sort_unstable();
        all
    }

    /// The full current edge set, replicated (tests/debugging).
    /// Collective.
    pub fn collect_edges(&self, comm: &Comm) -> Vec<WEdge> {
        let mut all = comm.allgatherv(self.shard.store.iter().map(CEdge::wedge).collect());
        all.sort_unstable();
        all
    }

    /// Forest membership for a batch of pair queries, answered at each
    /// pair's home shard through the value-only request/reply exchange.
    /// Every PE passes its own queries; answers align with them.
    /// Collective.
    pub fn in_msf_batch(&self, comm: &Comm, queries: &[(VertexId, VertexId)]) -> Vec<bool> {
        let (n, p) = (self.cfg.n, self.p);
        let items: Vec<(VertexId, VertexId, u32)> = queries
            .iter()
            .enumerate()
            .map(|(k, &(u, v))| (u.min(v), u.max(v), k as u32))
            .collect();
        comm.charge_local(items.len() as u64);
        let requests = FlatBuckets::from_dest_fn(p, items, |&(u, v, _)| {
            home_of_pair(n, p, u.min(n - 1), v.min(n - 1))
        });
        let sent = requests.payload().to_vec();
        let answers = comm.request_reply(requests, |&(u, v, _)| {
            u != v && v < n && find_pair(&self.shard.msf, u, v).is_ok()
        });
        let mut out = vec![false; queries.len()];
        for ((_, _, k), a) in sent.into_iter().zip(answers) {
            out[k as usize] = a;
        }
        out
    }

    /// Apply one batch of updates. Every PE contributes its own slice of
    /// the batch (the service front-end submits everything from rank 0);
    /// conflicting updates to one pair resolve last-writer-wins in
    /// `(rank, submission order)`. Returns the replicated outcome.
    /// Collective.
    pub fn apply_batch(&mut self, comm: &Comm, batch: &[Update]) -> BatchOutcome {
        let (n, p) = (self.cfg.n, self.p);

        // 1. Canonicalise, drop self-loops, assign globally unique,
        //    submission-ordered ids, route to pair homes.
        let mut ops: Vec<Routed> = Vec::with_capacity(batch.len());
        for up in batch {
            let (u, v, w, delete) = match *up {
                Update::Insert(e) => (e.u, e.v, e.w, false),
                Update::Delete { u, v } => (u, v, 0, true),
            };
            if u == v {
                continue;
            }
            assert!(
                u < n && v < n,
                "update endpoint ({u}, {v}) outside the configured vertex space [0, {n})"
            );
            ops.push(Routed {
                u: u.min(v),
                v: u.max(v),
                w,
                id: 0,
                delete,
            });
        }
        let base = self.rep.next_id + comm.exscan_sum(ops.len() as u64);
        for (k, op) in ops.iter_mut().enumerate() {
            op.id = base + k as u64;
        }
        self.rep.next_id += comm.allreduce_sum(ops.len() as u64);
        comm.charge_local(ops.len() as u64);
        let routed = FlatBuckets::from_dest_fn(p, ops, |o| home_of_pair(n, p, o.u, o.v));
        let mut delta = comm.sparse_alltoallv(routed).into_payload();

        // 2. Last-writer-wins per pair (ids order by (rank, submission)),
        //    then one linear merge against the lex-sorted store shard.
        comm.charge_local(delta.len() as u64);
        kamsta_sort::radix_sort_by_key(&mut delta, |r: &Routed| {
            (((r.u as u128) << 64) | r.v as u128, r.id)
        });
        let mut last: Vec<Routed> = Vec::with_capacity(delta.len());
        for r in delta {
            match last.last_mut() {
                Some(prev) if prev.u == r.u && prev.v == r.v => *prev = r,
                _ => last.push(r),
            }
        }

        let store = std::mem::take(&mut self.shard.store);
        let mut new_store: Vec<CEdge> = Vec::with_capacity(store.len() + last.len());
        let mut inserted: Vec<CEdge> = Vec::new();
        let mut msf_dead: Vec<(VertexId, VertexId)> = Vec::new();
        let mut eff_deletes = 0u64;
        let mut si = 0usize;
        for r in &last {
            while si < store.len() && (store[si].u, store[si].v) < (r.u, r.v) {
                new_store.push(store[si]);
                si += 1;
            }
            let existing =
                (si < store.len() && (store[si].u, store[si].v) == (r.u, r.v)).then(|| {
                    si += 1;
                    store[si - 1]
                });
            let was_tree = existing.is_some() && find_pair(&self.shard.msf, r.u, r.v).is_ok();
            if r.delete {
                if existing.is_some() {
                    eff_deletes += 1;
                    if was_tree {
                        msf_dead.push((r.u, r.v));
                    }
                }
            } else {
                match existing {
                    // Re-inserting identical content is a graph no-op.
                    Some(e) if e.w == r.w => new_store.push(e),
                    other => {
                        if other.is_some() && was_tree {
                            msf_dead.push((r.u, r.v));
                        }
                        let e = CEdge::new(r.u, r.v, r.w, r.id);
                        new_store.push(e);
                        inserted.push(e);
                    }
                }
            }
        }
        new_store.extend_from_slice(&store[si..]);
        comm.charge_local((store.len() + last.len()) as u64);
        self.shard.store = new_store;
        if !msf_dead.is_empty() {
            self.shard
                .msf
                .retain(|e| msf_dead.binary_search(&(e.u, e.v)).is_err());
        }

        // 3. Global classification: whether the forest can change at all.
        let ins_global = comm.allreduce_sum(inserted.len() as u64);
        let tree_global = comm.allreduce_sum(msf_dead.len() as u64);
        let del_global = comm.allreduce_sum(eff_deletes);
        self.rep.stats.batches += 1;
        self.rep.stats.inserts += ins_global;
        self.rep.stats.deletes += del_global;
        self.rep.stats.tree_deletes += tree_global;
        if ins_global == 0 && tree_global == 0 {
            self.rep.stats.skipped_resolves += 1;
            return BatchOutcome {
                resolved: false,
                certificate_edges: 0,
                tree_deletes: 0,
                msf_weight: self.rep.weight,
                msf_edges: self.rep.msf_edges,
            };
        }

        // 4. Certificate: surviving forest + this batch's inserts +
        //    (only when the forest was hit) replacement candidates.
        let mut cert: Vec<CEdge> = self.shard.msf.clone();
        cert.extend(inserted.iter().copied());
        if tree_global > 0 {
            let candidates = self.replacement_candidates(comm, &inserted);
            self.rep.stats.replacement_candidates += comm.allreduce_sum(candidates.len() as u64);
            cert.extend(candidates);
        }

        // 5. Re-solve the certificate through the static pipeline and
        //    adopt its forest.
        let cert_global = comm.allreduce_sum(cert.len() as u64);
        comm.charge_local(cert.len() as u64);
        let directed: Vec<WEdge> = cert
            .iter()
            .flat_map(|e| [e.wedge(), e.wedge().reversed()])
            .collect();
        let input = InputGraph::from_unsorted_edges(comm, directed);
        let r = boruvka_mst(comm, &input, &self.cfg.mst);
        self.shard.msf = self.adopt(comm, r.edges);
        self.refresh_cached(comm);
        self.rep.stats.resolves += 1;
        self.rep.stats.certificate_edges += cert_global;
        BatchOutcome {
            resolved: true,
            certificate_edges: cert_global,
            tree_deletes: tree_global,
            msf_weight: self.rep.weight,
            msf_edges: self.rep.msf_edges,
        }
    }

    /// The replacement-candidate scan: replicate the surviving forest's
    /// pair list (≤ n − 1 edges — the certificate is small by design),
    /// label its components with a local union-find, and harvest from
    /// this PE's store shard the lightest edge per crossed component
    /// pair. Pairs inserted this batch are excluded — they are not part
    /// of the pre-batch graph the cut/cycle argument runs on, and they
    /// travel in the certificate anyway. Collective.
    fn replacement_candidates(&self, comm: &Comm, inserted: &[CEdge]) -> Vec<CEdge> {
        let t_pairs: Vec<(VertexId, VertexId)> =
            comm.allgatherv(self.shard.msf.iter().map(|e| (e.u, e.v)).collect());
        let mut vidx: FxHashMap<VertexId, u32> = FxHashMap::default();
        for &(u, v) in &t_pairs {
            for x in [u, v] {
                let next = vidx.len() as u32;
                vidx.entry(x).or_insert(next);
            }
        }
        let mut uf = UnionFind::new(vidx.len());
        for &(u, v) in &t_pairs {
            uf.union(vidx[&u], vidx[&v]);
        }
        let roots: Vec<u64> = (0..vidx.len() as u32).map(|i| uf.find(i) as u64).collect();
        // Vertices outside the forest are singleton components; give them
        // labels disjoint from the root indices.
        let comp = |x: VertexId| -> u64 {
            match vidx.get(&x) {
                Some(&i) => roots[i as usize],
                None => roots.len() as u64 + x,
            }
        };
        comm.charge_local((t_pairs.len() + self.shard.store.len()) as u64);
        let inserted_pairs: FxHashSet<(VertexId, VertexId)> =
            inserted.iter().map(|e| (e.u, e.v)).collect();
        let mut best: FxHashMap<(u64, u64), CEdge> = FxHashMap::default();
        for e in &self.shard.store {
            if inserted_pairs.contains(&(e.u, e.v)) {
                continue;
            }
            let (la, lb) = (comp(e.u), comp(e.v));
            if la == lb {
                continue; // intra-component (forest edges land here too)
            }
            let slot = best.entry((la.min(lb), la.max(lb))).or_insert(*e);
            if (e.weight_key(), e.id) < (slot.weight_key(), slot.id) {
                *slot = *e;
            }
        }
        best.into_values().collect()
    }

    /// Route edges to their canonical pair homes and lex-sort the
    /// arrivals. Collective.
    fn route_canonical(&self, comm: &Comm, edges: Vec<CEdge>) -> Vec<CEdge> {
        let (n, p) = (self.cfg.n, self.p);
        let canon: Vec<CEdge> = edges
            .into_iter()
            .map(|mut e| {
                if e.u > e.v {
                    std::mem::swap(&mut e.u, &mut e.v);
                }
                e
            })
            .collect();
        comm.charge_local(canon.len() as u64);
        let bufs = FlatBuckets::from_dest_fn(p, canon, |e| home_of_pair(n, p, e.u, e.v));
        let mut mine = comm.sparse_alltoallv(bufs).into_payload();
        kamsta_sort::radix_sort_by_key(&mut mine, CEdge::lex_key);
        mine
    }

    /// Adopt an MSF result (one direction per undirected forest edge,
    /// scattered over PEs) as forest shards: route canonically and swap
    /// in the store's copy per pair, so `msf ⊆ store` by construction.
    /// Collective.
    fn adopt(&self, comm: &Comm, msf: Vec<CEdge>) -> Vec<CEdge> {
        let mine = self.route_canonical(comm, msf);
        mine.iter()
            .map(|e| {
                let i = find_pair(&self.shard.store, e.u, e.v).unwrap_or_else(|_| {
                    panic!("forest edge ({}, {}) missing from store", e.u, e.v)
                });
                self.shard.store[i]
            })
            .collect()
    }

    /// Recompute the replicated weight/size caches from the shards.
    /// Collective.
    fn refresh_cached(&mut self, comm: &Comm) {
        let w: u64 = self.shard.msf.iter().map(|e| e.w as u64).sum();
        self.rep.weight = comm.allreduce_sum(w);
        self.rep.msf_edges = comm.allreduce_sum(self.shard.msf.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig};
    use kamsta_graph::GraphConfig;

    fn small_cfg(n: u64) -> DynConfig {
        DynConfig::new(n).with_mst(MstConfig {
            base_case_constant: 8,
            filter_min_edges_per_pe: 16,
            ..MstConfig::default()
        })
    }

    #[test]
    fn home_of_pair_is_block_sharding() {
        for p in [1usize, 3, 7] {
            for n in [1u64, 10, 97] {
                for v in 0..n {
                    let h = home_of_pair(n, p, v, n - 1);
                    assert!(h < p);
                    assert_eq!(h, block_of(n, p as u64, v.min(n - 1)) as usize);
                }
            }
        }
    }

    #[test]
    fn bootstrap_matches_static_pipeline() {
        let out = Machine::run(MachineConfig::new(4), |comm| {
            let input = InputGraph::generate(comm, GraphConfig::Gnm { n: 80, m: 500 }, 11);
            let d = DynMst::bootstrap(comm, small_cfg(80), &input);
            let r = boruvka_mst(comm, &input, &small_cfg(80).mst);
            let w: u64 = r.edges.iter().map(|e| e.w as u64).sum();
            (d.msf_weight(), comm.allreduce_sum(w), d.msf_edge_count())
        });
        for (dyn_w, static_w, edges) in out.results {
            assert_eq!(dyn_w, static_w);
            assert!(edges <= 79);
        }
    }

    #[test]
    fn insert_only_batches_grow_a_forest() {
        let out = Machine::run(MachineConfig::new(3), |comm| {
            let mut d = DynMst::new(comm, small_cfg(6));
            let batch: Vec<Update> = if comm.rank() == 0 {
                vec![
                    Update::Insert(WEdge::new(0, 1, 4)),
                    Update::Insert(WEdge::new(1, 2, 1)),
                    Update::Insert(WEdge::new(2, 0, 2)),
                    Update::Insert(WEdge::new(4, 5, 9)),
                ]
            } else {
                Vec::new()
            };
            let o = d.apply_batch(comm, &batch);
            (o, d.collect_msf(comm))
        });
        for (o, msf) in out.results {
            assert!(o.resolved);
            assert_eq!(o.msf_weight, 1 + 2 + 9);
            assert_eq!(o.msf_edges, 3);
            assert_eq!(msf.len(), 3);
        }
    }

    #[test]
    fn nontree_deletes_skip_the_resolve() {
        let out = Machine::run(MachineConfig::new(2), |comm| {
            let mut d = DynMst::new(comm, small_cfg(4));
            let setup: Vec<Update> = if comm.rank() == 0 {
                vec![
                    Update::Insert(WEdge::new(0, 1, 1)),
                    Update::Insert(WEdge::new(1, 2, 2)),
                    Update::Insert(WEdge::new(0, 2, 9)), // non-tree
                ]
            } else {
                Vec::new()
            };
            d.apply_batch(comm, &setup);
            let del: Vec<Update> = if comm.rank() == 0 {
                vec![Update::Delete { u: 2, v: 0 }]
            } else {
                Vec::new()
            };
            let o = d.apply_batch(comm, &del);
            (o, d.stats(), d.collect_edges(comm).len())
        });
        for (o, stats, m) in out.results {
            assert!(!o.resolved, "non-tree deletion must not re-solve");
            assert_eq!(o.msf_weight, 3);
            assert_eq!(stats.skipped_resolves, 1);
            assert_eq!(stats.deletes, 1);
            assert_eq!(stats.tree_deletes, 0);
            assert_eq!(m, 2);
        }
    }

    #[test]
    fn tree_delete_finds_the_replacement() {
        let out = Machine::run(MachineConfig::new(3), |comm| {
            let mut d = DynMst::new(comm, small_cfg(3));
            let setup: Vec<Update> = if comm.rank() == 0 {
                vec![
                    Update::Insert(WEdge::new(0, 1, 1)),
                    Update::Insert(WEdge::new(1, 2, 2)),
                    Update::Insert(WEdge::new(0, 2, 9)), // the fallback
                ]
            } else {
                Vec::new()
            };
            d.apply_batch(comm, &setup);
            let del: Vec<Update> = if comm.rank() == 0 {
                vec![Update::Delete { u: 1, v: 2 }]
            } else {
                Vec::new()
            };
            let o = d.apply_batch(comm, &del);
            (o, d.collect_msf(comm), d.stats())
        });
        for (o, msf, stats) in out.results {
            assert!(o.resolved);
            assert_eq!(o.tree_deletes, 1);
            assert_eq!(o.msf_weight, 1 + 9, "0-2 replaces the deleted 1-2");
            assert_eq!(msf, vec![WEdge::new(0, 1, 1), WEdge::new(0, 2, 9)]);
            assert!(stats.replacement_candidates >= 1);
        }
    }

    #[test]
    fn reweight_of_a_tree_edge_reroutes_the_forest() {
        let out = Machine::run(MachineConfig::new(2), |comm| {
            let mut d = DynMst::new(comm, small_cfg(3));
            let setup: Vec<Update> = if comm.rank() == 0 {
                vec![
                    Update::Insert(WEdge::new(0, 1, 1)),
                    Update::Insert(WEdge::new(1, 2, 2)),
                    Update::Insert(WEdge::new(0, 2, 5)),
                ]
            } else {
                Vec::new()
            };
            d.apply_batch(comm, &setup);
            // Re-weight the tree edge 1-2 above the 0-2 fallback.
            let up: Vec<Update> = if comm.rank() == 0 {
                vec![Update::Insert(WEdge::new(1, 2, 50))]
            } else {
                Vec::new()
            };
            let o = d.apply_batch(comm, &up);
            (o, d.collect_msf(comm))
        });
        for (o, msf) in out.results {
            assert_eq!(o.msf_weight, 1 + 5);
            assert_eq!(msf, vec![WEdge::new(0, 1, 1), WEdge::new(0, 2, 5)]);
        }
    }

    #[test]
    fn last_writer_wins_within_a_batch() {
        let out = Machine::run(MachineConfig::new(2), |comm| {
            let mut d = DynMst::new(comm, small_cfg(4));
            let batch: Vec<Update> = if comm.rank() == 0 {
                vec![
                    Update::Insert(WEdge::new(0, 1, 7)),
                    Update::Delete { u: 0, v: 1 },
                    Update::Insert(WEdge::new(0, 1, 3)),
                    Update::Insert(WEdge::new(2, 3, 8)),
                    Update::Delete { u: 3, v: 2 },
                ]
            } else {
                Vec::new()
            };
            let o = d.apply_batch(comm, &batch);
            (o, d.collect_edges(comm))
        });
        for (o, edges) in out.results {
            assert_eq!(edges, vec![WEdge::new(0, 1, 3)]);
            assert_eq!(o.msf_weight, 3);
        }
    }

    #[test]
    fn membership_queries_answer_at_the_home_shard() {
        let out = Machine::run(MachineConfig::new(4), |comm| {
            let mut d = DynMst::new(comm, small_cfg(10));
            let batch: Vec<Update> = if comm.rank() == 0 {
                vec![
                    Update::Insert(WEdge::new(0, 9, 1)),
                    Update::Insert(WEdge::new(3, 4, 2)),
                    Update::Insert(WEdge::new(0, 4, 3)),
                    Update::Insert(WEdge::new(9, 4, 9)), // cycle: non-tree
                ]
            } else {
                Vec::new()
            };
            d.apply_batch(comm, &batch);
            // Every PE asks in reversed direction too.
            d.in_msf_batch(comm, &[(9, 0), (4, 3), (4, 0), (4, 9), (7, 8), (5, 5)])
        });
        for r in out.results {
            assert_eq!(r, vec![true, true, true, false, false, false]);
        }
    }

    #[test]
    fn stats_accumulate_across_batches() {
        let out = Machine::run(MachineConfig::new(2), |comm| {
            let mut d = DynMst::new(comm, small_cfg(8));
            for k in 0..4u64 {
                let batch: Vec<Update> = if comm.rank() == 0 {
                    vec![Update::Insert(WEdge::new(k, k + 1, (k + 1) as u32))]
                } else {
                    Vec::new()
                };
                d.apply_batch(comm, &batch);
            }
            d.stats()
        });
        for s in out.results {
            assert_eq!(s.batches, 4);
            assert_eq!(s.inserts, 4);
            assert_eq!(s.resolves, 4);
            assert!(s.certificate_edges > 4 + 3 + 2);
        }
    }
}
