//! Deterministic random update workloads.
//!
//! The differential tests and the `dyn_throughput` benchmark need the
//! same thing: a reproducible stream of insert/delete batches whose live
//! edge set is known at every batch boundary, so a from-scratch
//! reference can be rebuilt and compared. [`WorkloadGen`] is pure
//! splitmix hashing on the seed — replicated construction on every PE
//! yields the identical stream without communication, the same trick the
//! graph generators play.

use crate::Update;
use kamsta_graph::hash::FxHashMap;
use kamsta_graph::{VertexId, WEdge, Weight};

/// splitmix64: the tiny deterministic stream the generators also build
/// on (independent state, so workloads never correlate with weights).
#[derive(Clone, Copy, Debug)]
pub struct SplitMix(pub u64);

impl SplitMix {
    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Replicated generator of random insert/delete batches over the vertex
/// space `[0, n)`. Maintains the live pair set under the maintainer's
/// own semantics (pair-keyed, last write wins), so deletions target
/// edges that exist and [`Self::symmetric_edges`] rebuilds the exact
/// from-scratch reference input at any batch boundary.
pub struct WorkloadGen {
    n: u64,
    rng: SplitMix,
    /// Percent of ops drawn as deletions (when any edge is live).
    delete_pct: u64,
    live: Vec<WEdge>,
    index: FxHashMap<(VertexId, VertexId), usize>,
}

impl WorkloadGen {
    /// A workload over `[0, n)` (`n ≥ 2`) seeded with the live set
    /// `initial` (canonicalised; later duplicates of a pair win).
    pub fn new(n: u64, seed: u64, initial: &[WEdge]) -> Self {
        assert!(n >= 2, "workloads need at least two vertices");
        let mut gen = Self {
            n,
            rng: SplitMix(seed ^ 0xD15C_0B07),
            delete_pct: 40,
            live: Vec::new(),
            index: FxHashMap::default(),
        };
        for e in initial {
            if e.u != e.v {
                gen.upsert(WEdge::new(e.u.min(e.v), e.u.max(e.v), e.w));
            }
        }
        gen
    }

    /// Override the deletion share (percent of ops, default 40).
    pub fn with_delete_pct(mut self, pct: u64) -> Self {
        self.delete_pct = pct.min(100);
        self
    }

    /// Number of live edges.
    pub fn live_len(&self) -> usize {
        self.live.len()
    }

    /// The live set as a canonical sorted edge list.
    pub fn live_edges(&self) -> Vec<WEdge> {
        let mut out = self.live.clone();
        out.sort_unstable();
        out
    }

    /// The live set as the symmetric, globally sorted directed edge list
    /// the static pipeline takes as input.
    pub fn symmetric_edges(&self) -> Vec<WEdge> {
        let mut out: Vec<WEdge> = self.live.iter().flat_map(|e| [*e, e.reversed()]).collect();
        out.sort_unstable();
        out
    }

    /// Draw the next batch of `size` updates, mutating the live set the
    /// way the maintainer will.
    pub fn next_batch(&mut self, size: usize) -> Vec<Update> {
        let mut ops = Vec::with_capacity(size);
        for _ in 0..size {
            let delete = !self.live.is_empty() && self.rng.next_u64() % 100 < self.delete_pct;
            if delete {
                let k = (self.rng.next_u64() % self.live.len() as u64) as usize;
                let e = self.live.swap_remove(k);
                self.index.remove(&(e.u, e.v));
                if k < self.live.len() {
                    self.index.insert((self.live[k].u, self.live[k].v), k);
                }
                ops.push(Update::Delete { u: e.u, v: e.v });
            } else {
                let u = self.rng.next_u64() % self.n;
                let mut v = self.rng.next_u64() % self.n;
                if u == v {
                    v = (v + 1) % self.n;
                }
                let w = (self.rng.next_u64() % 254 + 1) as Weight;
                let e = WEdge::new(u.min(v), u.max(v), w);
                self.upsert(e);
                ops.push(Update::Insert(e));
            }
        }
        ops
    }

    fn upsert(&mut self, e: WEdge) {
        match self.index.get(&(e.u, e.v)) {
            Some(&i) => self.live[i] = e,
            None => {
                self.index.insert((e.u, e.v), self.live.len());
                self.live.push(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_deterministic_and_track_the_live_set() {
        let initial = [WEdge::new(0, 1, 5), WEdge::new(2, 3, 7)];
        let mut a = WorkloadGen::new(16, 9, &initial);
        let mut b = WorkloadGen::new(16, 9, &initial);
        for _ in 0..20 {
            assert_eq!(a.next_batch(8), b.next_batch(8));
            assert_eq!(a.live_edges(), b.live_edges());
        }
        // The live set mirrors applied ops: replay on a map and compare.
        let mut c = WorkloadGen::new(16, 77, &initial);
        let mut mirror: std::collections::BTreeMap<(u64, u64), u32> =
            initial.iter().map(|e| ((e.u, e.v), e.w)).collect();
        for _ in 0..30 {
            for op in c.next_batch(5) {
                match op {
                    Update::Insert(e) => {
                        mirror.insert((e.u, e.v), e.w);
                    }
                    Update::Delete { u, v } => {
                        mirror.remove(&(u.min(v), u.max(v)));
                    }
                }
            }
        }
        let from_mirror: Vec<WEdge> = mirror
            .iter()
            .map(|(&(u, v), &w)| WEdge::new(u, v, w))
            .collect();
        assert_eq!(c.live_edges(), from_mirror);
    }

    #[test]
    fn symmetric_edges_hold_both_directions_sorted() {
        let gen = WorkloadGen::new(8, 1, &[WEdge::new(4, 2, 3), WEdge::new(0, 1, 9)]);
        let sym = gen.symmetric_edges();
        assert_eq!(sym.len(), 4);
        assert!(sym.windows(2).all(|w| w[0] <= w[1]));
        assert!(sym.contains(&WEdge::new(2, 4, 3)) && sym.contains(&WEdge::new(4, 2, 3)));
    }
}
