//! # kamsta-dyn — batch-dynamic MSF maintenance
//!
//! Every other entry point of this workspace recomputes the MSF from
//! scratch. This crate keeps one *alive*: [`DynMst`] holds the current
//! graph and its minimum spanning forest sharded over the PEs by vertex
//! home (the same `block_of` block sharding the generators use), accepts
//! batches of edge insertions and deletions, and re-solves only a small
//! **certificate graph** through the existing distributed Borůvka
//! pipeline instead of the full input.
//!
//! The certificate exploits the paper's own sparsification insight: an
//! MSF has at most `n − 1` edges, so under the unique-weight total order
//! `(w, min(u,v), max(u,v))` the identity
//!
//! ```text
//! MSF(G ∪ I) = MSF(MSF(G) ∪ I)
//! ```
//!
//! makes `MSF ∪ batch` an exact certificate for insert-only batches.
//! Deletions that miss the forest are free. Deletions that hit forest
//! edges split it into components `T'`; the replacement edges then come
//! from a *local* scan of each PE's store shard: contracting the
//! components of `T'`, the new forest can only use, per component pair,
//! the lightest surviving crossing edge (cycle property), so the
//! certificate `T' ∪ batch-inserts ∪ per-pair-lightest-candidates` stays
//! tiny while remaining exact — [`maintainer`] documents the proof
//! obligations on each piece.
//!
//! Updates route to their home PE with count-then-scatter
//! [`kamsta_comm::FlatBuckets`]; shard lookups binary-search the
//! radix-sorted [`kamsta_graph::CEdge::lex_key`] order; and a small
//! [`UpdateStats`] mirror of the Filter-Borůvka statistics records
//! certificate sizes and re-solve rounds. [`workload`] provides the
//! deterministic random update streams the differential tests and the
//! `dyn_throughput` benchmark share.

mod maintainer;
pub mod workload;

pub use maintainer::{
    home_of_pair, vertex_bound, BatchOutcome, DynConfig, DynMst, DynReplicated, DynShard, Update,
    UpdateStats,
};
pub use workload::WorkloadGen;
