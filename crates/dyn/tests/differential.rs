//! Differential testing of the batch-dynamic maintainer: random
//! insert/delete sequences over every generator family, at 1, 4 and 16
//! PEs, asserting after **every** batch that [`DynMst`]'s forest weight
//! and canonical edge set equal a from-scratch [`boruvka_mst`] over the
//! current live edge set — and that the sharded store tracks the live
//! set exactly.
//!
//! Case counts scale with the `PROPTEST_CASES` environment variable
//! (the CI nightly job raises it; see `.github/workflows/ci.yml`).

use kamsta_comm::{Machine, MachineConfig, TransportKind};
use kamsta_core::dist::{boruvka_mst, MstConfig};
use kamsta_dyn::{DynConfig, DynMst, WorkloadGen};
use kamsta_graph::io::distribute_from_root;
use kamsta_graph::{GraphConfig, InputGraph, WEdge};
use proptest::prelude::*;

/// Every generator family at differential-test scale.
fn families() -> Vec<GraphConfig> {
    vec![
        GraphConfig::Gnm { n: 64, m: 400 },
        GraphConfig::Grid2D { rows: 7, cols: 8 },
        GraphConfig::RoadLike { rows: 7, cols: 7 },
        GraphConfig::Rgg2D { n: 60, m: 360 },
        GraphConfig::Rgg3D { n: 60, m: 360 },
        GraphConfig::Rhg {
            n: 60,
            m: 400,
            gamma: 3.0,
        },
        GraphConfig::Rmat { scale: 6, m: 300 },
    ]
}

fn mst_cfg() -> MstConfig {
    MstConfig {
        base_case_constant: 8,
        filter_min_edges_per_pe: 16,
        ..MstConfig::default()
    }
}

/// Bootstrap from the generated family, then drive `batches` random
/// batches, differentially checking the maintainer at every boundary.
fn run_sequence(p: usize, config: GraphConfig, seed: u64, batches: usize, batch_size: usize) {
    Machine::run(MachineConfig::new(p), move |comm| {
        let input = InputGraph::generate(comm, config, seed);
        let n = kamsta_dyn::vertex_bound(comm, &input);
        let cfg = DynConfig::new(n).with_mst(mst_cfg());
        let mut dynmst = DynMst::bootstrap(comm, cfg, &input);

        // Replicated workload: every PE draws the identical stream, so
        // rank 0 can submit the whole batch while all PEs know the live
        // set for the from-scratch reference.
        let initial = dynmst.collect_edges(comm);
        let mut workload = WorkloadGen::new(n, seed ^ 0x0DD5_EED5, &initial);
        for b in 0..batches {
            let batch = workload.next_batch(batch_size);
            let slice: &[_] = if comm.rank() == 0 { &batch } else { &[] };
            let outcome = dynmst.apply_batch(comm, slice);

            // The sharded store must track the live set exactly.
            assert_eq!(
                dynmst.collect_edges(comm),
                workload.live_edges(),
                "store drift: {config:?} p={p} seed={seed} batch {b}"
            );

            // From-scratch reference over the live set.
            let reference = workload.symmetric_edges();
            let slice = distribute_from_root(comm, (comm.rank() == 0).then_some(reference));
            let ref_input = InputGraph::from_sorted_edges(comm, slice);
            let r = boruvka_mst(comm, &ref_input, &mst_cfg());
            let ref_weight = comm.allreduce_sum(r.edges.iter().map(|e| e.w as u64).sum::<u64>());
            assert_eq!(
                outcome.msf_weight, ref_weight,
                "weight mismatch: {config:?} p={p} seed={seed} batch {b}"
            );
            let mut ref_msf: Vec<WEdge> = comm.allgatherv(
                r.edges
                    .iter()
                    .map(|e| {
                        let e = e.wedge();
                        if e.u < e.v {
                            e
                        } else {
                            e.reversed()
                        }
                    })
                    .collect(),
            );
            ref_msf.sort_unstable();
            assert_eq!(
                dynmst.collect_msf(comm),
                ref_msf,
                "edge-set mismatch: {config:?} p={p} seed={seed} batch {b}"
            );
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2))]

    #[test]
    fn every_family_differentially_correct_p1(seed in 0u64..1 << 40) {
        for config in families() {
            run_sequence(1, config, seed, 4, 12);
        }
    }

    #[test]
    fn every_family_differentially_correct_p4(seed in 0u64..1 << 40) {
        for config in families() {
            run_sequence(4, config, seed, 4, 12);
        }
    }

    #[test]
    fn every_family_differentially_correct_p16(seed in 0u64..1 << 40) {
        for config in families() {
            run_sequence(16, config, seed, 3, 12);
        }
    }

    #[test]
    fn delete_heavy_sequences_force_replacements(seed in 0u64..1 << 40) {
        // 70% deletions drain the graph, so most batches hit the forest
        // and exercise the replacement-candidate path.
        Machine::run(MachineConfig::new(4), move |comm| {
            let input = InputGraph::generate(comm, GraphConfig::Gnm { n: 48, m: 280 }, seed);
            let n = 48;
            let cfg = DynConfig::new(n).with_mst(mst_cfg());
            let mut dynmst = DynMst::bootstrap(comm, cfg, &input);
            let initial = dynmst.collect_edges(comm);
            let mut workload =
                WorkloadGen::new(n, seed ^ 0x0DE1_E7E5, &initial).with_delete_pct(70);
            for _ in 0..6 {
                let batch = workload.next_batch(10);
                let slice: &[_] = if comm.rank() == 0 { &batch } else { &[] };
                let outcome = dynmst.apply_batch(comm, slice);
                let reference = workload.symmetric_edges();
                let slice = distribute_from_root(comm, (comm.rank() == 0).then_some(reference));
                let ref_input = InputGraph::from_sorted_edges(comm, slice);
                let r = boruvka_mst(comm, &ref_input, &mst_cfg());
                let ref_weight =
                    comm.allreduce_sum(r.edges.iter().map(|e| e.w as u64).sum::<u64>());
                assert_eq!(outcome.msf_weight, ref_weight);
            }
            assert!(
                dynmst.stats().tree_deletes > 0,
                "delete-heavy stream never hit the forest (seed {seed})"
            );
        });
    }
}

/// The acceptance workload: 1000 random operations on GNM at p = 16,
/// weight and edge set checked at every one of the 20 batch boundaries.
#[test]
fn dyn_pipeline_is_transport_invariant() {
    // The batch-dynamic pipeline as a cross-transport oracle: the same
    // update stream must yield identical forests (weight, edge set) and
    // bit-identical modeled cost counters under every backend, at every
    // acceptance p. (The full differential corpus additionally runs
    // under `KAMSTA_TRANSPORT={bytes,sockets}` in CI's matrix legs.)
    let run = |p: usize, t: TransportKind| {
        let config = GraphConfig::Gnm { n: 64, m: 400 };
        let out = Machine::run(MachineConfig::new(p).with_transport(t), move |comm| {
            let input = InputGraph::generate(comm, config, 23);
            let n = kamsta_dyn::vertex_bound(comm, &input);
            let mut dynmst = DynMst::bootstrap(comm, DynConfig::new(n).with_mst(mst_cfg()), &input);
            let initial = dynmst.collect_edges(comm);
            let mut workload = WorkloadGen::new(n, 0x7A57, &initial);
            for _ in 0..4 {
                let batch = workload.next_batch(16);
                let slice: &[_] = if comm.rank() == 0 { &batch } else { &[] };
                dynmst.apply_batch(comm, slice);
            }
            (dynmst.msf_weight(), dynmst.collect_msf(comm))
        });
        (out.results, out.stats)
    };
    for p in [1usize, 2, 4, 16] {
        let (res_c, stats_c) = run(p, TransportKind::Cells);
        for t in [TransportKind::Bytes, TransportKind::Sockets] {
            let (res_b, stats_b) = run(p, t);
            assert_eq!(
                res_c, res_b,
                "p={p} {t:?}: dyn results diverge across transports"
            );
            assert_eq!(
                stats_c, stats_b,
                "p={p} {t:?}: dyn cost counters diverge across transports"
            );
        }
    }
}

#[test]
fn gnm_p16_thousand_op_workload() {
    run_sequence(16, GraphConfig::Gnm { n: 96, m: 640 }, 42, 20, 50);
}

/// Degenerate dynamic inputs: an empty maintainer accepts deletes and
/// duplicate inserts; draining everything leaves an empty forest.
#[test]
fn drain_to_empty_and_refill() {
    Machine::run(MachineConfig::new(4), |comm| {
        let cfg = DynConfig::new(8).with_mst(mst_cfg());
        let mut dynmst = DynMst::new(comm, cfg);
        let mk = |ops: Vec<kamsta_dyn::Update>, rank: usize| -> Vec<kamsta_dyn::Update> {
            if rank == 0 {
                ops
            } else {
                Vec::new()
            }
        };
        use kamsta_dyn::Update::*;
        // Deleting from an empty graph is a no-op.
        let o = dynmst.apply_batch(comm, &mk(vec![Delete { u: 0, v: 1 }], comm.rank()));
        assert!(!o.resolved);
        assert_eq!(o.msf_weight, 0);
        // Build a path, then delete every edge.
        let path: Vec<kamsta_dyn::Update> =
            (0..7).map(|k| Insert(WEdge::new(k, k + 1, 1))).collect();
        dynmst.apply_batch(comm, &mk(path, comm.rank()));
        assert_eq!(dynmst.msf_edge_count(), 7);
        let wipe: Vec<kamsta_dyn::Update> = (0..7).map(|k| Delete { u: k, v: k + 1 }).collect();
        let o = dynmst.apply_batch(comm, &mk(wipe, comm.rank()));
        assert_eq!(o.msf_weight, 0);
        assert_eq!(o.msf_edges, 0);
        assert_eq!(dynmst.collect_edges(comm), Vec::new());
        // Refill still works after the drain.
        let o = dynmst.apply_batch(
            comm,
            &mk(
                vec![Insert(WEdge::new(2, 5, 3)), Insert(WEdge::new(2, 5, 4))],
                comm.rank(),
            ),
        );
        assert_eq!(o.msf_weight, 4, "duplicate insert re-weights the pair");
    });
}
