//! Cross-p determinism: on fixed seeds, [`boruvka_mst`] must report the
//! *identical MSF edge-id set* — not just the same weight — for
//! p ∈ {1, 2, 4, 16}. The generators are partition-invariant and ids are
//! global sorted positions, so the input id space is the same at every
//! p; the canonicalisation in `REDISTRIBUTE MST` (minimal-id `u < v`
//! copy per claim) then makes the reported set a pure function of the
//! undirected MSF, which the unique-weight order `(w, min, max)` makes
//! unique.

use kamsta_comm::{Machine, MachineConfig, TransportKind};
use kamsta_core::dist::{boruvka_mst, filter_mst, MstConfig};
use kamsta_graph::{GraphConfig, InputGraph};

fn cfg() -> MstConfig {
    MstConfig {
        base_case_constant: 8,
        filter_min_edges_per_pe: 16,
        ..MstConfig::default()
    }
}

fn instances() -> Vec<(GraphConfig, u64)> {
    vec![
        (GraphConfig::Gnm { n: 90, m: 640 }, 3),
        (GraphConfig::Grid2D { rows: 9, cols: 9 }, 5),
        (GraphConfig::RoadLike { rows: 8, cols: 9 }, 7),
        (GraphConfig::Rgg2D { n: 80, m: 500 }, 9),
        (GraphConfig::Rgg3D { n: 80, m: 500 }, 11),
        (
            GraphConfig::Rhg {
                n: 80,
                m: 520,
                gamma: 3.0,
            },
            13,
        ),
        (GraphConfig::Rmat { scale: 6, m: 400 }, 17),
    ]
}

/// The globally sorted MSF edge-id set of one run.
fn boruvka_ids(p: usize, config: GraphConfig, seed: u64) -> Vec<u64> {
    let out = Machine::run(MachineConfig::new(p), move |comm| {
        let input = InputGraph::generate(comm, config, seed);
        let r = boruvka_mst(comm, &input, &cfg());
        r.edges.iter().map(|e| e.id).collect::<Vec<u64>>()
    });
    let mut ids: Vec<u64> = out.results.into_iter().flatten().collect();
    ids.sort_unstable();
    ids
}

fn filter_ids(p: usize, config: GraphConfig, seed: u64) -> Vec<u64> {
    let out = Machine::run(MachineConfig::new(p), move |comm| {
        let input = InputGraph::generate(comm, config, seed);
        let (r, _) = filter_mst(comm, &input, &cfg());
        r.edges.iter().map(|e| e.id).collect::<Vec<u64>>()
    });
    let mut ids: Vec<u64> = out.results.into_iter().flatten().collect();
    ids.sort_unstable();
    ids
}

#[test]
fn boruvka_msf_id_set_identical_across_p() {
    for (config, seed) in instances() {
        let base = boruvka_ids(1, config, seed);
        assert!(!base.is_empty(), "{config:?} produced an empty forest");
        for p in [2usize, 4, 16] {
            let ids = boruvka_ids(p, config, seed);
            assert_eq!(
                ids, base,
                "{config:?} seed {seed}: id set differs between p=1 and p={p}"
            );
        }
    }
}

#[test]
fn filter_and_boruvka_agree_on_the_id_set() {
    // Both algorithms walk the same unique-weight order, so after
    // canonicalisation they must claim the same input edges.
    for (config, seed) in instances().into_iter().take(3) {
        let b = boruvka_ids(4, config, seed);
        let f = filter_ids(4, config, seed);
        assert_eq!(b, f, "{config:?} seed {seed}");
    }
}

#[test]
fn transports_agree_on_id_sets_and_modeled_cost_counters() {
    // The cross-transport oracle at the pipeline level: the whole MST
    // run — generation, preparation, Borůvka — must produce the same
    // MSF edge-id set *and* bit-identical modeled cost counters under
    // the shared-cells, byte-stream and socket backends, at every p.
    // Charges sit above the transport boundary, so any divergence is a
    // transport bug, not a modeling choice.
    let run = |p: usize, config: GraphConfig, seed: u64, t: TransportKind| {
        let out = Machine::run(MachineConfig::new(p).with_transport(t), move |comm| {
            let input = InputGraph::generate(comm, config, seed);
            let r = boruvka_mst(comm, &input, &cfg());
            r.edges.iter().map(|e| e.id).collect::<Vec<u64>>()
        });
        let mut ids: Vec<u64> = out.results.iter().flatten().copied().collect();
        ids.sort_unstable();
        let (msgs, bytes) = (out.total_messages(), out.total_bytes());
        (ids, out.stats, msgs, bytes)
    };
    for (config, seed) in instances().into_iter().take(4) {
        for p in [1usize, 2, 4, 16] {
            let (ids_c, stats_c, msgs_c, bytes_c) = run(p, config, seed, TransportKind::Cells);
            for t in [TransportKind::Bytes, TransportKind::Sockets] {
                let (ids_b, stats_b, msgs_b, bytes_b) = run(p, config, seed, t);
                assert_eq!(ids_c, ids_b, "{config:?} p={p} {t:?}: MSF id sets diverge");
                assert_eq!(
                    msgs_c, msgs_b,
                    "{config:?} p={p} {t:?}: total_messages diverge"
                );
                assert_eq!(
                    bytes_c, bytes_b,
                    "{config:?} p={p} {t:?}: total_bytes diverge"
                );
                for (rank, (c, b)) in stats_c.iter().zip(&stats_b).enumerate() {
                    assert_eq!(c, b, "{config:?} p={p} rank={rank} {t:?}: PeStats diverge");
                }
            }
        }
    }
}

#[test]
fn hybrid_threads_leave_ids_and_charge_counters_bit_identical() {
    // The t-axis oracle for the intra-PE thread pool: threads_per_pe
    // changes which OS threads execute the local kernels and how
    // modeled_time is scaled, but the MSF id set and the *counter*
    // charges (local_ops, messages, bytes) are logical quantities that
    // must be bit-identical across t — per rank, not just in aggregate.
    // The GNM instance is big enough (m = 40k) that per-PE slices clear
    // the parallel kernels' sequential cutoffs at p ∈ {1, 4}.
    let run = |p: usize, t: usize, config: GraphConfig, seed: u64, tr: TransportKind| {
        let out = Machine::run(
            MachineConfig::new(p).with_threads(t).with_transport(tr),
            move |comm| {
                let input = InputGraph::generate(comm, config, seed);
                let r = boruvka_mst(comm, &input, &cfg());
                r.edges.iter().map(|e| e.id).collect::<Vec<u64>>()
            },
        );
        let mut ids: Vec<u64> = out.results.iter().flatten().copied().collect();
        ids.sort_unstable();
        let counters: Vec<(u64, u64, u64)> = out
            .stats
            .iter()
            .map(|s| (s.local_ops, s.messages, s.bytes))
            .collect();
        (ids, counters)
    };
    let big = (
        GraphConfig::Gnm {
            n: 5_000,
            m: 40_000,
        },
        41,
    );
    for (config, seed) in instances().into_iter().take(2).chain([big]) {
        let large = matches!(config, GraphConfig::Gnm { m, .. } if m > 1_000);
        let ps: &[usize] = if large { &[1, 4] } else { &[1, 4, 16] };
        for &p in ps {
            let (ids_1, counters_1) = run(p, 1, config, seed, TransportKind::Cells);
            assert!(!ids_1.is_empty());
            for t in [2usize, 8] {
                let (ids_t, counters_t) = run(p, t, config, seed, TransportKind::Cells);
                assert_eq!(ids_t, ids_1, "{config:?} p={p} t={t}: id set diverges");
                assert_eq!(
                    counters_t, counters_1,
                    "{config:?} p={p} t={t}: per-rank charge counters diverge"
                );
            }
        }
        if large {
            // Same oracle across the wire transports at p=4, t=8.
            let (ids_1, counters_1) = run(4, 1, config, seed, TransportKind::Cells);
            for tr in [TransportKind::Bytes, TransportKind::Sockets] {
                let (ids_t, counters_t) = run(4, 8, config, seed, tr);
                assert_eq!(ids_t, ids_1, "{config:?} {tr:?} p=4 t=8: id set diverges");
                assert_eq!(
                    counters_t, counters_1,
                    "{config:?} {tr:?}: counters diverge"
                );
            }
        }
    }
}

#[test]
fn preprocessing_does_not_change_the_id_set() {
    // The Fig. 4 ablation flips which stage claims each edge; the
    // canonical reporting must hide that.
    let config = GraphConfig::Grid2D { rows: 10, cols: 10 };
    let with = boruvka_ids(4, config, 21);
    let out = Machine::run(MachineConfig::new(4), move |comm| {
        let input = InputGraph::generate(comm, config, 21);
        let r = boruvka_mst(comm, &input, &cfg().without_preprocessing());
        r.edges.iter().map(|e| e.id).collect::<Vec<u64>>()
    });
    let mut without: Vec<u64> = out.results.into_iter().flatten().collect();
    without.sort_unstable();
    assert_eq!(with, without);
}
