//! Diagnostic: walk Algorithm 1's pipeline stage by stage and verify the
//! symmetric-closure invariant (every dst appears as a src somewhere)
//! after every stage.

use kamsta_comm::{Machine, MachineConfig};
use kamsta_graph::{CEdge, DistGraph, GraphConfig, InputGraph, WEdge};
use std::collections::HashSet;

fn check_closure(stage: &str, all_edges: &[CEdge]) {
    let srcs: HashSet<u64> = all_edges.iter().map(|e| e.u).collect();
    for e in all_edges {
        assert!(
            srcs.contains(&e.v),
            "{stage}: dst {} of edge {:?} is not a source anywhere",
            e.v,
            e
        );
    }
    // Direction symmetry with equal weights.
    let dir: HashSet<(u64, u64, u32)> = all_edges.iter().map(|e| (e.u, e.v, e.w)).collect();
    for e in all_edges {
        assert!(
            dir.contains(&(e.v, e.u, e.w)),
            "{stage}: edge {:?} lacks its reverse with equal weight",
            e
        );
    }
}

#[test]
fn pipeline_stages_preserve_symmetric_closure() {
    let p = 3;
    let out = Machine::run(MachineConfig::new(p), move |comm| {
        use kamsta_core::dist::*;
        use kamsta_core::{Phase, Phased};

        let input = InputGraph::generate(comm, GraphConfig::Grid2D { rows: 8, cols: 8 }, 7);
        let cfg = MstConfig {
            base_case_constant: 8,
            preprocessing: false,
            ..MstConfig::default()
        };
        let mut stages: Vec<(String, Vec<CEdge>)> = Vec::new();
        stages.push(("input".into(), input.graph.edges.clone()));

        let mut ph = Phased::new(comm);
        let mut g = input.graph.clone();
        for round in 0..6 {
            if g.n_global <= cfg.base_threshold(comm.size()) || g.m_global == 0 {
                break;
            }
            let sels = min_edges(comm, &g);
            let outcome = contract_components(comm, &g, &sels);
            let labels = outcome.labels;
            let label_of = |v: u64| labels.get(&v).copied().unwrap_or(v);
            let ghost = exchange_labels(comm, &g, label_of);
            let relabeled = relabel(comm, &g, &g.edges, label_of, &ghost);
            stages.push((format!("relabel round {round}"), relabeled.clone()));
            g = ph.measure(Phase::Redistribute, |c| redistribute(c, relabeled, &cfg));
            stages.push((format!("redistribute round {round}"), g.edges.clone()));
        }
        stages
    });

    // Merge per-PE stage snapshots and check closure at each stage.
    let n_stages = out.results[0].len();
    for s in 0..n_stages {
        let name = &out.results[0][s].0;
        let mut all = Vec::new();
        for pe in &out.results {
            all.extend(pe[s].1.iter().copied());
        }
        check_closure(name, &all);
    }
}

#[test]
fn preprocessing_preserves_consistency() {
    let p = 2;
    let out = Machine::run(MachineConfig::new(p), move |comm| {
        use kamsta_core::dist::*;

        let input = InputGraph::generate(comm, GraphConfig::Grid2D { rows: 6, cols: 6 }, 3);
        let cfg = MstConfig::default();
        let g = input.graph.clone();
        let pre = local_contract(comm, &g, &cfg);
        let labels = pre.labels.clone();
        let label_of = |v: u64| labels.get(&v).copied().unwrap_or(v);
        let ghost = exchange_labels(comm, &g, label_of);
        let relabeled = relabel(comm, &g, &pre.edges, label_of, &ghost);
        let g2 = redistribute(comm, relabeled.clone(), &cfg);
        (relabeled, g2.edges.clone(), pre.applied)
    });
    assert!(out.results.iter().any(|(_, _, a)| *a), "gate should pass");
    let relabeled: Vec<CEdge> = out.results.iter().flat_map(|(r, _, _)| r.clone()).collect();
    check_closure("preprocess+relabel", &relabeled);
    let redist: Vec<CEdge> = out.results.iter().flat_map(|(_, r, _)| r.clone()).collect();
    check_closure("preprocess+redistribute", &redist);
}

#[test]
fn full_driver_on_tiny_grid() {
    let p = 2;
    let out = Machine::run(MachineConfig::new(p), move |comm| {
        use kamsta_core::dist::*;
        let input = InputGraph::generate(comm, GraphConfig::Grid2D { rows: 4, cols: 4 }, 1);
        let cfg = MstConfig {
            base_case_constant: 2,
            preprocessing: false,
            ..MstConfig::default()
        };
        let all: Vec<WEdge> = input.graph.edges.iter().map(|e| e.wedge()).collect();
        let res = boruvka_mst(comm, &input, &cfg);
        (all, res.edges.iter().map(|e| e.wedge()).collect::<Vec<_>>())
    });
    let graph: Vec<WEdge> = out.results.iter().flat_map(|(g, _)| g.clone()).collect();
    let msf: Vec<WEdge> = out.results.iter().flat_map(|(_, m)| m.clone()).collect();
    kamsta_core::verify_msf(&graph, &msf).unwrap();
}

// Re-export needed for the diagnostic to compile when DistGraph is used.
#[allow(dead_code)]
fn _touch(g: &DistGraph) -> usize {
    g.edges.len()
}
