//! Failure-path and stress tests for the distributed algorithms:
//! degenerate inputs, multigraphs, extreme skew, more PEs than data.

use kamsta_comm::{Machine, MachineConfig};
use kamsta_core::dist::{boruvka_mst, filter_mst, MstConfig};
use kamsta_core::verify_msf;
use kamsta_graph::io::distribute_from_root;
use kamsta_graph::{InputGraph, WEdge};

fn cfg() -> MstConfig {
    MstConfig {
        base_case_constant: 4,
        filter_min_edges_per_pe: 8,
        ..MstConfig::default()
    }
}

/// Run both algorithms on a replicated edge list and verify.
fn check(p: usize, edges: Vec<WEdge>) {
    let for_run = edges.clone();
    let out = Machine::run(MachineConfig::new(p), move |comm| {
        let slice = distribute_from_root(comm, (comm.rank() == 0).then(|| for_run.clone()));
        let input = InputGraph::from_sorted_edges(comm, slice);
        let b = boruvka_mst(comm, &input, &cfg());
        let (f, _) = filter_mst(comm, &input, &cfg());
        (
            b.edges.iter().map(|e| e.wedge()).collect::<Vec<_>>(),
            f.edges.iter().map(|e| e.wedge()).collect::<Vec<_>>(),
        )
    });
    let msf_b: Vec<WEdge> = out.results.iter().flat_map(|(b, _)| b.clone()).collect();
    let msf_f: Vec<WEdge> = out.results.iter().flat_map(|(_, f)| f.clone()).collect();
    verify_msf(&edges, &msf_b).unwrap_or_else(|e| panic!("boruvka p={p}: {e}"));
    verify_msf(&edges, &msf_f).unwrap_or_else(|e| panic!("filter p={p}: {e}"));
}

fn sym(pairs: &[(u64, u64, u32)]) -> Vec<WEdge> {
    let mut out = Vec::new();
    for &(u, v, w) in pairs {
        out.push(WEdge::new(u, v, w));
        out.push(WEdge::new(v, u, w));
    }
    out.sort_unstable();
    out
}

#[test]
fn empty_graph() {
    let out = Machine::run(MachineConfig::new(3), |comm| {
        let input = InputGraph::from_sorted_edges(comm, Vec::new());
        let b = boruvka_mst(comm, &input, &cfg());
        b.edges.len()
    });
    assert!(out.results.iter().all(|&n| n == 0));
}

#[test]
fn single_edge_many_pes() {
    check(6, sym(&[(0, 1, 5)]));
}

#[test]
fn multigraph_parallel_input_edges() {
    // The same pair with several weights — input-level multigraph.
    let mut edges = sym(&[(0, 1, 5), (1, 2, 2), (0, 2, 9)]);
    edges.extend(sym(&[(0, 1, 3), (1, 2, 7)]));
    edges.sort_unstable();
    check(4, edges);
}

#[test]
fn star_graph_shared_hub_across_pes() {
    // Vertex 0 has degree 40: its edge range spans every PE, exercising
    // the shared-vertex machinery hard.
    let pairs: Vec<(u64, u64, u32)> = (1..=40).map(|k| (0, k, (k % 13 + 1) as u32)).collect();
    check(5, sym(&pairs));
}

#[test]
fn double_star_two_hubs() {
    let mut pairs: Vec<(u64, u64, u32)> = (1..=20).map(|k| (0, k, (k % 7 + 1) as u32)).collect();
    pairs.extend((1..=20).map(|k| (100, 100 + k, (k % 5 + 1) as u32)));
    pairs.push((0, 100, 200));
    check(4, sym(&pairs));
}

#[test]
fn all_equal_weights() {
    let pairs: Vec<(u64, u64, u32)> = (0..30)
        .map(|k| (k, (k + 1) % 30, 7))
        .chain((0..15).map(|k| (k, k + 15, 7)))
        .collect();
    check(4, sym(&pairs));
}

#[test]
fn more_pes_than_edges() {
    check(12, sym(&[(0, 1, 1), (1, 2, 2), (5, 6, 3)]));
}

/// The canonical MSF of one run: both algorithms' edge sets, each as a
/// sorted list of `u < v` wedges.
fn canonical_msf(p: usize, edges: &[WEdge]) -> (Vec<WEdge>, Vec<WEdge>) {
    let for_run = edges.to_vec();
    let out = Machine::run(MachineConfig::new(p), move |comm| {
        let slice = distribute_from_root(comm, (comm.rank() == 0).then(|| for_run.clone()));
        let input = InputGraph::from_sorted_edges(comm, slice);
        let b = boruvka_mst(comm, &input, &cfg());
        let (f, _) = filter_mst(comm, &input, &cfg());
        let canon = |e: &kamsta_graph::CEdge| {
            let e = e.wedge();
            if e.u < e.v {
                e
            } else {
                e.reversed()
            }
        };
        (
            b.edges.iter().map(canon).collect::<Vec<_>>(),
            f.edges.iter().map(canon).collect::<Vec<_>>(),
        )
    });
    let mut msf_b: Vec<WEdge> = out.results.iter().flat_map(|(b, _)| b.clone()).collect();
    let mut msf_f: Vec<WEdge> = out.results.iter().flat_map(|(_, f)| f.clone()).collect();
    msf_b.sort_unstable();
    msf_f.sort_unstable();
    (msf_b, msf_f)
}

/// Tie-breaking corpus: inputs made almost entirely of weight ties must
/// still yield one *identical* canonical forest at every PE count — the
/// `(w, min, max)` determinism the differential harness builds on.
fn check_tiebreak_invariance(edges: Vec<WEdge>) {
    let (base_b, base_f) = canonical_msf(1, &edges);
    assert_eq!(base_b, base_f, "algorithms disagree at p=1");
    verify_msf(&edges, &base_b).unwrap();
    for p in [2usize, 4, 7, 16] {
        let (b, f) = canonical_msf(p, &edges);
        assert_eq!(b, base_b, "boruvka p={p} broke a tie differently");
        assert_eq!(f, base_f, "filter p={p} broke a tie differently");
    }
}

#[test]
fn star_graph_ties_deterministic_across_p() {
    // A hub with every spoke at the same weight: n − 1 equally good
    // trees by weight, exactly one by (w, min, max).
    check_tiebreak_invariance(sym(&(1..40u64).map(|k| (0, k, 9)).collect::<Vec<_>>()));
}

#[test]
fn all_equal_weights_deterministic_across_p() {
    // A clique where every weight collides.
    let mut pairs = Vec::new();
    for i in 0..16u64 {
        for j in (i + 1)..16 {
            pairs.push((i, j, 42));
        }
    }
    check_tiebreak_invariance(sym(&pairs));
}

#[test]
fn duplicate_edges_deterministic_across_p() {
    // Exact duplicate copies (multigraph) on top of equal-weight cycles.
    let mut edges = Vec::new();
    for k in 0..24u64 {
        for _ in 0..3 {
            edges.push(WEdge::new(k, (k + 1) % 24, 5));
            edges.push(WEdge::new((k + 1) % 24, k, 5));
        }
        edges.push(WEdge::new(k, (k + 7) % 24, 5));
        edges.push(WEdge::new((k + 7) % 24, k, 5));
    }
    edges.sort_unstable();
    check_tiebreak_invariance(edges);
}

#[test]
fn long_path_many_rounds() {
    // A path forces Θ(log n) Borůvka rounds with alternating weights.
    let pairs: Vec<(u64, u64, u32)> = (0..200)
        .map(|k| (k, k + 1, ((k * 37) % 251 + 1) as u32))
        .collect();
    check(6, sym(&pairs));
}

#[test]
fn two_cliques_one_bridge() {
    let mut pairs = Vec::new();
    for i in 0..12u64 {
        for j in (i + 1)..12 {
            pairs.push((i, j, ((i * 12 + j) % 100 + 10) as u32));
            pairs.push((100 + i, 100 + j, ((i * 7 + j) % 100 + 10) as u32));
        }
    }
    pairs.push((5, 105, 255));
    check(4, sym(&pairs));
}

#[test]
fn duplicate_edges_straddling_pe_boundary() {
    // Regression: identical duplicate directed edges (same u, v, w) can
    // end up on different PEs when a high-degree vertex's edge range
    // spans a boundary. The push-based label exchange routed by
    // home-of-reverse-edge delivered to only one holder; the pull-based
    // protocol must serve both.
    let mut edges = Vec::new();
    // Hub vertex 10 with many duplicated incident edges.
    for k in 0..12u64 {
        let v = 20 + k;
        for _ in 0..3 {
            edges.push(WEdge::new(10, v, (k % 5 + 1) as u32));
            edges.push(WEdge::new(v, 10, (k % 5 + 1) as u32));
        }
    }
    // A few spokes between the leaves to create contraction chains.
    for k in 0..11u64 {
        edges.push(WEdge::new(20 + k, 21 + k, 9));
        edges.push(WEdge::new(21 + k, 20 + k, 9));
    }
    edges.sort_unstable();
    for p in [2, 3, 5, 7] {
        // NOTE: verify_msf needs a simple-graph reference; dedup copies
        // for the reference but feed the multigraph to the algorithms.
        let mut simple = edges.clone();
        simple.dedup();
        let for_run = edges.clone();
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let slice = distribute_from_root(comm, (comm.rank() == 0).then(|| for_run.clone()));
            let input = InputGraph::from_sorted_edges(comm, slice);
            let b = boruvka_mst(comm, &input, &cfg());
            let (f, _) = filter_mst(comm, &input, &cfg());
            (
                b.edges.iter().map(|e| e.wedge()).collect::<Vec<_>>(),
                f.edges.iter().map(|e| e.wedge()).collect::<Vec<_>>(),
            )
        });
        let msf_b: Vec<WEdge> = out.results.iter().flat_map(|(b, _)| b.clone()).collect();
        let msf_f: Vec<WEdge> = out.results.iter().flat_map(|(_, f)| f.clone()).collect();
        verify_msf(&simple, &msf_b).unwrap_or_else(|e| panic!("boruvka p={p}: {e}"));
        verify_msf(&simple, &msf_f).unwrap_or_else(|e| panic!("filter p={p}: {e}"));
    }
}

#[test]
fn disconnected_many_components() {
    // 10 components of 3 vertices each.
    let mut pairs = Vec::new();
    for c in 0..10u64 {
        let base = c * 10;
        pairs.push((base, base + 1, (c + 1) as u32));
        pairs.push((base + 1, base + 2, (c + 2) as u32));
    }
    let edges = sym(&pairs);
    let for_run = edges.clone();
    let out = Machine::run(MachineConfig::new(4), move |comm| {
        let slice = distribute_from_root(comm, (comm.rank() == 0).then(|| for_run.clone()));
        let input = InputGraph::from_sorted_edges(comm, slice);
        let b = boruvka_mst(comm, &input, &cfg());
        b.edges.iter().map(|e| e.wedge()).collect::<Vec<_>>()
    });
    let msf: Vec<WEdge> = out.results.into_iter().flatten().collect();
    verify_msf(&edges, &msf).unwrap();
    assert_eq!(msf.len(), 20, "10 components × 2 edges each");
}
