//! Shared-memory parallel Borůvka with the Min-Priority-Write technique
//! (Sec. VI-B: "Our multithreaded implementation uses the
//! Min-Priority-Write approach for minimum edge computation … from a fast
//! shared-memory MST algorithm \[15\]").
//!
//! This module doubles as the repository's stand-in for state-of-the-art
//! single-node MST codes in the Sec. VII-C comparison (DESIGN.md S7), and
//! provides the multithreaded kernels used inside hybrid PEs.

mod min_write;
mod par_boruvka;

pub use min_write::MinWriteSlot;
pub use par_boruvka::par_boruvka;
