//! Min-priority-write: lock-free "write x if it has higher priority than
//! the current value" via a CAS loop — the GBBS/parlay primitive the
//! paper borrows for multithreaded minimum-edge computation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sentinel meaning "empty".
pub const EMPTY: u64 = u64::MAX;

/// One atomic slot holding the index of the current minimum candidate.
#[derive(Debug)]
pub struct MinWriteSlot {
    inner: AtomicU64,
}

impl Default for MinWriteSlot {
    fn default() -> Self {
        Self::new()
    }
}

impl MinWriteSlot {
    pub fn new() -> Self {
        Self {
            inner: AtomicU64::new(EMPTY),
        }
    }

    /// Reset to empty (single-threaded phase).
    pub fn reset(&self) {
        self.inner.store(EMPTY, Ordering::Relaxed);
    }

    /// Current value, or `EMPTY`.
    pub fn load(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }

    /// Write `candidate` iff `less(candidate, current)` under the caller's
    /// priority order; loops on CAS contention. `less` must be a strict
    /// total order for termination.
    pub fn write_min(&self, candidate: u64, less: impl Fn(u64, u64) -> bool) {
        let mut cur = self.inner.load(Ordering::Relaxed);
        loop {
            if cur != EMPTY && !less(candidate, cur) {
                return;
            }
            match self.inner.compare_exchange_weak(
                cur,
                candidate,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn sequential_min_write() {
        let slot = MinWriteSlot::new();
        assert_eq!(slot.load(), EMPTY);
        slot.write_min(5, |a, b| a < b);
        slot.write_min(9, |a, b| a < b);
        slot.write_min(2, |a, b| a < b);
        assert_eq!(slot.load(), 2);
        slot.reset();
        assert_eq!(slot.load(), EMPTY);
    }

    #[test]
    fn concurrent_writers_converge_to_min() {
        let slot = MinWriteSlot::new();
        (0..10_000u64).into_par_iter().for_each(|i| {
            // Scrambled write order.
            let v = (i * 2_654_435_761) % 100_000;
            slot.write_min(v, |a, b| a < b);
        });
        let expected = (0..10_000u64)
            .map(|i| (i * 2_654_435_761) % 100_000)
            .min()
            .unwrap();
        assert_eq!(slot.load(), expected);
    }

    #[test]
    fn custom_priority_order() {
        // Priority by decreasing value (max-write).
        let slot = MinWriteSlot::new();
        for v in [3u64, 9, 1, 7] {
            slot.write_min(v, |a, b| a > b);
        }
        assert_eq!(slot.load(), 9);
    }
}
