//! Rayon-parallel Borůvka over an edge list: min-priority-write minimum
//! edge selection, parallel hooking, pointer jumping and edge relabeling.

use super::min_write::{MinWriteSlot, EMPTY};
use crate::seq::VertexIndex;
use kamsta_graph::WEdge;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Compute the minimum spanning forest in parallel. Accepts undirected or
/// symmetric directed inputs; each MSF edge is reported once.
pub fn par_boruvka(edges: &[WEdge]) -> Vec<WEdge> {
    let idx = VertexIndex::build(edges);
    let n = idx.len();
    if n == 0 {
        return Vec::new();
    }
    // Working edge set over dense endpoints, keeping original endpoints
    // for output. (cur_u, cur_v, original edge)
    let mut work: Vec<(u32, u32, WEdge)> = edges
        .par_iter()
        .filter(|e| e.u != e.v)
        .map(|e| (idx.dense(e.u), idx.dense(e.v), *e))
        .collect();
    let mut msf: Vec<WEdge> = Vec::new();
    let best: Vec<MinWriteSlot> = (0..n).map(|_| MinWriteSlot::new()).collect();

    while !work.is_empty() {
        // 1. Min-priority-write the lightest incident edge per vertex.
        best.par_iter().for_each(|s| s.reset());
        let key = |k: u64| {
            let e = &work[k as usize].2;
            e.weight_key()
        };
        work.par_iter().enumerate().for_each(|(k, (u, v, _))| {
            // Strict total order: weight_key() ties (parallel edges with
            // equal (w, u, v)) break on the work index, so concurrent
            // CAS races always converge to one winner regardless of
            // interleaving — the selection is deterministic across
            // thread counts.
            let less = |a: u64, b: u64| (key(a), a) < (key(b), b);
            best[*u as usize].write_min(k as u64, less);
            best[*v as usize].write_min(k as u64, less);
        });

        // 2. Hook: parent = other endpoint of the chosen edge; resolve
        //    2-cycles by keeping the smaller endpoint as root.
        let parent: Vec<AtomicU64> = (0..n).map(|v| AtomicU64::new(v as u64)).collect();
        (0..n).into_par_iter().for_each(|v| {
            let b = best[v].load();
            if b == EMPTY {
                return;
            }
            let (u, w, _) = work[b as usize];
            let other = if u as usize == v { w } else { u };
            parent[v].store(other as u64, Ordering::Relaxed);
        });
        // 2-cycle resolution: if parent[parent[v]] == v, smaller id wins.
        (0..n).into_par_iter().for_each(|v| {
            let p = parent[v].load(Ordering::Relaxed) as usize;
            if p != v && parent[p].load(Ordering::Relaxed) as usize == v && v < p {
                parent[v].store(v as u64, Ordering::Relaxed);
            }
        });

        // 3. Emit MST edges: every non-root vertex's chosen edge. In a
        //    2-cycle exactly one side stays non-root, so the undirected
        //    edge is emitted once.
        let new_edges: Vec<WEdge> = (0..n)
            .into_par_iter()
            .filter_map(|v| {
                let p = parent[v].load(Ordering::Relaxed) as usize;
                if p == v {
                    return None;
                }
                let b = best[v].load();
                Some(work[b as usize].2)
            })
            .collect();
        if new_edges.is_empty() {
            break;
        }
        msf.extend(new_edges);

        // 4. Pointer jumping to the component roots.
        let mut jump: Vec<u32> = (0..n as u32)
            .map(|v| parent[v as usize].load(Ordering::Relaxed) as u32)
            .collect();
        loop {
            let next: Vec<u32> = jump.par_iter().map(|&p| jump[p as usize]).collect();
            if next == jump {
                break;
            }
            jump = next;
        }
        // Relabel surviving edges to component roots; drop self-loops.
        work = work
            .into_par_iter()
            .filter_map(|(u, v, orig)| {
                let (nu, nv) = (jump[u as usize], jump[v as usize]);
                if nu == nv {
                    None
                } else {
                    Some((nu, nv, orig))
                }
            })
            .collect();
    }
    msf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::testutil::{random_connected_graph, symmetric};
    use crate::seq::{canonical_msf, kruskal, msf_weight};

    #[test]
    fn matches_kruskal() {
        for seed in 0..6 {
            let edges = random_connected_graph(90, 250, seed);
            assert_eq!(
                canonical_msf(&par_boruvka(&edges)),
                canonical_msf(&kruskal(&edges)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn symmetric_directed_input() {
        let und = random_connected_graph(64, 100, 11);
        let sym = symmetric(&und);
        assert_eq!(msf_weight(&par_boruvka(&sym)), msf_weight(&kruskal(&und)));
    }

    #[test]
    fn large_graph_smoke() {
        let edges = random_connected_graph(5_000, 20_000, 3);
        let msf = par_boruvka(&edges);
        assert_eq!(msf.len(), 4_999);
        assert_eq!(msf_weight(&msf), msf_weight(&kruskal(&edges)));
    }

    #[test]
    fn disconnected_and_empty() {
        assert!(par_boruvka(&[]).is_empty());
        let two = vec![WEdge::new(0, 1, 4), WEdge::new(10, 11, 2)];
        assert_eq!(par_boruvka(&two).len(), 2);
    }

    #[test]
    fn self_loops_are_ignored() {
        let edges = vec![WEdge::new(0, 0, 1), WEdge::new(0, 1, 5)];
        let msf = par_boruvka(&edges);
        assert_eq!(msf, vec![WEdge::new(0, 1, 5)]);
    }
}
