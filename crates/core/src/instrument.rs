//! Per-phase instrumentation matching the phase taxonomy of the paper's
//! Fig. 6 ("normalized running times of different steps of our
//! algorithms").

use kamsta_comm::Comm;
use std::time::Instant;

/// The phases of Fig. 6, in display order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    LocalPreprocessing,
    GraphSetupMinEdges,
    ContractComponents,
    ExchangeLabelsRelabel,
    Redistribute,
    BaseCaseRedistributeMst,
    PartitionFilter,
    Misc,
}

impl Phase {
    pub const ALL: [Phase; 8] = [
        Phase::LocalPreprocessing,
        Phase::GraphSetupMinEdges,
        Phase::ContractComponents,
        Phase::ExchangeLabelsRelabel,
        Phase::Redistribute,
        Phase::BaseCaseRedistributeMst,
        Phase::PartitionFilter,
        Phase::Misc,
    ];

    /// Label as printed in Fig. 6's legend.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::LocalPreprocessing => "localPreprocessing",
            Phase::GraphSetupMinEdges => "graphSetup+minEdges",
            Phase::ContractComponents => "contractComponents",
            Phase::ExchangeLabelsRelabel => "exchangeLabels+relabel",
            Phase::Redistribute => "redistribute",
            Phase::BaseCaseRedistributeMst => "basecase+redistributeMST",
            Phase::PartitionFilter => "partition+filter(setup)",
            Phase::Misc => "misc",
        }
    }

    fn index(&self) -> usize {
        Phase::ALL.iter().position(|p| p == self).unwrap()
    }
}

/// Accumulated per-phase modeled and wall time for one PE.
#[derive(Clone, Debug, Default)]
pub struct PhaseTimes {
    /// Modeled seconds per phase (α-β-γ clock deltas).
    pub modeled: [f64; 8],
    /// Wall-clock seconds per phase (simulation time; indicative only).
    pub wall: [f64; 8],
}

impl PhaseTimes {
    pub fn total_modeled(&self) -> f64 {
        self.modeled.iter().sum()
    }

    /// Per-phase share of the total modeled time (Fig. 6's normalisation).
    pub fn normalized(&self) -> [f64; 8] {
        let total = self.total_modeled().max(f64::MIN_POSITIVE);
        let mut out = [0.0; 8];
        for (o, m) in out.iter_mut().zip(self.modeled.iter()) {
            *o = m / total;
        }
        out
    }

    /// Wall seconds spent in the redistribution phases (`redistribute`
    /// plus `basecase+redistributeMST`) — the wall-side seam the
    /// run-level [`WallStats`] breakdown splits the solve scope at.
    pub fn redistribution_wall(&self) -> f64 {
        self.wall[Phase::Redistribute.index()] + self.wall[Phase::BaseCaseRedistributeMst.index()]
    }

    /// Merge per-PE times into the bottleneck profile (element-wise max):
    /// the modeled BSP clock advances with the slowest PE per phase.
    pub fn reduce_max(comm: &Comm, mine: &PhaseTimes) -> PhaseTimes {
        let merged_m = comm.allreduce(mine.modeled.to_vec(), |a, b| {
            a.iter().zip(b).map(|(x, y)| x.max(*y)).collect()
        });
        let merged_w = comm.allreduce(mine.wall.to_vec(), |a, b| {
            a.iter().zip(b).map(|(x, y)| x.max(*y)).collect()
        });
        PhaseTimes {
            modeled: merged_m.try_into().unwrap(),
            wall: merged_w.try_into().unwrap(),
        }
    }
}

/// Wall-clock breakdown of one full run by pipeline scope.
///
/// The modeled `PeStats` counters are **algorithm-scoped** by design —
/// the paper times its algorithms on prepared KaGen inputs, so input
/// generation and preparation are excluded from the α-β-γ clock. That
/// scoping makes the modeled counters structurally blind to wall-time
/// regressions outside the solve window (a generator cliff never moves
/// a modeled number). `WallStats` is the wall-side mirror: it covers
/// the whole simulation, cut at the same seams the modeled scopes use —
/// generate (graph generation or input distribution), prepare
/// (`InputGraph` construction: id assignment, compression, pair-id
/// canonicalisation), solve (the algorithm minus its redistribution
/// rounds) and redistribute (the `redistribute` +
/// `basecase+redistributeMST` phase walls).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct WallStats {
    /// Graph generation / input distribution wall seconds.
    pub generate: f64,
    /// Input preparation wall seconds.
    pub prepare: f64,
    /// Algorithm wall seconds excluding the redistribution rounds.
    pub solve: f64,
    /// Redistribution wall seconds (within the algorithm).
    pub redistribute: f64,
}

impl WallStats {
    /// Total measured wall seconds across the four scopes.
    pub fn total(&self) -> f64 {
        self.generate + self.prepare + self.solve + self.redistribute
    }

    /// Merge per-PE breakdowns into the bottleneck profile (element-wise
    /// max), mirroring [`PhaseTimes::reduce_max`]. Collective.
    pub fn reduce_max(comm: &Comm, mine: &WallStats) -> WallStats {
        let merged = comm.allreduce(
            vec![mine.generate, mine.prepare, mine.solve, mine.redistribute],
            |a, b| a.iter().zip(b).map(|(x, y)| x.max(*y)).collect(),
        );
        WallStats {
            generate: merged[0],
            prepare: merged[1],
            solve: merged[2],
            redistribute: merged[3],
        }
    }
}

/// Phase-scoped timer wrapping a PE's communicator.
pub struct Phased<'a> {
    comm: &'a Comm,
    pub times: PhaseTimes,
}

impl<'a> Phased<'a> {
    pub fn new(comm: &'a Comm) -> Self {
        Self {
            comm,
            times: PhaseTimes::default(),
        }
    }

    pub fn comm(&self) -> &'a Comm {
        self.comm
    }

    /// Run `f`, attributing its modeled-clock delta and wall time to
    /// `phase`.
    pub fn measure<R>(&mut self, phase: Phase, f: impl FnOnce(&Comm) -> R) -> R {
        let clock_before = self.comm.clock().now();
        let wall_before = Instant::now();
        let out = f(self.comm);
        let i = phase.index();
        self.times.modeled[i] += self.comm.clock().now() - clock_before;
        self.times.wall[i] += wall_before.elapsed().as_secs_f64();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig};

    #[test]
    fn phases_have_unique_labels_and_indices() {
        let labels: std::collections::HashSet<&str> =
            Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(labels.len(), 8);
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn measure_attributes_modeled_time() {
        let out = Machine::run(MachineConfig::new(2), |comm| {
            let mut ph = Phased::new(comm);
            ph.measure(Phase::Redistribute, |c| c.charge_local(1_000_000));
            ph.measure(Phase::Misc, |c| c.charge_local(500_000));
            ph.times
        });
        for t in out.results {
            assert!(t.modeled[Phase::Redistribute.index()] > 0.0);
            assert!(t.modeled[Phase::Misc.index()] > 0.0);
            assert!(t.modeled[Phase::Redistribute.index()] > t.modeled[Phase::Misc.index()]);
            let norm = t.normalized();
            assert!((norm.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn reduce_max_takes_bottleneck() {
        // Pinned to t = 1: the expected charge below is the raw γ
        // cost, and threads_per_pe scales modeled local time (the CI
        // hybrid leg runs this suite under KAMSTA_THREADS=2).
        let out = Machine::run(MachineConfig::new(3).with_threads(1), |comm| {
            let mut ph = Phased::new(comm);
            ph.measure(Phase::Misc, |c| {
                c.charge_local(1_000_000 * (c.rank() as u64 + 1))
            });
            PhaseTimes::reduce_max(comm, &ph.times)
        });
        let gamma = kamsta_comm::CostModel::default().gamma;
        for t in out.results {
            assert!((t.modeled[7] - 3_000_000.0 * gamma).abs() < 1e-9);
        }
    }
}
