//! Sequential Borůvka's algorithm [7] (Sec. II-C of the paper).
//!
//! In each round, every component selects its lightest incident edge
//! (under the unique-weight order); the selected edges are MST edges by
//! the cut property, components are contracted and the process repeats.
//! At most `log n` rounds.

use super::{UnionFind, VertexIndex};
use kamsta_graph::WEdge;

/// Compute the minimum spanning forest via Borůvka rounds over a
/// union-find (contraction by set merging rather than relabeling).
pub fn boruvka(edges: &[WEdge]) -> Vec<WEdge> {
    let idx = VertexIndex::build(edges);
    let n = idx.len();
    let mut uf = UnionFind::new(n);
    let mut msf: Vec<WEdge> = Vec::new();
    if n == 0 {
        return msf;
    }
    // best[c] = index of the lightest edge incident to component c.
    let mut best: Vec<u32> = vec![u32::MAX; n];
    loop {
        for b in best.iter_mut() {
            *b = u32::MAX;
        }
        let mut any = false;
        for (k, e) in edges.iter().enumerate() {
            let cu = uf.find(idx.dense(e.u));
            let cv = uf.find(idx.dense(e.v));
            if cu == cv {
                continue;
            }
            any = true;
            for c in [cu, cv] {
                let cur = best[c as usize];
                if cur == u32::MAX || e.weight_key() < edges[cur as usize].weight_key() {
                    best[c as usize] = k as u32;
                }
            }
        }
        if !any {
            break;
        }
        // Hook the selected edges; a 2-cycle pair selects the same edge
        // twice, which the union-find absorbs (second union is a no-op).
        for &b in &best {
            if b == u32::MAX {
                continue;
            }
            let e = &edges[b as usize];
            if uf.union(idx.dense(e.u), idx.dense(e.v)) {
                msf.push(*e);
            }
        }
    }
    msf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::kruskal;
    use crate::seq::testutil::{random_connected_graph, symmetric};
    use crate::seq::{canonical_msf, msf_weight};

    #[test]
    fn matches_kruskal() {
        for seed in 0..6 {
            let edges = random_connected_graph(70, 150, seed);
            assert_eq!(
                canonical_msf(&boruvka(&edges)),
                canonical_msf(&kruskal(&edges)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn symmetric_directed_input() {
        let und = random_connected_graph(50, 80, 9);
        let sym = symmetric(&und);
        assert_eq!(msf_weight(&boruvka(&sym)), msf_weight(&kruskal(&und)));
    }

    #[test]
    fn round_count_is_logarithmic() {
        // A path of 64 vertices with strictly increasing weights contracts
        // fully; this is a smoke test that the loop terminates quickly and
        // produces the full tree.
        let edges: Vec<WEdge> = (1..64).map(|i| WEdge::new(i - 1, i, i as u32)).collect();
        let msf = boruvka(&edges);
        assert_eq!(msf.len(), 63);
    }

    #[test]
    fn disconnected_and_trivial_inputs() {
        assert!(boruvka(&[]).is_empty());
        let two = vec![WEdge::new(0, 1, 1), WEdge::new(7, 8, 2)];
        assert_eq!(boruvka(&two).len(), 2);
    }
}
