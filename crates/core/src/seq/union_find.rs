//! Union-find with union by rank and path halving — the backbone of the
//! Kruskal/Filter-Kruskal references and of MSF verification.

/// Disjoint-set forest over dense indices `0..n`.
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        Self {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    pub fn len(&self) -> usize {
        self.parent.len()
    }

    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of `x`'s set (path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Merge the sets of `a` and `b`; returns false if already joined.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        self.components -= 1;
        match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            std::cmp::Ordering::Less => self.parent[ra as usize] = rb,
            std::cmp::Ordering::Greater => self.parent[rb as usize] = ra,
            std::cmp::Ordering::Equal => {
                self.parent[rb as usize] = ra;
                self.rank[ra as usize] += 1;
            }
        }
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_union_find() {
        let mut uf = UnionFind::new(6);
        assert_eq!(uf.components(), 6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(!uf.union(1, 0), "already merged");
        assert!(uf.connected(0, 1));
        assert!(!uf.connected(0, 2));
        assert!(uf.union(1, 3));
        assert!(uf.connected(0, 2));
        assert_eq!(uf.components(), 3); // {0,1,2,3}, {4}, {5}
    }

    #[test]
    fn long_chain_compresses() {
        let n = 10_000;
        let mut uf = UnionFind::new(n);
        for i in 1..n as u32 {
            uf.union(i - 1, i);
        }
        assert_eq!(uf.components(), 1);
        // After finds, paths are short: spot-check representative equality.
        let r = uf.find(0);
        for i in (0..n as u32).step_by(997) {
            assert_eq!(uf.find(i), r);
        }
    }

    #[test]
    fn empty_and_singleton() {
        let uf = UnionFind::new(0);
        assert!(uf.is_empty());
        let mut uf = UnionFind::new(1);
        assert_eq!(uf.find(0), 0);
        assert_eq!(uf.components(), 1);
    }
}
