//! Sequential MST algorithms: correctness references and baselines.
//!
//! All algorithms accept a symmetric directed edge list (both directions
//! present, the paper's input format) or a plain undirected list — each
//! undirected edge is reported once in the output MSF.

mod boruvka;
mod filter_kruskal;
mod kkt;
mod kruskal;
mod prim;
mod union_find;

pub use boruvka::boruvka;
pub use filter_kruskal::filter_kruskal;
pub use kkt::kkt;
pub use kruskal::kruskal;
pub use prim::prim;
pub use union_find::UnionFind;

use kamsta_graph::{VertexId, WEdge};

/// Dense renaming of arbitrary `u64` vertex labels.
pub(crate) struct VertexIndex {
    ids: Vec<VertexId>,
}

impl VertexIndex {
    /// Build from the endpoints of an edge list.
    pub fn build(edges: &[WEdge]) -> Self {
        let mut ids: Vec<VertexId> = edges.iter().flat_map(|e| [e.u, e.v]).collect();
        ids.sort_unstable();
        ids.dedup();
        Self { ids }
    }

    pub fn len(&self) -> usize {
        self.ids.len()
    }

    #[inline]
    pub fn dense(&self, v: VertexId) -> u32 {
        self.ids.binary_search(&v).expect("vertex must exist") as u32
    }

    #[inline]
    pub fn original(&self, d: u32) -> VertexId {
        self.ids[d as usize]
    }
}

/// Total weight of an MSF.
pub fn msf_weight(edges: &[WEdge]) -> u64 {
    edges.iter().map(|e| e.w as u64).sum()
}

/// Canonicalise an MSF for comparisons: one direction per edge, sorted.
pub fn canonical_msf(edges: &[WEdge]) -> Vec<WEdge> {
    let mut out: Vec<WEdge> = edges
        .iter()
        .map(|e| if e.u <= e.v { *e } else { e.reversed() })
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
pub(crate) mod testutil {
    use kamsta_graph::WEdge;

    /// Deterministic random connected graph: a scrambled spanning path
    /// plus extra random edges; returns an undirected edge list.
    pub fn random_connected_graph(n: u64, extra: usize, seed: u64) -> Vec<WEdge> {
        use kamsta_graph::hash::{hash3, mix64};
        let mut edges = Vec::new();
        // Spanning path over a pseudo-random permutation.
        let perm: Vec<u64> = {
            let mut v: Vec<u64> = (0..n).collect();
            // Fisher–Yates with hash stream.
            for i in (1..n as usize).rev() {
                let j = (mix64(seed ^ i as u64) % (i as u64 + 1)) as usize;
                v.swap(i, j);
            }
            v
        };
        for i in 1..n as usize {
            let (u, v) = (perm[i - 1], perm[i]);
            let w = (hash3(seed, u.min(v), u.max(v)) % 254 + 1) as u32;
            edges.push(WEdge::new(u, v, w));
        }
        for k in 0..extra {
            let u = hash3(seed ^ 0xE, k as u64, 0) % n;
            let v = hash3(seed ^ 0xE, k as u64, 1) % n;
            if u != v {
                let w = (hash3(seed, u.min(v), u.max(v)) % 254 + 1) as u32;
                edges.push(WEdge::new(u, v, w));
            }
        }
        edges
    }

    /// Symmetric closure of an undirected list.
    pub fn symmetric(edges: &[WEdge]) -> Vec<WEdge> {
        let mut out = Vec::with_capacity(edges.len() * 2);
        for e in edges {
            out.push(*e);
            out.push(e.reversed());
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_index_roundtrip() {
        let edges = vec![WEdge::new(10, 5, 1), WEdge::new(5, 99, 2)];
        let idx = VertexIndex::build(&edges);
        assert_eq!(idx.len(), 3);
        for v in [5u64, 10, 99] {
            assert_eq!(idx.original(idx.dense(v)), v);
        }
    }

    #[test]
    fn canonicalisation_merges_directions() {
        let msf = vec![
            WEdge::new(2, 1, 5),
            WEdge::new(1, 2, 5),
            WEdge::new(0, 1, 3),
        ];
        let c = canonical_msf(&msf);
        assert_eq!(c, vec![WEdge::new(0, 1, 3), WEdge::new(1, 2, 5)]);
        assert_eq!(msf_weight(&c), 8);
    }
}
