//! The Jarník-Prim algorithm [11] with a binary heap.

use super::VertexIndex;
use kamsta_graph::WEdge;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Compute the minimum spanning forest by growing trees from arbitrary
/// roots. Accepts undirected or symmetric directed inputs.
pub fn prim(edges: &[WEdge]) -> Vec<WEdge> {
    let idx = VertexIndex::build(edges);
    let n = idx.len();
    if n == 0 {
        return Vec::new();
    }
    // Build adjacency over dense ids (both directions).
    let mut adj: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n]; // (dense dst, weight)
    for e in edges {
        let (du, dv) = (idx.dense(e.u), idx.dense(e.v));
        if du != dv {
            adj[du as usize].push((dv, e.w));
            adj[dv as usize].push((du, e.w));
        }
    }
    let mut in_tree = vec![false; n];
    let mut msf = Vec::with_capacity(n.saturating_sub(1));
    // (weight, tie-break endpoints, from, to) — the unique-weight order.
    type Item = Reverse<(u32, u64, u64, u32, u32)>;
    let mut heap: BinaryHeap<Item> = BinaryHeap::new();

    fn push_edges(
        adj: &[Vec<(u32, u32)>],
        in_tree: &[bool],
        idx: &VertexIndex,
        from: u32,
        heap: &mut BinaryHeap<Item>,
    ) {
        for &(to, w) in &adj[from as usize] {
            if !in_tree[to as usize] {
                let (a, b) = (idx.original(from), idx.original(to));
                heap.push(Reverse((w, a.min(b), a.max(b), from, to)));
            }
        }
    }

    for start in 0..n as u32 {
        if in_tree[start as usize] {
            continue;
        }
        in_tree[start as usize] = true;
        push_edges(&adj, &in_tree, &idx, start, &mut heap);
        while let Some(Reverse((w, _, _, from, to))) = heap.pop() {
            if in_tree[to as usize] {
                continue;
            }
            in_tree[to as usize] = true;
            msf.push(WEdge::new(idx.original(from), idx.original(to), w));
            push_edges(&adj, &in_tree, &idx, to, &mut heap);
        }
    }
    msf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::kruskal;
    use crate::seq::testutil::{random_connected_graph, symmetric};
    use crate::seq::{canonical_msf, msf_weight};

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..5 {
            let edges = random_connected_graph(80, 160, seed);
            let a = msf_weight(&kruskal(&edges));
            let b = msf_weight(&prim(&edges));
            assert_eq!(a, b, "seed {seed}");
        }
    }

    #[test]
    fn identical_forest_under_unique_weights() {
        let edges = random_connected_graph(60, 120, 42);
        // weight_key ties are broken identically, so the canonical MSFs
        // must be exactly equal, not just equal-weight.
        assert_eq!(
            canonical_msf(&kruskal(&edges)),
            canonical_msf(&prim(&edges))
        );
    }

    #[test]
    fn disconnected_input_gives_forest() {
        let und = vec![WEdge::new(0, 1, 3), WEdge::new(5, 6, 2)];
        let sym = symmetric(&und);
        let msf = prim(&sym);
        assert_eq!(msf.len(), 2);
        assert_eq!(msf_weight(&msf), 5);
    }

    #[test]
    fn handles_self_loops_gracefully() {
        let edges = vec![WEdge::new(0, 0, 1), WEdge::new(0, 1, 2)];
        let msf = prim(&edges);
        assert_eq!(msf.len(), 1);
        assert_eq!(msf[0].w, 2);
    }
}
