//! The Karger–Klein–Tarjan randomized linear-time MSF algorithm \[13\].
//!
//! The paper's conclusion points here: "single Borůvka rounds are also an
//! important part of more sophisticated MST algorithms with better
//! performance guarantees like the expected linear time algorithm \[13\]…
//! we believe that the algorithmic building blocks developed in this work
//! can also be of interest for distributed implementations of such more
//! complex MST algorithms." This sequential implementation demonstrates
//! the composition: Borůvka rounds for contraction, random sampling, and
//! F-light filtering via forest path maxima.
//!
//! Algorithm: (1) two Borůvka rounds contract the graph and harvest MST
//! edges; (2) sample the surviving edges with probability 1/2 and recurse
//! to get a sample forest `F`; (3) discard *F-heavy* edges — those
//! heavier than the maximum weight on the `F`-path between their
//! endpoints (they cannot be MST edges by the cycle property); (4)
//! recurse on the survivors. Expected work `O(m)`.

use super::{UnionFind, VertexIndex};
use kamsta_graph::hash::mix64;
use kamsta_graph::WEdge;

/// Compute the minimum spanning forest with KKT. `seed` drives the edge
/// sampling (deterministic for a given seed).
pub fn kkt(edges: &[WEdge], seed: u64) -> Vec<WEdge> {
    let idx = VertexIndex::build(edges);
    // Dense working copy (cur_u, cur_v, original edge), self-loops gone.
    let work: Vec<(u32, u32, WEdge)> = edges
        .iter()
        .filter(|e| e.u != e.v)
        .map(|e| (idx.dense(e.u), idx.dense(e.v), *e))
        .collect();
    let mut msf = Vec::new();
    rec(work, idx.len() as u32, seed, 0, &mut msf);
    msf
}

/// Below this many edges plain Borůvka finishes the job.
const BASE_CASE: usize = 32;

fn rec(mut work: Vec<(u32, u32, WEdge)>, n: u32, seed: u64, depth: u32, msf: &mut Vec<WEdge>) {
    if work.is_empty() {
        return;
    }
    if work.len() <= BASE_CASE || depth > 64 {
        base_case(work, n, msf);
        return;
    }
    // (1) Two Borůvka rounds: ≥ 4x vertex reduction.
    for _ in 0..2 {
        work = boruvka_round(work, n, msf);
        if work.is_empty() {
            return;
        }
    }

    // (2) Sample with probability 1/2 → recurse for the sample forest F.
    let mut sample: Vec<(u32, u32, WEdge)> = Vec::with_capacity(work.len() / 2);
    for (k, item) in work.iter().enumerate() {
        if mix64(seed ^ (depth as u64) << 32 ^ k as u64) & 1 == 0 {
            sample.push(*item);
        }
    }
    // The sample forest must be expressed over *current* component ids,
    // so compute it over dense endpoints with a shadow accumulator.
    let mut f_dense: Vec<(u32, u32, WEdge)> = Vec::new();
    sample_forest(sample, n, &mut f_dense);

    // (3) F-light filtering via forest path maxima.
    let pm = PathMaxForest::build(n, &f_dense);
    let before = work.len();
    work.retain(|(u, v, e)| pm.is_light(*u, *v, e.weight_key()));
    debug_assert!(work.len() <= before);

    // (4) Recurse on the survivors. The sample-forest edges are
    // themselves survivors (an F edge is never F-heavy), so they are
    // still in `work`; no double-processing happens because the sample
    // forest above did not emit to `msf`.
    rec(work, n, seed ^ 0x0D0D, depth + 1, msf);
}

/// MSF of the sample over dense-endpoint edges (the forest `F` used for
/// filtering; Kruskal is affordable because the sample halves per level).
fn sample_forest(work: Vec<(u32, u32, WEdge)>, n: u32, out: &mut Vec<(u32, u32, WEdge)>) {
    let mut order = work;
    order.sort_unstable_by_key(|(_, _, e)| e.weight_key());
    let mut uf = UnionFind::new(n as usize);
    for (u, v, e) in order {
        if uf.union(u, v) {
            out.push((u, v, e));
        }
    }
}

/// One Borůvka round over dense component ids: pick per-component minima,
/// hook, emit MST edges, relabel and drop self-loops.
fn boruvka_round(
    work: Vec<(u32, u32, WEdge)>,
    n: u32,
    msf: &mut Vec<WEdge>,
) -> Vec<(u32, u32, WEdge)> {
    let mut best: Vec<u32> = vec![u32::MAX; n as usize];
    for (k, (u, v, e)) in work.iter().enumerate() {
        for c in [*u, *v] {
            let cur = best[c as usize];
            if cur == u32::MAX || e.weight_key() < work[cur as usize].2.weight_key() {
                best[c as usize] = k as u32;
            }
        }
    }
    // Hook along chosen edges with a union-find (absorbs 2-cycles).
    let mut uf = UnionFind::new(n as usize);
    for &b in &best {
        if b != u32::MAX {
            let (u, v, e) = work[b as usize];
            if uf.union(u, v) {
                msf.push(e);
            }
        }
    }
    work.into_iter()
        .filter_map(|(u, v, e)| {
            let (cu, cv) = (uf.find(u), uf.find(v));
            (cu != cv).then_some((cu, cv, e))
        })
        .collect()
}

fn base_case(work: Vec<(u32, u32, WEdge)>, n: u32, msf: &mut Vec<WEdge>) {
    let mut order = work;
    order.sort_unstable_by_key(|(_, _, e)| e.weight_key());
    let mut uf = UnionFind::new(n as usize);
    for (u, v, e) in order {
        if uf.union(u, v) {
            msf.push(e);
        }
    }
}

/// The unique-weight comparison key `(w, min, max)`.
type WKey = (u32, u64, u64);

/// Forest path-maximum queries by binary lifting: `max_on_path(u, v)` in
/// `O(log n)` after `O(n log n)` preprocessing. Weight keys are the
/// unique-weight order, so comparisons are exact.
struct PathMaxForest {
    parent: Vec<Vec<u32>>, // parent[k][v]: 2^k-th ancestor
    maxw: Vec<Vec<WKey>>,  // max weight key on that jump
    depth: Vec<u32>,
    component: Vec<u32>,
    levels: usize,
}

const NO_PARENT: u32 = u32::MAX;
const KEY_MIN: WKey = (0, 0, 0);

impl PathMaxForest {
    fn build(n: u32, forest: &[(u32, u32, WEdge)]) -> Self {
        let n = n as usize;
        // Adjacency of the forest.
        let mut adj: Vec<Vec<(u32, WKey)>> = vec![Vec::new(); n];
        for (u, v, e) in forest {
            adj[*u as usize].push((*v, e.weight_key()));
            adj[*v as usize].push((*u, e.weight_key()));
        }
        let levels = (usize::BITS - n.max(2).leading_zeros()) as usize;
        let mut parent0 = vec![NO_PARENT; n];
        let mut maxw0 = vec![KEY_MIN; n];
        let mut depth = vec![0u32; n];
        let mut component = vec![NO_PARENT; n];
        // Root every tree with an iterative DFS.
        let mut stack = Vec::new();
        for root in 0..n {
            if component[root] != NO_PARENT {
                continue;
            }
            component[root] = root as u32;
            stack.push(root as u32);
            while let Some(x) = stack.pop() {
                for &(y, key) in &adj[x as usize] {
                    if component[y as usize] == NO_PARENT {
                        component[y as usize] = root as u32;
                        parent0[y as usize] = x;
                        maxw0[y as usize] = key;
                        depth[y as usize] = depth[x as usize] + 1;
                        stack.push(y);
                    }
                }
            }
        }
        // Binary lifting tables.
        let mut parent = vec![parent0];
        let mut maxw = vec![maxw0];
        for k in 1..levels {
            let (pp, pm) = (&parent[k - 1], &maxw[k - 1]);
            let mut np = vec![NO_PARENT; n];
            let mut nm = vec![KEY_MIN; n];
            for v in 0..n {
                let mid = pp[v];
                if mid != NO_PARENT {
                    np[v] = pp[mid as usize];
                    if np[v] != NO_PARENT {
                        nm[v] = pm[v].max(pm[mid as usize]);
                    }
                }
            }
            parent.push(np);
            maxw.push(nm);
        }
        Self {
            parent,
            maxw,
            depth,
            component,
            levels,
        }
    }

    /// True if the edge `(u, v)` with `key` is *F-light*: endpoints in
    /// different forest components, or `key` below the path maximum.
    fn is_light(&self, u: u32, v: u32, key: WKey) -> bool {
        if u == v {
            return false; // self-loop can never be an MST edge
        }
        if self.component[u as usize] != self.component[v as usize] {
            return true;
        }
        key <= self.max_on_path(u, v)
    }

    fn max_on_path(&self, mut u: u32, mut v: u32) -> WKey {
        let mut best = KEY_MIN;
        // Lift the deeper endpoint.
        if self.depth[u as usize] < self.depth[v as usize] {
            std::mem::swap(&mut u, &mut v);
        }
        let diff = self.depth[u as usize] - self.depth[v as usize];
        for k in 0..self.levels {
            if diff & (1 << k) != 0 {
                best = best.max(self.maxw[k][u as usize]);
                u = self.parent[k][u as usize];
            }
        }
        if u == v {
            return best;
        }
        // Lift both until just below the LCA.
        for k in (0..self.levels).rev() {
            if self.parent[k][u as usize] != self.parent[k][v as usize] {
                best = best.max(self.maxw[k][u as usize]);
                best = best.max(self.maxw[k][v as usize]);
                u = self.parent[k][u as usize];
                v = self.parent[k][v as usize];
            }
        }
        best = best.max(self.maxw[0][u as usize]);
        best = best.max(self.maxw[0][v as usize]);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::testutil::random_connected_graph;
    use crate::seq::{canonical_msf, kruskal, msf_weight};

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for graph_seed in 0..6 {
            let edges = random_connected_graph(150, 700, graph_seed);
            for algo_seed in [1u64, 42] {
                assert_eq!(
                    canonical_msf(&kkt(&edges, algo_seed)),
                    canonical_msf(&kruskal(&edges)),
                    "graph seed {graph_seed}, algo seed {algo_seed}"
                );
            }
        }
    }

    #[test]
    fn dense_graph() {
        let edges = random_connected_graph(80, 5000, 9);
        assert_eq!(msf_weight(&kkt(&edges, 7)), msf_weight(&kruskal(&edges)));
    }

    #[test]
    fn disconnected_and_degenerate() {
        assert!(kkt(&[], 1).is_empty());
        let two = vec![WEdge::new(0, 1, 3), WEdge::new(9, 10, 4)];
        assert_eq!(kkt(&two, 1).len(), 2);
        let loops = vec![WEdge::new(5, 5, 1), WEdge::new(5, 6, 2)];
        assert_eq!(kkt(&loops, 1), vec![WEdge::new(5, 6, 2)]);
    }

    #[test]
    fn path_max_forest_queries() {
        // Path 0-1-2-3 with weights 5, 1, 9.
        let forest = vec![
            (0u32, 1u32, WEdge::new(0, 1, 5)),
            (1, 2, WEdge::new(1, 2, 1)),
            (2, 3, WEdge::new(2, 3, 9)),
        ];
        let pm = PathMaxForest::build(5, &forest);
        assert_eq!(pm.max_on_path(0, 3).0, 9);
        assert_eq!(pm.max_on_path(0, 2).0, 5);
        assert_eq!(pm.max_on_path(1, 2).0, 1);
        // Vertex 4 is isolated: cross-component edges are light.
        assert!(pm.is_light(0, 4, (255, 0, 4)));
        // An edge heavier than the path max is F-heavy.
        assert!(!pm.is_light(0, 3, WEdge::new(0, 3, 10).weight_key()));
        assert!(pm.is_light(0, 3, WEdge::new(0, 3, 8).weight_key()));
    }

    #[test]
    fn filtering_is_conservative() {
        // Every true MSF edge must survive the F-light filter for any
        // sample forest: verified implicitly by equality with Kruskal
        // over many seeds.
        let edges = random_connected_graph(60, 2000, 3);
        let reference = msf_weight(&kruskal(&edges));
        for s in 0..10 {
            assert_eq!(msf_weight(&kkt(&edges, s)), reference, "seed {s}");
        }
    }
}
