//! Kruskal's algorithm [12] — the canonical MSF reference.

use super::{UnionFind, VertexIndex};
use kamsta_graph::WEdge;

/// Compute the minimum spanning forest. Accepts undirected or symmetric
/// directed edge lists; each MSF edge is reported once, in the direction
/// it first appears in weight order. Uses the unique-weight total order
/// `(w, min, max)` so the MSF is unique and deterministic.
pub fn kruskal(edges: &[WEdge]) -> Vec<WEdge> {
    let idx = VertexIndex::build(edges);
    let mut order: Vec<&WEdge> = edges.iter().collect();
    order.sort_unstable_by_key(|e| e.weight_key());
    let mut uf = UnionFind::new(idx.len());
    let mut msf = Vec::new();
    for e in order {
        if msf.len() + 1 == idx.len() {
            break; // spanning tree complete
        }
        if uf.union(idx.dense(e.u), idx.dense(e.v)) {
            msf.push(*e);
        }
    }
    msf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::testutil::{random_connected_graph, symmetric};
    use crate::seq::{canonical_msf, msf_weight};

    #[test]
    fn textbook_example() {
        // Triangle with a pendant: MST = {(0,1,1), (1,2,2), (2,3,4)}.
        let edges = vec![
            WEdge::new(0, 1, 1),
            WEdge::new(1, 2, 2),
            WEdge::new(0, 2, 3),
            WEdge::new(2, 3, 4),
        ];
        let msf = kruskal(&edges);
        assert_eq!(msf_weight(&msf), 7);
        assert_eq!(msf.len(), 3);
    }

    #[test]
    fn forest_for_disconnected_graph() {
        let edges = vec![
            WEdge::new(0, 1, 1),
            WEdge::new(2, 3, 2),
            WEdge::new(3, 4, 3),
            WEdge::new(2, 4, 9),
        ];
        let msf = kruskal(&edges);
        assert_eq!(msf.len(), 3, "two components → n − #cc edges");
        assert_eq!(msf_weight(&msf), 6);
    }

    #[test]
    fn symmetric_input_gives_same_forest() {
        let und = random_connected_graph(100, 200, 7);
        let sym = symmetric(&und);
        let a = canonical_msf(&kruskal(&und));
        let b = canonical_msf(&kruskal(&sym));
        assert_eq!(a, b);
        assert_eq!(a.len(), 99);
    }

    #[test]
    fn parallel_edges_pick_lightest() {
        let edges = vec![
            WEdge::new(0, 1, 5),
            WEdge::new(0, 1, 2),
            WEdge::new(1, 0, 8),
        ];
        let msf = kruskal(&edges);
        assert_eq!(msf, vec![WEdge::new(0, 1, 2)]);
    }

    #[test]
    fn empty_and_single_edge() {
        assert!(kruskal(&[]).is_empty());
        let one = vec![WEdge::new(3, 4, 9)];
        assert_eq!(kruskal(&one), one);
    }
}
