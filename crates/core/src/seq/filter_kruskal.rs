//! Filter-Kruskal [8] — "in many respects the best practical sequential
//! algorithm" (Sec. I), and the origin of the filtering idea that
//! Filter-Borůvka (Sec. V) lifts to the distributed setting.
//!
//! Quicksort-style recursion: partition edges around a pivot weight,
//! recurse on the light half, *filter* heavy edges whose endpoints already
//! share a component, recurse on the survivors. Expected work `O(m)` for
//! random weights.

use super::{UnionFind, VertexIndex};
use kamsta_graph::WEdge;

/// Below this many edges, plain Kruskal on the remaining slice wins.
const BASE_CASE: usize = 64;

/// Compute the minimum spanning forest with Filter-Kruskal.
pub fn filter_kruskal(edges: &[WEdge]) -> Vec<WEdge> {
    let idx = VertexIndex::build(edges);
    let mut uf = UnionFind::new(idx.len());
    let mut work: Vec<WEdge> = edges.to_vec();
    let mut msf = Vec::new();
    rec(&mut work, &idx, &mut uf, &mut msf, 0);
    msf
}

fn kruskal_base(slice: &mut [WEdge], idx: &VertexIndex, uf: &mut UnionFind, msf: &mut Vec<WEdge>) {
    slice.sort_unstable_by_key(|e| e.weight_key());
    for e in slice {
        if uf.union(idx.dense(e.u), idx.dense(e.v)) {
            msf.push(*e);
        }
    }
}

fn rec(
    edges: &mut Vec<WEdge>,
    idx: &VertexIndex,
    uf: &mut UnionFind,
    msf: &mut Vec<WEdge>,
    depth: u32,
) {
    if edges.len() <= BASE_CASE || depth > 64 {
        kruskal_base(edges, idx, uf, msf);
        return;
    }
    // Median-of-three pivot on weights.
    let a = edges[0].w;
    let b = edges[edges.len() / 2].w;
    let c = edges[edges.len() - 1].w;
    let pivot = a.max(b).min(a.min(b).max(c));

    let mut light: Vec<WEdge> = Vec::new();
    let mut heavy: Vec<WEdge> = Vec::new();
    for e in edges.drain(..) {
        if e.w <= pivot {
            light.push(e);
        } else {
            heavy.push(e);
        }
    }
    if light.is_empty() || heavy.is_empty() {
        // Degenerate pivot (many equal weights): fall back to the base.
        let mut rest = if light.is_empty() { heavy } else { light };
        kruskal_base(&mut rest, idx, uf, msf);
        return;
    }
    rec(&mut light, idx, uf, msf, depth + 1);
    // Filter: drop heavy edges already inside a component of the partial
    // forest.
    heavy.retain(|e| uf.find(idx.dense(e.u)) != uf.find(idx.dense(e.v)));
    rec(&mut heavy, idx, uf, msf, depth + 1);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::kruskal;
    use crate::seq::testutil::random_connected_graph;
    use crate::seq::{canonical_msf, msf_weight};

    #[test]
    fn matches_kruskal_on_random_graphs() {
        for seed in 0..8 {
            let edges = random_connected_graph(120, 600, seed);
            assert_eq!(
                canonical_msf(&filter_kruskal(&edges)),
                canonical_msf(&kruskal(&edges)),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn dense_graph_filters_most_edges() {
        // Dense random graph: the filter should not change the answer.
        let edges = random_connected_graph(60, 3000, 3);
        assert_eq!(
            msf_weight(&filter_kruskal(&edges)),
            msf_weight(&kruskal(&edges))
        );
    }

    #[test]
    fn uniform_weights_degenerate_pivot() {
        // All weights equal — the pivot cannot split; must still work.
        let edges: Vec<WEdge> = (1..200u64)
            .map(|i| WEdge::new(i - 1, i, 7))
            .chain((0..100u64).map(|i| WEdge::new(i, i + 50, 7)))
            .collect();
        let msf = filter_kruskal(&edges);
        assert_eq!(msf.len(), 199);
        assert_eq!(msf_weight(&msf), 199 * 7);
    }

    #[test]
    fn small_inputs_hit_base_case() {
        let edges = vec![WEdge::new(0, 1, 2), WEdge::new(1, 2, 1)];
        assert_eq!(filter_kruskal(&edges).len(), 2);
        assert!(filter_kruskal(&[]).is_empty());
    }
}
