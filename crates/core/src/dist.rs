//! The distributed MST algorithms of the paper: the scalable Borůvka
//! algorithm (Algorithm 1) and Filter-Borůvka (Algorithm 2).
//!
//! Algorithm 1 repeats four bulk-synchronous stages on the 1D-partitioned
//! edge list until the remaining contracted graph fits the replicated base
//! case (Sec. IV):
//!
//! 1. [`min_edges`] — per-vertex lightest incident edge, with the
//!    allgather-merge for vertices whose edge range spans PE boundaries;
//! 2. [`contract_components`] — hooking along the selected edges, 2-cycle
//!    root election and distributed pointer doubling over the vertex-home
//!    partition (Sec. IV-B), emitting the round's MST edge ids;
//! 3. [`exchange_labels`] + [`relabel`] — the pull-based ghost-label
//!    protocol and endpoint rewriting (Sec. IV-C);
//! 4. [`redistribute`] — parallel-edge elimination (hash prefilter or pure
//!    sorting, Sec. VI-B), distributed sorting, and re-establishing the
//!    distributed graph structure.
//!
//! An optional [`local_contract`] pass (Sec. IV-A) contracts purely local
//! subtrees before the first communication round; the gate compares the
//! globally averaged fraction of PE-internal edges against a threshold, so
//! the high-locality families (grids, RGGs) take it and GNM/RMAT skip it.
//!
//! Algorithm 2 ([`filter_mst`]) partitions edges by the unique-weight
//! total order around sampled pivots, recursing on the light half first
//! and filtering heavy edges through the block-distributed representative
//! array [`DistArray`] before recursing on the survivors (Sec. V) — the
//! distributed analogue of Filter-Kruskal.

use crate::instrument::{Phase, PhaseTimes, Phased};
use crate::seq::UnionFind;
use kamsta_comm::{route, Comm, FlatBuckets};
use kamsta_graph::hash::FxHashMap;
use kamsta_graph::{CEdge, DistGraph, InputGraph, VertexId, Weight};
use std::borrow::Cow;

/// Parallel-edge elimination strategy used by [`redistribute`]
/// (Sec. VI-B's ablation: a local prefilter "outperforms the pure
/// sorting approach by up to a factor of 2.5" because duplicates never
/// travel through the distributed sort).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DedupStrategy {
    /// Local per-`(u, v)`-pair prefilter before the distributed sort
    /// (radix sort on packed lexicographic keys + one dedup scan).
    #[default]
    HashFilter,
    /// Pure sorting: global sort, then dedup — the ablation baseline.
    Sort,
}

/// Configuration of the distributed MST algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MstConfig {
    /// The base-case switch constant: contraction rounds stop once the
    /// global vertex count drops to `base_case_constant × p` and the
    /// remaining graph is solved replicated (Sec. IV-D).
    pub base_case_constant: u64,
    /// Run local preprocessing before the first communication round
    /// (Sec. IV-A); the Fig. 4 ablation disables it.
    pub preprocessing: bool,
    /// Parallel-edge elimination strategy (Sec. VI-B).
    pub dedup: DedupStrategy,
    /// Filter-Borůvka recursion cutoff: stop partitioning once the global
    /// edge count is at most this many edges per PE (Sec. V).
    pub filter_min_edges_per_pe: u64,
}

impl Default for MstConfig {
    fn default() -> Self {
        Self {
            base_case_constant: 256,
            preprocessing: true,
            dedup: DedupStrategy::default(),
            filter_min_edges_per_pe: 1024,
        }
    }
}

impl MstConfig {
    /// Vertex count below which the replicated base case takes over on a
    /// `p`-PE machine.
    pub fn base_threshold(&self, p: usize) -> u64 {
        self.base_case_constant.saturating_mul(p as u64)
    }

    /// This configuration with preprocessing disabled (Fig. 4 ablation).
    pub fn without_preprocessing(mut self) -> Self {
        self.preprocessing = false;
        self
    }
}

/// Statistics of one Filter-Borůvka run (the Theorem 1 experiment).
/// Identical on every PE: all counters are global quantities.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FilterStats {
    /// Number of base-case MST computations performed.
    pub base_case_calls: u64,
    /// Total (global, directed) edges fed into base cases.
    pub base_case_edges: u64,
    /// Heavy edges eliminated by the representative-array filter.
    pub filtered_edges: u64,
    /// Number of pivot partitioning steps.
    pub partition_steps: u64,
}

/// Result of a distributed MST run on one PE.
#[derive(Clone, Debug)]
pub struct MstResult {
    /// This PE's share of the MSF, as *original* input edges (one
    /// direction per undirected MSF edge, globally).
    pub edges: Vec<CEdge>,
    /// Per-phase modeled/wall time of this PE (Fig. 6 taxonomy).
    pub phases: PhaseTimes,
}

/// One vertex's selected minimum edge (the output of `MIN EDGES`).
#[derive(Clone, Copy, Debug)]
pub struct MinEdge {
    /// The selecting vertex (a source on this PE).
    pub v: VertexId,
    /// Its globally lightest incident edge in the unique-weight order.
    pub edge: CEdge,
}

/// Wire format: fixed-width `v` then the `CEdge` field walk (36 bytes).
impl kamsta_comm::Wire for MinEdge {
    fn wire_write(&self, out: &mut Vec<u8>) {
        self.v.wire_write(out);
        self.edge.wire_write(out);
    }
    fn wire_read(r: &mut kamsta_comm::WireReader<'_>) -> Result<Self, kamsta_comm::WireError> {
        Ok(Self {
            v: VertexId::wire_read(r)?,
            edge: CEdge::wire_read(r)?,
        })
    }
    #[inline]
    fn wire_min_size() -> usize {
        8 + <CEdge as kamsta_comm::Wire>::wire_min_size()
    }
}

/// Output of one `CONTRACT COMPONENTS` round.
#[derive(Clone, Debug)]
pub struct ContractOutcome {
    /// Component label (root vertex) for every vertex local to this PE.
    pub labels: FxHashMap<VertexId, VertexId>,
    /// Ids of the input edges this PE's owned vertices contributed to the
    /// MST this round (each undirected MST edge emitted exactly once
    /// machine-wide).
    pub mst_edge_ids: Vec<u64>,
}

/// Output of the local preprocessing pass.
#[derive(Clone, Debug)]
pub struct PreprocessOutcome {
    /// Local edges surviving contraction (intra-component edges removed),
    /// still with original endpoints — [`relabel`] rewrites them. Empty
    /// when the gate rejects (`applied == false`): the caller keeps using
    /// its own graph, nothing is cloned.
    pub edges: Vec<CEdge>,
    /// Local component label per contracted vertex (identity for frozen
    /// shared vertices and for everything when the gate rejects).
    pub labels: FxHashMap<VertexId, VertexId>,
    /// True when the locality gate accepted and contraction ran.
    pub applied: bool,
    /// Ids of local edges proven to be MST edges by the cut property.
    pub mst_edge_ids: Vec<u64>,
}

// ---------------------------------------------------------------------
// pull-based label/parent lookup
// ---------------------------------------------------------------------

/// Pull-protocol lookup: resolve `queries` at the *home PE* of each
/// queried vertex with that PE's `resolve` function. Collective.
///
/// Pull rather than push: the edge_cases regression showed that routing
/// answers by home-of-reverse-edge misses duplicate holders; serving
/// explicit requests delivers to every PE that asks.
///
/// The home PE is monotone in the vertex id, so the radix-sorted query
/// list is already grouped by destination: both directions of the
/// exchange are flat buffers built from a count array alone — no
/// scatter pass and no per-item source tag. The reply carries *values
/// only*: it rides back in the request's bucket, so position alone pairs
/// it with the query — half the reply volume of a key-value exchange.
fn pull<F>(
    comm: &Comm,
    g: &DistGraph,
    queries: Vec<VertexId>,
    resolve: F,
) -> FxHashMap<VertexId, VertexId>
where
    F: Fn(VertexId) -> VertexId,
{
    pull_values(comm, queries, |q| g.home_of_vertex(q), resolve)
}

/// The count-only request/reply exchange shared by [`pull`] and the
/// [`DistArray`] lookups: radix-sort and dedup the queried ids, group
/// them by their (monotone) home with a count array alone, and run the
/// value-only [`Comm::request_reply`] wire pattern — replies zip back by
/// position. Collective.
fn pull_values(
    comm: &Comm,
    mut ids: Vec<u64>,
    home_of: impl Fn(u64) -> usize,
    resolve: impl Fn(u64) -> u64,
) -> FxHashMap<u64, u64> {
    kamsta_sort::radix_sort_keys(&mut ids);
    ids.dedup();
    comm.charge_local(ids.len() as u64);
    let mut counts = vec![0usize; comm.size()];
    for &id in &ids {
        counts[home_of(id)] += 1;
    }
    let asked = ids.clone();
    let requests = FlatBuckets::from_counts(ids, &counts);
    let values = comm.request_reply(requests, |&id| resolve(id));
    asked.into_iter().zip(values).collect()
}

// ---------------------------------------------------------------------
// pipeline stage 1: MIN EDGES
// ---------------------------------------------------------------------

/// Select each local vertex's globally lightest incident edge in the
/// unique-weight total order (Sec. IV: `MIN EDGES`). For vertices whose
/// edge range spans a PE boundary, local candidates are merged through an
/// allgather so every holder learns the same winner. Collective.
pub fn min_edges(comm: &Comm, g: &DistGraph) -> Vec<MinEdge> {
    comm.charge_local(g.edges.len() as u64);
    let mut sels: Vec<MinEdge> = Vec::new();
    let mut shared_cands: Vec<MinEdge> = Vec::new();
    for (v, range) in g.vertex_segments() {
        let best = g.edges[range]
            .iter()
            .filter(|e| !e.is_self_loop())
            .min_by_key(|e| (e.w, e.id));
        if let Some(&edge) = best {
            let sel = MinEdge { v, edge };
            if g.is_shared(v) {
                shared_cands.push(sel);
            }
            sels.push(sel);
        }
    }
    // Merge boundary-vertex candidates machine-wide (at most p − 1
    // distinct shared vertices exist, Sec. II-B).
    let all_cands = comm.allgatherv(shared_cands);
    if !all_cands.is_empty() {
        let mut winner: FxHashMap<VertexId, CEdge> = FxHashMap::default();
        for cand in all_cands {
            let slot = winner.entry(cand.v).or_insert(cand.edge);
            if (cand.edge.w, cand.edge.id) < (slot.w, slot.id) {
                *slot = cand.edge;
            }
        }
        for sel in &mut sels {
            if let Some(&edge) = winner.get(&sel.v) {
                sel.edge = edge;
            }
        }
    }
    sels
}

// ---------------------------------------------------------------------
// pipeline stage 2: CONTRACT COMPONENTS
// ---------------------------------------------------------------------

/// Hook every owned vertex along its selected edge, elect the smaller
/// endpoint of each pseudo-tree's 2-cycle as root, and resolve component
/// labels by distributed pointer doubling over the vertex-home partition
/// (Sec. IV-B). Emits the round's MST edge ids (one per non-root owned
/// vertex — exactly the pseudo-tree edges). Collective.
pub fn contract_components(comm: &Comm, g: &DistGraph, sels: &[MinEdge]) -> ContractOutcome {
    let rank = comm.rank();
    // Owned vertices: the home PE (last holder) runs the hooking; other
    // holders of a shared vertex receive the label afterwards.
    let mut parent: FxHashMap<VertexId, VertexId> = FxHashMap::default();
    let mut chosen: FxHashMap<VertexId, u64> = FxHashMap::default();
    for sel in sels {
        if g.home_of_vertex(sel.v) == rank {
            parent.insert(sel.v, sel.edge.v);
            chosen.insert(sel.v, sel.edge.id);
        }
    }
    comm.charge_local(sels.len() as u64);

    // 2-cycle root election: the component minimum edge is selected from
    // both sides; the smaller endpoint becomes the root.
    let targets: Vec<VertexId> = parent.values().copied().collect();
    let grand = pull(comm, g, targets, |x| parent.get(&x).copied().unwrap_or(x));
    let mut roots: Vec<VertexId> = Vec::new();
    for (&v, &u) in &parent {
        if grand.get(&u) == Some(&v) && v < u {
            roots.push(v);
        }
    }
    for &r in &roots {
        parent.insert(r, r);
    }

    // Pointer doubling until every owned pointer reaches its root. The
    // round count is synchronised via the allreduced change counter.
    loop {
        let targets: Vec<VertexId> = parent.values().copied().collect();
        let hop = pull(comm, g, targets, |x| parent.get(&x).copied().unwrap_or(x));
        let mut changed = 0u64;
        for u in parent.values_mut() {
            if let Some(&nu) = hop.get(u) {
                if nu != *u {
                    *u = nu;
                    changed += 1;
                }
            }
        }
        if comm.allreduce_sum(changed) == 0 {
            break;
        }
    }

    // Every owned non-root vertex contributes its selected edge.
    let mst_edge_ids: Vec<u64> = chosen
        .iter()
        .filter(|&(v, _)| parent.get(v) != Some(v))
        .map(|(_, &id)| id)
        .collect();

    // Labels for *all* local vertices (shared copies query the owner).
    let locals = g.local_vertices();
    let labels = pull(comm, g, locals, |x| parent.get(&x).copied().unwrap_or(x));
    ContractOutcome {
        labels,
        mst_edge_ids,
    }
}

// ---------------------------------------------------------------------
// pipeline stage 3: EXCHANGE LABELS + RELABEL
// ---------------------------------------------------------------------

/// Fetch component labels for this PE's ghost vertices — destinations
/// homed on other PEs — with the pull protocol (Sec. IV-C). Collective.
pub fn exchange_labels<F>(comm: &Comm, g: &DistGraph, label_of: F) -> FxHashMap<VertexId, VertexId>
where
    F: Fn(VertexId) -> VertexId,
{
    let rank = comm.rank();
    comm.charge_local(g.edges.len() as u64);
    let ghosts: Vec<VertexId> = g
        .edges
        .iter()
        .map(|e| e.v)
        .filter(|&v| g.home_of_vertex(v) != rank)
        .collect();
    pull(comm, g, ghosts, label_of)
}

/// Rewrite edge endpoints to component labels — sources through the local
/// `label_of`, destinations through the ghost table — and drop the
/// self-loops that contraction created. Preserves ids and weights, so the
/// symmetric closure of the distributed edge list is maintained. Borrows
/// the edge slice: the output is a fresh vector either way, so callers
/// never have to clone their graph to call this.
pub fn relabel<F>(
    comm: &Comm,
    g: &DistGraph,
    edges: &[CEdge],
    label_of: F,
    ghost: &FxHashMap<VertexId, VertexId>,
) -> Vec<CEdge>
where
    F: Fn(VertexId) -> VertexId,
{
    debug_assert!(g.pes() == comm.size());
    comm.charge_local(edges.len() as u64);
    edges
        .iter()
        .filter_map(|&(mut e)| {
            e.u = label_of(e.u);
            e.v = ghost.get(&e.v).copied().unwrap_or_else(|| label_of(e.v));
            (e.u != e.v).then_some(e)
        })
        .collect()
}

// ---------------------------------------------------------------------
// pipeline stage 4: REDISTRIBUTE
// ---------------------------------------------------------------------

/// Parallel-edge elimination + distributed sort + re-establishment of the
/// distributed graph structure (Sec. IV-C, Sec. VI-B). Keeps, per ordered
/// endpoint pair, the copy that is minimal in `(w, id)` — both directions
/// of an undirected pair see the same weight multiset, so the surviving
/// graph stays symmetric. Collective.
pub fn redistribute(comm: &Comm, edges: Vec<CEdge>, cfg: &MstConfig) -> DistGraph {
    let filtered: Vec<CEdge> = match cfg.dedup {
        DedupStrategy::HashFilter => prefilter_pairs(comm, &edges),
        DedupStrategy::Sort => {
            // Same linear scan as the prefilter pays, so the Sec. VI-B
            // ablation compares strategies under equal γ-accounting.
            comm.charge_local(edges.len() as u64);
            edges.into_iter().filter(|e| !e.is_self_loop()).collect()
        }
    };

    // Distributed sort under the lexicographic order, local phases radix
    // on the packed (u, v, w, id) key.
    let mut sorted = kamsta_sort::sort_auto_by_key(comm, filtered, 0xC0FFEE, CEdge::lex_key);
    comm.charge_local(sorted.len() as u64);
    // Keep the first (lightest, smallest-id) copy of each consecutive pair
    // group; groups straddling PE boundaries are resolved below.
    sorted.dedup_by(|a, b| a.u == b.u && a.v == b.v);

    let my_first = sorted.first().map(|e| (e.u, e.v));
    let my_last = sorted.last().map(|e| (e.u, e.v));
    let bounds = comm.allgather((my_first, my_last));
    if let Some(fp) = my_first {
        // Globally sorted: if an earlier non-empty PE ends on my first
        // pair, that PE holds the group's first copy — drop my leaders.
        let continued = bounds[..comm.rank()]
            .iter()
            .any(|&(_, last)| last == Some(fp));
        if continued {
            let cut = sorted.iter().take_while(|e| (e.u, e.v) == fp).count();
            sorted.drain(..cut);
        }
    }

    let balanced = kamsta_sort::rebalance(comm, sorted);
    DistGraph::establish(comm, balanced)
}

// ---------------------------------------------------------------------
// local preprocessing (Sec. IV-A)
// ---------------------------------------------------------------------

/// Fraction of globally PE-internal edges above which local contraction
/// is worthwhile (the high-locality gate of Sec. IV-A).
const PREPROCESS_MIN_LOCAL_FRACTION: f64 = 0.25;

/// Contract purely local subtrees before the first communication round
/// (Sec. IV-A). A vertex is *contractible* when it is local and not
/// shared, so its full adjacency is on this PE and its minimum edge is a
/// valid global minimum (cut property). Components grow only through
/// contractible vertices; a component whose minimum edge leaves the
/// contractible set freezes. Gate and outcome flag are global (allreduce
/// on the internal-edge fraction), so GNM/RMAT-like inputs skip the pass
/// machine-wide. Collective.
pub fn local_contract(comm: &Comm, g: &DistGraph, cfg: &MstConfig) -> PreprocessOutcome {
    let verts = g.local_vertices();
    let vidx: FxHashMap<VertexId, u32> = verts
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i as u32))
        .collect();
    let contractible: Vec<bool> = verts.iter().map(|&v| !g.is_shared(v)).collect();
    let is_contractible = |v: VertexId| -> Option<u32> {
        vidx.get(&v).copied().filter(|&i| contractible[i as usize])
    };

    // Locality gate: globally averaged fraction of edges with both
    // endpoints contractible on their holder.
    comm.charge_local(g.edges.len() as u64);
    let internal = g
        .edges
        .iter()
        .filter(|e| is_contractible(e.u).is_some() && is_contractible(e.v).is_some())
        .count() as u64;
    let internal_global = comm.allreduce_sum(internal);
    let applied = cfg.preprocessing
        && g.m_global > 0
        && (internal_global as f64) >= PREPROCESS_MIN_LOCAL_FRACTION * g.m_global as f64;
    if !applied {
        return PreprocessOutcome {
            edges: Vec::new(),
            labels: FxHashMap::default(),
            applied: false,
            mst_edge_ids: Vec::new(),
        };
    }

    // Iterated local Borůvka over the contractible subgraph: per round,
    // each active component's minimum incident edge (over the *full*
    // local adjacency of its members) either merges two contractible
    // components — emitting an MST edge — or freezes the component.
    let mut uf = UnionFind::new(verts.len());
    let mut active: Vec<bool> = contractible.clone();
    let mut mst_edge_ids: Vec<u64> = Vec::new();
    loop {
        comm.charge_local(g.edges.len() as u64);
        // Component minimum over active components.
        let mut best: FxHashMap<u32, CEdge> = FxHashMap::default();
        for e in &g.edges {
            if e.is_self_loop() {
                continue;
            }
            let Some(iu) = is_contractible(e.u) else {
                continue;
            };
            let cu = uf.find(iu);
            if !active[cu as usize] {
                continue;
            }
            // Skip intra-component edges.
            if let Some(iv) = is_contractible(e.v) {
                if uf.find(iv) == cu {
                    continue;
                }
            }
            let slot = best.entry(cu).or_insert(*e);
            if (e.w, e.id) < (slot.w, slot.id) {
                *slot = *e;
            }
        }
        let mut merged = false;
        for (cu, e) in best {
            match is_contractible(e.v) {
                Some(iv) => {
                    // The mutual-minimum 2-cycle shares one undirected
                    // edge; the second union returns false and must not
                    // re-emit it.
                    if uf.union(cu, iv) {
                        mst_edge_ids.push(e.id);
                        merged = true;
                    }
                }
                None => {
                    // Minimum edge leaves the contractible set: freeze.
                    active[uf.find(cu) as usize] = false;
                }
            }
        }
        // Re-anchor activity on current roots (merging may have moved
        // the root identity).
        let mut next_active = vec![false; verts.len()];
        for i in 0..verts.len() as u32 {
            if contractible[i as usize] && active[i as usize] {
                let r = uf.find(i);
                if active[r as usize] {
                    next_active[r as usize] = true;
                }
            }
        }
        active = next_active;
        if !merged {
            break;
        }
    }

    // Representative per component: the minimum member vertex id.
    let mut rep: Vec<VertexId> = vec![VertexId::MAX; verts.len()];
    for (i, &v) in verts.iter().enumerate() {
        if contractible[i] {
            let r = uf.find(i as u32) as usize;
            rep[r] = rep[r].min(v);
        }
    }
    let mut labels: FxHashMap<VertexId, VertexId> = FxHashMap::default();
    for (i, &v) in verts.iter().enumerate() {
        if contractible[i] {
            labels.insert(v, rep[uf.find(i as u32) as usize]);
        }
    }

    // Drop intra-component edges (they would become self-loops).
    comm.charge_local(g.edges.len() as u64);
    let edges: Vec<CEdge> = g
        .edges
        .iter()
        .filter(|e| match (is_contractible(e.u), is_contractible(e.v)) {
            (Some(iu), Some(iv)) => uf.find(iu) != uf.find(iv),
            _ => true,
        })
        .copied()
        .collect();

    PreprocessOutcome {
        edges,
        labels,
        applied: true,
        mst_edge_ids,
    }
}

// ---------------------------------------------------------------------
// replicated base case
// ---------------------------------------------------------------------

/// Kruskal over a replicated edge list, by the unique-weight total order
/// with ids as the final tie-break. Returns the chosen edge ids —
/// identical on every PE.
fn kruskal_ids(all: &[CEdge]) -> Vec<u64> {
    let (ids, _) = kruskal_ids_and_labels(all);
    ids
}

/// Sort edges by the unique-weight total order `(w, id)` — the
/// pair-canonical ids make this the paper's `(w, min, max)` order on
/// *original* endpoints, invariant under contraction. One radix sort on
/// the packed 96-bit key, width-parallel on hybrid PEs (bit-identical
/// to the sequential sorter at every width).
fn sort_by_unique_weight(edges: &mut [CEdge]) {
    kamsta_sort::par_radix_sort_by_key(edges, |e: &CEdge| ((e.w as u128) << 64) | e.id as u128);
}

/// As [`kruskal_ids`], additionally returning the component label (the
/// minimum member vertex id) of every vertex present in `all`.
fn kruskal_ids_and_labels(all: &[CEdge]) -> (Vec<u64>, FxHashMap<VertexId, VertexId>) {
    let mut vidx: FxHashMap<VertexId, u32> = FxHashMap::default();
    let mut verts: Vec<VertexId> = Vec::new();
    for e in all {
        for v in [e.u, e.v] {
            vidx.entry(v).or_insert_with(|| {
                verts.push(v);
                (verts.len() - 1) as u32
            });
        }
    }
    let mut order: Vec<CEdge> = all.iter().filter(|e| !e.is_self_loop()).copied().collect();
    sort_by_unique_weight(&mut order);
    let mut uf = UnionFind::new(verts.len());
    let mut ids = Vec::new();
    for e in order {
        if uf.union(vidx[&e.u], vidx[&e.v]) {
            ids.push(e.id);
        }
    }
    let mut rep: Vec<VertexId> = vec![VertexId::MAX; verts.len()];
    for (i, &v) in verts.iter().enumerate() {
        let r = uf.find(i as u32) as usize;
        rep[r] = rep[r].min(v);
    }
    let labels = verts
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, rep[uf.find(i as u32) as usize]))
        .collect();
    (ids, labels)
}

/// Local keep-lightest-per-pair prefilter used by the `REDISTRIBUTE`
/// dedup — identical duplicates and parallel copies never travel. A radix
/// sort on the packed lexicographic key groups each ordered `(u, v)` pair
/// with its lightest `(w, id)` copy first, so one dedup scan keeps
/// exactly the survivors the old hash-table prefilter kept — already
/// sorted. Both directions survive, keeping the edge list symmetric.
fn prefilter_pairs(comm: &Comm, edges: &[CEdge]) -> Vec<CEdge> {
    use rayon::prelude::*;
    comm.charge_local(edges.len() as u64);
    let mut out: Vec<CEdge> = if par_scan_engages(edges.len()) {
        edges
            .par_iter()
            .filter(|e| !e.is_self_loop())
            .map(|e| *e)
            .collect()
    } else {
        edges
            .iter()
            .filter(|e| !e.is_self_loop())
            .copied()
            .collect()
    };
    kamsta_sort::local_radix_sort(comm, &mut out, CEdge::lex_key);
    par_dedup_pairs(out)
}

/// Scan size above which the parallel filter/dedup scans beat their
/// sequential loops. The per-element work here is a couple of field
/// compares — far too little to amortize chunk-queue jobs below tens
/// of thousands of elements even with real cores behind the pool, and
/// the prefilters run once per Borůvka round, so the overhead
/// compounds on duplicate-heavy families (RMAT). The parallel and
/// sequential scans are bit-identical, so this is a pure profitability
/// gate.
const PAR_SCAN_CUTOFF: usize = 65_536;

fn par_scan_engages(n: usize) -> bool {
    n >= PAR_SCAN_CUTOFF && rayon::current_num_threads() > 1
}

/// Drop all but the first element of every `(u, v)` run in a sorted
/// edge list. A parallel keep-flag scan: element `i` survives iff its
/// pair differs from element `i - 1`'s, a predecessor comparison each
/// chunk can make against the immutable sorted slice — so the ordered
/// collect is bit-identical to the sequential `dedup_by` at every
/// width. After the lexicographic sort, run heads carry the minimal
/// `(w, id)`, i.e. exactly the survivors the sequential dedup keeps.
fn par_dedup_pairs(sorted: Vec<CEdge>) -> Vec<CEdge> {
    use rayon::prelude::*;
    if !par_scan_engages(sorted.len()) {
        let mut out = sorted;
        out.dedup_by(|a, b| a.u == b.u && a.v == b.v);
        return out;
    }
    sorted
        .par_iter()
        .enumerate()
        .filter(|&(i, e)| i == 0 || !(sorted[i - 1].u == e.u && sorted[i - 1].v == e.v))
        .map(|(_, e)| *e)
        .collect()
}

/// Keep-lightest-per-*unordered*-pair prefilter for the replicated base
/// cases. The symmetric closure holds both directions of every
/// undirected edge machine-wide, and a sequential Kruskal can only ever
/// use, per unordered pair, the copy minimal in `(w, id)` — the back
/// edge and every (also heavier) parallel copy join two already-connected
/// components. Keeping only the `u < v` direction halves the gathered
/// volume; the pair-major lexicographic sort (`u, v, w, id` with
/// `(u, v) = (min, max)` after the direction filter) then groups all
/// remaining parallel copies of a pair, so one dedup scan keeps exactly
/// the candidate the sequential tie-break would pick. The undirected
/// MSF is unique under the unique-weight total order, so the forest is
/// unchanged.
fn prefilter_unordered(comm: &Comm, edges: &[CEdge]) -> Vec<CEdge> {
    use rayon::prelude::*;
    comm.charge_local(edges.len() as u64);
    let mut out: Vec<CEdge> = if par_scan_engages(edges.len()) {
        edges.par_iter().filter(|e| e.u < e.v).map(|e| *e).collect()
    } else {
        edges.iter().filter(|e| e.u < e.v).copied().collect()
    };
    kamsta_sort::local_radix_sort(comm, &mut out, CEdge::lex_key);
    par_dedup_pairs(out)
}

/// The base case (Sec. IV-D stand-in): gather the prefiltered remaining
/// edges at rank 0 and solve sequentially there. Only the root receives
/// ids — it is also the PE that claims them for `REDISTRIBUTE MST`, so
/// nothing needs to be broadcast back. Collective.
fn rooted_base_case(comm: &Comm, edges: &[CEdge]) -> Vec<u64> {
    let mine = prefilter_unordered(comm, edges);
    match comm.gatherv(0, mine) {
        Some(all) => {
            comm.charge_local(2 * all.len() as u64);
            kruskal_ids(&all)
        }
        None => Vec::new(),
    }
}

// ---------------------------------------------------------------------
// Algorithm 1: distributed Borůvka
// ---------------------------------------------------------------------

/// The scalable distributed Borůvka algorithm (Algorithm 1): optional
/// local preprocessing, then contraction rounds until the replicated base
/// case, then `REDISTRIBUTE MST` to map edge ids back to original edges.
/// Collective; returns this PE's share of the MSF.
pub fn boruvka_mst(comm: &Comm, input: &InputGraph, cfg: &MstConfig) -> MstResult {
    let mut ph = Phased::new(comm);
    let p = comm.size();
    let mut msf_ids: Vec<u64> = Vec::new();
    // The working graph: the pipeline reads the input graph in place
    // until the first redistribution builds an owned one — the input is
    // never cloned.
    let mut cur: Option<DistGraph> = None;

    if cfg.preprocessing {
        let pre = ph.measure(Phase::LocalPreprocessing, |c| {
            local_contract(c, &input.graph, cfg)
        });
        if pre.applied {
            msf_ids.extend(&pre.mst_edge_ids);
            let labels = pre.labels;
            let label_of = |v: VertexId| labels.get(&v).copied().unwrap_or(v);
            let relabeled = ph.measure(Phase::ExchangeLabelsRelabel, |c| {
                let ghost = exchange_labels(c, &input.graph, label_of);
                relabel(c, &input.graph, &pre.edges, label_of, &ghost)
            });
            cur = Some(ph.measure(Phase::Redistribute, |c| redistribute(c, relabeled, cfg)));
        }
    }

    loop {
        let g = cur.as_ref().unwrap_or(&input.graph);
        if g.n_global <= cfg.base_threshold(p) || g.m_global == 0 {
            break;
        }
        let sels = ph.measure(Phase::GraphSetupMinEdges, |c| min_edges(c, g));
        let outcome = ph.measure(Phase::ContractComponents, |c| {
            contract_components(c, g, &sels)
        });
        msf_ids.extend(&outcome.mst_edge_ids);
        let labels = outcome.labels;
        let label_of = |v: VertexId| labels.get(&v).copied().unwrap_or(v);
        let relabeled = ph.measure(Phase::ExchangeLabelsRelabel, |c| {
            let ghost = exchange_labels(c, g, label_of);
            relabel(c, g, &g.edges, label_of, &ghost)
        });
        cur = Some(ph.measure(Phase::Redistribute, |c| redistribute(c, relabeled, cfg)));
    }

    let g = cur.as_ref().unwrap_or(&input.graph);
    let edges = ph.measure(Phase::BaseCaseRedistributeMst, |c| {
        // Non-root PEs receive no ids from the rooted base case.
        msf_ids.extend(rooted_base_case(c, &g.edges));
        input.redistribute_mst(c, std::mem::take(&mut msf_ids))
    });
    MstResult {
        edges,
        phases: ph.times,
    }
}

// ---------------------------------------------------------------------
// the block-distributed representative array (Sec. V)
// ---------------------------------------------------------------------

/// A block-distributed array over a dense id space `[0, n)`, holding one
/// `u64` per id — the representative/parent arrays of Filter-Borůvka's
/// distributed filtering and of the sparse-matrix baseline. PE `i` owns
/// the contiguous block `[i·n/p, (i+1)·n/p)`; entries start as the
/// identity.
#[derive(Clone, Debug)]
pub struct DistArray {
    values: Vec<u64>,
    lo: u64,
    n: u64,
    p: usize,
}

impl DistArray {
    /// Create the identity array over `[0, n)`. Collective only in the
    /// sense that every PE must construct it with the same `n`.
    pub fn new(comm: &Comm, n: u64) -> Self {
        let p = comm.size();
        let rank = comm.rank();
        let lo = Self::block_start(n, p, rank);
        let hi = Self::block_start(n, p, rank + 1);
        Self {
            values: (lo..hi).collect(),
            lo,
            n,
            p,
        }
    }

    fn block_start(n: u64, p: usize, i: usize) -> u64 {
        (i as u64).saturating_mul(n) / p as u64
    }

    /// Owning PE of index `id`.
    pub fn home(&self, id: u64) -> usize {
        debug_assert!(id < self.n);
        let mut dest = ((id as u128 * self.p as u128) / self.n.max(1) as u128) as usize;
        dest = dest.min(self.p - 1);
        while dest > 0 && id < Self::block_start(self.n, self.p, dest) {
            dest -= 1;
        }
        while dest + 1 < self.p && id >= Self::block_start(self.n, self.p, dest + 1) {
            dest += 1;
        }
        dest
    }

    /// Number of entries this PE owns.
    pub fn local_len(&self) -> usize {
        self.values.len()
    }

    /// Fetch `a[id]` for every queried id (duplicates welcome); returns
    /// an id → value map. Collective. The block home is monotone in the
    /// id, so both exchange directions are count-only flat buffers (see
    /// [`pull`]).
    pub fn bulk_get(&self, comm: &Comm, ids: Vec<u64>) -> FxHashMap<u64, u64> {
        pull_values(
            comm,
            ids,
            |id| self.home(id),
            |id| self.values[(id - self.lo) as usize],
        )
    }

    /// Write `a[id] = value` for every pair (last writer per id wins
    /// deterministically by sender rank, then submission order).
    /// Collective.
    pub fn bulk_set(&mut self, comm: &Comm, updates: Vec<(u64, u64)>) {
        comm.charge_local(updates.len() as u64);
        let routed: Vec<(usize, (u64, u64))> = updates
            .into_iter()
            .map(|(id, val)| (self.home(id), (id, val)))
            .collect();
        for (id, val) in route(comm, routed) {
            self.values[(id - self.lo) as usize] = val;
        }
    }

    /// Shortcut the array to its roots by pointer doubling: repeatedly
    /// replace every entry by the entry it points at, until the global
    /// fixpoint. Requires the pointer graph to be a forest with self-loop
    /// roots. Collective.
    pub fn compress(&mut self, comm: &Comm) {
        loop {
            let targets: Vec<u64> = self
                .values
                .iter()
                .enumerate()
                .filter(|&(i, &v)| v != self.lo + i as u64)
                .map(|(_, &v)| v)
                .collect();
            let hop = self.bulk_get(comm, targets);
            let mut changed = 0u64;
            comm.charge_local(self.values.len() as u64);
            for v in self.values.iter_mut() {
                if let Some(&nv) = hop.get(v) {
                    if nv != *v {
                        *v = nv;
                        changed += 1;
                    }
                }
            }
            if comm.allreduce_sum(changed) == 0 {
                break;
            }
        }
    }

    /// Apply a replicated relabeling to the owned block: every stored
    /// value present in `map` is replaced. Local (the map is already
    /// replicated).
    pub fn apply_map(&mut self, comm: &Comm, map: &FxHashMap<u64, u64>) {
        comm.charge_local(self.values.len() as u64);
        for v in self.values.iter_mut() {
            if let Some(&nv) = map.get(v) {
                *v = nv;
            }
        }
    }

    /// Absorb a relabeling held only at rank 0: every PE queries the root
    /// for its distinct stored values and rewrites matches — far cheaper
    /// than replicating the map when blocks are small relative to the
    /// graph. Collective.
    pub fn absorb_from_root(&mut self, comm: &Comm, map: Option<FxHashMap<u64, u64>>) {
        let map = map.unwrap_or_default();
        let resolved = pull_values(
            comm,
            self.values.clone(),
            |_| 0,
            |v| map.get(&v).copied().unwrap_or(v),
        );
        for v in self.values.iter_mut() {
            if let Some(&nv) = resolved.get(v) {
                *v = nv;
            }
        }
    }
}

// ---------------------------------------------------------------------
// Algorithm 2: Filter-Borůvka
// ---------------------------------------------------------------------

/// The unique-weight total order Filter-Borůvka partitions on: `(w, id)`
/// with pair-canonical ids — direction-symmetric (both copies of an
/// undirected edge share the id) and contraction-invariant.
type WeightKey = (Weight, u64);

/// Deterministic sample-median pivot over the unique-weight keys.
fn sample_pivot(comm: &Comm, edges: &[CEdge]) -> WeightKey {
    const SAMPLES_PER_PE: usize = 24;
    let mut sample: Vec<WeightKey> = Vec::with_capacity(SAMPLES_PER_PE);
    if !edges.is_empty() {
        let stride = (edges.len() / SAMPLES_PER_PE).max(1);
        sample.extend(
            edges
                .iter()
                .step_by(stride)
                .take(SAMPLES_PER_PE)
                .map(|e| (e.w, e.id)),
        );
    }
    let mut all = comm.allgatherv(sample);
    all.sort_unstable();
    all[all.len() / 2]
}

/// Recursion state threaded through [`filter_mst`].
struct FilterCtx<'a> {
    cfg: &'a MstConfig,
    stats: FilterStats,
    msf_ids: Vec<u64>,
}

/// Base case: relabel through the representative array, replicate, solve
/// sequentially, absorb the new components back into the array.
fn filter_base_case(comm: &Comm, edges: &[CEdge], reps: &mut DistArray, ctx: &mut FilterCtx) {
    let mut endpoints: Vec<u64> = Vec::with_capacity(edges.len() * 2);
    for e in edges {
        endpoints.push(e.u);
        endpoints.push(e.v);
    }
    let rep_of = reps.bulk_get(comm, endpoints);
    comm.charge_local(edges.len() as u64);
    let relabeled: Vec<CEdge> = edges
        .iter()
        .filter_map(|&(mut e)| {
            e.u = *rep_of.get(&e.u).unwrap_or(&e.u);
            e.v = *rep_of.get(&e.v).unwrap_or(&e.v);
            (e.u != e.v).then_some(e)
        })
        .collect();
    let kept = comm.allreduce_sum(relabeled.len() as u64);
    ctx.stats.base_case_calls += 1;
    ctx.stats.base_case_edges += kept;
    let mine = prefilter_unordered(comm, &relabeled);
    let labels_at_root = comm.gatherv(0, mine).map(|all| {
        comm.charge_local(2 * all.len() as u64);
        let (ids, labels) = kruskal_ids_and_labels(&all);
        ctx.msf_ids.extend(ids);
        labels
    });
    reps.absorb_from_root(comm, labels_at_root);
}

/// Quicksort-style recursion of Algorithm 2: partition by a sampled
/// pivot, recurse light-first, filter the heavy side through the
/// representative array, recurse on the survivors. All branch decisions
/// are allreduced, keeping every PE in lockstep.
fn filter_rec(
    comm: &Comm,
    ph: &mut Phased<'_>,
    edges: Cow<'_, [CEdge]>,
    reps: &mut DistArray,
    ctx: &mut FilterCtx,
    depth: u32,
) {
    let p = comm.size();
    let m = comm.allreduce_sum(edges.len() as u64);
    if m == 0 {
        return;
    }
    if m <= ctx.cfg.filter_min_edges_per_pe.saturating_mul(p as u64) || depth >= 60 {
        ph_base(ph, &edges, reps, ctx);
        return;
    }
    ctx.stats.partition_steps += 1;
    let (light, heavy) = ph.measure(Phase::PartitionFilter, |c| {
        let pivot = sample_pivot(c, &edges);
        c.charge_local(edges.len() as u64);
        let mut light = Vec::new();
        let mut heavy = Vec::new();
        for &e in edges.iter() {
            if (e.w, e.id) <= pivot {
                light.push(e);
            } else {
                heavy.push(e);
            }
        }
        (light, heavy)
    });
    let m_light = comm.allreduce_sum(light.len() as u64);
    if m_light == m {
        // Degenerate split (all keys equal): the base case dedups it away.
        ph_base(ph, &light, reps, ctx);
        return;
    }
    filter_rec(comm, ph, Cow::Owned(light), reps, ctx, depth + 1);

    // Filter: a heavy edge whose endpoints already share a representative
    // is spanned by lighter edges and can never join the MSF.
    let (survivors, dropped) = ph.measure(Phase::PartitionFilter, |c| {
        let mut endpoints: Vec<u64> = Vec::with_capacity(heavy.len() * 2);
        for e in &heavy {
            endpoints.push(e.u);
            endpoints.push(e.v);
        }
        let rep_of = reps.bulk_get(c, endpoints);
        c.charge_local(heavy.len() as u64);
        let before = heavy.len() as u64;
        let survivors: Vec<CEdge> = heavy
            .into_iter()
            .filter(|e| rep_of.get(&e.u).unwrap_or(&e.u) != rep_of.get(&e.v).unwrap_or(&e.v))
            .collect();
        let dropped = before - survivors.len() as u64;
        (survivors, dropped)
    });
    ctx.stats.filtered_edges += comm.allreduce_sum(dropped);
    filter_rec(comm, ph, Cow::Owned(survivors), reps, ctx, depth + 1);
}

fn ph_base(ph: &mut Phased<'_>, edges: &[CEdge], reps: &mut DistArray, ctx: &mut FilterCtx) {
    ph.measure(Phase::BaseCaseRedistributeMst, |c| {
        filter_base_case(c, edges, reps, ctx)
    });
}

/// The Filter-Borůvka algorithm (Algorithm 2): Filter-Kruskal-style
/// weight partitioning with distributed filtering through the
/// block-distributed representative array. Collective; returns this PE's
/// share of the MSF plus the Theorem 1 statistics (identical on all PEs).
pub fn filter_mst(comm: &Comm, input: &InputGraph, cfg: &MstConfig) -> (MstResult, FilterStats) {
    let mut ph = Phased::new(comm);
    let local_max = input
        .graph
        .edges
        .iter()
        .map(|e| e.u.max(e.v))
        .max()
        .unwrap_or(0);
    let n_ids = comm.allreduce_max(local_max) + 1;
    let mut reps = DistArray::new(comm, n_ids);
    let mut ctx = FilterCtx {
        cfg,
        stats: FilterStats::default(),
        msf_ids: Vec::new(),
    };
    filter_rec(
        comm,
        &mut ph,
        Cow::Borrowed(input.graph.edges.as_slice()),
        &mut reps,
        &mut ctx,
        0,
    );
    let ids = std::mem::take(&mut ctx.msf_ids);
    let edges = ph.measure(Phase::BaseCaseRedistributeMst, |c| {
        input.redistribute_mst(c, ids)
    });
    (
        MstResult {
            edges,
            phases: ph.times,
        },
        ctx.stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig};
    use kamsta_graph::{GraphConfig, WEdge};

    #[test]
    fn mst_config_defaults_and_threshold() {
        let cfg = MstConfig::default();
        assert!(cfg.preprocessing);
        assert_eq!(cfg.dedup, DedupStrategy::HashFilter);
        assert_eq!(cfg.base_threshold(4), 4 * cfg.base_case_constant);
        assert!(!cfg.without_preprocessing().preprocessing);
    }

    #[test]
    fn dist_array_blocks_cover_space() {
        let out = Machine::run(MachineConfig::new(5), |comm| {
            let a = DistArray::new(comm, 23);
            let homes: Vec<usize> = (0..23).map(|i| a.home(i)).collect();
            (a.local_len(), homes)
        });
        let total: usize = out.results.iter().map(|(l, _)| l).sum();
        assert_eq!(total, 23);
        // All PEs agree on the home function, and it is monotone.
        let homes = &out.results[0].1;
        for r in &out.results {
            assert_eq!(&r.1, homes);
        }
        assert!(homes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn dist_array_get_set_compress() {
        let out = Machine::run(MachineConfig::new(3), |comm| {
            let mut a = DistArray::new(comm, 10);
            // Build the chain 9 → 8 → … → 1 → 0 collaboratively.
            let updates: Vec<(u64, u64)> = if comm.rank() == 0 {
                (1..10).map(|i| (i, i - 1)).collect()
            } else {
                Vec::new()
            };
            a.bulk_set(comm, updates);
            a.compress(comm);
            let got = a.bulk_get(comm, (0..10).collect());
            (0..10).map(|i| got[&i]).collect::<Vec<u64>>()
        });
        for r in out.results {
            assert_eq!(r, vec![0; 10]);
        }
    }

    #[test]
    fn kruskal_ids_pick_the_light_triangle() {
        let all = vec![
            CEdge::new(0, 1, 5, 10),
            CEdge::new(1, 2, 1, 11),
            CEdge::new(0, 2, 2, 12),
        ];
        let (ids, labels) = kruskal_ids_and_labels(&all);
        assert_eq!(ids, vec![11, 12]);
        assert_eq!(labels[&0], 0);
        assert_eq!(labels[&1], 0);
        assert_eq!(labels[&2], 0);
    }

    #[test]
    fn redistribute_dedups_across_boundaries() {
        // Many duplicate copies of few pairs, scattered over PEs.
        let out = Machine::run(MachineConfig::new(4), |comm| {
            let r = comm.rank() as u64;
            let mut edges = Vec::new();
            for k in 0..50u64 {
                edges.push(CEdge::new(0, 1, (k % 7 + 1) as u32, r * 100 + k));
                edges.push(CEdge::new(1, 0, (k % 7 + 1) as u32, r * 100 + 50 + k));
            }
            edges.sort_unstable();
            let g = redistribute(comm, edges, &MstConfig::default());
            (g.m_global, g.edges.clone())
        });
        assert_eq!(out.results[0].0, 2, "one surviving copy per direction");
        let all: Vec<CEdge> = out.results.iter().flat_map(|(_, e)| e.clone()).collect();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].w, all[1].w, "surviving weights symmetric");
    }

    #[test]
    fn boruvka_and_filter_agree_on_gnm() {
        let out = Machine::run(MachineConfig::new(4), |comm| {
            let input = InputGraph::generate(comm, GraphConfig::Gnm { n: 120, m: 900 }, 13);
            let cfg = MstConfig {
                base_case_constant: 8,
                filter_min_edges_per_pe: 32,
                ..MstConfig::default()
            };
            let all: Vec<WEdge> = input.graph.edges.iter().map(|e| e.wedge()).collect();
            let b = boruvka_mst(comm, &input, &cfg);
            let (f, stats) = filter_mst(comm, &input, &cfg);
            assert!(stats.base_case_calls > 0);
            (
                all,
                b.edges.iter().map(|e| e.wedge()).collect::<Vec<_>>(),
                f.edges.iter().map(|e| e.wedge()).collect::<Vec<_>>(),
            )
        });
        let graph: Vec<WEdge> = out.results.iter().flat_map(|(g, _, _)| g.clone()).collect();
        let msf_b: Vec<WEdge> = out.results.iter().flat_map(|(_, b, _)| b.clone()).collect();
        let msf_f: Vec<WEdge> = out.results.iter().flat_map(|(_, _, f)| f.clone()).collect();
        crate::verify_msf(&graph, &msf_b).unwrap();
        crate::verify_msf(&graph, &msf_f).unwrap();
    }
}
