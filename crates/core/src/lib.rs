//! # kamsta-core — massively parallel MST algorithms
//!
//! The paper's primary contribution (Sanders & Schimek, IPDPS 2023):
//!
//! * [`dist::boruvka_mst`] — the scalable distributed Borůvka algorithm
//!   (Algorithm 1): local preprocessing, minimum-edge selection, pointer-
//!   doubling component contraction with shared-vertex handling, ghost
//!   label exchange, relabel/redistribute, and the replicated-vertex base
//!   case.
//! * [`dist::filter_mst`] — the Filter-Borůvka algorithm (Algorithm 2):
//!   quicksort-style weight partitioning with distributed filtering
//!   through a block-distributed representative array.
//! * [`seq`] — sequential references (Kruskal, Jarník-Prim, Borůvka,
//!   Filter-Kruskal) for correctness and baselines.
//! * [`shared`] — rayon shared-memory Borůvka with min-priority-write
//!   (the hybrid-threading kernels and the Sec. VII-C stand-in).
//! * [`verify_msf`] — MSF verification against the Kruskal reference.
//! * [`instrument`] — the Fig. 6 phase taxonomy.

pub mod dist;
pub mod instrument;
pub mod seq;
pub mod shared;
mod verify;

pub use instrument::{Phase, PhaseTimes, Phased, WallStats};
pub use verify::verify_msf;
