//! MSF verification: structural checks plus weight comparison against the
//! Kruskal reference. Used pervasively by the test suite and available to
//! library users for output validation.

use crate::seq::{kruskal, msf_weight, UnionFind, VertexIndex};
use kamsta_graph::WEdge;

/// Verify that `msf` is a minimum spanning forest of `graph` (an
/// undirected or symmetric directed edge list). Checks:
///
/// 1. every MSF edge exists in the graph (same endpoints and weight),
/// 2. the MSF is acyclic,
/// 3. it spans: MSF components == graph components,
/// 4. total weight equals the Kruskal reference (by the matroid exchange
///    property, equal weight + spanning + acyclic ⇒ minimum).
pub fn verify_msf(graph: &[WEdge], msf: &[WEdge]) -> Result<(), String> {
    let idx = VertexIndex::build(graph);

    // 1. Edge existence (direction-insensitive).
    let mut canon: Vec<(u64, u64, u32)> = graph
        .iter()
        .map(|e| (e.u.min(e.v), e.u.max(e.v), e.w))
        .collect();
    canon.sort_unstable();
    for e in msf {
        let key = (e.u.min(e.v), e.u.max(e.v), e.w);
        if canon.binary_search(&key).is_err() {
            return Err(format!("MSF edge {e:?} does not exist in the graph"));
        }
    }

    // 2. Acyclic.
    let mut uf = UnionFind::new(idx.len());
    for e in msf {
        if !uf.union(idx.dense(e.u), idx.dense(e.v)) {
            return Err(format!("MSF contains a cycle through {e:?}"));
        }
    }

    // 3. Spanning: same number of components as the graph.
    let mut guf = UnionFind::new(idx.len());
    for e in graph {
        guf.union(idx.dense(e.u), idx.dense(e.v));
    }
    if uf.components() != guf.components() {
        return Err(format!(
            "MSF has {} components but the graph has {}",
            uf.components(),
            guf.components()
        ));
    }

    // 4. Minimum weight.
    let reference = msf_weight(&kruskal(graph));
    let got = msf_weight(msf);
    if reference != got {
        return Err(format!(
            "MSF weight {got} differs from reference {reference}"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::testutil::random_connected_graph;

    #[test]
    fn accepts_reference_forest() {
        let g = random_connected_graph(50, 100, 1);
        let msf = kruskal(&g);
        assert!(verify_msf(&g, &msf).is_ok());
    }

    #[test]
    fn rejects_foreign_edge() {
        let g = vec![WEdge::new(0, 1, 1), WEdge::new(1, 2, 2)];
        let bad = vec![WEdge::new(0, 2, 1), WEdge::new(1, 2, 2)];
        assert!(verify_msf(&g, &bad).unwrap_err().contains("does not exist"));
    }

    #[test]
    fn rejects_cycle() {
        let g = vec![
            WEdge::new(0, 1, 1),
            WEdge::new(1, 2, 2),
            WEdge::new(0, 2, 3),
        ];
        let bad = g.clone();
        assert!(verify_msf(&g, &bad).unwrap_err().contains("cycle"));
    }

    #[test]
    fn rejects_non_spanning() {
        let g = vec![WEdge::new(0, 1, 1), WEdge::new(1, 2, 2)];
        let bad = vec![WEdge::new(0, 1, 1)];
        assert!(verify_msf(&g, &bad).unwrap_err().contains("components"));
    }

    #[test]
    fn rejects_suboptimal_tree() {
        let g = vec![
            WEdge::new(0, 1, 1),
            WEdge::new(1, 2, 2),
            WEdge::new(0, 2, 3),
        ];
        let bad = vec![WEdge::new(0, 1, 1), WEdge::new(0, 2, 3)];
        assert!(verify_msf(&g, &bad).unwrap_err().contains("weight"));
    }
}
