//! # kamsta-baselines — competitor distributed MST algorithms
//!
//! Reimplementations of the two systems the paper compares against
//! (Sec. VII), built on the same `kamsta-comm` substrate so that the
//! comparison isolates *algorithm structure* (DESIGN.md S6):
//!
//! * [`sparse_matrix`] — the Awerbuch–Shiloach MSF of Baer et al. \[37\]:
//!   2D-partitioned edge matrix, per-round global candidate reductions,
//!   hook + pointer-doubling shortcuts over a block-distributed parent
//!   array. Structurally it touches *all* edges every round and cannot
//!   exploit locality ("only the processors on the diagonal of the matrix
//!   possess local edges") — the reasons the paper gives for its
//!   slowness.
//! * [`mnd_mst`] — the multi-node algorithm of Panja & Vadhiyar \[19\]:
//!   local MSF computation (discarding non-MSF local edges is safe by the
//!   cycle property), then hierarchical merging in fixed-size PE groups
//!   until one PE holds the remaining graph. Exploits locality well but
//!   concentrates growing merged graphs on group leaders and cannot split
//!   high-degree vertices (no shared vertices) — the reasons the paper
//!   gives for its scalability collapse.

mod mnd;
mod sparse_matrix;

pub use mnd::{mnd_mst, MndConfig};
pub use sparse_matrix::sparse_matrix;
