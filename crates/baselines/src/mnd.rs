//! MND-MST analogue (Panja & Vadhiyar \[19\]): local MSF + hierarchical
//! group merging.
//!
//! Each PE first reduces its local edges to their MSF (edges outside a
//! subgraph's MSF are the heaviest on some cycle and can never be global
//! MST edges — the cycle property). Fixed-size groups then ship their
//! surviving edges to a group leader, which merges and reduces again;
//! the process repeats on the leaders until one PE computes the final
//! forest.
//!
//! Deviation from the original (documented, DESIGN.md S6): the original
//! interleaves partial exchanges inside groups before electing leaders;
//! we merge directly at leaders. Both share the structural properties the
//! paper's evaluation hinges on: excellent use of locality, no shared
//! vertices (edges of a boundary vertex live on one PE), and merged
//! graphs that grow on ever-fewer PEs.

use kamsta_comm::{Comm, FlatBuckets};
use kamsta_core::seq::kruskal;
use kamsta_graph::{CEdge, WEdge};

/// Group size for hierarchical merging.
#[derive(Clone, Copy, Debug)]
pub struct MndConfig {
    pub group_size: usize,
}

impl Default for MndConfig {
    fn default() -> Self {
        Self { group_size: 4 }
    }
}

/// Compute the MSF; the result materialises on PE 0 (the final leader),
/// other PEs return an empty vector. Collective.
///
/// Input: this PE's slice of the sorted distributed edge list. Boundary
/// (shared) vertices are first consolidated onto a single PE, as the
/// paper does to meet MND-MST's input format — the step that creates
/// load imbalance for skewed degree distributions.
pub fn mnd_mst(comm: &Comm, edges: &[CEdge], cfg: &MndConfig) -> Vec<WEdge> {
    // Consolidate boundary vertices: an edge whose source equals the
    // previous PE's last source moves to that PE ("edges incident to a
    // shared vertex are moved completely to one MPI process"). The moved
    // edges are a prefix of the (sorted) slice, so the flat send buffer
    // needs no scatter.
    let my_first = edges.first().map(|e| e.u);
    let my_last = edges.last().map(|e| e.u);
    let bounds = comm.allgather((my_first, my_last));
    let prev_last = comm.rank().checked_sub(1).and_then(|r| bounds[r].1);
    let cut = if prev_last.is_some() && prev_last == my_first {
        edges.partition_point(|e| Some(e.u) == my_first)
    } else {
        0
    };
    let mut keep: Vec<CEdge> = edges[cut..].to_vec();
    // Ship boundary edges to the predecessor (chain exchange).
    let p = comm.size();
    let mut counts = vec![0usize; p];
    if comm.rank() > 0 {
        counts[comm.rank() - 1] = cut;
    }
    let bufs = FlatBuckets::from_counts(edges[..cut].to_vec(), &counts);
    let received = comm.alltoallv_direct(bufs);
    keep.extend_from_slice(received.payload());

    // Level 0: local MSF (cycle-property elimination).
    let mut survivors: Vec<WEdge> = local_msf(comm, &keep);

    // Hierarchical merging: at level k, PEs whose rank is a multiple of
    // group^k are alive; groups of `group` alive PEs merge at the lowest
    // member.
    let group = cfg.group_size.max(2);
    let mut stride = 1usize;
    while stride < p {
        let next_stride = stride * group;
        let alive = comm.rank().is_multiple_of(stride);
        let mut counts = vec![0usize; p];
        let data = if alive && !comm.rank().is_multiple_of(next_stride) {
            // Send everything to the group leader.
            let leader = comm.rank() - (comm.rank() % next_stride);
            let out = std::mem::take(&mut survivors);
            counts[leader] = out.len();
            out
        } else {
            Vec::new()
        };
        let received = comm.alltoallv_direct(FlatBuckets::from_counts(data, &counts));
        if alive && comm.rank().is_multiple_of(next_stride) {
            survivors.extend_from_slice(received.payload());
            survivors = local_msf(comm, &to_cedges(&survivors));
        }
        stride = next_stride;
    }
    survivors
}

fn to_cedges(edges: &[WEdge]) -> Vec<CEdge> {
    edges
        .iter()
        .enumerate()
        .map(|(k, e)| CEdge::from_wedge(*e, k as u64))
        .collect()
}

/// MSF of a local edge set, with cost charging.
fn local_msf(comm: &Comm, edges: &[CEdge]) -> Vec<WEdge> {
    let wedges: Vec<WEdge> = edges.iter().map(|e| e.wedge()).collect();
    let n = wedges.len() as u64;
    comm.charge_local(n * kamsta_comm::ceil_log2((n + 2) as usize) as u64);
    kruskal(&wedges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig};
    use kamsta_core::seq::msf_weight;
    use kamsta_core::verify_msf;
    use kamsta_graph::{GraphConfig, InputGraph};

    fn check(p: usize, config: GraphConfig, seed: u64) {
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let input = InputGraph::generate(comm, config, seed);
            let all: Vec<WEdge> = input.graph.edges.iter().map(|e| e.wedge()).collect();
            let msf = mnd_mst(comm, &input.graph.edges, &MndConfig::default());
            (all, msf)
        });
        let graph: Vec<WEdge> = out.results.iter().flat_map(|(g, _)| g.clone()).collect();
        let msf: Vec<WEdge> = out.results.iter().flat_map(|(_, m)| m.clone()).collect();
        verify_msf(&graph, &msf).unwrap_or_else(|e| panic!("p={p} {config:?}: {e}"));
        // Result lives on PE 0 only.
        for (r, (_, m)) in out.results.iter().enumerate().skip(1) {
            assert!(m.is_empty(), "PE {r} must not hold final edges");
        }
    }

    #[test]
    fn grid_and_gnm() {
        check(4, GraphConfig::Grid2D { rows: 8, cols: 8 }, 3);
        check(4, GraphConfig::Gnm { n: 100, m: 800 }, 5);
    }

    #[test]
    fn various_pe_counts_including_non_group_multiples() {
        for p in [1, 2, 3, 5, 6, 8] {
            check(p, GraphConfig::Grid2D { rows: 6, cols: 6 }, 7);
        }
    }

    #[test]
    fn rmat_skew() {
        check(4, GraphConfig::Rmat { scale: 7, m: 1500 }, 9);
    }

    #[test]
    fn matches_reference_weight() {
        let out = Machine::run(MachineConfig::new(4), |comm| {
            let input = InputGraph::generate(comm, GraphConfig::Rgg2D { n: 300, m: 2400 }, 11);
            let all: Vec<WEdge> = input.graph.edges.iter().map(|e| e.wedge()).collect();
            let msf = mnd_mst(comm, &input.graph.edges, &MndConfig::default());
            (all, msf)
        });
        let graph: Vec<WEdge> = out.results.iter().flat_map(|(g, _)| g.clone()).collect();
        let msf: Vec<WEdge> = out.results.iter().flat_map(|(_, m)| m.clone()).collect();
        assert_eq!(msf_weight(&msf), msf_weight(&kruskal(&graph)));
    }
}
