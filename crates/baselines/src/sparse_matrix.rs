//! Sparse-matrix Awerbuch–Shiloach MSF analogue (Baer et al. \[37\]).
//!
//! The graph's adjacency matrix is 2D-partitioned over a virtual PE grid
//! (edges live at the block of their endpoint pair); each round performs
//! a global per-component candidate reduction, hooking over a
//! block-distributed parent array, shortcutting by pointer doubling and a
//! full endpoint relabeling pass. Every round touches every remaining
//! edge, and 2D partitioning gives no locality to exploit — exactly the
//! structural properties the paper blames for its performance gap
//! (Sec. VII-A).

use kamsta_comm::{Comm, FlatBuckets, GridTopology};
use kamsta_core::dist::DistArray;
use kamsta_graph::hash::{FxHashMap, FxHashSet};
use kamsta_graph::{CEdge, WEdge};

/// One component's candidate edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Cand {
    w: u32,
    tie: (u64, u64),
    id: u64,
    to: u64,
    orig_u: u64,
    orig_v: u64,
}

/// Wire format: fixed-width field walk, declaration order.
impl kamsta_comm::Wire for Cand {
    fn wire_write(&self, out: &mut Vec<u8>) {
        self.w.wire_write(out);
        self.tie.wire_write(out);
        self.id.wire_write(out);
        self.to.wire_write(out);
        self.orig_u.wire_write(out);
        self.orig_v.wire_write(out);
    }
    fn wire_read(r: &mut kamsta_comm::WireReader<'_>) -> Result<Self, kamsta_comm::WireError> {
        Ok(Self {
            w: u32::wire_read(r)?,
            tie: <(u64, u64)>::wire_read(r)?,
            id: u64::wire_read(r)?,
            to: u64::wire_read(r)?,
            orig_u: u64::wire_read(r)?,
            orig_v: u64::wire_read(r)?,
        })
    }
    #[inline]
    fn wire_min_size() -> usize {
        52
    }
}

/// Compute the MSF with the 2D-partitioned Awerbuch–Shiloach scheme.
/// Returns this PE's share of the MSF edges (original endpoints).
/// Collective.
pub fn sparse_matrix(comm: &Comm, edges: &[CEdge]) -> Vec<WEdge> {
    let p = comm.size();
    let grid = GridTopology::new(p);
    let local_max = edges.iter().map(|e| e.u.max(e.v)).max().unwrap_or(0);
    let n_ids = comm.allreduce_max(local_max) + 1;

    // 2D partitioning: edge (u, v) goes to the PE at (row-block of u,
    // column-block of v) — the redistribution cost every matrix-based
    // tool pays up front.
    let block = |x: u64, blocks: usize| ((x as u128 * blocks as u128) / n_ids as u128) as usize;
    let tagged: Vec<(u64, u64, CEdge)> = edges.iter().map(|e| (e.u, e.v, *e)).collect();
    let bufs = FlatBuckets::from_dest_fn(p, tagged, |(u, v, _)| {
        (block(*u, grid.r) * grid.c + block(*v, grid.c)).min(p - 1)
    });
    // Working set: (current comp of u, current comp of v, original edge).
    let mut work: Vec<(u64, u64, CEdge)> = comm.alltoallv_direct(bufs).into_payload();

    let mut parent = DistArray::new(comm, n_ids);
    let mut msf: Vec<WEdge> = Vec::new();

    loop {
        // Per-component local candidates over ALL local edges.
        comm.charge_local(work.len() as u64);
        let mut local_best: FxHashMap<u64, Cand> = FxHashMap::default();
        for (cu, cv, e) in &work {
            if cu == cv {
                continue;
            }
            let c = Cand {
                w: e.w,
                tie: (e.u.min(e.v), e.u.max(e.v)),
                id: e.id,
                to: *cv,
                orig_u: e.u,
                orig_v: e.v,
            };
            let slot = local_best.entry(*cu).or_insert(c);
            if c < *slot {
                *slot = c;
            }
        }

        // Route candidates to the parent-array owner of each component;
        // the owner reduces to the global minimum (the paper's row-wise
        // min-reduction, expressed as a sparse exchange).
        let cands: Vec<(u64, Cand)> = local_best.into_iter().collect();
        let cand_bufs = FlatBuckets::from_dest_fn(p, cands, |(comp, _)| parent.home(*comp));
        let received = comm.sparse_alltoallv(cand_bufs);
        let mut winner: FxHashMap<u64, Cand> = FxHashMap::default();
        for &(comp, cand) in received.payload() {
            let slot = winner.entry(comp).or_insert(cand);
            if cand < *slot {
                *slot = cand;
            }
        }
        let any = comm.allreduce_sum(winner.len() as u64);
        if any == 0 {
            break;
        }

        // Hook: parent[comp] = candidate target.
        let hooks: Vec<(u64, u64)> = winner.iter().map(|(c, x)| (*c, x.to)).collect();
        parent.bulk_set(comm, hooks);

        // Resolve 2-cycles before shortcutting: if parent[b] == a for a
        // hook a → b with a < b, a becomes the root.
        let targets: Vec<u64> = winner.values().map(|x| x.to).collect();
        let back = parent.bulk_get(comm, targets);
        let mut fixes = Vec::new();
        let mut rooted: FxHashSet<u64> = FxHashSet::default();
        for (&a, x) in &winner {
            if back.get(&x.to) == Some(&a) && a < x.to {
                fixes.push((a, a));
                rooted.insert(a);
            }
        }
        parent.bulk_set(comm, fixes);

        // Every hooked, non-root component contributes its candidate.
        for (&a, x) in &winner {
            if !rooted.contains(&a) {
                msf.push(WEdge::new(x.orig_u, x.orig_v, x.w));
            }
        }

        // Shortcut (pointer doubling) and relabel all endpoints.
        parent.compress(comm);
        let mut endpoints: Vec<u64> = Vec::with_capacity(work.len() * 2);
        for (cu, cv, _) in &work {
            endpoints.push(*cu);
            endpoints.push(*cv);
        }
        let reps = parent.bulk_get(comm, endpoints);
        comm.charge_local(work.len() as u64);
        work.retain_mut(|(cu, cv, _)| {
            *cu = *reps.get(cu).unwrap_or(cu);
            *cv = *reps.get(cv).unwrap_or(cv);
            cu != cv
        });
    }
    msf
}

#[cfg(test)]
mod tests {
    use super::*;
    use kamsta_comm::{Machine, MachineConfig};
    use kamsta_core::seq::{kruskal, msf_weight};
    use kamsta_core::verify_msf;
    use kamsta_graph::{GraphConfig, InputGraph};

    fn check(p: usize, config: GraphConfig, seed: u64) {
        let out = Machine::run(MachineConfig::new(p), move |comm| {
            let input = InputGraph::generate(comm, config, seed);
            let all: Vec<WEdge> = input.graph.edges.iter().map(|e| e.wedge()).collect();
            let msf = sparse_matrix(comm, &input.graph.edges);
            (all, msf)
        });
        let graph: Vec<WEdge> = out.results.iter().flat_map(|(g, _)| g.clone()).collect();
        let msf: Vec<WEdge> = out.results.iter().flat_map(|(_, m)| m.clone()).collect();
        verify_msf(&graph, &msf).unwrap_or_else(|e| panic!("p={p} {config:?}: {e}"));
    }

    #[test]
    fn grid_and_gnm() {
        check(4, GraphConfig::Grid2D { rows: 8, cols: 8 }, 3);
        check(4, GraphConfig::Gnm { n: 100, m: 800 }, 5);
    }

    #[test]
    fn various_pe_counts() {
        for p in [1, 2, 3, 5, 9] {
            check(p, GraphConfig::Grid2D { rows: 6, cols: 6 }, 7);
        }
    }

    #[test]
    fn skewed_rmat() {
        check(6, GraphConfig::Rmat { scale: 7, m: 1500 }, 9);
    }

    #[test]
    fn weight_matches_reference() {
        let out = Machine::run(MachineConfig::new(4), |comm| {
            let input = InputGraph::generate(
                comm,
                GraphConfig::Rhg {
                    n: 200,
                    m: 1600,
                    gamma: 3.0,
                },
                11,
            );
            let all: Vec<WEdge> = input.graph.edges.iter().map(|e| e.wedge()).collect();
            let msf = sparse_matrix(comm, &input.graph.edges);
            (all, msf)
        });
        let graph: Vec<WEdge> = out.results.iter().flat_map(|(g, _)| g.clone()).collect();
        let msf: Vec<WEdge> = out.results.iter().flat_map(|(_, m)| m.clone()).collect();
        assert_eq!(msf_weight(&msf), msf_weight(&kruskal(&graph)));
    }
}
