//! MST-based image segmentation — one of the applications the paper's
//! introduction motivates ("e.g., clustering, image segmentation, and
//! network design").
//!
//! A synthetic grayscale image becomes a 4-connected grid graph whose
//! edge weights are intensity differences; the MST is computed with the
//! distributed Borůvka algorithm, and cutting all MST edges heavier than
//! a threshold yields the segmentation (a simplified Felzenszwalb-style
//! criterion).
//!
//! Run with: `cargo run --release --example image_segmentation`

use kamsta::core::seq::UnionFind;
use kamsta::{Algorithm, Runner, WEdge};

const W: usize = 96;
const H: usize = 64;

/// Synthetic image: three intensity plateaus plus mild deterministic
/// noise — segmentation should recover the plateaus.
fn synthetic_image() -> Vec<u8> {
    let mut img = vec![0u8; W * H];
    for y in 0..H {
        for x in 0..W {
            let base = if x < W / 3 {
                40
            } else if y < H / 2 {
                140
            } else {
                230
            };
            let noise = (kamsta::graph::hash::mix64((y * W + x) as u64) % 7) as i32 - 3;
            img[y * W + x] = (base + noise).clamp(0, 255) as u8;
        }
    }
    img
}

fn main() {
    let img = synthetic_image();
    let pixel = |x: usize, y: usize| (y * W + x) as u64;
    let diff = |a: u8, b: u8| (a as i32 - b as i32).unsigned_abs() + 1;

    // 4-connected grid graph, symmetric directed edges.
    let mut edges = Vec::new();
    for y in 0..H {
        for x in 0..W {
            let u = pixel(x, y);
            let iu = img[y * W + x];
            if x + 1 < W {
                let v = pixel(x + 1, y);
                let w = diff(iu, img[y * W + x + 1]);
                edges.push(WEdge::new(u, v, w));
                edges.push(WEdge::new(v, u, w));
            }
            if y + 1 < H {
                let v = pixel(x, y + 1);
                let w = diff(iu, img[(y + 1) * W + x]);
                edges.push(WEdge::new(u, v, w));
                edges.push(WEdge::new(v, u, w));
            }
        }
    }
    edges.sort_unstable();

    println!(
        "image {W}×{H}: {} pixels, {} directed edges",
        W * H,
        edges.len()
    );
    let (msf, summary) = Runner::new(6, 1).msf_edges(edges, Algorithm::Boruvka);
    println!(
        "MST: {} edges, weight {}, modeled time {:.4}s",
        summary.msf_edges, summary.msf_weight, summary.modeled_time
    );

    // Cut heavy MST edges → segments.
    let threshold = 12;
    let mut uf = UnionFind::new(W * H);
    for e in &msf {
        if e.w < threshold {
            uf.union(e.u as u32, e.v as u32);
        }
    }
    // Count segments bigger than a handful of pixels.
    let mut sizes = std::collections::HashMap::new();
    for i in 0..(W * H) as u32 {
        *sizes.entry(uf.find(i)).or_insert(0u32) += 1;
    }
    let mut big: Vec<u32> = sizes.values().copied().filter(|&s| s > 20).collect();
    big.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "segmentation at threshold {threshold}: {} segments > 20 px, sizes {:?}",
        big.len(),
        big
    );
    assert_eq!(big.len(), 3, "the three plateaus should be recovered");
    println!("OK: recovered the three intensity plateaus");
}
