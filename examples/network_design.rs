//! Minimum-cost network design — the third application from the paper's
//! introduction (MST-based topology control, [6]).
//!
//! Cities are random points; candidate fibre links connect geographic
//! neighbours with cost = distance plus a terrain surcharge. The MST is
//! the cheapest backbone connecting every city. We compare the cost of
//! the MST backbone against a naive star topology and run both
//! distributed algorithms on the same instance.
//!
//! Run with: `cargo run --release --example network_design`

use kamsta::graph::hash::{mix64, sym_hash, unit_f64};
use kamsta::{Algorithm, Runner, WEdge};

const CITIES: usize = 600;

fn main() {
    // Deterministic city locations on a 1000×1000 map.
    let pos: Vec<(f64, f64)> = (0..CITIES)
        .map(|i| {
            let h = mix64(i as u64 ^ 0xC171E5);
            (unit_f64(h) * 1000.0, unit_f64(mix64(h)) * 1000.0)
        })
        .collect();

    // Candidate links: all pairs within 130 map units; cost = distance +
    // terrain surcharge (hash-derived, symmetric).
    let mut edges = Vec::new();
    for i in 0..CITIES {
        for j in (i + 1)..CITIES {
            let (dx, dy) = (pos[i].0 - pos[j].0, pos[i].1 - pos[j].1);
            let d = (dx * dx + dy * dy).sqrt();
            if d < 130.0 {
                let terrain = (sym_hash(i as u64, j as u64, 7) % 40) as f64;
                let w = (d + terrain) as u32 + 1;
                edges.push(WEdge::new(i as u64, j as u64, w));
                edges.push(WEdge::new(j as u64, i as u64, w));
            }
        }
    }
    edges.sort_unstable();
    println!("{CITIES} cities, {} candidate directed links", edges.len());

    let runner = Runner::new(4, 1);
    let (msf, s_boruvka) = runner.msf_edges(edges.clone(), Algorithm::Boruvka);
    let s_filter = {
        let (_msf2, s) = runner.msf_edges(edges.clone(), Algorithm::FilterBoruvka);
        s
    };
    assert_eq!(
        s_boruvka.msf_weight, s_filter.msf_weight,
        "both algorithms must agree on the optimal backbone"
    );
    println!(
        "optimal backbone: {} links, total cost {} (boruvka {:.4}s, filterBoruvka {:.4}s modeled)",
        s_boruvka.msf_edges, s_boruvka.msf_weight, s_boruvka.modeled_time, s_filter.modeled_time
    );
    if s_boruvka.msf_edges < (CITIES - 1) as u64 {
        println!(
            "note: candidate graph is disconnected — backbone is a {}-component forest",
            CITIES as u64 - s_boruvka.msf_edges
        );
    }

    // Compare with a naive star topology rooted at city 0 (beeline cost,
    // ignoring link availability) just to size the savings.
    let star_cost: f64 = (1..CITIES)
        .map(|i| {
            let (dx, dy) = (pos[i].0 - pos[0].0, pos[i].1 - pos[0].1);
            (dx * dx + dy * dy).sqrt()
        })
        .sum();
    println!(
        "star-topology beeline cost would be ~{:.0}; the MST backbone costs {} ({}% of star)",
        star_cost,
        s_boruvka.msf_weight,
        (100.0 * s_boruvka.msf_weight as f64 / star_cost) as u32
    );

    // Report the longest single link in the backbone (network diameter
    // driver for latency analysis).
    let longest = msf.iter().map(|e| e.w).max().unwrap_or(0);
    println!("longest backbone link cost: {longest}");
}
